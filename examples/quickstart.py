#!/usr/bin/env python3
"""Quickstart: a multi-modal DAQ stream in ~60 lines.

Builds sensor → switch → DTN over a lossy WAN-ish link, streams
sequenced DAQ messages with a local retransmission buffer, and shows
NAK-based recovery plus the delivered statistics.

Run:  python examples/quickstart.py
"""

from repro.analysis import LatencySummary, format_duration, format_rate
from repro.core import MmtStack, make_experiment_id
from repro.netsim import Simulator, Topology, units

EXPERIMENT = 7


def main() -> None:
    sim = Simulator(seed=42)
    topo = Topology(sim)

    # A sensor site and a receiving DTN joined through one router, with
    # 0.5% random loss on the wide-area hop.
    sensor = topo.add_host("sensor")
    dtn = topo.add_host("dtn")
    router = topo.add_router("wan")
    topo.connect(sensor, router, units.gbps(100), units.microseconds(10))
    topo.connect(router, dtn, units.gbps(100), units.milliseconds(5), loss_rate=0.005)
    topo.install_routes()

    # MMT endpoints: the sensor keeps a local retransmission buffer and
    # announces itself as the recovery point ("age-recover" mode).
    sensor_stack = MmtStack(sensor)
    dtn_stack = MmtStack(dtn)
    delivered = []
    receiver = dtn_stack.bind_receiver(
        EXPERIMENT, on_message=lambda pkt, hdr: delivered.append((sim.now, hdr.seq))
    )
    # The buffer must hold at least one NAK round trip's worth of
    # stream (here: the whole 82 MB run, comfortably).
    sensor_stack.attach_buffer(512 * 1024 * 1024)
    sender = sensor_stack.create_sender(
        experiment_id=make_experiment_id(EXPERIMENT),
        mode="age-recover",
        dst_ip=dtn.ip,
        age_budget_ns=units.milliseconds(100),
        buffer_local=True,
    )

    # Stream 10,000 jumbo-frame-sized messages, one every 2 us (~33 Gb/s).
    for i in range(10_000):
        sim.schedule(i * 2_000, sender.send, 8192)
    sim.schedule(10_000 * 2_000, sender.finish)
    sim.run()

    stats = receiver.stats
    latencies = [t for _now, t in receiver.delivery_log]
    summary = LatencySummary.of(latencies)
    print(f"messages delivered : {stats.messages_delivered} / 10000")
    print(f"losses recovered   : {stats.retransmissions_received} "
          f"(via {stats.naks_sent} NAKs, {stats.unrecovered} unrecovered)")
    print(f"goodput            : "
          f"{format_rate(stats.bytes_delivered * 8 * 1e9 / (delivered[-1][0] - delivered[0][0]))}")
    print(f"delivery latency   : p50 {format_duration(summary.p50_ns)}, "
          f"p99 {format_duration(summary.p99_ns)}")
    assert receiver.complete(make_experiment_id(EXPERIMENT), 10_000)
    print("stream complete: every sequence number accounted for")


if __name__ == "__main__":
    main()
