#!/usr/bin/env python3
"""Discovery → planning → installation: the §6 control-plane loop.

Three operator domains (a site network, a WAN, an edge network) each
advertise their programmable elements into the shared resource map —
the paper's "map of in-network programmable resources [...] shared
between network operators" — over BGP-style speaker sessions. Once the
map converges, a flow intent ("reliable, age-tracked, deadline 50 ms,
duplicate to the mirror site") is *planned* over the discovered
resources and *installed* as dataplane programs. The stream then runs
over a lossy WAN and recovers from whichever buffer the plan placed
nearest.

Run:  python examples/auto_placement.py
"""

from repro.analysis import format_duration
from repro.controlplane import (
    Capability,
    FlowIntent,
    MapSpeaker,
    ResourceDescriptor,
    converge,
    install_plan,
    plan_flow,
)
from repro.core import MmtStack, ReceiverConfig, extended_registry, make_experiment_id
from repro.dataplane import ProgrammableElement
from repro.netsim import Simulator, Topology, units
from repro.netsim.units import MILLISECOND

EXP = 31
EXP_ID = make_experiment_id(EXP)

ALL = frozenset({
    Capability.MODE_TRANSITION, Capability.RETRANSMIT_BUFFER,
    Capability.AGE_UPDATE, Capability.DUPLICATION,
})
HEADER_ONLY = frozenset({Capability.MODE_TRANSITION, Capability.AGE_UPDATE})


def main() -> None:
    sim = Simulator(seed=77)

    # --- 1. discovery: three domains advertise their elements -------------
    site = MapSpeaker(sim, "site")
    wan = MapSpeaker(sim, "wan")
    edge = MapSpeaker(sim, "edge")
    site.peer_with(wan, units.milliseconds(12))
    wan.peer_with(edge, units.milliseconds(30))
    site.advertise(ResourceDescriptor(
        node="e1", domain="site", address="10.0.1.1",
        capabilities=ALL, buffer_bytes=1 << 30))
    wan.advertise(ResourceDescriptor(
        node="e2", domain="wan", address="10.0.2.1", capabilities=HEADER_ONLY))
    edge.advertise(ResourceDescriptor(
        node="e3", domain="edge", address="10.0.3.1",
        capabilities=ALL, buffer_bytes=1 << 28))
    sim.run()
    assert converge([site, wan, edge])
    print(f"resource map converged: {len(site.map)} elements known to every domain")

    # --- 2. the physical network ------------------------------------------
    topo = Topology(sim)
    src = topo.add_host("src", ip="10.0.0.2")
    dst = topo.add_host("dst", ip="10.0.9.2")
    mirror = topo.add_host("mirror", ip="10.0.8.2")
    elements = {}
    for name, addr in (("e1", "10.0.1.1"), ("e2", "10.0.2.1"), ("e3", "10.0.3.1")):
        elements[name] = topo.add(
            ProgrammableElement(sim, name, mac=topo.allocate_mac(), ip=addr)
        )
    chain = [src, elements["e1"], elements["e2"], elements["e3"], dst]
    for i, (a, b) in enumerate(zip(chain, chain[1:])):
        loss = 0.02 if i == 2 else 0.0  # the WAN hop loses packets
        topo.connect(a, b, units.gbps(10), units.milliseconds(5), loss_rate=loss)
    topo.connect(elements["e3"], mirror, units.gbps(10), units.milliseconds(2))
    topo.install_routes()

    # --- 3. intent → plan → install ----------------------------------------
    registry = extended_registry()
    intent = FlowIntent(
        experiment_id=EXP_ID,
        reliable=True,
        age_budget_ns=200 * MILLISECOND,
        deadline_offset_ns=50 * MILLISECOND,
        notify_addr=src.ip,
        duplicate_to=(mirror.ip,),
    )
    plan = plan_flow(site.map, ["src", "e1", "e2", "e3", "dst"], intent, registry)
    print(f"plan: entry mode {plan.entry_mode.name!r} "
          f"(config {plan.entry_mode.config_id}), "
          f"exit mode {plan.exit_mode.name!r} (config {plan.exit_mode.config_id})")
    for node_plan in plan.nodes:
        duties = []
        if node_plan.transition:
            duties.append(f"transition->{node_plan.transition.to_mode}")
        if node_plan.host_buffer_bytes:
            duties.append(f"buffer({node_plan.host_buffer_bytes >> 20} MiB)")
        if node_plan.nearest_buffer_addr:
            duties.append(f"nearest-buffer={node_plan.nearest_buffer_addr}")
        if node_plan.age_update:
            duties.append("age-update")
        if node_plan.duplication:
            duties.append(f"duplicate->{node_plan.duplication}")
        print(f"  {node_plan.node}: {', '.join(duties) or 'no duties'}")
    install_plan(plan, elements, registry)

    # --- 4. run a stream over the planned dataplane ------------------------
    src_stack = MmtStack(src, registry)
    dst_stack = MmtStack(dst, registry)
    mirror_stack = MmtStack(mirror, registry)
    got, mirrored = [], []
    receiver = dst_stack.bind_receiver(
        EXP, on_message=lambda p, h: got.append(h),
        config=ReceiverConfig(initial_rtt_ns=units.milliseconds(30)),
    )
    mirror_stack.bind_receiver(EXP, on_message=lambda p, h: mirrored.append(h))
    sender = src_stack.create_sender(experiment_id=EXP_ID, mode="identify", dst_ip=dst.ip)
    for i in range(2000):
        sim.schedule(i * 5_000, sender.send, 4000)
    sim.run()
    receiver.request_missing(EXP_ID, 2000)
    sim.run()

    print(f"\ndelivered at dst    : {len({h.seq for h in got})}/2000 "
          f"(NAKs {receiver.stats.naks_sent}, "
          f"retx {receiver.stats.retransmissions_received}, "
          f"unrecovered {receiver.stats.unrecovered})")
    print(f"duplicated to mirror: {len(mirrored)} messages")
    served = {name: e.stats.naks_served for name, e in elements.items()}
    print(f"NAKs served by      : {served}")
    lat = [latency for _t, latency in receiver.delivery_log]
    lat.sort()
    print(f"dst latency p50/p99 : {format_duration(lat[len(lat)//2])} / "
          f"{format_duration(lat[int(len(lat)*0.99)])}")
    assert {h.seq for h in got} == set(range(2000))


if __name__ == "__main__":
    main()
