#!/usr/bin/env python3
"""Multi-domain supernova early warning: DUNE alerts Vera Rubin.

The integration story from §1/§3 (Req 10): neutrinos from a collapsing
star reach DUNE minutes-to-days before the photons reach telescopes.
This example runs the same seeded burst through both dataflows —

  today : candidates ride UDP+TCP to the HPC facility, burst detection
          happens there, the pointing alert crosses another WAN to Chile
  mmt   : trigger primitives are duplicated *in the network* toward a
          broker beside the telescope; detection happens on fresh data

and prints how much earlier the telescope can start slewing.

Run:  python examples/supernova_alert.py
"""

from repro.analysis import format_duration
from repro.daq import SUPERNOVA_LEAD_TIME_MIN_NS, SupernovaAlert
from repro.integration import SupernovaConfig, compare
from repro.netsim.units import MILLISECOND, SECOND


def main() -> None:
    config = SupernovaConfig(
        background_rate_hz=100.0,       # radiological background
        burst_rate_hz=20_000.0,         # the neutrino burst
        burst_start_ns=2 * SECOND,
        burst_duration_ns=1 * SECOND,
        trigger_threshold=50,
        trigger_window_ns=200 * MILLISECOND,
        wan_to_hpc_ns=20 * MILLISECOND,      # South Dakota -> Illinois
        hpc_to_scope_ns=60 * MILLISECOND,    # Illinois -> Chile
        element_to_scope_ns=50 * MILLISECOND,  # direct duplicate path
    )
    results = compare(config, seed=2024)

    print("=== Supernova early warning (DUNE -> Vera Rubin) ===")
    for mode, result in results.items():
        latency = result.warning_latency_ns
        print(f"{mode:6s}: burst detected at "
              f"{format_duration(result.trigger_fired_ns - result.burst_start_ns)}"
              f" after onset; pointing alert at the telescope after "
              f"{format_duration(latency)}")
    gained = results["today"].warning_latency_ns - results["mmt"].warning_latency_ns
    print(f"\nmulti-modal path warns {format_duration(gained)} earlier")
    budget = results["mmt"].warning_latency_ns / SUPERNOVA_LEAD_TIME_MIN_NS
    print(f"lead-time budget used: {budget * 100:.3f}% of the ~1 minute minimum")

    # The alert itself is a compact, codec-checked message:
    alert = SupernovaAlert(
        detection_time_ns=results["mmt"].trigger_fired_ns,
        right_ascension_mdeg=161_265,   # toward the Large Magellanic Cloud
        declination_mdeg=-69_380,
        confidence_pct=98,
        neutrino_count=1842,
    )
    wire = alert.encode()
    print(f"pointing alert on the wire: {len(wire)} bytes -> {SupernovaAlert.decode(wire)}")


if __name__ == "__main__":
    main()
