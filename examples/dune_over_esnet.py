#!/usr/bin/env python3
"""DUNE beam data from SURF to Fermilab over an ESnet-like backbone.

Builds the continental backbone substrate (real PoPs, fiber-length
delays, 400 G trunks under circuit admission control), reserves a
100 Gb/s circuit for the run along the SURF→FNAL path, and streams a
scaled DUNE workload with MMT: sequenced at the SURF edge, recoverable
from the on-site buffer, age-tracked against a 100 ms budget.

Run:  python examples/dune_over_esnet.py
"""

from repro.analysis import LatencySummary, format_duration, format_rate
from repro.core import MmtStack, ReceiverConfig, make_experiment_id
from repro.daq import DUNE, DaqStreamSource
from repro.netsim import Simulator
from repro.netsim.units import MILLISECOND, SECOND, gbps
from repro.wan import build_esnet

EXP_ID = make_experiment_id(DUNE.experiment_number)
RUN_NS = 200 * MILLISECOND
SCALE = 2e-5  # 120 Tb/s -> 2.4 Gb/s simulated


def main() -> None:
    sim = Simulator(seed=2026)
    backbone = build_esnet(sim)
    surf = backbone.sites["SURF"]
    fnal = backbone.sites["FNAL"]

    delay = backbone.one_way_delay_ns("SURF", "FNAL")
    print(f"SURF -> FNAL path: {format_duration(delay)} one-way "
          f"({len(backbone.path_link_names('SURF', 'FNAL'))} links)")

    # Capacity planning first (§5.3): reserve the run's circuit.
    legs = backbone.reserve_circuit(
        "SURF", "FNAL", gbps(100), 0, 10 * SECOND, owner="dune-beam-run"
    )
    print(f"reserved 100 Gbps on {len(legs)} links "
          f"(circuit id {legs[0].circuit_id})")

    surf_stack = MmtStack(surf)
    fnal_stack = MmtStack(fnal)
    receiver = fnal_stack.bind_receiver(
        DUNE.experiment_number,
        config=ReceiverConfig(initial_rtt_ns=3 * delay),
    )
    surf_stack.attach_buffer(1 << 30)
    sender = surf_stack.create_sender(
        experiment_id=EXP_ID,
        mode="age-recover",
        dst_ip=fnal.ip,
        age_budget_ns=100 * MILLISECOND,
        buffer_local=True,
    )
    source = DaqStreamSource(
        sim,
        DUNE.workload(scale=SCALE),
        lambda size, payload, kind: sender.send(size),
        duration_ns=RUN_NS,
    )
    source.start()
    sim.run()
    receiver.request_missing(EXP_ID, source.messages_emitted)
    sim.run()

    latencies = [lat for _t, lat in receiver.delivery_log]
    summary = LatencySummary.of(latencies)
    print(f"\nstreamed {source.messages_emitted} messages "
          f"({format_rate(source.bytes_emitted * 8 * 1e9 / RUN_NS)} offered)")
    print(f"delivered {receiver.stats.messages_delivered}, "
          f"unrecovered {receiver.stats.unrecovered}")
    print(f"latency p50 {format_duration(summary.p50_ns)}, "
          f"p99 {format_duration(summary.p99_ns)} "
          f"(aged: {receiver.stats.aged_packets})")
    utilization = backbone.circuits.utilization(
        backbone.path_link_names("SURF", "FNAL")[0], at_ns=SECOND
    )
    print(f"first-leg reserved utilization: {utilization:.0%}")
    assert receiver.stats.messages_delivered == source.messages_emitted


if __name__ == "__main__":
    main()
