#!/usr/bin/env python3
"""Instrument partitioning (Req 8): one detector, two experiments.

A DUNE-like instrument is partitioned into two slices run by different
research groups simultaneously. Both slices share the detector's DAQ
network and experiment number; the MMT header's slice bits identify
which partition produced each message, so a single stream demuxes
cleanly at the far end — no per-slice connections, no payload peeking.

Run:  python examples/partitioned_instrument.py
"""

from collections import Counter

from repro.analysis import format_rate
from repro.core import MmtStack, make_experiment_id, split_experiment_id
from repro.daq import dune_far_detector_module
from repro.netsim import Simulator, Topology, units

EXPERIMENT = 2  # DUNE


def main() -> None:
    instrument = dune_far_detector_module()
    slices = instrument.partition(["beam-physics", "calibration"])
    print(f"instrument {instrument.name}: {instrument.readout.channels} channels, "
          f"{format_rate(instrument.wire_rate_bps)} wire rate")
    for s in slices:
        print(f"  slice {s.slice_id} ({s.name}): channels "
              f"[{s.channel_lo}, {s.channel_hi}), "
              f"{format_rate(instrument.slice_rate_bps(s.slice_id))}")

    sim = Simulator(seed=9)
    topo = Topology(sim)
    sensor = topo.add_host("sensor")
    dtn = topo.add_host("dtn")
    topo.connect(sensor, dtn, units.gbps(100), units.microseconds(50))
    topo.install_routes()

    sensor_stack = MmtStack(sensor)
    dtn_stack = MmtStack(dtn)

    by_slice = Counter()
    dtn_stack.bind_receiver(
        EXPERIMENT,
        on_message=lambda pkt, hdr: by_slice.update([hdr.slice_id]),
    )

    # One sender per slice; they share the experiment number, differ in
    # the slice bits of the experiment id.
    senders = {
        s.slice_id: sensor_stack.create_sender(
            experiment_id=make_experiment_id(EXPERIMENT, s.slice_id),
            mode="identify",
            dst_ip=dtn.ip,
            flow=f"slice-{s.name}",
        )
        for s in slices
    }

    # Beam physics reads out 3x as often as the calibration slice.
    for i in range(3000):
        sim.schedule(i * 1_000, senders[0].send, 8192)
    for i in range(1000):
        sim.schedule(i * 3_000, senders[1].send, 8192)
    sim.run()

    print("\nmessages per slice at the DTN:")
    for slice_id, count in sorted(by_slice.items()):
        name = slices[slice_id].name
        experiment, sid = split_experiment_id(make_experiment_id(EXPERIMENT, slice_id))
        print(f"  slice {sid} ({name}): {count} messages (experiment {experiment})")
    assert by_slice[0] == 3000
    assert by_slice[1] == 1000


if __name__ == "__main__":
    main()
