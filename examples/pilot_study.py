#!/usr/bin/env python3
"""The paper's pilot study (Fig. 4), end to end with real payloads.

Reproduces §5.4: an ICEBERG-like LArTPC source streams synthetic WIB
frames through the three-mode pipeline —

  mode 0 (identify)      sensor → DTN 1, raw over Ethernet, unreliable
  mode 1 (age-recover)   DTN 1 → DTN 2, via Alveo U280 (seq + buffer)
                         and Tofino2 (age update, nearest buffer)
  mode 2 (deliver-check) deadline checked at DTN 2

with 1% WAN corruption loss. The run verifies every frame arrives (or
is recovered from the U280 — never the sensor), decodes the payloads
back into ADC counts, and prints the report.

Run:  python examples/pilot_study.py
"""

from repro.analysis import LatencySummary, format_duration
from repro.daq import LArTpcWaveformSynth, WibFrame, parse_message
from repro.dataplane import PilotConfig, PilotTestbed
from repro.netsim import Simulator
from repro.netsim.units import MILLISECOND


def main() -> None:
    config = PilotConfig(
        wan_delay_ns=10 * MILLISECOND,
        wan_loss_rate=0.01,
        age_budget_ns=50 * MILLISECOND,
        deadline_offset_ns=5 * MILLISECOND,
    )
    pilot = PilotTestbed(sim=Simulator(seed=2024), config=config)

    # Feed byte-real LArTPC frames (pedestal + noise + hits).
    synth = LArTpcWaveformSynth(seed=7)
    decoded_frames = []

    original = pilot.dtn2_receiver.on_message

    def decode_at_dtn2(packet, header):
        original(packet, header)
        if packet.payload:
            daq_header, payload = parse_message(packet.payload)
            decoded_frames.append(WibFrame.decode(payload))

    pilot.dtn2_receiver.on_message = decode_at_dtn2

    frames = 2000
    for i in range(frames):
        message = synth.message(
            detector_id=7, slice_id=0, timestamp_ticks=i, hits=1 if i % 50 == 0 else 0
        )
        pilot.sim.schedule(i * 2_000, pilot.sensor_sender.send, len(message), message)
        pilot.messages_sent += 1

    report = pilot.run()

    print("=== Pilot study (Fig. 4) ===")
    print(f"frames sent            : {report.messages_sent}")
    print(f"frames delivered       : {report.delivered} (complete={report.complete})")
    print(f"recovered via NAK      : {report.retransmissions} "
          f"({report.naks_sent} NAKs, all served by the U280 buffer)")
    print(f"mode transitions       : 0->1 at U280: {report.mode_transitions_u280}, "
          f"1->2 at U55C: {report.mode_transitions_u55c}")
    print(f"age updates at Tofino2 : {report.age_updates_tofino}")
    print(f"aged frames            : {report.aged_packets}")
    print(f"deadline ok / missed   : {report.deadline_ok} / {report.deadline_misses}")
    summary = LatencySummary.of(report.delivery_latencies_ns)
    print(f"sensor->DTN2 latency   : p50 {format_duration(summary.p50_ns)}, "
          f"p99 {format_duration(summary.p99_ns)}")
    print(f"payloads decoded       : {len(decoded_frames)} WIB frames, "
          f"{len(decoded_frames[0].adc_counts)} channels each")
    pedestal = sum(decoded_frames[0].adc_counts) / len(decoded_frames[0].adc_counts)
    print(f"mean ADC of frame 0    : {pedestal:.0f} counts (pedestal ~2300)")
    assert report.complete


if __name__ == "__main__":
    main()
