#!/usr/bin/env python3
"""Vera Rubin's night: bulk capture plus millisecond-scale alerts.

Two concurrent flows from the telescope (§2.1): the steady nightly
capture (30 TB over the night — scaled here) and the alert
distribution stream that "bursts to 5.4 Gbps" and must reach
researchers in milliseconds. Alerts travel with a delivery deadline
and are duplicated in-network to two subscriber sites; the bulk
capture rides the same links in a lax-deadline mode. A deadline-aware
bottleneck queue keeps alerts timely even while the capture saturates
the uplink.

Run:  python examples/rubin_nightly.py
"""

from repro.analysis import LatencySummary, format_duration, format_rate
from repro.core import (
    AckScheme,
    Feature,
    MmtHeader,
    MmtStack,
    Mode,
    extended_registry,
    make_experiment_id,
)
from repro.daq import DaqStreamSource, VERA_RUBIN, rubin_alert_stream
from repro.dataplane import (
    AgeUpdateProgram,
    DuplicationProgram,
    ModeTransitionProgram,
    TofinoSwitch,
    TransitionRule,
)
from repro.netsim import DeadlineAwareQueue, Simulator, Topology, units
from repro.netsim.units import MILLISECOND, SECOND

ALERT_EXP = 51
BULK_EXP = 52
ALERT_DEADLINE = 30 * MILLISECOND
RUN_NS = 30 * SECOND


def main() -> None:
    sim = Simulator(seed=3)
    topo = Topology(sim)
    summit = topo.add_host("summit", ip="10.1.0.2")        # Cerro Pachón
    archive = topo.add_host("archive", ip="10.2.0.2")      # US archive
    sub_a = topo.add_host("broker-a", ip="10.3.0.2")       # alert subscribers
    sub_b = topo.add_host("broker-b", ip="10.4.0.2")
    element = TofinoSwitch(sim, "longhaul", mac=topo.allocate_mac(), ip="10.9.0.1")
    topo.add(element)

    def deadline_queue():
        return DeadlineAwareQueue(
            4_000_000,
            deadline_of=lambda p: (
                h.deadline_ns
                if (h := p.find(MmtHeader)) is not None and h.has(Feature.TIMELINESS)
                else None
            ),
            now=lambda: sim.now,
        )

    # Chile -> US long-haul: ~75 ms one way, 40 Gb/s, deadline-aware AQM.
    topo.connect(summit, element, units.gbps(40), units.milliseconds(1),
                 queue_factory=deadline_queue)
    topo.connect(element, archive, units.gbps(40), units.milliseconds(75),
                 queue_factory=deadline_queue)
    topo.connect(element, sub_a, units.gbps(10), units.milliseconds(20))
    topo.connect(element, sub_b, units.gbps(10), units.milliseconds(40))
    topo.install_routes()

    # The protocol is extensible (Req 9): applications can register
    # their own feature combinations. Alerts leave the summit in
    # "deliver-check" (deadline-stamped); the long-haul element lifts
    # them into this custom mode, adding sequencing, a recovery buffer,
    # age tracking, and in-network duplication while the deadline rides
    # along untouched.
    registry = extended_registry()
    alert_fanout = registry.register(Mode(
        config_id=7,
        name="alert-fanout",
        features=(Feature.SEQUENCED | Feature.RETRANSMISSION | Feature.TIMELINESS
                  | Feature.AGE_TRACKING | Feature.DUPLICATION),
        ack_scheme=AckScheme.NAK_ONLY,
        description="Deadline-carrying alert stream, duplicated in-network.",
    ))
    ModeTransitionProgram(registry, [
        TransitionRule(from_config_id=registry.by_name("deliver-check").config_id,
                       to_mode="alert-fanout",
                       ingress_port="to_summit",
                       buffer_addr=element.ip, age_budget_ns=ALERT_DEADLINE,
                       dup_group=1, dup_copies=1),
    ]).install(element)
    DuplicationProgram({1: [sub_a.ip, sub_b.ip]}).install(element)
    AgeUpdateProgram().install(element)
    element.attach_buffer(128 * 1024 * 1024)

    summit_stack = MmtStack(summit, registry)
    archive_stack = MmtStack(archive, registry)
    stacks = {sub_a.name: MmtStack(sub_a, registry), sub_b.name: MmtStack(sub_b, registry)}

    # Alerts: deadline-stamped at the source; duplicated at the element.
    alert_sender = summit_stack.create_sender(
        experiment_id=make_experiment_id(ALERT_EXP), mode="deliver-check",
        dst_ip=archive.ip, age_budget_ns=SECOND,
        deadline_offset_ns=ALERT_DEADLINE + 80 * MILLISECOND,
        notify_addr=summit.ip, buffer_local=False,
    )
    # Bulk capture: identification-only elephants.
    bulk_sender = summit_stack.create_sender(
        experiment_id=make_experiment_id(BULK_EXP), mode="identify",
        dst_ip=archive.ip,
    )

    received = {name: [] for name in ("archive", sub_a.name, sub_b.name)}
    archive_rx_alerts = archive_stack.bind_receiver(
        ALERT_EXP, on_message=lambda p, h: received["archive"].append(sim.now - p.meta["sent_at"]))
    archive_stack.bind_receiver(BULK_EXP)
    for name, stack in stacks.items():
        stack.bind_receiver(
            ALERT_EXP,
            on_message=lambda p, h, n=name: received[n].append(sim.now - p.meta["sent_at"]),
        )

    alerts = DaqStreamSource(
        sim, rubin_alert_stream(exposure_cadence_s=5.0),
        lambda size, payload, kind: alert_sender.send(size),
        duration_ns=RUN_NS, rng_name="alerts",
    )
    # The nightly capture, scaled so the example runs in seconds of
    # wall time while keeping its elephant/alert ratio.
    bulk = DaqStreamSource(
        sim, VERA_RUBIN.workload(scale=0.0005),
        lambda size, payload, kind: bulk_sender.send(size),
        duration_ns=RUN_NS, rng_name="bulk",
    )
    alerts.start()
    bulk.start()
    sim.run()

    print("=== A Rubin night (30 s, scaled) ===")
    print(f"bulk capture moved  : {bulk.bytes_emitted / 1e9:.1f} GB "
          f"({format_rate(bulk.bytes_emitted * 8 / (RUN_NS / 1e9))})")
    print(f"alert bursts emitted: {alerts.messages_emitted} messages")
    for name, samples in received.items():
        if not samples:
            continue
        summary = LatencySummary.of(samples)
        print(f"  {name:9s}: {len(samples):4d} alerts, "
              f"p50 {format_duration(summary.p50_ns)}, "
              f"p99 {format_duration(summary.p99_ns)}")
    print(f"deadline misses at archive: {archive_rx_alerts.stats.deadline_misses}")
    assert len(received[sub_a.name]) == alerts.messages_emitted
    assert len(received[sub_b.name]) == alerts.messages_emitted


if __name__ == "__main__":
    main()
