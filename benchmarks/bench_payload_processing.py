"""A9 — §6 challenge 2: in-path payload processing.

Measures the two processors on byte-real LArTPC traffic:

- **trigger-primitive extraction**: data reduction factor and the
  suppression rate of quiet frames — what makes in-network alert
  generation affordable;
- **HDF5 transcoding**: output/input size ratio and transform
  throughput — the storage-format conversion the paper wants moved off
  the DTNs.
"""

from __future__ import annotations

import time

from repro.analysis import ResultTable, format_rate
from repro.daq import LArTpcWaveformSynth
from repro.payload import (
    TriggerPrimitiveExtractor,
    WibToHdf5Transcoder,
    load,
    parse_primitives,
)

FRAMES = 400
HIT_FRACTION = 0.1  # one frame in ten carries physics


def generate_frames():
    synth = LArTpcWaveformSynth(seed=11, noise_rms=2.5, pulse_amplitude=900)
    messages = []
    for i in range(FRAMES):
        hits = 2 if i % int(1 / HIT_FRACTION) == 0 else 0
        messages.append((synth.message(1, 0, timestamp_ticks=i, hits=hits), hits > 0))
    return messages


def run_processors():
    messages = generate_frames()
    in_bytes = sum(len(m) for m, _ in messages)

    extractor = TriggerPrimitiveExtractor(threshold=300)
    tp_out = 0
    tp_wall = time.perf_counter()
    outputs = [extractor.process(m) for m, _ in messages]
    tp_wall = time.perf_counter() - tp_wall
    tp_out = sum(len(o) for o in outputs if o is not None)
    kept = [o for o in outputs if o is not None]
    primitives = sum(len(parse_primitives(o)) for o in kept)

    transcoder = WibToHdf5Transcoder()
    tc_wall = time.perf_counter()
    containers = [transcoder.process(m) for m, _ in messages]
    tc_wall = time.perf_counter() - tc_wall
    tc_out = sum(len(c) for c in containers)
    # Every container must parse back.
    sample = load(containers[0])
    assert sample.dataset("slice0/frame0/adc").data.shape == (256,)

    return {
        "in_bytes": in_bytes,
        "tp_out": tp_out,
        "tp_kept": len(kept),
        "tp_primitives": primitives,
        "tp_rate": in_bytes / tp_wall,
        "tc_out": tc_out,
        "tc_rate": in_bytes / tc_wall,
        "suppressed": extractor.messages_suppressed,
    }


def test_payload_processing(once):
    result = once(run_processors)
    table = ResultTable(
        "A9 — in-path payload processing on LArTPC frames "
        f"({FRAMES} frames, {HIT_FRACTION:.0%} carry hits)",
        ["Processor", "Output/input", "Frames kept", "Throughput"],
    )
    reduction = result["tp_out"] / result["in_bytes"]
    table.add_row(
        "trigger primitives",
        f"{reduction:.3%}",
        f"{result['tp_kept']}/{FRAMES}",
        format_rate(result["tp_rate"] * 8),
    )
    expansion = result["tc_out"] / result["in_bytes"]
    table.add_row(
        "HDF5 transcode",
        f"{expansion:.1%}",
        f"{FRAMES}/{FRAMES}",
        format_rate(result["tc_rate"] * 8),
    )
    table.show()
    # Quiet frames are suppressed entirely; hit frames shrink >10x.
    assert result["suppressed"] == FRAMES - result["tp_kept"]
    assert result["tp_kept"] == FRAMES * HIT_FRACTION
    assert reduction < 0.02
    assert result["tp_primitives"] >= result["tp_kept"]
    # Transcoding is near size-neutral (container adds tree metadata).
    assert 0.9 < expansion < 1.6
