"""A2 — §5.3 claim: explicit deadlines as an AQM input.

An overloaded bottleneck carries two MMT flows: a low-rate *alert*
flow with a tight delivery deadline (Vera Rubin-style, §4.1 "online
processing of alerts at the time-scale of milliseconds") and a bulk
DAQ flow with a lax deadline offering 2x the bottleneck. With a
deadline-blind DropTail queue, alerts wait behind the bulk backlog and
miss; with the deadline-aware queue (EDF + shed-late), alerts jump the
queue and already-late bulk stops wasting bottleneck capacity.
"""

from __future__ import annotations

from repro.analysis import ResultTable
from repro.core import Feature, MmtHeader, MmtStack, make_experiment_id
from repro.netsim import DeadlineAwareQueue, DropTailQueue, Simulator, Topology, units
from repro.netsim.units import MILLISECOND, SECOND

ALERT_EXP = 9
BULK_EXP = 10
ALERT_DEADLINE_NS = 5 * MILLISECOND
BULK_DEADLINE_NS = 1 * SECOND
ALERT_MESSAGES = 120
BULK_MESSAGES = 1200
MESSAGE_BYTES = 8000


def run(queue_kind: str):
    sim = Simulator(seed=77)
    topo = Topology(sim)
    src = topo.add_host("src", ip="10.0.0.2")
    dst = topo.add_host("dst", ip="10.0.1.2")
    router = topo.add_router("bottleneck")

    def queue_factory():
        capacity = 2_000_000
        if queue_kind == "deadline":
            return DeadlineAwareQueue(
                capacity,
                deadline_of=lambda p: (
                    h.deadline_ns
                    if (h := p.find(MmtHeader)) is not None and h.has(Feature.TIMELINESS)
                    else None
                ),
                now=lambda: sim.now,
            )
        return DropTailQueue(capacity)

    topo.connect(src, router, units.gbps(10), 100_000)
    # The bottleneck: 1 Gb/s out of a 10 Gb/s feeder.
    topo.connect(router, dst, units.gbps(1), 100_000, queue_factory=queue_factory)
    topo.install_routes()

    src_stack = MmtStack(src)
    dst_stack = MmtStack(dst)
    outcomes = {
        ALERT_EXP: {"in_deadline": 0, "late": 0},
        BULK_EXP: {"in_deadline": 0, "late": 0},
    }

    def make_observer(experiment):
        def on_message(_packet, header):
            bucket = outcomes[experiment]
            if header.has(Feature.TIMELINESS) and sim.now <= header.deadline_ns:
                bucket["in_deadline"] += 1
            else:
                bucket["late"] += 1

        return on_message

    dst_stack.bind_receiver(ALERT_EXP, on_message=make_observer(ALERT_EXP))
    dst_stack.bind_receiver(BULK_EXP, on_message=make_observer(BULK_EXP))

    def make_sender(experiment, deadline_ns):
        return src_stack.create_sender(
            experiment_id=make_experiment_id(experiment),
            mode="deliver-check",
            dst_ip=dst.ip,
            age_budget_ns=units.seconds(1),
            deadline_offset_ns=deadline_ns,
            notify_addr=src.ip,
            buffer_local=False,  # measure the queue, not recovery
        )

    alert_sender = make_sender(ALERT_EXP, ALERT_DEADLINE_NS)
    bulk_sender = make_sender(BULK_EXP, BULK_DEADLINE_NS)
    # Bulk: one 8 kB message every 32 us = 2 Gb/s (2x the bottleneck).
    for i in range(BULK_MESSAGES):
        sim.schedule(i * 32_000, bulk_sender.send, MESSAGE_BYTES)
    # Alerts: one every 320 us = 200 Mb/s, interleaved with the bulk.
    for i in range(ALERT_MESSAGES):
        sim.schedule(i * 320_000, alert_sender.send, MESSAGE_BYTES)
    sim.schedule(BULK_MESSAGES * 32_000, bulk_sender.finish)
    sim.schedule(BULK_MESSAGES * 32_000, alert_sender.finish)
    sim.run()
    bottleneck_queue = router.ports["to_dst"].queue
    return outcomes, bottleneck_queue


def run_both():
    return {kind: run(kind) for kind in ("droptail", "deadline")}


def test_deadline_aqm_ablation(once):
    results = once(run_both)
    table = ResultTable(
        "A2 — deadline-aware AQM at a 2x-overloaded bottleneck "
        "(alerts: 5 ms deadline; bulk: 1 s deadline)",
        ["Queue", "Alerts in deadline", "Alerts late", "Bulk in deadline",
         "Queue drops", "Push-outs"],
    )
    fractions = {}
    for kind, (outcomes, queue) in results.items():
        alerts = outcomes[ALERT_EXP]
        bulk = outcomes[BULK_EXP]
        fractions[kind] = alerts["in_deadline"] / ALERT_MESSAGES
        table.add_row(
            kind,
            f"{alerts['in_deadline']}/{ALERT_MESSAGES}",
            alerts["late"],
            f"{bulk['in_deadline']}/{BULK_MESSAGES}",
            queue.dropped,
            getattr(queue, "pushouts", "-"),
        )
    table.show()
    # The crossover the paper predicts: deadline-aware queuing rescues
    # the age-sensitive flow that DropTail starves behind bulk backlog.
    assert fractions["deadline"] > 0.9
    assert fractions["droptail"] < 0.5
