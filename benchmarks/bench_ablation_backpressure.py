"""A7 — §5.1: in-network backpressure to the source.

A sender paces 4x faster than a downstream bottleneck can drain. In
``backpressured`` mode the bottleneck element watches its queue and
relays rate advice to the source (rate-limited through a register);
without the feature the element can only drop. Reported: drops,
deliveries, and the sender's final rate.
"""

from __future__ import annotations

from repro.analysis import ResultTable, format_rate
from repro.core import MmtStack, ReceiverConfig, extended_registry, make_experiment_id
from repro.dataplane import AgeUpdateProgram, BackpressureProgram, ProgrammableElement
from repro.netsim import Simulator, Topology, units
from repro.netsim.units import MILLISECOND, SECOND

EXP = 21
EXP_ID = make_experiment_id(EXP)
MESSAGES = 3000
MESSAGE_BYTES = 8000
BOTTLENECK_BPS = units.gbps(1)
OFFERED_MBPS = 4_000  # 4x the bottleneck


def run(mode: str):
    sim = Simulator(seed=55)
    topo = Topology(sim)
    src = topo.add_host("src", ip="10.0.0.2")
    dst = topo.add_host("dst", ip="10.0.1.2")
    element = ProgrammableElement(sim, "el", mac=topo.allocate_mac(), ip="10.0.0.99")
    topo.add(element)
    topo.connect(src, element, units.gbps(10), 50_000)
    topo.connect(element, dst, BOTTLENECK_BPS, 50_000)
    topo.install_routes()

    if mode == "backpressured":
        BackpressureProgram(
            occupancy_threshold_pct=30,
            advised_rate_mbps=900,
            min_interval_ns=MILLISECOND,
        ).install(element)
    AgeUpdateProgram().install(element)

    registry = extended_registry()
    src_stack = MmtStack(src, registry)
    dst_stack = MmtStack(dst, registry)
    receiver = dst_stack.bind_receiver(
        EXP, config=ReceiverConfig(initial_rtt_ns=2 * MILLISECOND)
    )
    src_stack.attach_buffer(256 * 1024 * 1024)
    sender = src_stack.create_sender(
        experiment_id=EXP_ID,
        mode=mode,
        dst_ip=dst.ip,
        pace_rate_mbps=OFFERED_MBPS,
        buffer_local=True,
    )
    for _ in range(MESSAGES):
        sender.send(MESSAGE_BYTES)
    sender.finish()
    sim.run(until_ns=2 * SECOND)
    sim.run()
    receiver.request_missing(EXP_ID, MESSAGES)
    sim.run()
    drops = element.ports["to_dst"].queue.dropped
    return sender, receiver, drops


def run_both():
    return {mode: run(mode) for mode in ("paced", "backpressured")}


def test_backpressure_ablation(once):
    results = once(run_both)
    table = ResultTable(
        "A7 — backpressure at a 4x-overloaded bottleneck (1 Gb/s)",
        ["Mode", "Final sender rate", "Bottleneck drops", "Delivered",
         "NAKs", "Signals received"],
    )
    for mode, (sender, receiver, drops) in results.items():
        table.add_row(
            mode,
            format_rate(sender.pace_rate_mbps * 1e6),
            drops,
            receiver.stats.messages_delivered,
            receiver.stats.naks_sent,
            sender.stats.backpressure_signals,
        )
    table.show()
    plain_sender, plain_rx, plain_drops = results["paced"]
    bp_sender, bp_rx, bp_drops = results["backpressured"]
    # The signal arrived and throttled the source below the bottleneck.
    assert bp_sender.stats.backpressure_signals >= 1
    assert bp_sender.pace_rate_mbps <= 900
    assert plain_sender.pace_rate_mbps == OFFERED_MBPS
    # Throttling converts queue drops into clean, drop-free delivery.
    assert bp_drops < plain_drops
    assert bp_rx.stats.messages_delivered == MESSAGES
