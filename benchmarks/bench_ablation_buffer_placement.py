"""A1 — §5.3 claim: hop-by-hop recovery beats end-to-end.

A four-segment path with loss on the last hop. The retransmission
buffer is placed at increasing distance from the receiver (source,
25%, 50%, 75% of the path); recovery latency for a lost packet is the
NAK round trip to that buffer, so the measured *excess* latency of
recovered messages should fall roughly linearly as the buffer moves
downstream — the paper's argument for using "a more 'recent' (lower
RTT) retransmission buffer" (§1).
"""

from __future__ import annotations

from repro.analysis import ResultTable, format_duration, percentile
from repro.core import MmtStack, ReceiverConfig, make_experiment_id, pilot_registry
from repro.dataplane import (
    AgeUpdateProgram,
    BufferTapProgram,
    ModeTransitionProgram,
    ProgrammableElement,
    TransitionRule,
)
from repro.netsim import Simulator, Topology, units
from repro.netsim.units import MILLISECOND

EXP = 12
EXP_ID = make_experiment_id(EXP)
SEGMENT_DELAY = 10 * MILLISECOND
HOPS = 4
MESSAGES = 1500
LOSS = 0.02


def run_with_buffer_at(position: int):
    """Build src - e1 - e2 - e3 - dst; buffer hosted at element
    ``position`` (1..3) or at the source (0)."""
    sim = Simulator(seed=100 + position)
    topo = Topology(sim)
    src = topo.add_host("src", ip="10.0.0.2")
    dst = topo.add_host("dst", ip="10.0.9.2")
    elements = []
    for i in range(1, HOPS):
        element = ProgrammableElement(
            sim, f"e{i}", mac=topo.allocate_mac(), ip=f"10.0.{i}.1"
        )
        topo.add(element)
        elements.append(element)
    chain = [src, *elements, dst]
    for i, (a, b) in enumerate(zip(chain, chain[1:])):
        loss = LOSS if i == len(chain) - 2 else 0.0  # last hop lossy
        topo.connect(a, b, units.gbps(100), SEGMENT_DELAY, loss_rate=loss)
    topo.install_routes()

    src_stack = MmtStack(src)
    dst_stack = MmtStack(dst)
    delivered = []
    receiver = dst_stack.bind_receiver(
        EXP,
        on_message=lambda p, h: delivered.append(
            (sim.now - p.meta["sent_at"], h.msg_type.name)
        ),
        config=ReceiverConfig(initial_rtt_ns=4 * SEGMENT_DELAY * HOPS),
    )

    if position == 0:
        src_stack.attach_buffer(512 * 1024 * 1024)
        sender = src_stack.create_sender(
            experiment_id=EXP_ID, mode="age-recover", dst_ip=dst.ip,
            age_budget_ns=units.seconds(5), buffer_local=True,
        )
    else:
        sender = src_stack.create_sender(
            experiment_id=EXP_ID, mode="identify", dst_ip=dst.ip
        )
        host_element = elements[position - 1]
        host_element.attach_buffer(512 * 1024 * 1024)
        ModeTransitionProgram(
            pilot_registry(),
            [TransitionRule(from_config_id=0, to_mode="age-recover",
                            buffer_addr=host_element.ip,
                            age_budget_ns=units.seconds(5))],
        ).install(host_element)
        BufferTapProgram(buffer_addr=host_element.ip).install(host_element)
        AgeUpdateProgram().install(host_element)

    for _ in range(MESSAGES):
        sender.send(4000)
    sender.finish()
    sim.run()
    receiver.request_missing(EXP_ID, MESSAGES if position == 0 else receiver._flow(EXP_ID).highest_seen + 1)
    sim.run()
    return delivered, receiver


def run_all_positions():
    return {pos: run_with_buffer_at(pos) for pos in range(HOPS)}


def test_buffer_placement_ablation(once):
    results = once(run_all_positions)
    first_chance = (HOPS * SEGMENT_DELAY)  # one-way, loss-free latency
    table = ResultTable(
        "A1 — recovery latency vs buffer placement (loss on last hop)",
        ["Buffer at", "Hops from dst", "Recovered", "p50 all",
         "p99 all", "Recovered p50 excess"],
    )
    excesses = {}
    for position, (delivered, receiver) in results.items():
        latencies = [lat for lat, _kind in delivered]
        recovered = [lat for lat, kind in delivered if kind == "RETX_DATA"]
        assert recovered, f"position {position}: no recoveries observed"
        excess = percentile(recovered, 0.5) - first_chance
        excesses[position] = excess
        hops_from_dst = HOPS - position
        label = "source" if position == 0 else f"e{position}"
        table.add_row(
            label,
            hops_from_dst,
            len(recovered),
            format_duration(percentile(latencies, 0.5)),
            format_duration(percentile(latencies, 0.99)),
            format_duration(excess),
        )
    table.show()
    # Monotone: the closer the buffer, the cheaper the recovery; the
    # end-to-end (source) case costs about a full-path NAK round trip.
    assert excesses[3] < excesses[2] < excesses[1] < excesses[0]
    # Rough linearity: source recovery ~ 4 segments of NAK RTT vs 1.
    assert excesses[0] > 2.5 * excesses[3]
