"""A10 — §5.3: network-driven (X.25-style) vs receiver-driven recovery.

Loss happens on an upstream segment; the consumer sits ever farther
downstream. With receiver-driven NAKs, recovery latency grows with the
consumer's distance (its NAK must cross the whole downstream path).
With segment-local repair at the element bounding the lossy segment,
recovery latency is pinned to that segment's round trip — however far
the consumer is. The crossover the hop-by-hop design buys.
"""

from __future__ import annotations

from repro.analysis import ResultTable, format_duration, percentile
from repro.core import MmtStack, ReceiverConfig, make_experiment_id
from repro.core.modes import pilot_registry
from repro.dataplane import (
    AgeUpdateProgram,
    BufferTapProgram,
    ModeTransitionProgram,
    ProgrammableElement,
    SegmentRecoveryProgram,
    TransitionRule,
)
from repro.netsim import Simulator, Topology, units
from repro.netsim.units import MILLISECOND

EXP = 19
EXP_ID = make_experiment_id(EXP)
MESSAGES = 1200
MID_LOSS = 0.03
TAIL_DELAYS_MS = [5, 25, 50]


def run(tail_delay_ms: int, repair: bool):
    sim = Simulator(seed=90 + tail_delay_ms)
    topo = Topology(sim)
    src = topo.add_host("src", ip="10.0.0.2")
    dst = topo.add_host("dst", ip="10.0.9.2")
    e1 = ProgrammableElement(sim, "e1", mac=topo.allocate_mac(), ip="10.0.1.1")
    e2 = ProgrammableElement(sim, "e2", mac=topo.allocate_mac(), ip="10.0.2.1")
    topo.add(e1)
    topo.add(e2)
    topo.connect(src, e1, units.gbps(10), 1 * MILLISECOND)
    topo.connect(e1, e2, units.gbps(10), 5 * MILLISECOND, loss_rate=MID_LOSS)
    topo.connect(e2, dst, units.gbps(10), tail_delay_ms * MILLISECOND)
    topo.install_routes()

    registry = pilot_registry()
    ModeTransitionProgram(registry, [
        TransitionRule(from_config_id=0, to_mode="age-recover",
                       buffer_addr=e1.ip, age_budget_ns=units.seconds(1)),
    ]).install(e1)
    e1.attach_buffer(512 * 1024 * 1024)
    BufferTapProgram(buffer_addr=e1.ip).install(e1)
    AgeUpdateProgram().install(e1)
    e2.attach_buffer(512 * 1024 * 1024)
    e2.nak_fallback_addr = e1.ip
    BufferTapProgram(buffer_addr=e2.ip).install(e2)
    recovery = None
    if repair:
        recovery = SegmentRecoveryProgram(
            upstream_buffer_addr=e1.ip,
            reorder_wait_ns=units.microseconds(200),
            retry_interval_ns=25 * MILLISECOND,
        )
        recovery.install(e2)

    src_stack = MmtStack(src, registry)
    dst_stack = MmtStack(dst, registry)
    receiver = dst_stack.bind_receiver(
        EXP,
        config=ReceiverConfig(
            initial_rtt_ns=2 * (tail_delay_ms + 6) * MILLISECOND,
            # Patient destination when the network repairs for it.
            reorder_wait_ns=(30 * MILLISECOND if repair else 50_000),
        ),
    )
    sender = src_stack.create_sender(experiment_id=EXP_ID, mode="identify", dst_ip=dst.ip)
    for i in range(MESSAGES):
        sim.schedule(i * 20_000, sender.send, 1500)
    sim.run()
    receiver.request_missing(EXP_ID, MESSAGES)
    sim.run()
    assert receiver.stats.unrecovered == 0
    base = (6 + tail_delay_ms) * MILLISECOND  # loss-free one-way latency
    latencies = [lat for _t, lat in receiver.delivery_log]
    worst = percentile(latencies, 1.0)
    return worst - base, receiver, recovery


def run_matrix():
    rows = []
    for tail in TAIL_DELAYS_MS:
        excess_rx, _r1, _ = run(tail, repair=False)
        excess_net, _r2, recovery = run(tail, repair=True)
        rows.append((tail, excess_rx, excess_net, recovery.stats.repairs_forwarded))
    return rows


def test_segment_repair_ablation(once):
    rows = once(run_matrix)
    table = ResultTable(
        "A10 — worst-case recovery excess: receiver-driven vs segment-local "
        f"(loss on the 5 ms mid-segment, {MID_LOSS:.0%})",
        ["Consumer distance", "Receiver-driven", "Segment-local", "Repairs in-network"],
    )
    for tail, excess_rx, excess_net, repairs in rows:
        table.add_row(
            f"{tail} ms",
            format_duration(excess_rx),
            format_duration(excess_net),
            repairs,
        )
        assert repairs > 0
    table.show()
    # Receiver-driven excess grows with consumer distance...
    rx = [row[1] for row in rows]
    assert rx[0] < rx[1] < rx[2]
    # ...while segment-local repair does not grow with it (it is pinned
    # near the lossy segment's RTT plus retry noise, not the path RTT).
    net = [row[2] for row in rows]
    assert max(net) < 3 * (2 * 5 * MILLISECOND) + 5 * MILLISECOND
    assert net[2] <= net[0] + 5 * MILLISECOND
    # At every distance the network-driven scheme wins outright.
    for (_tail, excess_rx, excess_net, _r) in rows:
        assert excess_net < excess_rx
