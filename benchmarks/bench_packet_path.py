"""P2 — packet-path throughput microbenchmark.

Times :func:`repro.analysis.perf.packet_path_churn` (the same workload
``repro bench`` runs) and records ``packets_per_second`` into
``BENCH_packet_path.json``.

Like the engine bench, the assertions are deterministic *operation
budgets* — exact counts, not wall-clock thresholds — so CI's perf-smoke
job stays meaningful on noisy shared runners. ``size_bytes_total`` in
particular pins the byte-accurate wire sizing through the memoized
``Packet.size_bytes`` path: a caching bug that returned stale sizes
would change the sum.
"""

from __future__ import annotations

from repro.analysis.perf import packet_path_churn, packet_train_churn

PACKETS = 20_000
HOPS = 4
TRAIN = 32
SEED = 7

#: Wire bytes of one workload packet: Ethernet(18) + IPv4(20) + UDP(8)
#: + MMT core+SEQ+RETX+AGE (8+4+4+17) + 8000B payload.
PACKET_BYTES = 18 + 20 + 8 + 33 + 8000


def test_packet_path_throughput(once, bench_result):
    counts = once(packet_path_churn, packets=PACKETS, hops=HOPS, seed=SEED)

    # Operation budget (pure function of PACKETS/HOPS; see docstring).
    assert counts["packets"] == PACKETS
    assert counts["pushes"] == counts["pops"] == 3 * PACKETS
    assert counts["size_checks"] == 2 * HOPS * PACKETS
    assert counts["size_bytes_total"] == 2 * HOPS * PACKETS * PACKET_BYTES
    assert counts["encoded_bytes"] == 33 * PACKETS
    assert counts["decodes"] == PACKETS
    # Tracing-disabled guard: the default run *is* the product path with
    # the tracer hooks compiled in but off — it must emit nothing and
    # keep the exact pre-tracing budget above.
    assert counts["trace_emits"] == 0
    # Same contract for the sampler hooks: off by default, zero emits.
    assert counts["sample_emits"] == 0

    wall = bench_result.metrics["test_packet_path_throughput"]["wall_time_s"]
    bench_result.params = {"packets": PACKETS, "hops": HOPS, "train": TRAIN}
    bench_result.seed = SEED
    bench_result.record(
        "test_packet_path_throughput",
        packets_per_second=round(counts["packets"] / wall),
        **counts,
    )


def test_packet_path_tracing_enabled(once, bench_result):
    """Tracing-enabled twin: same workload with a live flight recorder.

    The non-trace operation budget must not move by a single operation
    (tracing observes, never steers), and the emit count is exact:
    one per hop per packet. The bounded ring keeps memory flat."""
    from repro.netsim.engine import Simulator
    from repro.trace import Tracer

    tracer = Tracer(Simulator(seed=7), capacity=1024)
    counts = once(packet_path_churn, packets=PACKETS, hops=HOPS, tracer=tracer, seed=SEED)

    assert counts["packets"] == PACKETS
    assert counts["pushes"] == counts["pops"] == 3 * PACKETS
    assert counts["size_checks"] == 2 * HOPS * PACKETS
    assert counts["size_bytes_total"] == 2 * HOPS * PACKETS * PACKET_BYTES
    assert counts["encoded_bytes"] == 33 * PACKETS
    assert counts["decodes"] == PACKETS
    assert counts["trace_emits"] == HOPS * PACKETS
    assert counts["sample_emits"] == 0
    assert tracer.events_emitted == HOPS * PACKETS
    assert tracer.events_retained <= 1024

    wall = bench_result.metrics["test_packet_path_tracing_enabled"]["wall_time_s"]
    bench_result.record(
        "test_packet_path_tracing_enabled",
        packets_per_second=round(counts["packets"] / wall),
        trace_emits=counts["trace_emits"],
        events_retained=tracer.events_retained,
    )


def test_packet_path_sampling_enabled(once, bench_result):
    """Sampler-enabled twin: same workload with live counter sampling.

    Like tracing, sampling observes and never steers: the non-sample
    operation budget is identical to the default run, and the emit
    count is exact — one recorded point per hop per packet, landing in
    ``HOPS`` bounded ring series."""
    from repro.netsim.engine import Simulator
    from repro.obs import Sampler

    sampler = Sampler(Simulator(seed=7), every_ns=1_000, capacity=1024)
    counts = once(packet_path_churn, packets=PACKETS, hops=HOPS, sampler=sampler, seed=SEED)

    assert counts["packets"] == PACKETS
    assert counts["pushes"] == counts["pops"] == 3 * PACKETS
    assert counts["size_checks"] == 2 * HOPS * PACKETS
    assert counts["size_bytes_total"] == 2 * HOPS * PACKETS * PACKET_BYTES
    assert counts["encoded_bytes"] == 33 * PACKETS
    assert counts["decodes"] == PACKETS
    assert counts["sample_emits"] == HOPS * PACKETS
    assert sampler.sample_emits == HOPS * PACKETS
    assert len(sampler.all_series()) == HOPS
    assert all(len(s.points) <= 1024 for s in sampler.all_series())

    wall = bench_result.metrics["test_packet_path_sampling_enabled"]["wall_time_s"]
    bench_result.record(
        "test_packet_path_sampling_enabled",
        packets_per_second=round(counts["packets"] / wall),
        sample_emits=counts["sample_emits"],
        series=len(sampler.all_series()),
    )


def test_packet_train_throughput(once, bench_result):
    """Batched twin: the same header count in TRAIN-sized trains.

    The operation budget pins exactly what batching amortizes — one
    Packet build / encapsulation / size-check set / fast-forward probe
    per *train* — and what it must not touch: per-header codec bytes
    and decodes. The fast-forward guard must prove the no-op on every
    hop (``ff_hits == ff_checks``), and the workload must stay off the
    tracer path (``trace_emits == 0``), same as the single-packet run.
    """
    counts = once(
        packet_train_churn, packets=PACKETS, hops=HOPS, train=TRAIN, seed=SEED
    )

    trains = PACKETS // TRAIN
    assert counts["packets"] == PACKETS
    assert counts["trains"] == trains
    assert counts["pushes"] == counts["pops"] == 3 * trains
    assert counts["size_checks"] == 2 * HOPS * trains
    # One train datagram: Ethernet(18) + IPv4(20) + UDP(8) + TRAIN MMT
    # headers (33B each) + TRAIN payloads — byte-equal to TRAIN single
    # packets minus the amortized encapsulation.
    train_bytes = 18 + 20 + 8 + TRAIN * (33 + 8000)
    assert counts["size_bytes_total"] == 2 * HOPS * trains * train_bytes
    assert counts["encoded_bytes"] == 33 * PACKETS
    assert counts["decodes"] == PACKETS
    assert counts["ff_checks"] == counts["ff_hits"] == HOPS * trains
    assert counts["trace_emits"] == 0
    assert counts["sample_emits"] == 0

    wall = bench_result.metrics["test_packet_train_throughput"]["wall_time_s"]
    bench_result.record(
        "test_packet_train_throughput",
        packets_per_second=round(counts["packets"] / wall),
        trains_per_second=round(counts["trains"] / wall),
        **counts,
    )
