"""P2 — packet-path throughput microbenchmark.

Times :func:`repro.analysis.perf.packet_path_churn` (the same workload
``repro bench`` runs) and records ``packets_per_second`` into
``BENCH_packet_path.json``.

Like the engine bench, the assertions are deterministic *operation
budgets* — exact counts, not wall-clock thresholds — so CI's perf-smoke
job stays meaningful on noisy shared runners. ``size_bytes_total`` in
particular pins the byte-accurate wire sizing through the memoized
``Packet.size_bytes`` path: a caching bug that returned stale sizes
would change the sum.
"""

from __future__ import annotations

from repro.analysis.perf import packet_path_churn

PACKETS = 20_000
HOPS = 4

#: Wire bytes of one workload packet: Ethernet(18) + IPv4(20) + UDP(8)
#: + MMT core+SEQ+RETX+AGE (8+4+4+17) + 8000B payload.
PACKET_BYTES = 18 + 20 + 8 + 33 + 8000


def test_packet_path_throughput(once, bench_result):
    counts = once(packet_path_churn, packets=PACKETS, hops=HOPS)

    # Operation budget (pure function of PACKETS/HOPS; see docstring).
    assert counts["packets"] == PACKETS
    assert counts["pushes"] == counts["pops"] == 3 * PACKETS
    assert counts["size_checks"] == 2 * HOPS * PACKETS
    assert counts["size_bytes_total"] == 2 * HOPS * PACKETS * PACKET_BYTES
    assert counts["encoded_bytes"] == 33 * PACKETS
    assert counts["decodes"] == PACKETS

    wall = bench_result.metrics["test_packet_path_throughput"]["wall_time_s"]
    bench_result.params = {"packets": PACKETS, "hops": HOPS}
    bench_result.record(
        "test_packet_path_throughput",
        packets_per_second=round(counts["packets"] / wall),
        **counts,
    )
