"""P1 — event-engine throughput microbenchmark.

Times :func:`repro.analysis.perf.engine_event_churn` (the same workload
``repro bench`` runs) and records ``events_per_second`` into
``BENCH_engine_throughput.json`` — the committed trajectory later PRs
compare against.

The assertions are *operation budgets*: exact counts the deterministic
workload must produce. CI's perf-smoke job runs this on shared runners
where wall-clock thresholds would flap, but an accidental extra
schedule/cancel per event changes the counts and fails loudly.
"""

from __future__ import annotations

from repro.analysis.perf import engine_event_churn

EVENTS = 200_000
CANCEL_EVERY = 4
BATCH = 512


def test_engine_throughput(once, bench_result):
    counts = once(engine_event_churn, events=EVENTS, cancel_every=CANCEL_EVERY, batch=BATCH)

    # Operation budget: every count is a pure function of the workload
    # arguments (see engine_event_churn's docstring).
    assert counts["scheduled"] == EVENTS + BATCH
    assert counts["cancelled"] == EVENTS // CANCEL_EVERY + BATCH - (BATCH + 9) // 10
    assert counts["fired"] == counts["scheduled"] - counts["cancelled"]
    assert counts["events_processed"] == counts["fired"]
    assert counts["peak_pending"] == BATCH - BATCH // CANCEL_EVERY

    wall = bench_result.metrics["test_engine_throughput"]["wall_time_s"]
    bench_result.seed = 7
    bench_result.params = {"events": EVENTS, "cancel_every": CANCEL_EVERY, "batch": BATCH}
    bench_result.record(
        "test_engine_throughput",
        events_per_second=round(counts["events_processed"] / wall),
        **counts,
    )
