"""A6 — §4.1: the single-stream ceiling.

The paper cites ~30 Gb/s for a tuned single TCP stream (55 Gb/s in a
testbed) against 400 GbE NICs. This bench runs one bulk flow over a
100 GbE path at several RTTs: tuned CUBIC, tuned BBR, and an MMT
stream paced at 95% of line rate (capacity-planned, no congestion
control — the §5.3 hypothesis). The expected shape: TCP is cwnd- and
ramp-limited as RTT grows; MMT holds near line rate regardless.
"""

from __future__ import annotations

from repro.analysis import ResultTable, format_rate
from repro.baselines import TcpStack, tuned_100g, tuned_100g_bbr
from repro.core import MmtStack, make_experiment_id
from repro.netsim import Simulator, Topology, units
from repro.netsim.units import SECOND

EXP_ID = make_experiment_id(33)
TRANSFER_BYTES = 400 * 1024 * 1024  # 400 MB bulk transfer
RTTS_MS = [1, 10, 50]


def build_path(sim, rtt_ms):
    topo = Topology(sim)
    a = topo.add_host("a", ip="10.0.0.2")
    b = topo.add_host("b", ip="10.0.1.2")
    r = topo.add_router("r")
    topo.connect(a, r, units.gbps(100), units.microseconds(5))
    topo.connect(r, b, units.gbps(100), units.milliseconds(rtt_ms / 2))
    topo.install_routes()
    return topo, a, b


def run_tcp(profile, rtt_ms):
    sim = Simulator(seed=61)
    _topo, a, b = build_path(sim, rtt_ms)
    sa, sb = TcpStack(a), TcpStack(b)
    sb.listen(5000, config=profile)
    done = {}
    conn = sa.connect(b.ip, 5000, config=profile)
    conn.on_all_acked = lambda: done.setdefault("t", sim.now)
    conn.send(TRANSFER_BYTES)
    sim.run(until_ns=120 * SECOND)
    if "t" not in done:
        return 0.0
    return TRANSFER_BYTES * 8 * SECOND / done["t"]


def run_mmt(rtt_ms):
    from repro.core import extended_registry

    sim = Simulator(seed=61)
    _topo, a, b = build_path(sim, rtt_ms)
    sa = MmtStack(a, extended_registry())
    sb = MmtStack(b, extended_registry())
    message = 8192
    count = TRANSFER_BYTES // message
    received = {"n": 0, "first": None, "last": None}

    def on_message(_p, _h):
        received["n"] += 1
        if received["first"] is None:
            received["first"] = sim.now
        received["last"] = sim.now

    sb.bind_receiver(33, on_message=on_message)
    sa.attach_buffer(512 * 1024 * 1024)
    sender = sa.create_sender(
        experiment_id=EXP_ID, mode="paced", dst_ip=b.ip,
        pace_rate_mbps=95_000, buffer_local=True,
    )
    for _ in range(count):
        sender.send(message)
    sender.finish()
    sim.run(until_ns=120 * SECOND)
    if received["n"] < count:
        return 0.0
    # Delivery rate over the arrival window (the sustained-stream
    # metric; FCT would fold one path latency into a 35 ms transfer).
    window = received["last"] - received["first"]
    return (count - 1) * message * 8 * SECOND / window


def run_matrix():
    rows = []
    for rtt in RTTS_MS:
        rows.append(
            (
                rtt,
                run_tcp(tuned_100g(), rtt),
                run_tcp(tuned_100g_bbr(), rtt),
                run_mmt(rtt),
            )
        )
    return rows


def test_single_stream_ceiling(once):
    rows = once(run_matrix)
    table = ResultTable(
        "A6 — single-stream goodput on a 100 GbE path (400 MB transfer)",
        ["RTT", "Tuned CUBIC", "Tuned BBR", "MMT paced (no CC)"],
    )
    for rtt, cubic, bbr, mmt in rows:
        table.add_row(
            f"{rtt} ms",
            format_rate(cubic),
            format_rate(bbr),
            format_rate(mmt),
        )
        # MMT holds near line rate at every RTT (capacity-planned path).
        assert mmt > units.gbps(85)
        # TCP always lands below the paced MMT stream.
        assert cubic < mmt and bbr < mmt
    table.show()
    # TCP degrades with RTT; MMT is flat (within 5%).
    cubic_rates = [row[1] for row in rows]
    mmt_rates = [row[3] for row in rows]
    assert cubic_rates[0] > cubic_rates[-1]
    assert max(mmt_rates) - min(mmt_rates) < 0.05 * max(mmt_rates)
