"""A8 — §6 challenge 1: resource discovery and work distribution.

Two measurements the paper's future-work section implies:

1. **Map convergence** — how long until every operator domain holds
   the full resource map, as the domain count grows (linear chain of
   peerings, 15 ms per session — continental scale).
2. **Placement equivalence** — a flow planned *automatically* over the
   discovered map recovers losses exactly as well as the hand-built
   pilot wiring: complete delivery, recovery from the nearest buffer,
   zero sensor involvement.
"""

from __future__ import annotations

from repro.analysis import ResultTable, format_duration
from repro.controlplane import (
    Capability,
    FlowIntent,
    MapSpeaker,
    ResourceDescriptor,
    ResourceMap,
    converge,
    install_plan,
    plan_flow,
)
from repro.core import MmtStack, ReceiverConfig, extended_registry, make_experiment_id
from repro.dataplane import ProgrammableElement
from repro.netsim import Simulator, Topology, units
from repro.netsim.units import MILLISECOND

EXP = 44
EXP_ID = make_experiment_id(EXP)
ALL_CAPS = frozenset({
    Capability.MODE_TRANSITION, Capability.RETRANSMIT_BUFFER, Capability.AGE_UPDATE,
})


def convergence_for(domains: int) -> tuple[int, int]:
    """(convergence time ns, total updates) for a chain of domains."""
    sim = Simulator(seed=5)
    speakers = [MapSpeaker(sim, f"d{i}") for i in range(domains)]
    for a, b in zip(speakers, speakers[1:]):
        a.peer_with(b, 15 * MILLISECOND)
    for i, speaker in enumerate(speakers):
        speaker.advertise(ResourceDescriptor(
            node=f"element{i}", domain=speaker.domain, address=f"10.0.{i}.1",
            capabilities=ALL_CAPS, buffer_bytes=1 << 28,
        ))
    sim.run()
    assert converge(speakers)
    updates = sum(s.updates_sent for s in speakers)
    return sim.now, updates


def placement_recovery() -> dict:
    """Auto-placed flow over a lossy chain: recovery quality."""
    sim = Simulator(seed=6)
    topo = Topology(sim)
    src = topo.add_host("src", ip="10.0.0.2")
    dst = topo.add_host("dst", ip="10.0.9.2")
    resource_map = ResourceMap()
    elements = {}
    chain = [src]
    for i in (1, 2, 3):
        element = ProgrammableElement(sim, f"e{i}", mac=topo.allocate_mac(), ip=f"10.0.{i}.1")
        topo.add(element)
        elements[f"e{i}"] = element
        resource_map.upsert(ResourceDescriptor(
            node=f"e{i}", domain="wan", address=element.ip,
            capabilities=ALL_CAPS, buffer_bytes=1 << 28,
        ))
        chain.append(element)
    chain.append(dst)
    for i, (a, b) in enumerate(zip(chain, chain[1:])):
        loss = 0.03 if i >= 2 else 0.0
        topo.connect(a, b, units.gbps(10), 3 * MILLISECOND, loss_rate=loss)
    topo.install_routes()

    registry = extended_registry()
    intent = FlowIntent(experiment_id=EXP_ID, reliable=True, age_budget_ns=units.seconds(1))
    plan = plan_flow(resource_map, ["src", "e1", "e2", "e3", "dst"], intent, registry)
    install_plan(plan, elements, registry)

    src_stack = MmtStack(src, registry)
    dst_stack = MmtStack(dst, registry)
    got = set()
    receiver = dst_stack.bind_receiver(
        EXP, on_message=lambda p, h: got.add(h.seq),
        config=ReceiverConfig(initial_rtt_ns=units.milliseconds(15)),
    )
    sender = src_stack.create_sender(experiment_id=EXP_ID, mode="identify", dst_ip=dst.ip)
    messages = 1500
    for i in range(messages):
        sim.schedule(i * 4_000, sender.send, 4000)
    sim.run()
    receiver.request_missing(EXP_ID, messages)
    sim.run()
    return {
        "delivered": len(got),
        "messages": messages,
        "naks": receiver.stats.naks_sent,
        "retx": receiver.stats.retransmissions_received,
        "unrecovered": receiver.stats.unrecovered,
        "served": {name: e.stats.naks_served for name, e in elements.items()},
        "source_rx": src.rx_unhandled,
    }


def run_all():
    convergence = [(n, *convergence_for(n)) for n in (2, 4, 8, 16)]
    recovery = placement_recovery()
    return convergence, recovery


def test_controlplane_convergence_and_placement(once):
    convergence, recovery = once(run_all)
    table = ResultTable(
        "A8 — resource-map convergence (chain of domains, 15 ms sessions)",
        ["Domains", "Convergence time", "Updates sent", "Per-domain"],
    )
    for domains, time_ns, updates in convergence:
        table.add_row(domains, format_duration(time_ns), updates,
                      f"{updates / domains:.1f}")
        # Convergence is bounded by the chain diameter, not update storms.
        assert time_ns <= (domains - 1) * 15 * MILLISECOND
    table.show()
    # Flooding with loop suppression: each of the n descriptors crosses
    # every other domain exactly once — n(n-1) updates, no storms.
    for domains, _time_ns, updates in convergence:
        assert updates == domains * (domains - 1)

    table2 = ResultTable(
        "A8 (cont.) — auto-placed flow recovery on a 3% lossy chain",
        ["Delivered", "NAKs", "Retx", "Unrecovered", "NAKs served by", "Sensor rx"],
    )
    table2.add_row(
        f"{recovery['delivered']}/{recovery['messages']}",
        recovery["naks"],
        recovery["retx"],
        recovery["unrecovered"],
        str(recovery["served"]),
        recovery["source_rx"],
    )
    table2.show()
    assert recovery["delivered"] == recovery["messages"]
    assert recovery["unrecovered"] == 0
    assert recovery["source_rx"] == 0  # the source never serves recovery
