"""MF — concurrent multi-flow pilot: fairness and aggregate goodput.

Runs N tagged flows (alternating ICEBERG-style steady readout and
synthetic-DUNE Poisson event bursts) over one shared pilot build and
measures what a shared facility cares about: aggregate goodput,
per-flow completion-time spread, and the Jain fairness index over
normalized (delivered/offered) goodput. The DRR relay at DTN 1 is the
mechanism under test — a FIFO relay would let the steady elephants
push the bursty flows' completion times out.

Invariants asserted for every case: per-flow unrecovered loss is zero
and Jain fairness ≥ 0.9 (the multi-flow PR's acceptance bar).
"""

from __future__ import annotations

from repro.analysis import ResultTable, format_duration, format_rate
from repro.integration import MultiFlowConfig, MultiFlowOrchestrator
from repro.netsim.units import MILLISECOND

def build_cases():
    from repro.dataplane import PilotConfig

    return [
        ("2 flows, clean", MultiFlowConfig(flows=2, seed=7)),
        ("4 flows, clean", MultiFlowConfig(flows=4, seed=7)),
        ("8 flows, clean", MultiFlowConfig(flows=8, seed=7)),
        (
            "4 flows, lossy WAN",
            MultiFlowConfig(
                flows=4,
                seed=7,
                pilot=PilotConfig(wan_loss_rate=0.01, wan_delay_ns=1 * MILLISECOND),
            ),
        ),
    ]


def run_cases():
    results = []
    for name, config in build_cases():
        orchestrator = MultiFlowOrchestrator(config)
        results.append((name, orchestrator, orchestrator.run()))
    return results


def test_multiflow_fairness(once, bench_result):
    results = once(run_cases)
    bench_result.seed = 7
    bench_result.params = {
        "duration_ns": MultiFlowConfig().duration_ns,
        "message_bytes": MultiFlowConfig().message_bytes,
        "steady_rate_bps": MultiFlowConfig().steady_rate_bps,
        "event_rate_hz": MultiFlowConfig().event_rate_hz,
    }
    table = ResultTable(
        "Concurrent multi-flow pilot (DRR relay at DTN 1)",
        ["Case", "Flows", "Delivered", "Goodput", "Fairness", "Spread", "Unrecovered"],
    )
    for name, _orch, report in results:
        unrecovered = sum(row["unrecovered"] for row in report.per_flow.values())
        bench_result.record(
            name,
            flows=report.flows,
            delivered=report.pilot.delivered,
            aggregate_goodput_bps=round(report.aggregate_goodput_bps),
            jain_fairness=round(report.fairness, 6),
            completion_spread_ns=report.completion_spread_ns,
            unrecovered=unrecovered,
        )
        table.add_row(
            name,
            report.flows,
            f"{report.pilot.delivered}/{report.pilot.messages_sent}",
            format_rate(round(report.aggregate_goodput_bps)),
            f"{report.fairness:.4f}",
            format_duration(report.completion_spread_ns),
            unrecovered,
        )
        # Acceptance bar for the multi-flow transport (per-flow, not
        # just aggregate): nothing given up, byte-fair service.
        assert report.complete, f"{name}: a flow lost data permanently"
        assert unrecovered == 0, f"{name}: unrecovered loss {unrecovered}"
        assert report.fairness >= 0.9, f"{name}: fairness {report.fairness:.4f} < 0.9"
    table.show()
