"""A3 — §4.1 claim: the bytestream causes head-of-line blocking.

Same messages, same path, same losses: delivered through a TCP
bytestream (in-order release, so one hole delays everything behind it)
versus MMT datagrams (every arriving message is released immediately;
only the lost ones pay the recovery RTT). The signature shape: TCP's
p99 message latency blows up with loss while its p50 stays low-ish;
MMT's p99 stays near its p50 because delays don't propagate across
messages.
"""

from __future__ import annotations

from repro.analysis import ResultTable, format_duration, percentile
from repro.netsim.units import MILLISECOND
from repro.wan import MultimodalScenario, ScenarioConfig, TodayScenario

LOSSES = [0.0, 1e-4, 1e-3, 5e-3]
MESSAGES = 3000
INTERVAL_NS = 256_000  # 256 Mb/s of 8 kB messages: far below capacity


def steady(samples):
    return samples[len(samples) // 2 :]


def run_sweep():
    rows = []
    for loss in LOSSES:
        cfg = ScenarioConfig(
            message_count=MESSAGES,
            message_interval_ns=INTERVAL_NS,
            wan_delay_ns=15 * MILLISECOND,
            campus_delay_ns=2 * MILLISECOND,
            wan_loss_rate=loss,
        )
        today = TodayScenario(config=cfg).run()
        mmt = MultimodalScenario(config=cfg).run()
        rows.append((loss, today, mmt))
    return rows


def test_hol_blocking_ablation(once):
    rows = once(run_sweep)
    table = ResultTable(
        "A3 — head-of-line blocking: bytestream vs datagrams (15 ms WAN)",
        ["Loss", "TCP p50", "TCP p99", "TCP p99/p50",
         "MMT p50", "MMT p99", "MMT p99/p50"],
    )
    ratios = {}
    for loss, today, mmt in rows:
        t = steady(today.storage_latencies_ns)
        m = steady(mmt.storage_latencies_ns)
        t_ratio = percentile(t, 0.99) / percentile(t, 0.5)
        m_ratio = percentile(m, 0.99) / percentile(m, 0.5)
        ratios[loss] = (t_ratio, m_ratio)
        table.add_row(
            f"{loss:g}",
            format_duration(percentile(t, 0.5)),
            format_duration(percentile(t, 0.99)),
            f"{t_ratio:.2f}",
            format_duration(percentile(m, 0.5)),
            format_duration(percentile(m, 0.99)),
            f"{m_ratio:.2f}",
        )
    table.show()
    # Shape: without loss both are tight; with loss the TCP tail
    # detaches from its median much harder than MMT's.
    t_high, m_high = ratios[5e-3]
    assert t_high > m_high
    assert m_high < 1.5, "MMT datagram tail must stay near its median"
    t_clean, _ = ratios[0.0]
    assert t_high > t_clean
