"""A4 — Req 10: multi-domain supernova early warning (DUNE → Rubin).

Identical physics (seeded candidate stream with a burst) through both
dataflows: today's store-and-forward detection at the HPC facility vs
in-network duplication of trigger primitives to a telescope-side
broker. Reported: time from burst start to pointing alert in the
telescope's hands, against the neutrino→photon lead-time budget.
"""

from __future__ import annotations

from repro.analysis import ResultTable, format_duration
from repro.daq import SUPERNOVA_LEAD_TIME_MIN_NS
from repro.integration import SupernovaConfig, compare
from repro.netsim.units import MILLISECOND, SECOND

SEEDS = [11, 12, 13]


def run_comparison():
    config = SupernovaConfig(
        background_rate_hz=100.0,
        burst_rate_hz=20_000.0,
        burst_start_ns=2 * SECOND,
        burst_duration_ns=1 * SECOND,
        trigger_threshold=50,
        trigger_window_ns=200 * MILLISECOND,
    )
    return [(seed, compare(config, seed=seed)) for seed in SEEDS]


def test_supernova_early_warning(once):
    runs = once(run_comparison)
    table = ResultTable(
        "A4 — supernova early-warning latency (burst start -> pointing "
        "alert at the telescope)",
        ["Seed", "Today", "Multi-modal", "Improvement", "Budget used (mmt)"],
    )
    for seed, results in runs:
        today = results["today"].warning_latency_ns
        mmt = results["mmt"].warning_latency_ns
        assert today is not None and mmt is not None
        table.add_row(
            seed,
            format_duration(today),
            format_duration(mmt),
            format_duration(today - mmt),
            f"{mmt / SUPERNOVA_LEAD_TIME_MIN_NS * 100:.3f}%",
        )
        # Shape: the duplicated fresh path always warns earlier, and
        # both land far inside the minimum lead time (~1 minute).
        assert mmt < today
        assert today < SUPERNOVA_LEAD_TIME_MIN_NS / 10
    table.show()
