"""A11 — §5.3's inspiration: EJ-FAT-style farm distribution.

A sequenced DAQ stream is striped over a processing farm by sequence
window (EJ-FAT's event tick), with the balancer healing upstream loss
before striping. Reported: per-worker share, window integrity (no
event split across nodes), behaviour when a node reports high fill and
when one is drained mid-run — the operations JLab's balancer exists
to support.
"""

from __future__ import annotations

from repro.analysis import ResultTable
from repro.core import MmtStack, ReceiverConfig, make_experiment_id
from repro.core.modes import pilot_registry
from repro.dataplane import (
    AgeUpdateProgram,
    BufferTapProgram,
    LoadBalancerProgram,
    ModeTransitionProgram,
    ProgrammableElement,
    SegmentRecoveryProgram,
    TransitionRule,
)
from repro.netsim import Simulator, Topology, units
from repro.netsim.units import MILLISECOND

EXP = 23
EXP_ID = make_experiment_id(EXP)
WORKERS = 4
WINDOW = 32
MESSAGES = 3200


def run_farm(drain_at_message: int | None = None, hot_worker: int | None = None):
    sim = Simulator(seed=64)
    topo = Topology(sim)
    src = topo.add_host("src", ip="10.0.0.2")
    e1 = ProgrammableElement(sim, "e1", mac=topo.allocate_mac(), ip="10.0.1.1")
    lb = ProgrammableElement(sim, "lb", mac=topo.allocate_mac(), ip="10.0.2.1")
    topo.add(e1)
    topo.add(lb)
    topo.connect(src, e1, units.gbps(10), 10_000)
    topo.connect(e1, lb, units.gbps(10), 100_000, loss_rate=0.02)
    workers = []
    for i in range(WORKERS):
        worker = topo.add_host(f"worker{i}", ip=f"10.0.3.{i + 2}")
        topo.connect(lb, worker, units.gbps(10), 10_000)
        workers.append(worker)
    topo.install_routes()

    registry = pilot_registry()
    ModeTransitionProgram(registry, [
        TransitionRule(from_config_id=0, to_mode="age-recover",
                       buffer_addr=e1.ip, age_budget_ns=units.seconds(1)),
    ]).install(e1)
    e1.attach_buffer(512 * 1024 * 1024)
    BufferTapProgram(buffer_addr=e1.ip).install(e1)
    AgeUpdateProgram().install(e1)
    lb.attach_buffer(512 * 1024 * 1024)
    SegmentRecoveryProgram(
        upstream_buffer_addr=e1.ip,
        reorder_wait_ns=units.microseconds(200),
        retry_interval_ns=2 * MILLISECOND,
    ).install(lb)
    balancer = LoadBalancerProgram(
        experiment_id=EXP_ID, backends=[w.ip for w in workers], window=WINDOW
    )
    balancer.install(lb)
    if hot_worker is not None:
        balancer.report_load(workers[hot_worker].ip, 95)

    src_stack = MmtStack(src, registry)
    received = {w.name: [] for w in workers}
    for worker in workers:
        stack = MmtStack(worker, registry)
        stack.bind_receiver(
            EXP,
            on_message=lambda p, h, n=worker.name: received[n].append(h.seq),
            config=ReceiverConfig(detect_gaps=False),
        )
    sender = src_stack.create_sender(
        experiment_id=EXP_ID, mode="identify", dst_ip=workers[0].ip
    )
    for i in range(MESSAGES):
        sim.schedule(i * 5_000, sender.send, 2000)
        if drain_at_message is not None and i == drain_at_message:
            sim.schedule(i * 5_000, balancer.drain, workers[0].ip)
    sim.schedule(MESSAGES * 5_000, sender.finish)
    sim.run()
    return received, balancer


def run_all():
    return {
        "even": run_farm(),
        "hot": run_farm(hot_worker=1),
        "drain": run_farm(drain_at_message=MESSAGES // 2),
    }


def test_ejfat_farm_distribution(once):
    results = once(run_all)
    table = ResultTable(
        f"A11 — EJ-FAT-style striping over {WORKERS} workers "
        f"({MESSAGES} msgs, window {WINDOW}, 2% upstream loss healed at the LB)",
        ["Scenario"] + [f"worker{i}" for i in range(WORKERS)] + ["Complete", "Split windows"],
    )
    for name, (received, _balancer) in results.items():
        everything = sorted(s for seqs in received.values() for s in seqs)
        complete = everything == list(range(MESSAGES))
        split = 0
        for seqs in received.values():
            ticks = {s // WINDOW for s in seqs}
            if len(seqs) != WINDOW * len(ticks):
                split += 1
        table.add_row(
            name,
            *[len(received[f"worker{i}"]) for i in range(WORKERS)],
            "yes" if complete else "NO",
            split,
        )
        assert complete, f"{name}: stream incomplete"
        assert split == 0, f"{name}: a window was split across workers"
    table.show()

    even, _ = results["even"]
    counts = [len(v) for v in even.values()]
    assert max(counts) - min(counts) <= WINDOW  # even within one window

    hot, _ = results["hot"]
    assert len(hot["worker1"]) < min(
        len(hot[f"worker{i}"]) for i in (0, 2, 3)
    ) / 5, "hot worker must be avoided"

    drain, _ = results["drain"]
    # worker0 got roughly half its fair share: windows bound before the
    # drain still flowed, new ones went elsewhere.
    assert len(drain["worker0"]) < MESSAGES // WORKERS * 0.7
    assert len(drain["worker0"]) > 0
