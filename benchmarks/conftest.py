"""Shared benchmark helpers.

Every bench runs its experiment exactly once (simulations are
deterministic; repetition adds nothing but wall time) via
``benchmark.pedantic(..., rounds=1)`` and prints the paper-style table
so EXPERIMENTS.md rows can be read straight off the output. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
