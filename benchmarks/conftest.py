"""Shared benchmark helpers.

Every bench runs its experiment exactly once (simulations are
deterministic; repetition adds nothing but wall time) via
``benchmark.pedantic(..., rounds=1)`` and prints the paper-style table
so EXPERIMENTS.md rows can be read straight off the output. Run with::

    pytest benchmarks/ --benchmark-only -s

Benchmarks additionally emit machine-readable results: each
``bench_<name>.py`` module gets a :class:`repro.telemetry.BenchResult`
(via the ``bench_result`` fixture) and at session end every result is
written to ``BENCH_<name>.json`` at the repo root in one shared schema
(name, params, metrics, seed, wall time — see
:mod:`repro.telemetry.benchfmt`). Wall time is captured automatically
around the ``once`` runner. The JSON files are committed so the
performance trajectory is tracked in version control (see .gitignore).
"""

from __future__ import annotations

import time

import pytest

from repro.telemetry import BenchResult

#: BenchResult per bench module, keyed by short name ("fig4_pilot", ...).
_RESULTS: dict[str, BenchResult] = {}


def _bench_name(module_name: str) -> str:
    short = module_name.rpartition(".")[2]
    return short.removeprefix("bench_")


def result_for(module_name: str) -> BenchResult:
    """The shared :class:`BenchResult` for one bench module."""
    name = _bench_name(module_name)
    if name not in _RESULTS:
        _RESULTS[name] = BenchResult(name=name)
    return _RESULTS[name]


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_result(request) -> BenchResult:
    """This bench module's result record; written at session end."""
    return result_for(request.module.__name__)


@pytest.fixture
def once(benchmark, request):
    """Single-round benchmark runner that also records wall time.

    The elapsed time lands in the module's ``BenchResult`` under the
    requesting test's name, so every ``BENCH_*.json`` carries timing
    even when the bench records no other metrics.
    """
    result = result_for(request.module.__name__)

    def runner(fn, *args, **kwargs):
        start = time.perf_counter()
        value = run_once(benchmark, fn, *args, **kwargs)
        result.add_wall_time(request.node.name, time.perf_counter() - start)
        return value

    return runner


def pytest_sessionfinish(session):
    for result in _RESULTS.values():
        result.write(str(session.config.rootpath))
    _RESULTS.clear()
