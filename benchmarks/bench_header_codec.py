"""A5 — §5.2: header cost per mode.

The core header is 8 bytes; each activated feature adds its fixed
extension. This bench reports bytes/packet and relative overhead for a
jumbo DAQ message in every registry mode, plus the pure codec
throughput (encodes+decodes per second) — the "keep the implementation
simple" budget an FPGA/ASIC parser equivalent would meet trivially.
"""

from __future__ import annotations

import time

from repro.analysis import ResultTable
from repro.core import (
    Feature,
    MmtHeader,
    TransitionContext,
    extended_registry,
    transition,
)

MESSAGE_BYTES = 8192


def header_for_mode(mode):
    header = MmtHeader(config_id=0, experiment_id=1 << 8)
    ctx = TransitionContext(
        now_ns=0,
        seq=1,
        buffer_addr="10.0.0.1",
        deadline_ns=1000,
        notify_addr="10.0.0.2",
        age_budget_ns=500,
        pace_rate_mbps=1000,
        source_addr="10.0.0.3",
        dup_group=1,
        dup_copies=2,
    )
    transition(header, mode, ctx)
    return header


def codec_throughput(header, iterations=20_000):
    data = header.encode()
    start = time.perf_counter()
    for _ in range(iterations):
        MmtHeader.decode(header.encode())
    elapsed = time.perf_counter() - start
    return iterations / elapsed, data


def measure_modes():
    registry = extended_registry()
    rows = []
    for mode in registry:
        header = header_for_mode(mode)
        rate, data = codec_throughput(header, iterations=5_000)
        rows.append((mode, header, rate, data))
    return rows


def test_header_overhead_per_mode(once):
    rows = once(measure_modes)
    table = ResultTable(
        "A5 — MMT header cost per mode (8 kB DAQ message)",
        ["Mode", "Features", "Header bytes", "Overhead", "Codec ops/s"],
    )
    for mode, header, rate, data in rows:
        assert len(data) == header.size_bytes
        overhead = header.size_bytes / (header.size_bytes + MESSAGE_BYTES)
        table.add_row(
            mode.name,
            f"{bin(int(mode.features)).count('1')} active",
            header.size_bytes,
            f"{overhead * 100:.2f}%",
            f"{rate:,.0f}",
        )
        # §5.2: the core header is 8 bytes; nothing exceeds 64 bytes
        # even with every extension of the richest mode.
        assert 8 <= header.size_bytes <= 64
        assert overhead < 0.01, "header overhead must stay under 1% on jumbo messages"
    table.show()
    # Mode 0 is exactly the bare core header.
    identify = next(mode for mode, *_ in rows if mode.name == "identify")
    assert header_for_mode(identify).size_bytes == 8
