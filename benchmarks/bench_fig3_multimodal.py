"""F3 — Fig. 3: the multi-modal goal scenario vs today's pipeline.

Head-to-head over the same topology, workload, and loss: MMT with
in-network buffers (and optionally in-network duplication) against the
Fig. 2 UDP+TCP pipeline. The paper's claimed shape: MMT recovery costs
one last-segment RTT instead of a full source round trip, so p99
latency and completion time separate as loss and RTT grow; duplication
gets fresh data to researchers without the storage detour.
"""

from __future__ import annotations

from repro.analysis import ResultTable, format_duration, percentile
from repro.netsim.units import MILLISECOND
from repro.wan import MultimodalScenario, ScenarioConfig, TodayScenario

SWEEP = [
    (25 * MILLISECOND, 0.0),
    (25 * MILLISECOND, 1e-3),
    (50 * MILLISECOND, 1e-3),
    (50 * MILLISECOND, 5e-3),
]


MESSAGES = 4000
INTERVAL_NS = 128_000  # 512 Mb/s of 8 kB messages, matching bench_fig2


def steady(latencies):
    """The steady-state half of the per-message latency series."""
    return latencies[len(latencies) // 2 :]


def config_for(delay, loss, duplicate=False):
    return ScenarioConfig(
        message_count=MESSAGES,
        message_interval_ns=INTERVAL_NS,
        wan_delay_ns=delay,
        campus_delay_ns=5 * MILLISECOND,
        wan_loss_rate=loss,
        duplicate_to_researcher=duplicate,
    )


#: Ingest/batch time at the storage facility before distribution —
#: what a fresh-data consumer waits for on the store-then-distribute
#: path but not on the in-network duplicate.
STORAGE_PROCESSING_NS = 20 * MILLISECOND


def run_headtohead():
    rows = []
    for delay, loss in SWEEP:
        today = TodayScenario(config=config_for(delay, loss)).run()
        mmt = MultimodalScenario(config=config_for(delay, loss)).run()
        rows.append(((delay, loss), today, mmt))
    dup_cfg = config_for(25 * MILLISECOND, 1e-3, duplicate=True)
    dup_cfg.storage_forward_delay_ns = STORAGE_PROCESSING_NS
    dup = MultimodalScenario(config=dup_cfg).run()
    relay_cfg = config_for(25 * MILLISECOND, 1e-3)
    relay_cfg.storage_forward_delay_ns = STORAGE_PROCESSING_NS
    relayed = MultimodalScenario(config=relay_cfg).run()
    return rows, dup, relayed


def test_fig3_multimodal_vs_today(once):
    rows, dup, relayed = once(run_headtohead)
    table = ResultTable(
        "Figure 3 — multi-modal vs today (same topology/workload/loss)",
        ["WAN delay", "Loss", "Today p50", "MMT p50", "Today p99", "MMT p99",
         "MMT NAKs", "Speedup p99"],
    )
    for (delay, loss), today, mmt in rows:
        t99 = percentile(steady(today.storage_latencies_ns), 0.99)
        m99 = percentile(steady(mmt.storage_latencies_ns), 0.99)
        table.add_row(
            format_duration(delay),
            f"{loss:g}",
            format_duration(percentile(steady(today.storage_latencies_ns), 0.5)),
            format_duration(percentile(steady(mmt.storage_latencies_ns), 0.5)),
            format_duration(t99),
            format_duration(m99),
            mmt.extras["naks"],
            f"{t99 / m99:.1f}x",
        )
        assert mmt.storage_delivered == mmt.sent
        assert mmt.extras["unrecovered"] == 0
        # MMT must win on both medians and tails in this regime.
        assert m99 <= t99
    table.show()

    dup_table = ResultTable(
        "Figure 3 (cont.) — freshness at the researcher (20 ms storage "
        "ingest on the store-then-distribute path)",
        ["Path", "Researcher p50", "Researcher p99"],
    )
    dup_table.add_row(
        "store-then-distribute",
        format_duration(percentile(steady(relayed.researcher_latencies_ns), 0.5)),
        format_duration(percentile(steady(relayed.researcher_latencies_ns), 0.99)),
    )
    dup_table.add_row(
        "in-network duplicate",
        format_duration(percentile(steady(dup.researcher_latencies_ns), 0.5)),
        format_duration(percentile(steady(dup.researcher_latencies_ns), 0.99)),
    )
    dup_table.show()
    # The duplicate path skips storage termination + ingest entirely.
    assert percentile(steady(dup.researcher_latencies_ns), 0.5) + 15 * MILLISECOND < (
        percentile(steady(relayed.researcher_latencies_ns), 0.5)
    )
