"""FLEET — receiver-farm fan-out: node fairness and redirect recovery.

One ingest pipe feeding N sticky receiver DTNs through the EJ-FAT-style
balancer, at N ∈ {4, 16, 64}, plus a 16-node run with a mid-stream node
crash. The farm is judged on its own axes: Jain fairness over per-node
delivered bytes (is the balancer balancing?), per-flow FCT, balancer
table-update latency, and — for the crash case — redirect
time-to-recover (crash instant → last repair delivery).

Invariants asserted for every case: nothing unrecovered, node fairness
≥ 0.9 over live nodes, and recovery bounded (crash case).

Unlike the other bench modules this one writes ``BENCH_fleet.json``
itself (no ``once``/``bench_result`` fixtures): the acceptance bar
includes *byte-identical output per seed*, so no wall-clock readings
may leak into the file.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import ResultTable, format_duration, format_rate
from repro.fleet import FleetConfig, FleetOrchestrator
from repro.netsim.units import MILLISECOND
from repro.telemetry.benchfmt import BenchResult

SEED = 7
#: Off the 100 µs sync-tick grid, so the crash has a real detection gap.
CRASH_AT_NS = 1 * MILLISECOND + 50_000
#: Redirect recovery must land within a few WAN round-trips.
RECOVERY_BUDGET_NS = 20 * MILLISECOND


def build_cases():
    return [
        ("4 nodes, 16 flows", FleetConfig(nodes=4, flows=16, seed=SEED)),
        ("16 nodes, 64 flows", FleetConfig(nodes=16, flows=64, seed=SEED)),
        ("64 nodes, 128 flows", FleetConfig(nodes=64, flows=128, seed=SEED)),
        (
            "16 nodes, 64 flows, node crash",
            FleetConfig(
                nodes=16, flows=64, seed=SEED,
                crash_node=5, crash_at_ns=CRASH_AT_NS,
            ),
        ),
    ]


def test_fleet_fairness_and_recovery():
    bench = BenchResult(name="fleet", seed=SEED)
    bench.params = {
        "duration_ns": FleetConfig().duration_ns,
        "message_bytes": FleetConfig().message_bytes,
        "sync_interval_ns": FleetConfig().build_farm_config().sync_interval_ns,
        "crash_at_ns": CRASH_AT_NS,
    }
    table = ResultTable(
        "Receiver-farm fan-out (EJ-FAT-style balancer)",
        ["Case", "Nodes", "Flows", "Delivered", "Goodput",
         "Node Jain", "Update lat", "Recover"],
    )
    for name, config in build_cases():
        report = FleetOrchestrator(config).run()
        bench.record(
            name,
            nodes=report.nodes,
            flows=report.flows,
            delivered=report.farm.delivered,
            aggregate_goodput_bps=round(report.aggregate_goodput_bps),
            node_jain_fairness=round(report.node_fairness, 6),
            flow_jain_fairness=round(report.flow_fairness, 6),
            completion_spread_ns=report.completion_spread_ns,
            table_updates=report.farm.table_updates,
            epoch=report.farm.epoch,
            max_update_latency_ns=report.farm.max_update_latency_ns,
            redirected_windows=report.farm.redirected_windows,
            recovery_ns=report.recovery_ns,
            unrecovered=report.farm.unrecovered,
        )
        table.add_row(
            name,
            report.nodes,
            report.flows,
            f"{report.farm.delivered}/{report.farm.dtn1_relayed}",
            format_rate(round(report.aggregate_goodput_bps)),
            f"{report.node_fairness:.4f}",
            format_duration(report.farm.max_update_latency_ns),
            format_duration(report.recovery_ns) if report.recovery_ns else "—",
        )
        # The fleet acceptance bar: nothing given up, the balancer
        # keeps live nodes within Jain ≥ 0.9, crashes recover bounded.
        assert report.complete, f"{name}: a flow lost data permanently"
        assert report.farm.unrecovered == 0, f"{name}: unrecovered loss"
        assert report.node_fairness >= 0.9, (
            f"{name}: node fairness {report.node_fairness:.4f} < 0.9"
        )
        if config.crash_node is not None:
            assert report.farm.marks_down == 1, f"{name}: crash undetected"
            assert report.recovery_ns < RECOVERY_BUDGET_NS, (
                f"{name}: recovery {report.recovery_ns} ns over budget"
            )
    table.show()
    bench.write(Path(__file__).resolve().parent.parent)
