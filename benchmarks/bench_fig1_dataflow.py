"""F1 — Fig. 1: the four-stage dataflow ledger.

Builds the A→B→C→D pipeline of Fig. 1 (DAQ network → WAN → HPC
facility → campus) and streams a scaled DUNE workload through it with
MMT end to end, printing the per-stage arrival throughput and
cumulative latency — the quantities Fig. 1's arrows denote.
"""

from __future__ import annotations

from repro.analysis import LatencySummary, ResultTable, format_duration, format_rate
from repro.core import MmtStack, make_experiment_id
from repro.daq import DUNE, DaqStreamSource
from repro.netsim import Simulator, Topology, units
from repro.netsim.units import MICROSECOND, MILLISECOND

SCALE = 2e-7  # DUNE at 120 Tb/s -> 24 Mb/s of simulated stream
EXP = DUNE.experiment_number
EXP_ID = make_experiment_id(EXP)


class DataflowPipeline:
    """sensor -> daq cluster (B) -> hpc (C) -> campus (D), MMT relays."""

    def __init__(self) -> None:
        self.sim = Simulator(seed=17)
        topo = Topology(self.sim)
        self.sensor = topo.add_host("sensor")
        self.daq_cluster = topo.add_host("daq-cluster")
        self.hpc = topo.add_host("hpc")
        self.campus = topo.add_host("campus")
        topo.connect(self.sensor, self.daq_cluster, units.gbps(100), 5 * MICROSECOND)
        topo.connect(self.daq_cluster, self.hpc, units.gbps(100), 30 * MILLISECOND)
        topo.connect(self.hpc, self.campus, units.gbps(100), 15 * MILLISECOND)
        topo.install_routes()

        self.stage_arrivals: dict[str, list[tuple[int, int, int]]] = {
            "B:daq-cluster": [],
            "C:hpc": [],
            "D:campus": [],
        }
        stacks = {h.name: MmtStack(h) for h in (self.sensor, self.daq_cluster, self.hpc, self.campus)}
        self.sensor_sender = stacks["sensor"].create_sender(
            experiment_id=EXP_ID, mode="identify", dst_ip=self.daq_cluster.ip
        )
        forward_b = stacks["daq-cluster"].create_sender(
            experiment_id=EXP_ID, mode="identify", dst_ip=self.hpc.ip
        )
        forward_c = stacks["hpc"].create_sender(
            experiment_id=EXP_ID, mode="identify", dst_ip=self.campus.ip
        )

        def make_relay(stage, forward):
            def relay(packet, _header):
                sent = packet.meta.get("sent_at", self.sim.now)
                self.stage_arrivals[stage].append((self.sim.now, packet.payload_size, sent))
                if forward is not None:
                    forward.send(packet.payload_size, meta={"sent_at": sent})

            return relay

        stacks["daq-cluster"].bind_receiver(EXP, on_message=make_relay("B:daq-cluster", forward_b))
        stacks["hpc"].bind_receiver(EXP, on_message=make_relay("C:hpc", forward_c))
        stacks["campus"].bind_receiver(EXP, on_message=make_relay("D:campus", None))

    def run(self, duration_ns=200 * MILLISECOND):
        process = DUNE.workload(scale=SCALE)
        source = DaqStreamSource(
            self.sim,
            process,
            lambda size, payload, kind: self.sensor_sender.send(size),
            duration_ns=duration_ns,
        )
        source.start()
        self.sim.run()
        return source


def test_fig1_dataflow_ledger(once):
    pipeline = DataflowPipeline()
    source = once(pipeline.run)
    table = ResultTable(
        "Figure 1 — dataflow ledger (DUNE workload, scaled 2e-7)",
        ["Stage", "Messages", "Arrival rate", "Cumulative p50 latency"],
    )
    table.add_row("A:sensor (origin)", source.messages_emitted,
                  format_rate(source.bytes_emitted * 8 / 0.2), "-")
    for stage, arrivals in pipeline.stage_arrivals.items():
        assert arrivals, f"stage {stage} starved"
        span = arrivals[-1][0] - arrivals[0][0]
        total = sum(size for _t, size, _s in arrivals)
        latencies = [t - sent for t, _size, sent in arrivals]
        rate = total * 8 * units.SECOND / span if span else 0.0
        table.add_row(
            stage,
            len(arrivals),
            format_rate(rate),
            format_duration(LatencySummary.of(latencies).p50_ns),
        )
    table.show()
    # Shape assertions: every stage sees every message; latency grows
    # monotonically down the pipeline (30 ms WAN then 15 ms campus leg).
    counts = [len(v) for v in pipeline.stage_arrivals.values()]
    assert counts[0] == counts[1] == counts[2] == source.messages_emitted
    p50s = [
        LatencySummary.of([t - s for t, _sz, s in v]).p50_ns
        for v in pipeline.stage_arrivals.values()
    ]
    assert p50s[0] < p50s[1] < p50s[2]
    assert p50s[1] > 30 * MILLISECOND
