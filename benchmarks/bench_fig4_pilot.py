"""F4 — Fig. 4: the pilot study testbed.

Runs the assembled pilot (detector → DTN 1 → Tofino2 → Alveo → DTN 2,
100 GbE) in its three modes and reports what §5.4 describes: complete
loss recovery by NAK-ing DTN 1 (never the sensor), in-network age
tracking with the ``aged`` flag, and the timeliness check at the
destination — in both the local (physical-testbed-like) and the
long-RTT (FABRIC-like design-exploration) configurations.
"""

from __future__ import annotations

from repro.analysis import ResultTable, format_duration, percentile
from repro.dataplane import PilotConfig, PilotTestbed
from repro.netsim import Simulator
from repro.netsim.units import MICROSECOND, MILLISECOND

CASES = [
    ("physical (local, clean)", PilotConfig(wan_delay_ns=50 * MICROSECOND)),
    ("physical + corruption", PilotConfig(wan_delay_ns=50 * MICROSECOND, wan_loss_rate=1e-3)),
    ("fabric-like (10 ms WAN)", PilotConfig(wan_delay_ns=10 * MILLISECOND)),
    ("fabric-like + 1% loss", PilotConfig(wan_delay_ns=10 * MILLISECOND, wan_loss_rate=0.01)),
    (
        "tight age budget",
        PilotConfig(wan_delay_ns=10 * MILLISECOND, age_budget_ns=5 * MILLISECOND),
    ),
]


def run_cases(messages=800):
    results = []
    for name, config in CASES:
        pilot = PilotTestbed(sim=Simulator(seed=31), config=config)
        pilot.send_stream(messages, payload_size=8000, interval_ns=2_000)
        results.append((name, pilot, pilot.run()))
    return results


def test_fig4_pilot_study(once, bench_result):
    results = once(run_cases)
    bench_result.seed = 31
    bench_result.params = {"messages": 800, "payload_size": 8000, "interval_ns": 2000}
    for name, _pilot, report in results:
        latencies = report.delivery_latencies_ns
        bench_result.record(
            name,
            delivered=report.delivered,
            naks=report.naks_sent,
            retransmissions=report.retransmissions,
            aged=report.aged_packets,
            deadline_misses=report.deadline_misses,
            p50_latency_ns=percentile(latencies, 0.5),
            p99_latency_ns=percentile(latencies, 0.99),
        )
    table = ResultTable(
        "Figure 4 — pilot study (3 modes, NAK recovery from DTN 1)",
        ["Configuration", "Delivered", "NAKs", "Retx", "Aged",
         "Deadline ok/miss", "p50 latency", "p99 latency"],
    )
    for name, pilot, report in results:
        latencies = report.delivery_latencies_ns
        table.add_row(
            name,
            f"{report.delivered}/{report.messages_sent}",
            report.naks_sent,
            report.retransmissions,
            report.aged_packets,
            f"{report.deadline_ok}/{report.deadline_misses}",
            format_duration(percentile(latencies, 0.5)),
            format_duration(percentile(latencies, 0.99)),
        )
        # §5.4 invariants for every configuration:
        assert report.complete, f"{name}: stream incomplete"
        assert report.mode_transitions_u280 == report.dtn1_relayed
        assert report.naks_served == report.naks_sent  # DTN 1 serves all
        # The sensor is never involved in recovery.
        assert pilot.sensor.rx_unhandled == 0
    table.show()

    by_name = {name: report for name, _p, report in results}
    # Corruption loss is recovered (NAKs > 0), cleanly (unrecovered 0).
    assert by_name["fabric-like + 1% loss"].naks_sent > 0
    # The tight age budget marks (not drops) everything as aged.
    assert by_name["tight age budget"].aged_packets == 800
    assert by_name["fabric-like (10 ms WAN)"].aged_packets == 0
