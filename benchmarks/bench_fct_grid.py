"""FCT — the Fig. 2 incast head-to-head grid (MMT vs TCP vs UDP).

Runs the full {K, L, N, sym/asym} x transport x seed matrix on the
ECN leaf-spine fabric and records per-cell flow-completion-time
percentiles plus the AQM's mark/drop counters. The acceptance bar is
the paper's claim: in every overloaded deepest-fan-in cell (load at or
above the bottleneck, N = 16), MMT completes all flows with zero
drops and a p99 FCT no worse than ECN-enabled TCP's.

Like ``bench_soak``, this module writes ``BENCH_fct_grid.json`` itself
(no ``once``/``bench_result`` fixtures): the committed artifact must be
byte-identical per seed set — across reruns and across every
``--jobs N`` of the CLI runner — so no wall-clock readings may leak
into the file.
"""

from __future__ import annotations

from repro.analysis import ResultTable, format_duration
from repro.integration.incast import (
    case_label,
    grid_configs,
    run_grid,
    write_bench,
)


def test_fct_grid(request):
    configs = grid_configs()
    labeled = run_grid(configs)
    by_label = dict(labeled)

    table = ResultTable(
        "Incast head-to-head (ECN leaf-spine fan-in, FCT per transport)",
        ["Cell", "Done", "p50 FCT", "p99 FCT", "CE marks", "Drops"],
    )
    for config in configs:
        row = by_label[case_label(config)]
        table.add_row(
            case_label(config),
            f"{row['completed']}/{row['flows']}",
            format_duration(row["fct_p50_ns"]) if row["fct_p50_ns"] else "-",
            format_duration(row["fct_p99_ns"]) if row["fct_p99_ns"] else "-",
            row["ce_marked"],
            row["dropped"],
        )
    table.show()

    max_n = max(config.senders for config in configs)
    for config in configs:
        if config.transport != "mmt" or config.senders != max_n:
            continue
        mmt = by_label[case_label(config)]
        # MMT never strands a flow: whatever the AQM does, segment
        # repair finishes every transfer within the horizon.
        assert mmt["completed"] == mmt["flows"], case_label(config)
        # With an early marking threshold the pacing reaction holds the
        # queue below capacity entirely — the fan-in is lossless. At
        # deeper thresholds (K = 0.4 of the buffer) overload can still
        # overflow before marks bite; those drops are recovered, not
        # gated away.
        if config.mark_threshold <= 0.2:
            assert mmt["dropped"] == 0, case_label(config)
        if config.load < 1.0:
            continue  # underloaded: nothing for pacing to win; not gated
        tcp_label = case_label(config).replace("_mmt_", "_tcp_")
        tcp_p99 = by_label[tcp_label]["fct_p99_ns"]
        assert tcp_p99 is None or mmt["fct_p99_ns"] <= tcp_p99, case_label(config)

    path = write_bench(labeled, configs, str(request.config.rootpath))
    print(f"\nwrote {path}")
