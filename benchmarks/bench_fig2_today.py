"""F2 — Fig. 2: today's transport pipeline (UDP + tuned TCP).

Measures the properties §4.1 attributes to the status quo across a WAN
RTT x loss sweep: per-message latency to storage and to the researcher,
flow completion, and where retransmissions come from (always the
stream's source — the termination point before the lossy segment).
"""

from __future__ import annotations

from repro.analysis import ResultTable, format_duration, percentile
from repro.netsim.units import MILLISECOND
from repro.wan import ScenarioConfig, TodayScenario

SWEEP = [
    # (one-way wan delay, loss rate)
    (5 * MILLISECOND, 0.0),
    (25 * MILLISECOND, 0.0),
    (25 * MILLISECOND, 1e-4),
    (25 * MILLISECOND, 1e-3),
    (50 * MILLISECOND, 1e-3),
]


#: Offered load: one 8 kB message every 128 us = 512 Mb/s, sustained
#: for 4000 messages (~0.5 s) so TCP's ramp-up transient is a minority
#: of the run and steady-state behaviour is measurable.
MESSAGES = 4000
INTERVAL_NS = 128_000


def steady(latencies):
    """The steady-state half of the per-message latency series."""
    return latencies[len(latencies) // 2 :]


def run_sweep():
    results = []
    for delay, loss in SWEEP:
        cfg = ScenarioConfig(
            message_count=MESSAGES,
            message_interval_ns=INTERVAL_NS,
            wan_delay_ns=delay,
            campus_delay_ns=5 * MILLISECOND,
            wan_loss_rate=loss,
        )
        results.append(((delay, loss), TodayScenario(config=cfg).run()))
    return results


def test_fig2_today_pipeline(once):
    results = once(run_sweep)
    table = ResultTable(
        "Figure 2 — today's pipeline (UDP DAQ leg + tuned TCP WAN legs),"
        " steady-state half of a 512 Mb/s stream",
        ["WAN delay", "Loss", "Storage p50", "Storage p99",
         "Researcher p50", "TCP retx", "Delivered"],
    )
    for (delay, loss), r in results:
        storage = steady(r.storage_latencies_ns)
        table.add_row(
            format_duration(delay),
            f"{loss:g}",
            format_duration(percentile(storage, 0.5)),
            format_duration(percentile(storage, 0.99)),
            format_duration(percentile(steady(r.researcher_latencies_ns), 0.5)),
            r.extras["tcp_wan_retransmits"],
            f"{r.storage_delivered}/{r.sent}",
        )
        assert r.storage_delivered == r.sent  # TCP is reliable (Req 4)
    table.show()
    # Shape: storage latency grows with RTT; loss inflates the tail.
    by_key = dict(results)
    clean = by_key[(25 * MILLISECOND, 0.0)]
    lossy = by_key[(25 * MILLISECOND, 1e-3)]
    assert percentile(steady(lossy.storage_latencies_ns), 0.99) > percentile(
        steady(clean.storage_latencies_ns), 0.99
    )
    assert lossy.extras["tcp_wan_retransmits"] > 0
    slow = by_key[(50 * MILLISECOND, 1e-3)]
    assert percentile(steady(slow.storage_latencies_ns), 0.5) > percentile(
        steady(clean.storage_latencies_ns), 0.5
    )
