"""T1 — Table 1: DAQ rates of the experiment catalog.

Regenerates the paper's Table 1 by *measuring* each catalog workload's
offered load (at a laptop-tractable scale factor) and scaling back up.
The printed rate must match the paper's published figure for every
experiment; the shape column reports the generator pattern.
"""

from __future__ import annotations

import random

from repro.analysis import ResultTable, format_rate
from repro.daq import catalog
from repro.netsim.units import MILLISECOND, SECOND, gbps


def measure_catalog():
    rows = []
    for spec in catalog():
        scale = 1e-4 if spec.daq_rate_bps > gbps(500) else 1e-2
        window = 4 * SECOND if spec.pattern in ("spill", "cadence") else 50 * MILLISECOND
        process = spec.workload(scale=scale)
        messages = list(process.generate(window, random.Random(42)))
        offered = sum(m.size_bytes for m in messages) * 8 * SECOND / window
        measured_full_scale = offered / scale
        rows.append((spec, measured_full_scale, len(messages)))
    return rows


def test_table1_daq_rates(once):
    rows = once(measure_catalog)
    table = ResultTable(
        "Table 1 — DAQ rates (paper vs measured offered load)",
        ["Experiment", "Paper rate", "Measured", "Pattern", "Error"],
    )
    for spec, measured, _count in rows:
        error = abs(measured - spec.daq_rate_bps) / spec.daq_rate_bps
        table.add_row(
            spec.name,
            format_rate(spec.daq_rate_bps),
            format_rate(measured),
            spec.pattern,
            f"{error * 100:.1f}%",
        )
        assert error < 0.1, f"{spec.name} offered load off by {error:.2%}"
    table.show()
