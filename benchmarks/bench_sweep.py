"""P3 — sharded campaign sweep: determinism across job counts.

Runs one campaign — a seed sweep of traced pilot runs plus a seed
sweep of concurrent multi-flow runs — twice: sequentially
(``jobs=1``, the inline baseline) and sharded across worker processes
(``jobs=4``). The *assertion* is the sharding determinism contract:
the merged campaign artifact, including every per-run trace digest,
must be identical for every job count. Wall-clock speedup is
*recorded* (``speedup_x`` plus the detected core count) but never
asserted — on a single-core runner the sharded pass is legitimately no
faster, and wall-clock thresholds flap on shared CI boxes either way.

``BENCH_sweep.json`` therefore carries both halves of the tentpole
story: the digests pin correctness, the recorded speedup (on machines
with cores to spare) shows the fan-out actually buys wall time.
"""

from __future__ import annotations

import time

from repro.analysis.shard import (
    TracedPilotCase,
    available_cores,
    campaign_digest,
    merge_campaign,
    multiflow_case_metrics,
    run_sharded,
    run_traced_pilot_case,
)
from repro.integration.multiflow import MultiFlowConfig
from repro.netsim.units import MILLISECOND

JOBS = 4
PILOT_SEEDS = range(41, 47)
MULTIFLOW_SEEDS = range(7, 13)

PILOT_CASES = [TracedPilotCase(seed=seed, messages=200) for seed in PILOT_SEEDS]
MULTIFLOW_CASES = [
    MultiFlowConfig(flows=4, seed=seed, duration_ns=1 * MILLISECOND)
    for seed in MULTIFLOW_SEEDS
]


def run_campaign(jobs: int) -> tuple[dict, float]:
    """Run the full sweep at a job count; returns (artifact, wall_s)."""
    start = time.perf_counter()
    traced = run_sharded(run_traced_pilot_case, PILOT_CASES, jobs=jobs)
    flows = run_sharded(multiflow_case_metrics, MULTIFLOW_CASES, jobs=jobs)
    wall = time.perf_counter() - start
    merged = merge_campaign(
        "sweep_campaign",
        list(traced) + list(flows),
        params={"pilot_cases": len(PILOT_CASES), "multiflow_cases": len(MULTIFLOW_CASES)},
        seed=min(PILOT_SEEDS),
    )
    return merged.to_dict(), wall


def test_sweep_shard_determinism(once, bench_result):
    sequential, sequential_wall = run_campaign(jobs=1)
    sharded, sharded_wall = once(run_campaign, jobs=JOBS)

    # The determinism contract: the merged artifact — every metric and
    # every per-run trace digest — is identical for every job count.
    assert sharded == sequential
    digest = campaign_digest(sharded)
    assert digest == campaign_digest(sequential)

    # Every traced case must have produced a non-trivial trace.
    for case_metrics in sharded["metrics"].values():
        if "trace_digest" in case_metrics:
            assert case_metrics["trace_events"] > 0
            assert len(case_metrics["trace_digest"]) == 64

    cores = available_cores()
    speedup = sequential_wall / sharded_wall if sharded_wall > 0 else 0.0
    bench_result.seed = min(PILOT_SEEDS)
    bench_result.params = {
        "pilot_cases": len(PILOT_CASES),
        "multiflow_cases": len(MULTIFLOW_CASES),
        "jobs": JOBS,
    }
    bench_result.record(
        "test_sweep_shard_determinism",
        cases=len(PILOT_CASES) + len(MULTIFLOW_CASES),
        identical=1,
        campaign_digest=digest,
        cores=cores,
        jobs=JOBS,
        sequential_wall_s=round(sequential_wall, 6),
        sharded_wall_s=round(sharded_wall, 6),
        speedup_x=round(speedup, 3),
    )
