"""SOAK — the full one-hour endurance run under churn.

Drives the directory-wired pilot for an hour of simulated time with a
steady + Poisson DAQ mix and the periodic churn script (diurnal rate
curve, Gilbert–Elliott windows with parameter drift, link flaps,
staggered buffer kill/restore cycles, directory liveness flaps,
mid-flow mode-map rewrites), then the receiver-farm segment with node
flaps. The acceptance bar is endurance, not throughput: nothing
unrecovered, every bounded-memory budget held, and a flat growth slope
across the final third of the run.

Like ``bench_fleet``, this module writes ``BENCH_soak.json`` itself
(no ``once``/``bench_result`` fixtures): the acceptance bar includes
*byte-identical output per seed*, so no wall-clock readings may leak
into the file.
"""

from __future__ import annotations

from repro.analysis import ResultTable, format_duration
from repro.soak import SoakConfig, run_soak, write_bench


def test_soak_endurance(request):
    cfg = SoakConfig()
    report = run_soak(cfg, strict=True)

    assert report.complete
    assert report.unrecovered == 0
    assert report.fleet_unrecovered == 0
    assert report.budget_violations == 0
    # The churn actually churned: every planned fault fired and every
    # mechanism under test was exercised at least once.
    assert report.faults_fired == report.faults_injected
    assert report.mode_degradations > 0
    assert report.mode_upgrades == report.mode_degradations
    assert report.degraded_final == 0
    assert report.mode_rewrites > 0
    assert report.link_rate_changes > 0
    assert report.ge_drifts > 0
    # Growth slopes flat (retx/trace have small documented allowances).
    assert report.growth_guard_entries <= 0
    assert report.growth_registry_series <= 0

    table = ResultTable(
        f"Endurance soak ({format_duration(report.duration_ns)} simulated)",
        ["Metric", "Value"],
    )
    for name, value in sorted(report.metrics().items()):
        table.add_row(name, value)
    table.show()

    path = write_bench(report, cfg, str(request.config.rootpath))
    print(f"\nwrote {path}")
