"""The DUNE → Rubin early-warning scenario."""

import pytest

from repro.integration import SupernovaConfig, SupernovaScenario, compare
from repro.daq import SUPERNOVA_LEAD_TIME_MIN_NS
from repro.netsim.units import MILLISECOND, SECOND


def fast_config(**over):
    base = dict(
        background_rate_hz=50.0,
        burst_rate_hz=5_000.0,
        burst_start_ns=1 * SECOND,
        burst_duration_ns=500 * MILLISECOND,
        trigger_threshold=30,
    )
    base.update(over)
    return SupernovaConfig(**base)


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        SupernovaScenario("carrier-pigeon")


def test_today_detects_and_alerts():
    result = SupernovaScenario("today", fast_config(), seed=4).run()
    assert result.trigger_fired_ns is not None
    assert result.alert_at_scope_ns is not None
    assert result.trigger_fired_ns > result.burst_start_ns
    assert result.alert_at_scope_ns > result.trigger_fired_ns


def test_mmt_detects_and_alerts():
    result = SupernovaScenario("mmt", fast_config(), seed=4).run()
    assert result.trigger_fired_ns is not None
    assert result.alert_at_scope_ns == result.trigger_fired_ns  # local handoff


def test_background_alone_never_triggers():
    config = fast_config(burst_rate_hz=50.0)  # "burst" same as background
    result = SupernovaScenario("mmt", config, seed=4).run()
    assert result.trigger_fired_ns is None
    assert result.alert_at_scope_ns is None
    assert result.warning_latency_ns is None


def test_mmt_warns_earlier_than_today():
    results = compare(fast_config(), seed=4)
    today = results["today"].warning_latency_ns
    mmt = results["mmt"].warning_latency_ns
    assert today is not None and mmt is not None
    assert mmt < today


def test_warning_well_inside_neutrino_photon_lead_time():
    """The whole point: the alert must land long before the photons."""
    results = compare(fast_config(), seed=4)
    for result in results.values():
        assert result.warning_latency_ns < SUPERNOVA_LEAD_TIME_MIN_NS / 100


def test_identical_physics_across_modes():
    """Both modes must see the same candidate process (same seed)."""
    a = SupernovaScenario("mmt", fast_config(), seed=9)
    b = SupernovaScenario("today", fast_config(), seed=9)
    ra, rb = a.run(), b.run()
    assert a._candidates_sent == b._candidates_sent
