"""The incast head-to-head: harness invariants, golden pins, the gate.

Four layers of protection for the Fig. 2 grid:

- harness invariants (fan-in placement, load accounting, label scheme);
- two-seed golden wire-trace pins for the MMT cell, in the
  ``tests/dataplane/test_golden_replay.py`` style — every MMT packet
  crossing any fabric link, with its ECN codepoint (the new wire
  behavior this PR pins);
- the head-to-head gate itself: at N = 16 under overload, MMT completes
  every flow and its p99 FCT beats ECN-enabled TCP's;
- shard determinism: the merged grid campaign is identical for every
  job count.
"""

import hashlib

import pytest

from repro.analysis.shard import campaign_digest, incast_case_metrics, run_sharded
from repro.core.header import MmtHeader
from repro.integration.incast import (
    IncastConfig,
    case_label,
    grid_configs,
    run_incast,
    small_grid,
)
from repro.netsim.headers import Ipv4Header

#: sha256 over the newline-joined MMT wire trace of the default
#: 4-sender ECN-paced cell (see ``traced_run``), one pin per seed.
GOLDEN_INCAST = {
    7: ("eb76bc399db943ef55bf0c9c2ff3717b642e9e9701822174203470b78a510220", 2308),
    42: ("af4ed7ae89e3e2c364dab22b8ec68a35f420fa77e7458f8b45866e6267596f58", 2296),
}


def traced_run(seed, transport="mmt", senders=4):
    """Run one cell with every fabric link tapped; returns the MMT wire
    trace (time, link, direction, ECN codepoint, header bytes, size)."""
    lines: list[str] = []

    def instrument(fabric):
        for link in fabric.topology.links:
            end_a, end_b = link.ends
            for port, peer in ((end_a, end_b), (end_b, end_a)):

                def tapped(
                    packet,
                    _orig=port.deliver,
                    _port=port,
                    _label=f"{link.name}:{peer.node.name}->{port.node.name}",
                ):
                    mmt = packet.find(MmtHeader)
                    if mmt is not None:
                        ip = packet.find(Ipv4Header)
                        lines.append(
                            f"{_port.sim.now}|{_label}|ecn{ip.ecn if ip else '-'}"
                            f"|{mmt.encode(validate=False).hex()}|{packet.payload_size}"
                        )
                    _orig(packet)

                port.deliver = tapped

    config = IncastConfig(transport=transport, senders=senders, seed=seed)
    report = run_incast(config, instrument=instrument)
    return lines, report


class TestGoldenPins:
    @pytest.mark.parametrize("seed", sorted(GOLDEN_INCAST))
    def test_mmt_wire_trace_matches_golden_digest(self, seed):
        lines, report = traced_run(seed)
        expected_digest, expected_records = GOLDEN_INCAST[seed]
        assert len(lines) == expected_records
        digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
        assert digest == expected_digest
        assert report.summary.completed == report.summary.flows

    def test_replay_is_byte_identical(self):
        first, _ = traced_run(7)
        second, _ = traced_run(7)
        assert first == second

    def test_ecn_paced_traffic_is_ect_and_gets_marked(self):
        lines, report = traced_run(7)
        codepoints = {line.split("|")[2] for line in lines}
        # Data is ECT(0)-stamped; the fan-in marks some of it CE.
        assert "ecn2" in codepoints
        assert "ecn3" in codepoints
        assert report.ce_marked > 0
        assert report.early_drops == 0  # marking replaced dropping


class TestHarness:
    def test_fan_in_splits_senders_across_leaves(self):
        seen = {}

        def instrument(fabric):
            seen["hosts"] = [h.name for h in fabric.all_hosts]
            seen["receiver"] = fabric.receiver.name

        run_incast(IncastConfig(senders=5, seed=7, horizon_ns=1_000_000),
                   instrument=instrument)
        assert seen["receiver"] == "h0_0"
        # 5 senders: ceil-half (3) remote on leaf 1, 2 local on leaf 0.
        assert "h1_2" in seen["hosts"]

    def test_flow_bytes_scale_with_load_and_fan_in(self):
        base = IncastConfig(senders=4, load=1.0, seed=7)
        heavier = IncastConfig(senders=4, load=2.0, seed=7)
        wider = IncastConfig(senders=8, load=1.0, seed=7)
        assert heavier.flow_bytes == 2 * base.flow_bytes
        assert wider.flow_bytes == base.flow_bytes // 2
        # Whole messages only.
        assert base.flow_bytes % base.message_bytes == 0

    def test_asym_cell_narrows_the_receiver_downlink(self):
        sym = IncastConfig(symmetric=True, seed=7)
        asym = IncastConfig(symmetric=False, seed=7)
        assert asym.bottleneck_rate_bps < sym.bottleneck_rate_bps
        assert asym.flow_bytes < sym.flow_bytes  # load tracks the bottleneck

    def test_case_labels_are_unique_and_sortable(self):
        configs = grid_configs()
        labels = [case_label(config) for config in configs]
        assert len(set(labels)) == len(labels)
        for label in labels:
            assert label.startswith("seed")

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            IncastConfig(transport="sctp")
        with pytest.raises(ValueError):
            IncastConfig(senders=0)
        with pytest.raises(ValueError):
            IncastConfig(load=0)
        with pytest.raises(ValueError):
            IncastConfig(mark_threshold=1.5)


class TestHeadToHead:
    def test_mmt_beats_tcp_tail_at_deep_fan_in(self):
        """The CI gate: N = 16 under overload — MMT completes all flows
        losslessly and its p99 FCT is no worse than ECN-enabled TCP's."""
        mmt = run_incast(IncastConfig(transport="mmt", senders=16, seed=7))
        tcp = run_incast(IncastConfig(transport="tcp", senders=16, seed=7))
        assert mmt.summary.completed == mmt.summary.flows
        assert mmt.dropped == 0
        assert mmt.ce_marked > 0
        assert mmt.summary.p99_ns is not None
        assert tcp.summary.p99_ns is None or mmt.summary.p99_ns <= tcp.summary.p99_ns

    def test_udp_losses_stay_lost(self):
        report = run_incast(IncastConfig(transport="udp", senders=16, seed=7))
        # Open loop: the AQM drops (UDP is not ECT) and nothing recovers.
        assert report.early_drops > 0
        assert report.summary.unfinished > 0


class TestShardDeterminism:
    def test_jobs_do_not_change_the_campaign(self):
        configs = small_grid(seeds=(7,), transports=("mmt", "tcp"))
        sequential = run_sharded(incast_case_metrics, configs, jobs=1)
        fanned = run_sharded(incast_case_metrics, configs, jobs=2)
        assert sequential == fanned
        assert campaign_digest(sequential) == campaign_digest(fanned)
