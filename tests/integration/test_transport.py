"""Orchestrator triggers over real MMT sessions."""

import pytest

from repro.core import MmtStack
from repro.integration import Orchestrator
from repro.integration.transport import (
    MmtTriggerTransport,
    TriggerCodecError,
    decode_trigger,
    encode_trigger,
)
from repro.netsim import Topology, units
from repro.netsim.units import MILLISECOND


def test_frame_roundtrip():
    frame = encode_trigger(7, "snb-pointing", b"\x01\x02")
    assert decode_trigger(frame) == (7, "snb-pointing", b"\x01\x02")


def test_frame_truncation_rejected():
    with pytest.raises(TriggerCodecError):
        decode_trigger(b"\x00\x00")
    frame = encode_trigger(1, "topic", b"")
    with pytest.raises(TriggerCodecError):
        decode_trigger(frame[:7])


@pytest.fixture
def facilities(sim):
    topo = Topology(sim)
    dune = topo.add_host("dune", ip="10.1.0.2")
    rubin = topo.add_host("rubin", ip="10.2.0.2")
    icecube = topo.add_host("icecube", ip="10.3.0.2")
    core = topo.add_router("core")
    topo.connect(dune, core, units.gbps(100), 20 * MILLISECOND)
    topo.connect(core, rubin, units.gbps(100), 40 * MILLISECOND)
    topo.connect(core, icecube, units.gbps(100), 10 * MILLISECOND)
    topo.install_routes()
    stacks = {h.name: MmtStack(h) for h in (dune, rubin, icecube)}
    hosts = {"dune": dune, "rubin": rubin, "icecube": icecube}
    return topo, hosts, stacks


def test_trigger_latency_is_network_latency(sim, facilities):
    _topo, hosts, stacks = facilities
    orchestrator = Orchestrator(sim)
    orchestrator.register("dune", "surf")
    got = []
    orchestrator.register(
        "rubin", "chile",
        on_trigger=lambda topic, payload, record: got.append((topic, payload)),
    )
    orchestrator.subscribe("snb", "rubin")
    transport = MmtTriggerTransport(orchestrator)
    transport.connect(
        "dune", stacks["dune"], "rubin", stacks["rubin"], hosts["rubin"].ip
    )
    record = orchestrator.emit("snb", "dune", b"pointing-data")
    sim.run()
    assert got == [("snb", b"pointing-data")]
    latency = record.latency_ns("rubin")
    assert 60 * MILLISECOND <= latency < 61 * MILLISECOND  # 20 + 40 ms path


def test_fan_out_to_multiple_facilities(sim, facilities):
    _topo, hosts, stacks = facilities
    orchestrator = Orchestrator(sim)
    orchestrator.register("dune", "surf")
    orchestrator.register("rubin", "chile")
    orchestrator.register("icecube", "pole")
    orchestrator.subscribe("snb", "rubin")
    orchestrator.subscribe("snb", "icecube")
    transport = MmtTriggerTransport(orchestrator)
    transport.connect("dune", stacks["dune"], "rubin", stacks["rubin"], hosts["rubin"].ip)
    transport.connect("dune", stacks["dune"], "icecube", stacks["icecube"], hosts["icecube"].ip)
    record = orchestrator.emit("snb", "dune", b"x")
    sim.run()
    assert record.latency_ns("icecube") < record.latency_ns("rubin")
    assert transport.frames_sent == 2
    assert transport.frames_delivered == 2


def test_duplicate_session_rejected(sim, facilities):
    _topo, hosts, stacks = facilities
    orchestrator = Orchestrator(sim)
    orchestrator.register("dune", "surf")
    orchestrator.register("rubin", "chile")
    transport = MmtTriggerTransport(orchestrator)
    transport.connect("dune", stacks["dune"], "rubin", stacks["rubin"], hosts["rubin"].ip)
    with pytest.raises(ValueError):
        transport.connect("dune", stacks["dune"], "rubin", stacks["rubin"], hosts["rubin"].ip)


def test_multiple_triggers_keep_distinct_records(sim, facilities):
    _topo, hosts, stacks = facilities
    orchestrator = Orchestrator(sim)
    orchestrator.register("dune", "surf")
    payloads = []
    orchestrator.register(
        "rubin", "chile",
        on_trigger=lambda topic, payload, record: payloads.append(payload),
    )
    orchestrator.subscribe("snb", "rubin")
    transport = MmtTriggerTransport(orchestrator)
    transport.connect("dune", stacks["dune"], "rubin", stacks["rubin"], hosts["rubin"].ip)
    first = orchestrator.emit("snb", "dune", b"one")
    second = orchestrator.emit("snb", "dune", b"two")
    sim.run()
    assert payloads == [b"one", b"two"]
    assert first.deliveries and second.deliveries