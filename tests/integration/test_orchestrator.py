"""Trigger routing and timelines."""

import pytest

from repro.integration import Orchestrator


@pytest.fixture
def orchestrator(sim):
    return Orchestrator(sim)


def direct_route(orchestrator, delay_ns):
    """A route that delivers after a fixed simulated delay."""

    def route(subscriber, payload, record):
        orchestrator.sim.schedule(
            delay_ns, orchestrator.confirm_delivery, record, subscriber, payload
        )

    return route


def test_trigger_reaches_subscriber_with_latency(sim, orchestrator):
    received = []
    orchestrator.register("dune", "fnal", {"neutrino"})
    orchestrator.register(
        "rubin", "chile", {"optical"},
        on_trigger=lambda topic, payload, record: received.append((topic, payload)),
    )
    orchestrator.subscribe("snb", "rubin")
    orchestrator.set_route("dune", "rubin", direct_route(orchestrator, 1000))
    record = orchestrator.emit("snb", "dune", b"pointing")
    sim.run()
    assert received == [("snb", b"pointing")]
    assert record.latency_ns("rubin") == 1000


def test_origin_not_self_notified(sim, orchestrator):
    orchestrator.register("dune", "fnal")
    orchestrator.subscribe("snb", "dune")
    record = orchestrator.emit("snb", "dune", b"x")
    sim.run()
    assert record.deliveries == {}


def test_multiple_subscribers_fan_out(sim, orchestrator):
    orchestrator.register("dune", "fnal")
    for name, delay in (("rubin", 1000), ("icecube", 5000)):
        orchestrator.register(name, "site")
        orchestrator.subscribe("snb", name)
        orchestrator.set_route("dune", name, direct_route(orchestrator, delay))
    record = orchestrator.emit("snb", "dune", b"x")
    sim.run()
    assert record.latency_ns("rubin") == 1000
    assert record.latency_ns("icecube") == 5000


def test_missing_route_raises(sim, orchestrator):
    orchestrator.register("dune", "fnal")
    orchestrator.register("rubin", "chile")
    orchestrator.subscribe("snb", "rubin")
    with pytest.raises(ValueError):
        orchestrator.emit("snb", "dune", b"x")


def test_duplicate_registration_rejected(sim, orchestrator):
    orchestrator.register("dune", "fnal")
    with pytest.raises(ValueError):
        orchestrator.register("dune", "elsewhere")


def test_subscribe_unknown_instrument(sim, orchestrator):
    with pytest.raises(ValueError):
        orchestrator.subscribe("snb", "ghost")


def test_latency_none_before_delivery(sim, orchestrator):
    orchestrator.register("dune", "fnal")
    record = orchestrator.emit("snb", "dune", b"x")
    assert record.latency_ns("rubin") is None
