"""FleetOrchestrator: hundreds of flows over tens of receiver DTNs."""

import pytest

from repro.fleet import FarmConfig, FleetConfig, FleetOrchestrator
from repro.netsim import units

MS = units.MILLISECOND


def fleet(**kwargs) -> FleetConfig:
    kwargs.setdefault("duration_ns", 1 * MS)
    kwargs.setdefault("message_bytes", 2000)
    return FleetConfig(**kwargs)


class TestSteadyState:
    def test_steady_run_is_fair_and_complete(self):
        report = FleetOrchestrator(fleet(nodes=4, flows=8)).run()
        assert report.complete
        assert report.farm.unrecovered == 0
        assert report.flow_fairness >= 0.9
        assert report.node_fairness >= 0.9
        assert report.aggregate_goodput_bps > 0
        assert report.recovery_ns == 0
        assert len(report.fct_ns) == 8
        assert all(fct > 0 for fct in report.fct_ns.values())

    def test_offered_bytes_accounted_per_flow(self):
        report = FleetOrchestrator(fleet(nodes=2, flows=4)).run()
        for fid in range(4):
            assert report.offered_bytes[fid] > 0
            assert (
                report.per_flow[fid]["bytes_delivered"]
                >= report.offered_bytes[fid]
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetOrchestrator(fleet(nodes=0))
        with pytest.raises(ValueError):
            FleetOrchestrator(fleet(flows=0))

    def test_farm_overrides_respected(self):
        config = fleet(nodes=2, flows=4, farm=FarmConfig(window=4, nodes=99))
        orchestrator = FleetOrchestrator(config)
        # nodes/flows from the FleetConfig always win over the override.
        assert orchestrator.farm.config.nodes == 2
        assert orchestrator.farm.config.window == 4


class TestCrashRecovery:
    def test_mid_run_crash_recovers(self):
        config = fleet(
            nodes=4, flows=8, duration_ns=2 * MS,
            crash_node=1, crash_at_ns=1 * MS + 50_000,  # off the tick grid
        )
        report = FleetOrchestrator(config).run()
        assert report.complete
        assert report.farm.marks_down == 1
        assert report.farm.redirected_windows > 0
        assert not report.per_node[1]["alive"]
        # Fairness judged over live nodes only.
        assert report.node_fairness >= 0.9
        # Losses on the cut link were repaired after the crash instant.
        sync = config.build_farm_config().sync_interval_ns
        if report.farm.retransmissions:
            assert 0 < report.recovery_ns < report.duration_ns + 100 * sync

    def test_crash_run_is_deterministic(self):
        def run():
            config = fleet(
                nodes=4, flows=8, seed=21, duration_ns=2 * MS,
                crash_node=2, crash_at_ns=1 * MS + 50_000,
            )
            report = FleetOrchestrator(config).run()
            return (
                report.farm.delivered,
                report.farm.retransmissions,
                report.recovery_ns,
                tuple(sorted(
                    (i, row["delivered"]) for i, row in report.per_node.items()
                )),
            )

        assert run() == run()
