"""Receiver-farm fan-out: farm build, control loop, fleet orchestration."""
