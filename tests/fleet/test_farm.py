"""ReceiverFarm: one ingest pipe, N sticky receiver DTNs."""

from repro.fleet import FarmConfig, ReceiverFarm, node_address
from repro.netsim import Simulator


def build(seed=7, **kwargs) -> ReceiverFarm:
    return ReceiverFarm(sim=Simulator(seed=seed), config=FarmConfig(**kwargs))


def run_stream(farm, count=96, payload=2000, interval_ns=1_000):
    flows = farm.config.flows
    base, extra = divmod(count, flows)
    for fid in range(flows):
        farm.send_stream(
            base + (1 if fid < extra else 0),
            payload_size=payload,
            interval_ns=interval_ns,
            flow=fid,
        )
    return farm.run()


class TestAddressing:
    def test_node_addresses_unique_at_scale(self):
        addresses = [node_address(i) for i in range(400)]
        assert len(set(addresses)) == 400
        assert node_address(0) == "10.40.0.2"
        assert node_address(200) == "10.40.1.2"


class TestSteadyState:
    def test_whole_window_striping_across_nodes(self):
        farm = build(nodes=3, flows=2, window=8)
        report = run_stream(farm, count=96)
        assert report.complete
        assert report.delivered == 96
        # Each (node, flow) slice is made of whole event windows.
        window = farm.config.window
        per = {}
        for _t, _m, node_idx, fid, seq in farm.deliveries:
            per.setdefault((node_idx, fid), []).append(seq)
        for (node_idx, fid), seqs in per.items():
            ticks = {s // window for s in seqs}
            assert len(seqs) == window * len(ticks), (
                f"node{node_idx}/flow{fid} got a partial window"
            )

    def test_single_node_farm_collapses_to_one_receiver(self):
        farm = build(nodes=1, flows=1)
        report = run_stream(farm, count=50)
        assert report.complete
        assert report.per_node[0]["delivered"] == 50
        assert report.epoch == 0  # no liveness churn, no table updates

    def test_shares_are_even_across_nodes(self):
        farm = build(nodes=4, flows=8, window=4)
        report = run_stream(farm, count=320)
        counts = [row["delivered"] for row in report.per_node.values()]
        assert sum(counts) == 320
        assert max(counts) - min(counts) <= 2 * farm.config.window

    def test_sync_loop_reports_fill(self):
        farm = build(nodes=2, flows=2)
        report = run_stream(farm, count=40)
        assert report.syncs >= 2
        assert farm.controller.stats.fill_reports >= 2 * report.syncs // 2


class TestRecovery:
    def test_lossy_wan_reconciles_to_complete(self):
        farm = build(seed=11, nodes=4, flows=4, wan_loss_rate=0.05)
        report = run_stream(farm, count=200)
        assert report.complete
        assert report.delivered == 200
        assert report.retransmissions > 0
        # Repairs were calendar-directed: served from the U280 buffer
        # (one NAK can request many seqs, so served ≤ retransmissions).
        assert 0 < report.naks_served <= report.retransmissions

    def test_crash_redirects_bound_windows(self):
        farm = build(nodes=4, flows=4, window=4)
        interval = 5_000
        for fid in range(4):
            farm.send_stream(50, payload_size=2000, interval_ns=interval, flow=fid)
        # Mid-stream and off the sync-tick grid, so there is a real
        # detection gap (an on-tick crash is applied the same instant).
        crash_at = 26 * interval + 1_000
        assert crash_at % farm.config.sync_interval_ns != 0
        farm.sim.schedule(crash_at, farm.crash_node, 1)
        report = farm.run()
        assert report.complete
        assert report.marks_down == 1
        assert report.redirected_windows > 0
        assert not farm.nodes[1].alive
        # Detection is tick-aligned: latency bounded by one interval.
        assert 0 < report.max_update_latency_ns <= farm.config.sync_interval_ns
        # The dead node's share stops; survivors absorb the rest.
        survivors = sum(
            row["delivered"] for i, row in report.per_node.items() if i != 1
        )
        assert survivors + report.per_node[1]["delivered"] == 200

    def test_drain_node_finishes_bound_windows_only(self):
        farm = build(nodes=2, flows=1, window=4)
        farm.send_stream(8, payload_size=2000, interval_ns=1_000, flow=0)
        farm.sim.run()
        drained = farm.nodes[0]
        before = drained.delivered
        farm.drain_node(0)
        farm.send_stream(40, payload_size=2000, interval_ns=1_000, flow=0)
        report = farm.run()
        assert report.complete
        # New windows all land on node 1; node 0 may only finish windows
        # it already owned (none here — the first batch fully ran out).
        assert drained.delivered == before
        assert farm.controller.stats.drains == 1


class TestTelemetry:
    def test_fleet_node_series_scraped(self):
        farm = build(nodes=3, flows=2, telemetry=True)
        run_stream(farm, count=60)
        registry = farm.collect_telemetry()
        by_name = {}
        for metric in registry.snapshot():
            by_name.setdefault(metric["name"], []).append(metric)
        for name in (
            "fleet_node_fill_pct",
            "fleet_node_windows_assigned",
            "fleet_node_packets_steered",
            "fleet_node_bytes_steered",
        ):
            series = by_name.get(name, [])
            backends = {m["labels"]["backend"] for m in series}
            assert backends == {node_address(i) for i in range(3)}, name
        steered = sum(
            m["value"] for m in by_name["fleet_node_packets_steered"]
        )
        assert steered >= 60
        assert by_name["fleet_controller_syncs"][0]["value"] >= 1

    def test_dead_node_visible_in_scrape(self):
        farm = build(nodes=2, flows=1, telemetry=True)
        farm.send_stream(20, payload_size=2000, interval_ns=1_000, flow=0)
        farm.sim.run()
        farm.crash_node(0)
        farm.run()
        dead = {
            m["labels"]["backend"]: m["value"]
            for m in farm.collect_telemetry().snapshot()
            if m["name"] == "fleet_node_dead"
        }
        assert dead[node_address(0)] == 1
        assert dead[node_address(1)] == 0


class TestDeterminism:
    def steering_log(self, seed):
        farm = build(
            seed=seed, nodes=4, flows=4, window=4,
            wan_loss_rate=0.02, record_steering=True,
        )
        for fid in range(4):
            farm.send_stream(40, payload_size=2000, interval_ns=1_500, flow=fid)
        crash_at = 20 * 1_500 + farm.config.sync_interval_ns // 2
        farm.sim.schedule(crash_at, farm.crash_node, 2)
        report = farm.run()
        return report, list(farm.balancer.steering_log)

    def test_same_seed_same_steering_log(self):
        report_a, log_a = self.steering_log(seed=99)
        report_b, log_b = self.steering_log(seed=99)
        assert log_a == log_b
        assert report_a.delivered == report_b.delivered
        assert report_a.retransmissions == report_b.retransmissions
