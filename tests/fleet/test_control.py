"""FleetController: epoch-numbered sync loop over a balancer table."""

import pytest

from repro.core import make_experiment_id
from repro.dataplane import LoadBalancerProgram
from repro.fleet import FleetController
from repro.netsim import Simulator

EXP_ID = make_experiment_id(31)
NODES = ["10.40.0.2", "10.40.0.3", "10.40.0.4"]
INTERVAL = 100_000


@pytest.fixture
def sim():
    return Simulator(seed=5)


@pytest.fixture
def balancer():
    return LoadBalancerProgram(EXP_ID, backends=list(NODES), window=8)


def make_controller(sim, balancer, fills=None):
    fills = fills if fills is not None else {}
    return FleetController(
        sim, balancer, fill_fn=lambda addr: fills.get(addr, 0),
        sync_interval_ns=INTERVAL,
    )


class TestSyncTicks:
    def test_fill_reports_reach_the_table(self, sim, balancer):
        fills = {NODES[0]: 75, NODES[1]: 10}
        controller = make_controller(sim, balancer, fills)
        controller.run_until(3 * INTERVAL)
        sim.run()
        assert controller.stats.syncs == 3
        assert controller.stats.fill_reports == 3 * len(NODES)
        assert balancer.backends[NODES[0]].fill_pct == 75
        assert balancer.backends[NODES[1]].fill_pct == 10
        assert balancer.backends[NODES[2]].fill_pct == 0

    def test_run_until_is_idempotent(self, sim, balancer):
        controller = make_controller(sim, balancer)
        assert controller.run_until(3 * INTERVAL) == 3
        # Overlapping horizon: already-covered ticks are not duplicated.
        assert controller.run_until(3 * INTERVAL) == 0
        assert controller.run_until(5 * INTERVAL) == 2
        sim.run()
        assert controller.stats.syncs == 5

    def test_interval_validated(self, sim, balancer):
        with pytest.raises(ValueError):
            make_controller(sim, balancer).__class__(
                sim, balancer, fill_fn=lambda a: 0, sync_interval_ns=0
            )


class TestLivenessMarks:
    def test_down_mark_applied_at_next_tick(self, sim, balancer):
        balancer.route(0, 0)  # bind a window so the mark has work to do
        controller = make_controller(sim, balancer)
        controller.run_until(4 * INTERVAL)
        sim.schedule(INTERVAL + 30_000, controller.mark_node_down, NODES[0])
        sim.run()
        assert controller.stats.marks_down == 1
        assert balancer.backends[NODES[0]].dead
        # Marked at t=130µs, applied at the t=200µs tick.
        assert controller.stats.update_latency_ns == [INTERVAL - 30_000]
        assert controller.stats.redirected_windows >= 0
        assert not controller.node_alive(NODES[0])

    def test_mark_while_pending_is_not_double_counted(self, sim, balancer):
        controller = make_controller(sim, balancer)
        controller.run_until(2 * INTERVAL)
        sim.schedule(10_000, controller.mark_node_down, NODES[0])
        sim.schedule(20_000, controller.mark_node_down, NODES[0])
        sim.run()
        assert controller.stats.marks_down == 1

    def test_mark_up_round_trip(self, sim, balancer):
        controller = make_controller(sim, balancer)
        controller.run_until(4 * INTERVAL)
        sim.schedule(50_000, controller.mark_node_down, NODES[1])
        sim.schedule(INTERVAL + 50_000, controller.mark_node_up, NODES[1])
        sim.run()
        assert controller.stats.marks_down == 1
        assert controller.stats.marks_up == 1
        assert not balancer.backends[NODES[1]].dead
        assert controller.node_alive(NODES[1])
        # The node is skipped by exactly the one tick it was down for
        # (the up-mark is applied before the same tick's fill loop).
        assert controller.stats.fill_reports == 4 * len(NODES) - 1

    def test_mark_up_without_down_is_a_noop(self, sim, balancer):
        controller = make_controller(sim, balancer)
        controller.run_until(INTERVAL)
        controller.mark_node_up(NODES[2])
        sim.run()
        assert controller.stats.marks_up == 0

    def test_mark_past_horizon_gets_a_catchup_tick(self, sim, balancer):
        controller = make_controller(sim, balancer)
        controller.run_until(INTERVAL)
        sim.run()
        assert controller.stats.syncs == 1
        # The horizon is exhausted; a late crash still gets detected.
        controller.mark_node_down(NODES[0])
        sim.run()
        assert controller.stats.syncs == 2
        assert controller.stats.marks_down == 1
        assert balancer.backends[NODES[0]].dead


class TestOperatorActions:
    def test_drain_is_immediate(self, sim, balancer):
        controller = make_controller(sim, balancer)
        controller.drain(NODES[0])
        assert balancer.backends[NODES[0]].draining
        assert controller.stats.drains == 1
        controller.undrain(NODES[0])
        assert not balancer.backends[NODES[0]].draining
