"""Satellite 2: causal-completeness audit of every aged packet.

The lossy-WAN multiflow scenario (WAN delay 1 ms against a 0.5 ms age
budget) ages *every* delivered packet, and random loss tangles NAK and
retransmission chains through the timelines. For each ``aged`` packet
this audit replays its full trace and asserts the timeline is causally
complete: a birth event, spans at every path element, ordered
recovery chains, and nothing impossible (data-path events inside the
lost-to-recovery window, deliveries before the aging that preceded
them). This is the bugfix-grade check that found the instrumentation
gaps during development — it keeps them fixed.
"""

import pytest

from repro.dataplane import PilotConfig, PilotTestbed
from repro.netsim import Simulator
from repro.netsim.units import MILLISECOND

FLOWS = 4
MESSAGES = 96


@pytest.fixture(scope="module")
def aged_run():
    pilot = PilotTestbed(
        sim=Simulator(seed=7),
        config=PilotConfig(
            flows=FLOWS,
            trace=True,
            wan_loss_rate=0.05,
            wan_delay_ns=1 * MILLISECOND,
            age_budget_ns=MILLISECOND // 2,
        ),
    )
    base, extra = divmod(MESSAGES, FLOWS)
    for fid in range(FLOWS):
        pilot.send_stream(
            base + (1 if fid < extra else 0),
            payload_size=4000,
            interval_ns=2000,
            flow=fid,
        )
    report = pilot.run()
    return pilot, report


def aged_timelines(pilot):
    events = pilot.tracer.events()
    identities = sorted({e.identity for e in events if e.kind == "packet.aged"})
    return [(identity, pilot.tracer.timeline(*identity)) for identity in identities]


def test_scenario_ages_and_recovers(aged_run):
    _pilot, report = aged_run
    assert report.aged_packets == report.delivered == MESSAGES
    assert report.unrecovered == 0


def test_every_aged_packet_has_complete_timeline(aged_run):
    pilot, report = aged_run
    timelines = aged_timelines(pilot)
    assert len(timelines) == report.aged_packets

    for identity, timeline in timelines:
        kinds = [e.kind for e in timeline]
        # Causal order: time never runs backwards along a timeline.
        ts = [e.ts_ns for e in timeline]
        assert ts == sorted(ts), identity

        # Birth: the in-network transition that sequenced the packet.
        assert kinds[0] == "mode.transition", (identity, kinds)
        # The original copy was cached before leaving the U280.
        assert "buffer.store" in kinds, identity
        # The packet (original or retransmitted) left every path element.
        egress_elements = {
            e.element for e in timeline if e.kind == "element.egress"
        }
        assert {"alveo-u280", "tofino2", "alveo-u55c"} <= egress_elements, identity

        # Exactly one delivery, aged no later than it was delivered.
        assert kinds.count("packet.deliver") == 1, identity
        deliver = next(e for e in timeline if e.kind == "packet.deliver")
        first_aged = next(e for e in timeline if e.kind == "age.aged")
        assert first_aged.ts_ns <= deliver.ts_ns, identity
        assert "packet.aged" in kinds, identity

        # Nothing after the delivery except its own aged stamp.
        after = [e.kind for e in timeline if e.ts_ns > deliver.ts_ns]
        assert not after, (identity, after)


def test_recovery_chains_are_causally_ordered(aged_run):
    pilot, report = aged_run
    assert report.retransmissions > 0  # scenario must exercise recovery
    for identity, timeline in aged_timelines(pilot):
        kinds = [e.kind for e in timeline]
        if "link.drop" not in kinds:
            continue
        # Every retransmission arrival was requested and served first.
        for i, kind in enumerate(kinds):
            if kind == "retx.recv":
                assert "nak.send" in kinds[:i], identity
                assert "retx.send" in kinds[:i], identity
        # A wire loss is causally dead: no data-path span for this
        # packet between the drop and the retransmission that revives
        # it (an orphan span there = an instrumentation bug).
        drop_at = next(e.ts_ns for e in timeline if e.kind == "link.drop")
        revive = next(
            (e.ts_ns for e in timeline if e.kind == "retx.send"), None
        )
        if revive is not None:
            ghosts = [
                e.kind
                for e in timeline
                if drop_at < e.ts_ns < revive
                and e.kind.startswith(("element.", "packet."))
            ]
            assert not ghosts, (identity, ghosts)


def test_aged_identities_are_all_pinned_by_flight_recorder(aged_run):
    pilot, _report = aged_run
    aged = {e.identity for e in pilot.tracer.events() if e.kind == "packet.aged"}
    assert aged <= pilot.tracer.anomalous_identities()
