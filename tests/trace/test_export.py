"""Trace export tests: JSONL round trip, schema guards, Chrome format."""

import json

import pytest

from repro.trace import (
    TRACE_SCHEMA_VERSION,
    TraceError,
    Tracer,
    load_trace,
    trace_digest,
    write_chrome_trace,
    write_trace,
)


class Clock:
    def __init__(self, now: int = 0) -> None:
        self.now = now


def make_tracer() -> Tracer:
    clock = Clock()
    tracer = Tracer(clock)
    tracer.emit("packet.send", "sensor", 7, 0, 1, msg="DATA")
    clock.now = 100
    tracer.emit("element.egress", "alveo-u280", 7, 0, 1, config=1, queue_pct=0)
    clock.now = 350
    tracer.emit("link.drop", "wan", 7, 0, 1, reason="random")
    tracer.emit("engine.compact", "engine", before=10, after=2)
    return tracer


def test_jsonl_round_trip(tmp_path):
    tracer = make_tracer()
    path = tmp_path / "trace.jsonl"
    records = write_trace(tracer, str(path), meta={"scenario": "unit"})
    assert records == 5  # meta + 4 events
    meta, events = load_trace(str(path))
    assert meta["schema_version"] == TRACE_SCHEMA_VERSION
    assert meta["scenario"] == "unit"
    assert meta["events_emitted"] == 4
    assert [e.kind for e in events] == [
        "packet.send", "element.egress", "link.drop", "engine.compact",
    ]
    assert events[1].attrs == {"config": 1, "queue_pct": 0}
    assert events[3].identity is None
    # Loaded events digest identically to the live ones.
    assert trace_digest(events) == trace_digest(tracer.events())


def test_export_is_replay_stable(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_trace(make_tracer(), str(a))
    write_trace(make_tracer(), str(b))
    assert a.read_bytes() == b.read_bytes()


def test_digest_ignores_meta_counters(tmp_path):
    """A capacity change that retains the same events hashes the same."""
    tracer = make_tracer()
    bounded = Tracer(Clock(), capacity=100)
    clock = bounded.sim
    for event in tracer.events():
        clock.now = event.ts_ns
        bounded.emit(
            event.kind, event.element, event.experiment_id,
            event.flow_id, event.seq, **(event.attrs or {}),
        )
    assert trace_digest(bounded.events()) == trace_digest(tracer.events())


def test_load_rejects_bad_schema_version(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"kind": "meta", "schema_version": 999}) + "\n")
    with pytest.raises(TraceError, match="schema_version"):
        load_trace(str(path))


def test_load_rejects_garbage_and_unknown_kinds(tmp_path):
    garbled = tmp_path / "garbled.jsonl"
    garbled.write_text("not json\n")
    with pytest.raises(TraceError, match="bad JSON"):
        load_trace(str(garbled))

    unknown = tmp_path / "unknown.jsonl"
    unknown.write_text(
        json.dumps({"kind": "meta", "schema_version": TRACE_SCHEMA_VERSION})
        + "\n" + json.dumps({"kind": "mystery"}) + "\n"
    )
    with pytest.raises(TraceError, match="unknown kind"):
        load_trace(str(unknown))

    headless = tmp_path / "headless.jsonl"
    headless.write_text(json.dumps({"kind": "event", "id": 0}) + "\n")
    with pytest.raises(TraceError):
        load_trace(str(headless))


def test_chrome_trace_structure(tmp_path):
    clock = Clock()
    tracer = Tracer(clock)
    tracer.emit("element.egress", "alveo-u280", 7, 0, 1, queue_pct=3)
    clock.now = 4000
    tracer.emit("queue.wait", "tofino2", 7, 0, 1, port="p0", wait_ns=1500)
    path = tmp_path / "chrome.json"
    written = write_chrome_trace(tracer.events(), str(path))
    payload = json.loads(path.read_text())
    records = payload["traceEvents"]
    assert written == len(records)

    # Metadata: one process name, one lane per element, deterministic tids.
    meta = [r for r in records if r["ph"] == "M"]
    lanes = {r["args"]["name"]: r.get("tid") for r in meta if r["name"] == "thread_name"}
    assert lanes == {"alveo-u280": 1, "tofino2": 2}

    instants = [r for r in records if r["ph"] == "i"]
    assert len(instants) == 1
    assert instants[0]["name"] == "element.egress"
    assert instants[0]["cat"] == "element"
    assert instants[0]["args"]["queue_pct"] == 3

    # queue.wait renders as a duration slice covering the residency.
    (slice_,) = [r for r in records if r["ph"] == "X"]
    assert slice_["ts"] == (4000 - 1500) / 1000
    assert slice_["dur"] == 1.5
