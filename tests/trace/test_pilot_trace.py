"""Pilot-level tracing pins: determinism, zero perturbation, retention.

Mirrors the PR 4 golden wire-trace pins: the exported trace of the
golden single-flow pilot scenario is digest-pinned, so any change to
hook placement, event ordering, or export encoding is caught in review.
If a change *intentionally* moves a hook, update the digest here in the
same commit and say why.
"""

import dataclasses

from repro.dataplane import PilotConfig, PilotTestbed
from repro.netsim import Simulator
from repro.netsim.units import MILLISECOND
from repro.trace import load_trace, trace_digest, write_trace

GOLDEN_SEED = 7
GOLDEN_MESSAGES = 48
GOLDEN_PAYLOAD = 4000
GOLDEN_INTERVAL_NS = 2000

#: sha256 over the canonical event lines of the golden 1-flow trace.
GOLDEN_TRACE_DIGEST_1FLOW = (
    "721c87224c637d6c7eadc348321a2555949927326bf8dc98119e1a22464b6962"
)
GOLDEN_TRACE_EVENTS_1FLOW = 624


def run_golden(flows: int = 1, **overrides) -> PilotTestbed:
    pilot = PilotTestbed(
        sim=Simulator(seed=GOLDEN_SEED),
        config=PilotConfig(flows=flows, trace=True, **overrides),
    )
    base, extra = divmod(GOLDEN_MESSAGES, flows)
    for fid in range(flows):
        pilot.send_stream(
            base + (1 if fid < extra else 0),
            payload_size=GOLDEN_PAYLOAD,
            interval_ns=GOLDEN_INTERVAL_NS,
            flow=fid,
        )
    pilot.run()
    return pilot


def test_golden_trace_digest_1flow():
    tracer = run_golden().tracer
    assert tracer.events_emitted == GOLDEN_TRACE_EVENTS_1FLOW
    assert trace_digest(tracer.events()) == GOLDEN_TRACE_DIGEST_1FLOW


def test_trace_digest_stable_across_runs(tmp_path):
    """Identical seeded runs export byte-identical trace files."""
    paths = []
    for name in ("a.jsonl", "b.jsonl"):
        path = tmp_path / name
        write_trace(run_golden().tracer, str(path))
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()
    _meta, events = load_trace(str(paths[0]))
    assert trace_digest(events) == GOLDEN_TRACE_DIGEST_1FLOW


def test_tracing_never_perturbs_pilot_results():
    """The traced pilot's report is field-for-field identical to the
    untraced one — tracing observes, never steers. Checked on the clean
    pilot and on a lossy multi-flow run that exercises the NAK path."""
    scenarios = [
        {},
        {
            "flows": 4,
            "wan_loss_rate": 0.05,
            "wan_delay_ns": 1 * MILLISECOND,
            "age_budget_ns": MILLISECOND // 2,
        },
    ]
    for overrides in scenarios:
        flows = overrides.pop("flows", 1)
        untraced = PilotTestbed(
            sim=Simulator(seed=GOLDEN_SEED),
            config=PilotConfig(flows=flows, **overrides),
        )
        base, extra = divmod(GOLDEN_MESSAGES, flows)
        for fid in range(flows):
            untraced.send_stream(
                base + (1 if fid < extra else 0),
                payload_size=GOLDEN_PAYLOAD,
                interval_ns=GOLDEN_INTERVAL_NS,
                flow=fid,
            )
        baseline = untraced.run()

        traced = run_golden(flows=flows, **overrides).report()
        assert dataclasses.asdict(traced) == dataclasses.asdict(baseline)


def test_flight_recorder_bounds_retention_but_keeps_anomalies():
    pilot = run_golden(
        flows=4,
        trace_capacity=64,
        wan_loss_rate=0.05,
        wan_delay_ns=1 * MILLISECOND,
        age_budget_ns=MILLISECOND // 2,
    )
    tracer = pilot.tracer
    assert tracer.events_evicted > 0
    assert tracer.events_retained <= 64 + tracer.events_pinned
    # Every aged delivery was pinned: its full timeline survived churn.
    aged = {e.identity for e in tracer.events() if e.kind == "packet.aged"}
    assert aged
    for identity in aged:
        kinds = {e.kind for e in tracer.timeline(*identity)}
        assert "element.egress" in kinds  # pre-anomaly span, rescued
        assert "packet.deliver" in kinds


def test_bounded_and_unbounded_runs_agree_on_anomalies():
    unbounded = run_golden(
        flows=2, wan_loss_rate=0.05,
        wan_delay_ns=1 * MILLISECOND, age_budget_ns=MILLISECOND // 2,
    ).tracer
    bounded = run_golden(
        flows=2, trace_capacity=32, wan_loss_rate=0.05,
        wan_delay_ns=1 * MILLISECOND, age_budget_ns=MILLISECOND // 2,
    ).tracer
    assert bounded.anomalous_identities() == unbounded.anomalous_identities()
    # Retention contract: spans already evicted before the identity
    # turned anomalous are gone for good (bounded memory), but from the
    # first anomaly onward the bounded recorder keeps the full story.
    from repro.trace import ANOMALY_KINDS

    for identity in sorted(bounded.anomalous_identities()):
        full = unbounded.timeline(*identity)
        kept = [e.kind for e in bounded.timeline(*identity)]
        onset = next(i for i, e in enumerate(full) if e.kind in ANOMALY_KINDS)
        tail = [e.kind for e in full[onset:]]
        assert kept[len(kept) - len(tail):] == tail
        # And everything retained is genuine (a subsequence of the truth).
        it = iter(e.kind for e in full)
        assert all(any(k == other for other in it) for k in kept)
