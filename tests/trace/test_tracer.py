"""Tracer unit tests: emission, identity, and flight-recorder semantics."""

import pytest

from repro.core.features import Feature
from repro.core.header import MmtHeader
from repro.netsim.headers import EthernetHeader
from repro.netsim.packet import Packet
from repro.trace import ANOMALY_KINDS, TraceEvent, Tracer


class Clock:
    """Minimal stand-in for the engine: just a ``now`` attribute."""

    def __init__(self, now: int = 0) -> None:
        self.now = now


def test_emit_stamps_clock_and_orders_ids():
    clock = Clock()
    tracer = Tracer(clock)
    first = tracer.emit("element.ingress", "x", 1, 0, 10)
    clock.now = 500
    second = tracer.emit("element.egress", "x", 1, 0, 10)
    assert (first.ts_ns, second.ts_ns) == (0, 500)
    assert second.id == first.id + 1
    assert tracer.events_emitted == 2
    assert [e.id for e in tracer.events()] == [first.id, second.id]


def test_identity_requires_experiment_and_seq():
    event = TraceEvent(0, 0, "k", "x", experiment_id=7, flow_id=None, seq=3)
    assert event.identity == (7, 0, 3)
    assert TraceEvent(0, 0, "k", "x", experiment_id=7).identity is None
    assert TraceEvent(0, 0, "k", "x", seq=3).identity is None


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(Clock(), capacity=0)
    with pytest.raises(ValueError):
        Tracer(Clock(), capacity=-5)


def test_ring_evicts_oldest_first():
    tracer = Tracer(Clock(), capacity=3)
    for seq in range(5):
        tracer.emit("element.egress", "x", 1, 0, seq)
    assert tracer.events_evicted == 2
    assert [e.seq for e in tracer.events()] == [2, 3, 4]


def test_anomaly_pins_past_and_future_spans():
    """An anomalous identity's spans survive unlimited ring churn —
    both the spans recorded *before* the anomaly and those after."""
    tracer = Tracer(Clock(), capacity=2)
    tracer.emit("element.egress", "x", 1, 0, 99)  # before the anomaly
    tracer.emit("link.drop", "wan", 1, 0, 99)  # anomaly: pins identity
    for seq in range(50):  # churn the ring hard
        tracer.emit("element.egress", "x", 1, 0, seq)
    tracer.emit("retx.recv", "rx", 1, 0, 99)  # after: bypasses the ring
    kinds = [e.kind for e in tracer.events() if e.seq == 99]
    assert kinds == ["element.egress", "link.drop", "retx.recv"]
    assert tracer.anomalous_identities() == {(1, 0, 99)}
    assert tracer.events_pinned == 3
    # The ring itself still holds only `capacity` non-anomalous spans.
    assert tracer.events_retained == 3 + 2


def test_anomaly_without_identity_stays_in_ring():
    tracer = Tracer(Clock(), capacity=1)
    tracer.emit("link.drop", "wan")  # no identity: nothing to pin
    tracer.emit("element.egress", "x", 1, 0, 0)
    assert tracer.events_pinned == 0
    assert tracer.events_retained == 1  # the drop was evicted


def test_unbounded_tracer_never_evicts():
    tracer = Tracer(Clock())
    for seq in range(1000):
        tracer.emit("element.egress", "x", 1, 0, seq)
    assert tracer.events_evicted == 0
    assert tracer.events_retained == 1000


def test_packet_event_skips_non_mmt_packets():
    tracer = Tracer(Clock())
    tracer.packet_event("port.drop", "x", Packet(headers=[EthernetHeader()]))
    assert tracer.events_emitted == 0
    mmt = MmtHeader(
        config_id=1,
        features=Feature.SEQUENCED,
        experiment_id=7,
        seq=4,
    )
    tracer.packet_event("port.drop", "x", Packet(headers=[mmt]))
    (event,) = tracer.events()
    assert event.identity == (7, 0, 4)
    assert event.attrs["msg"] == "DATA"


def test_queue_wait_emits_only_on_actual_wait():
    clock = Clock()
    tracer = Tracer(clock)
    mmt = MmtHeader(config_id=1, features=Feature.SEQUENCED, experiment_id=7, seq=1)
    waiting = Packet(headers=[mmt])
    instant = Packet(headers=[mmt.copy()])
    tracer.note_enqueue(waiting)
    tracer.note_enqueue(instant)
    tracer.queue_wait(instant, "x", "p0")  # zero wait: implicit
    clock.now = 250
    tracer.queue_wait(waiting, "x", "p0")
    tracer.queue_wait(waiting, "x", "p0")  # enqueue note consumed: no-op
    (event,) = tracer.events()
    assert event.kind == "queue.wait"
    assert event.attrs["wait_ns"] == 250
    assert not tracer._enqueued_at


def test_timeline_orders_by_time_then_emission():
    clock = Clock()
    tracer = Tracer(clock)
    tracer.emit("element.ingress", "x", 1, 0, 5)
    tracer.emit("element.egress", "x", 1, 0, 5)  # same ts: emission order
    clock.now = 10
    tracer.emit("packet.deliver", "rx", 1, 0, 5)
    tracer.emit("element.egress", "x", 1, 0, 6)  # other identity
    kinds = [e.kind for e in tracer.timeline(1, 0, 5)]
    assert kinds == ["element.ingress", "element.egress", "packet.deliver"]


def test_anomaly_kind_set_matches_issue_classes():
    """Aged, lost, retransmitted, degraded-recovery — all represented."""
    for kind in ("age.aged", "link.drop", "retx.send", "nak.giveup", "deadline.miss"):
        assert kind in ANOMALY_KINDS
    assert "element.egress" not in ANOMALY_KINDS
