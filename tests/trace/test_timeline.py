"""Timeline rendering and anomaly summaries."""

from repro.trace import (
    Tracer,
    format_timeline,
    select_timeline,
    summarize_anomalies,
)


class Clock:
    def __init__(self, now: int = 0) -> None:
        self.now = now


def build_events():
    clock = Clock()
    tracer = Tracer(clock)
    tracer.emit("mode.transition", "alveo-u280", 7, 0, 3, from_config=0, to_config=1)
    clock.now = 1000
    tracer.emit("link.drop", "wan", 7, 0, 3, reason="random")
    clock.now = 2000
    tracer.emit("retx.recv", "dtn2", 7, 0, 3)
    tracer.emit("packet.deliver", "dtn2", 7, 0, 3, latency_ns=2000)
    tracer.emit("packet.deliver", "dtn2", 7, 0, 4)  # other identity
    return tracer.events()


def test_select_timeline_filters_and_orders():
    timeline = select_timeline(build_events(), 7, 0, 3)
    assert [e.kind for e in timeline] == [
        "mode.transition", "link.drop", "retx.recv", "packet.deliver",
    ]
    # Equal timestamps keep emission order (causal within one event).
    assert timeline[2].ts_ns == timeline[3].ts_ns


def test_format_timeline_report():
    events = build_events()
    text = format_timeline(select_timeline(events, 7, 0, 3), 7, 0, 3)
    lines = text.splitlines()
    assert lines[0] == "packet experiment=7 flow=0 seq=3 — 4 events over 2000 ns"
    assert "mode transition" in lines[1]
    # Anomalies are flagged; deltas accumulate between events.
    assert lines[2].lstrip().startswith("!")
    assert "(+     1000)" in lines[2]
    assert "lost on link" in lines[2]
    assert "[reason=random]" in lines[2]


def test_format_timeline_empty_identity():
    text = format_timeline([], 7, 0, 99)
    assert "no trace events" in text


def test_summarize_anomalies_orders_kinds_causally():
    summary = summarize_anomalies(build_events())
    assert summary == [((7, 0, 3), ["link.drop", "retx.recv"])]
