"""Satellite 1: INT postcards and trace spans must tell the same story.

Two independent observers watch the same pilot run — postcards ride
*inside* the packets, spans are emitted *by* the elements — and both
stamp the same engine clock. Any divergence (tolerance 0) is an
instrumentation gap.
"""

from repro.analysis import trace_metrics
from repro.dataplane import PilotConfig, PilotTestbed
from repro.netsim import Simulator
from repro.netsim.units import MILLISECOND
from repro.trace import attach_recording_sink, verify_int_consistency


def run_pilot(flows: int = 2, messages: int = 48, **overrides):
    pilot = PilotTestbed(
        sim=Simulator(seed=7),
        config=PilotConfig(flows=flows, trace=True, telemetry=True, **overrides),
    )
    sink = attach_recording_sink(pilot)
    base, extra = divmod(messages, flows)
    for fid in range(flows):
        pilot.send_stream(
            base + (1 if fid < extra else 0),
            payload_size=4000,
            interval_ns=2000,
            flow=fid,
        )
    report = pilot.run()
    return pilot, sink, report


def test_clean_pilot_int_matches_trace_exactly():
    pilot, sink, report = run_pilot()
    result = verify_int_consistency(pilot.tracer.events(), sink)
    assert result.packets_checked == report.delivered
    # Three enrolled hops (U280 source, Tofino2, U55C) per delivery.
    assert result.postcards_checked == 3 * report.delivered
    assert result.ok, result.mismatches


def test_lossy_pilot_int_matches_trace():
    """Loss and retransmission don't open gaps: a lost packet's
    postcards never reach the sink, and a retransmitted packet's fresh
    postcards match its own (later) egress spans."""
    pilot, sink, report = run_pilot(
        flows=4,
        messages=96,
        wan_loss_rate=0.05,
        wan_delay_ns=1 * MILLISECOND,
        age_budget_ns=MILLISECOND // 2,
    )
    assert report.retransmissions > 0  # the scenario exercises recovery
    result = verify_int_consistency(pilot.tracer.events(), sink)
    assert result.postcards_checked > 0
    assert result.ok, result.mismatches


def test_trace_derived_histograms_agree_with_int():
    """Aggregates rebuilt from spans equal the INT-derived ones for the
    segments both observers cover (hop-to-hop timestamp deltas and
    egress queue occupancy) — counts, sums, and bucket layout."""
    pilot, sink, _report = run_pilot()
    derived = trace_metrics(pilot.tracer.events())

    for segment in ("alveo-u280->tofino2", "tofino2->alveo-u55c"):
        int_hist = sink.registry.get(
            "histogram", "int_segment_latency_ns", segment=segment
        )
        trace_hist = derived.get(
            "histogram", "trace_segment_latency_ns", segment=segment
        )
        assert int_hist is not None and trace_hist is not None
        assert trace_hist.count == int_hist.count
        assert trace_hist.sum == int_hist.sum
        assert trace_hist.counts == int_hist.counts
        assert trace_hist.min == int_hist.min
        assert trace_hist.max == int_hist.max

    for hop in ("alveo-u280", "tofino2", "alveo-u55c"):
        int_hist = sink.registry.get("histogram", "int_queue_depth_pct", hop=hop)
        trace_hist = derived.get("histogram", "trace_queue_depth_pct", hop=hop)
        assert int_hist is not None and trace_hist is not None
        assert trace_hist.count == int_hist.count
        assert trace_hist.sum == int_hist.sum
        assert trace_hist.counts == int_hist.counts


def test_verify_detects_planted_divergence():
    """The checker is not vacuous: perturb one span's timestamp and the
    tolerance-0 comparison must flag it."""
    pilot, sink, _report = run_pilot(flows=1, messages=8)
    events = pilot.tracer.events()
    victim = next(e for e in events if e.kind == "element.egress")
    victim.ts_ns += 1
    result = verify_int_consistency(events, sink)
    assert not result.ok
    assert any("no element.egress span" in m for m in result.mismatches)
