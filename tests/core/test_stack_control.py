"""MmtStack control-message handling edge cases."""


from repro.core import (
    Feature,
    MmtHeader,
    MmtStack,
    MsgType,
    NakPayload,
    SeqRange,
    make_experiment_id,
)
from repro.netsim import Packet, Topology, units

EXP = 7
EXP_ID = make_experiment_id(EXP)


def chain(sim):
    """source, mid, sink hosts joined through one router hub."""
    topo = Topology(sim)
    source = topo.add_host("source", ip="10.0.0.2")
    mid = topo.add_host("mid", ip="10.0.1.2")
    sink = topo.add_host("sink", ip="10.0.2.2")
    hub = topo.add_router("hub")
    topo.connect(source, hub, units.gbps(10), 10_000)
    topo.connect(mid, hub, units.gbps(10), 10_000)
    topo.connect(sink, hub, units.gbps(10), 10_000)
    topo.install_routes()
    return topo, source, mid, sink


def cached_packet(seq, payload=b"x" * 32):
    return Packet(
        headers=[MmtHeader(
            features=Feature.SEQUENCED | Feature.RETRANSMISSION,
            seq=seq, buffer_addr="10.0.1.2", experiment_id=EXP_ID,
        )],
        payload=payload,
    )


def test_nak_without_local_buffer_is_ignored(sim):
    _topo, source, mid, sink = chain(sim)
    stack_mid = MmtStack(mid)  # no buffer attached
    stack_sink = MmtStack(sink)
    header = MmtHeader(msg_type=MsgType.NAK, experiment_id=EXP_ID)
    stack_sink.send_control(mid.ip, header, NakPayload(ranges=[SeqRange(0, 3)]).encode())
    sim.run()  # must not raise; silently dropped


def test_nak_fallback_chains_across_hosts(sim):
    """mid misses -> forwards the unmet ranges to source, preserving
    the original requester so the resend goes straight to the sink."""
    _topo, source, mid, sink = chain(sim)
    stack_source = MmtStack(source)
    stack_mid = MmtStack(mid)
    stack_sink = MmtStack(sink)
    got = []
    stack_sink.bind_receiver(EXP, on_message=lambda p, h: got.append(h.seq))

    stack_source.attach_buffer(1_000_000)
    stack_mid.attach_buffer(1_000_000)
    stack_mid.nak_fallback_addr = source.ip
    # mid holds seq 1 only; source holds 0 and 2.
    stack_mid.buffer.store(EXP_ID, 1, cached_packet(1))
    stack_source.buffer.store(EXP_ID, 0, cached_packet(0))
    stack_source.buffer.store(EXP_ID, 2, cached_packet(2))

    header = MmtHeader(msg_type=MsgType.NAK, experiment_id=EXP_ID)
    stack_sink.send_control(
        mid.ip, header, NakPayload(ranges=[SeqRange(0, 2)]).encode()
    )
    sim.run()
    assert sorted(got) == [0, 1, 2]
    assert stack_mid.buffer.stats.hits == 1
    assert stack_source.buffer.stats.hits == 2


def test_fallback_loop_terminates(sim):
    """Even if operators mis-wire fallbacks into a cycle, a NAK for
    data nobody holds dies out instead of circulating forever."""
    _topo, source, mid, sink = chain(sim)
    stack_source = MmtStack(source)
    stack_mid = MmtStack(mid)
    stack_sink = MmtStack(sink)
    stack_source.attach_buffer(1_000_000)
    stack_mid.attach_buffer(1_000_000)
    stack_mid.nak_fallback_addr = source.ip
    stack_source.nak_fallback_addr = mid.ip  # the mis-wiring
    header = MmtHeader(msg_type=MsgType.NAK, experiment_id=EXP_ID)
    stack_sink.send_control(
        mid.ip, header, NakPayload(ranges=[SeqRange(5, 5)]).encode()
    )
    processed = sim.run(max_events=100_000)
    assert processed < 100_000, "fallback NAKs must not loop forever"


def test_deadline_miss_callback_invoked(sim):
    _topo, source, mid, _sink = chain(sim)
    stack_source = MmtStack(source)
    stack_mid = MmtStack(mid)
    seen = []
    stack_source.on_deadline_miss = seen.append
    from repro.core import DeadlineMissPayload

    report = DeadlineMissPayload(seq=4, deadline_ns=10, observed_ns=20, experiment_id=EXP_ID)
    header = MmtHeader(msg_type=MsgType.DEADLINE_MISS, experiment_id=EXP_ID)
    stack_mid.send_control(source.ip, header, report.encode())
    sim.run()
    assert seen == [report]
    assert stack_source.deadline_misses == [report]


def test_unknown_experiment_data_counted(sim):
    _topo, source, mid, _sink = chain(sim)
    stack_source = MmtStack(source)
    stack_mid = MmtStack(mid)
    sender = stack_source.create_sender(
        experiment_id=make_experiment_id(99), mode="identify", dst_ip=mid.ip
    )
    sender.send(10)
    sim.run()
    assert stack_mid.rx_unknown_experiment == 1
