"""Age tracking semantics."""

from repro.core import (
    AGE_EPOCH_META,
    Feature,
    MmtHeader,
    activate_age_tracking,
    remaining_budget_ns,
    update_age,
)
from repro.netsim import Packet


def tracked_header(budget=1000):
    header = MmtHeader(features=Feature.AGE_TRACKING, age_ns=0, age_budget_ns=budget)
    return header


def test_activation_resets_and_stamps():
    header = tracked_header()
    packet = Packet()
    activate_age_tracking(header, packet, now_ns=500, budget_ns=2000)
    assert header.age_ns == 0
    assert header.age_budget_ns == 2000
    assert packet.meta[AGE_EPOCH_META] == 500


def test_age_accumulates_monotonically():
    header = tracked_header(budget=10_000)
    packet = Packet(meta={AGE_EPOCH_META: 100})
    update_age(header, packet, now_ns=600)
    assert header.age_ns == 500
    update_age(header, packet, now_ns=1100)
    assert header.age_ns == 1000
    # A stale update cannot reduce the age.
    update_age(header, packet, now_ns=400)
    assert header.age_ns == 1000


def test_aged_flag_set_exactly_once_past_budget():
    header = tracked_header(budget=1000)
    packet = Packet(meta={AGE_EPOCH_META: 0})
    assert not update_age(header, packet, now_ns=999)
    assert not header.aged
    assert update_age(header, packet, now_ns=1001)  # newly aged
    assert header.aged
    assert not update_age(header, packet, now_ns=5000)  # already aged
    assert header.aged


def test_untracked_packet_untouched():
    header = MmtHeader()
    packet = Packet(meta={AGE_EPOCH_META: 0})
    assert not update_age(header, packet, now_ns=100)


def test_missing_epoch_is_noop():
    header = tracked_header()
    assert not update_age(header, Packet(), now_ns=100)
    assert header.age_ns == 0


def test_remaining_budget():
    header = tracked_header(budget=1000)
    packet = Packet(meta={AGE_EPOCH_META: 0})
    update_age(header, packet, now_ns=300)
    assert remaining_budget_ns(header) == 700
    assert remaining_budget_ns(MmtHeader()) is None
