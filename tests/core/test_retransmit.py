"""Retransmission buffers and the buffer directory."""

import pytest

from repro.core import (
    BufferDirectory,
    NakForwardGuard,
    NakPayload,
    RetransmitBuffer,
    SeqRange,
)
from repro.netsim import Packet


def pkt(size=1000, **meta):
    return Packet(payload_size=size, meta=meta)


class TestBuffer:
    def test_store_and_fetch_returns_copy(self):
        buf = RetransmitBuffer(10_000, address="10.0.0.1")
        original = pkt(flow="x")
        buf.store(1, 0, original)
        fetched = buf.fetch(1, 0)
        assert fetched is not None
        assert fetched.packet_id != original.packet_id
        assert fetched.meta["flow"] == "x"

    def test_miss_counted(self):
        buf = RetransmitBuffer(10_000, address="10.0.0.1")
        assert buf.fetch(1, 99) is None
        assert buf.stats.misses == 1

    def test_duplicate_store_ignored(self):
        buf = RetransmitBuffer(10_000, address="10.0.0.1")
        buf.store(1, 0, pkt())
        buf.store(1, 0, pkt())
        assert len(buf) == 1
        assert buf.stats.duplicates_ignored == 1

    def test_fifo_eviction_under_pressure(self):
        buf = RetransmitBuffer(2_500, address="10.0.0.1")
        for seq in range(4):
            buf.store(1, seq, pkt(1000))
        assert len(buf) == 2
        assert not buf.holds(1, 0)
        assert not buf.holds(1, 1)
        assert buf.holds(1, 2) and buf.holds(1, 3)
        assert buf.stats.evicted == 2

    def test_keying_by_experiment(self):
        buf = RetransmitBuffer(10_000, address="10.0.0.1")
        buf.store(1, 0, pkt(100))
        buf.store(2, 0, pkt(200))
        assert buf.fetch(1, 0).payload_size == 100
        assert buf.fetch(2, 0).payload_size == 200

    def test_serve_nak_splits_hits_and_misses(self):
        buf = RetransmitBuffer(100_000, address="10.0.0.1")
        for seq in (0, 1, 3):
            buf.store(7, seq, pkt())
        recovered, unmet = buf.serve_nak(7, NakPayload(ranges=[SeqRange(0, 4)]))
        assert len(recovered) == 3
        assert unmet == [SeqRange(2, 2), SeqRange(4, 4)]

    def test_occupancy(self):
        buf = RetransmitBuffer(2_000, address="10.0.0.1")
        buf.store(1, 0, pkt(1000))
        assert buf.occupancy == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RetransmitBuffer(0, address="10.0.0.1")


class TestDirectory:
    def test_nearest_upstream_picks_closest_behind(self):
        directory = BufferDirectory()
        directory.register("10.0.0.1", path_position=1)
        directory.register("10.0.0.2", path_position=3)
        hit = directory.nearest_upstream(1, position=4)
        assert hit.address == "10.0.0.2"
        hit = directory.nearest_upstream(1, position=2)
        assert hit.address == "10.0.0.1"

    def test_nothing_behind_returns_none(self):
        directory = BufferDirectory()
        directory.register("10.0.0.2", path_position=5)
        assert directory.nearest_upstream(1, position=2) is None

    def test_experiment_scoping(self):
        directory = BufferDirectory()
        directory.register("10.0.0.1", path_position=1, experiments={42})
        assert directory.nearest_upstream(42, 5) is not None
        assert directory.nearest_upstream(7, 5) is None

    def test_empty_experiments_serves_all(self):
        directory = BufferDirectory()
        registration = directory.register("10.0.0.1", path_position=0)
        assert registration.serves(123)
        assert len(directory) == 1

    def test_tie_break_is_registration_order(self):
        """Two buffers at the same path position: the earliest
        registration wins, deterministically."""
        directory = BufferDirectory()
        directory.register("10.0.0.1", path_position=3)
        directory.register("10.0.0.2", path_position=3)
        assert directory.nearest_upstream(1, position=5).address == "10.0.0.1"

    def test_dead_buffers_skipped(self):
        directory = BufferDirectory()
        directory.register("10.0.0.1", path_position=1)
        directory.register("10.0.0.2", path_position=3)
        assert directory.mark_down("10.0.0.2") == 1
        assert directory.nearest_upstream(1, position=5).address == "10.0.0.1"
        assert directory.alive_count() == 1
        assert directory.mark_up("10.0.0.2") == 1
        assert directory.nearest_upstream(1, position=5).address == "10.0.0.2"
        assert (directory.marks_down, directory.marks_up) == (1, 1)

    def test_mark_down_unknown_address_is_noop(self):
        directory = BufferDirectory()
        directory.register("10.0.0.1", path_position=1)
        assert directory.mark_down("10.9.9.9") == 0
        assert directory.alive_count() == 1

    def test_failover_prefers_upstream_then_ahead(self):
        directory = BufferDirectory()
        directory.register("10.0.0.1", path_position=2)
        directory.register("10.0.0.2", path_position=3)
        # Normal case: nearest live upstream.
        assert directory.failover_for(1, position=4).address == "10.0.0.2"
        directory.mark_down("10.0.0.2")
        assert directory.failover_for(1, position=4).address == "10.0.0.1"
        # Nothing upstream survives: closest live buffer ahead still
        # works as a NAK target for the receiver.
        assert directory.failover_for(1, position=1).address == "10.0.0.1"
        directory.mark_down("10.0.0.1")
        assert directory.failover_for(1, position=4) is None

    def test_failover_respects_experiment_scoping(self):
        directory = BufferDirectory()
        directory.register("10.0.0.1", path_position=2, experiments={42})
        assert directory.failover_for(42, position=4) is not None
        assert directory.failover_for(7, position=4) is None


class TestFailedBuffer:
    def test_fail_wipes_and_refuses_stores(self):
        buf = RetransmitBuffer(100_000, address="10.0.0.1")
        buf.store(1, 0, pkt())
        buf.fail()
        assert len(buf) == 0 and buf.bytes_used == 0
        buf.store(1, 1, pkt())
        assert len(buf) == 0
        assert buf.stats.rejected_failed == 1
        assert buf.stats.failures == 1
        # Double-fail is idempotent.
        buf.fail()
        assert buf.stats.failures == 1

    def test_restore_comes_back_empty_but_working(self):
        buf = RetransmitBuffer(100_000, address="10.0.0.1")
        buf.store(1, 0, pkt())
        buf.fail()
        buf.restore()
        assert buf.fetch(1, 0) is None  # contents did not survive
        buf.store(1, 1, pkt())
        assert buf.fetch(1, 1) is not None

    def test_nak_racing_eviction_is_unmet_not_crash(self):
        """A NAK arriving for sequences the buffer already evicted must
        resolve to unmet ranges, never an exception."""
        buf = RetransmitBuffer(2_500, address="10.0.0.1")
        for seq in range(4):
            buf.store(1, seq, pkt(1000))  # seqs 0-1 evicted
        recovered, unmet = buf.serve_nak(1, NakPayload(ranges=[SeqRange(0, 1)]))
        assert recovered == []
        assert unmet == [SeqRange(0, 1)]
        assert buf.stats.misses == 2


class TestNakForwardGuard:
    def test_allows_limit_then_suppresses(self):
        guard = NakForwardGuard(limit=3)
        key = (1, ((5, 9),))
        assert [guard.allow(key) for _ in range(5)] == [True, True, True, False, False]
        assert guard.suppressed == 2

    def test_distinct_keys_independent(self):
        guard = NakForwardGuard(limit=1)
        assert guard.allow((1, ((0, 0),)))
        assert guard.allow((2, ((0, 0),)))
        assert not guard.allow((1, ((0, 0),)))

    def test_flow_scoped_keys_do_not_cross_suppress(self):
        """Regression: forward keys are ``(experiment, flow, ranges)``.

        Before the flow id entered the key, two flows of one experiment
        NAKing the same seq ranges shared a single budget: one flow's
        suppressed fallback loop muted the other's legitimate forward,
        and a noisy flow could spend a quiet flow's entire allowance."""
        guard = NakForwardGuard(limit=2)
        ranges = ((10, 20),)
        flow_a, flow_b = (7, 0, ranges), (7, 1, ranges)
        assert [guard.allow(flow_a) for _ in range(3)] == [True, True, False]
        # Flow B's identical seq ranges still get the full budget.
        assert [guard.allow(flow_b) for _ in range(3)] == [True, True, False]
        assert guard.suppressed == 2

    def test_churn_does_not_reopen_suppressed_keys(self):
        """Regression: the old implementation cleared the whole table at
        1024 entries, which reset every suppressed NAK loop at once.
        The bounded-LRU guard must keep an actively-looping key
        suppressed through arbitrarily many fresh keys."""
        guard = NakForwardGuard(limit=3, capacity=1024)
        loop_key = (99, ((0, 7),))
        for _ in range(3):
            assert guard.allow(loop_key)
        assert not guard.allow(loop_key)
        for i in range(1100):  # would have wiped the old dict twice over
            guard.allow((i, ((i, i),)))
            if i % 100 == 0:
                assert not guard.allow(loop_key)  # the loop is still live
        assert not guard.allow(loop_key)
        assert len(guard) <= 1024

    def test_idle_keys_evicted_at_capacity(self):
        guard = NakForwardGuard(limit=1, capacity=4)
        guard.allow(("idle", 0))
        for i in range(4):
            guard.allow(("fresh", i))
        assert len(guard) == 4
        # The stale key fell out: it gets a fresh allowance.
        assert guard.allow(("idle", 0))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NakForwardGuard(limit=0)
        with pytest.raises(ValueError):
            NakForwardGuard(capacity=0)
