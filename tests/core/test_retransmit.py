"""Retransmission buffers and the buffer directory."""

import pytest

from repro.core import BufferDirectory, NakPayload, RetransmitBuffer, SeqRange
from repro.netsim import Packet


def pkt(size=1000, **meta):
    return Packet(payload_size=size, meta=meta)


class TestBuffer:
    def test_store_and_fetch_returns_copy(self):
        buf = RetransmitBuffer(10_000, address="10.0.0.1")
        original = pkt(flow="x")
        buf.store(1, 0, original)
        fetched = buf.fetch(1, 0)
        assert fetched is not None
        assert fetched.packet_id != original.packet_id
        assert fetched.meta["flow"] == "x"

    def test_miss_counted(self):
        buf = RetransmitBuffer(10_000, address="10.0.0.1")
        assert buf.fetch(1, 99) is None
        assert buf.stats.misses == 1

    def test_duplicate_store_ignored(self):
        buf = RetransmitBuffer(10_000, address="10.0.0.1")
        buf.store(1, 0, pkt())
        buf.store(1, 0, pkt())
        assert len(buf) == 1
        assert buf.stats.duplicates_ignored == 1

    def test_fifo_eviction_under_pressure(self):
        buf = RetransmitBuffer(2_500, address="10.0.0.1")
        for seq in range(4):
            buf.store(1, seq, pkt(1000))
        assert len(buf) == 2
        assert not buf.holds(1, 0)
        assert not buf.holds(1, 1)
        assert buf.holds(1, 2) and buf.holds(1, 3)
        assert buf.stats.evicted == 2

    def test_keying_by_experiment(self):
        buf = RetransmitBuffer(10_000, address="10.0.0.1")
        buf.store(1, 0, pkt(100))
        buf.store(2, 0, pkt(200))
        assert buf.fetch(1, 0).payload_size == 100
        assert buf.fetch(2, 0).payload_size == 200

    def test_serve_nak_splits_hits_and_misses(self):
        buf = RetransmitBuffer(100_000, address="10.0.0.1")
        for seq in (0, 1, 3):
            buf.store(7, seq, pkt())
        recovered, unmet = buf.serve_nak(7, NakPayload(ranges=[SeqRange(0, 4)]))
        assert len(recovered) == 3
        assert unmet == [SeqRange(2, 2), SeqRange(4, 4)]

    def test_occupancy(self):
        buf = RetransmitBuffer(2_000, address="10.0.0.1")
        buf.store(1, 0, pkt(1000))
        assert buf.occupancy == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RetransmitBuffer(0, address="10.0.0.1")


class TestDirectory:
    def test_nearest_upstream_picks_closest_behind(self):
        directory = BufferDirectory()
        directory.register("10.0.0.1", path_position=1)
        directory.register("10.0.0.2", path_position=3)
        hit = directory.nearest_upstream(1, position=4)
        assert hit.address == "10.0.0.2"
        hit = directory.nearest_upstream(1, position=2)
        assert hit.address == "10.0.0.1"

    def test_nothing_behind_returns_none(self):
        directory = BufferDirectory()
        directory.register("10.0.0.2", path_position=5)
        assert directory.nearest_upstream(1, position=2) is None

    def test_experiment_scoping(self):
        directory = BufferDirectory()
        directory.register("10.0.0.1", path_position=1, experiments={42})
        assert directory.nearest_upstream(42, 5) is not None
        assert directory.nearest_upstream(7, 5) is None

    def test_empty_experiments_serves_all(self):
        directory = BufferDirectory()
        registration = directory.register("10.0.0.1", path_position=0)
        assert registration.serves(123)
        assert len(directory) == 1
