"""Property-based tests over arbitrary mode transition sequences."""

from hypothesis import given, settings, strategies as st

from repro.core import (
    Feature,
    MmtHeader,
    TransitionContext,
    extended_registry,
    transition,
)

_REGISTRY = extended_registry()
_MODES = list(_REGISTRY)


def full_context(step: int) -> TransitionContext:
    return TransitionContext(
        now_ns=step * 1000,
        seq=step,
        buffer_addr=f"10.0.0.{step % 250 + 1}",
        deadline_ns=step * 1000 + 500,
        notify_addr="10.0.1.1",
        age_budget_ns=10_000,
        pace_rate_mbps=100 + step,
        source_addr="10.0.2.1",
        dup_group=step % 100,
        dup_copies=2,
    )


@given(st.lists(st.sampled_from(_MODES), min_size=1, max_size=12))
@settings(max_examples=200)
def test_any_transition_chain_yields_valid_encodable_headers(chain):
    """Whatever sequence of modes a packet passes through, the header
    stays valid, encodable, and round-trips byte-exactly."""
    header = MmtHeader(config_id=0, experiment_id=42 << 8)
    for step, mode in enumerate(chain):
        transition(header, mode, full_context(step))
        header.validate()
        assert header.config_id == mode.config_id
        assert header.features == mode.features
        data = header.encode()
        assert MmtHeader.decode(data) == header


@given(st.lists(st.sampled_from(_MODES), min_size=2, max_size=8))
@settings(max_examples=100)
def test_seq_preserved_while_sequencing_stays_active(chain):
    """The sequence number assigned at activation survives every later
    transition that keeps SEQUENCED on (re-numbering would break
    recovery mid-path)."""
    header = MmtHeader(config_id=0, experiment_id=7 << 8)
    assigned: int | None = None
    for step, mode in enumerate(chain):
        transition(header, mode, full_context(step + 100))
        if mode.has(Feature.SEQUENCED):
            if assigned is None:
                assigned = header.seq
            else:
                assert header.seq == assigned
        else:
            assigned = None  # deactivated: a later activation renumbers


@given(st.sampled_from(_MODES), st.sampled_from(_MODES))
@settings(max_examples=100)
def test_transition_size_matches_feature_set(first, second):
    header = MmtHeader(config_id=0, experiment_id=1 << 8)
    transition(header, first, full_context(1))
    transition(header, second, full_context(2))
    # Size depends only on the final feature set, not the path taken.
    fresh = MmtHeader(config_id=0, experiment_id=1 << 8)
    transition(fresh, second, full_context(3))
    assert header.size_bytes == fresh.size_bytes
