"""Credit-based flow control (the FLOW_CONTROL feature bit)."""


from repro.core import (
    AckScheme,
    Feature,
    Mode,
    MmtStack,
    ReceiverConfig,
    SenderConfig,
    extended_registry,
    make_experiment_id,
)
from repro.netsim import units
from tests.conftest import TwoHostRig

EXP = 7
EXP_ID = make_experiment_id(EXP)


def registry_with_flow_control():
    registry = extended_registry()
    registry.register(Mode(
        config_id=8,
        name="flow-controlled",
        features=Feature.SEQUENCED | Feature.RETRANSMISSION | Feature.FLOW_CONTROL,
        ack_scheme=AckScheme.NAK_ONLY,
        description="Receiver-granted credits bound the sender's emission.",
    ))
    return registry


def build(rig, initial_credits=16, grant_credits=8):
    registry = registry_with_flow_control()
    stack_a = MmtStack(rig.a, registry)
    stack_b = MmtStack(rig.b, registry)
    got = []
    receiver = stack_b.bind_receiver(
        EXP,
        on_message=lambda p, h: got.append(h.seq),
        config=ReceiverConfig(grant_credits=grant_credits),
    )
    stack_a.attach_buffer(32 * 1024 * 1024)
    sender = stack_a.create_sender(
        experiment_id=EXP_ID,
        mode="flow-controlled",
        dst_ip=rig.b.ip,
        buffer_local=True,
        config=SenderConfig(initial_credits=initial_credits),
    )
    return sender, receiver, got


def test_sender_stops_at_credit_limit_without_grants(sim, rig):
    sender, receiver, got = build(rig, initial_credits=10, grant_credits=0)
    for _ in range(50):
        sender.send(500)
    sender.finish()
    sim.run()
    # Exactly the initial credit budget went out; the rest waited.
    assert len(got) == 10
    assert sender.credits == 0
    assert sender.stats.flow_blocked == 40


def test_receiver_grants_keep_the_stream_moving(sim, rig):
    sender, receiver, got = build(rig, initial_credits=16, grant_credits=8)
    for _ in range(200):
        sender.send(500)
    sender.finish()
    sim.run()
    assert len(got) == 200
    assert sender.stats.window_updates_received > 0
    assert receiver.stats.windows_granted > 0


def test_credits_bound_inflight(sim, rig):
    """At any instant, messages beyond base credit cannot be in flight:
    delivery count never exceeds credits granted so far."""
    grants = {"total": 16}
    sender, receiver, got = build(rig, initial_credits=16, grant_credits=8)
    original = receiver._maybe_grant

    def counting_grant(packet, header):
        before = receiver.stats.windows_granted
        original(packet, header)
        if receiver.stats.windows_granted > before:
            grants["total"] += 8
        assert len(got) <= grants["total"]

    receiver._maybe_grant = counting_grant
    for _ in range(100):
        sender.send(500)
    sender.finish()
    sim.run()
    assert len(got) == 100


def test_flow_control_composes_with_loss_recovery(sim):
    rig = TwoHostRig(sim, middle_delay_ns=units.milliseconds(2), loss_rate=0.04)
    sender, receiver, got = build(rig, initial_credits=32, grant_credits=16)
    for _ in range(300):
        sender.send(500)
    sender.finish()
    sim.run()
    receiver.request_missing(EXP_ID, 300)
    sim.run()
    assert set(got) == set(range(300))
    assert receiver.stats.unrecovered == 0


def test_non_flow_controlled_sender_ignores_window_updates(sim, rig):
    registry = registry_with_flow_control()
    stack_a = MmtStack(rig.a, registry)
    stack_b = MmtStack(rig.b, registry)
    stack_b.bind_receiver(EXP, config=ReceiverConfig(grant_credits=4))
    sender = stack_a.create_sender(
        experiment_id=EXP_ID, mode="identify", dst_ip=rig.b.ip
    )
    assert sender.credits is None
    sender.add_credits(100)  # harmless no-op
    assert sender.credits is None
    for _ in range(20):
        sender.send(100)
    sim.run()
    # identify mode has no FLOW_CONTROL bit: receiver grants nothing.
    assert stack_b.receivers[EXP].stats.windows_granted == 0
