"""Train codec equivalence: batched encode/decode vs the reference.

:mod:`repro.core.train` packs whole packet trains with one repeated
:class:`struct.Struct` call. This module pins the byte-identity
contract against the retained loop-and-pack reference codec from
:mod:`tests.core.test_header_fastpath` across every extension-feature
combination, and pins that a 1-packet train is byte-identical to the
single-packet fast path — so the train path can never move a golden
wire digest.
"""

import pytest

from repro.core import Feature, MmtHeader, MsgType
from repro.core.header import HeaderError
from repro.core.train import TrainBuffer, decode_train, encode_train, train_size_bytes
from tests.core.test_header_fastpath import (
    EXT_FEATURES,
    all_combinations,
    make_header,
    reference_decode,
    reference_encode,
)

WIRE_FIELDS = (
    "config_id",
    "features",
    "msg_type",
    "ack_scheme",
    "experiment_id",
    "seq",
    "buffer_addr",
    "deadline_ns",
    "notify_addr",
    "age_ns",
    "age_budget_ns",
    "aged",
    "pace_rate_mbps",
    "source_addr",
    "dup_group",
    "dup_copies",
    "flow_id",
)


def assert_headers_equal(actual: MmtHeader, expected: MmtHeader) -> None:
    for name in WIRE_FIELDS:
        assert getattr(actual, name) == getattr(expected, name), name


def make_train(features: Feature, count: int) -> list[MmtHeader]:
    return [make_header(features, salt=index) for index in range(count)]


# -- byte identity across every extension combination -------------------------


def test_sweep_all_combinations_match_reference_concatenation():
    """A homogeneous train is exactly per-header reference bytes, joined."""
    for combo, features in enumerate(all_combinations()):
        train = make_train(features, count=4)
        wire = encode_train(train)
        expected = b"".join(reference_encode(header) for header in train)
        assert bytes(wire) == expected, f"encode diverged: {features!r}"
        assert train_size_bytes(train) == len(expected)

        decoded = decode_train(bytes(wire))
        assert len(decoded) == len(train)
        for actual, original in zip(decoded, train):
            assert_headers_equal(actual, original)
        # Decoded headers land in the validate-once state, so re-encoding
        # them pays no validation and reproduces the same bytes.
        assert bytes(encode_train(decoded)) == expected
        for header in decoded:
            assert header._vmut == header._mut


def test_decode_train_matches_reference_decode_field_for_field():
    for features in all_combinations():
        train = make_train(features, count=3)
        wire = bytes(encode_train(train))
        decoded = decode_train(wire)
        position = 0
        for actual in decoded:
            expected, consumed = reference_decode(wire[position:])
            position += consumed
            assert_headers_equal(actual, expected)
        assert position == len(wire)


def test_one_packet_train_is_byte_identical_to_single_packet_path():
    for features in all_combinations():
        header = make_header(features, salt=9)
        assert bytes(encode_train([header])) == header.encode()
        (decoded,) = decode_train(header.encode())
        prefix, consumed = MmtHeader.decode_prefix(header.encode())
        assert consumed == header.size_bytes
        assert_headers_equal(decoded, prefix)
        assert decoded._vmut == decoded._mut == prefix._vmut == prefix._mut


# -- heterogeneous trains ------------------------------------------------------


def test_heterogeneous_train_round_trips():
    """Mixed feature bits fall back run-by-run but stay byte-identical."""
    combos = [
        Feature.NONE,
        Feature.SEQUENCED,
        Feature.SEQUENCED,  # adjacent run of two
        Feature.SEQUENCED | Feature.AGE_TRACKING,
        Feature.TIMELINESS | Feature.FLOW_ID,
        Feature.NONE,
    ]
    train = [make_header(bits, salt=index) for index, bits in enumerate(combos)]
    wire = encode_train(train)
    expected = b"".join(reference_encode(header) for header in train)
    assert bytes(wire) == expected
    assert train_size_bytes(train) == len(expected)

    decoded = decode_train(bytes(wire))
    assert len(decoded) == len(train)
    for actual, original in zip(decoded, train):
        assert_headers_equal(actual, original)


def test_mixed_msg_types_within_one_feature_mode():
    """config-word differences that carry no extra bytes stay per-header."""
    train = make_train(Feature.SEQUENCED, count=4)
    train[2].msg_type = MsgType.HEARTBEAT
    wire = bytes(encode_train(train))
    assert wire == b"".join(reference_encode(header) for header in train)
    decoded = decode_train(wire)
    assert decoded[2].msg_type is MsgType.HEARTBEAT
    for actual, original in zip(decoded, train):
        assert_headers_equal(actual, original)


# -- buffers, offsets, counts --------------------------------------------------


def test_encode_into_preallocated_bytearray_at_offset():
    train = make_train(Feature.SEQUENCED | Feature.AGE_TRACKING, count=5)
    expected = b"".join(reference_encode(header) for header in train)
    buffer = bytearray(16 + len(expected) + 7)
    wire = encode_train(train, buffer, offset=16)
    assert wire.nbytes == len(expected)
    assert bytes(wire) == expected
    assert bytes(buffer[16 : 16 + len(expected)]) == expected


def test_undersized_buffer_is_rejected():
    train = make_train(Feature.SEQUENCED, count=4)
    needed = train_size_bytes(train)
    with pytest.raises(HeaderError, match="train needs"):
        encode_train(train, bytearray(needed - 1))
    with pytest.raises(HeaderError, match="train needs"):
        encode_train(train, bytearray(needed), offset=1)


def test_train_buffer_reuse_grows_and_reuses_storage():
    pool = TrainBuffer(capacity=8)
    small = make_train(Feature.SEQUENCED, count=2)
    big = make_train(Feature.SEQUENCED | Feature.TIMELINESS, count=64)

    wire = encode_train(small, pool)
    assert bytes(wire) == b"".join(reference_encode(h) for h in small)
    grown = encode_train(big, pool)
    assert bytes(grown) == b"".join(reference_encode(h) for h in big)
    assert len(pool.data) >= grown.nbytes

    # Steady state: same-shape train reuses the backing storage.
    backing = pool.data
    again = encode_train(big, pool)
    assert pool.data is backing
    assert bytes(again) == bytes(grown)


def test_decode_with_count_leaves_trailing_payload_alone():
    train = make_train(Feature.SEQUENCED, count=3)
    wire = bytes(encode_train(train)) + b"\xaa" * 100  # train payload
    decoded = decode_train(wire, count=3)
    assert len(decoded) == 3
    for actual, original in zip(decoded, train):
        assert_headers_equal(actual, original)


def test_empty_train():
    assert bytes(encode_train([])) == b""
    assert decode_train(b"") == []
    assert train_size_bytes([]) == 0


# -- error paths ---------------------------------------------------------------


def test_truncated_core_header_raises():
    train = make_train(Feature.SEQUENCED, count=2)
    wire = bytes(encode_train(train))
    with pytest.raises(HeaderError, match="truncated"):
        decode_train(wire[:-9])  # cuts into the second header's core


def test_truncated_extension_raises():
    header = make_header(Feature.TIMELINESS, salt=1)
    wire = header.encode()
    with pytest.raises(HeaderError, match="truncated"):
        decode_train(wire[:-2])


def test_trailing_bytes_without_count_raise():
    train = make_train(Feature.NONE, count=2)
    wire = bytes(encode_train(train))
    with pytest.raises(HeaderError, match="truncated"):
        decode_train(wire + b"\x00" * 3)


def test_count_larger_than_data_raises():
    header = make_header(Feature.SEQUENCED, salt=0)
    with pytest.raises(HeaderError, match="truncated"):
        decode_train(header.encode(), count=2)


def test_sweep_covers_all_extension_features():
    assert len(EXT_FEATURES) == 8  # 256 combos swept above
