"""Control payload codecs (NAK, deadline-miss, backpressure, heartbeat)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    BackpressurePayload,
    ControlCodecError,
    DeadlineMissPayload,
    HeartbeatPayload,
    NakPayload,
    SeqRange,
)


class TestSeqRange:
    def test_length_and_iteration(self):
        r = SeqRange(5, 8)
        assert len(r) == 4
        assert list(r) == [5, 6, 7, 8]

    def test_invalid_order(self):
        with pytest.raises(ControlCodecError):
            SeqRange(9, 5)


class TestNak:
    def test_roundtrip(self):
        nak = NakPayload(ranges=[SeqRange(1, 3), SeqRange(10, 10)])
        decoded = NakPayload.decode(nak.encode())
        assert decoded.ranges == nak.ranges
        assert decoded.missing_count == 4

    def test_empty(self):
        assert NakPayload.decode(NakPayload().encode()).ranges == []

    def test_coalescing(self):
        nak = NakPayload.from_sequence_numbers([5, 1, 2, 3, 9, 10, 5])
        assert nak.ranges == [SeqRange(1, 3), SeqRange(5, 5), SeqRange(9, 10)]

    def test_coalescing_empty(self):
        assert NakPayload.from_sequence_numbers([]).ranges == []

    def test_length_mismatch_rejected(self):
        data = NakPayload(ranges=[SeqRange(0, 1)]).encode()
        with pytest.raises(ControlCodecError):
            NakPayload.decode(data[:-1])
        with pytest.raises(ControlCodecError):
            NakPayload.decode(data + b"\x00")

    @given(st.lists(st.integers(0, 10_000), max_size=200))
    def test_coalesce_covers_exactly_input(self, seqs):
        nak = NakPayload.from_sequence_numbers(seqs)
        covered = sorted(s for r in nak.ranges for s in r)
        assert covered == sorted(set(seqs))
        # Ranges are disjoint and ordered.
        for earlier, later in zip(nak.ranges, nak.ranges[1:]):
            assert earlier.end + 1 < later.start

    @given(st.lists(st.integers(0, 2**32 - 1), max_size=64))
    def test_nak_roundtrip_property(self, seqs):
        nak = NakPayload.from_sequence_numbers(seqs)
        assert NakPayload.decode(nak.encode()).ranges == nak.ranges


class TestDeadlineMiss:
    def test_roundtrip(self):
        miss = DeadlineMissPayload(seq=9, deadline_ns=100, observed_ns=150, experiment_id=7)
        assert DeadlineMissPayload.decode(miss.encode()) == miss

    def test_wrong_length(self):
        with pytest.raises(ControlCodecError):
            DeadlineMissPayload.decode(b"\x00" * 3)


class TestBackpressure:
    def test_roundtrip(self):
        signal = BackpressurePayload(advised_rate_mbps=5000, origin="10.1.2.3", severity=2)
        decoded = BackpressurePayload.decode(signal.encode())
        assert decoded == signal

    def test_wrong_length(self):
        with pytest.raises(ControlCodecError):
            BackpressurePayload.decode(b"")


class TestHeartbeat:
    def test_roundtrip(self):
        hb = HeartbeatPayload(highest_seq=123456, packets_sent=99)
        assert HeartbeatPayload.decode(hb.encode()) == hb

    def test_wrong_length(self):
        with pytest.raises(ControlCodecError):
            HeartbeatPayload.decode(b"\x01")
