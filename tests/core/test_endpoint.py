"""MMT endpoints over a simulated network: delivery, recovery, control."""

import pytest

from repro.core import (
    EndpointError,
    Feature,
    MmtStack,
    ReceiverConfig,
    make_experiment_id,
)
from repro.netsim import units
from tests.conftest import TwoHostRig

EXP = 7
EXP_ID = make_experiment_id(EXP)


def build_endpoints(rig, mode="age-recover", loss=None, receiver_config=None, **sender_kwargs):
    if loss is not None:
        rig.link_b.loss_rate = loss
    stack_a = MmtStack(rig.a)
    stack_b = MmtStack(rig.b)
    got = []
    receiver = stack_b.bind_receiver(
        EXP, on_message=lambda p, h: got.append((p, h)), config=receiver_config
    )
    defaults = dict(age_budget_ns=units.seconds(1))
    defaults.update(sender_kwargs)
    if mode == "identify":
        defaults.pop("age_budget_ns", None)
    stack_a.attach_buffer(50_000_000)
    sender = stack_a.create_sender(
        experiment_id=EXP_ID,
        mode=mode,
        dst_ip=rig.b.ip,
        buffer_local=(mode != "identify"),
        **defaults,
    )
    return stack_a, stack_b, sender, receiver, got


class TestLosslessDelivery:
    def test_messages_delivered_in_order_sent(self, sim, rig):
        _sa, _sb, sender, receiver, got = build_endpoints(rig)
        for _ in range(20):
            sender.send(1000)
        sender.finish()
        sim.run()
        assert [h.seq for _p, h in got] == list(range(20))
        assert receiver.stats.messages_delivered == 20
        assert receiver.stats.naks_sent == 0

    def test_identify_mode_has_no_seq(self, sim, rig):
        _sa, _sb, sender, _receiver, got = build_endpoints(rig, mode="identify")
        sender.send(500)
        sim.run()
        assert got[0][1].seq is None
        assert got[0][1].config_id == 0

    def test_experiment_demux(self, sim, rig):
        stack_a = MmtStack(rig.a)
        stack_b = MmtStack(rig.b)
        stack_b.bind_receiver(EXP, on_message=lambda p, h: None)
        sender = stack_a.create_sender(
            experiment_id=make_experiment_id(99), mode="identify", dst_ip=rig.b.ip
        )
        sender.send(100)
        sim.run()
        assert stack_b.rx_unknown_experiment == 1

    def test_payload_bytes_survive(self, sim, rig):
        _sa, _sb, sender, _receiver, got = build_endpoints(rig)
        sender.send(5, payload=b"hello")
        sender.finish()
        sim.run()
        assert got[0][0].payload == b"hello"


class TestLossRecovery:
    def test_all_messages_recovered_under_loss(self, sim):
        rig = TwoHostRig(sim, middle_delay_ns=units.milliseconds(2), loss_rate=0.05)
        _sa, _sb, sender, receiver, got = build_endpoints(rig)
        for _ in range(300):
            sender.send(1000)
        sender.finish()
        sim.run()
        seqs = {h.seq for _p, h in got}
        assert seqs == set(range(300))
        assert receiver.stats.naks_sent > 0
        assert receiver.stats.retransmissions_received > 0
        assert receiver.stats.unrecovered == 0
        assert receiver.complete(EXP_ID, 300)

    def test_heartbeat_recovers_tail_loss(self, sim):
        """Even when the final data packets are lost, heartbeats reveal
        the gap and recovery completes without reconciliation."""
        rig = TwoHostRig(sim, middle_delay_ns=units.microseconds(100))
        _sa, _sb, sender, receiver, got = build_endpoints(rig)
        for _ in range(10):
            sender.send(1000)
        # Kill the link for a moment so the tail is lost.
        rig.link_b.loss_rate = 0.999999
        sim.rng("force")  # noqa: keep rng streams stable
        for _ in range(3):
            sender.send(1000)
        sender.finish()

        def heal():
            rig.link_b.loss_rate = 0.0

        sim.schedule(units.milliseconds(1), heal)
        sim.run()
        assert receiver.complete(EXP_ID, 13)
        assert {h.seq for _p, h in got} == set(range(13))

    def test_duplicates_suppressed(self, sim):
        rig = TwoHostRig(sim, middle_delay_ns=units.milliseconds(5), loss_rate=0.08)
        _sa, _sb, sender, receiver, got = build_endpoints(rig)
        for _ in range(200):
            sender.send(800)
        sender.finish()
        sim.run()
        seqs = [h.seq for _p, h in got]
        assert len(seqs) == len(set(seqs)), "duplicates must not reach the app"

    def test_unrecoverable_without_buffer_addr(self, sim):
        """Messages lost with no buffer advertised are counted, not hung."""
        rig = TwoHostRig(sim, loss_rate=0.1)
        stack_a = MmtStack(rig.a)
        stack_b = MmtStack(rig.b)
        receiver = stack_b.bind_receiver(EXP, on_message=lambda p, h: None)
        # Sequenced mode but no local buffer: buffer_addr stays 0.0.0.0.
        sender = stack_a.create_sender(
            experiment_id=EXP_ID,
            mode="age-recover",
            dst_ip=rig.b.ip,
            age_budget_ns=units.seconds(1),
            buffer_local=False,
        )
        for _ in range(100):
            sender.send(500)
        sender.finish()
        sim.run()
        assert receiver.stats.unrecovered > 0
        assert receiver.outstanding() == 0

    def test_request_missing_reconciles(self, sim):
        rig = TwoHostRig(sim, loss_rate=0.15, middle_delay_ns=units.milliseconds(1))
        _sa, _sb, sender, receiver, got = build_endpoints(
            rig, receiver_config=ReceiverConfig(initial_rtt_ns=units.milliseconds(4))
        )
        for _ in range(50):
            sender.send(700)
        sender.finish()
        sim.run()
        receiver.request_missing(EXP_ID, 50)
        sim.run()
        assert receiver.complete(EXP_ID, 50)


class TestTimeliness:
    def test_deadline_miss_reported_to_notify_addr(self, sim):
        rig = TwoHostRig(sim, middle_delay_ns=units.milliseconds(10))
        stack_a = MmtStack(rig.a)
        stack_b = MmtStack(rig.b)
        receiver = stack_b.bind_receiver(EXP, on_message=lambda p, h: None)
        stack_a.attach_buffer(1_000_000)
        sender = stack_a.create_sender(
            experiment_id=EXP_ID,
            mode="deliver-check",
            dst_ip=rig.b.ip,
            age_budget_ns=units.seconds(1),
            # Deadline shorter than the path's one-way delay: every
            # message misses.
            deadline_offset_ns=units.milliseconds(1),
            notify_addr=rig.a.ip,
            buffer_local=True,
        )
        for _ in range(5):
            sender.send(100)
        sender.finish()
        sim.run()
        assert receiver.stats.deadline_misses == 5
        assert len(stack_a.deadline_misses) == 5
        assert stack_a.deadline_misses[0].experiment_id == EXP_ID

    def test_deadline_met_counted(self, sim, rig):
        stack_a = MmtStack(rig.a)
        stack_b = MmtStack(rig.b)
        receiver = stack_b.bind_receiver(EXP, on_message=lambda p, h: None)
        stack_a.attach_buffer(1_000_000)
        sender = stack_a.create_sender(
            experiment_id=EXP_ID,
            mode="deliver-check",
            dst_ip=rig.b.ip,
            age_budget_ns=units.seconds(1),
            deadline_offset_ns=units.seconds(1),
            notify_addr=rig.a.ip,
            buffer_local=True,
        )
        sender.send(100)
        sender.finish()
        sim.run()
        assert receiver.stats.deadline_ok == 1
        assert receiver.stats.deadline_misses == 0


class TestPacingAndBackpressure:
    def test_paced_sender_spaces_transmissions(self, sim, rig):
        from repro.core import extended_registry

        stack_a = MmtStack(rig.a, extended_registry())
        stack_b = MmtStack(rig.b, extended_registry())
        arrivals = []
        stack_b.bind_receiver(EXP, on_message=lambda p, h: arrivals.append(sim.now))
        stack_a.attach_buffer(1_000_000)
        sender = stack_a.create_sender(
            experiment_id=EXP_ID,
            mode="paced",
            dst_ip=rig.b.ip,
            pace_rate_mbps=80,  # 10 MB/s -> 1000B every 100 us
            buffer_local=True,
        )
        for _ in range(5):
            sender.send(1000)
        sender.finish()
        sim.run()
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(g >= units.microseconds(95) for g in gaps)

    def test_backpressure_reduces_pace(self, sim, rig):
        from repro.core import BackpressurePayload, extended_registry

        stack_a = MmtStack(rig.a, extended_registry())
        stack_a.attach_buffer(1_000_000)
        sender = stack_a.create_sender(
            experiment_id=EXP_ID,
            mode="backpressured",
            dst_ip=rig.b.ip,
            pace_rate_mbps=10_000,
            buffer_local=True,
        )
        sender.apply_backpressure(
            BackpressurePayload(advised_rate_mbps=2_000, origin="10.0.0.9", severity=1)
        )
        assert sender.pace_rate_mbps == 2_000
        assert sender.stats.backpressure_signals == 1
        sender.recover_pace()
        assert sender.pace_rate_mbps > 2_000

    def test_backpressure_ignored_without_feature(self, sim, rig):
        from repro.core import BackpressurePayload

        _sa, _sb, sender, _receiver, _got = build_endpoints(rig)
        sender.pace_rate_mbps = 9_999
        sender.apply_backpressure(
            BackpressurePayload(advised_rate_mbps=10, origin="10.0.0.9")
        )
        assert sender.pace_rate_mbps == 9_999


class TestApiGuards:
    def test_send_after_finish_rejected(self, sim, rig):
        _sa, _sb, sender, _receiver, _got = build_endpoints(rig)
        sender.finish()
        with pytest.raises(EndpointError):
            sender.send(1)

    def test_sender_requires_destination(self, sim, rig):
        stack = MmtStack(rig.a)
        with pytest.raises(EndpointError):
            stack.create_sender(experiment_id=EXP_ID, mode="identify")

    def test_mode_prerequisites_enforced(self, sim, rig):
        stack = MmtStack(rig.a)
        with pytest.raises(EndpointError):
            stack.create_sender(
                experiment_id=EXP_ID, mode="age-recover", dst_ip=rig.b.ip
            )  # age_budget_ns missing

    def test_double_bind_rejected(self, sim, rig):
        stack = MmtStack(rig.b)
        stack.bind_receiver(EXP)
        with pytest.raises(EndpointError):
            stack.bind_receiver(EXP)

    def test_double_buffer_rejected(self, sim, rig):
        stack = MmtStack(rig.a)
        stack.attach_buffer(1000)
        with pytest.raises(EndpointError):
            stack.attach_buffer(1000)

    def test_buffer_local_requires_buffer(self, sim, rig):
        stack = MmtStack(rig.a)
        with pytest.raises(EndpointError):
            stack.create_sender(
                experiment_id=EXP_ID,
                mode="age-recover",
                dst_ip=rig.b.ip,
                age_budget_ns=1,
                buffer_local=True,
            )
