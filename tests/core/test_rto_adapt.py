"""RTO re-derivation from the path's current delay under trajectories.

A time-varying link can ramp its propagation delay mid-flight; the
receiver's NAK retry interval (its RTO) must ramp with it. The
``adapt_rtt_to_path`` knob floors the retry RTT at two one-way trips
of the path *as currently measured from fresh deliveries* — with it
off, the frozen initial estimate fires spurious retries the moment the
real round trip outgrows it.

The scenario: a 2 ms WAN ramping linearly to 4 ms (a 2× delay ramp)
across a 200-message stream, with two deterministic outage blips late
in the ramp where the stale RTO undershoots the true repair round
trip. Counters are pinned exactly — the run is seeded and every fault
time is scripted, so these are golden numbers, not ranges.
"""

from repro.dataplane import PilotConfig, PilotTestbed
from repro.faults import FaultInjector, FaultPlan, LinkDynamics, Trajectory
from repro.netsim import Simulator
from repro.netsim.units import MILLISECOND

INTERVAL_NS = 100_000
COUNT = 200
STREAM_NS = COUNT * INTERVAL_NS


def _run_ramp(adapt: bool, seed: int = 11):
    pilot = PilotTestbed(
        sim=Simulator(seed=seed),
        config=PilotConfig(wan_delay_ns=2 * MILLISECOND),
    )
    pilot.dtn2_receiver.config.adapt_rtt_to_path = adapt
    plan = FaultPlan()
    plan.link_dynamics(LinkDynamics(
        pilot.wan_link,
        delay_ns=Trajectory(
            [(0, 2 * MILLISECOND), (STREAM_NS, 4 * MILLISECOND)],
            interpolate="linear",
        ),
        sample_every_ns=STREAM_NS // 20,
    ))
    # Two outage blips late in the ramp, where the one-way delay is
    # near 2x and a frozen RTO undershoots the repair round trip.
    for down_at in (14 * MILLISECOND, 18 * MILLISECOND):
        plan.link_down(pilot.wan_link, at_ns=down_at)
        plan.link_up(pilot.wan_link, at_ns=down_at + 200_000)
    injector = FaultInjector(pilot.sim, plan)
    for i in range(COUNT):
        pilot.sim.schedule(i * INTERVAL_NS, pilot.send_message, 2000, 0)
    injector.arm()
    report = pilot.run()
    return pilot, report


class TestRtoAdaptsToDelayRamp:
    def test_pinned_retx_counts_with_adaptation(self):
        pilot, report = _run_ramp(adapt=True)
        assert report.delivered == COUNT
        assert report.unrecovered == 0
        # One NAK per outage, one repair burst each, zero spurious.
        assert report.naks_sent == 2
        assert report.naks_served == 2
        assert report.retransmissions == 4
        assert report.duplicates == 0
        # The trajectory actually ramped the link the whole way.
        assert pilot.wan_link.stats.delay_changes == 20
        assert pilot.wan_link.propagation_delay_ns == 4 * MILLISECOND

    def test_frozen_rto_fires_spurious_retries(self):
        _pilot, report = _run_ramp(adapt=False)
        assert report.delivered == COUNT
        assert report.unrecovered == 0
        # The stale 4 ms retry interval undershoots the ~8 ms repair
        # round trip at the top of the ramp: one extra NAK round and
        # its duplicate repairs.
        assert report.naks_sent == 3
        assert report.naks_served == 3
        assert report.retransmissions == 6
        assert report.duplicates == 2

    def test_adaptation_replays_identically(self):
        first = _run_ramp(adapt=True)[1]
        second = _run_ramp(adapt=True)[1]
        assert (first.naks_sent, first.retransmissions, first.delivered) == (
            second.naks_sent, second.retransmissions, second.delivered
        )
