"""Configuration-data word packing."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    AckScheme,
    Feature,
    MsgType,
    pack_config_data,
    unpack_config_data,
)


def test_word_is_24_bits():
    word = pack_config_data(Feature.all_defined(), MsgType.MODE_ANNOUNCE, AckScheme.HOP_BY_HOP)
    assert 0 <= word < (1 << 24)


def test_roundtrip_simple():
    word = pack_config_data(
        Feature.SEQUENCED | Feature.RETRANSMISSION, MsgType.NAK, AckScheme.NAK_ONLY
    )
    features, msg_type, ack = unpack_config_data(word)
    assert features == Feature.SEQUENCED | Feature.RETRANSMISSION
    assert msg_type == MsgType.NAK
    assert ack == AckScheme.NAK_ONLY


def test_zero_word_is_mode0_data():
    features, msg_type, ack = unpack_config_data(0)
    assert features == Feature.NONE
    assert msg_type == MsgType.DATA
    assert ack == AckScheme.NONE


def test_out_of_range_word_rejected():
    with pytest.raises(ValueError):
        unpack_config_data(1 << 24)
    with pytest.raises(ValueError):
        unpack_config_data(-1)


def test_feature_bits_disjoint():
    seen = 0
    for member in Feature:
        if member == Feature.NONE:
            continue
        assert seen & member == 0, f"{member} overlaps"
        seen |= member


feature_bits = st.integers(0, int(Feature.all_defined()))


@given(
    bits=feature_bits,
    msg=st.sampled_from(list(MsgType)),
    ack=st.sampled_from(list(AckScheme)),
)
def test_roundtrip_property(bits, msg, ack):
    word = pack_config_data(Feature(bits), msg, ack)
    features, msg2, ack2 = unpack_config_data(word)
    assert int(features) == bits
    assert msg2 == msg
    assert ack2 == ack
