"""Fast-path codec equivalence: precompiled Structs vs the reference.

The codec in :mod:`repro.core.header` was rewritten from a
loop-and-pack implementation to a table of precompiled
:class:`struct.Struct` objects (one per extension-feature combination).
This module retains the original loop-based encoder/decoder verbatim as
the *reference implementation* and sweeps every one of the 256
extension-feature combinations (and non-size-bearing bits on top)
through both, so any divergence in layout, sizing, or field order fails
here before it can corrupt a wire trace.

Also pins the validate-once contract of ``encode()``.
"""

import struct

import pytest

from repro.core import Feature, MmtHeader
from repro.core.features import CONFIG_DATA_MAX, pack_config_data, unpack_config_data
from repro.core.header import (
    _CODECS,
    _EXT_MASK,
    _EXT_SEGMENTS,
    CORE_HEADER_BYTES,
    HeaderError,
    pack_ipv4,
    unpack_ipv4,
)

# -- reference implementation (retained from the pre-fast-path codec) ---------


def reference_encode(header: MmtHeader) -> bytes:
    """The original loop-and-pack encoder, kept byte-for-byte."""
    header.validate()
    config_data = pack_config_data(header.features, header.msg_type, header.ack_scheme)
    if config_data > CONFIG_DATA_MAX:
        raise HeaderError(f"config data overflow: {config_data:#x}")
    out = bytearray()
    out += struct.pack(
        ">BBH I",
        header.config_id,
        (config_data >> 16) & 0xFF,
        config_data & 0xFFFF,
        header.experiment_id,
    )
    if header.has(Feature.SEQUENCED):
        out += struct.pack(">I", header.seq & 0xFFFFFFFF)
    if header.has(Feature.RETRANSMISSION):
        out += struct.pack(">I", pack_ipv4(header.buffer_addr))
    if header.has(Feature.TIMELINESS):
        out += struct.pack(">QI", header.deadline_ns, pack_ipv4(header.notify_addr))
    if header.has(Feature.AGE_TRACKING):
        out += struct.pack(
            ">QQB", header.age_ns, header.age_budget_ns, 1 if header.aged else 0
        )
    if header.has(Feature.PACING):
        out += struct.pack(">I", header.pace_rate_mbps)
    if header.has(Feature.BACKPRESSURE):
        out += struct.pack(">I", pack_ipv4(header.source_addr))
    if header.has(Feature.DUPLICATION):
        out += struct.pack(">HB", header.dup_group, header.dup_copies)
    if header.has(Feature.FLOW_ID):
        out += struct.pack(">H", header.flow_id)
    return bytes(out)


def reference_decode(data: bytes) -> tuple[MmtHeader, int]:
    """The original sequential-take decoder, kept byte-for-byte."""
    if len(data) < CORE_HEADER_BYTES:
        raise HeaderError(f"truncated core header: {len(data)} bytes")
    config_id, data_hi, data_lo, experiment_id = struct.unpack(
        ">BBH I", data[:CORE_HEADER_BYTES]
    )
    config_data = (data_hi << 16) | data_lo
    features, msg_type, ack_scheme = unpack_config_data(config_data)
    header = MmtHeader(
        config_id=config_id,
        features=features,
        msg_type=msg_type,
        ack_scheme=ack_scheme,
        experiment_id=experiment_id,
    )
    offset = CORE_HEADER_BYTES

    def take(count: int) -> bytes:
        nonlocal offset
        if len(data) < offset + count:
            raise HeaderError("truncated extension field")
        chunk = data[offset : offset + count]
        offset += count
        return chunk

    if header.has(Feature.SEQUENCED):
        (header.seq,) = struct.unpack(">I", take(4))
    if header.has(Feature.RETRANSMISSION):
        header.buffer_addr = unpack_ipv4(struct.unpack(">I", take(4))[0])
    if header.has(Feature.TIMELINESS):
        deadline, notify = struct.unpack(">QI", take(12))
        header.deadline_ns = deadline
        header.notify_addr = unpack_ipv4(notify)
    if header.has(Feature.AGE_TRACKING):
        age, budget, flags = struct.unpack(">QQB", take(17))
        header.age_ns = age
        header.age_budget_ns = budget
        header.aged = bool(flags & 1)
    if header.has(Feature.PACING):
        (header.pace_rate_mbps,) = struct.unpack(">I", take(4))
    if header.has(Feature.BACKPRESSURE):
        header.source_addr = unpack_ipv4(struct.unpack(">I", take(4))[0])
    if header.has(Feature.DUPLICATION):
        header.dup_group, header.dup_copies = struct.unpack(">HB", take(3))
    if header.has(Feature.FLOW_ID):
        (header.flow_id,) = struct.unpack(">H", take(2))
    header.validate()
    return header, offset


# -- combination sweep --------------------------------------------------------

EXT_FEATURES = (
    Feature.SEQUENCED,
    Feature.RETRANSMISSION,
    Feature.TIMELINESS,
    Feature.AGE_TRACKING,
    Feature.PACING,
    Feature.BACKPRESSURE,
    Feature.DUPLICATION,
    Feature.FLOW_ID,
)

#: Bits that carry no extension bytes; mixed in to check sizing ignores them.
SIZELESS_BITS = (Feature.NONE, Feature.FLOW_CONTROL | Feature.ENCRYPTED)


def make_header(features: Feature, salt: int = 0) -> MmtHeader:
    """A header with every active feature's fields set to distinct values."""
    header = MmtHeader(
        config_id=(5 + salt) & 0xFF,
        features=features,
        experiment_id=0xDEAD0000 | (salt & 0xFFFF),
    )
    if features & Feature.SEQUENCED:
        header.seq = 0x01020304 + salt
    if features & Feature.RETRANSMISSION:
        header.buffer_addr = "10.0.0.1"
    if features & Feature.TIMELINESS:
        header.deadline_ns = 0x1122334455667788
        header.notify_addr = "10.0.0.2"
    if features & Feature.AGE_TRACKING:
        header.age_ns = 0x0102030405060708
        header.age_budget_ns = 5_000_000
        header.aged = bool(salt & 1)
    if features & Feature.PACING:
        header.pace_rate_mbps = 40_000 + salt
    if features & Feature.BACKPRESSURE:
        header.source_addr = "10.0.0.3"
    if features & Feature.DUPLICATION:
        header.dup_group = 0x0A0B
        header.dup_copies = 3
    if features & Feature.FLOW_ID:
        header.flow_id = 0x0C0D ^ (salt & 0xFF)
    return header


def all_combinations():
    for combo in range(1 << len(EXT_FEATURES)):
        features = Feature.NONE
        for index, feature in enumerate(EXT_FEATURES):
            if combo & (1 << index):
                features |= feature
        yield features


def test_sweep_all_256_combinations_match_reference():
    seen = 0
    for features in all_combinations():
        for extra_bits in SIZELESS_BITS:
            header = make_header(features | extra_bits, salt=seen & 0xFF)
            wire = header.encode()
            assert wire == reference_encode(header), f"encode diverged: {features!r}"
            assert header.size_bytes == len(wire)

            decoded = MmtHeader.decode(wire)
            ref_decoded, consumed = reference_decode(wire)
            assert consumed == len(wire)
            assert decoded == ref_decoded
            assert decoded == header
        seen += 1
    assert seen == 256


def test_decode_prefix_consumed_matches_reference_for_all_combinations():
    payload = b"\xaa" * 11
    for features in all_combinations():
        header = make_header(features)
        wire = header.encode()
        fast, fast_consumed = MmtHeader.decode_prefix(wire + payload)
        _ref, ref_consumed = reference_decode(wire + payload)
        assert fast_consumed == ref_consumed == len(wire)
        assert fast == header


def test_codec_table_covers_every_extension_combination():
    assert len(_CODECS) == 256
    # SEQ(1)|RETX(2)|TIME(4)|AGE(8)|PACE(16)|BP(128)|DUP(256)|FLOW(1024)
    assert _EXT_MASK == 0x59F
    # The raw segment table must mirror the Feature enum and the
    # documented extension layout, in order.
    layout = MmtHeader._EXTENSION_LAYOUT
    assert [(bit, size) for bit, _fmt, size in _EXT_SEGMENTS] == [
        (int(feature), size) for feature, size in layout
    ]
    for bits, codec in _CODECS.items():
        assert codec.struct.size == codec.size
        assert bits & ~_EXT_MASK == 0


def test_truncated_extension_rejected_like_reference():
    header = make_header(Feature.SEQUENCED | Feature.AGE_TRACKING)
    wire = header.encode()
    for cut in (CORE_HEADER_BYTES, len(wire) - 1):
        with pytest.raises(HeaderError):
            MmtHeader.decode(wire[:cut])
        with pytest.raises(HeaderError):
            reference_decode(wire[:cut])


# -- validate-once ------------------------------------------------------------


def test_encode_validates_once_per_configuration(monkeypatch):
    calls = []
    real_validate = MmtHeader.validate

    def counting_validate(self):
        calls.append(1)
        real_validate(self)

    monkeypatch.setattr(MmtHeader, "validate", counting_validate)
    header = MmtHeader(features=Feature.SEQUENCED, seq=1)
    header.encode()
    header.encode()
    assert len(calls) == 1  # second encode reuses the cached verdict

    header.seq = 2  # trusted value rewrite: no re-validation
    header.encode()
    assert len(calls) == 1

    header.features = Feature.NONE  # features rewrite: verdict is stale
    header.seq = None
    header.encode()
    assert len(calls) == 2

    header.encode(validate=True)  # forced
    assert len(calls) == 3
    header.encode(validate=False)  # skipped even though forced above
    assert len(calls) == 3


def test_encode_default_still_rejects_invalid_new_configuration():
    header = MmtHeader(features=Feature.SEQUENCED, seq=1)
    header.encode()
    header.features = Feature.SEQUENCED | Feature.RETRANSMISSION  # no buffer_addr
    with pytest.raises(HeaderError):
        header.encode()