"""The MMT wire codec: byte-exactness, validation, property round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    AckScheme,
    CORE_HEADER_BYTES,
    Feature,
    HeaderError,
    MmtHeader,
    MsgType,
    make_experiment_id,
    pack_ipv4,
    split_experiment_id,
    unpack_ipv4,
)


def test_core_header_is_8_bytes():
    header = MmtHeader(config_id=1, experiment_id=5)
    data = header.encode()
    assert len(data) == CORE_HEADER_BYTES == 8
    assert header.size_bytes == 8


def test_known_byte_layout():
    header = MmtHeader(config_id=0xAB, experiment_id=0x01020304)
    data = header.encode()
    assert data[0] == 0xAB
    assert data[1:4] == b"\x00\x00\x00"  # config data word
    assert data[4:8] == b"\x01\x02\x03\x04"


def test_extension_order_and_sizes():
    header = MmtHeader(
        features=Feature.SEQUENCED | Feature.RETRANSMISSION | Feature.TIMELINESS
        | Feature.AGE_TRACKING | Feature.PACING | Feature.BACKPRESSURE
        | Feature.DUPLICATION,
        seq=7,
        buffer_addr="10.0.0.1",
        deadline_ns=123456789,
        notify_addr="10.0.0.2",
        age_ns=5,
        age_budget_ns=100,
        pace_rate_mbps=4000,
        source_addr="10.0.0.3",
        dup_group=3,
        dup_copies=2,
    )
    # 8 core + 4 + 4 + 12 + 17 + 4 + 4 + 3
    assert header.size_bytes == 56
    assert len(header.encode()) == 56


def test_flow_id_appended_after_all_other_extensions():
    base = MmtHeader(features=Feature.SEQUENCED, seq=7, experiment_id=42)
    flowed = MmtHeader(
        features=Feature.SEQUENCED | Feature.FLOW_ID,
        seq=7,
        experiment_id=42,
        flow_id=0x0102,
    )
    base_wire = base.encode()
    flow_wire = flowed.encode()
    # The flow id is the trailing 2 bytes; everything before it differs
    # from the flow-less wire only in the feature word (byte 2).
    assert len(flow_wire) == len(base_wire) + 2
    assert flow_wire[-2:] == b"\x01\x02"
    assert flow_wire[4:-2] == base_wire[4:]
    assert MmtHeader.decode(flow_wire).flow_id == 0x0102
    assert MmtHeader.decode(flow_wire).flow_key == (42, 0x0102)
    assert base.flow_key == (42, 0)


def test_flow_id_out_of_range_rejected():
    header = MmtHeader(features=Feature.FLOW_ID, flow_id=1 << 16)
    with pytest.raises(HeaderError):
        header.validate()


def test_flow_id_without_feature_rejected():
    header = MmtHeader(flow_id=3)
    with pytest.raises(HeaderError):
        header.validate()


def test_decode_rejects_trailing_bytes():
    data = MmtHeader().encode() + b"\x00"
    with pytest.raises(HeaderError):
        MmtHeader.decode(data)


def test_decode_prefix_returns_consumed():
    header = MmtHeader(features=Feature.SEQUENCED, seq=9)
    data = header.encode() + b"payload"
    decoded, consumed = MmtHeader.decode_prefix(data)
    assert consumed == header.size_bytes
    assert decoded.seq == 9


def test_truncated_core_rejected():
    with pytest.raises(HeaderError):
        MmtHeader.decode(b"\x00\x00\x00")


def test_truncated_extension_rejected():
    header = MmtHeader(features=Feature.TIMELINESS, deadline_ns=1, notify_addr="1.2.3.4")
    data = header.encode()[:-2]
    with pytest.raises(HeaderError):
        MmtHeader.decode(data)


def test_validation_field_without_feature():
    header = MmtHeader(seq=5)  # SEQUENCED not set
    with pytest.raises(HeaderError):
        header.validate()


def test_validation_feature_without_field():
    header = MmtHeader(features=Feature.RETRANSMISSION | Feature.SEQUENCED, seq=1)
    with pytest.raises(HeaderError):
        header.validate()  # buffer_addr missing


def test_aged_flag_requires_age_tracking():
    header = MmtHeader(aged=True)
    with pytest.raises(HeaderError):
        header.validate()


def test_copy_is_deep_enough():
    header = MmtHeader(features=Feature.SEQUENCED, seq=1)
    clone = header.copy()
    clone.seq = 99
    assert header.seq == 1


class TestIpv4Codec:
    def test_roundtrip(self):
        assert unpack_ipv4(pack_ipv4("192.168.1.254")) == "192.168.1.254"

    def test_known_value(self):
        assert pack_ipv4("10.0.0.1") == 0x0A000001

    def test_bad_addresses(self):
        for bad in ("10.0.0", "10.0.0.256", "a.b.c.d"):
            with pytest.raises(HeaderError):
                pack_ipv4(bad)

    def test_out_of_range_int(self):
        with pytest.raises(HeaderError):
            unpack_ipv4(1 << 32)


class TestExperimentId:
    def test_split_roundtrip(self):
        eid = make_experiment_id(1234, 56)
        assert split_experiment_id(eid) == (1234, 56)

    def test_header_properties(self):
        header = MmtHeader(experiment_id=make_experiment_id(7, 3))
        assert header.experiment == 7
        assert header.slice_id == 3

    def test_range_checks(self):
        with pytest.raises(HeaderError):
            make_experiment_id(1 << 24, 0)
        with pytest.raises(HeaderError):
            make_experiment_id(0, 256)


# -- property-based round trip ------------------------------------------------

octet = st.integers(0, 255)
ipv4 = st.builds(lambda a, b, c, d: f"{a}.{b}.{c}.{d}", octet, octet, octet, octet)


@st.composite
def headers(draw):
    features = Feature(draw(st.integers(0, int(Feature.all_defined()))))
    header = MmtHeader(
        config_id=draw(st.integers(0, 255)),
        features=features,
        msg_type=draw(st.sampled_from(list(MsgType))),
        ack_scheme=draw(st.sampled_from(list(AckScheme))),
        experiment_id=draw(st.integers(0, 2**32 - 1)),
    )
    if features & Feature.SEQUENCED:
        header.seq = draw(st.integers(0, 2**32 - 1))
    if features & Feature.RETRANSMISSION:
        header.buffer_addr = draw(ipv4)
    if features & Feature.TIMELINESS:
        header.deadline_ns = draw(st.integers(0, 2**64 - 1))
        header.notify_addr = draw(ipv4)
    if features & Feature.AGE_TRACKING:
        header.age_ns = draw(st.integers(0, 2**64 - 1))
        header.age_budget_ns = draw(st.integers(0, 2**64 - 1))
        header.aged = draw(st.booleans())
    if features & Feature.PACING:
        header.pace_rate_mbps = draw(st.integers(0, 2**32 - 1))
    if features & Feature.BACKPRESSURE:
        header.source_addr = draw(ipv4)
    if features & Feature.DUPLICATION:
        header.dup_group = draw(st.integers(0, 2**16 - 1))
        header.dup_copies = draw(st.integers(0, 255))
    if features & Feature.FLOW_ID:
        header.flow_id = draw(st.integers(0, 2**16 - 1))
    return header


@given(header=headers())
def test_encode_decode_roundtrip(header):
    data = header.encode()
    assert len(data) == header.size_bytes
    decoded = MmtHeader.decode(data)
    assert decoded == header


@given(header=headers())
def test_size_matches_declared_layout(header):
    expected = CORE_HEADER_BYTES
    for feature, ext in MmtHeader._EXTENSION_LAYOUT:
        if header.features & feature:
            expected += ext
    assert header.size_bytes == expected
