"""Mode registry and transition semantics."""

import pytest

from repro.core import (
    AckScheme,
    Feature,
    MmtHeader,
    Mode,
    ModeError,
    ModeRegistry,
    TransitionContext,
    extended_registry,
    pilot_registry,
    transition,
)


class TestRegistry:
    def test_pilot_has_three_modes(self):
        registry = pilot_registry()
        assert len(registry) == 3
        assert registry.by_id(0).name == "identify"
        assert registry.by_id(1).name == "age-recover"
        assert registry.by_id(2).name == "deliver-check"

    def test_extended_superset_of_pilot(self):
        registry = extended_registry()
        for mode in pilot_registry():
            assert registry.by_id(mode.config_id).name == mode.name
        assert registry.by_name("fanout")
        assert registry.by_name("backpressured")

    def test_duplicate_ids_rejected(self):
        registry = ModeRegistry()
        registry.register(Mode(9, "one", Feature.NONE))
        with pytest.raises(ModeError):
            registry.register(Mode(9, "two", Feature.NONE))
        with pytest.raises(ModeError):
            registry.register(Mode(10, "one", Feature.NONE))

    def test_unknown_lookups(self):
        registry = pilot_registry()
        with pytest.raises(ModeError):
            registry.by_id(200)
        with pytest.raises(ModeError):
            registry.by_name("nope")

    def test_retransmission_requires_sequencing(self):
        with pytest.raises(ModeError):
            Mode(3, "broken", Feature.RETRANSMISSION)

    def test_contains(self):
        assert 0 in pilot_registry()
        assert 99 not in pilot_registry()


class TestTransition:
    def setup_method(self):
        self.registry = pilot_registry()

    def mode0_header(self):
        return MmtHeader(config_id=0, experiment_id=42)

    def test_activate_mode1(self):
        header = self.mode0_header()
        target = self.registry.by_name("age-recover")
        ctx = TransitionContext(
            now_ns=100, seq=17, buffer_addr="10.0.0.5", age_budget_ns=1000
        )
        transition(header, target, ctx)
        assert header.config_id == 1
        assert header.seq == 17
        assert header.buffer_addr == "10.0.0.5"
        assert header.age_ns == 0
        assert header.age_budget_ns == 1000
        assert not header.aged
        assert header.ack_scheme == AckScheme.NAK_ONLY
        header.validate()

    def test_missing_context_raises(self):
        header = self.mode0_header()
        target = self.registry.by_name("age-recover")
        with pytest.raises(ModeError):
            transition(header, target, TransitionContext(seq=1, age_budget_ns=5))

    def test_carried_features_keep_values(self):
        header = self.mode0_header()
        transition(
            header,
            self.registry.by_name("age-recover"),
            TransitionContext(seq=3, buffer_addr="10.0.0.5", age_budget_ns=9),
        )
        header.age_ns = 555  # aged along the way
        transition(
            header,
            self.registry.by_name("deliver-check"),
            TransitionContext(deadline_ns=10_000, notify_addr="10.0.0.9"),
        )
        assert header.seq == 3  # not re-assigned
        assert header.age_ns == 555  # preserved
        assert header.deadline_ns == 10_000
        header.validate()

    def test_buffer_addr_refreshed_when_offered(self):
        """Moving to a closer buffer rewrites the NAK target (§5.1)."""
        header = self.mode0_header()
        transition(
            header,
            self.registry.by_name("age-recover"),
            TransitionContext(seq=1, buffer_addr="10.0.0.5", age_budget_ns=9),
        )
        transition(
            header,
            self.registry.by_name("deliver-check"),
            TransitionContext(
                deadline_ns=1, notify_addr="10.0.0.9", buffer_addr="10.0.99.1"
            ),
        )
        assert header.buffer_addr == "10.0.99.1"

    def test_downgrade_clears_fields(self):
        header = self.mode0_header()
        transition(
            header,
            self.registry.by_name("age-recover"),
            TransitionContext(seq=1, buffer_addr="10.0.0.5", age_budget_ns=9),
        )
        header.aged = True
        transition(header, self.registry.by_name("identify"), TransitionContext())
        assert header.seq is None
        assert header.buffer_addr is None
        assert header.age_ns is None
        assert not header.aged
        header.validate()

    def test_flow_id_survives_every_transition(self):
        header = self.mode0_header()
        header.features |= Feature.FLOW_ID
        header.flow_id = 9
        ctx = TransitionContext(seq=1, buffer_addr="10.0.0.5", age_budget_ns=9)
        transition(header, self.registry.by_name("age-recover"), ctx)
        assert header.flow_id == 9
        assert header.has(Feature.FLOW_ID)
        # Downgrading to a mode with no features keeps flow identity too.
        transition(header, self.registry.by_name("identify"), TransitionContext())
        assert header.flow_id == 9
        assert header.has(Feature.FLOW_ID)
        assert header.seq is None
        header.validate()

    def test_transition_result_always_valid(self):
        registry = extended_registry()
        header = self.mode0_header()
        ctx = TransitionContext(
            now_ns=5,
            seq=1,
            buffer_addr="1.1.1.1",
            deadline_ns=10,
            notify_addr="2.2.2.2",
            age_budget_ns=3,
            pace_rate_mbps=100,
            source_addr="3.3.3.3",
            dup_group=1,
            dup_copies=2,
        )
        for mode in registry:
            fresh = self.mode0_header()
            transition(fresh, mode, ctx)
            fresh.validate()
            assert fresh.config_id == mode.config_id
