"""Serial-number arithmetic and end-to-end 32-bit wraparound."""

import pytest
from hypothesis import given, strategies as st

from repro.core import MmtStack, ReceiverConfig, make_experiment_id
from repro.core.seqspace import SEQ_MOD, seq_lt, unwrap, wrap
from repro.netsim import units
from tests.conftest import TwoHostRig

EXP = 7
EXP_ID = make_experiment_id(EXP)


class TestWrapUnwrap:
    def test_wrap_masks(self):
        assert wrap(5) == 5
        assert wrap(SEQ_MOD) == 0
        assert wrap(SEQ_MOD + 17) == 17

    def test_wrap_negative_rejected(self):
        with pytest.raises(ValueError):
            wrap(-1)

    def test_unwrap_same_epoch(self):
        assert unwrap(100, reference=90) == 100
        assert unwrap(50, reference=90) == 50

    def test_unwrap_across_boundary_forward(self):
        # Reference just before the wrap; small wire values are *ahead*.
        reference = SEQ_MOD - 10
        assert unwrap(3, reference) == SEQ_MOD + 3

    def test_unwrap_across_boundary_backward(self):
        # Reference just after the wrap; huge wire values are *behind*.
        reference = SEQ_MOD + 5
        assert unwrap(SEQ_MOD - 2, reference) == SEQ_MOD - 2

    def test_unwrap_clamps_at_zero(self):
        # Early stream: values cannot unwrap below zero.
        assert unwrap(SEQ_MOD - 1, reference=0) == SEQ_MOD - 1

    def test_validation(self):
        with pytest.raises(ValueError):
            unwrap(SEQ_MOD, 0)
        with pytest.raises(ValueError):
            unwrap(0, -1)

    @given(virtual=st.integers(0, 2**40), delta=st.integers(-(2**20), 2**20))
    def test_roundtrip_near_reference(self, virtual, delta):
        """Any virtual seq within 2^20 of the reference survives the
        wrap/unwrap round trip exactly."""
        reference = virtual + delta
        if reference < 0:
            reference = 0
        recovered = unwrap(wrap(virtual), reference)
        # Equal whenever virtual is within half the space of reference.
        if abs(virtual - reference) < SEQ_MOD // 2 and not (
            virtual < SEQ_MOD // 2 and reference >= SEQ_MOD
        ):
            assert recovered == virtual


class TestSerialLess:
    def test_ordinary(self):
        assert seq_lt(1, 2)
        assert not seq_lt(2, 1)
        assert not seq_lt(5, 5)

    def test_across_wrap(self):
        assert seq_lt(SEQ_MOD - 1, 0)
        assert not seq_lt(0, SEQ_MOD - 1)


class TestEndToEndWraparound:
    def run_stream(self, sim, start_virtual, count=300, loss=0.04):
        rig = TwoHostRig(sim, middle_delay_ns=units.milliseconds(2), loss_rate=loss)
        stack_a = MmtStack(rig.a)
        stack_b = MmtStack(rig.b)
        arrivals = []
        receiver = stack_b.bind_receiver(
            EXP,
            on_message=lambda p, h: arrivals.append(h.seq),
            config=ReceiverConfig(initial_rtt_ns=units.milliseconds(8)),
        )
        stack_a.attach_buffer(64 * 1024 * 1024)
        sender = stack_a.create_sender(
            experiment_id=EXP_ID, mode="age-recover", dst_ip=rig.b.ip,
            age_budget_ns=units.seconds(1), buffer_local=True,
        )
        # Long-running stream: position the sender near the wrap point
        # (equivalent to having sent ~4.29 billion messages already).
        sender._next_seq = start_virtual
        for _ in range(count):
            sender.send(600)
        sender.finish()
        sim.run()
        receiver.request_missing(EXP_ID, start_virtual + count)
        sim.run()
        return arrivals, receiver

    def test_stream_crossing_wrap_recovers_fully(self, sim):
        start = SEQ_MOD - 150  # wraps mid-stream
        arrivals, receiver = self.run_stream(sim, start, count=300)
        virtuals = sorted(unwrap(a, start + 150) for a in set(arrivals))
        assert virtuals == list(range(start, start + 300))
        assert receiver.stats.unrecovered == 0
        assert receiver.outstanding() == 0
        assert receiver.stats.retransmissions_received > 0

    def test_wire_values_actually_wrapped(self, sim):
        start = SEQ_MOD - 5
        arrivals, _receiver = self.run_stream(sim, start, count=10, loss=0.0)
        assert set(arrivals) == {SEQ_MOD - 5, SEQ_MOD - 4, SEQ_MOD - 3,
                                 SEQ_MOD - 2, SEQ_MOD - 1, 0, 1, 2, 3, 4}

    def test_mid_stream_join_does_not_demand_history(self, sim):
        """A receiver that first hears seq ~4e9 must not try to recover
        four billion 'missing' predecessors."""
        arrivals, receiver = self.run_stream(sim, SEQ_MOD - 100, count=200, loss=0.0)
        assert len(arrivals) == 200
        assert receiver.stats.unrecovered == 0
        assert receiver.stats.naks_sent == 0  # nothing was ever missing
