"""Metrics: percentiles, AoI, fairness."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    AgeOfInformation,
    LatencySummary,
    completion_fraction,
    goodput_bps,
    jains_fairness,
    percentile,
)


class TestPercentile:
    def test_nearest_rank(self):
        samples = list(range(1, 101))
        assert percentile(samples, 0.50) == 50
        assert percentile(samples, 0.99) == 99
        assert percentile(samples, 1.0) == 100
        assert percentile(samples, 0.0) == 1

    def test_value_always_from_samples(self):
        samples = [3, 1, 4, 1, 5]
        for f in (0.1, 0.5, 0.9):
            assert percentile(samples, f) in samples

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_fraction_range(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    @given(st.lists(st.integers(0, 10**9), min_size=1), st.floats(0, 1))
    def test_monotone_in_fraction(self, samples, f):
        assert percentile(samples, f) <= percentile(samples, 1.0)
        assert percentile(samples, f) >= percentile(samples, 0.0)


class TestLatencySummary:
    def test_summary_fields(self):
        summary = LatencySummary.of([10, 20, 30, 40, 50])
        assert summary.count == 5
        assert summary.min_ns == 10
        assert summary.max_ns == 50
        assert summary.p50_ns == 30
        assert summary.mean_ns == 30

    def test_ms_conversion(self):
        summary = LatencySummary.of([2_000_000])
        assert summary.as_ms()["p50"] == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencySummary.of([])


class TestGoodput:
    def test_arithmetic(self):
        assert goodput_bps(125, 1_000_000_000) == 1000.0  # 125 B/s = 1 kb/s

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            goodput_bps(1, 0)


class TestAoI:
    def test_single_delivery(self):
        aoi = AgeOfInformation()
        aoi.observe(delivery_ns=150, generated_ns=100)
        assert aoi.average_ns == 50
        assert aoi.peak_ns == 50

    def test_sawtooth_average(self):
        aoi = AgeOfInformation()
        # Fresh samples every 100 ns, each aged 10 ns at delivery:
        # age runs 10 -> 110 between deliveries; mean 60.
        for k in range(1, 101):
            aoi.observe(delivery_ns=k * 100, generated_ns=k * 100 - 10)
        assert aoi.average_ns == pytest.approx(60, rel=0.01)
        assert aoi.peak_ns == 110

    def test_orders_enforced(self):
        aoi = AgeOfInformation()
        with pytest.raises(ValueError):
            aoi.observe(delivery_ns=50, generated_ns=100)
        aoi.observe(delivery_ns=100, generated_ns=90)
        with pytest.raises(ValueError):
            aoi.observe(delivery_ns=50, generated_ns=10)

    def test_stale_deliveries_raise_average(self):
        fresh = AgeOfInformation()
        stale = AgeOfInformation()
        for k in range(1, 51):
            fresh.observe(k * 100, k * 100 - 5)
            stale.observe(k * 100, k * 100 - 80)
        assert stale.average_ns > fresh.average_ns


class TestFairness:
    def test_equal_rates_perfect(self):
        assert jains_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_starved_flow_unfair(self):
        assert jains_fairness([10.0, 0.0]) == pytest.approx(0.5)

    def test_all_zero(self):
        assert jains_fairness([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jains_fairness([])


def test_completion_fraction():
    assert completion_fraction(5, 10) == 0.5
    assert completion_fraction(0, 0) == 1.0
