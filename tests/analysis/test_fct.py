"""Flow-completion-time extraction: percentiles, records, stragglers."""

import pytest

from repro.analysis.fct import (
    FctCollector,
    FctError,
    FlowRecord,
    interpolated_percentile,
)


class TestInterpolatedPercentile:
    def test_hand_computed_trace(self):
        # 10 samples, ranks 0..9: p50 -> rank 4.5 -> (50+60)/2,
        # p95 -> rank 8.55 -> 90 + 0.55*(100-90), p99 -> rank 8.91.
        samples = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        assert interpolated_percentile(samples, 0.50) == pytest.approx(55.0)
        assert interpolated_percentile(samples, 0.95) == pytest.approx(95.5)
        assert interpolated_percentile(samples, 0.99) == pytest.approx(99.1)

    def test_unsorted_input_is_sorted_first(self):
        assert interpolated_percentile([30, 10, 20], 0.5) == pytest.approx(20.0)

    def test_endpoints_are_min_and_max(self):
        samples = [7, 3, 11, 5]
        assert interpolated_percentile(samples, 0.0) == 3.0
        assert interpolated_percentile(samples, 1.0) == 11.0

    def test_single_sample_every_fraction(self):
        for fraction in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert interpolated_percentile([42], fraction) == 42.0

    def test_two_samples_interpolate_linearly(self):
        assert interpolated_percentile([0, 100], 0.25) == pytest.approx(25.0)
        assert interpolated_percentile([0, 100], 0.99) == pytest.approx(99.0)

    def test_exact_rank_needs_no_interpolation(self):
        # 5 samples: p50 lands exactly on rank 2.
        assert interpolated_percentile([1, 2, 3, 4, 5], 0.5) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(FctError):
            interpolated_percentile([], 0.5)

    def test_fraction_out_of_range_rejected(self):
        for fraction in (-0.01, 1.01, 50.0):
            with pytest.raises(FctError):
                interpolated_percentile([1, 2], fraction)


class TestFlowRecord:
    def test_fct_is_finish_minus_start(self):
        record = FlowRecord(flow="f", started_ns=100, finished_ns=350)
        assert record.completed
        assert record.fct_ns == 250

    def test_unfinished_fct_raises(self):
        record = FlowRecord(flow="f", started_ns=100)
        assert not record.completed
        with pytest.raises(FctError):
            _ = record.fct_ns


class TestFctCollector:
    def test_summary_over_hand_computed_flows(self):
        collector = FctCollector()
        for index, (start, end) in enumerate(
            [(0, 100), (10, 210), (20, 320), (30, 430)]
        ):
            collector.start(f"f{index}", start)
            collector.finish(f"f{index}", end)
        summary = collector.summarize()
        assert summary.flows == 4
        assert summary.completed == 4
        assert summary.unfinished == 0
        # FCTs are 100/200/300/400: p50 -> rank 1.5 -> 250.
        assert summary.p50_ns == pytest.approx(250.0)
        assert summary.p95_ns == pytest.approx(385.0)
        assert summary.p99_ns == pytest.approx(397.0)
        assert summary.mean_ns == pytest.approx(250.0)
        assert summary.max_ns == 400

    def test_single_flow_grid(self):
        collector = FctCollector()
        collector.start("only", 5)
        collector.finish("only", 905)
        summary = collector.summarize()
        assert summary.p50_ns == summary.p95_ns == summary.p99_ns == 900.0
        assert summary.max_ns == 900

    def test_never_completing_flows_reported_not_dropped(self):
        collector = FctCollector()
        collector.start("done", 0)
        collector.finish("done", 50)
        collector.start("stuck-b", 0)
        collector.start("stuck-a", 10)
        summary = collector.summarize()
        assert summary.flows == 3
        assert summary.completed == 1
        assert summary.unfinished == 2
        assert summary.unfinished_flows == ("stuck-a", "stuck-b")
        # Percentiles describe the completed set only.
        assert summary.p99_ns == 50.0

    def test_nothing_completed_yields_none_not_zero(self):
        collector = FctCollector()
        collector.start("stuck", 0)
        summary = collector.summarize()
        assert summary.completed == 0
        assert summary.p50_ns is None
        assert summary.p95_ns is None
        assert summary.p99_ns is None
        assert summary.mean_ns is None
        assert summary.max_ns is None
        metrics = summary.as_metrics()
        assert metrics["fct_p99_ns"] is None
        assert metrics["unfinished"] == 1

    def test_as_metrics_prefix(self):
        collector = FctCollector()
        collector.start("f", 0)
        collector.finish("f", 10)
        metrics = collector.summarize().as_metrics(prefix="tcp_")
        assert metrics["tcp_flows"] == 1
        assert metrics["tcp_fct_p50_ns"] == 10.0

    def test_double_start_rejected(self):
        collector = FctCollector()
        collector.start("f", 0)
        with pytest.raises(FctError):
            collector.start("f", 1)

    def test_finish_without_start_rejected(self):
        collector = FctCollector()
        with pytest.raises(FctError):
            collector.finish("ghost", 10)

    def test_finish_before_start_rejected(self):
        collector = FctCollector()
        collector.start("f", 100)
        with pytest.raises(FctError):
            collector.finish("f", 99)

    def test_duplicate_finish_is_idempotent(self):
        collector = FctCollector()
        collector.start("f", 0)
        collector.finish("f", 10)
        collector.finish("f", 99)  # late duplicate signal: ignored
        assert collector.completed_fcts_ns() == [10]
