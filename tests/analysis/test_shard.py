"""Campaign sharding: the jobs-invariance determinism contract.

The contract (:mod:`repro.analysis.shard`): the merged campaign
artifact — every metric, every trace digest, and the serialized bytes —
is identical for every ``--jobs N``. These tests exercise the helpers
in isolation, then run real campaigns (traced pilots, multi-flow,
chaos scenarios) sequentially and sharded and require equality.
"""

import pytest

from repro.analysis.shard import (
    ShardError,
    TracedPilotCase,
    available_cores,
    campaign_digest,
    heartbeat,
    merge_campaign,
    merge_counts,
    merge_series,
    multiflow_case_metrics,
    packet_path_shard,
    packet_train_shard,
    run_sharded,
    run_traced_pilot_case,
    sampled_pilot_series_shard,
    split_evenly,
)
from repro.faults.chaos import ChaosConfig, run_scenarios
from repro.integration.multiflow import MultiFlowConfig
from repro.netsim.units import MICROSECOND

JOBS = 4


def _square(n: int) -> int:
    return n * n


# -- helpers -------------------------------------------------------------------


class TestRunSharded:
    def test_inline_matches_pooled(self):
        tasks = list(range(12))
        assert run_sharded(_square, tasks, jobs=1) == run_sharded(
            _square, tasks, jobs=JOBS
        )

    def test_preserves_task_order(self):
        tasks = [9, 1, 7, 3]
        assert run_sharded(_square, tasks, jobs=2) == [81, 1, 49, 9]

    def test_single_task_runs_inline(self):
        assert run_sharded(_square, [5], jobs=8) == [25]

    def test_empty_tasks(self):
        assert run_sharded(_square, [], jobs=4) == []

    def test_negative_jobs_rejected(self):
        with pytest.raises(ShardError, match="jobs"):
            run_sharded(_square, [1], jobs=-1)


class TestSplitAndMerge:
    def test_split_evenly_remainder_goes_early(self):
        assert split_evenly(10, 4) == [3, 3, 2, 2]
        assert split_evenly(8, 4) == [2, 2, 2, 2]

    def test_split_evenly_drops_zero_chunks(self):
        assert split_evenly(2, 4) == [1, 1]
        assert split_evenly(0, 4) == []

    def test_split_evenly_conserves_total(self):
        for total in (0, 1, 7, 100, 12345):
            for shards in (1, 2, 3, 8):
                assert sum(split_evenly(total, shards)) == total

    def test_split_evenly_rejects_bad_shards(self):
        with pytest.raises(ShardError, match="shards"):
            split_evenly(10, 0)

    def test_merge_counts_sums_keywise(self):
        merged = merge_counts([{"a": 1, "b": 2}, {"a": 10, "c": 5}])
        assert merged == {"a": 11, "b": 2, "c": 5}

    def test_merge_campaign_sorts_by_label(self):
        bench = merge_campaign(
            "c", [("z_case", {"v": 1}), ("a_case", {"v": 2})], seed=3
        )
        assert list(bench.to_dict()["metrics"]) == ["a_case", "z_case"]
        assert bench.to_dict()["seed"] == 3

    def test_merge_campaign_rejects_duplicate_labels(self):
        with pytest.raises(ShardError, match="duplicate"):
            merge_campaign("c", [("x", {"v": 1}), ("x", {"v": 2})])

    def test_campaign_digest_is_order_insensitive_but_value_sensitive(self):
        a = {"metrics": {"x": {"v": 1}, "y": {"v": 2}}}
        b = {"metrics": {"y": {"v": 2}, "x": {"v": 1}}}  # same content
        c = {"metrics": {"x": {"v": 1}, "y": {"v": 3}}}
        assert campaign_digest(a) == campaign_digest(b)
        assert campaign_digest(a) != campaign_digest(c)

    def test_available_cores_positive(self):
        assert available_cores() >= 1


# -- perf-workload sharding ----------------------------------------------------


class TestPerfShards:
    def test_packet_path_counts_merge_invariantly(self):
        whole = packet_path_shard((600, 4, 7))
        chunks = split_evenly(600, JOBS)
        seeds = [7 + i for i in range(len(chunks))]
        sharded = merge_counts(
            run_sharded(
                packet_path_shard,
                [(chunk, 4, seed) for chunk, seed in zip(chunks, seeds)],
                jobs=1,
            )
        )
        # Counts are pure functions of (packets, hops) — the seed only
        # jitters field *values* — so the merged counts match the whole.
        assert sharded == whole

    def test_packet_train_counts_merge_invariantly(self):
        train = 8
        whole = packet_train_shard((64 * train, 4, train, 7))
        chunks = [n * train for n in split_evenly(64, JOBS)]
        sharded = merge_counts(
            run_sharded(
                packet_train_shard,
                [(chunk, 4, train, 7 + i) for i, chunk in enumerate(chunks)],
                jobs=1,
            )
        )
        assert sharded == whole
        assert sharded["trace_emits"] == 0


# -- real campaigns: sequential vs sharded -------------------------------------


PILOT_CASES = [TracedPilotCase(seed=seed, messages=40) for seed in range(41, 44)]
MULTIFLOW_CASES = [
    MultiFlowConfig(flows=2, seed=seed, duration_ns=200 * MICROSECOND)
    for seed in range(7, 10)
]


def _sweep_campaign(jobs: int) -> dict:
    traced = run_sharded(run_traced_pilot_case, PILOT_CASES, jobs=jobs)
    flows = run_sharded(multiflow_case_metrics, MULTIFLOW_CASES, jobs=jobs)
    merged = merge_campaign(
        "shard_test_campaign",
        list(traced) + list(flows),
        params={"jobs": jobs},
        seed=41,
    )
    artifact = merged.to_dict()
    # jobs is a *runner* parameter; mask it so artifacts are comparable.
    artifact["params"]["jobs"] = 0
    return artifact


class TestCampaignDeterminism:
    def test_sequential_and_sharded_campaigns_are_identical(self):
        sequential = _sweep_campaign(jobs=1)
        sharded = _sweep_campaign(jobs=JOBS)
        assert sharded == sequential
        assert campaign_digest(sharded) == campaign_digest(sequential)

    def test_trace_digests_survive_the_process_boundary(self):
        (label, metrics), = run_sharded(
            run_traced_pilot_case, [PILOT_CASES[0]], jobs=1
        )
        results = run_sharded(run_traced_pilot_case, PILOT_CASES[:2], jobs=2)
        assert results[0][0] == label
        assert results[0][1]["trace_digest"] == metrics["trace_digest"]
        assert len(metrics["trace_digest"]) == 64
        assert metrics["trace_events"] > 0


class TestChaosSharding:
    def test_chaos_scenarios_identical_across_jobs(self):
        cfg = ChaosConfig(messages=40, fleet_nodes=4, fleet_flows=4)
        sequential = run_scenarios(cfg, jobs=1)
        sharded = run_scenarios(cfg, jobs=JOBS)
        assert [run.scenario for run in sharded] == [
            run.scenario for run in sequential
        ]
        for seq_run, shard_run in zip(sequential, sharded):
            assert shard_run.report == seq_run.report
            assert shard_run.config == seq_run.config
        # Detached shards carry no live simulation state.
        assert all(run.pilot is None for run in sharded)
        assert all(run.injector is None for run in sharded)


class TestCampaignObservability:
    SAMPLED = [
        TracedPilotCase(seed=s, sample_every_ns=100_000) for s in (1, 2, 3, 4)
    ]

    def test_heartbeat_prints_per_shard_progress(self, capsys):
        results = run_sharded(
            _square, [2, 3], jobs=1, progress=heartbeat(prefix="demo")
        )
        assert results == [4, 9]
        err = capsys.readouterr().err
        assert "[demo 1/2]" in err
        assert "[demo 2/2]" in err

    def test_heartbeat_labels_tuple_results(self, capsys):
        run_sharded(
            lambda n: (f"case{n}", n), [7], jobs=1,
            progress=heartbeat(prefix="grid"),
        )
        assert "[grid 1/1] case7" in capsys.readouterr().err

    def test_merged_series_digest_is_jobs_invariant(self):
        from repro.obs import series_digest

        one = run_sharded(sampled_pilot_series_shard, self.SAMPLED, jobs=1)
        four = run_sharded(sampled_pilot_series_shard, self.SAMPLED, jobs=JOBS)
        merged_one = merge_series(one)
        merged_four = merge_series(four)
        assert merged_one == merged_four
        assert series_digest(merged_one) == series_digest(merged_four)
        # Every record carries its shard label for later slicing.
        assert all("shard" in record["labels"] for record in merged_one)

    def test_merge_series_rejects_duplicate_shards(self):
        records = [{"metric": "m", "labels": {}, "points": [[0, 1]]}]
        with pytest.raises(ShardError, match="duplicate"):
            merge_series([("a", records), ("a", records)])

    def test_sampled_shard_requires_sampling_period(self):
        with pytest.raises(ShardError, match="sample_every_ns"):
            sampled_pilot_series_shard(TracedPilotCase(seed=1))

    def test_traced_case_reports_series_digest(self):
        label, metrics = run_traced_pilot_case(self.SAMPLED[0])
        assert metrics["sample_emits"] > 0
        assert len(metrics["series_digest"]) == 64
        # The digest itself is jobs-stable: recompute in a pool.
        (pooled,) = run_sharded(
            run_traced_pilot_case, [self.SAMPLED[0]], jobs=1
        )
        assert pooled[1]["series_digest"] == metrics["series_digest"]
