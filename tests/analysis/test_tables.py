"""Result-table rendering and SI formatting."""

import pytest

from repro.analysis import ResultTable, format_duration, format_rate


class TestFormatRate:
    def test_si_bands(self):
        assert format_rate(63e12) == "63.0 Tbps"
        assert format_rate(400e9) == "400.0 Gbps"
        assert format_rate(5.4e9) == "5.4 Gbps"
        assert format_rate(160e6) == "160.0 Mbps"
        assert format_rate(3e3) == "3.0 Kbps"
        assert format_rate(12) == "12 bps"


class TestFormatDuration:
    def test_bands(self):
        assert format_duration(2.5e9) == "2.50 s"
        assert format_duration(25e6) == "25.00 ms"
        assert format_duration(50e3) == "50.00 us"
        assert format_duration(800) == "800 ns"


class TestResultTable:
    def test_render_aligns_columns(self):
        table = ResultTable("Table X — demo", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("a-much-longer-name", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Table X — demo"
        header_index = lines.index(next(l for l in lines if l.startswith("name")))
        assert "alpha" in text and "22" in text
        # all data lines equal width or less than rule
        rule = lines[1]
        assert all(len(l) <= len(rule) for l in lines[2:])

    def test_row_arity_checked(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_show_prints(self, capsys):
        table = ResultTable("caption", ["col"])
        table.add_row("x")
        table.show()
        out = capsys.readouterr().out
        assert "caption" in out
        assert "x" in out
