"""Endurance soak harness: CI-scale run, budgets, replay determinism.

The full one-hour soak lives in ``benchmarks/bench_soak.py``; here the
~60 s CI preset proves the harness end to end — traffic mix, churn
script, bounded-memory sampling, fleet segment — and the replay
contract: identical seeds produce identical reports and byte-identical
``BENCH_soak.json`` files.
"""

from __future__ import annotations

import pytest

from repro.netsim.units import SECOND
from repro.soak import SoakBudgetError, SoakConfig, SoakReport, run_soak, write_bench


@pytest.fixture(scope="module")
def ci_report() -> SoakReport:
    return run_soak(SoakConfig.ci(), strict=True)


class TestCiSoak:
    def test_complete_and_nothing_unrecovered(self, ci_report):
        assert ci_report.complete
        assert ci_report.unrecovered == 0
        assert ci_report.fleet_unrecovered == 0
        assert ci_report.budget_violations == 0
        assert ci_report.delivered == ci_report.messages_sent

    def test_churn_actually_churned(self, ci_report):
        assert ci_report.faults_fired == ci_report.faults_injected > 0
        assert ci_report.lost_down + ci_report.lost_model > 0
        assert ci_report.mode_degradations > 0
        assert ci_report.mode_upgrades == ci_report.mode_degradations
        assert ci_report.degraded_final == 0
        assert ci_report.mode_rewrites == 8
        assert ci_report.link_rate_changes > 0
        assert ci_report.ge_drifts == 2
        assert ci_report.fleet_flaps == 3

    def test_memory_budgets_held(self, ci_report):
        cfg = SoakConfig.ci()
        assert ci_report.peak_retx_occupancy_pct <= cfg.budget_retx_occupancy_pct
        assert ci_report.peak_guard_entries <= cfg.budget_guard_entries
        assert ci_report.peak_trace_events <= cfg.budget_trace_events
        assert ci_report.peak_registry_series <= cfg.budget_registry_series
        assert ci_report.growth_retx_bytes <= cfg.budget_growth_retx_bytes
        assert ci_report.growth_guard_entries <= cfg.budget_growth
        assert ci_report.growth_trace_events <= cfg.budget_growth_trace_events
        assert ci_report.growth_registry_series <= cfg.budget_growth

    def test_replay_is_byte_identical(self, ci_report):
        assert run_soak(SoakConfig.ci(), strict=True) == ci_report

    def test_bench_file_deterministic(self, ci_report, tmp_path):
        cfg = SoakConfig.ci()
        first = write_bench(ci_report, cfg, tmp_path / "a")
        second = write_bench(ci_report, cfg, tmp_path / "b")
        assert first.read_bytes() == second.read_bytes()
        assert first.name == "BENCH_soak.json"


class TestBudgetEnforcement:
    def test_strict_raises_on_violated_budget(self):
        cfg = SoakConfig(
            duration_ns=5 * SECOND,
            epochs=10,
            fleet_nodes=0,
            budget_registry_series=1,  # impossible: topology alone exceeds it
        )
        with pytest.raises(SoakBudgetError, match="series"):
            run_soak(cfg, strict=True)

    def test_lenient_records_instead(self):
        cfg = SoakConfig(
            duration_ns=5 * SECOND,
            epochs=10,
            fleet_nodes=0,
            budget_registry_series=1,
        )
        report = run_soak(cfg, strict=False)
        assert report.budget_violations >= 1
        assert not report.complete


class TestWatchdogHealth:
    """PR 10: budgets are SLO rules; reports carry a HealthReport."""

    def test_clean_run_attaches_healthy_report(self, ci_report):
        health = ci_report.health
        assert health.ok
        assert health.violations == 0
        assert health.rules == 9  # one per budget check
        assert health.evaluations > 0

    def test_strict_error_carries_structured_health(self):
        cfg = SoakConfig(
            duration_ns=5 * SECOND,
            epochs=10,
            fleet_nodes=0,
            budget_registry_series=1,
        )
        with pytest.raises(SoakBudgetError) as excinfo:
            run_soak(cfg, strict=True)
        health = excinfo.value.health
        assert not health.ok
        event = next(
            e for e in health.events if e.metric == "soak_registry_series"
        )
        assert event.observed > 1
        assert event.threshold == 1
        # The legacy violation strings survive, one per health event.
        assert str(excinfo.value).count(";") == health.violations - 1

    def test_lenient_health_matches_violation_count(self):
        cfg = SoakConfig(
            duration_ns=5 * SECOND,
            epochs=10,
            fleet_nodes=0,
            budget_registry_series=1,
        )
        report = run_soak(cfg, strict=False)
        assert report.health.violations == report.budget_violations
