"""Registry semantics: counters, gauges, histograms, disabled mode."""

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS_NS,
    MetricsRegistry,
    NULL_REGISTRY,
    TelemetryError,
    quantile_from_buckets,
)


# -- counters ----------------------------------------------------------------


def test_counter_monotonicity():
    reg = MetricsRegistry()
    c = reg.counter("events_total")
    c.inc()
    c.inc(5)
    assert c.value == 6
    with pytest.raises(TelemetryError, match="cannot decrease"):
        c.inc(-1)
    assert c.value == 6  # the failed inc must not corrupt the count


def test_counter_set_total_is_idempotent_but_monotonic():
    reg = MetricsRegistry()
    c = reg.counter("scraped_total")
    c.set_total(10)
    c.set_total(10)  # idempotent re-scrape
    c.set_total(12)
    assert c.value == 12
    with pytest.raises(TelemetryError, match="cannot decrease"):
        c.set_total(9)


def test_same_identity_returns_same_instrument():
    reg = MetricsRegistry()
    a = reg.counter("rx_total", host="dtn1")
    b = reg.counter("rx_total", host="dtn1")
    c = reg.counter("rx_total", host="dtn2")
    assert a is b
    assert a is not c
    assert len(reg) == 2


def test_kind_collision_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    reg.gauge("x")  # different kind => different identity, allowed
    assert len(reg) == 2


# -- gauges ------------------------------------------------------------------


def test_gauge_tracks_peak():
    reg = MetricsRegistry()
    g = reg.gauge("queue_bytes")
    g.set(10)
    g.inc(5)
    g.dec(12)
    assert g.value == 3
    assert g.peak == 15
    g.set_max(4)  # larger than current value: takes effect
    assert g.value == 4
    g.set_max(2)  # smaller: ignored
    assert g.value == 4
    assert g.peak == 15


# -- histograms --------------------------------------------------------------


def test_histogram_bucket_boundaries_inclusive():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(10, 20, 50))
    h.observe_many([10, 11, 20, 21, 50])
    # Upper bounds are inclusive: 10 -> first bucket, 11 -> second, ...
    assert h.counts == [1, 2, 2]
    assert h.overflow == 0
    h.observe(51)
    assert h.overflow == 1
    assert (h.count, h.sum, h.min, h.max) == (6, 163, 10, 51)


def test_histogram_rejects_bad_buckets():
    reg = MetricsRegistry()
    with pytest.raises(TelemetryError, match="at least one bucket"):
        reg.histogram("empty", buckets=())
    with pytest.raises(TelemetryError, match="ascending"):
        reg.histogram("unsorted", buckets=(5, 2))
    with pytest.raises(TelemetryError, match="ascending"):
        reg.histogram("dupes", buckets=(5, 5))
    with pytest.raises(TelemetryError, match="float"):
        reg.histogram("floaty", buckets=(1, 2.5))


def test_histogram_quantiles_report_bucket_upper_bounds():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(10, 20, 50))
    assert h.quantile(0.5) is None  # empty
    h.observe_many([1, 1, 1, 15, 45])
    assert h.quantile(0.0) == 10
    assert h.quantile(0.5) == 10
    assert h.quantile(0.8) == 20
    assert h.quantile(1.0) == 50
    with pytest.raises(TelemetryError):
        h.quantile(1.5)


def test_quantile_overflow_uses_observed_max():
    buckets = [(10, 0), (20, 1)]
    assert quantile_from_buckets(buckets, overflow=9, count=10, q=0.99,
                                 observed_max=777) == 777
    assert quantile_from_buckets(buckets, overflow=9, count=10, q=0.99) == 20


def test_default_latency_buckets_are_ints():
    assert all(isinstance(b, int) for b in DEFAULT_LATENCY_BUCKETS_NS)
    assert list(DEFAULT_LATENCY_BUCKETS_NS) == sorted(set(DEFAULT_LATENCY_BUCKETS_NS))


# -- disabled mode -----------------------------------------------------------


def test_disabled_registry_hands_out_shared_noops():
    reg = MetricsRegistry(enabled=False)
    c1 = reg.counter("a")
    c2 = reg.counter("b", host="x")
    assert c1 is c2  # one shared null object, no allocation per call
    c1.inc(1000)
    c1.set_total(5)
    assert c1.value == 0

    g = reg.gauge("g")
    g.set(9)
    g.inc()
    g.set_max(99)
    assert g.value == 0 and g.peak == 0

    h = reg.histogram("h")
    h.observe(123)
    h.observe_many([1, 2, 3])
    assert h.count == 0

    assert len(reg) == 0
    assert reg.snapshot() == []


def test_null_registry_is_disabled():
    assert not NULL_REGISTRY.enabled
    NULL_REGISTRY.counter("anything").inc()
    assert len(NULL_REGISTRY) == 0


# -- snapshot ----------------------------------------------------------------


def test_snapshot_is_sorted_and_json_able():
    import json

    reg = MetricsRegistry()
    reg.counter("z_total").inc(3)
    reg.counter("a_total", host="b").inc(1)
    reg.counter("a_total", host="a").inc(2)
    reg.gauge("depth").set(7)
    reg.histogram("lat", buckets=(10,)).observe(4)
    snap = reg.snapshot()
    names = [(m["name"], m["labels"]) for m in snap]
    assert names == sorted(names, key=lambda t: (t[0], sorted(t[1].items())))
    parsed = json.loads(json.dumps(snap))
    assert parsed == snap


def test_registry_get_looks_up_without_creating():
    reg = MetricsRegistry()
    assert reg.get("counter", "missing") is None
    assert len(reg) == 0
    c = reg.counter("present", host="h")
    assert reg.get("counter", "present", host="h") is c
