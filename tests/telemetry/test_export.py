"""Snapshot export/import and the shared benchmark-result schema."""

import json

import pytest

from repro.telemetry import (
    BenchResult,
    MetricsRegistry,
    SnapshotWriter,
    TelemetryError,
    load_bench_result,
    read_snapshot,
    read_snapshots,
    write_snapshot,
)


def populated_registry():
    reg = MetricsRegistry()
    reg.counter("rx_total", host="dtn2").inc(42)
    reg.gauge("queue_bytes", node="t2").set(1500)
    reg.histogram("lat_ns", buckets=(10, 100, 1000), host="dtn2").observe_many(
        [5, 50, 500, 5000]
    )
    return reg


def test_snapshot_round_trip(tmp_path):
    path = str(tmp_path / "snap.jsonl")
    written = write_snapshot(populated_registry(), path, meta={"seed": 7})
    assert written == 4  # 1 meta + 3 metrics

    snap = read_snapshot(path)
    assert snap.meta["seed"] == 7
    assert snap.meta["schema_version"] == 1
    assert snap.value("rx_total", host="dtn2") == 42
    assert snap.value("queue_bytes", node="t2") == 1500
    assert snap.value("missing") is None

    hist = snap.get("lat_ns", host="dtn2")
    assert hist["count"] == 4
    assert hist["overflow"] == 1
    assert snap.quantile("lat_ns", 0.5, host="dtn2") == 100
    assert snap.quantile("lat_ns", 1.0, host="dtn2") == 5000  # observed max
    assert snap.quantile("rx_total", 0.5, host="dtn2") is None  # not a histogram


def test_snapshot_writer_appends_multiple_snapshots(tmp_path):
    path = str(tmp_path / "series.jsonl")
    reg = MetricsRegistry()
    counter = reg.counter("events")
    writer = SnapshotWriter(path, reg)
    counter.inc(1)
    writer.write(meta={"t": 1})
    counter.inc(1)
    writer.write(meta={"t": 2})
    assert writer.snapshots_written == 2

    snaps = read_snapshots(path)
    assert [s.meta["t"] for s in snaps] == [1, 2]
    assert [s.value("events") for s in snaps] == [1, 2]
    with pytest.raises(TelemetryError, match="2 snapshots"):
        read_snapshot(path)


def test_snapshot_writer_truncates_prior_runs(tmp_path):
    path = tmp_path / "snap.jsonl"
    path.write_text("stale garbage\n")
    SnapshotWriter(str(path), MetricsRegistry())
    assert path.read_text() == ""


def test_read_rejects_bad_lines(tmp_path):
    bad_json = tmp_path / "bad.jsonl"
    bad_json.write_text('{"kind": "meta"}\n{not json\n')
    with pytest.raises(TelemetryError, match="bad\\.jsonl:2: bad JSON"):
        read_snapshots(str(bad_json))

    bad_kind = tmp_path / "kind.jsonl"
    bad_kind.write_text('{"kind": "summary"}\n')
    with pytest.raises(TelemetryError, match="unknown kind 'summary'"):
        read_snapshots(str(bad_kind))

    empty = tmp_path / "empty.jsonl"
    empty.write_text("\n")
    with pytest.raises(TelemetryError, match="no snapshot"):
        read_snapshot(str(empty))


# -- benchmark-result schema -------------------------------------------------


def test_bench_result_round_trip(tmp_path):
    result = BenchResult(name="fig4_pilot", seed=31)
    result.params = {"messages": 800}
    result.record("clean", delivered=800, p99_latency_ns=71_479)
    result.record("clean", naks=0)  # merges into the same case
    result.add_wall_time("test_run", 1.25)

    path = result.write(tmp_path)
    assert path.name == "BENCH_fig4_pilot.json"
    data = json.loads(path.read_text())
    assert data["schema_version"] == 1
    assert data["metrics"]["clean"] == {
        "delivered": 800, "p99_latency_ns": 71_479, "naks": 0,
    }
    assert data["metrics"]["test_run"]["wall_time_s"] == 1.25
    assert data["wall_time_s"] == 1.25

    loaded = load_bench_result(path)
    assert loaded == result
