"""INT: postcard/header codecs, domain enrollment, sink accounting."""

import pytest

from repro.netsim.packet import Packet
from repro.telemetry import (
    INT_BASE_BYTES,
    IntDomain,
    IntHeader,
    IntPostcard,
    IntSink,
    MetricsRegistry,
    POSTCARD_BYTES,
    TelemetryError,
)


# -- codecs ------------------------------------------------------------------


def test_postcard_codec_round_trip():
    postcard = IntPostcard(
        hop_id=7, timestamp_ns=123_456_789_012, queue_depth_pct=42,
        config_id=3, seq=99, flow_id=0x0102,
    )
    wire = postcard.encode()
    assert len(wire) == POSTCARD_BYTES
    assert IntPostcard.decode(wire) == postcard


def test_postcard_timestamp_wraps_at_48_bits():
    postcard = IntPostcard(hop_id=1, timestamp_ns=(1 << 60) + 5)
    decoded = IntPostcard.decode(postcard.encode())
    assert decoded.timestamp_ns == ((1 << 60) + 5) & ((1 << 48) - 1)


def test_postcard_decode_rejects_wrong_length():
    with pytest.raises(TelemetryError, match="16 bytes"):
        IntPostcard.decode(b"\x00" * 15)


def test_header_codec_round_trip():
    header = IntHeader(max_hops=4)
    assert header.push(IntPostcard(hop_id=1, timestamp_ns=100))
    assert header.push(IntPostcard(hop_id=2, timestamp_ns=250, queue_depth_pct=9))
    wire = header.encode()
    assert len(wire) == INT_BASE_BYTES + 2 * POSTCARD_BYTES
    decoded = IntHeader.decode(wire)
    assert decoded == header
    assert decoded.size_bytes == header.size_bytes


def test_header_decode_rejects_truncation():
    header = IntHeader()
    header.push(IntPostcard(hop_id=1, timestamp_ns=1))
    wire = header.encode()
    with pytest.raises(TelemetryError, match="truncated"):
        IntHeader.decode(wire[:2])
    with pytest.raises(TelemetryError, match="declares 1 hops"):
        IntHeader.decode(wire[:-1])


def test_header_push_respects_max_hops():
    header = IntHeader(max_hops=2)
    assert header.push(IntPostcard(hop_id=1, timestamp_ns=1))
    assert header.push(IntPostcard(hop_id=2, timestamp_ns=2))
    assert not header.push(IntPostcard(hop_id=3, timestamp_ns=3))
    assert [p.hop_id for p in header.hops] == [1, 2]


def test_header_copy_is_deep():
    header = IntHeader(max_hops=4)
    header.push(IntPostcard(hop_id=1, timestamp_ns=1))
    clone = header.copy()
    clone.push(IntPostcard(hop_id=2, timestamp_ns=2))
    clone.hops[0].queue_depth_pct = 77
    assert len(header.hops) == 1
    assert header.hops[0].queue_depth_pct == 0


def test_header_bytes_count_toward_packet_size():
    header = IntHeader()
    header.push(IntPostcard(hop_id=1, timestamp_ns=1))
    bare = Packet(headers=[], payload_size=100)
    marked = Packet(headers=[header], payload_size=100)
    assert marked.size_bytes - bare.size_bytes == INT_BASE_BYTES + POSTCARD_BYTES


# -- domain ------------------------------------------------------------------


class FakeElement:
    def __init__(self, name):
        self.name = name
        self.int_hop_id = None
        self.int_source = False
        self.int_sample_every = 1
        self.int_max_hops = 8


def test_domain_enrolls_elements_with_stable_ids():
    domain = IntDomain(max_hops=5)
    a, b = FakeElement("a"), FakeElement("b")
    id_a = domain.enroll(a, source=True, sample_every=4)
    id_b = domain.enroll(b)
    assert (id_a, id_b) == (1, 2)
    assert a.int_source and not b.int_source
    assert a.int_sample_every == 4
    assert a.int_max_hops == b.int_max_hops == 5
    assert domain.hop_names == {1: "a", 2: "b"}
    with pytest.raises(TelemetryError, match="already enrolled"):
        domain.enroll(a)
    with pytest.raises(TelemetryError, match="sample_every"):
        domain.enroll(FakeElement("c"), sample_every=0)


# -- sink --------------------------------------------------------------------


def make_marked_packet(timestamps, queue_pcts=None):
    header = IntHeader()
    for i, ts in enumerate(timestamps):
        header.push(IntPostcard(
            hop_id=i + 1, timestamp_ns=ts,
            queue_depth_pct=(queue_pcts or [0] * len(timestamps))[i],
        ))
    return Packet(headers=[header], payload_size=64), header


def test_sink_strips_and_accounts_three_hops():
    reg = MetricsRegistry()
    sink = IntSink(reg, hop_names={1: "src", 2: "mid", 3: "dst"})
    packet, header = make_marked_packet([100, 350, 900], queue_pcts=[5, 60, 0])
    returned = sink.absorb(packet)
    assert returned is header
    assert packet.find(IntHeader) is None  # the stack left the packet

    assert reg.get("counter", "int_packets_stripped").value == 1
    assert reg.get("counter", "int_postcards_total").value == 3
    for hop in ("src", "mid", "dst"):
        assert reg.get("counter", "int_hop_postcards_total", hop=hop).value == 1
    seg1 = reg.get("histogram", "int_segment_latency_ns", segment="src->mid")
    seg2 = reg.get("histogram", "int_segment_latency_ns", segment="mid->dst")
    assert (seg1.sum, seg2.sum) == (250, 550)
    path = reg.get("histogram", "int_path_latency_ns")
    assert (path.count, path.sum) == (1, 800)
    queue_mid = reg.get("histogram", "int_queue_depth_pct", hop="mid")
    assert queue_mid.max == 60


def test_sink_ignores_unmarked_packets():
    reg = MetricsRegistry()
    sink = IntSink(reg)
    assert sink.absorb(Packet(headers=[], payload_size=10)) is None
    assert reg.get("counter", "int_packets_stripped").value == 0


def test_sink_uses_clock_for_path_latency_when_given():
    reg = MetricsRegistry()
    sink = IntSink(reg, now=lambda: 5_000)
    packet, _ = make_marked_packet([1_000, 2_000])
    sink.absorb(packet)
    path = reg.get("histogram", "int_path_latency_ns")
    assert path.sum == 4_000  # sink clock minus first hop, not last hop


def test_sink_unknown_hop_gets_fallback_name():
    reg = MetricsRegistry()
    sink = IntSink(reg, hop_names={})
    packet, _ = make_marked_packet([10])
    sink.absorb(packet)
    assert reg.get("counter", "int_hop_postcards_total", hop="hop1").value == 1


def test_sink_with_disabled_registry_still_strips():
    reg = MetricsRegistry(enabled=False)
    sink = IntSink(reg)
    packet, _ = make_marked_packet([10, 20])
    assert sink.absorb(packet) is not None
    assert packet.find(IntHeader) is None
    assert len(reg) == 0
