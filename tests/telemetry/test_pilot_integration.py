"""End-to-end: the Fig. 4 pilot with telemetry on, snapshot to render.

The acceptance path of the subsystem — INT postcards ride the pilot's
three programmable hops (Alveo U280 → Tofino2 → Alveo U55C), the sink
at DTN 2 strips them, the end-of-run scrape pulls every component's
counters, and the JSONL snapshot answers the operator questions the
issue lists: per-segment latency, queue high-water marks, and mode-1
recovery counts.
"""

import pytest

from repro.dataplane import PilotConfig, PilotTestbed
from repro.netsim import Simulator
from repro.netsim.units import MILLISECOND
from repro.telemetry import IntHeader, read_snapshot, write_snapshot

HOPS = ("alveo-u280", "tofino2", "alveo-u55c")
SEGMENTS = ("alveo-u280->tofino2", "tofino2->alveo-u55c")


@pytest.fixture(scope="module")
def lossy_run():
    """One lossy pilot run with telemetry, shared by the assertions."""
    config = PilotConfig(
        wan_delay_ns=10 * MILLISECOND, wan_loss_rate=0.01, telemetry=True
    )
    pilot = PilotTestbed(sim=Simulator(seed=42), config=config)
    pilot.send_stream(300, payload_size=8000, interval_ns=2_000)
    report = pilot.run()
    registry = pilot.collect_telemetry()
    return pilot, report, registry


def test_every_hop_postcards_every_marked_packet(lossy_run):
    pilot, report, registry = lossy_run
    assert report.complete
    # The source (U280) marks every relayed data message. Buffer-served
    # retransmissions are rebuilt without a stack (a stale one would
    # report the original traversal), so they arrive unmarked — INT
    # coverage is the original transmissions.
    marked = pilot.u280.stats.int_packets_marked
    assert marked == report.dtn1_relayed
    stripped = registry.get("counter", "int_packets_stripped").value
    assert report.delivered - report.retransmissions <= stripped <= marked
    # Each surviving marked packet crossed all three hops exactly once.
    for hop in HOPS:
        count = registry.get("counter", "int_hop_postcards_total", hop=hop).value
        assert count == stripped, f"{hop} postcards missing"
    assert registry.get("counter", "int_postcards_total").value == 3 * stripped
    assert pilot.u280.stats.int_stack_full == 0


def test_segment_latency_histograms_reflect_the_topology(lossy_run):
    _pilot, report, registry = lossy_run
    stripped = registry.get("counter", "int_packets_stripped").value
    for segment in SEGMENTS:
        hist = registry.get("histogram", "int_segment_latency_ns", segment=segment)
        assert hist is not None and hist.count == stripped
    # The WAN segment (10 ms propagation) dominates the intra-site one.
    lan = registry.get("histogram", "int_segment_latency_ns", segment=SEGMENTS[0])
    wan = registry.get("histogram", "int_segment_latency_ns", segment=SEGMENTS[1])
    assert wan.min > 10 * MILLISECOND > lan.max


def test_mode1_recovery_counts_surface_in_telemetry(lossy_run):
    _pilot, report, registry = lossy_run
    assert report.retransmissions > 0  # 1% WAN loss must trigger recovery
    assert registry.get(
        "counter", "mmt_rx_retransmissions_received", host="dtn2"
    ).value == report.retransmissions
    assert registry.get(
        "counter", "mmt_rx_naks_sent", host="dtn2"
    ).value == report.naks_sent
    assert registry.get(
        "counter", "element_naks_served", element="alveo-u280"
    ).value == report.naks_served


def test_queue_high_water_marks_recorded(lossy_run):
    pilot, _report, registry = lossy_run
    peaks = [
        metric for metric in registry.collect()
        if metric.name == "queue_peak_bytes"
    ]
    assert peaks and any(gauge.peak > 0 for gauge in peaks)
    # The gauge agrees with the queue it scraped.
    port = pilot.u280.ports["to_tofino2"]
    gauge = registry.get(
        "gauge", "queue_peak_bytes", node="alveo-u280", port="to_tofino2"
    )
    assert gauge.peak == port.queue.peak_bytes > 0


def test_snapshot_round_trip_answers_operator_queries(lossy_run, tmp_path):
    _pilot, report, registry = lossy_run
    path = str(tmp_path / "pilot.jsonl")
    write_snapshot(registry, path, meta={"seed": 42, "scenario": "pilot"})
    snap = read_snapshot(path)
    assert snap.meta["scenario"] == "pilot"
    assert snap.value("mmt_rx_retransmissions_received", host="dtn2") == \
        report.retransmissions
    for segment in SEGMENTS:
        assert snap.quantile("int_segment_latency_ns", 0.99, segment=segment)
    assert snap.get("queue_peak_bytes", node="alveo-u280", port="to_tofino2")


def test_telemetry_disabled_leaves_no_trace():
    config = PilotConfig(wan_delay_ns=1 * MILLISECOND)
    pilot = PilotTestbed(sim=Simulator(seed=42), config=config)
    pilot.send_stream(50, payload_size=2000, interval_ns=2_000)
    report = pilot.run()
    assert report.complete
    assert pilot.metrics is None
    with pytest.raises(RuntimeError, match="telemetry disabled"):
        pilot.collect_telemetry()
    # No element marks packets, so nothing on the wire grew.
    assert pilot.u280.stats.int_packets_marked == 0
    assert pilot.dtn2_stack.int_sink is None


def test_sampling_marks_a_subset():
    config = PilotConfig(
        wan_delay_ns=1 * MILLISECOND, telemetry=True, int_sample_every=4
    )
    pilot = PilotTestbed(sim=Simulator(seed=42), config=config)
    pilot.send_stream(100, payload_size=2000, interval_ns=2_000)
    report = pilot.run()
    assert report.complete
    marked = pilot.u280.stats.int_packets_marked
    assert marked == 100 // 4
    registry = pilot.collect_telemetry()
    assert registry.get("counter", "int_packets_stripped").value == marked


def test_delivered_payloads_carry_no_int_header():
    """The sink strips the stack before the application sees the packet."""
    seen = []
    config = PilotConfig(wan_delay_ns=1 * MILLISECOND, telemetry=True)
    pilot = PilotTestbed(sim=Simulator(seed=42), config=config)
    original = pilot._deliver_at_dtn2

    def spy(packet, header):
        seen.append(packet.find(IntHeader))
        original(packet, header)

    pilot.dtn2_receiver.on_message = spy
    pilot.send_stream(20, payload_size=2000, interval_ns=2_000)
    pilot.run()
    assert seen and all(header is None for header in seen)
