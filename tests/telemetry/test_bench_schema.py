"""Schema checks for every committed ``BENCH_*.json`` artifact.

The bench files are version-controlled data; a row that loses its seed
(or a file that drifts off the shared schema) silently breaks the
reproducibility story these artifacts exist to tell. Null seeds are
rejected outright — a bench result that cannot say what seed produced
it cannot be reproduced or compared.
"""

import json
from pathlib import Path

import pytest

from repro.telemetry.benchfmt import SCHEMA_VERSION

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_FILES = sorted(REPO_ROOT.glob("BENCH_*.json"))


def load(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def test_bench_artifacts_are_committed():
    names = {path.name for path in BENCH_FILES}
    assert "BENCH_fct_grid.json" in names  # this PR's artifact
    assert len(names) >= 8


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_shared_schema(path):
    data = load(path)
    assert data["schema_version"] == SCHEMA_VERSION
    assert path.name == f"BENCH_{data['name']}.json"
    assert isinstance(data["params"], dict)
    assert isinstance(data["metrics"], dict) and data["metrics"]
    # No null seeds: every committed artifact names the seed (or seed
    # set, with a representative top-level value) that produced it.
    assert data["seed"] is not None
    assert isinstance(data["seed"], int)
    for case, row in data["metrics"].items():
        assert isinstance(case, str) and case
        assert isinstance(row, dict) and row


def test_fct_grid_rows_carry_seed_and_grid_coordinates():
    data = load(REPO_ROOT / "BENCH_fct_grid.json")
    assert sorted(data["params"]["seeds"]) == data["params"]["seeds"]
    assert data["seed"] == data["params"]["seeds"][0]
    for label, row in data["metrics"].items():
        # Per-row seed, pinned into the label too.
        assert row["seed"] is not None
        assert label.startswith(f"seed{row['seed']:06d}_")
        # Grid coordinates.
        assert row["transport"] in ("mmt", "tcp", "udp")
        assert row["senders"] >= 1
        assert row["load"] > 0
        assert 0 <= row["mark_threshold"] <= 1
        assert row["symmetric"] in (0, 1)
        # FCT percentiles: present for every row, numeric whenever any
        # flow completed, explicit null when none did.
        for key in ("fct_p50_ns", "fct_p95_ns", "fct_p99_ns"):
            assert key in row
            if row["completed"] > 0:
                assert isinstance(row[key], (int, float))
            else:
                assert row[key] is None
        assert row["completed"] + row["unfinished"] == row["flows"]


def test_fct_grid_covers_every_transport_at_every_depth():
    data = load(REPO_ROOT / "BENCH_fct_grid.json")
    combos = {
        (row["transport"], row["senders"]) for row in data["metrics"].values()
    }
    for transport in ("mmt", "tcp", "udp"):
        for senders in data["params"]["senders"]:
            assert (transport, senders) in combos


def test_every_committed_bench_diffs_cleanly_against_itself():
    """The ``repro report`` provenance gate accepts every committed
    artifact: non-null seed, self-consistent grid coordinates. A file
    this check rejects could never serve as a regression baseline."""
    from repro.obs import diff_bench_files

    for path in BENCH_FILES:
        diff = diff_bench_files(path, path)
        assert diff.ok, f"{path.name} vs itself: {diff.regressions}"
        assert all(row.status == "ok" for row in diff.rows)


def test_report_rejects_seedless_artifact(tmp_path):
    from repro.obs import ReportError, diff_bench_files

    data = load(BENCH_FILES[0])
    data["seed"] = None
    bad = tmp_path / BENCH_FILES[0].name
    bad.write_text(json.dumps(data), encoding="utf-8")
    with pytest.raises(ReportError, match="no seed"):
        diff_bench_files(bad, BENCH_FILES[0])


def test_report_rejects_moved_grid_coordinates(tmp_path):
    from repro.obs import ReportError, diff_bench_files

    grid = REPO_ROOT / "BENCH_fct_grid.json"
    data = load(grid)
    label, row = next(iter(data["metrics"].items()))
    row["senders"] = row["senders"] + 1
    moved = tmp_path / grid.name
    moved.write_text(json.dumps(data), encoding="utf-8")
    with pytest.raises(ReportError, match="grid coordinate"):
        diff_bench_files(moved, grid)
