"""Schema checks for every committed ``BENCH_*.json`` artifact.

The bench files are version-controlled data; a row that loses its seed
(or a file that drifts off the shared schema) silently breaks the
reproducibility story these artifacts exist to tell. Null seeds are
rejected outright — a bench result that cannot say what seed produced
it cannot be reproduced or compared.
"""

import json
from pathlib import Path

import pytest

from repro.telemetry.benchfmt import SCHEMA_VERSION

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_FILES = sorted(REPO_ROOT.glob("BENCH_*.json"))


def load(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def test_bench_artifacts_are_committed():
    names = {path.name for path in BENCH_FILES}
    assert "BENCH_fct_grid.json" in names  # this PR's artifact
    assert len(names) >= 8


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_shared_schema(path):
    data = load(path)
    assert data["schema_version"] == SCHEMA_VERSION
    assert path.name == f"BENCH_{data['name']}.json"
    assert isinstance(data["params"], dict)
    assert isinstance(data["metrics"], dict) and data["metrics"]
    # No null seeds: every committed artifact names the seed (or seed
    # set, with a representative top-level value) that produced it.
    assert data["seed"] is not None
    assert isinstance(data["seed"], int)
    for case, row in data["metrics"].items():
        assert isinstance(case, str) and case
        assert isinstance(row, dict) and row


def test_fct_grid_rows_carry_seed_and_grid_coordinates():
    data = load(REPO_ROOT / "BENCH_fct_grid.json")
    assert sorted(data["params"]["seeds"]) == data["params"]["seeds"]
    assert data["seed"] == data["params"]["seeds"][0]
    for label, row in data["metrics"].items():
        # Per-row seed, pinned into the label too.
        assert row["seed"] is not None
        assert label.startswith(f"seed{row['seed']:06d}_")
        # Grid coordinates.
        assert row["transport"] in ("mmt", "tcp", "udp")
        assert row["senders"] >= 1
        assert row["load"] > 0
        assert 0 <= row["mark_threshold"] <= 1
        assert row["symmetric"] in (0, 1)
        # FCT percentiles: present for every row, numeric whenever any
        # flow completed, explicit null when none did.
        for key in ("fct_p50_ns", "fct_p95_ns", "fct_p99_ns"):
            assert key in row
            if row["completed"] > 0:
                assert isinstance(row[key], (int, float))
            else:
                assert row[key] is None
        assert row["completed"] + row["unfinished"] == row["flows"]


def test_fct_grid_covers_every_transport_at_every_depth():
    data = load(REPO_ROOT / "BENCH_fct_grid.json")
    combos = {
        (row["transport"], row["senders"]) for row in data["metrics"].values()
    }
    for transport in ("mmt", "tcp", "udp"):
        for senders in data["params"]["senders"]:
            assert (transport, senders) in combos
