"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.netsim import Simulator, Topology, units


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


class TwoHostRig:
    """host_a --- router --- host_b with configurable middle link."""

    def __init__(
        self,
        sim: Simulator,
        rate_bps: int = units.gbps(10),
        middle_delay_ns: int = units.microseconds(100),
        loss_rate: float = 0.0,
        mtu_bytes: int = 9000,
    ) -> None:
        self.sim = sim
        self.topology = Topology(sim)
        self.a = self.topology.add_host("a", ip="10.0.1.2")
        self.b = self.topology.add_host("b", ip="10.0.2.2")
        self.router = self.topology.add_router("r")
        self.link_a = self.topology.connect(
            self.a, self.router, rate_bps, units.microseconds(5), mtu_bytes
        )
        self.link_b = self.topology.connect(
            self.router, self.b, rate_bps, middle_delay_ns, mtu_bytes, loss_rate=loss_rate
        )
        self.topology.install_routes()


@pytest.fixture
def rig(sim: Simulator) -> TwoHostRig:
    return TwoHostRig(sim)
