"""The Table 1 catalog and its workload factories."""

import random

import pytest

from repro.daq import by_name, catalog, CMS_L1, DUNE, ECCE, MU2E, VERA_RUBIN
from repro.netsim.units import MILLISECOND, SECOND, gbps, tbps


def test_catalog_matches_table1_rates():
    """The five rows of Table 1, exactly."""
    expected = {
        "CMS L1 Trigger": tbps(63),
        "DUNE": tbps(120),
        "ECCE detector": tbps(100),
        "Mu2e": gbps(160),
        "Vera Rubin": gbps(400),
    }
    entries = {spec.name: spec.daq_rate_bps for spec in catalog()}
    assert entries == expected


def test_catalog_order_matches_paper():
    assert [s.name for s in catalog()] == [
        "CMS L1 Trigger", "DUNE", "ECCE detector", "Mu2e", "Vera Rubin",
    ]


def test_by_name_case_insensitive():
    assert by_name("dune") is DUNE
    assert by_name("MU2E") is MU2E
    with pytest.raises(KeyError):
        by_name("LHCb")


def test_experiment_numbers_unique():
    numbers = [s.experiment_number for s in catalog()]
    assert len(numbers) == len(set(numbers))


@pytest.mark.parametrize("spec", catalog(), ids=lambda s: s.name)
def test_workload_offers_declared_rate_at_scale(spec):
    """Each generator's long-run offered load matches the Table 1 rate
    (scaled down so the check runs in milliseconds of virtual time)."""
    scale = 1e-4 if spec.daq_rate_bps > gbps(500) else 1e-2
    process = spec.workload(scale=scale)
    window = 4 * SECOND if spec.pattern in ("spill", "cadence") else 50 * MILLISECOND
    messages = list(process.generate(window, random.Random(3)))
    offered = sum(m.size_bytes for m in messages) * 8 * SECOND / window
    assert offered == pytest.approx(spec.daq_rate_bps * scale, rel=0.1)


def test_mu2e_is_spill_structured():
    process = MU2E.workload(scale=1e-2)
    messages = list(process.generate(3 * SECOND, random.Random(1)))
    kinds = {m.kind for m in messages}
    assert kinds == {"spill"}


def test_rubin_has_alert_component():
    process = VERA_RUBIN.workload(scale=1e-3)
    messages = list(process.generate(60 * SECOND, random.Random(1)))
    kinds = {m.kind for m in messages}
    assert "alert" in kinds
    assert "readout" in kinds


def test_scale_must_be_positive():
    with pytest.raises(ValueError):
        CMS_L1.workload(scale=0)
