"""Instrument readout specs and partitioning (Req 8)."""

import pytest

from repro.daq import (
    DetectorError,
    Instrument,
    ReadoutSpec,
    dune_far_detector_module,
    iceberg_prototype,
)


def test_raw_rate_from_electronics():
    spec = ReadoutSpec(channels=1000, sample_rate_hz=2_000_000, adc_bits=14, framing_overhead=0.0)
    assert spec.raw_rate_bps == 1000 * 2_000_000 * 14
    assert spec.wire_rate_bps == spec.raw_rate_bps


def test_framing_overhead_applied():
    spec = ReadoutSpec(channels=100, sample_rate_hz=1000, adc_bits=10, framing_overhead=0.10)
    assert spec.wire_rate_bps == round(spec.raw_rate_bps * 1.10)


def test_invalid_spec_rejected():
    with pytest.raises(DetectorError):
        ReadoutSpec(channels=0, sample_rate_hz=1, adc_bits=1)
    with pytest.raises(DetectorError):
        ReadoutSpec(channels=1, sample_rate_hz=1, adc_bits=1, framing_overhead=-0.1)


def test_dune_module_is_tbps_scale():
    module = dune_far_detector_module()
    assert 5e12 < module.wire_rate_bps < 20e12


def test_iceberg_is_gbps_scale():
    assert 1e10 < iceberg_prototype().wire_rate_bps < 1e11


class TestPartitioning:
    def make(self):
        return Instrument(
            name="X", detector_id=9,
            readout=ReadoutSpec(channels=1000, sample_rate_hz=100, adc_bits=8),
        )

    def test_even_partition(self):
        instrument = self.make()
        slices = instrument.partition(["run-a", "run-b", "run-c"])
        assert [s.channels for s in slices] == [333, 333, 334]
        assert slices[0].channel_lo == 0
        assert slices[-1].channel_hi == 1000
        assert [s.slice_id for s in slices] == [0, 1, 2]

    def test_slice_rate_proportional(self):
        instrument = self.make()
        instrument.partition(["a", "b"])
        assert instrument.slice_rate_bps(0) == pytest.approx(
            instrument.wire_rate_bps / 2, rel=0.01
        )

    def test_repartition_rejected(self):
        instrument = self.make()
        instrument.partition(["a"])
        with pytest.raises(DetectorError):
            instrument.partition(["b"])

    def test_unknown_slice(self):
        instrument = self.make()
        instrument.partition(["a"])
        with pytest.raises(DetectorError):
            instrument.slice_rate_bps(5)

    def test_unpartitioned_slice_rate(self):
        with pytest.raises(DetectorError):
            self.make().slice_rate_bps(0)

    def test_empty_partition(self):
        with pytest.raises(DetectorError):
            self.make().partition([])
