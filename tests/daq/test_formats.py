"""DAQ frame formats: byte-exact codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.daq import (
    DaqFrameHeader,
    FormatError,
    Mu2ePacket,
    PayloadKind,
    WIB_ADC_BITS,
    WIB_CHANNELS,
    WibFrame,
    frame_message,
    parse_message,
)


def make_header(**over):
    fields = dict(
        detector_id=1,
        slice_id=2,
        timestamp_ticks=123456789,
        run_number=42,
        payload_kind=PayloadKind.WIB_FRAME,
        payload_bytes=0,
    )
    fields.update(over)
    return DaqFrameHeader(**fields)


class TestDaqHeader:
    def test_size(self):
        assert len(make_header().encode()) == DaqFrameHeader.SIZE == 24

    def test_roundtrip(self):
        header = make_header(payload_bytes=512)
        assert DaqFrameHeader.decode(header.encode()) == header

    def test_truncation_rejected(self):
        with pytest.raises(FormatError):
            DaqFrameHeader.decode(b"\x00" * 10)

    def test_payload_range(self):
        with pytest.raises(FormatError):
            make_header(payload_bytes=1 << 16).encode()

    @given(
        det=st.integers(0, 2**16 - 1),
        sl=st.integers(0, 2**16 - 1),
        ts=st.integers(0, 2**64 - 1),
        run=st.integers(0, 2**32 - 1),
        kind=st.sampled_from(list(PayloadKind)),
        size=st.integers(0, 2**16 - 1),
    )
    def test_roundtrip_property(self, det, sl, ts, run, kind, size):
        header = DaqFrameHeader(det, sl, ts, run, kind, size)
        assert DaqFrameHeader.decode(header.encode()) == header


class TestWibFrame:
    def frame(self, counts=None):
        return WibFrame(
            crate=1,
            slot=2,
            fiber=3,
            timestamp_ticks=999,
            adc_counts=tuple(counts or [i % (1 << WIB_ADC_BITS) for i in range(WIB_CHANNELS)]),
        )

    def test_size_constant(self):
        assert len(self.frame().encode()) == WibFrame.SIZE

    def test_roundtrip(self):
        frame = self.frame()
        decoded = WibFrame.decode(frame.encode())
        assert decoded == frame

    def test_channel_count_enforced(self):
        with pytest.raises(FormatError):
            WibFrame(0, 0, 0, 0, adc_counts=(1, 2, 3)).encode()

    def test_adc_range_enforced(self):
        counts = [0] * WIB_CHANNELS
        counts[7] = 1 << WIB_ADC_BITS
        with pytest.raises(FormatError):
            self.frame(counts).encode()

    def test_truncation_rejected(self):
        with pytest.raises(FormatError):
            WibFrame.decode(self.frame().encode()[:-1])

    @given(
        counts=st.lists(
            st.integers(0, (1 << WIB_ADC_BITS) - 1),
            min_size=WIB_CHANNELS,
            max_size=WIB_CHANNELS,
        )
    )
    def test_bitpacking_roundtrip_property(self, counts):
        frame = self.frame(counts)
        assert WibFrame.decode(frame.encode()).adc_counts == tuple(counts)


class TestMu2ePacket:
    def test_roundtrip(self):
        packet = Mu2ePacket(roc_id=3, packet_type=1, timestamp_ticks=777, body=b"\x01" * 64)
        assert Mu2ePacket.decode(packet.encode()) == packet

    def test_short_body_rejected(self):
        packet = Mu2ePacket(roc_id=3, packet_type=1, timestamp_ticks=777, body=b"abcdef")
        with pytest.raises(FormatError):
            Mu2ePacket.decode(packet.encode()[:-2])

    def test_truncated_header_rejected(self):
        with pytest.raises(FormatError):
            Mu2ePacket.decode(b"\x00" * 4)


class TestMessageFraming:
    def test_frame_and_parse(self):
        payload = b"\xAB" * 100
        message = frame_message(make_header(), payload)
        header, parsed = parse_message(message)
        assert parsed == payload
        assert header.payload_bytes == 100

    def test_short_message_rejected(self):
        message = frame_message(make_header(), b"\x01" * 50)
        with pytest.raises(FormatError):
            parse_message(message[:-10])
