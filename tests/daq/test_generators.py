"""Traffic processes: rates, shapes, determinism; waveform synthesis."""

import random

import pytest

from repro.daq import (
    BeamSpill,
    CompositeProcess,
    DaqStreamSource,
    LArTpcWaveformSynth,
    PoissonEvents,
    SteadyReadout,
    SupernovaBurst,
    WibFrame,
    parse_message,
    plan_capacity,
)
from repro.netsim import Simulator
from repro.netsim.units import MILLISECOND, SECOND, gbps


def offered_rate(process, duration_ns, seed=1):
    messages = list(process.generate(duration_ns, random.Random(seed)))
    if not messages:
        return 0.0, messages
    total_bytes = sum(m.size_bytes for m in messages)
    return total_bytes * 8 * SECOND / duration_ns, messages


class TestSteadyReadout:
    def test_rate_accurate_within_percent(self):
        process = SteadyReadout(rate_bps=gbps(1), message_bytes=8192)
        rate, _ = offered_rate(process, 10 * MILLISECOND)
        assert rate == pytest.approx(1e9, rel=0.01)

    def test_deterministic_spacing(self):
        process = SteadyReadout(rate_bps=gbps(1), message_bytes=1000)
        _, messages = offered_rate(process, MILLISECOND)
        gaps = {b.time_ns - a.time_ns for a, b in zip(messages, messages[1:])}
        assert len(gaps) == 1  # perfectly regular

    def test_validation(self):
        with pytest.raises(ValueError):
            SteadyReadout(rate_bps=0, message_bytes=1)


class TestPoissonEvents:
    def test_mean_rate_converges(self):
        process = PoissonEvents(event_rate_hz=1000, messages_per_event=2, message_bytes=500)
        rate, messages = offered_rate(process, SECOND)
        assert rate == pytest.approx(process.expected_rate_bps(), rel=0.15)

    def test_bursts_are_contiguous(self):
        process = PoissonEvents(
            event_rate_hz=10, messages_per_event=4, message_bytes=100, burst_spacing_ns=50
        )
        _, messages = offered_rate(process, SECOND)
        assert len(messages) % 4 == 0

    def test_seed_determinism(self):
        process = PoissonEvents(event_rate_hz=100, messages_per_event=1, message_bytes=10)
        a = [m.time_ns for m in process.generate(SECOND, random.Random(5))]
        b = [m.time_ns for m in process.generate(SECOND, random.Random(5))]
        assert a == b


class TestBeamSpill:
    def test_messages_only_in_spill_without_idle_rate(self):
        process = BeamSpill(
            period_ns=100 * MILLISECOND,
            spill_duration_ns=20 * MILLISECOND,
            spill_rate_bps=gbps(1),
            message_bytes=5000,
        )
        _, messages = offered_rate(process, SECOND)
        assert messages
        for m in messages:
            assert (m.time_ns % (100 * MILLISECOND)) < 20 * MILLISECOND
            assert m.kind == "spill"

    def test_duty_cycle_average(self):
        process = BeamSpill(
            period_ns=100 * MILLISECOND,
            spill_duration_ns=50 * MILLISECOND,
            spill_rate_bps=gbps(2),
            message_bytes=5000,
        )
        rate, _ = offered_rate(process, SECOND)
        assert rate == pytest.approx(1e9, rel=0.05)

    def test_spill_longer_than_period_rejected(self):
        with pytest.raises(ValueError):
            BeamSpill(period_ns=10, spill_duration_ns=20, spill_rate_bps=1, message_bytes=1)


class TestSupernovaBurst:
    def test_burst_confined_to_window(self):
        process = SupernovaBurst(
            start_ns=100 * MILLISECOND,
            burst_duration_ns=50 * MILLISECOND,
            burst_rate_bps=gbps(1),
            message_bytes=8000,
        )
        _, messages = offered_rate(process, SECOND)
        assert messages[0].time_ns == 100 * MILLISECOND
        assert all(m.kind == "snb" for m in messages)
        assert messages[-1].time_ns < 150 * MILLISECOND


class TestComposite:
    def test_merged_in_time_order(self):
        composite = CompositeProcess([
            SteadyReadout(rate_bps=gbps(0.5), message_bytes=4000),
            PoissonEvents(event_rate_hz=500, messages_per_event=1, message_bytes=1000),
        ])
        _, messages = offered_rate(composite, 20 * MILLISECOND)
        times = [m.time_ns for m in messages]
        assert times == sorted(times)

    def test_expected_rate_sums(self):
        a = SteadyReadout(rate_bps=1000, message_bytes=10)
        b = SteadyReadout(rate_bps=2000, message_bytes=10)
        composite = CompositeProcess([a, b])
        assert composite.expected_rate_bps() == pytest.approx(
            a.expected_rate_bps() + b.expected_rate_bps()
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeProcess([])


class TestStreamSource:
    def test_pull_based_emission(self):
        sim = Simulator(seed=2)
        sent = []
        process = SteadyReadout(rate_bps=gbps(1), message_bytes=1000)
        source = DaqStreamSource(
            sim, process, lambda size, payload, kind: sent.append((sim.now, size)),
            duration_ns=MILLISECOND,
        )
        source.start()
        # Event queue stays tiny even though many messages are coming.
        assert sim.pending_events() <= 2
        sim.run()
        assert len(sent) == source.messages_emitted
        assert source.messages_emitted == 125  # 1ms / 8us per message
        assert source.bytes_emitted == 125 * 1000

    def test_start_offset(self):
        sim = Simulator(seed=2)
        sent = []
        source = DaqStreamSource(
            sim, SteadyReadout(rate_bps=gbps(1), message_bytes=1000),
            lambda size, payload, kind: sent.append(sim.now),
            duration_ns=20_000,
        )
        source.start(at_ns=5000)
        sim.run()
        assert sent[0] == 5000

    def test_payload_factory_and_completion(self):
        sim = Simulator(seed=2)
        done = []
        got = []
        source = DaqStreamSource(
            sim, SteadyReadout(rate_bps=gbps(1), message_bytes=1000),
            lambda size, payload, kind: got.append(payload),
            duration_ns=17_000,
            payload_factory=lambda m: b"\x00" * 8,
            on_complete=lambda: done.append(sim.now),
        )
        source.start()
        sim.run()
        assert all(p == b"\x00" * 8 for p in got)
        assert len(done) == 1


class TestWaveformSynth:
    def test_frames_decode_and_stay_in_range(self):
        synth = LArTpcWaveformSynth(seed=4)
        frame = synth.frame(timestamp_ticks=55, hits=2)
        decoded = WibFrame.decode(frame.encode())
        assert decoded.timestamp_ticks == 55
        assert all(0 <= c < (1 << 14) for c in decoded.adc_counts)

    def test_hits_raise_amplitude(self):
        synth = LArTpcWaveformSynth(seed=4, noise_rms=1.0, pulse_amplitude=1000)
        quiet = synth.adc_samples(hits=0)
        loud = synth.adc_samples(hits=3)
        assert loud.max() > quiet.max() + 500

    def test_message_parses_back(self):
        synth = LArTpcWaveformSynth(seed=4)
        message = synth.message(detector_id=7, slice_id=1, timestamp_ticks=9)
        header, payload = parse_message(message)
        assert header.detector_id == 7
        assert WibFrame.decode(payload).timestamp_ticks == 9

    def test_pedestal_validated(self):
        with pytest.raises(ValueError):
            LArTpcWaveformSynth(pedestal=1 << 14)


def test_plan_capacity_headroom():
    process = SteadyReadout(rate_bps=gbps(1), message_bytes=8192)
    assert plan_capacity(process, headroom=1.2) == pytest.approx(1.2e9, rel=0.01)
