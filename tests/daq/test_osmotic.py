"""Osmotic sensor fleets over cell backhaul (§6, challenge 3)."""


from repro.analysis import percentile
from repro.daq.osmotic import READING_BYTES, build_osmotic_field
from repro.netsim import Simulator, units
from repro.netsim.units import MILLISECOND


def run_field(sensors=8, readings=25, loss=0.01, seed=3, batch_size=16):
    sim = Simulator(seed=seed)
    field = build_osmotic_field(
        sim,
        sensors=sensors,
        cell_loss=loss,
        reading_interval_ns=50 * MILLISECOND,
        batch_size=batch_size,
    )
    field.start(readings)
    field.run()
    return field


def test_every_reading_reaches_the_gateway_despite_loss():
    field = run_field(loss=0.02)
    assert field.total_sent == 8 * 25
    # TCP is adequate at these volumes: nothing is lost end to end.
    assert field.gateway.stats.readings_received == field.total_sent


def test_readings_aggregate_into_mmt_batches():
    field = run_field(batch_size=16)
    total = field.gateway.stats.readings_received
    batches = field.gateway.stats.batches_forwarded
    assert batches >= total // 16
    assert len(field.lab_received) == batches
    # Batch payloads carry the readings plus a DAQ header.
    biggest = max(size for _t, size in field.lab_received)
    assert biggest == 24 + 16 * READING_BYTES


def test_ingest_latency_reflects_cell_rtt():
    field = run_field(loss=0.0)
    latencies = field.gateway.stats.ingest_latencies_ns
    assert len(latencies) == field.total_sent
    # One-way cell delay is 30 ms (+1 ms backhaul); the p50 must sit
    # just above it, far below a reading interval.
    p50 = percentile(latencies, 0.5)
    assert 31 * MILLISECOND <= p50 < 45 * MILLISECOND


def test_loss_adds_recovery_tail_but_not_loss():
    clean = run_field(loss=0.0, seed=5)
    lossy = run_field(loss=0.05, seed=5)
    assert lossy.gateway.stats.readings_received == lossy.total_sent
    assert percentile(lossy.gateway.stats.ingest_latencies_ns, 0.99) > percentile(
        clean.gateway.stats.ingest_latencies_ns, 0.99
    )


def test_final_partial_batch_flushed():
    field = run_field(sensors=3, readings=5, batch_size=100)
    # 15 readings never fill a batch of 100; run() must flush the rest.
    assert field.gateway.stats.batches_forwarded == 1
    assert len(field.lab_received) == 1
