"""Alert streams and the supernova burst trigger."""

import random

import pytest

from repro.daq import (
    BurstDetector,
    RUBIN_ALERT_BURST_BPS,
    SupernovaAlert,
    rubin_alert_stream,
    rubin_nightly_capture,
)
from repro.netsim.units import MILLISECOND, SECOND


class TestRubinStreams:
    def test_alert_bursts_peak_near_5_4_gbps(self):
        process = rubin_alert_stream()
        messages = list(process.generate(120 * SECOND, random.Random(8)))
        assert messages, "two minutes should include alert bursts"
        # Within a burst, spacing implies the 5.4 Gb/s peak rate.
        gaps = [
            b.time_ns - a.time_ns
            for a, b in zip(messages, messages[1:])
            if b.time_ns - a.time_ns < MILLISECOND
        ]
        assert gaps, "bursts must be tightly spaced"
        peak_rate = messages[0].size_bytes * 8 * SECOND / min(gaps)
        assert peak_rate == pytest.approx(RUBIN_ALERT_BURST_BPS, rel=0.2)

    def test_nightly_capture_totals_30tb(self):
        process = rubin_nightly_capture()
        # 30 TB over 10 h is ~6.7 Gb/s.
        assert process.expected_rate_bps() == pytest.approx(6.67e9, rel=0.05)


class TestSupernovaAlert:
    def test_roundtrip(self):
        alert = SupernovaAlert(
            detection_time_ns=123,
            right_ascension_mdeg=-45_000,
            declination_mdeg=89_999,
            confidence_pct=97,
            neutrino_count=4321,
        )
        assert SupernovaAlert.decode(alert.encode()) == alert

    def test_compactness(self):
        assert SupernovaAlert.SIZE <= 32  # must fit any MTU trivially

    def test_truncation_rejected(self):
        with pytest.raises(ValueError):
            SupernovaAlert.decode(b"\x00" * 4)


class TestBurstDetector:
    def test_fires_at_threshold_within_window(self):
        detector = BurstDetector(window_ns=1000, threshold=3)
        assert not detector.observe(0)
        assert not detector.observe(100)
        assert detector.observe(200)
        assert detector.triggered_at == 200

    def test_slow_background_never_fires(self):
        detector = BurstDetector(window_ns=1000, threshold=3)
        for t in range(0, 100_000, 2000):
            assert not detector.observe(t)
        assert detector.triggered_at is None

    def test_window_slides(self):
        detector = BurstDetector(window_ns=1000, threshold=3)
        detector.observe(0)
        detector.observe(100)
        # Both early candidates have left the window by t=1500, so it
        # takes three *fresh* candidates to fire.
        assert not detector.observe(1500)
        assert not detector.observe(1550)
        assert detector.observe(1650)

    def test_fires_once(self):
        detector = BurstDetector(window_ns=1000, threshold=2)
        detector.observe(0)
        assert detector.observe(1)
        assert not detector.observe(2)
        assert detector.triggered_at == 1
