"""TCP building blocks: congestion controllers, config, tuning."""

import pytest

from repro.baselines import (
    BbrLiteCC,
    CubicCC,
    RenoCC,
    TcpConfig,
    TcpError,
    make_congestion_control,
    profile,
    tuned_100g,
    untuned,
)
from repro.netsim.units import MILLISECOND, SECOND


def config(cc="reno", mss=1000):
    return TcpConfig(mss=mss, init_cwnd_segments=10, congestion_control=cc)


class TestFactory:
    def test_known_controllers(self):
        assert isinstance(make_congestion_control(config("reno")), RenoCC)
        assert isinstance(make_congestion_control(config("cubic")), CubicCC)
        assert isinstance(make_congestion_control(config("bbr")), BbrLiteCC)

    def test_unknown_rejected(self):
        with pytest.raises(TcpError):
            make_congestion_control(config("vegas"))


class TestReno:
    def test_slow_start_doubles_per_rtt(self):
        cc = RenoCC(config())
        start = cc.cwnd
        # Acking a full window in slow start grows cwnd by ~the acked amount.
        for _ in range(10):
            cc.on_ack(1000, rtt_ns=MILLISECOND, now_ns=0)
        assert cc.cwnd == start + 10 * 1000

    def test_congestion_avoidance_linear(self):
        cc = RenoCC(config())
        cc.ssthresh = cc.cwnd  # enter CA immediately
        before = cc.cwnd
        acks_per_window = before // 1000
        for _ in range(acks_per_window):
            cc.on_ack(1000, rtt_ns=MILLISECOND, now_ns=0)
        # One window of ACKs in CA adds about one MSS.
        assert before + 500 <= cc.cwnd <= before + 2000

    def test_loss_halves(self):
        cc = RenoCC(config())
        cc.cwnd = 100_000
        cc.on_enter_recovery(now_ns=0)
        assert cc.cwnd == 50_000
        assert cc.ssthresh == 50_000

    def test_timeout_resets_to_one_mss(self):
        cc = RenoCC(config())
        cc.cwnd = 100_000
        cc.on_timeout(now_ns=0)
        assert cc.cwnd == 1000
        assert cc.ssthresh == 50_000


class TestCubic:
    def test_beta_backoff(self):
        cc = CubicCC(config("cubic"))
        cc.cwnd = 100_000
        cc.on_enter_recovery(now_ns=0)
        assert cc.cwnd == 70_000  # beta = 0.7

    def test_cubic_growth_accelerates_away_from_wmax(self):
        cc = CubicCC(config("cubic"))
        cc.cwnd = 50_000
        cc.ssthresh = 10_000  # CA
        cc.on_enter_recovery(now_ns=0)
        growth_early = []
        growth_late = []
        now = 0
        for i in range(200):
            now += 10 * MILLISECOND
            before = cc.cwnd
            cc.on_ack(1000, rtt_ns=10 * MILLISECOND, now_ns=now)
            (growth_early if i < 20 else growth_late).append(cc.cwnd - before)
        # Far from the epoch start the cubic term dominates: growth rises.
        assert sum(growth_late[-20:]) > sum(growth_early)

    def test_timeout_records_wmax(self):
        cc = CubicCC(config("cubic"))
        cc.cwnd = 80_000
        cc.on_timeout(now_ns=0)
        assert cc.cwnd == 1000
        assert cc._w_max == 80_000.0


class TestBbrLite:
    def test_bandwidth_estimate_from_delivery(self):
        cc = BbrLiteCC(config("bbr"))
        now = 0
        for _ in range(20):
            now += 1 * MILLISECOND
            cc.on_ack(10_000, rtt_ns=10 * MILLISECOND, now_ns=now)
        # 10 kB per ms = 80 Mb/s delivered.
        assert cc.bandwidth_bps() == pytest.approx(80e6, rel=0.05)

    def test_loss_does_not_collapse_rate(self):
        cc = BbrLiteCC(config("bbr"))
        now = 0
        for _ in range(20):
            now += MILLISECOND
            cc.on_ack(10_000, rtt_ns=10 * MILLISECOND, now_ns=now)
        before = cc.cwnd
        cc.on_enter_recovery(now_ns=now)
        assert cc.cwnd == before

    def test_pacing_only_after_estimate(self):
        cc = BbrLiteCC(config("bbr"))
        assert cc.pacing_rate_bps() is None
        now = 0
        for _ in range(5):
            now += MILLISECOND
            cc.on_ack(10_000, rtt_ns=10 * MILLISECOND, now_ns=now)
        assert cc.pacing_rate_bps() > 0


class TestTuningProfiles:
    def test_ladder_is_monotone_in_buffers(self):
        assert untuned().recv_buffer_bytes < profile("10g").recv_buffer_bytes
        assert profile("10g").recv_buffer_bytes < tuned_100g().recv_buffer_bytes

    def test_jumbo_frames_on_tuned(self):
        assert untuned().mss == 1460
        assert tuned_100g().mss == 8960

    def test_bbr_profile(self):
        assert profile("100g-bbr").congestion_control == "bbr"

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            profile("400g")

    def test_100g_buffer_covers_bdp(self):
        # 100 Gb/s x 80 ms needs 1 GB of window.
        from repro.netsim.units import bandwidth_delay_product_bytes, gbps

        bdp = bandwidth_delay_product_bytes(gbps(100), 80 * MILLISECOND)
        assert tuned_100g().recv_buffer_bytes >= bdp
