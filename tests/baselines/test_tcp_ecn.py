"""TCP ECN (RFC 3168): golden non-regression pins and the ECE/CWR echo.

Two contracts guard the ECN work:

1. **ECN off is byte-identical to before.** Adding the ECE/CWR machinery
   must not move a single bit of the pre-ECN wire trace: the two-seed
   digests below were captured before ``TcpConfig.ecn`` existed and are
   pinned in the golden-replay style of
   ``tests/dataplane/test_golden_replay.py``. If a change intentionally
   alters them, update the digest in the same commit and say why.

2. **ECN on diverges only after the first CE mark.** Up to the first
   mark the ECT stamp is inert: the ECN-enabled twin of a run replays
   the same behavioral trace (timing, seq/ack, flags, sizes — the ECN
   codepoint itself masked) through the same-seed RED queue, and the
   first divergence coincides with the first CE-marked delivery.
"""

import hashlib

import pytest

from repro.baselines.tcp import TcpConfig, TcpStack
from repro.netsim import RedQueue, Simulator, Topology
from repro.netsim.headers import Ipv4Header, TcpHeader
from repro.netsim.units import MBPS, gbps, microseconds

#: sha256 over the newline-joined lossy-reno trace (see ``wire_trace``),
#: captured before the ECN machinery existed.
GOLDEN_DIGESTS = {
    7: ("73dc72cf73f296a3ed3314c365572813ce6b7df371a48cde32f80720c5f51b7b", 152),
    42: ("02f23470acb6c410c1dbd268e146e975c30651e90cd2678fa5b2c0ab0416b069", 147),
}


def trace_line(sim, label, packet) -> str:
    ip = packet.find(Ipv4Header)
    tcp = packet.find(TcpHeader)
    flags = "".join(
        name
        for name, on in (
            ("S", tcp.flag_syn),
            ("A", tcp.flag_ack),
            ("F", tcp.flag_fin),
            ("R", tcp.flag_rst),
            ("E", tcp.flag_ece),
            ("W", tcp.flag_cwr),
        )
        if on
    )
    sack = ",".join(f"{s}-{e}" for s, e in tcp.sack_blocks)
    return (
        f"{sim.now}|{label}|ecn{ip.ecn}|{tcp.src_port}>{tcp.dst_port}"
        f"|seq{tcp.seq}|ack{tcp.ack}|{flags}|w{tcp.window}|sack[{sack}]"
        f"|{packet.payload_size}"
    )


def tap_links(topo, lines) -> None:
    for link in topo.links:
        end_a, end_b = link.ends
        for port, peer in ((end_a, end_b), (end_b, end_a)):

            def tapped(
                packet,
                _orig=port.deliver,
                _port=port,
                _label=f"{link.name}:{peer.node.name}->{port.node.name}",
            ):
                if packet.find(TcpHeader) is not None:
                    lines.append(trace_line(_port.sim, _label, packet))
                _orig(packet)

            port.deliver = tapped


def wire_trace(seed, size_bytes=400_000, loss_rate=0.02):
    """The pinned pre-ECN scenario: lossy 1G bottleneck, reno sender."""
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    a = topo.add_host("a", ip="10.0.1.2")
    b = topo.add_host("b", ip="10.0.2.2")
    r = topo.add_router("r")
    topo.connect(a, r, gbps(10), microseconds(5), 9000)
    topo.connect(r, b, gbps(1), microseconds(100), 9000, loss_rate=loss_rate)
    topo.install_routes()

    lines: list[str] = []
    tap_links(topo, lines)
    config = TcpConfig(congestion_control="reno", ack_every=2)
    stack_a = TcpStack(a)
    TcpStack(b).listen(5001, config=config)
    conn = stack_a.connect("10.0.2.2", 5001, config=config, local_port=33000)
    done = {}
    conn.on_all_acked = lambda: done.setdefault("fct", sim.now)
    conn.on_established = lambda: conn.send(size_bytes)
    sim.run(until_ns=5_000_000_000)
    assert "fct" in done, "golden transfer must complete"
    return lines


@pytest.mark.parametrize("seed", sorted(GOLDEN_DIGESTS))
def test_ecn_off_trace_matches_pre_ecn_golden_digest(seed):
    lines = wire_trace(seed)
    expected_digest, expected_records = GOLDEN_DIGESTS[seed]
    assert len(lines) == expected_records
    assert hashlib.sha256("\n".join(lines).encode()).hexdigest() == expected_digest
    # An ECN-disabled connection never stamps ECT and never sets ECE/CWR.
    for line in lines:
        assert "|ecn0|" in line
        flags = line.split("|")[6]
        assert "E" not in flags and "W" not in flags


# -- the ECN-enabled twin ------------------------------------------------------


def ecn_twin_trace(seed, ecn, size_bytes=300_000):
    """One run of the Fixed-K RED bottleneck scenario; only ``ecn``
    (the TCP config flag) differs between twins."""
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    a = topo.add_host("a", ip="10.0.1.2")
    b = topo.add_host("b", ip="10.0.2.2")
    r = topo.add_router("r")
    red = RedQueue(
        100_000,
        min_threshold=0.1,
        max_threshold=0.1,
        max_drop_probability=1.0,
        ewma_weight=1.0,
        rng=sim.rng("red"),
        ecn=True,
    )
    topo.connect(a, r, gbps(10), microseconds(5), 9000)
    topo.connect(r, b, 200 * MBPS, microseconds(50), 9000, queue_factory_a=lambda: red)
    topo.install_routes()

    lines: list[str] = []
    tap_links(topo, lines)
    config = TcpConfig(congestion_control="reno", ecn=ecn)
    stack_a = TcpStack(a)
    stack_b = TcpStack(b)
    stack_b.listen(5001, config=config)
    conn = stack_a.connect("10.0.2.2", 5001, config=config, local_port=33000)
    done = {}
    conn.on_all_acked = lambda: done.setdefault("fct", sim.now)
    conn.on_established = lambda: conn.send(size_bytes)
    sim.run(until_ns=5_000_000_000)
    assert "fct" in done, "twin transfer must complete"
    sink = next(iter(stack_b._connections.values()))
    return lines, conn, sink, red


def masked(line: str) -> str:
    """Hide the inert ECT stamp so twins compare behaviorally."""
    return line.replace("|ecn2|", "|ecn0|").replace("|ecn1|", "|ecn0|")


def test_ecn_twin_diverges_only_after_first_ce_mark():
    on_lines, on_conn, _sink, on_red = ecn_twin_trace(7, ecn=True)
    off_lines, off_conn, _sink, off_red = ecn_twin_trace(7, ecn=False)

    # The ECN run marked where the non-ECN twin dropped. (The ECN run
    # may still shed the odd packet: non-ECT control segments above K,
    # or a tail drop during the slow-start overshoot.)
    assert on_red.ce_marked > 0 and off_red.ce_marked == 0
    assert off_red.early_drops > on_red.dropped

    mark_index = next(i for i, line in enumerate(on_lines) if "|ecn3|" in line)
    # Up to the first CE-marked delivery the twins are behaviorally
    # identical: the ECT codepoint is the only masked difference.
    assert [masked(l) for l in on_lines[:mark_index]] == [
        masked(l) for l in off_lines[:mark_index]
    ]
    # ... and they genuinely diverge afterwards (mark vs drop).
    assert [masked(l) for l in on_lines[mark_index:]] != [
        masked(l) for l in off_lines[mark_index:]
    ]
    assert on_conn.stats.ecn_reductions > 0
    assert off_conn.stats.ecn_reductions == 0


def test_ecn_echo_and_reaction_semantics():
    lines, conn, sink, red = ecn_twin_trace(42, ecn=True)

    # Receiver saw CE (up to the odd marked packet lost to a tail drop)
    # and echoed ECE; sender reacted and sent CWR.
    assert 0 < sink.stats.ce_marks_received <= red.ce_marked
    assert conn.stats.ece_acks_received > 0
    assert conn.stats.ecn_reductions > 0
    # Once per window (RFC 3168 §6.1.2): far fewer reductions than
    # ECE-bearing ACKs — the echo persists until CWR comes back.
    assert conn.stats.ecn_reductions < conn.stats.ece_acks_received
    # Count each segment once, on the hop next to the sender: ECE ACKs
    # as delivered to it, CWR segments as it emits them.
    ece_lines = [l for l in lines if ":r->a" in l and "E" in l.split("|")[6]]
    cwr_lines = [l for l in lines if ":a->r" in l and "W" in l.split("|")[6]]
    assert len(ece_lines) == conn.stats.ece_acks_received
    # At most one CWR per reduction; a reduction with no data left to
    # send leaves its CWR pending forever, so fewer can reach the wire.
    assert 0 < len(cwr_lines) <= conn.stats.ecn_reductions
    # ECE rides pure ACKs from the receiver; CWR rides data segments.
    for line in cwr_lines:
        assert int(line.split("|")[9]) > 0

    # Marking replaced dropping: the ECN run loses far less at the
    # bottleneck (and therefore retransmits far less) than its twin.
    _lines, off_conn, _sink, off_red = ecn_twin_trace(42, ecn=False)
    assert red.dropped < off_red.dropped
    assert conn.stats.retransmits < off_conn.stats.retransmits


def test_ecn_stamps_only_data_segments():
    lines, _conn, _sink, _red = ecn_twin_trace(7, ecn=True)
    for line in lines:
        parts = line.split("|")
        ecn_field, flags, payload = parts[2], parts[6], int(parts[9])
        if payload == 0:
            # SYN, pure ACKs, FIN: never ECT-stamped.
            assert ecn_field == "ecn0", line
        else:
            assert ecn_field in ("ecn2", "ecn3"), line
