"""UDP stack: binding, demux, loss transparency."""

import pytest

from repro.baselines import UdpError, UdpStack, remote_address
from tests.conftest import TwoHostRig


def test_datagram_delivery(sim, rig):
    sa = UdpStack(rig.a)
    sb = UdpStack(rig.b)
    got = []
    sb.bind(9000, on_datagram=lambda p, s: got.append(remote_address(p)))
    sock = sa.bind(1234)
    assert sock.send_to(rig.b.ip, 9000, 500)
    sim.run()
    assert got == [(rig.a.ip, 1234)]


def test_port_demux(sim, rig):
    sa = UdpStack(rig.a)
    sb = UdpStack(rig.b)
    first, second = [], []
    sb.bind(9000, on_datagram=lambda p, s: first.append(p))
    sb.bind(9001, on_datagram=lambda p, s: second.append(p))
    sock = sa.bind(1)
    sock.send_to(rig.b.ip, 9000, 10)
    sock.send_to(rig.b.ip, 9001, 10)
    sock.send_to(rig.b.ip, 9001, 10)
    sim.run()
    assert len(first) == 1
    assert len(second) == 2


def test_unbound_port_counted(sim, rig):
    sa = UdpStack(rig.a)
    sb = UdpStack(rig.b)
    sa.bind(1).send_to(rig.b.ip, 7777, 10)
    sim.run()
    assert sb.rx_no_socket == 1


def test_double_bind_rejected(sim, rig):
    stack = UdpStack(rig.a)
    stack.bind(5)
    with pytest.raises(UdpError):
        stack.bind(5)


def test_close_releases_port(sim, rig):
    stack = UdpStack(rig.a)
    sock = stack.bind(5)
    sock.close()
    stack.bind(5)  # no error


def test_no_reliability_under_loss(sim):
    rig = TwoHostRig(sim, loss_rate=0.5)
    sa = UdpStack(rig.a)
    sb = UdpStack(rig.b)
    got = []
    sb.bind(9000, on_datagram=lambda p, s: got.append(p))
    sock = sa.bind(1)
    for _ in range(200):
        sock.send_to(rig.b.ip, 9000, 100)
    sim.run()
    # Roughly half vanish and stay vanished: UDP does nothing about it.
    assert 50 < len(got) < 150
    assert sock.tx_datagrams == 200


def test_counters(sim, rig):
    sa = UdpStack(rig.a)
    sb = UdpStack(rig.b)
    rx_sock = sb.bind(9000)
    sock = sa.bind(1)
    sock.send_to(rig.b.ip, 9000, 123)
    sim.run()
    assert sock.tx_bytes == 123
    assert rx_sock.rx_datagrams == 1
    assert rx_sock.rx_bytes == 123
