"""TCP end-to-end behaviour over the simulator.

These are the properties the paper's §4 comparison leans on, so they
are pinned by test: window-limited goodput, source-RTT recovery,
head-of-line blocking, and loss sensitivity.
"""

import pytest

from repro.baselines import TcpConfig, TcpError, TcpStack, tuned_100g, untuned
from repro.netsim import Simulator, units
from tests.conftest import TwoHostRig


def transfer(sim, rig, size_bytes, config=None, run_for=units.seconds(60)):
    """One-way bulk transfer a→b; returns (fct_ns or None, client conn)."""
    stack_a = TcpStack(rig.a)
    stack_b = TcpStack(rig.b)
    config = config or TcpConfig()
    stack_b.listen(5000, config=config)
    done = {}
    conn = stack_a.connect(rig.b.ip, 5000, config=config)
    conn.on_all_acked = lambda: done.setdefault("t", sim.now)
    conn.send(size_bytes)
    sim.run(until_ns=run_for)
    return done.get("t"), conn


class TestBasics:
    def test_handshake_then_complete_transfer(self, sim, rig):
        fct, conn = transfer(sim, rig, 500_000)
        assert fct is not None
        assert conn.stats.retransmits == 0
        assert conn.state == "ESTABLISHED"

    def test_receiver_gets_every_byte_in_order(self, sim, rig):
        stack_a = TcpStack(rig.a)
        stack_b = TcpStack(rig.b)
        config = TcpConfig()
        deliveries = []
        stack_b.listen(
            5000, config=config,
            on_connection=lambda c: setattr(
                c, "on_delivered", lambda n, total: deliveries.append(total)
            ),
        )
        conn = stack_a.connect(rig.b.ip, 5000, config=config)
        conn.send(100_000)
        sim.run()
        assert deliveries[-1] == 100_000
        assert deliveries == sorted(deliveries)

    def test_connect_twice_rejected(self, sim, rig):
        stack_a = TcpStack(rig.a)
        TcpStack(rig.b).listen(5000)
        conn = stack_a.connect(rig.b.ip, 5000)
        with pytest.raises(TcpError):
            conn.connect()

    def test_listen_port_conflict(self, sim, rig):
        stack = TcpStack(rig.b)
        stack.listen(5000)
        with pytest.raises(TcpError):
            stack.listen(5000)

    def test_syn_to_closed_port_counted(self, sim, rig):
        stack_a = TcpStack(rig.a)
        stack_b = TcpStack(rig.b)
        stack_a.connect(rig.b.ip, 4444)
        sim.run(until_ns=units.seconds(2))
        assert stack_b.rx_no_connection >= 1

    def test_syn_ack_loss_recovers(self, sim):
        """A lost SYN-ACK must not deadlock: the retried SYN gets a
        fresh SYN-ACK from the half-open server (regression test)."""
        rig = TwoHostRig(sim)
        stack_a = TcpStack(rig.a)
        stack_b = TcpStack(rig.b)
        stack_b.listen(5000)
        # Drop exactly the first SYN-ACK: blackhole b->a briefly after
        # the SYN (which needs ~110 us to cross) arrives.
        sim.schedule(units.microseconds(104), lambda: setattr(rig.link_b, "loss_rate", 0.999999))
        sim.schedule(units.microseconds(120), lambda: setattr(rig.link_b, "loss_rate", 0.0))
        done = {}
        conn = stack_a.connect(rig.b.ip, 5000)
        conn.on_all_acked = lambda: done.setdefault("t", sim.now)
        conn.send(10_000)
        sim.run(until_ns=units.seconds(30))
        assert "t" in done, "transfer must complete despite the lost SYN-ACK"

    def test_syn_loss_retried(self, sim):
        rig = TwoHostRig(sim, loss_rate=0.0)
        stack_a = TcpStack(rig.a)
        stack_b = TcpStack(rig.b)
        stack_b.listen(5000)
        rig.link_b.loss_rate = 0.999999  # swallow the first SYN
        established = []
        conn = stack_a.connect(rig.b.ip, 5000)
        conn.on_established = lambda: established.append(sim.now)
        sim.schedule(units.milliseconds(500), lambda: setattr(rig.link_b, "loss_rate", 0.0))
        sim.run(until_ns=units.seconds(10))
        assert established, "handshake must recover from SYN loss"
        assert conn.stats.timeouts >= 1


class TestWindowLimits:
    def test_untuned_goodput_is_rwnd_over_rtt(self, sim):
        rig = TwoHostRig(
            sim, rate_bps=units.gbps(100), middle_delay_ns=units.milliseconds(5)
        )
        config = untuned()
        fct, _conn = transfer(sim, rig, 4_000_000, config=config)
        assert fct is not None
        goodput = 4_000_000 * 8 * units.SECOND / fct
        ceiling = config.recv_buffer_bytes * 8 * units.SECOND / units.milliseconds(10)
        assert goodput < ceiling * 1.1

    def test_tuned_profile_much_faster_on_lfn(self, sim):
        delay = units.milliseconds(5)
        rig1 = TwoHostRig(Simulator(seed=1), rate_bps=units.gbps(100), middle_delay_ns=delay)
        fct_untuned, _ = transfer(rig1.sim, rig1, 20_000_000, config=untuned(),
                                  run_for=units.seconds(120))
        rig2 = TwoHostRig(Simulator(seed=1), rate_bps=units.gbps(100), middle_delay_ns=delay)
        fct_tuned, _ = transfer(rig2.sim, rig2, 20_000_000, config=tuned_100g(),
                                run_for=units.seconds(120))
        assert fct_tuned is not None and fct_untuned is not None
        assert fct_tuned < fct_untuned / 5


class TestLossBehaviour:
    def test_recovery_completes_under_loss(self, sim):
        rig = TwoHostRig(sim, middle_delay_ns=units.milliseconds(2), loss_rate=0.01)
        fct, conn = transfer(sim, rig, 3_000_000, config=tuned_100g())
        assert fct is not None
        assert conn.stats.retransmits > 0

    def test_retransmission_originates_at_source(self, sim):
        """All retransmitted bytes leave the sender's own NIC — TCP has
        no closer place to recover from (§4.1 point 2)."""
        rig = TwoHostRig(sim, middle_delay_ns=units.milliseconds(2), loss_rate=0.02)
        tx_port = rig.a.ports["to_r"]
        fct, conn = transfer(sim, rig, 2_000_000, config=tuned_100g())
        assert fct is not None
        total_data_packets = tx_port.stats.tx_packets
        # Everything (originals + retransmissions) crossed the source NIC.
        assert total_data_packets >= conn.stats.segments_sent

    def test_head_of_line_blocking_observable(self, sim):
        """A single early loss delays delivery of everything behind it
        by at least the recovery time (§4.1 point 1)."""
        rig = TwoHostRig(sim, middle_delay_ns=units.milliseconds(10))
        stack_a = TcpStack(rig.a)
        stack_b = TcpStack(rig.b)
        config = tuned_100g()
        deliveries = []
        stack_b.listen(
            5000, config=config,
            on_connection=lambda c: setattr(
                c, "on_delivered", lambda n, total: deliveries.append((rig.sim.now, total))
            ),
        )
        conn = stack_a.connect(rig.b.ip, 5000, config=config)

        # Lose exactly one packet mid-stream via a transient blackhole.
        def blackhole_on():
            rig.link_b.loss_rate = 0.999999

        def blackhole_off():
            rig.link_b.loss_rate = 0.0

        conn.on_established = lambda: conn.send(5_000_000)
        established_wait = units.milliseconds(25)
        sim.schedule(established_wait, blackhole_on)
        sim.schedule(established_wait + units.microseconds(50), blackhole_off)
        sim.run(until_ns=units.seconds(30))
        totals = [t for _now, t in deliveries]
        assert totals and totals[-1] == 5_000_000
        # Find the largest delivery stall: it must span the recovery.
        stalls = [
            later - earlier
            for (earlier, _a), (later, _b) in zip(deliveries, deliveries[1:])
        ]
        assert max(stalls) > units.milliseconds(15), "HoL stall must be visible"
