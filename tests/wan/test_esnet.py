"""The ESnet-like backbone substrate."""

import pytest

from repro.baselines import UdpStack
from repro.core import MmtStack, make_experiment_id
from repro.netsim.units import MILLISECOND, gbps
from repro.wan import CircuitError
from repro.wan.esnet import POPS, SITES, build_esnet


@pytest.fixture
def backbone(sim):
    return build_esnet(sim)


def test_all_pops_and_sites_built(backbone):
    assert set(backbone.routers) == set(POPS)
    assert set(backbone.sites) == set(SITES)


def test_coast_to_coast_delay_realistic(backbone):
    """SUNN→NEWY one-way must land in the real 15-25 ms band, and the
    SURF→FNAL (DUNE) path in the 5-15 ms band."""
    coast = backbone.one_way_delay_ns("SUNN", "NEWY")
    assert 15 * MILLISECOND < coast < 35 * MILLISECOND
    dune = backbone.one_way_delay_ns("SURF", "FNAL")
    assert 5 * MILLISECOND < dune < 15 * MILLISECOND


def test_site_to_site_connectivity(backbone, sim):
    """Every facility pair can exchange packets over installed routes."""
    surf = backbone.sites["SURF"]
    fnal = backbone.sites["FNAL"]
    stack_a = MmtStack(surf)
    stack_b = MmtStack(fnal)
    got = []
    stack_b.bind_receiver(2, on_message=lambda p, h: got.append(sim.now))
    sender = stack_a.create_sender(
        experiment_id=make_experiment_id(2), mode="identify", dst_ip=fnal.ip
    )
    sender.send(8192)
    sim.run()
    assert len(got) == 1
    # Arrival time ~ the computed path delay (plus serialization).
    assert abs(got[0] - backbone.one_way_delay_ns("SURF", "FNAL")) < MILLISECOND


def test_lowest_latency_path_chosen(backbone):
    """CHIC→NEWY has a direct trunk; the path must not detour via WASH."""
    names = backbone.path_link_names("CHIC", "NEWY")
    assert len(names) == 1


def test_circuit_reservation_along_path(backbone):
    legs = backbone.reserve_circuit(
        "SURF", "FNAL", gbps(100), 0, 10**12, owner="dune-run-7"
    )
    assert len(legs) == len(backbone.path_link_names("SURF", "FNAL"))
    # The same capacity again still fits (400G trunks), but 4x does not.
    backbone.reserve_circuit("SURF", "FNAL", gbps(100), 0, 10**12, owner="dune-run-8")
    with pytest.raises(CircuitError):
        backbone.reserve_circuit("SURF", "FNAL", gbps(300), 0, 10**12, owner="greedy")


def test_attach_site_after_build(backbone, sim):
    caltech = backbone.attach_site("CALTECH", "SUNN", tail_km=500)
    fnal = backbone.sites["FNAL"]
    ua = UdpStack(caltech)
    ub = UdpStack(fnal)
    got = []
    ub.bind(9000, on_datagram=lambda p, s: got.append(p))
    ua.bind(1).send_to(fnal.ip, 9000, 100)
    sim.run()
    assert len(got) == 1


def test_attach_validation(backbone):
    with pytest.raises(KeyError):
        backbone.attach_site("X", "NOPE", 10)
    with pytest.raises(KeyError):
        backbone.attach_site("FNAL", "CHIC", 10)
    with pytest.raises(KeyError):
        backbone.one_way_delay_ns("FNAL", "GHOST")
