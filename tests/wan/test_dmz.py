"""Science DMZ: firewall overhead vs the DTN bypass."""

from repro.baselines import UdpStack
from repro.netsim import Simulator, Topology, units
from repro.wan import build_campus


def build(sim):
    topo = Topology(sim)
    core = topo.add_router("core")
    source = topo.add_host("source")
    topo.connect(source, core, units.gbps(100), 1000)
    campus = build_campus(topo, "uni", uplink_of=core, uplink_delay_ns=units.milliseconds(1))
    topo.install_routes()
    return topo, source, campus


def stream(sim, source, dst_host, count=200, size=8000):
    sa = UdpStack(source)
    sb = UdpStack(dst_host)
    arrivals = []
    sb.bind(9000, on_datagram=lambda p, s: arrivals.append((sim.now, p.meta["sent_at"])))
    sock = sa.bind(1)
    for i in range(count):
        sim.schedule(i * 1000, sock.send_to, dst_host.ip, 9000, size)
    sim.run()
    return [now - sent for now, sent in arrivals]


def test_dmz_path_faster_than_firewalled(sim):
    topo, source, campus = build(sim)
    dtn_lat = stream(sim, source, campus.dtn)
    sim2 = Simulator(seed=2)
    topo2, source2, campus2 = build(sim2)
    inside_lat = stream(sim2, source2, campus2.inside)
    assert dtn_lat and inside_lat
    assert sorted(inside_lat)[len(inside_lat) // 2] > sorted(dtn_lat)[len(dtn_lat) // 2]
    assert campus2.firewall.inspected > 0


def test_firewall_rate_cap_queues_bursts(sim):
    topo, source, campus = build(sim)
    campus.firewall.min_gap_ns = units.microseconds(50)  # 20k pps appliance
    latencies = stream(sim, source, campus.inside, count=100, size=1000)
    # Arrivals spaced 1 us but inspected every 50 us: the tail waits
    # ~100 x 50 us behind the inspection queue.
    assert max(latencies) > units.microseconds(2000)


def test_all_traffic_still_delivered(sim):
    topo, source, campus = build(sim)
    latencies = stream(sim, source, campus.inside, count=50)
    assert len(latencies) == 50
