"""Circuit reservations and admission control."""

import pytest

from repro.netsim import Topology, units
from repro.wan import CircuitError, CircuitManager


@pytest.fixture
def managed(sim):
    topo = Topology(sim)
    a = topo.add_host("a")
    b = topo.add_host("b")
    link = topo.connect(a, b, units.gbps(100), 1000)
    manager = CircuitManager(headroom=0.05)
    manager.manage(link)
    return manager, link


def test_reserve_within_capacity(managed):
    manager, link = managed
    legs = manager.reserve([link.name], units.gbps(50), 0, 1000, owner="dune")
    assert len(legs) == 1
    assert manager.utilization(link.name, 500) == pytest.approx(0.5)


def test_headroom_enforced(managed):
    manager, link = managed
    with pytest.raises(CircuitError):
        manager.reserve([link.name], units.gbps(96), 0, 1000, owner="greedy")


def test_overlapping_windows_sum(managed):
    manager, link = managed
    manager.reserve([link.name], units.gbps(60), 0, 1000, owner="one")
    with pytest.raises(CircuitError):
        manager.reserve([link.name], units.gbps(40), 500, 1500, owner="two")
    # Disjoint window is fine.
    manager.reserve([link.name], units.gbps(40), 1000, 2000, owner="two")


def test_release_frees_capacity(managed):
    manager, link = managed
    legs = manager.reserve([link.name], units.gbps(90), 0, 1000, owner="one")
    assert manager.release(legs[0].circuit_id) == 1
    manager.reserve([link.name], units.gbps(90), 0, 1000, owner="two")


def test_reservable_reporting(managed):
    manager, link = managed
    manager.reserve([link.name], units.gbps(30), 0, 1000, owner="one")
    left = manager.reservable_bps(link.name, 0, 1000)
    assert left == pytest.approx(units.gbps(65), rel=0.01)


def test_atomic_multi_leg(sim):
    topo = Topology(sim)
    a, b, c = topo.add_host("a"), topo.add_host("b"), topo.add_host("c")
    l1 = topo.connect(a, b, units.gbps(100), 10)
    l2 = topo.connect(b, c, units.gbps(10), 10)
    manager = CircuitManager()
    manager.manage(l1)
    manager.manage(l2)
    # The narrow second leg must veto the whole path reservation.
    with pytest.raises(CircuitError):
        manager.reserve([l1.name, l2.name], units.gbps(50), 0, 100, owner="x")
    assert manager.utilization(l1.name, 50) == 0.0  # nothing partially booked


def test_validation(managed):
    manager, link = managed
    with pytest.raises(CircuitError):
        manager.reserve([link.name], 0, 0, 10, owner="x")
    with pytest.raises(CircuitError):
        manager.reserve([link.name], 1, 10, 10, owner="x")
    with pytest.raises(CircuitError):
        manager.reservable_bps("ghost", 0, 1)
    with pytest.raises(CircuitError):
        manager.manage(link)
