"""Fig. 2 vs Fig. 3 scenario harnesses: the paper's headline shapes."""


from repro.analysis import percentile
from repro.netsim.units import MILLISECOND
from repro.wan import MultimodalScenario, ScenarioConfig, TodayScenario


def small_config(**over):
    base = dict(
        message_count=400,
        message_interval_ns=4_000,
        wan_delay_ns=10 * MILLISECOND,
        campus_delay_ns=2 * MILLISECOND,
    )
    base.update(over)
    return ScenarioConfig(**base)


class TestToday:
    def test_lossless_run_delivers_everything(self):
        result = TodayScenario(config=small_config()).run()
        assert result.sent == 400
        assert result.storage_delivered == 400
        assert result.researcher_delivered == 400
        assert result.fct_storage_ns is not None

    def test_termination_adds_latency_stage_by_stage(self):
        result = TodayScenario(config=small_config()).run()
        p50_storage = percentile(result.storage_latencies_ns, 0.5)
        p50_researcher = percentile(result.researcher_latencies_ns, 0.5)
        assert p50_researcher > p50_storage

    def test_loss_inflates_tail_latency(self):
        clean = TodayScenario(config=small_config()).run()
        lossy = TodayScenario(config=small_config(wan_loss_rate=0.002)).run()
        assert lossy.extras["tcp_wan_retransmits"] > 0
        assert percentile(lossy.storage_latencies_ns, 0.99) > percentile(
            clean.storage_latencies_ns, 0.99
        )


class TestMultimodal:
    def test_lossless_run_delivers_everything(self):
        result = MultimodalScenario(config=small_config()).run()
        assert result.storage_delivered == 400
        assert result.researcher_delivered == 400
        assert result.extras["unrecovered"] == 0

    def test_recovery_from_nic_buffer(self):
        result = MultimodalScenario(config=small_config(wan_loss_rate=0.01)).run()
        assert result.storage_delivered == 400
        assert result.extras["naks"] > 0
        assert result.extras["naks_served_nic1"] >= 1
        assert result.extras["unrecovered"] == 0

    def test_duplication_reaches_researcher_directly(self):
        result = MultimodalScenario(
            config=small_config(duplicate_to_researcher=True)
        ).run()
        assert result.researcher_delivered >= 400
        assert result.extras["duplicated"] == 400
        # Direct copies beat the store-then-distribute path.
        p50_direct = percentile(result.researcher_latencies_ns, 0.5)
        relayed = MultimodalScenario(config=small_config()).run()
        p50_relayed = percentile(relayed.researcher_latencies_ns, 0.5)
        assert p50_direct < p50_relayed


class TestHeadToHead:
    """The Fig. 2 vs Fig. 3 comparison the paper argues for."""

    def test_mmt_beats_today_on_storage_latency(self):
        cfg = small_config()
        today = TodayScenario(config=cfg).run()
        mmt = MultimodalScenario(config=cfg).run()
        assert percentile(mmt.storage_latencies_ns, 0.5) < percentile(
            today.storage_latencies_ns, 0.5
        )

    def test_mmt_tail_latency_robust_to_loss(self):
        cfg = small_config(wan_loss_rate=0.005)
        today = TodayScenario(config=cfg).run()
        mmt = MultimodalScenario(config=cfg).run()
        assert percentile(mmt.storage_latencies_ns, 0.99) < percentile(
            today.storage_latencies_ns, 0.99
        )

    def test_both_reliable(self):
        cfg = small_config(wan_loss_rate=0.01)
        today = TodayScenario(config=cfg).run()
        mmt = MultimodalScenario(config=cfg).run()
        assert today.storage_delivered == cfg.message_count
        assert mmt.storage_delivered == cfg.message_count
