"""HDF5-lite container codec."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.payload import Dataset, Group, Hdf5LiteError, dump, load


def sample_tree():
    root = Group(name="detector1", attrs={"facility": "fnal", "run": 42})
    s = root.add(Group(name="slice0"))
    s.add(Dataset(
        name="adc",
        data=np.arange(16, dtype=np.uint16).reshape(4, 4),
        attrs={"units": "counts", "gain": 1.5},
    ))
    return root


def test_roundtrip_tree():
    data = dump(sample_tree())
    tree = load(data)
    assert tree.name == "detector1"
    assert tree.attrs == {"facility": "fnal", "run": 42}
    dataset = tree.dataset("slice0/adc")
    assert dataset.data.shape == (4, 4)
    assert dataset.data.dtype == np.dtype(">u2")
    assert dataset.attrs["gain"] == 1.5
    np.testing.assert_array_equal(dataset.data, np.arange(16).reshape(4, 4))


def test_bad_magic():
    with pytest.raises(Hdf5LiteError):
        load(b"NOPE" + dump(sample_tree())[4:])


def test_trailing_bytes_rejected():
    with pytest.raises(Hdf5LiteError):
        load(dump(sample_tree()) + b"\x00")


def test_truncation_rejected():
    data = dump(sample_tree())
    with pytest.raises(Hdf5LiteError):
        load(data[:-3])


def test_duplicate_child_names_rejected():
    g = Group(name="g")
    g.add(Group(name="x"))
    with pytest.raises(Hdf5LiteError):
        g.add(Dataset(name="x", data=np.zeros(1, dtype=np.uint16)))


def test_unsupported_dtype_rejected():
    with pytest.raises(Hdf5LiteError):
        Dataset(name="bad", data=np.zeros(2, dtype=np.complex64))


def test_dataset_path_errors():
    tree = load(dump(sample_tree()))
    with pytest.raises(KeyError):
        tree.dataset("slice0")        # group, not dataset
    with pytest.raises(KeyError):
        tree.dataset("missing/adc")


def test_scalar_and_empty_shapes():
    root = Group(name="r")
    root.add(Dataset(name="empty", data=np.zeros(0, dtype=np.int64)))
    tree = load(dump(root))
    assert tree.dataset("empty").data.size == 0


@given(
    values=st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=64),
    run=st.integers(-(2**62), 2**62),
    label=st.text(max_size=32),
)
def test_roundtrip_property(values, run, label):
    root = Group(name="root", attrs={"run": run, "label": label})
    root.add(Dataset(name="d", data=np.array(values, dtype=np.uint16)))
    tree = load(dump(root))
    assert tree.attrs["run"] == run
    assert tree.attrs["label"] == label
    np.testing.assert_array_equal(tree.dataset("d").data, np.array(values))


def test_all_dtypes_roundtrip():
    for dtype in (np.uint16, np.uint32, np.int32, np.int64, np.float32, np.float64):
        root = Group(name="r")
        root.add(Dataset(name="d", data=np.array([1, 2, 3], dtype=dtype)))
        out = load(dump(root)).dataset("d")
        np.testing.assert_array_equal(out.data.astype(dtype), np.array([1, 2, 3], dtype=dtype))
