"""In-path payload processors: transcoding, extraction, inline node."""

import numpy as np
import pytest

from repro.core import MmtStack, make_experiment_id
from repro.daq import LArTpcWaveformSynth, parse_message
from repro.netsim import Topology, units
from repro.payload import (
    InlineProcessorNode,
    TriggerPrimitiveExtractor,
    WibToHdf5Transcoder,
    load,
    parse_primitives,
)

EXP = 13
EXP_ID = make_experiment_id(EXP)


@pytest.fixture
def synth():
    return LArTpcWaveformSynth(seed=5, noise_rms=2.0, pulse_amplitude=800)


class TestTranscoder:
    def test_wib_message_becomes_container(self, synth):
        transcoder = WibToHdf5Transcoder()
        message = synth.message(detector_id=3, slice_id=1, timestamp_ticks=99, run_number=7)
        out = transcoder.process(message)
        tree = load(out)
        assert tree.name == "detector3"
        frame = tree.child("slice1").child("frame99")
        assert frame.attrs["run"] == 7
        adc = tree.dataset("slice1/frame99/adc")
        assert adc.data.shape == (256,)
        assert transcoder.transcoded == 1

    def test_adc_values_preserved_exactly(self, synth):
        transcoder = WibToHdf5Transcoder()
        message = synth.message(detector_id=1, slice_id=0, timestamp_ticks=5)
        _header, body = parse_message(message)
        from repro.daq import WibFrame

        original = WibFrame.decode(body).adc_counts
        tree = load(transcoder.process(message))
        np.testing.assert_array_equal(
            tree.dataset("slice0/frame5/adc").data, np.array(original)
        )

    def test_non_daq_payload_passes_through(self):
        transcoder = WibToHdf5Transcoder()
        blob = b"not a daq message"
        assert transcoder.process(blob) == blob
        assert transcoder.skipped == 1


class TestExtractor:
    def test_hits_become_primitives(self, synth):
        extractor = TriggerPrimitiveExtractor(threshold=200)
        message = synth.message(detector_id=1, slice_id=0, timestamp_ticks=9, hits=2)
        out = extractor.process(message)
        assert out is not None
        primitives = parse_primitives(out)
        assert primitives
        assert all(p.timestamp_ticks == 9 for p in primitives)
        assert all(p.amplitude > 200 for p in primitives)
        assert len(out) < len(message) / 4  # strong data reduction

    def test_quiet_frame_suppressed(self, synth):
        extractor = TriggerPrimitiveExtractor(threshold=200)
        message = synth.message(detector_id=1, slice_id=0, timestamp_ticks=9, hits=0)
        assert extractor.process(message) is None
        assert extractor.messages_suppressed == 1


class TestInlineNode:
    def build(self, sim, processor):
        topo = Topology(sim)
        src = topo.add_host("src", ip="10.0.0.2")
        dst = topo.add_host("dst", ip="10.0.1.2")
        node = InlineProcessorNode(
            sim, "proc", mac=topo.allocate_mac(), processor=processor
        )
        topo.add(node)
        topo.connect(src, node, units.gbps(10), 1000)
        topo.connect(node, dst, units.gbps(10), 1000)
        topo.install_routes()
        return topo, src, dst, node

    def test_payloads_transformed_in_flight(self, sim, synth):
        extractor = TriggerPrimitiveExtractor(threshold=200)
        _topo, src, dst, node = self.build(sim, extractor)
        src_stack = MmtStack(src)
        dst_stack = MmtStack(dst)
        got = []
        dst_stack.bind_receiver(EXP, on_message=lambda p, h: got.append(p.payload))
        sender = src_stack.create_sender(
            experiment_id=EXP_ID, mode="identify", dst_ip=dst.ip
        )
        hit_message = synth.message(1, 0, timestamp_ticks=1, hits=3)
        quiet_message = synth.message(1, 0, timestamp_ticks=2, hits=0)
        sender.send(len(hit_message), payload=hit_message)
        sender.send(len(quiet_message), payload=quiet_message)
        sim.run()
        # The quiet frame was suppressed in-network; the hit frame
        # arrived as compact primitives.
        assert len(got) == 1
        assert parse_primitives(got[0])
        assert node.processed == 1
        assert node.suppressed == 1

    def test_processing_adds_latency(self, sim, synth):
        transcoder = WibToHdf5Transcoder()
        _topo, src, dst, node = self.build(sim, transcoder)
        node.per_byte_ns = 10.0
        src_stack = MmtStack(src)
        dst_stack = MmtStack(dst)
        arrivals = []
        dst_stack.bind_receiver(EXP, on_message=lambda p, h: arrivals.append(sim.now))
        sender = src_stack.create_sender(
            experiment_id=EXP_ID, mode="identify", dst_ip=dst.ip
        )
        message = synth.message(1, 0, timestamp_ticks=1)
        sender.send(len(message), payload=message)
        sim.run()
        assert arrivals[0] > 10.0 * len(message)

    def test_control_traffic_untouched(self, sim):
        extractor = TriggerPrimitiveExtractor()
        _topo, src, dst, node = self.build(sim, extractor)
        from repro.core import MmtHeader, MsgType, NakPayload, SeqRange

        src_stack = MmtStack(src)
        dst_stack = MmtStack(dst)
        dst_stack.attach_buffer(1_000_000)
        header = MmtHeader(msg_type=MsgType.NAK, experiment_id=EXP_ID)
        src_stack.send_control(dst.ip, header, NakPayload(ranges=[SeqRange(0, 0)]).encode())
        sim.run()
        assert node.passthrough == 1
        assert node.processed == 0
