"""Property suite for the RED/ECN AQM (the incast grid's marking law).

Three laws the Fig. 2 head-to-head leans on, quantified over random
queue geometries and traffic:

1. the early mark/drop probability is monotone nondecreasing in the
   average queue depth (and bounded by ``max_drop_probability``);
2. under Fixed-K ECN, an ECT packet is CE-marked exactly where the
   same-state, same-draw non-ECT packet would have been dropped — the
   decision sequence is shared, only the verdict differs;
3. a same-seed replay of an arbitrary enqueue/dequeue schedule
   reproduces the mark/drop sequence event for event.
"""

from __future__ import annotations

import random

from repro.netsim import Ipv4Header, Packet, RedQueue
from repro.netsim.headers import ECN_CE, ECN_ECT0, ECN_ECT1, ECN_NOT_ECT

from .strategies import cases


def ect_packet(size: int, codepoint: int = ECN_ECT0) -> Packet:
    return Packet(headers=[Ipv4Header(src="10.0.0.1", dst="10.0.0.2",
                                      ecn=codepoint)], payload_size=size)


def plain_packet(size: int) -> Packet:
    return Packet(headers=[Ipv4Header(src="10.0.0.1", dst="10.0.0.2",
                                      ecn=ECN_NOT_ECT)], payload_size=size)


class TestMarkProbabilityMonotone:
    def test_monotone_in_average_depth(self):
        for _index, gen in cases():
            min_th = gen.integer(0, 800) / 1000
            max_th = min_th + gen.integer(0, int((1 - min_th) * 1000)) / 1000
            queue = RedQueue(
                100_000,
                min_threshold=min_th,
                max_threshold=min(max_th, 1.0),
                max_drop_probability=gen.integer(1, 1000) / 1000,
            )
            depths = sorted(gen.integer(0, 1000) / 1000 for _ in range(8))
            probs = [queue.mark_probability(depth) for depth in depths]
            for lower, higher in zip(probs, probs[1:]):
                assert lower <= higher
            for prob in probs:
                assert 0.0 <= prob <= queue.max_drop_probability

    def test_step_law_at_fixed_k(self):
        # Fixed-K degenerates to a step: 0 at or below K, max above it.
        for _index, gen in cases():
            k = gen.integer(1, 999) / 1000
            queue = RedQueue(
                100_000,
                min_threshold=k,
                max_threshold=k,
                max_drop_probability=1.0,
            )
            below = gen.integer(0, int(k * 1000)) / 1000
            above = min(1.0, k + gen.integer(1, 1000) / 1000)
            assert queue.mark_probability(below) == 0.0
            assert queue.mark_probability(above) == 1.0


class TestEctMarkVsDropEquivalence:
    def test_same_state_same_draw_same_decision(self):
        """Where the ECT packet is CE-marked, the non-ECT twin drops.

        Both queues are driven to an identical above-K state with the
        same ECT prefill under same-seed RNGs (prefill marks are
        admitted, so the states cannot diverge); then one paired test
        enqueue differs only in the codepoint.
        """
        for index, gen in cases():
            k = gen.integer(100, 600) / 1000
            probability = gen.integer(1, 999) / 1000  # < 1: the draw matters
            seed = 0xA0 + index  # per-case RNG seed, shared by both queues
            queues = [
                RedQueue(
                    100_000,
                    min_threshold=k,
                    max_threshold=k,
                    max_drop_probability=probability,
                    ewma_weight=1.0,
                    rng=random.Random(seed),
                    ecn=True,
                )
                for _ in range(2)
            ]
            # Identical ECT prefill past K (CE marks are admitted, so
            # both queues consume identical draws and hold identical bytes).
            size = gen.integer(500, 2000)
            target = int(100_000 * k) + size * gen.integer(1, 4)
            fills = 0
            while fills * size < target:
                for queue in queues:
                    assert queue.enqueue(ect_packet(size))
                fills += 1
            assert queues[0].ce_marked == queues[1].ce_marked
            marks_before = queues[0].ce_marked
            drops_before = queues[1].early_drops

            ect, plain = ect_packet(size), plain_packet(size)
            admitted_ect = queues[0].enqueue(ect)
            admitted_plain = queues[1].enqueue(plain)
            marked = queues[0].ce_marked - marks_before
            dropped = queues[1].early_drops - drops_before
            # One shared decision: marked iff the twin was dropped.
            assert marked == dropped
            if marked:
                assert admitted_ect and not admitted_plain
                assert ect.find(Ipv4Header).ecn == ECN_CE
            else:
                assert admitted_ect == admitted_plain
                assert ect.find(Ipv4Header).ecn == ECN_ECT0


class TestSameSeedReplay:
    def _run(self, schedule, seed):
        queue = RedQueue(
            50_000,
            min_threshold=0.1,
            max_threshold=0.6,
            max_drop_probability=0.5,
            ewma_weight=0.8,
            rng=random.Random(seed),
            ecn=True,
        )
        events = []
        for op, size, codepoint in schedule:
            if op == "deq":
                out = queue.dequeue()
                events.append(("deq", out.payload_size if out else None))
            else:
                packet = Packet(
                    headers=[Ipv4Header(src="10.0.0.1", dst="10.0.0.2",
                                        ecn=codepoint)],
                    payload_size=size,
                )
                admitted = queue.enqueue(packet)
                events.append(
                    ("enq", admitted, packet.find(Ipv4Header).ecn,
                     queue.ce_marked, queue.early_drops, queue.dropped)
                )
        return events

    def test_identical_mark_drop_sequences(self):
        for index, gen in cases():
            schedule = []
            for _ in range(gen.integer(20, 60)):
                if gen.boolean(0.3):
                    schedule.append(("deq", 0, 0))
                else:
                    codepoint = gen.choice(
                        (ECN_NOT_ECT, ECN_ECT0, ECN_ECT1, ECN_NOT_ECT)
                    )
                    schedule.append(("enq", gen.integer(200, 4000), codepoint))
            seed = 0xBEEF + index
            assert self._run(schedule, seed) == self._run(schedule, seed)
