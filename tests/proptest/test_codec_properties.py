"""Codec conformance properties over arbitrary valid headers."""

from repro.core import MmtHeader

from .strategies import DEFAULT_CASES, Gen, arbitrary_header, cases


def test_strategy_is_deterministic_per_seed():
    """The suite's reproducibility contract: same seed, same header."""
    first = arbitrary_header(Gen(1234))
    second = arbitrary_header(Gen(1234))
    assert first == second
    assert first.encode(validate=False) == second.encode(validate=False)


def test_roundtrip_arbitrary_headers():
    """encode → decode is the identity for every valid header, and the
    declared size always matches the wire size."""
    for index, gen in cases():
        header = arbitrary_header(gen)
        wire = header.encode()
        assert len(wire) == header.size_bytes, f"case {index} (seed {gen.seed})"
        decoded = MmtHeader.decode(wire)
        assert decoded == header, f"case {index} (seed {gen.seed})"
        assert decoded.flow_key == header.flow_key


def test_decode_prefix_consumes_exactly_the_header():
    """With arbitrary payload bytes appended, decode_prefix stops at the
    header boundary and reproduces the header."""
    for index, gen in cases():
        header = arbitrary_header(gen)
        wire = header.encode()
        payload = bytes(gen.integer(0, 255) for _ in range(gen.integer(0, 64)))
        decoded, consumed = MmtHeader.decode_prefix(wire + payload)
        assert consumed == len(wire), f"case {index} (seed {gen.seed})"
        assert decoded == header, f"case {index} (seed {gen.seed})"


def test_reencode_after_decode_is_stable():
    """decode(encode(h)).encode() is byte-identical — no field is
    normalized, lost, or reordered by a round trip."""
    for index, gen in cases():
        header = arbitrary_header(gen)
        wire = header.encode()
        again = MmtHeader.decode(wire).encode()
        assert again == wire, f"case {index} (seed {gen.seed})"


def test_case_count_is_the_advertised_volume():
    assert sum(1 for _ in cases()) == DEFAULT_CASES >= 200
