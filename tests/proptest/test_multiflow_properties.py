"""Interleaved multi-flow schedule properties.

Two layers of the same claim — concurrent flows are isolated:

- **buffer isolation** (pure, 200 cases): flows sharing one
  retransmission buffer with fully overlapping sequence spaces never
  serve each other's bytes;
- **end-to-end isolation** (simulated, 200 cases): random interleaved
  schedules over a lossy link deliver every flow completely, in
  per-flow sequence order, with recovery state never crossing flows.
"""

from repro.core import (
    MmtStack,
    MsgType,
    NakPayload,
    ReceiverConfig,
    RetransmitBuffer,
    make_experiment_id,
)
from repro.netsim import Packet, Simulator, units
from tests.conftest import TwoHostRig

from .strategies import cases, multiflow_schedule

EXP = 9
EXP_ID = make_experiment_id(EXP)


def test_flows_never_share_retransmit_state():
    """One shared buffer, N flows, identical seq spaces: every fetch
    returns the packet its own flow stored, and a NAK served for one
    flow never yields — or evicts visibility of — another's bytes."""
    for index, gen in cases():
        schedule = multiflow_schedule(gen)
        buffer = RetransmitBuffer(1 << 30, address="10.0.0.1")
        for entry in schedule:
            marker = f"f{entry.flow_id}s{entry.seq}".encode()
            packet = Packet(
                payload=marker.ljust(entry.payload_size, b"."),
            )
            buffer.store(EXP_ID, entry.seq, packet, flow_id=entry.flow_id)

        context = f"case {index} (seed {gen.seed})"
        flows = sorted({e.flow_id for e in schedule})
        per_flow = {
            f: sorted(e.seq for e in schedule if e.flow_id == f) for f in flows
        }
        for flow_id, seqs in per_flow.items():
            for seq in seqs:
                fetched = buffer.fetch(EXP_ID, seq, flow_id=flow_id)
                assert fetched is not None, context
                marker = f"f{flow_id}s{seq}".encode()
                assert fetched.payload.rstrip(b".") == marker, context
            # A NAK covering this flow's whole range is fully served by
            # its own packets; other flows' entries are invisible to it.
            nak = NakPayload.from_sequence_numbers(seqs)
            recovered, unmet = buffer.serve_nak(EXP_ID, nak, flow_id=flow_id)
            assert not unmet, context
            assert sorted(p.payload.rstrip(b".").decode() for p in recovered) == sorted(
                f"f{flow_id}s{s}" for s in seqs
            ), context
            # Seqs another flow used but this one never emitted miss.
            foreign = {s for f, ss in per_flow.items() if f != flow_id for s in ss}
            for seq in sorted(foreign - set(seqs)):
                assert buffer.fetch(EXP_ID, seq, flow_id=flow_id) is None, context

        residency = buffer.bytes_by_flow()
        assert set(residency) == {(EXP_ID, f) for f in flows}, context
        for flow_id in flows:
            expected = sum(
                e.payload_size for e in schedule if e.flow_id == flow_id
            )
            assert residency[(EXP_ID, flow_id)] == expected, context


def test_interleaved_flows_deliver_completely_and_in_order():
    """Random interleaved multi-flow schedules over a lossy link: every
    flow delivers its full stream in monotonic per-flow seq order, and
    per-flow receiver state shows no cross-flow bleed."""
    for index, gen in cases():
        sim = Simulator(seed=gen.seed & 0x7FFFFFFF)
        loss = gen.choice([0.0, 0.05, 0.15])
        rig = TwoHostRig(
            sim, middle_delay_ns=units.microseconds(200), loss_rate=loss
        )
        schedule = multiflow_schedule(gen, max_flows=3, max_messages=8)
        flows = sorted({e.flow_id for e in schedule})

        stack_a = MmtStack(rig.a)
        stack_b = MmtStack(rig.b)
        stack_a.attach_buffer(50_000_000)
        delivered: dict[int, list[tuple[int, bool]]] = {f: [] for f in flows}
        receiver = stack_b.bind_receiver(
            EXP,
            on_message=lambda p, h: delivered[h.flow_id].append(
                (h.seq, h.msg_type == MsgType.RETX_DATA)
            ),
            config=ReceiverConfig(initial_rtt_ns=units.milliseconds(1)),
        )
        senders = {
            f: stack_a.create_sender(
                experiment_id=EXP_ID,
                mode="age-recover",
                dst_ip=rig.b.ip,
                age_budget_ns=units.seconds(1),
                buffer_local=True,
                flow_id=f,
            )
            for f in flows
        }
        gap_ns = units.microseconds(5)
        for step, entry in enumerate(schedule):
            sim.schedule(
                step * gap_ns, senders[entry.flow_id].send, entry.payload_size
            )
        sim.schedule(
            len(schedule) * gap_ns,
            lambda: [sender.finish() for sender in senders.values()],
        )
        sim.run()
        counts = {f: sum(1 for e in schedule if e.flow_id == f) for f in flows}
        for f in flows:
            receiver.request_missing(EXP_ID, counts[f], flow_id=f)
        sim.run()

        context = f"case {index} (seed {gen.seed}, loss {loss})"
        for f in flows:
            seqs = [seq for seq, _retx in delivered[f]]
            # Complete, duplicate-free delivery per flow, always.
            assert sorted(seqs) == list(range(counts[f])), context
            # Monotonicity: the path is FIFO and senders emit in order,
            # so *original* transmissions arrive in seq order per flow;
            # only recovered packets may fill in late.
            originals = [seq for seq, retx in delivered[f] if not retx]
            assert originals == sorted(originals), context
            if loss == 0.0:
                assert seqs == list(range(counts[f])), context
            assert receiver.unrecovered_for(EXP_ID, flow_id=f) == 0, context
        summary = receiver.flow_summary()
        for f in flows:
            row = summary[(EXP_ID, f)]
            assert row["delivered"] == counts[f], context
            assert row["outstanding"] == 0, context
        if loss == 0.0:
            # No loss: recovery machinery for every flow must stay idle.
            assert all(
                summary[(EXP_ID, f)]["retransmissions"] == 0 for f in flows
            ), context
