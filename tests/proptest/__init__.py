"""Seeded-random property-based conformance suite (no external deps)."""
