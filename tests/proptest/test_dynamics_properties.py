"""Conformance properties of the time-varying link dynamics.

The replay contract under test: a trajectory is a pure function of the
engine clock (identical samples for identical specs), the driver's
application times land *exactly* on waypoint boundaries (never a
rounded grid point), and scheduled Gilbert–Elliott parameter drift
never perturbs the loss-draw sequence shape — replays from one seed
are byte-identical.
"""

from __future__ import annotations

import random

from repro.faults import GilbertElliottLoss, LinkDynamics, Trajectory
from repro.netsim import Simulator

from tests.conftest import TwoHostRig
from tests.proptest.strategies import Gen, cases


def arbitrary_trajectory_spec(gen: Gen) -> dict:
    """A valid Trajectory constructor argument set, as plain data so the
    same spec can build the curve twice."""
    count = gen.integer(1, 6)
    times, t = [], 0
    for i in range(count):
        t += gen.integer(0 if i == 0 else 1, 1_000_000)
        times.append(t)
    waypoints = [(t, float(gen.integer(1, 10**9))) for t in times]
    interpolate = gen.choice(("step", "linear"))
    period_ns = None
    if times[0] == 0 and gen.boolean(0.3):
        period_ns = times[-1] + gen.integer(1, 1_000_000)
    return {
        "waypoints": waypoints,
        "interpolate": interpolate,
        "period_ns": period_ns,
    }


class TestTrajectoryDeterminism:
    def test_same_spec_same_samples(self):
        """Two curves built from one spec agree at 64 arbitrary times."""
        for _index, gen in cases():
            spec = arbitrary_trajectory_spec(gen)
            first = Trajectory(**spec)
            second = Trajectory(**spec)
            for _ in range(64):
                t = gen.integer(0, 4_000_000)
                assert first.value_at(t) == second.value_at(t)

    def test_value_at_is_pure(self):
        """Sampling in any order never changes the answer."""
        for _index, gen in cases(count=50):
            curve = Trajectory(**arbitrary_trajectory_spec(gen))
            times = [gen.integer(0, 4_000_000) for _ in range(32)]
            forward = [curve.value_at(t) for t in times]
            backward = [curve.value_at(t) for t in reversed(times)]
            assert forward == list(reversed(backward))

    def test_change_times_hits_every_boundary_exactly(self):
        """Every waypoint inside the window appears verbatim — boundaries
        are never displaced onto a sampling grid."""
        for _index, gen in cases():
            spec = arbitrary_trajectory_spec(gen)
            curve = Trajectory(**spec)
            end = spec["waypoints"][-1][0] + gen.integer(0, 1_000_000)
            sample_every = gen.integer(1, 500_000)
            times = curve.change_times(0, end, sample_every_ns=sample_every)
            assert times == sorted(set(times))
            for t, _v in spec["waypoints"]:
                if t <= end:
                    assert t in times
            assert all(0 <= t <= end for t in times)
            if spec["interpolate"] == "step" and spec["period_ns"] is None:
                # Step curves change only at boundaries: nothing else.
                boundary_set = {t for t, _v in spec["waypoints"]}
                assert set(times) <= boundary_set


class TestDriverOnClock:
    def test_step_boundaries_apply_on_the_exact_tick(self):
        """Run a seeded sim to one tick before a boundary and then onto
        it: the link's rate flips exactly at ``start + waypoint``."""
        for index, gen in cases(count=25):
            sim = Simulator(seed=index)
            rig = TwoHostRig(sim)
            link = rig.link_b
            r0 = link.rate_bps
            flip_at = gen.integer(1, 1_000_000)
            start = gen.integer(0, 1_000_000)
            dynamics = LinkDynamics(
                link,
                rate_bps=Trajectory([(0, r0), (flip_at, r0 // 2)]),
                start_ns=start,
            )
            dynamics.arm()
            sim.run(until_ns=start + flip_at - 1)
            assert link.rate_bps == r0
            sim.run(until_ns=start + flip_at)
            assert link.rate_bps == r0 // 2
            sim.run()
            assert dynamics.applied == len(dynamics)

    def test_driver_replays_identically(self):
        """Two seeded runs of one dynamics spec apply identical values:
        identical stats on the link afterwards."""
        for index, gen in cases(count=25):
            spec = arbitrary_trajectory_spec(gen)
            sample_every = gen.integer(1, 500_000)

            def run_once() -> tuple[int, int, int]:
                sim = Simulator(seed=1000 + index)
                link = TwoHostRig(sim).link_b
                dynamics = LinkDynamics(
                    link,
                    rate_bps=Trajectory(**spec),
                    end_ns=spec["waypoints"][-1][0],
                    sample_every_ns=sample_every,
                )
                dynamics.arm()
                sim.run()
                return (
                    link.stats.rate_changes,
                    link.stats.current_rate_bps,
                    dynamics.applied,
                )

            assert run_once() == run_once()


class TestGilbertElliottDriftReplay:
    def test_drift_schedule_replays_identical_draws(self):
        """One seed, one drift schedule, two runs: the drop sequence is
        identical — drift rewrites parameters without touching the
        regime state or the RNG stream."""
        for index, gen in cases(count=100):
            p_gb = gen.integer(1, 50) / 100.0
            p_bg = gen.integer(1, 50) / 100.0
            loss_bad = gen.integer(1, 100) / 100.0
            draws = gen.integer(10, 200)
            drift_after = gen.integer(0, draws)
            drifted = {
                "p_good_to_bad": gen.integer(1, 99) / 100.0,
                "loss_bad": gen.integer(0, 100) / 100.0,
            }

            def run_once() -> list[bool]:
                model = GilbertElliottLoss(p_gb, p_bg, 0.0, loss_bad)
                rng = random.Random(9000 + index)
                out = []
                for i in range(draws):
                    if i == drift_after:
                        model.set_params(**drifted)
                    out.append(model.should_drop(None, rng))
                return out

            assert run_once() == run_once()

    def test_drift_preserves_draw_shape_before_the_drift(self):
        """Draws *before* the drift point match an undrifted model's:
        scheduling a future drift cannot perturb the past."""
        for index, gen in cases(count=50):
            p_gb = gen.integer(1, 50) / 100.0
            draws = gen.integer(20, 100)
            drift_after = gen.integer(10, draws)

            def run(drift: bool) -> list[bool]:
                model = GilbertElliottLoss(p_gb, 0.3, 0.0, 0.5)
                rng = random.Random(7000 + index)
                out = []
                for i in range(drift_after):
                    out.append(model.should_drop(None, rng))
                if drift:
                    model.set_params(loss_bad=0.9)
                return out

            assert run(True) == run(False)
