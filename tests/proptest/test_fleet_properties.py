"""Sticky-calendar properties of the farm balancer.

Three layers of the same claim — steering is a *function* of the table
generation:

- **totality + per-epoch consistency** (pure, 200 cases): random
  interleavings of route/drain/crash/recover/load ops always steer to a
  registered backend, and within one epoch every ``(flow, tick)`` key
  maps to exactly one backend (the generator keeps ≥ 1 backend live,
  as the control loop does — with *every* backend dead the degraded
  tiebreak may legitimately wander);
- **replay** (pure, 200 cases): the same seed replays to an identical
  steering log and identical route results;
- **farm replay** (simulated, 5 cases): two identical lossy farm runs
  with a mid-run node crash produce byte-identical steering logs.
"""

from repro.core import make_experiment_id
from repro.dataplane import LoadBalancerProgram
from repro.fleet import FarmConfig, ReceiverFarm
from repro.netsim import Simulator

from .strategies import Gen, cases

EXP_ID = make_experiment_id(17)


def balancer_ops(gen: Gen) -> tuple[dict, list[tuple]]:
    """A random but *operable* op sequence: route calls dominate, and
    liveness ops never take the last live backend down."""
    params = {
        "backends": [f"10.40.0.{i + 2}" for i in range(gen.integer(2, 5))],
        "window": gen.integer(1, 8),
        "flows": gen.integer(1, 3),
    }
    ops: list[tuple] = []
    live = set(params["backends"])
    max_seq = params["window"] * 24
    for _ in range(gen.integer(30, 80)):
        roll = gen.integer(0, 99)
        if roll < 70:
            ops.append((
                "route",
                gen.integer(0, params["flows"] - 1),
                gen.integer(0, max_seq),
                gen.boolean(0.2),
            ))
        elif roll < 80:
            ops.append(("report_load", gen.choice(params["backends"]),
                        gen.integer(0, 100)))
        elif roll < 88 and len(live) > 1:
            victim = gen.choice(sorted(live))
            live.discard(victim)
            ops.append(("mark_down", victim))
        elif roll < 94 and len(live) < len(params["backends"]):
            back = gen.choice(sorted(set(params["backends"]) - live))
            live.add(back)
            ops.append(("mark_up", back))
        elif roll < 97:
            ops.append(("drain", gen.choice(params["backends"])))
        else:
            ops.append(("undrain", gen.choice(params["backends"])))
    return params, ops


def apply_ops(params: dict, ops: list[tuple]):
    """Run the ops; return (balancer, route results with their epoch)."""
    balancer = LoadBalancerProgram(
        EXP_ID, backends=list(params["backends"]),
        window=params["window"], record_log=True,
    )
    routed = []
    for op, *op_args in ops:
        if op == "route":
            fid, seq, is_retx = op_args
            backend = balancer.route(fid, seq, is_retx=is_retx)
            routed.append((balancer.epoch, fid, seq, backend))
        else:
            getattr(balancer, op)(*op_args)
    return balancer, routed


def test_steering_is_total_and_per_epoch_consistent():
    for index, gen in cases():
        params, ops = balancer_ops(gen)
        balancer, routed = apply_ops(params, ops)
        context = f"case {index} (seed {gen.seed})"
        # Totality: every route decision names a registered backend.
        for _epoch, _fid, _seq, backend in routed:
            assert backend in params["backends"], context
        # Consistency: within one epoch, one backend per (flow, tick) —
        # over every recorded decision, including control-plane remaps.
        owner: dict[tuple[int, int, int], str] = {}
        for record in balancer.steering_log:
            key = (record.epoch, record.flow_id, record.tick)
            assert owner.setdefault(key, record.backend) == record.backend, (
                f"{context}: {key} steered to both "
                f"{owner[key]} and {record.backend}"
            )


def test_same_seed_replays_identical_steering():
    for index, gen in cases():
        params, ops = balancer_ops(gen)
        replay_gen = Gen(gen.seed)
        replay_params, replay_ops = balancer_ops(replay_gen)
        assert (params, ops) == (replay_params, replay_ops)
        balancer_a, routed_a = apply_ops(params, ops)
        balancer_b, routed_b = apply_ops(replay_params, replay_ops)
        context = f"case {index} (seed {gen.seed})"
        assert routed_a == routed_b, context
        assert balancer_a.steering_log == balancer_b.steering_log, context
        assert balancer_a.epoch == balancer_b.epoch, context


def test_farm_replay_is_byte_identical():
    """Whole-farm determinism: same seed, same fault plan → the same
    steering decisions in the same order, crash repair included."""
    for index, gen in cases(count=5):
        seed = gen.integer(0, 2**31)
        nodes = gen.integer(2, 4)
        victim = gen.integer(0, nodes - 1)

        def run_once():
            farm = ReceiverFarm(
                sim=Simulator(seed=seed),
                config=FarmConfig(
                    nodes=nodes, flows=2, window=4,
                    wan_loss_rate=0.02, record_steering=True,
                ),
            )
            for fid in range(2):
                farm.send_stream(30, payload_size=1500,
                                 interval_ns=2_000, flow=fid)
            crash_at = 15 * 2_000 + 1_000  # mid-stream, off-tick
            farm.sim.schedule(crash_at, farm.crash_node, victim)
            report = farm.run()
            return report, list(farm.balancer.steering_log)

        report_a, log_a = run_once()
        report_b, log_b = run_once()
        context = f"case {index} (seed {gen.seed})"
        assert log_a == log_b, context
        assert report_a.delivered == report_b.delivered, context
        assert report_a.retransmissions == report_b.retransmissions, context
