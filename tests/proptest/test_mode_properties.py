"""Mode-transition sequence properties: validity and flow identity."""

from repro.core import (
    Feature,
    MmtHeader,
    TransitionContext,
    extended_registry,
    transition,
)

from .strategies import cases

#: A context rich enough to activate any mode in the extended registry.
FULL_CONTEXT = dict(
    now_ns=5,
    seq=1,
    buffer_addr="10.1.1.1",
    deadline_ns=10_000,
    notify_addr="10.2.2.2",
    age_budget_ns=1_000,
    pace_rate_mbps=100,
    source_addr="10.3.3.3",
    dup_group=1,
    dup_copies=2,
)


def test_random_transition_sequences_stay_valid():
    """Any walk through the mode registry leaves the header valid, in
    the target mode, and with its flow identity intact.

    Flow identity is orthogonal to modes (like the experiment id): a
    tagged header stays tagged with the same flow id through every
    rewrite, and an untagged header never *gains* a tag.
    """
    registry = extended_registry()
    modes = list(registry)
    for index, gen in cases():
        tagged = gen.boolean()
        flow_id = gen.integer(0, 2**16 - 1) if tagged else None
        header = MmtHeader(config_id=0, experiment_id=gen.integer(0, 2**32 - 1))
        if tagged:
            header.features |= Feature.FLOW_ID
            header.flow_id = flow_id
        expected_key = header.flow_key

        for _step in range(gen.integer(1, 6)):
            target = gen.choice(modes)
            transition(header, target, TransitionContext(**FULL_CONTEXT))
            context = f"case {index} (seed {gen.seed}) -> {target.name}"
            header.validate()
            assert header.config_id == target.config_id, context
            assert header.has(Feature.FLOW_ID) == tagged, context
            assert header.flow_id == flow_id, context
            assert header.flow_key == expected_key, context


def test_transitioned_headers_roundtrip_the_codec():
    """A header that has been through random transitions still encodes
    and decodes byte-exactly (transition never leaves half-set state)."""
    registry = extended_registry()
    modes = list(registry)
    for index, gen in cases():
        header = MmtHeader(config_id=0, experiment_id=gen.integer(0, 2**32 - 1))
        if gen.boolean():
            header.features |= Feature.FLOW_ID
            header.flow_id = gen.integer(0, 2**16 - 1)
        for _step in range(gen.integer(1, 4)):
            transition(header, gen.choice(modes), TransitionContext(**FULL_CONTEXT))
        wire = header.encode()
        assert MmtHeader.decode(wire) == header, f"case {index} (seed {gen.seed})"
