"""Seeded-random strategies for the conformance property suite.

A deliberately tiny, dependency-free stand-in for a property-testing
library: every test iterates :func:`cases`, which derives one
:class:`Gen` (a wrapped ``random.Random``) per case from the global
suite seed and the case index. Failures therefore reproduce exactly —
rerun the test and case N draws the same values — and the suite never
depends on anything outside the standard library.

Strategies here generate the domain objects the conformance properties
quantify over: arbitrary *valid* MMT headers (every feature combination
with in-range field values), mode-transition sequences, and interleaved
multi-flow packet schedules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core import AckScheme, Feature, MmtHeader, MsgType

#: Cases per property. ~200 gives good combination coverage while the
#: whole suite stays in single-digit seconds.
DEFAULT_CASES = 200

#: Global suite seed; change it and every property explores new ground
#: (deterministically).
SUITE_SEED = 0xE1EFA27


class Gen:
    """One case's value source: a seeded ``random.Random`` with draws
    named for what they generate."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def integer(self, low: int, high: int) -> int:
        """Inclusive on both ends, like ``random.randint``."""
        return self._rng.randint(low, high)

    def boolean(self, probability: float = 0.5) -> bool:
        return self._rng.random() < probability

    def choice(self, options):
        return self._rng.choice(list(options))

    def shuffled(self, items) -> list:
        out = list(items)
        self._rng.shuffle(out)
        return out

    def ipv4(self) -> str:
        return ".".join(str(self.integer(0, 255)) for _ in range(4))


def cases(count: int = DEFAULT_CASES, seed: int = SUITE_SEED):
    """Yield ``(index, Gen)`` pairs, one per case, deterministic in
    ``(seed, index)`` — the knuthian multiplier decorrelates adjacent
    case streams."""
    for index in range(count):
        yield index, Gen(seed + index * 2_654_435_761)


# -- headers -------------------------------------------------------------------


def arbitrary_header(gen: Gen) -> MmtHeader:
    """Any valid header: random feature combination, in-range values.

    Mirrors the field domains of :meth:`MmtHeader.validate` exactly, so
    every generated header must round-trip the codec byte-for-byte.
    """
    features = Feature(gen.integer(0, int(Feature.all_defined())))
    header = MmtHeader(
        config_id=gen.integer(0, 255),
        features=features,
        msg_type=gen.choice(MsgType),
        ack_scheme=gen.choice(AckScheme),
        experiment_id=gen.integer(0, 2**32 - 1),
    )
    if features & Feature.SEQUENCED:
        header.seq = gen.integer(0, 2**32 - 1)
    if features & Feature.RETRANSMISSION:
        header.buffer_addr = gen.ipv4()
    if features & Feature.TIMELINESS:
        header.deadline_ns = gen.integer(0, 2**64 - 1)
        header.notify_addr = gen.ipv4()
    if features & Feature.AGE_TRACKING:
        header.age_ns = gen.integer(0, 2**64 - 1)
        header.age_budget_ns = gen.integer(0, 2**64 - 1)
        header.aged = gen.boolean()
    if features & Feature.PACING:
        header.pace_rate_mbps = gen.integer(0, 2**32 - 1)
    if features & Feature.BACKPRESSURE:
        header.source_addr = gen.ipv4()
    if features & Feature.DUPLICATION:
        header.dup_group = gen.integer(0, 2**16 - 1)
        header.dup_copies = gen.integer(0, 255)
    if features & Feature.FLOW_ID:
        header.flow_id = gen.integer(0, 2**16 - 1)
    return header


# -- multi-flow schedules ------------------------------------------------------


@dataclass(frozen=True)
class ScheduleEntry:
    """One packet of an interleaved multi-flow schedule."""

    flow_id: int
    seq: int
    payload_size: int


def multiflow_schedule(
    gen: Gen, max_flows: int = 4, max_messages: int = 12
) -> list[ScheduleEntry]:
    """A random interleaving of several flows' sequenced streams.

    Every flow emits seqs ``0..n_f-1``; the interleaving across flows is
    arbitrary but each flow's own entries stay in seq order (senders
    emit in order — the *network* may reorder, the schedule may not).
    """
    flows = gen.integer(2, max_flows)
    per_flow = {f: gen.integer(1, max_messages) for f in range(flows)}
    tokens = [f for f, n in per_flow.items() for _ in range(n)]
    tokens = gen.shuffled(tokens)
    next_seq = dict.fromkeys(per_flow, 0)
    schedule = []
    for flow_id in tokens:
        schedule.append(
            ScheduleEntry(
                flow_id=flow_id,
                seq=next_seq[flow_id],
                payload_size=gen.integer(64, 1400),
            )
        )
        next_seq[flow_id] += 1
    return schedule
