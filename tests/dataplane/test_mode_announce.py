"""MODE_ANNOUNCE control messaging (§4.2)."""


from repro.core import ModeAnnouncePayload, MmtStack, make_experiment_id
from repro.core.modes import pilot_registry
from repro.dataplane import (
    BufferTapProgram,
    ModeTransitionProgram,
    ProgrammableElement,
    TransitionRule,
)
from repro.netsim import Topology, units

EXP = 5
EXP_ID = make_experiment_id(EXP)


def test_payload_roundtrip():
    announce = ModeAnnouncePayload(config_id=2, element="10.0.0.9", at_ns=123456)
    assert ModeAnnouncePayload.decode(announce.encode()) == announce


def build(sim, announce=True):
    topo = Topology(sim)
    src = topo.add_host("src", ip="10.0.0.2")
    dst = topo.add_host("dst", ip="10.0.9.2")
    element = ProgrammableElement(sim, "e1", mac=topo.allocate_mac(), ip="10.0.1.1")
    topo.add(element)
    topo.connect(src, element, units.gbps(10), 1000)
    topo.connect(element, dst, units.gbps(10), 1000)
    topo.install_routes()
    registry = pilot_registry()
    program = ModeTransitionProgram(
        registry,
        [TransitionRule(from_config_id=0, to_mode="age-recover",
                        buffer_addr=element.ip, age_budget_ns=units.seconds(1))],
        announce_to_source=announce,
    )
    program.install(element)
    element.attach_buffer(1_000_000)
    BufferTapProgram(buffer_addr=element.ip).install(element)
    src_stack = MmtStack(src, registry)
    dst_stack = MmtStack(dst, registry)
    dst_stack.bind_receiver(EXP)
    sender = src_stack.create_sender(experiment_id=EXP_ID, mode="identify", dst_ip=dst.ip)
    return src_stack, sender, program, element


def test_source_learns_downstream_mode(sim):
    src_stack, sender, program, element = build(sim)
    seen = []
    src_stack.on_mode_announce = lambda eid, a: seen.append((eid, a))
    for _ in range(20):
        sender.send(500)
    sender.finish()
    sim.run()
    # Exactly one announcement per flow, however many packets flow.
    history = src_stack.mode_announcements[EXP_ID]
    assert len(history) == 1
    assert history[0].config_id == 1  # "age-recover"
    assert history[0].element == element.ip
    assert program.announcements_sent == 1
    assert seen and seen[0][0] == EXP_ID


def test_no_announcement_when_disabled(sim):
    src_stack, sender, program, _element = build(sim, announce=False)
    for _ in range(5):
        sender.send(500)
    sender.finish()
    sim.run()
    assert src_stack.mode_announcements == {}
    assert program.announcements_sent == 0


def test_per_flow_deduplication(sim):
    """Two slices of the same experiment are distinct flows: each gets
    its own (single) announcement."""
    src_stack, _sender, program, _element = build(sim)
    other = src_stack.create_sender(
        experiment_id=make_experiment_id(EXP, 3), mode="identify",
        dst_ip="10.0.9.2", flow="slice3",
    )
    for _ in range(10):
        _sender.send(100)
        other.send(100)
    sim.run()
    assert program.announcements_sent == 2
    assert len(src_stack.mode_announcements) == 2
