"""Segment-local (hop-by-hop) recovery."""

import pytest

from repro.core import MmtStack, ReceiverConfig, make_experiment_id
from repro.dataplane import (
    AgeUpdateProgram,
    BufferTapProgram,
    ModeTransitionProgram,
    ProgrammableElement,
    SegmentRecoveryProgram,
    TransitionRule,
)
from repro.core.modes import pilot_registry
from repro.netsim import Simulator, Topology, units

EXP = 18
EXP_ID = make_experiment_id(EXP)


def build(sim, mid_loss=0.05, last_loss=0.0, segment_recovery=True):
    """src - e1(buffer, transitions) ==lossy== e2(buffer, repair) - dst."""
    topo = Topology(sim)
    src = topo.add_host("src", ip="10.0.0.2")
    dst = topo.add_host("dst", ip="10.0.9.2")
    e1 = ProgrammableElement(sim, "e1", mac=topo.allocate_mac(), ip="10.0.1.1")
    e2 = ProgrammableElement(sim, "e2", mac=topo.allocate_mac(), ip="10.0.2.1")
    topo.add(e1)
    topo.add(e2)
    topo.connect(src, e1, units.gbps(10), units.milliseconds(1))
    topo.connect(e1, e2, units.gbps(10), units.milliseconds(5), loss_rate=mid_loss)
    topo.connect(e2, dst, units.gbps(10), units.milliseconds(1), loss_rate=last_loss)
    topo.install_routes()

    registry = pilot_registry()
    ModeTransitionProgram(registry, [
        TransitionRule(from_config_id=0, to_mode="age-recover",
                       buffer_addr=e1.ip, age_budget_ns=units.seconds(1)),
    ]).install(e1)
    e1.attach_buffer(256 * 1024 * 1024)
    BufferTapProgram(buffer_addr=e1.ip).install(e1)
    AgeUpdateProgram().install(e1)

    e2.attach_buffer(256 * 1024 * 1024)
    e2.nak_fallback_addr = e1.ip  # chained buffers, as placement wires them
    BufferTapProgram(buffer_addr=e2.ip).install(e2)
    recovery = None
    if segment_recovery:
        recovery = SegmentRecoveryProgram(
            upstream_buffer_addr=e1.ip,
            reorder_wait_ns=units.microseconds(200),
            retry_interval_ns=units.milliseconds(25),
        )
        recovery.install(e2)

    src_stack = MmtStack(src, registry)
    dst_stack = MmtStack(dst, registry)
    got = []
    # A *patient* receiver: with in-network repair deployed, the
    # destination defers its own NAKs long enough for the segment to
    # heal itself (25 ms > one e2->e1 repair round trip).
    receiver = dst_stack.bind_receiver(
        EXP, on_message=lambda p, h: got.append(h),
        config=ReceiverConfig(
            initial_rtt_ns=units.milliseconds(6),
            reorder_wait_ns=units.milliseconds(25),
        ),
    )
    sender = src_stack.create_sender(experiment_id=EXP_ID, mode="identify", dst_ip=dst.ip)
    return topo, src, dst, e1, e2, recovery, sender, receiver, got


def run_stream(sim, sender, receiver, count=400):
    for i in range(count):
        sim.schedule(i * 20_000, sender.send, 1500)
    sim.run()
    receiver.request_missing(EXP_ID, count)
    sim.run()


class TestSegmentRepair:
    def test_mid_segment_losses_healed_in_network(self, sim):
        _topo, _src, _dst, e1, e2, recovery, sender, receiver, got = build(sim)
        run_stream(sim, sender, receiver)
        assert {h.seq for h in got} == set(range(400))
        assert recovery.stats.gaps_detected > 0
        assert recovery.stats.naks_sent > 0
        assert recovery.stats.repairs_forwarded > 0
        # The element repaired upstream losses in-network; the receiver
        # only ever NAKs for the tail (end-of-run reconciliation),
        # never for mid-stream gaps.
        assert receiver.stats.naks_sent <= 3
        assert receiver.stats.unrecovered == 0

    def test_destination_latency_better_with_segment_repair(self):
        """In-network repair saves the destination's NAK round trip for
        upstream losses: worst-case delivery latency shrinks."""
        def worst_latency(segment_recovery):
            sim = Simulator(seed=88)
            _t, _s, _d, _e1, _e2, _rec, sender, receiver, _got = build(
                sim, mid_loss=0.08, segment_recovery=segment_recovery
            )
            run_stream(sim, sender, receiver, count=500)
            assert receiver.stats.unrecovered == 0
            return max(lat for _t2, lat in receiver.delivery_log)

        assert worst_latency(True) < worst_latency(False)

    def test_repairs_cached_locally_for_downstream(self, sim):
        """A repaired packet is stored at the repairing element, so a
        *later* downstream loss of the same seq recovers from there."""
        _topo, _src, _dst, e1, e2, recovery, sender, receiver, got = build(sim)
        run_stream(sim, sender, receiver, count=200)
        # Every repaired seq is now in e2's buffer.
        for seq in recovery._flows[EXP_ID].repaired:
            from repro.core.seqspace import wrap

            assert e2.buffer.holds(EXP_ID, wrap(seq))

    def test_losses_on_final_hop_fall_back_to_receiver_naks(self, sim):
        _topo, _src, _dst, _e1, e2, recovery, sender, receiver, got = build(
            sim, mid_loss=0.0, last_loss=0.05
        )
        run_stream(sim, sender, receiver)
        assert {h.seq for h in got} == set(range(400))
        assert recovery.stats.naks_sent == 0  # nothing lost upstream
        assert receiver.stats.naks_sent > 0   # receiver handled its hop
        # And the receiver's NAKs were served by e2 (nearest), not e1.
        assert e2.stats.naks_served > 0

    def test_requires_element_ip(self, sim):
        element = ProgrammableElement(sim, "bare", mac="02:00:00:00:00:01")
        with pytest.raises(ValueError):
            SegmentRecoveryProgram(upstream_buffer_addr="10.0.0.1").install(element)
