"""Golden-replay pins: the pilot's wire trace is part of the contract.

Taps every link of the pilot topology and digests every MMT packet
crossing it — time, link, direction, exact header bytes, payload size.
The digests below are committed; any change to header layout, codec
byte order, event scheduling, or relay behavior shows up here as a
digest mismatch *before* it silently invalidates recorded experiments.

Two pins:

- ``flows=1`` — the historical single-flow pilot. This digest predates
  the multi-flow work and MUST survive it unchanged: untagged traffic
  never carries the FLOW_ID extension, so multi-flow support is
  invisible to every existing trace.
- ``flows=2`` — the tagged two-flow pilot, pinning the multi-flow wire
  behavior (FLOW_ID bytes, per-flow sequencing, DRR relay order).

If a change *intentionally* alters the wire trace, update the digest
here in the same commit and say why in the commit message.
"""

import hashlib

from repro.core.header import MmtHeader
from repro.dataplane import PilotConfig, PilotTestbed
from repro.netsim import Simulator

GOLDEN_SEED = 7
GOLDEN_MESSAGES = 48
GOLDEN_PAYLOAD = 4000
GOLDEN_INTERVAL_NS = 2000

#: sha256 over the newline-joined trace lines (see :func:`wire_trace`).
GOLDEN_DIGEST_1FLOW = "38fdc88cc93ea9476f6f25462001b0ea8e1bcba5387a8fbd2a57c7abd0118ebd"
GOLDEN_RECORDS_1FLOW = 288
GOLDEN_DIGEST_2FLOW = "97c9db9c85829ca69c17fa636c67e40139d0f10892e0d4326102ce3b4bd96f16"
GOLDEN_RECORDS_2FLOW = 288


def wire_trace(flows: int) -> list[str]:
    """Run the golden pilot scenario; return one line per MMT packet
    delivery: ``time|link:src->dst|header-bytes-hex|payload-size``."""
    pilot = PilotTestbed(
        sim=Simulator(seed=GOLDEN_SEED), config=PilotConfig(flows=flows)
    )
    lines: list[str] = []
    for link in pilot.topology.links:
        end_a, end_b = link.ends
        for port, peer in ((end_a, end_b), (end_b, end_a)):

            def tapped(
                packet,
                _orig=port.deliver,
                _port=port,
                _label=f"{link.name}:{peer.node.name}->{port.node.name}",
            ):
                mmt = packet.find(MmtHeader)
                if mmt is not None:
                    lines.append(
                        f"{_port.sim.now}|{_label}|"
                        f"{mmt.encode(validate=False).hex()}|{packet.payload_size}"
                    )
                _orig(packet)

            port.deliver = tapped
    if flows > 1:
        for fid in range(flows):
            pilot.send_stream(
                GOLDEN_MESSAGES // flows,
                payload_size=GOLDEN_PAYLOAD,
                interval_ns=GOLDEN_INTERVAL_NS,
                flow=fid,
            )
    else:
        pilot.send_stream(
            GOLDEN_MESSAGES,
            payload_size=GOLDEN_PAYLOAD,
            interval_ns=GOLDEN_INTERVAL_NS,
        )
    report = pilot.run()
    assert report.complete, "golden scenario must deliver everything"
    return lines


def digest(lines: list[str]) -> str:
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def test_single_flow_trace_matches_golden_digest():
    lines = wire_trace(flows=1)
    assert len(lines) == GOLDEN_RECORDS_1FLOW
    assert digest(lines) == GOLDEN_DIGEST_1FLOW
    # The single-flow pilot never tags packets: no FLOW_ID extension
    # may appear anywhere in its trace.
    for line in lines:
        header = MmtHeader.decode(bytes.fromhex(line.split("|")[2]))
        assert header.flow_id is None


def test_two_flow_trace_matches_golden_digest():
    lines = wire_trace(flows=2)
    assert len(lines) == GOLDEN_RECORDS_2FLOW
    assert digest(lines) == GOLDEN_DIGEST_2FLOW
    # Every data packet is tagged and both flows appear on the wire.
    flow_ids = {
        header.flow_id
        for line in lines
        if (header := MmtHeader.decode(bytes.fromhex(line.split("|")[2]))).flow_id
        is not None
    }
    assert flow_ids == {0, 1}


def test_two_flow_replay_is_byte_identical():
    """Same seed, same config → the full trace (not just its digest)
    replays byte-for-byte, line by line."""
    first = wire_trace(flows=2)
    second = wire_trace(flows=2)
    assert first == second
