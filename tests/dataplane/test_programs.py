"""The MMT dataplane programs, unit-tested on a bare element."""

import pytest

from repro.core import (
    AGE_EPOCH_META,
    BufferDirectory,
    Feature,
    MmtHeader,
    MsgType,
    pilot_registry,
)
from repro.dataplane import (
    AgeUpdateProgram,
    BackpressureProgram,
    BufferTapProgram,
    DeadlineEnforceProgram,
    DuplicationProgram,
    Metadata,
    ModeTransitionProgram,
    NearestBufferProgram,
    ProgrammableElement,
    TransitionRule,
)
from repro.netsim import EthernetHeader, Ipv4Header, Packet


@pytest.fixture
def element(sim):
    return ProgrammableElement(sim, "el", mac="02:00:00:00:00:01", ip="10.0.0.50")


def mmt_packet(header=None, **kwargs):
    return Packet(
        headers=[EthernetHeader(), Ipv4Header(dst="10.9.9.9"), header or MmtHeader(**kwargs)],
        payload_size=200,
    )


def run_pipeline(element, packet, **meta_kwargs):
    meta = Metadata(now_ns=element.sim.now, **meta_kwargs)
    element.pipeline.process(packet, meta)
    return meta


class TestModeTransition:
    def test_mode0_data_transitions(self, element):
        program = ModeTransitionProgram(
            pilot_registry(),
            [TransitionRule(from_config_id=0, to_mode="age-recover",
                            buffer_addr="10.0.0.50", age_budget_ns=5000)],
        )
        program.install(element)
        packet = mmt_packet(experiment_id=42 << 8)
        run_pipeline(element, packet)
        header = packet.find(MmtHeader)
        assert header.config_id == 1
        assert header.seq == 0
        assert header.buffer_addr == "10.0.0.50"
        assert packet.meta[AGE_EPOCH_META] == 0
        assert program.transitions_applied == 1

    def test_sequence_numbers_from_register_increment(self, element):
        program = ModeTransitionProgram(
            pilot_registry(),
            [TransitionRule(from_config_id=0, to_mode="age-recover",
                            buffer_addr="10.0.0.50", age_budget_ns=5000)],
        )
        program.install(element)
        seqs = []
        for _ in range(3):
            packet = mmt_packet(experiment_id=42 << 8)
            run_pipeline(element, packet)
            seqs.append(packet.find(MmtHeader).seq)
        assert seqs == [0, 1, 2]

    def test_independent_seq_spaces_per_flow(self, element):
        program = ModeTransitionProgram(
            pilot_registry(),
            [TransitionRule(from_config_id=0, to_mode="age-recover",
                            buffer_addr="10.0.0.50", age_budget_ns=5000)],
        )
        program.install(element)
        p1 = mmt_packet(experiment_id=1 << 8)
        p2 = mmt_packet(experiment_id=2 << 8)
        run_pipeline(element, p1)
        run_pipeline(element, p2)
        assert p1.find(MmtHeader).seq == 0
        assert p2.find(MmtHeader).seq == 0

    def test_control_messages_not_transitioned(self, element):
        program = ModeTransitionProgram(
            pilot_registry(),
            [TransitionRule(from_config_id=0, to_mode="age-recover",
                            buffer_addr="10.0.0.50", age_budget_ns=5000)],
        )
        program.install(element)
        packet = mmt_packet(msg_type=MsgType.NAK)
        run_pipeline(element, packet)
        assert packet.find(MmtHeader).config_id == 0

    def test_ingress_port_scoping(self, element):
        program = ModeTransitionProgram(
            pilot_registry(),
            [TransitionRule(from_config_id=0, to_mode="age-recover",
                            ingress_port="wan", buffer_addr="10.0.0.50",
                            age_budget_ns=5000)],
        )
        program.install(element)
        packet = mmt_packet()
        run_pipeline(element, packet, ingress_port="lan")
        assert packet.find(MmtHeader).config_id == 0
        run_pipeline(element, packet, ingress_port="wan")
        assert packet.find(MmtHeader).config_id == 1

    def test_deadline_set_relative_to_now(self, element):
        registry = pilot_registry()
        program = ModeTransitionProgram(
            registry,
            [TransitionRule(from_config_id=1, to_mode="deliver-check",
                            deadline_offset_ns=1_000_000, notify_addr="10.0.0.9")],
        )
        program.install(element)
        header = MmtHeader(
            config_id=1,
            features=Feature.SEQUENCED | Feature.RETRANSMISSION | Feature.AGE_TRACKING,
            seq=5, buffer_addr="10.0.0.50", age_ns=0, age_budget_ns=100,
        )
        packet = mmt_packet(header=header)
        element.sim.schedule(500, lambda: None)
        element.sim.run()
        meta = Metadata(now_ns=element.sim.now)
        element.pipeline.process(packet, meta)
        assert header.deadline_ns == 500 + 1_000_000


class TestAgeUpdate:
    def make_aged_packet(self, epoch=0, budget=1000):
        header = MmtHeader(
            features=Feature.AGE_TRACKING, age_ns=0, age_budget_ns=budget
        )
        packet = mmt_packet(header=header)
        packet.meta[AGE_EPOCH_META] = epoch
        return packet, header

    def test_age_written_and_dscp_marked(self, element):
        program = AgeUpdateProgram(prioritize_dscp=46)
        program.install(element)
        packet, header = self.make_aged_packet()
        element.sim.schedule(700, lambda: None)
        element.sim.run()
        run_pipeline(element, packet)
        assert header.age_ns == 700
        assert not header.aged
        assert packet.find(Ipv4Header).dscp == 46
        assert program.updates == 1

    def test_aged_flag_past_budget(self, element):
        program = AgeUpdateProgram(prioritize_dscp=None)
        program.install(element)
        packet, header = self.make_aged_packet(budget=100)
        element.sim.schedule(500, lambda: None)
        element.sim.run()
        run_pipeline(element, packet)
        assert header.aged
        assert program.newly_aged == 1
        assert packet.find(Ipv4Header).dscp == 0  # remarking disabled

    def test_untracked_ignored(self, element):
        program = AgeUpdateProgram()
        program.install(element)
        packet = mmt_packet()
        run_pipeline(element, packet)
        assert program.updates == 0


class TestBufferPrograms:
    def seq_header(self):
        return MmtHeader(
            features=Feature.SEQUENCED | Feature.RETRANSMISSION,
            seq=3,
            buffer_addr="10.0.0.1",
        )

    def test_buffer_tap_mirrors_and_rewrites(self, element):
        BufferTapProgram(buffer_addr="10.0.0.50").install(element)
        packet = mmt_packet(header=self.seq_header())
        meta = run_pipeline(element, packet)
        assert meta.mirror_to_buffer
        assert packet.find(MmtHeader).buffer_addr == "10.0.0.50"

    def test_buffer_tap_skips_unsequenced_and_retx(self, element):
        BufferTapProgram(buffer_addr="10.0.0.50").install(element)
        plain = mmt_packet()
        assert not run_pipeline(element, plain).mirror_to_buffer
        retx = self.seq_header()
        retx.msg_type = MsgType.RETX_DATA
        packet = mmt_packet(header=retx)
        assert not run_pipeline(element, packet).mirror_to_buffer

    def test_nearest_buffer_rewrites_only_retransmission(self, element):
        program = NearestBufferProgram(buffer_addr="10.0.0.99")
        program.install(element)
        packet = mmt_packet(header=self.seq_header())
        run_pipeline(element, packet)
        assert packet.find(MmtHeader).buffer_addr == "10.0.0.99"
        assert program.rewrites == 1
        plain = mmt_packet()
        run_pipeline(element, plain)
        assert program.rewrites == 1

    def reliable_header(self, experiment_id, flow_id=None):
        header = MmtHeader(
            features=Feature.SEQUENCED | Feature.RETRANSMISSION,
            seq=0,
            buffer_addr="10.0.0.1",
            experiment_id=experiment_id,
        )
        if flow_id is not None:
            header.features |= Feature.FLOW_ID
            header.flow_id = flow_id
        return header

    def test_nearest_buffer_no_phantom_failovers_across_flows(self, element):
        """Regression: the last-stamp cell is per ``(experiment, flow)``.

        With a single shared cell, interleaving two experiments whose
        directory answers legitimately differ made every packet read the
        *other* experiment's last stamp and count a phantom failover."""
        exp_a, exp_b = 42 << 8, 43 << 8
        directory = BufferDirectory()
        directory.register("10.0.1.1", path_position=1, experiments={exp_a})
        directory.register("10.0.2.2", path_position=1, experiments={exp_b})
        program = NearestBufferProgram(directory=directory, path_position=2)
        program.install(element)
        for _round in range(4):
            for exp in (exp_a, exp_b):
                run_pipeline(element, mmt_packet(header=self.reliable_header(exp)))
        assert program.failovers == 0
        assert program.rewrites > 0

    def test_nearest_buffer_counts_one_failover_per_flow(self, element):
        """When a buffer really dies, each flow stamped onto the
        replacement counts exactly one observable failover — not one per
        packet, and never for flows whose buffer stayed alive."""
        exp_a, exp_b = 42 << 8, 43 << 8
        directory = BufferDirectory()
        directory.register("10.0.1.1", path_position=1, experiments={exp_a})
        directory.register("10.0.2.2", path_position=1, experiments={exp_b})
        directory.register("10.0.0.9", path_position=0)  # shared fallback
        program = NearestBufferProgram(directory=directory, path_position=2)
        program.install(element)

        def send(exp, flow_id=None):
            run_pipeline(
                element, mmt_packet(header=self.reliable_header(exp, flow_id))
            )

        for flow_id in (0, 1):
            send(exp_a, flow_id)
            send(exp_b)
        directory.mark_down("10.0.1.1")
        for _round in range(3):
            for flow_id in (0, 1):
                send(exp_a, flow_id)
                send(exp_b)
        # Both of experiment A's flows failed over exactly once each;
        # experiment B never did.
        assert program.failovers == 2


class TestDeadlineEnforce:
    def timely_header(self, deadline):
        return MmtHeader(
            features=Feature.TIMELINESS, deadline_ns=deadline, notify_addr="10.0.0.9"
        )

    def test_late_packet_dropped_and_reported(self, element):
        program = DeadlineEnforceProgram()
        program.install(element)
        element.sim.schedule(1000, lambda: None)
        element.sim.run()
        packet = mmt_packet(header=self.timely_header(deadline=500))
        meta = run_pipeline(element, packet)
        assert meta.drop
        assert program.dropped_late == 1
        assert len(meta.generated) == 1
        dst, header, payload = meta.generated[0]
        assert dst == "10.0.0.9"
        assert header.msg_type == MsgType.DEADLINE_MISS

    def test_timely_packet_passes(self, element):
        program = DeadlineEnforceProgram()
        program.install(element)
        packet = mmt_packet(header=self.timely_header(deadline=10_000))
        meta = run_pipeline(element, packet)
        assert not meta.drop


class TestDuplication:
    def dup_header(self, group=5):
        return MmtHeader(
            features=Feature.SEQUENCED | Feature.DUPLICATION,
            seq=0,
            dup_group=group,
            dup_copies=1,
        )

    def test_matching_group_cloned(self, element):
        program = DuplicationProgram({5: ["10.3.0.1", "10.3.0.2"]})
        program.install(element)
        packet = mmt_packet(header=self.dup_header())
        meta = run_pipeline(element, packet)
        assert meta.clones == ["10.3.0.1", "10.3.0.2"]
        assert packet.find(MmtHeader).dup_copies == 3
        assert program.duplicated == 1

    def test_other_group_untouched(self, element):
        program = DuplicationProgram({5: ["10.3.0.1"]})
        program.install(element)
        packet = mmt_packet(header=self.dup_header(group=6))
        meta = run_pipeline(element, packet)
        assert meta.clones == []


class TestBackpressure:
    def bp_header(self):
        return MmtHeader(features=Feature.BACKPRESSURE, source_addr="10.0.0.2")

    def test_signal_generated_when_hot(self, element):
        program = BackpressureProgram(occupancy_threshold_pct=60, min_interval_ns=0)
        program.install(element)
        packet = mmt_packet(header=self.bp_header())
        meta = Metadata(now_ns=1)
        meta.scratch["queue_occupancy_pct"] = 80
        element.pipeline.process(packet, meta)
        assert len(meta.generated) == 1
        assert meta.generated[0][0] == "10.0.0.2"
        assert program.signals_sent == 1

    def test_quiet_queue_no_signal(self, element):
        program = BackpressureProgram(occupancy_threshold_pct=60)
        program.install(element)
        packet = mmt_packet(header=self.bp_header())
        meta = Metadata(now_ns=1)
        meta.scratch["queue_occupancy_pct"] = 10
        element.pipeline.process(packet, meta)
        assert meta.generated == []

    def test_rate_limited_by_register(self, element):
        program = BackpressureProgram(
            occupancy_threshold_pct=50, min_interval_ns=1_000_000
        )
        program.install(element)
        for t in (2_000_000, 2_000_001, 3_500_000):
            packet = mmt_packet(header=self.bp_header())
            meta = Metadata(now_ns=t)
            meta.scratch["queue_occupancy_pct"] = 90
            element.pipeline.process(packet, meta)
        assert program.signals_sent == 2  # second packet rate-limited
