"""The assembled Fig. 4 pilot: mode progression, recovery, timeliness."""


from repro.core import Feature
from repro.dataplane import PilotConfig, PilotTestbed
from repro.netsim import Simulator, units
from repro.netsim.units import MILLISECOND


def run_pilot(messages=200, **cfg_kwargs):
    config = PilotConfig(**cfg_kwargs)
    pilot = PilotTestbed(sim=Simulator(seed=21), config=config)
    pilot.send_stream(messages, payload_size=4000, interval_ns=2000)
    report = pilot.run()
    return pilot, report


class TestLossFree:
    def test_everything_arrives_exactly_once(self):
        _pilot, report = run_pilot(200)
        assert report.messages_sent == 200
        assert report.dtn1_relayed == 200
        assert report.delivered == 200
        assert report.duplicates == 0
        assert report.naks_sent == 0
        assert report.complete

    def test_mode_progression_counts(self):
        _pilot, report = run_pilot(150)
        assert report.mode_transitions_u280 == 150  # 0 -> 1 at the U280
        assert report.mode_transitions_u55c == 150  # 1 -> 2 at the U55C
        assert report.age_updates_tofino == 150

    def test_buffer_holds_the_stream(self):
        pilot, report = run_pilot(100)
        assert len(pilot.buffer) == 100
        assert pilot.u280.stats.mirrored_to_buffer == 100

    def test_headers_arrive_in_mode2(self):
        config = PilotConfig()
        pilot = PilotTestbed(sim=Simulator(seed=3), config=config)
        seen = []
        pilot.dtn2_receiver.on_message = lambda p, h: seen.append(h)
        pilot.send_stream(5, payload_size=1000, interval_ns=1000)
        pilot.run()
        header = seen[0]
        assert header.config_id == 2
        assert header.has(Feature.TIMELINESS)
        assert header.has(Feature.AGE_TRACKING)
        assert header.has(Feature.SEQUENCED)
        assert header.buffer_addr == pilot.u280.ip
        assert header.age_ns > 0

    def test_latency_tracks_wan_delay(self):
        _pilot, report = run_pilot(50, wan_delay_ns=10 * MILLISECOND)
        median = sorted(report.delivery_latencies_ns)[len(report.delivery_latencies_ns) // 2]
        assert 10 * MILLISECOND < median < 11 * MILLISECOND


class TestLossRecovery:
    def test_full_recovery_from_dtn1_buffer(self):
        pilot, report = run_pilot(500, wan_loss_rate=0.03, wan_delay_ns=5 * MILLISECOND)
        assert report.complete
        assert report.delivered == 500
        assert report.naks_sent > 0
        # Every NAK that survived the (lossy) WAN was served by the U280.
        assert 1 <= report.naks_served <= report.naks_sent
        assert report.retransmissions >= report.unrecovered == 0

    def test_sensor_never_asked_to_retransmit(self):
        """The whole point of the nearest buffer: recovery never reaches
        the sensor, whose data is gone (mode 0 is unreliable)."""
        pilot, report = run_pilot(300, wan_loss_rate=0.05, wan_delay_ns=2 * MILLISECOND)
        assert report.complete
        assert pilot.sensor_stack.buffer is None
        assert pilot.sensor.rx_unhandled == 0  # nothing ever flowed back

    def test_recovery_latency_is_wan_rtt_not_path_rtt(self):
        """Recovered messages arrive roughly one buffer-RTT after their
        first-chance arrival time, not a full end-to-end handshake."""
        pilot, report = run_pilot(
            400, wan_loss_rate=0.04, wan_delay_ns=10 * MILLISECOND,
            deadline_offset_ns=100 * MILLISECOND,
        )
        assert report.complete
        lat = sorted(report.delivery_latencies_ns)
        p50 = lat[len(lat) // 2]
        worst = lat[-1]
        # One-way ~10 ms; recovery adds ~2x10 ms NAK round trip plus
        # reorder wait; nothing should need more than ~4 RTTs.
        assert worst < p50 + 8 * 10 * MILLISECOND


class TestTimeliness:
    def test_aged_flag_set_when_budget_small(self):
        _pilot, report = run_pilot(
            100, age_budget_ns=1 * MILLISECOND, wan_delay_ns=10 * MILLISECOND
        )
        assert report.aged_packets == 100

    def test_deadline_misses_counted_at_destination(self):
        # Deadline shorter than the U55C->DTN2 leg can never be met...
        _pilot, report = run_pilot(
            100, deadline_offset_ns=0, wan_delay_ns=1 * MILLISECOND
        )
        assert report.deadline_misses == 100
        assert report.deadline_ok == 0

    def test_deadlines_met_with_headroom(self):
        _pilot, report = run_pilot(
            100, deadline_offset_ns=50 * MILLISECOND, wan_delay_ns=1 * MILLISECOND
        )
        assert report.deadline_ok == 100
        assert report.deadline_misses == 0

    def test_miss_reports_reach_dtn1(self):
        config = PilotConfig(deadline_offset_ns=0, wan_delay_ns=1 * MILLISECOND)
        pilot = PilotTestbed(sim=Simulator(seed=5), config=config)
        pilot.send_stream(20, payload_size=500, interval_ns=1000)
        pilot.run()
        assert len(pilot.dtn1_stack.deadline_misses) == 20
