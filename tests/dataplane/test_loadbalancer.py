"""The EJ-FAT-style load balancer."""

import pytest

from repro.core import MmtStack, ReceiverConfig, make_experiment_id
from repro.core.modes import pilot_registry
from repro.dataplane import (
    AgeUpdateProgram,
    BufferTapProgram,
    LoadBalancerError,
    LoadBalancerProgram,
    ModeTransitionProgram,
    ProgrammableElement,
    SegmentRecoveryProgram,
    TransitionRule,
)
from repro.netsim import Topology, units

EXP = 23
EXP_ID = make_experiment_id(EXP)


def build(sim, workers=3, window=16, loss=0.0, lb_repairs=False):
    """src - e1(seq+buffer) - lb - {worker0..n}."""
    topo = Topology(sim)
    src = topo.add_host("src", ip="10.0.0.2")
    e1 = ProgrammableElement(sim, "e1", mac=topo.allocate_mac(), ip="10.0.1.1")
    lb = ProgrammableElement(sim, "lb", mac=topo.allocate_mac(), ip="10.0.2.1")
    topo.add(e1)
    topo.add(lb)
    topo.connect(src, e1, units.gbps(10), 10_000)
    topo.connect(e1, lb, units.gbps(10), 10_000, loss_rate=loss)
    worker_hosts = []
    for i in range(workers):
        worker = topo.add_host(f"worker{i}", ip=f"10.0.3.{i + 2}")
        topo.connect(lb, worker, units.gbps(10), 10_000)
        worker_hosts.append(worker)
    topo.install_routes()

    registry = pilot_registry()
    ModeTransitionProgram(registry, [
        TransitionRule(from_config_id=0, to_mode="age-recover",
                       buffer_addr=e1.ip, age_budget_ns=units.seconds(1)),
    ]).install(e1)
    e1.attach_buffer(128 * 1024 * 1024)
    BufferTapProgram(buffer_addr=e1.ip).install(e1)
    AgeUpdateProgram().install(e1)

    recovery = None
    if lb_repairs:
        # The balancer heals upstream losses before striping, so the
        # workers never have to reason about the shared seq space.
        lb.attach_buffer(128 * 1024 * 1024)
        recovery = SegmentRecoveryProgram(
            upstream_buffer_addr=e1.ip,
            reorder_wait_ns=units.microseconds(200),
            retry_interval_ns=units.milliseconds(5),
        )
        recovery.install(lb)
    balancer = LoadBalancerProgram(
        experiment_id=EXP_ID,
        backends=[w.ip for w in worker_hosts],
        window=window,
    )
    balancer.install(lb)

    src_stack = MmtStack(src, registry)
    received: dict[str, list[int]] = {w.name: [] for w in worker_hosts}
    receivers = {}
    for worker in worker_hosts:
        stack = MmtStack(worker, registry)
        receivers[worker.name] = stack.bind_receiver(
            EXP,
            on_message=lambda p, h, n=worker.name: received[n].append(h.seq),
            # Stripe consumers: the in-between windows belong to peers.
            config=ReceiverConfig(
                initial_rtt_ns=units.milliseconds(1), detect_gaps=False
            ),
        )
    # The sender targets worker0; the balancer re-steers per window.
    sender = src_stack.create_sender(
        experiment_id=EXP_ID, mode="identify", dst_ip=worker_hosts[0].ip
    )
    return topo, sender, balancer, worker_hosts, received, receivers


def send_all(sim, sender, count):
    for _ in range(count):
        sender.send(1000)
    sender.finish()
    sim.run()


class TestSteering:
    def test_windows_are_sticky(self, sim):
        _topo, sender, balancer, workers, received, _rx = build(sim, window=16)
        send_all(sim, sender, 320)
        # Each worker's sequences form whole windows.
        for name, seqs in received.items():
            ticks = {s // 16 for s in seqs}
            assert len(seqs) == 16 * len(ticks), f"{name} got partial windows"
        # Every message landed somewhere, exactly once.
        everything = sorted(s for seqs in received.values() for s in seqs)
        assert everything == list(range(320))

    def test_even_distribution_without_load_skew(self, sim):
        _topo, sender, balancer, workers, received, _rx = build(sim, workers=4, window=8)
        send_all(sim, sender, 640)
        counts = [len(v) for v in received.values()]
        assert max(counts) - min(counts) <= 8  # within one window

    def test_load_reports_skew_assignment(self, sim):
        _topo, sender, balancer, workers, received, _rx = build(sim, workers=2, window=8)
        balancer.report_load(workers[1].ip, 90)  # worker1 nearly full
        send_all(sim, sender, 400)
        assert len(received["worker0"]) > len(received["worker1"]) * 5

    def test_drain_stops_new_windows(self, sim):
        _topo, sender, balancer, workers, received, _rx = build(sim, workers=2, window=8)
        balancer.drain(workers[0].ip)
        send_all(sim, sender, 200)
        assert len(received["worker0"]) == 0
        assert len(received["worker1"]) == 200

    def test_repairs_follow_the_calendar(self, sim):
        """Loss between the sequencer and the balancer: the balancer
        heals it (segment recovery) and repairs are *steered* like
        first-pass data, so each window completes on its one worker."""
        _topo, sender, balancer, workers, received, receivers = build(
            sim, workers=3, window=16, loss=0.05, lb_repairs=True
        )
        send_all(sim, sender, 480)
        # Every message landed exactly once, striped in whole windows.
        everything = sorted(s for seqs in received.values() for s in seqs)
        assert everything == list(range(480))
        for name, seqs in received.items():
            ticks = {s // 16 for s in seqs}
            assert len(seqs) == 16 * len(ticks), f"{name}: split window"
        # The workers never NAK-ed anything: repair was in-network.
        for rx in receivers.values():
            assert rx.stats.naks_sent == 0


class TestControlPlane:
    def test_validation(self):
        with pytest.raises(LoadBalancerError):
            LoadBalancerProgram(EXP_ID, backends=[])
        with pytest.raises(LoadBalancerError):
            LoadBalancerProgram(EXP_ID, backends=["10.0.0.1"], window=0)
        balancer = LoadBalancerProgram(EXP_ID, backends=["10.0.0.1"])
        with pytest.raises(LoadBalancerError):
            balancer.drain("10.9.9.9")
        with pytest.raises(LoadBalancerError):
            balancer.add_backend("10.0.0.1")

    def test_add_backend_participates(self, sim):
        _topo, sender, balancer, workers, received, _rx = build(sim, workers=2, window=8)
        # A third worker joins before traffic flows.
        topo2 = None  # the host must exist in the topology to receive
        # (covered by steering tests; here check bookkeeping only)
        balancer.add_backend("10.0.3.99")
        assert "10.0.3.99" in balancer.backends

    def test_calendar_pruned(self, sim):
        balancer = LoadBalancerProgram(EXP_ID, backends=["10.0.0.1"],
                                       window=1, calendar_horizon=10)
        for tick in range(100):
            balancer._assign(tick)
        assert len(balancer._calendar) <= 11 + 10

    def test_backend_for_lookup(self, sim):
        _topo, sender, balancer, workers, received, _rx = build(sim, window=8)
        send_all(sim, sender, 16)
        assert balancer.backend_for(0) in {w.ip for w in workers}
        assert balancer.backend_for(0) == balancer.backend_for(7)


class TestLivenessAndRetxPolicy:
    """Regression: a window's backend drained or crashed after binding.

    Pre-policy, the balancer steered retransmissions exactly like
    first-pass DATA, silently following a stale binding into a dead
    backend. Now liveness is explicit (mark_down/mark_up), bound
    windows are remapped on crash, and retransmissions obey
    ``retx_policy`` when they discover a dead binding themselves.
    """

    def two_backends(self, **kwargs) -> LoadBalancerProgram:
        return LoadBalancerProgram(
            EXP_ID, backends=["10.0.3.2", "10.0.3.3"], window=8, **kwargs
        )

    def test_retx_after_drain_stays_on_bound_backend(self):
        balancer = self.two_backends()
        bound = balancer.route(0, 0)
        balancer.drain(bound)
        # Bound windows finish on the draining backend — retx included.
        assert balancer.route(0, 1, is_retx=True) == bound
        assert balancer.route(0, 2) == bound
        # New windows avoid it.
        other = balancer.route(0, 8)
        assert other != bound

    def test_mark_down_remaps_bound_windows(self):
        balancer = self.two_backends()
        first = balancer.route(0, 0)
        epoch = balancer.epoch
        moved = balancer.mark_down(first)
        assert moved == [(0, 0)]
        assert balancer.epoch > epoch
        assert balancer.windows_bound_to(first) == 0
        # First-pass and repair traffic both land on the new owner.
        survivor = balancer.backend_for(0)
        assert survivor != first
        assert balancer.route(0, 1) == survivor
        assert balancer.route(0, 3, is_retx=True) == survivor
        assert balancer.redirects == 1

    def test_retx_rebind_policy_on_stale_dead_binding(self):
        """A binding can still point at a dead backend when the crash
        happened with no live peer to remap to (liveness races the
        table update). Policy "rebind": the retransmission moves the
        window to whatever is alive by the time it arrives."""
        balancer = self.two_backends()
        first = balancer.route(0, 0)
        other = next(a for a in balancer.backends if a != first)
        balancer.mark_down(other)  # lose the spare first
        balancer.mark_down(first)  # nothing live: binding stays put
        assert balancer.backend_for(0) == first
        balancer.mark_up(other)
        assert balancer.route(0, 1, is_retx=True) == other
        assert balancer.retx_rebinds == 1

    def test_retx_follow_policy_preserves_stale_steering(self):
        """Policy "follow" keeps the historical bug observable: the
        retransmission is steered into the dead backend and counted."""
        balancer = self.two_backends(retx_policy="follow")
        first = balancer.route(0, 0)
        other = next(a for a in balancer.backends if a != first)
        balancer.mark_down(other)
        balancer.mark_down(first)
        balancer.mark_up(other)
        assert balancer.route(0, 1, is_retx=True) == first
        assert balancer.follows_dead == 1
        # First-transmission DATA always rebinds regardless of policy.
        assert balancer.route(0, 2) == other
        assert balancer.redirects == 1

    def test_retx_policy_validated(self):
        with pytest.raises(LoadBalancerError):
            self.two_backends(retx_policy="punt")

    def test_mark_down_survivors_absorb_new_windows(self, sim):
        _topo, sender, balancer, workers, received, _rx = build(
            sim, workers=3, window=8
        )
        balancer.mark_down(workers[0].ip)
        send_all(sim, sender, 240)
        assert len(received["worker0"]) == 0
        assert len(received["worker1"]) + len(received["worker2"]) == 240

    def test_steering_log_records_decisions(self):
        balancer = self.two_backends(record_log=True)
        bound = balancer.route(0, 0)
        balancer.route(0, 1)
        balancer.mark_down(bound)
        kinds = [r.kind for r in balancer.steering_log]
        assert kinds == ["bind", "steer", "redirect"]
        # Epoch is stamped on every record: the redirect belongs to the
        # post-mark table generation.
        assert balancer.steering_log[-1].epoch == balancer.epoch
