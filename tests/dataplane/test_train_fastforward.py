"""Per-element train fast-forward: a burst whose feature bits no table
cares about skips the pipeline entirely, byte-identically."""

from repro.core import Feature, MmtHeader, MsgType, make_experiment_id
from repro.dataplane import (
    AgeUpdateProgram,
    BufferTapProgram,
    ProgrammableElement,
)
from repro.netsim import (
    EtherType,
    EthernetHeader,
    IpProto,
    Ipv4Header,
    Packet,
    Simulator,
    Topology,
    units,
)
from repro.trace import Tracer

EXP_ID = make_experiment_id(5)


def build_chain(sim, element):
    topo = Topology(sim)
    a = topo.add_host("a", ip="10.0.1.2")
    b = topo.add_host("b", ip="10.0.2.2")
    topo.add(element)
    topo.connect(a, element, units.gbps(10), 1000)
    topo.connect(element, b, units.gbps(10), 1000)
    topo.install_routes()
    return topo, a, b


def make_train(src, dst_ip, n, features=Feature.AGE_TRACKING, msg_type=MsgType.DATA):
    port = next(iter(src.ports.values()))
    peer_mac = "02:00:00:00:00:01"
    packets = []
    for i in range(n):
        aging = bool(features & Feature.AGE_TRACKING)
        header = MmtHeader(
            features=features,
            msg_type=msg_type,
            experiment_id=EXP_ID,
            aged=aging,
            age_ns=0 if aging else None,
            age_budget_ns=1_000_000 if aging else None,
        )
        packets.append(
            Packet(
                headers=[
                    EthernetHeader(src="02:aa:00:00:00:02", dst=peer_mac,
                                   ethertype=EtherType.IPV4),
                    Ipv4Header(src="10.0.1.2", dst=dst_ip, proto=IpProto.MMT),
                    header,
                ],
                payload_size=512,
                meta={"i": i},
            )
        )
    return port, packets


def collect(host):
    got = []
    host.register_l3_protocol(IpProto.MMT, got.append)
    return got


def test_empty_pipeline_fast_forwards_whole_train(sim):
    element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01")
    _topo, a, b = build_chain(sim, element)
    got = collect(b)
    port, packets = make_train(a, b.ip, 6)
    assert port.send_train(packets) == 6
    sim.run()
    assert len(got) == 6
    assert element.stats.train_fastforwards == 1
    assert element.stats.mmt_processed == 6
    assert element.stats.pipeline_drops == 0


def test_irrelevant_table_still_fast_forwards(sim):
    element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01")
    _topo, a, b = build_chain(sim, element)
    # BufferTap declares SEQUENCED; an AGE_TRACKING-only train is a
    # provable no-op for it.
    BufferTapProgram(buffer_addr="10.0.0.50").install(element)
    got = collect(b)
    port, packets = make_train(a, b.ip, 4, features=Feature.AGE_TRACKING)
    port.send_train(packets)
    sim.run()
    assert len(got) == 4
    assert element.stats.train_fastforwards == 1


def test_relevant_feature_bit_disables_fast_forward(sim):
    element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01")
    _topo, a, b = build_chain(sim, element)
    AgeUpdateProgram().install(element)
    got = collect(b)
    port, packets = make_train(a, b.ip, 4, features=Feature.AGE_TRACKING)
    port.send_train(packets)
    sim.run()
    # Falls back to the serial path: the pipeline must see each packet.
    assert len(got) == 4
    assert element.stats.train_fastforwards == 0
    assert element.stats.mmt_processed == 4


def test_control_packet_disqualifies_train(sim):
    element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01")
    _topo, a, b = build_chain(sim, element)
    got = collect(b)
    port, packets = make_train(a, b.ip, 3)
    _port, control = make_train(a, b.ip, 1, features=Feature.NONE,
                                msg_type=MsgType.HEARTBEAT)
    port.send_train(packets + control)
    sim.run()
    assert len(got) == 4
    assert element.stats.train_fastforwards == 0


def test_fast_forward_bytes_match_serial_path(sim):
    def run(send_as_train):
        sim = Simulator(seed=3)
        element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01")
        _topo, a, b = build_chain(sim, element)
        got = collect(b)
        port, packets = make_train(a, b.ip, 5)
        if send_as_train:
            port.send_train(packets)
        else:
            for packet in packets:
                port.send(packet)
        sim.run()
        out = []
        for packet in got:
            ip = packet.find(Ipv4Header)
            eth = packet.find(EthernetHeader)
            mmt = packet.find(MmtHeader)
            out.append((eth.src, eth.dst, ip.ttl, mmt.encode()))
        return out

    assert run(send_as_train=True) == run(send_as_train=False)


def test_tracer_on_element_forces_serial_path(sim):
    element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01")
    _topo, a, b = build_chain(sim, element)
    element.tracer = Tracer(sim)
    got = collect(b)
    port, packets = make_train(a, b.ip, 3)
    port.send_train(packets)
    sim.run()
    assert len(got) == 3
    assert element.stats.train_fastforwards == 0
    assert element.tracer.events_emitted > 0


def test_failed_element_drops_whole_train(sim):
    element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01")
    _topo, a, b = build_chain(sim, element)
    element.crash()
    got = collect(b)
    port, packets = make_train(a, b.ip, 5)
    port.send_train(packets)
    sim.run()
    assert len(got) == 0
    assert element.stats.dropped_failed == 5


def test_ttl_expiry_dropped_in_fast_path(sim):
    element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01")
    _topo, a, b = build_chain(sim, element)
    got = collect(b)
    port, packets = make_train(a, b.ip, 3)
    for packet in packets:
        packet.find(Ipv4Header).ttl = 1
    port.send_train(packets)
    sim.run()
    assert len(got) == 0
    assert element.stats.dropped_no_route == 3
