"""Programmable elements in a live topology: forwarding, NAK service,
clones, generated control packets, device models."""

import pytest

from repro.core import (
    Feature,
    MmtHeader,
    MmtStack,
    MsgType,
    NakPayload,
    SeqRange,
    make_experiment_id,
)
from repro.dataplane import (
    ALVEO_STAGES,
    AlveoNic,
    BufferTapProgram,
    ProgrammableElement,
    TOFINO2_STAGES,
    TofinoSwitch,
)
from repro.netsim import (
    EtherType,
    IpProto,
    Ipv4Header,
    Packet,
    Simulator,
    Topology,
    units,
)

EXP = 5
EXP_ID = make_experiment_id(EXP)


def build_chain(sim, element):
    """a --- element --- b, with routes installed."""
    topo = Topology(sim)
    a = topo.add_host("a", ip="10.0.1.2")
    b = topo.add_host("b", ip="10.0.2.2")
    topo.add(element)
    topo.connect(a, element, units.gbps(10), 1000)
    topo.connect(element, b, units.gbps(10), 1000)
    topo.install_routes()
    return topo, a, b


def test_non_mmt_traffic_passes_through(sim):
    element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01")
    _topo, a, b = build_chain(sim, element)
    got = []
    b.register_l3_protocol(IpProto.UDP, got.append)
    a.send_ip(b.ip, IpProto.UDP, [], payload_size=50)
    sim.run()
    assert len(got) == 1
    assert element.stats.passthrough == 1
    assert element.stats.mmt_processed == 0


def test_mmt_traffic_runs_pipeline_then_forwards(sim):
    element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01")
    _topo, a, b = build_chain(sim, element)
    stack_a = MmtStack(a)
    stack_b = MmtStack(b)
    got = []
    stack_b.bind_receiver(EXP, on_message=lambda p, h: got.append(h))
    sender = stack_a.create_sender(experiment_id=EXP_ID, mode="identify", dst_ip=b.ip)
    sender.send(100)
    sim.run()
    assert len(got) == 1
    assert element.stats.mmt_processed == 1


def test_element_serves_nak_from_buffer(sim):
    element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01", ip="10.0.0.50")
    _topo, a, b = build_chain(sim, element)
    buffer = element.attach_buffer(1_000_000)
    # Preload the buffer as if a tapped stream had been mirrored.
    cached = Packet(
        headers=[MmtHeader(features=Feature.SEQUENCED | Feature.RETRANSMISSION,
                           seq=4, buffer_addr="10.0.0.50", experiment_id=EXP_ID)],
        payload_size=640,
    )
    buffer.store(EXP_ID, 4, cached)
    # b NAKs the element directly.
    stack_b = MmtStack(b)
    got = []
    stack_b.bind_receiver(EXP, on_message=lambda p, h: got.append(h))
    nak = NakPayload(ranges=[SeqRange(4, 4)])
    header = MmtHeader(msg_type=MsgType.NAK, experiment_id=EXP_ID)
    stack_b.send_control("10.0.0.50", header, nak.encode())
    sim.run()
    # The requested seq 4 is resent exactly once; the receiver then
    # NAKs the leading gap 0..3 (not cached), which goes unserved.
    assert element.stats.naks_served >= 1
    assert element.stats.nak_packets_resent == 1
    assert len(got) == 1
    assert got[0].msg_type == MsgType.RETX_DATA
    assert got[0].seq == 4


def test_unserveable_nak_forwarded_to_fallback(sim):
    element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01", ip="10.0.0.50")
    _topo, a, b = build_chain(sim, element)
    element.attach_buffer(1_000_000)
    element.nak_fallback_addr = a.ip
    stack_a = MmtStack(a)
    stack_a.attach_buffer(1_000_000)
    stack_b = MmtStack(b)
    got = []
    stack_b.bind_receiver(EXP, on_message=lambda p, h: got.append(h))
    # a's buffer holds seq 9; the element's does not.
    cached = Packet(
        headers=[MmtHeader(features=Feature.SEQUENCED | Feature.RETRANSMISSION,
                           seq=9, buffer_addr=a.ip, experiment_id=EXP_ID)],
        payload_size=128,
    )
    stack_a.buffer.store(EXP_ID, 9, cached)
    header = MmtHeader(msg_type=MsgType.NAK, experiment_id=EXP_ID)
    stack_b.send_control("10.0.0.50", header, NakPayload(ranges=[SeqRange(9, 9)]).encode())
    sim.run()
    # Chained recovery: element missed, a (the fallback) served it.
    assert got and got[0].seq == 9


def test_buffer_requires_ip(sim):
    element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01")
    with pytest.raises(ValueError):
        element.attach_buffer(1000)


def test_mirror_to_buffer_via_tap_program(sim):
    element = ProgrammableElement(sim, "el", mac="02:00:00:00:00:01", ip="10.0.0.50")
    _topo, a, b = build_chain(sim, element)
    buffer = element.attach_buffer(1_000_000)
    BufferTapProgram(buffer_addr="10.0.0.50").install(element)
    stack_a = MmtStack(a)
    stack_a.attach_buffer(1_000_000)
    stack_b = MmtStack(b)
    stack_b.bind_receiver(EXP, on_message=lambda p, h: None)
    sender = stack_a.create_sender(
        experiment_id=EXP_ID, mode="age-recover", dst_ip=b.ip,
        age_budget_ns=units.seconds(1), buffer_local=True,
    )
    for _ in range(3):
        sender.send(256)
    sender.finish()
    sim.run()
    assert element.stats.mirrored_to_buffer == 3
    assert len(buffer) == 3


class TestDeviceModels:
    def test_tofino_stage_budget(self, sim):
        switch = TofinoSwitch(sim, "t", mac="02:00:00:00:00:02")
        assert switch.pipeline.stages == TOFINO2_STAGES

    def test_tofino_adds_pipeline_latency(self, sim):
        switch = TofinoSwitch(sim, "t", mac="02:00:00:00:00:02", pipeline_latency_ns=600)
        _topo, a, b = build_chain(sim, switch)
        got = []
        b.register_l3_protocol(IpProto.UDP, lambda p: got.append(sim.now))
        a.send_ip(b.ip, IpProto.UDP, [], payload_size=100)
        sim.run()
        without = TofinoSwitch(sim, "t2", mac="02:00:00:00:00:03", pipeline_latency_ns=0)
        assert got  # delivered despite latency insertion
        # The 600 ns shows up in the arrival time: compare to the raw
        # link budget (2 x 1000 ns propagation + serialization).
        assert got[0] > 2600

    def test_alveo_port_limit(self, sim):
        nic = AlveoNic.u280(sim, "n", mac="02:00:00:00:00:04")
        nic.add_port("host")
        nic.add_port("net")
        with pytest.raises(ValueError):
            nic.add_port("to_extra")

    def test_alveo_port_names_validated(self, sim):
        nic = AlveoNic.u280(sim, "n", mac="02:00:00:00:00:05")
        with pytest.raises(ValueError):
            nic.add_port("weird")

    def test_alveo_buffer_bounded_by_hbm(self, sim):
        nic = AlveoNic.u280(sim, "n", mac="02:00:00:00:00:06", ip="10.0.0.1")
        with pytest.raises(ValueError):
            nic.attach_buffer(nic.hbm_bytes + 1)

    def test_alveo_u55c_has_more_hbm_than_u280(self, sim):
        u280 = AlveoNic.u280(sim, "a", mac="02:00:00:00:00:07")
        u55c = AlveoNic.u55c(sim, "b", mac="02:00:00:00:00:08")
        assert u55c.hbm_bytes > u280.hbm_bytes
        assert u280.pipeline.stages == ALVEO_STAGES
