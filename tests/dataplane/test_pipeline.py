"""The P4 pipeline model: matching, actions, registers, constraints."""

import pytest

from repro.core import MmtHeader
from repro.dataplane import (
    Action,
    DROP,
    MatchKind,
    Metadata,
    NOP,
    PacketView,
    Pipeline,
    PipelineError,
    RegisterArray,
    Table,
)
from repro.netsim import EthernetHeader, Ipv4Header, Packet


def mmt_packet(**kwargs):
    return Packet(
        headers=[EthernetHeader(), Ipv4Header(dst="10.0.0.2"), MmtHeader(**kwargs)],
        payload_size=100,
    )


class TestRegisterArray:
    def test_read_write(self):
        reg = RegisterArray("r", 4, width_bits=8)
        reg.write(2, 300)  # wraps at 8 bits
        assert reg.read(2) == 300 & 0xFF

    def test_read_add_returns_previous(self):
        reg = RegisterArray("r", 1)
        assert reg.read_add(0, 5) == 0
        assert reg.read_add(0, 5) == 5
        assert reg.read(0) == 10

    def test_bounds_checked(self):
        reg = RegisterArray("r", 2)
        with pytest.raises(PipelineError):
            reg.read(2)
        with pytest.raises(PipelineError):
            reg.write(-1, 0)

    def test_value_type_checked(self):
        reg = RegisterArray("r", 1)
        with pytest.raises(PipelineError):
            reg.write(0, 1.5)

    def test_invalid_shape(self):
        with pytest.raises(PipelineError):
            RegisterArray("r", 0)
        with pytest.raises(PipelineError):
            RegisterArray("r", 1, width_bits=65)


class TestPacketView:
    def test_get_set_header_fields(self):
        view = PacketView(mmt_packet(config_id=3))
        assert view.get("mmt.config_id") == 3
        view.set("ip.dscp", 46)
        assert view.get("ip.dscp") == 46

    def test_payload_not_reachable(self):
        view = PacketView(mmt_packet())
        for path in ("mmt.payload", "ip.payload_size", "eth.headers", "mmt.meta"):
            with pytest.raises(PipelineError):
                view.get(path)

    def test_floats_rejected(self):
        view = PacketView(mmt_packet())
        with pytest.raises(PipelineError):
            view.set("ip.ttl", 1.5)

    def test_bytes_rejected(self):
        view = PacketView(mmt_packet())
        with pytest.raises(PipelineError):
            view.set("eth.src", b"\x00\x01")

    def test_unknown_header_and_field(self):
        view = PacketView(mmt_packet())
        with pytest.raises(PipelineError):
            view.get("vlan.id")
        with pytest.raises(PipelineError):
            view.get("ip.nonexistent")
        with pytest.raises(PipelineError):
            view.get("noheader")

    def test_missing_header(self):
        view = PacketView(Packet(headers=[EthernetHeader()]))
        assert not view.has_header("ip")
        with pytest.raises(PipelineError):
            view.get("ip.dst")

    def test_mmt_accessor(self):
        view = PacketView(mmt_packet(config_id=7))
        assert view.mmt().config_id == 7
        with pytest.raises(PipelineError):
            PacketView(Packet()).mmt()

    def test_sim_stamp_int_only(self):
        view = PacketView(mmt_packet())
        view.sim_stamp("t", 99)
        assert view.sim_read("t") == 99
        with pytest.raises(PipelineError):
            view.sim_stamp("t", 1.5)


class TestTable:
    def test_exact_match_and_default(self):
        hits = []
        table = Table(
            "t",
            keys=["mmt.config_id"],
            default_action=Action("dflt", lambda v, m, p: hits.append("default")),
        )
        table.add_entry((1,), Action("hit", lambda v, m, p: hits.append("hit")))
        table.apply(PacketView(mmt_packet(config_id=1)), Metadata())
        table.apply(PacketView(mmt_packet(config_id=2)), Metadata())
        assert hits == ["hit", "default"]
        assert table.entries[0].hits == 1
        assert table.default_hits == 1

    def test_wildcard_pattern(self):
        hits = []
        table = Table("t", keys=["meta.ingress_port", "mmt.config_id"])
        table.add_entry((None, 0), Action("a", lambda v, m, p: hits.append(m.ingress_port)))
        table.apply(PacketView(mmt_packet()), Metadata(ingress_port="p1"))
        table.apply(PacketView(mmt_packet()), Metadata(ingress_port="p2"))
        assert hits == ["p1", "p2"]

    def test_priority_ordering(self):
        hits = []
        table = Table("t", keys=["mmt.config_id"])
        table.add_entry((0,), Action("low", lambda v, m, p: hits.append("low")), priority=0)
        table.add_entry((0,), Action("high", lambda v, m, p: hits.append("high")), priority=5)
        table.apply(PacketView(mmt_packet()), Metadata())
        assert hits == ["high"]

    def test_ternary_match(self):
        hits = []
        table = Table("t", keys=["mmt.experiment_id"], match_kinds=[MatchKind.TERNARY])
        # Match any experiment whose low byte (slice) is 3.
        table.add_entry(((3, 0xFF),), Action("a", lambda v, m, p: hits.append(1)))
        table.apply(PacketView(mmt_packet(experiment_id=0x1203)), Metadata())
        table.apply(PacketView(mmt_packet(experiment_id=0x1204)), Metadata())
        assert len(hits) == 1

    def test_lpm_match(self):
        hits = []
        table = Table("t", keys=["ip.dst"], match_kinds=[MatchKind.LPM])
        table.add_entry(("10.0.0.0/24",), Action("a", lambda v, m, p: hits.append(1)))
        table.apply(PacketView(mmt_packet()), Metadata())  # ip.dst=10.0.0.2
        assert hits == [1]

    def test_range_match(self):
        hits = []
        table = Table("t", keys=["meta.queue_occupancy_pct"], match_kinds=[MatchKind.RANGE])
        table.add_entry(((60, 100),), Action("a", lambda v, m, p: hits.append(1)))
        meta = Metadata()
        meta.scratch["queue_occupancy_pct"] = 75
        table.apply(PacketView(mmt_packet()), meta)
        meta.scratch["queue_occupancy_pct"] = 10
        table.apply(PacketView(mmt_packet()), meta)
        assert len(hits) == 1

    def test_missing_header_uses_default(self):
        hits = []
        table = Table(
            "t",
            keys=["mmt.config_id"],
            default_action=Action("d", lambda v, m, p: hits.append("d")),
        )
        table.add_entry((0,), NOP)
        table.apply(PacketView(Packet(headers=[EthernetHeader()])), Metadata())
        assert hits == ["d"]

    def test_entry_shape_validated(self):
        table = Table("t", keys=["mmt.config_id"])
        with pytest.raises(PipelineError):
            table.add_entry((1, 2), NOP)

    def test_capacity_enforced(self):
        table = Table("t", keys=["mmt.config_id"], max_entries=1)
        table.add_entry((0,), NOP)
        with pytest.raises(PipelineError):
            table.add_entry((1,), NOP)

    def test_bad_match_kind(self):
        with pytest.raises(PipelineError):
            Table("t", keys=["x.y"], match_kinds=["fuzzy"])


class TestPipeline:
    def test_tables_apply_in_order(self):
        pipeline = Pipeline("p")
        order = []
        for name in ("one", "two"):
            pipeline.add_table(
                Table(name, keys=[], default_action=Action(name, lambda v, m, p, n=name: order.append(n)))
            )
        pipeline.process(mmt_packet(), Metadata())
        assert order == ["one", "two"]

    def test_drop_short_circuits(self):
        pipeline = Pipeline("p")
        pipeline.add_table(Table("dropper", keys=[], default_action=DROP))
        reached = []
        pipeline.add_table(
            Table("after", keys=[], default_action=Action("a", lambda v, m, p: reached.append(1)))
        )
        meta = pipeline.process(mmt_packet(), Metadata())
        assert meta.drop
        assert reached == []

    def test_stage_budget_enforced(self):
        pipeline = Pipeline("p", stages=1)
        pipeline.add_table(Table("one", keys=[]))
        with pytest.raises(PipelineError):
            pipeline.add_table(Table("two", keys=[]))

    def test_register_namespace(self):
        pipeline = Pipeline("p")
        pipeline.add_register("seq", 16)
        assert pipeline.register("seq").size == 16
        with pytest.raises(PipelineError):
            pipeline.add_register("seq", 8)
        with pytest.raises(PipelineError):
            pipeline.register("missing")

    def test_metadata_emit_and_clone(self):
        meta = Metadata()
        meta.clone_to("10.0.0.9")
        header = MmtHeader()
        meta.emit("10.0.0.1", header, b"x")
        assert meta.clones == ["10.0.0.9"]
        assert meta.generated == [("10.0.0.1", header, b"x")]
