"""SLO rule parsing, watchdog evaluation, and flight-recorder pinning."""

import pytest

from repro.faults.chaos import ChaosConfig, run_chaos
from repro.fleet.farm import FarmConfig, ReceiverFarm
from repro.netsim import Simulator
from repro.obs import HealthReport, Sampler, SloRule, Watchdog
from repro.trace import Tracer


# -- rule grammar -------------------------------------------------------------


def test_parse_plain_rule():
    rule = SloRule.parse("queue_bytes max <= 262144")
    assert rule.metric == "queue_bytes"
    assert rule.agg == "max"
    assert rule.op == "<="
    assert rule.threshold == 262144
    assert rule.labels == ()
    assert str(rule) == "queue_bytes max <= 262144"


def test_parse_labels_and_float_threshold():
    rule = SloRule.parse("queue_bytes{node=u280, port=out} p99 < 1.5")
    assert rule.labels == (("node", "u280"), ("port", "out"))
    assert rule.threshold == 1.5
    assert rule.agg == "p99"


@pytest.mark.parametrize(
    "text",
    [
        "",
        "queue_bytes",
        "queue_bytes max",
        "queue_bytes max <=",
        "queue_bytes p42 <= 1",  # unknown aggregate
        "queue_bytes max ~= 1",  # unknown operator
        "queue_bytes{node} max <= 1",  # label without value
    ],
)
def test_parse_rejects_bad_rules(text):
    with pytest.raises(ValueError):
        SloRule.parse(text)


def test_aggregates():
    rule = lambda agg: SloRule(metric="m", agg=agg)
    values = [5, 1, 3, 2, 4]
    assert rule("last").aggregate(values) == 4
    assert rule("max").aggregate(values) == 5
    assert rule("min").aggregate(values) == 1
    assert rule("mean").aggregate(values) == 3.0
    assert rule("p50").aggregate(values) == 3.0
    assert rule("p99").aggregate(values) == 5.0


def test_operators():
    assert SloRule(metric="m", op="<=", threshold=3).holds(3)
    assert not SloRule(metric="m", op="<", threshold=3).holds(3)
    assert SloRule(metric="m", op=">=", threshold=3).holds(3)
    assert not SloRule(metric="m", op=">", threshold=3).holds(3)
    assert SloRule(metric="m", op="==", threshold=3).holds(3)
    assert not SloRule(metric="m", op="==", threshold=3).holds(4)


def test_label_subset_matching():
    sampler = Sampler(Simulator(seed=1), every_ns=10)
    series = sampler.record("queue_bytes", 9, node="u280", port="out")
    assert SloRule.parse("queue_bytes max <= 1").matches(series)
    assert SloRule.parse("queue_bytes{node=u280} max <= 1").matches(series)
    assert not SloRule.parse("queue_bytes{node=dtn1} max <= 1").matches(series)
    assert not SloRule.parse("other max <= 1").matches(series)


# -- watchdog evaluation ------------------------------------------------------


def test_watchdog_flags_first_violation_and_dedups():
    sampler = Sampler(Simulator(seed=1), every_ns=10)
    watchdog = Watchdog(["m max <= 10"], sampler=sampler)
    sampler.record("m", 5)
    assert watchdog.violations == 0
    sampler.record("m", 11)  # first breach
    sampler.record("m", 40)  # same (rule, series): refresh, no new event
    events = watchdog.events()
    assert len(events) == 1
    assert events[0].observed == 40  # run-final aggregate, not first excursion
    assert events[0].at_ns == 0
    report = watchdog.report()
    assert not report.ok
    assert report.violations == 1
    assert report.rules == 1


def test_watchdog_separates_series_of_one_metric():
    sampler = Sampler(Simulator(seed=1), every_ns=10)
    watchdog = Watchdog(["queue_bytes max <= 10"], sampler=sampler)
    sampler.record("queue_bytes", 99, node="a")
    sampler.record("queue_bytes", 99, node="b")
    sampler.record("queue_bytes", 1, node="c")
    assert watchdog.violations == 2
    assert {e.labels["node"] for e in watchdog.events()} == {"a", "b"}


def test_check_sweeps_series_recorded_before_attachment():
    sampler = Sampler(Simulator(seed=1), every_ns=10)
    sampler.record("m", 99)
    watchdog = Watchdog(["m max <= 10"], sampler=sampler)
    assert watchdog.violations == 0  # observer missed the old point
    watchdog.check()
    assert watchdog.violations == 1


def test_health_report_round_trips_through_dict():
    sampler = Sampler(Simulator(seed=1), every_ns=10)
    watchdog = Watchdog(["m{node=x} last == 0"], sampler=sampler)
    sampler.record("m", 3, node="x")
    report = watchdog.report()
    clone = HealthReport.from_dict(report.to_dict())
    assert clone.to_dict() == report.to_dict()
    assert clone.events[0].series_name == "m{node=x}"


# -- flight-recorder pinning --------------------------------------------------


def test_violation_pins_breach_span_past_ring_eviction():
    sim = Simulator(seed=1)
    tracer = Tracer(sim, capacity=3)
    sampler = Sampler(sim, every_ns=10)
    Watchdog(["m max <= 10"], sampler=sampler, tracer=tracer)
    sampler.record("m", 99)
    assert "slo:m" in tracer.pinned_elements()
    # Flood the tiny ring: the breach span must survive eviction.
    for seq in range(20):
        tracer.emit("element.egress", "x", 1, 0, seq)
    kinds = [e.kind for e in tracer.events()]
    assert "slo.violation" in kinds
    assert tracer.events_pinned >= 1


def test_violation_pins_component_named_by_labels():
    sim = Simulator(seed=1)
    tracer = Tracer(sim, capacity=3)
    sampler = Sampler(sim, every_ns=10)
    Watchdog(["queue_bytes max <= 10"], sampler=sampler, tracer=tracer)
    # Component spans land in the ring first...
    for seq in range(3):
        tracer.emit("element.egress", "tofino2", 1, 0, seq)
    # ... then the breach names the component: its history is pinned too.
    sampler.record("queue_bytes", 99, node="tofino2", port="out")
    assert "tofino2" in tracer.pinned_elements()
    for seq in range(20):
        tracer.emit("element.egress", "other", 1, 0, seq)
    retained = [e for e in tracer.events() if e.element == "tofino2"]
    assert len(retained) == 3


def test_first_violation_emits_single_span():
    sim = Simulator(seed=1)
    tracer = Tracer(sim, capacity=64)
    sampler = Sampler(sim, every_ns=10)
    Watchdog(["m max <= 10"], sampler=sampler, tracer=tracer)
    for value in (11, 50, 99):
        sampler.record("m", value)
    spans = [e for e in tracer.events() if e.kind == "slo.violation"]
    assert len(spans) == 1


# -- harness integration ------------------------------------------------------


def test_chaos_run_carries_health_report():
    run = run_chaos(
        ChaosConfig(
            sample_every_ns=200_000,
            slo=("sim_pending_events max <= 0",),
        )
    )
    assert run.health is not None
    assert not run.health.ok
    assert run.health.events[0].metric == "sim_pending_events"


def test_chaos_slo_requires_sampling():
    with pytest.raises(ValueError, match="sample_every_ns"):
        run_chaos(ChaosConfig(slo=("queue_bytes max <= 1",)))


def test_farm_fill_skew_rule():
    farm = ReceiverFarm(
        sim=Simulator(seed=5),
        config=FarmConfig(trace=True, sample_every_ns=500_000),
    )
    watchdog = Watchdog(
        ["fleet_fill_skew max <= 0", "fleet_node_fill_pct max <= 100"],
        sampler=farm.sampler,
        tracer=farm.tracer,
    )
    farm.send_stream(96, payload_size=2000, interval_ns=1_000)
    farm.run()
    watchdog.check()
    report = watchdog.report()
    assert report.rules == 2
    assert report.evaluations > 0
    # Per-backend fill stays within bounds whatever the skew did.
    assert not any(
        e.metric == "fleet_node_fill_pct" for e in watchdog.events()
    )
