"""Sampler unit + integration tests: scheduling idiom, determinism,
ring bounds, and the zero-overhead disabled twin."""

import dataclasses

import pytest

from repro.dataplane import PilotConfig, PilotTestbed
from repro.netsim import Simulator
from repro.obs import Sampler, series_digest, watch_queue
from repro.netsim.queues import DropTailQueue, RedQueue
from repro.trace import trace_digest


def make_sampler(every_ns=1_000, **kwargs):
    return Sampler(Simulator(seed=1), every_ns=every_ns, **kwargs)


# -- construction & validation ------------------------------------------------


def test_rejects_bad_parameters():
    sim = Simulator(seed=1)
    with pytest.raises(ValueError):
        Sampler(sim, every_ns=0)
    with pytest.raises(ValueError):
        Sampler(sim, every_ns=-5)
    with pytest.raises(ValueError):
        Sampler(sim, every_ns=10, capacity=0)
    with pytest.raises(ValueError):
        Sampler(sim, every_ns=10, start_ns=100, end_ns=50)


def test_record_and_series_access():
    sampler = make_sampler()
    sampler.record("queue_bytes", 10, node="u280", port="out")
    sampler.record("queue_bytes", 20, node="u280", port="out")
    sampler.record("queue_bytes", 5, node="dtn1", port="out")
    series = sampler.series("queue_bytes", node="u280", port="out")
    assert series.values() == [10, 20]
    assert series.last == 20
    assert series.name == "queue_bytes{node=u280,port=out}"
    assert sampler.sample_emits == 3
    assert len(sampler) == 2
    # Label order in the call does not matter — keys are sorted.
    assert sampler.series("queue_bytes", port="out", node="u280") is series


def test_all_series_deterministic_order():
    sampler = make_sampler()
    sampler.record("b_metric", 1)
    sampler.record("a_metric", 1, z="9")
    sampler.record("a_metric", 1, a="1")
    names = [s.name for s in sampler.all_series()]
    assert names == ["a_metric{a=1}", "a_metric{z=9}", "b_metric"]


def test_ring_eviction_counts():
    sampler = make_sampler(capacity=3)
    for value in range(5):
        sampler.record("m", value)
    series = sampler.series("m")
    assert series.values() == [2, 3, 4]
    assert series.evicted == 2
    assert series.emitted == 5
    assert sampler.evictions == 2


# -- self-scheduling (LinkDynamics idiom) -------------------------------------


def test_arm_keeps_exactly_one_pending_event():
    sim = Simulator(seed=1)
    sampler = Sampler(sim, every_ns=100, end_ns=1_000)
    sampler.watch("tick", lambda: 1)
    sim.schedule(2_000, lambda: None)  # keep the heap non-empty
    sampler.arm()
    with pytest.raises(RuntimeError):
        sampler.arm()
    assert sim.pending_events() == 2  # workload event + the one tick
    sim.run()
    # Bounded horizon: ticks at 0,100,...,1000 then stops itself.
    assert sampler.ticks == 11
    assert not sampler.armed


def test_arm_rejects_start_in_the_past():
    sim = Simulator(seed=1)
    sim.schedule(10, lambda: None)
    sim.run()
    sampler = Sampler(sim, every_ns=100, start_ns=0)
    with pytest.raises(RuntimeError):
        sampler.arm()


def test_disarm_cancels_pending_tick():
    sim = Simulator(seed=1)
    sampler = Sampler(sim, every_ns=100)
    sampler.watch("m", lambda: 1)
    sampler.arm()
    sampler.disarm()
    sim.run()
    assert sampler.ticks == 0
    assert not sampler.armed


def test_stops_when_workload_quiesces():
    """run() without a horizon must terminate: the sampler sees its own
    event already popped, so an empty heap means nothing left to watch."""
    sim = Simulator(seed=1)
    sampler = Sampler(sim, every_ns=100)
    sampler.watch("m", lambda: 1)
    sim.schedule(350, lambda: None)  # workload ends at t=350
    sampler.arm()
    sim.run()
    # Ticks at 0,100,200,300; at 400 the heap is empty -> auto-stop.
    assert sampler.ticks == 5
    assert not sampler.armed
    assert sim.pending_events() == 0


def test_unarmed_sample_now_schedules_nothing():
    sim = Simulator(seed=1)
    sampler = Sampler(sim, every_ns=100)
    sampler.watch("m", lambda: 7)
    sampler.sample_now()
    sampler.sample_now()
    assert sim.pending_events() == 0
    assert sampler.series("m").values() == [7, 7]
    assert sampler.ticks == 2


# -- probe builders -----------------------------------------------------------


def test_watch_queue_includes_aqm_counters_for_red():
    sampler = make_sampler()
    red = RedQueue(capacity_bytes=10_000)
    tail = DropTailQueue(capacity_bytes=10_000)
    watch_queue(sampler, red, node="spine")
    watch_queue(sampler, tail, node="leaf")
    metrics = {s.name for s in sampler.all_series()}
    assert "queue_ce_marked_total{node=spine}" in metrics
    assert "queue_ce_marked_total{node=leaf}" not in metrics
    assert "queue_bytes{node=leaf}" in metrics
    assert "queue_dropped_total{node=spine}" in metrics


# -- pilot integration: determinism & zero overhead ---------------------------

SEED = 7
MESSAGES = 48


def run_pilot(sample_every_ns=None):
    pilot = PilotTestbed(
        sim=Simulator(seed=SEED),
        config=PilotConfig(trace=True, sample_every_ns=sample_every_ns),
    )
    pilot.send_stream(MESSAGES, payload_size=4000, interval_ns=2000)
    pilot.run()
    return pilot


def test_pilot_series_deterministic_across_runs():
    digests = {series_digest(run_pilot(50_000).sampler) for _ in range(2)}
    assert len(digests) == 1


def test_sampler_observes_never_steers():
    """The sampled run's report and flight-recorder digest are identical
    to the sampler-free twin: probes read state, never mutate it."""
    off = run_pilot(None)
    on = run_pilot(50_000)
    assert off.sampler is None
    assert on.sampler is not None and len(on.sampler) > 0
    assert dataclasses.asdict(on.report()) == dataclasses.asdict(off.report())
    assert trace_digest(on.tracer.events()) == trace_digest(off.tracer.events())


def test_disabled_twin_has_no_sampler_state():
    pilot = run_pilot(None)
    assert pilot.sampler is None
