"""Bench regression diffs, provenance gates, and the report CLI."""

import json

import pytest

from repro.cli import main
from repro.obs import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REGRESSION,
    ReportError,
    diff_bench,
    diff_bench_files,
    render_diff,
)
from repro.telemetry.benchfmt import BenchResult


def bench(name="pilot", seed=7, **cases) -> BenchResult:
    result = BenchResult(name=name, seed=seed)
    for case, values in cases.items():
        result.record(case, **values)
    return result


# -- classification -----------------------------------------------------------


def test_identical_benches_are_ok():
    fresh = bench(fig4=dict(packets_per_second=1000, decodes=500))
    diff = diff_bench(fresh, bench(fig4=dict(packets_per_second=1000, decodes=500)))
    assert diff.ok
    assert diff.exit_status == EXIT_OK
    assert all(r.status == "ok" for r in diff.rows)


def test_timing_regression_by_ratio():
    base = bench(fig4=dict(packets_per_second=1000))
    slow = bench(fig4=dict(packets_per_second=700))  # 30% down, tol 20%
    diff = diff_bench(slow, base)
    assert not diff.ok
    assert diff.exit_status == EXIT_REGRESSION
    (row,) = diff.regressions
    assert row.metric == "packets_per_second"
    assert row.ratio == pytest.approx(0.7)


def test_timing_improvement_is_not_fatal():
    base = bench(fig4=dict(packets_per_second=1000))
    fast = bench(fig4=dict(packets_per_second=1400))
    diff = diff_bench(fast, base)
    assert diff.ok
    assert len(diff.improvements) == 1


def test_wall_time_lower_is_better():
    base = bench(fig4=dict(wall_time_s=1.0))
    slow = bench(fig4=dict(wall_time_s=1.5))
    assert not diff_bench(slow, base).ok
    fast = bench(fig4=dict(wall_time_s=0.5))
    assert diff_bench(fast, base).ok


def test_tolerance_band_is_inclusive():
    base = bench(fig4=dict(packets_per_second=1000))
    edge = bench(fig4=dict(packets_per_second=834))  # worse ratio 1.199
    assert diff_bench(edge, base, tolerance=0.2).ok


def test_deterministic_drift_is_fatal():
    base = bench(fig4=dict(decodes=500))
    drifted = bench(fig4=dict(decodes=501))  # within any ratio band
    diff = diff_bench(drifted, base)
    assert not diff.ok
    (row,) = diff.regressions
    assert row.status == "drift"


def test_added_and_removed_rows_are_not_fatal():
    base = bench(fig4=dict(decodes=500, old_metric=1))
    fresh = bench(
        fig4=dict(decodes=500, new_metric=2),
        new_case=dict(decodes=1),
    )
    diff = diff_bench(fresh, base)
    assert diff.ok
    statuses = sorted(r.status for r in diff.rows if r.status != "ok")
    assert statuses == ["added", "added", "removed"]


# -- provenance gates ---------------------------------------------------------


def test_rejects_name_mismatch():
    with pytest.raises(ReportError, match="name mismatch"):
        diff_bench(bench(name="a"), bench(name="b"))


def test_rejects_null_seed():
    with pytest.raises(ReportError, match="no seed"):
        diff_bench(bench(seed=None), bench())
    with pytest.raises(ReportError, match="no seed"):
        diff_bench(bench(), bench(seed=None))


def test_rejects_seed_mismatch():
    with pytest.raises(ReportError, match="seed mismatch"):
        diff_bench(bench(seed=7), bench(seed=8))


def test_rejects_null_row_seed():
    fresh = bench(fig4=dict(seed=None, decodes=1))
    base = bench(fig4=dict(seed=7, decodes=1))
    with pytest.raises(ReportError, match="null seed"):
        diff_bench(fresh, base)


def test_rejects_grid_coordinate_mismatch():
    fresh = bench(case=dict(seed=7, senders=32, fct_us=10))
    base = bench(case=dict(seed=7, senders=16, fct_us=10))
    with pytest.raises(ReportError, match="grid coordinate"):
        diff_bench(fresh, base)


def test_grid_keys_are_skipped_in_metric_diff():
    fresh = bench(case=dict(seed=7, senders=32, decodes=5))
    base = bench(case=dict(seed=7, senders=32, decodes=5))
    diff = diff_bench(fresh, base)
    metrics = {r.metric for r in diff.rows}
    assert "senders" not in metrics
    assert "seed" not in metrics


def test_missing_file_is_a_report_error(tmp_path):
    with pytest.raises(ReportError, match="not found"):
        diff_bench_files(tmp_path / "nope.json", tmp_path / "also-nope.json")


def test_render_lists_non_ok_rows():
    base = bench(fig4=dict(packets_per_second=1000, decodes=5))
    slow = bench(fig4=dict(packets_per_second=100, decodes=5))
    text = render_diff(diff_bench(slow, base))
    assert "regression" in text
    assert "packets_per_second" in text
    assert "decodes" not in text  # ok rows hidden by default
    assert "decodes" in render_diff(diff_bench(slow, base), show_ok=True)


# -- the report CLI -----------------------------------------------------------


def write_bench_dir(path, result: BenchResult):
    path.mkdir(exist_ok=True)
    result.write(path)
    return path


def test_cli_clean_report(tmp_path, capsys):
    fresh = write_bench_dir(tmp_path / "fresh", bench(fig4=dict(decodes=5)))
    base = write_bench_dir(tmp_path / "base", bench(fig4=dict(decodes=5)))
    code = main(["report", "--fresh", str(fresh), "--baseline", str(base)])
    assert code == EXIT_OK
    assert "bench pilot:" in capsys.readouterr().out


def test_cli_regression_exit_code_and_json(tmp_path, capsys):
    fresh = write_bench_dir(
        tmp_path / "fresh", bench(fig4=dict(packets_per_second=10))
    )
    base = write_bench_dir(
        tmp_path / "base", bench(fig4=dict(packets_per_second=1000))
    )
    out = tmp_path / "report.json"
    code = main([
        "report", "--fresh", str(fresh), "--baseline", str(base),
        "--json", str(out),
    ])
    assert code == EXIT_REGRESSION
    payload = json.loads(out.read_text())
    assert payload["status"] == EXIT_REGRESSION
    assert payload["benches"][0]["regressions"] == 1


def test_cli_provenance_failure_is_input_error(tmp_path, capsys):
    fresh = write_bench_dir(tmp_path / "fresh", bench(seed=1))
    base = write_bench_dir(tmp_path / "base", bench(seed=2))
    code = main(["report", "--fresh", str(fresh), "--baseline", str(base)])
    assert code == EXIT_ERROR
    assert "seed mismatch" in capsys.readouterr().err


def test_cli_nothing_to_report_is_an_error(tmp_path, capsys):
    (tmp_path / "fresh").mkdir()
    (tmp_path / "base").mkdir()
    code = main([
        "report", "--fresh", str(tmp_path / "fresh"),
        "--baseline", str(tmp_path / "base"),
    ])
    assert code == EXIT_ERROR


def test_cli_renders_committed_health_file(tmp_path, capsys):
    health = {
        "ok": False, "rules": 1, "evaluations": 4, "violations": 1,
        "events": [{
            "rule": "queue_bytes max <= 1", "metric": "queue_bytes",
            "labels": {"node": "u280"}, "agg": "max", "op": "<=",
            "threshold": 1, "observed": 9000, "at_ns": 50_000,
        }],
    }
    path = tmp_path / "health.json"
    path.write_text(json.dumps(health))
    code = main(["report", "--health", str(path)])
    assert code == EXIT_ERROR  # unhealthy run -> input error, not ok
    out = capsys.readouterr().out
    assert "queue_bytes" in out
