"""Series JSONL export: schema, round-trip, digests, counter tracks."""

import json

import pytest

from repro.netsim import Simulator
from repro.obs import (
    OBS_SCHEMA_VERSION,
    Sampler,
    counter_tracks,
    load_series,
    series_digest,
    series_records,
    write_series,
)
from repro.trace.export import write_chrome_trace


def sampled():
    sampler = Sampler(Simulator(seed=1), every_ns=10)
    sampler.record("queue_bytes", 100, node="u280", port="out")
    sampler.record("queue_bytes", 50, node="u280", port="out")
    sampler.record("link_current_rate_bps", 10**11, link="wan")
    return sampler


def test_write_and_load_round_trip(tmp_path):
    path = tmp_path / "series.jsonl"
    sampler = sampled()
    count = write_series(sampler, path, meta={"scenario": "unit"})
    assert count == 2
    meta, records = load_series(path)
    assert meta["schema_version"] == OBS_SCHEMA_VERSION
    assert meta["scenario"] == "unit"
    assert meta["sample_emits"] == 3
    assert records == series_records(sampler)


def test_every_line_is_sorted_json(tmp_path):
    path = tmp_path / "series.jsonl"
    write_series(sampled(), path)
    for line in path.read_text().splitlines():
        record = json.loads(line)
        assert line == json.dumps(record, sort_keys=True)
        assert record["kind"] in ("meta", "series")


def test_identical_samplers_export_identical_bytes(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_series(sampled(), a)
    write_series(sampled(), b)
    assert a.read_bytes() == b.read_bytes()
    assert series_digest(sampled()) == series_digest(sampled())


def test_load_rejects_unknown_schema_version(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"kind": "meta", "schema_version": 999}) + "\n")
    with pytest.raises(ValueError, match="schema"):
        load_series(path)


def test_load_rejects_unknown_record_kind(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"kind": "mystery"}) + "\n")
    with pytest.raises(ValueError, match="kind"):
        load_series(path)


def test_digest_accepts_sampler_or_records():
    sampler = sampled()
    assert series_digest(sampler) == series_digest(series_records(sampler))


def test_counter_tracks_name_and_points():
    tracks = dict(counter_tracks(sampled()))
    assert tracks["queue_bytes{node=u280,port=out}"] == [(0, 100), (0, 50)]
    assert tracks["link_current_rate_bps{link=wan}"] == [(0, 10**11)]


def test_chrome_trace_merges_counter_records(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace([], path, counters=counter_tracks(sampled()))
    data = json.loads(path.read_text())
    counters = [e for e in data["traceEvents"] if e.get("ph") == "C"]
    assert len(counters) == 3
    assert all(e["pid"] == 1 for e in counters)
    assert {e["name"] for e in counters} == {
        "queue_bytes{node=u280,port=out}",
        "link_current_rate_bps{link=wan}",
    }
    # Tracks are written in (metric, labels) order: link rate first.
    assert [e["args"]["value"] for e in counters] == [10**11, 100, 50]
