"""Placement planning and end-to-end installation."""

import pytest

from repro.controlplane import (
    Capability,
    FlowIntent,
    PlacementError,
    ResourceDescriptor,
    ResourceMap,
    install_plan,
    plan_flow,
)
from repro.core import Feature, MmtStack, ReceiverConfig, extended_registry, make_experiment_id
from repro.dataplane import ProgrammableElement
from repro.netsim import Topology, units

EXP = 31
EXP_ID = make_experiment_id(EXP)

ALL_CAPS = frozenset(
    {
        Capability.MODE_TRANSITION,
        Capability.RETRANSMIT_BUFFER,
        Capability.AGE_UPDATE,
        Capability.DUPLICATION,
    }
)

HEADER_ONLY = frozenset({Capability.MODE_TRANSITION, Capability.AGE_UPDATE})


def make_map():
    m = ResourceMap()
    m.upsert(ResourceDescriptor(
        node="e1", domain="site", address="10.0.1.1",
        capabilities=ALL_CAPS, buffer_bytes=1 << 30))
    m.upsert(ResourceDescriptor(
        node="e2", domain="wan", address="10.0.2.1", capabilities=HEADER_ONLY))
    m.upsert(ResourceDescriptor(
        node="e3", domain="edge", address="10.0.3.1",
        capabilities=ALL_CAPS, buffer_bytes=1 << 28))
    return m


PATH = ["src", "e1", "e2", "e3", "dst"]


def reliable_intent(**over):
    fields = dict(
        experiment_id=EXP_ID,
        reliable=True,
        age_budget_ns=units.seconds(1),
        deadline_offset_ns=units.milliseconds(50),
        notify_addr="10.0.0.2",
    )
    fields.update(over)
    return FlowIntent(**fields)


class TestPlanning:
    def test_entry_at_first_transition_capable(self):
        plan = plan_flow(make_map(), PATH, reliable_intent(), extended_registry())
        e1 = plan.plan_for("e1")
        assert e1.transition is not None
        assert e1.transition.from_config_id == 0
        assert plan.entry_mode.has(Feature.SEQUENCED)
        assert plan.entry_mode.has(Feature.RETRANSMISSION)
        assert plan.entry_mode.has(Feature.AGE_TRACKING)

    def test_exit_deadline_at_last_transition_capable(self):
        plan = plan_flow(make_map(), PATH, reliable_intent(), extended_registry())
        e3 = plan.plan_for("e3")
        assert e3.transition is not None
        assert e3.transition.to_mode == plan.exit_mode.name
        assert e3.transition.deadline_offset_ns == units.milliseconds(50)
        assert plan.exit_mode.has(Feature.TIMELINESS)

    def test_buffers_at_every_capable_element_with_chained_fallback(self):
        plan = plan_flow(make_map(), PATH, reliable_intent(), extended_registry())
        buffers = plan.buffers
        assert [b.node for b in buffers] == ["e1", "e3"]
        assert buffers[0].nak_fallback_addr is None
        assert buffers[1].nak_fallback_addr == "10.0.1.1"

    def test_mid_path_element_refreshes_nearest_buffer(self):
        plan = plan_flow(make_map(), PATH, reliable_intent(), extended_registry())
        e2 = plan.plan_for("e2")
        assert e2.nearest_buffer_addr == "10.0.1.1"
        assert e2.age_update

    def test_duplication_at_last_capable(self):
        intent = reliable_intent(duplicate_to=("10.9.9.9",))
        plan = plan_flow(make_map(), PATH, intent, extended_registry())
        assert plan.plan_for("e3").duplication == {1: ["10.9.9.9"]}
        assert plan.plan_for("e1").duplication is None
        assert plan.entry_mode.has(Feature.DUPLICATION)

    def test_existing_mode_reused(self):
        registry = extended_registry()
        before = len(registry)
        intent = FlowIntent(
            experiment_id=EXP_ID, reliable=True, age_budget_ns=units.seconds(1)
        )
        plan = plan_flow(make_map(), PATH, intent, registry)
        # SEQ|RETX|AGE is exactly the pilot's "age-recover" mode.
        assert plan.entry_mode.name == "age-recover"
        assert len(registry) == before

    def test_synthesized_mode_for_novel_combo(self):
        registry = extended_registry()
        intent = reliable_intent(duplicate_to=("10.9.9.9",))
        plan = plan_flow(make_map(), PATH, intent, registry)
        assert plan.exit_mode.config_id >= 8
        assert plan.exit_mode.has(Feature.DUPLICATION)
        assert plan.exit_mode.has(Feature.TIMELINESS)

    def test_unsatisfiable_intents_rejected(self):
        empty = ResourceMap()
        with pytest.raises(PlacementError):
            plan_flow(empty, PATH, reliable_intent(), extended_registry())
        no_buffers = ResourceMap()
        no_buffers.upsert(ResourceDescriptor(
            node="e2", domain="wan", address="10.0.2.1", capabilities=HEADER_ONLY))
        with pytest.raises(PlacementError):
            plan_flow(no_buffers, ["src", "e2", "dst"], reliable_intent(),
                      extended_registry())
        no_dup = ResourceMap()
        no_dup.upsert(ResourceDescriptor(
            node="e1", domain="site", address="10.0.1.1",
            capabilities=frozenset({Capability.MODE_TRANSITION,
                                    Capability.RETRANSMIT_BUFFER}),
            buffer_bytes=1 << 20))
        with pytest.raises(PlacementError):
            plan_flow(no_dup, ["src", "e1", "dst"],
                      reliable_intent(duplicate_to=("1.1.1.1",)),
                      extended_registry())
        with pytest.raises(PlacementError):
            plan_flow(make_map(), PATH, reliable_intent(notify_addr=None),
                      extended_registry())


class TestInstallEndToEnd:
    def build_network(self, sim):
        topo = Topology(sim)
        src = topo.add_host("src", ip="10.0.0.2")
        dst = topo.add_host("dst", ip="10.0.9.2")
        elements = {}
        for i, addr in ((1, "10.0.1.1"), (2, "10.0.2.1"), (3, "10.0.3.1")):
            element = ProgrammableElement(sim, f"e{i}", mac=topo.allocate_mac(), ip=addr)
            topo.add(element)
            elements[f"e{i}"] = element
        chain = [src, elements["e1"], elements["e2"], elements["e3"], dst]
        for i, (a, b) in enumerate(zip(chain, chain[1:])):
            loss = 0.03 if i == 3 else 0.0  # lossy last hop
            topo.connect(a, b, units.gbps(10), units.milliseconds(2), loss_rate=loss)
        topo.install_routes()
        return topo, src, dst, elements

    def test_planned_flow_recovers_from_nearest_buffer(self, sim):
        topo, src, dst, elements = self.build_network(sim)
        registry = extended_registry()
        intent = FlowIntent(
            experiment_id=EXP_ID, reliable=True, age_budget_ns=units.seconds(1)
        )
        plan = plan_flow(make_map(), PATH, intent, registry)
        install_plan(plan, elements, registry)

        src_stack = MmtStack(src, registry)
        dst_stack = MmtStack(dst, registry)
        got = []
        receiver = dst_stack.bind_receiver(
            EXP,
            on_message=lambda p, h: got.append(h),
            config=ReceiverConfig(initial_rtt_ns=units.milliseconds(20)),
        )
        sender = src_stack.create_sender(
            experiment_id=EXP_ID, mode="identify", dst_ip=dst.ip
        )
        for _ in range(400):
            sender.send(2000)
        sender.finish()
        sim.run()
        receiver.request_missing(EXP_ID, 400)
        sim.run()
        seqs = {h.seq for h in got}
        assert seqs == set(range(400))
        # Recoveries came from e3 (nearest to the lossy hop), some via
        # fallback to e1, never from the source (it keeps no buffer).
        assert elements["e3"].stats.naks_served >= 1
        assert receiver.stats.unrecovered == 0
        # Headers carried the nearest-buffer refresh from e2.
        assert all(h.buffer_addr in ("10.0.1.1", "10.0.3.1") for h in got
                   if h.buffer_addr is not None)

    def test_install_requires_all_elements(self, sim):
        registry = extended_registry()
        plan = plan_flow(make_map(), PATH, reliable_intent(), registry)
        with pytest.raises(PlacementError):
            install_plan(plan, {}, registry)
