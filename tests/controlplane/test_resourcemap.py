"""Resource descriptors and map merge semantics."""

import pytest

from repro.controlplane import Capability, ResourceDescriptor, ResourceMap


def descriptor(node="tofino1", domain="esnet", version=1, **over):
    fields = dict(
        node=node,
        domain=domain,
        address=f"10.9.0.{version}",
        capabilities=frozenset(
            {Capability.MODE_TRANSITION, Capability.AGE_UPDATE}
        ),
        version=version,
    )
    fields.update(over)
    return ResourceDescriptor(**fields)


class TestDescriptor:
    def test_validation(self):
        with pytest.raises(ValueError):
            descriptor(node="")
        with pytest.raises(ValueError):
            descriptor(version=0)
        with pytest.raises(ValueError):
            descriptor(
                capabilities=frozenset({Capability.RETRANSMIT_BUFFER}),
                buffer_bytes=0,
            )

    def test_supports(self):
        d = descriptor()
        assert d.supports(Capability.MODE_TRANSITION)
        assert not d.supports(Capability.DUPLICATION)

    def test_bumped_supersedes(self):
        d = descriptor()
        newer = d.bumped(buffer_bytes=0)
        assert newer.version == d.version + 1
        assert newer.node == d.node


class TestMap:
    def test_upsert_newest_wins(self):
        m = ResourceMap()
        assert m.upsert(descriptor(version=2))
        assert not m.upsert(descriptor(version=1))  # stale
        assert not m.upsert(descriptor(version=2))  # same
        assert m.upsert(descriptor(version=3))
        assert m.get("tofino1").version == 3

    def test_withdraw_respects_version(self):
        m = ResourceMap()
        m.upsert(descriptor(version=2))
        assert not m.withdraw("tofino1", version=1)  # stale withdrawal
        assert "tofino1" in m
        assert m.withdraw("tofino1", version=3)
        assert "tofino1" not in m
        assert not m.withdraw("tofino1", version=4)  # already gone

    def test_capability_query_sorted_by_capacity(self):
        m = ResourceMap()
        m.upsert(descriptor(node="small", capabilities=frozenset({Capability.RETRANSMIT_BUFFER}), buffer_bytes=10))
        m.upsert(descriptor(node="big", capabilities=frozenset({Capability.RETRANSMIT_BUFFER}), buffer_bytes=100))
        found = m.with_capability(Capability.RETRANSMIT_BUFFER)
        assert [d.node for d in found] == ["big", "small"]
        assert m.with_capability(Capability.DUPLICATION) == []

    def test_domain_query(self):
        m = ResourceMap()
        m.upsert(descriptor(node="a", domain="esnet"))
        m.upsert(descriptor(node="b", domain="geant"))
        assert [d.node for d in m.in_domain("esnet")] == ["a"]

    def test_merge_counts_changes(self):
        a = ResourceMap()
        b = ResourceMap()
        a.upsert(descriptor(node="x", version=1))
        b.upsert(descriptor(node="x", version=2))
        b.upsert(descriptor(node="y"))
        assert a.merge(b) == 2
        assert a.get("x").version == 2
        assert len(a) == 2
