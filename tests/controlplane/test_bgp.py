"""Inter-domain map distribution: flooding, loops, withdrawal, timing."""

import pytest

from repro.controlplane import (
    Capability,
    MapSpeaker,
    MapUpdate,
    ResourceDescriptor,
    converge,
)
from repro.netsim import units


def descriptor(domain, node, version=1):
    return ResourceDescriptor(
        node=node,
        domain=domain,
        address="10.0.0.1",
        capabilities=frozenset({Capability.MODE_TRANSITION}),
        version=version,
    )


def triangle(sim):
    """Three domains fully meshed with distinct delays."""
    a = MapSpeaker(sim, "esnet")
    b = MapSpeaker(sim, "geant")
    c = MapSpeaker(sim, "amlight")
    a.peer_with(b, units.milliseconds(10))
    b.peer_with(c, units.milliseconds(20))
    a.peer_with(c, units.milliseconds(50))
    return a, b, c


def test_advertisement_reaches_all_domains(sim):
    a, b, c = triangle(sim)
    a.advertise(descriptor("esnet", "tofino1"))
    sim.run()
    assert converge([a, b, c])
    assert "tofino1" in b.map
    assert "tofino1" in c.map


def test_propagation_takes_shortest_delay(sim):
    a, b, c = triangle(sim)
    arrival = {}
    c.on_change = lambda d: arrival.setdefault("t", sim.now)
    a.advertise(descriptor("esnet", "tofino1"))
    sim.run()
    # a->b->c is 30 ms; a->c direct is 50 ms. First arrival wins at 30.
    assert arrival["t"] == units.milliseconds(30)


def test_loop_prevention_terminates_flooding(sim):
    a, b, c = triangle(sim)
    a.advertise(descriptor("esnet", "tofino1"))
    sim.run()
    total_updates = a.updates_sent + b.updates_sent + c.updates_sent
    assert total_updates <= 10  # bounded, not an update storm
    assert a.loops_suppressed + b.loops_suppressed + c.loops_suppressed >= 1


def test_withdrawal_removes_everywhere(sim):
    a, b, c = triangle(sim)
    a.advertise(descriptor("esnet", "tofino1"))
    sim.run()
    a.withdraw("tofino1")
    sim.run()
    assert converge([a, b, c])
    assert "tofino1" not in b.map
    assert "tofino1" not in c.map


def test_stale_advertisement_cannot_resurrect_withdrawn(sim):
    a, b, _c = triangle(sim)
    a.advertise(descriptor("esnet", "tofino1", version=1))
    sim.run()
    a.withdraw("tofino1")
    sim.run()
    # A stale copy (version 1) arriving later must be ignored.
    b._receive(
        MapUpdate(descriptor("esnet", "tofino1", version=1), None, 0, ("esnet", "geant")),
        "esnet",
    )
    assert "tofino1" not in b.map


def test_refresh_supersedes(sim):
    a, b, _c = triangle(sim)
    a.advertise(descriptor("esnet", "tofino1", version=1))
    sim.run()
    a.advertise(descriptor("esnet", "tofino1", version=2))
    sim.run()
    assert b.map.get("tofino1").version == 2


def test_cannot_originate_foreign_resource(sim):
    a, _b, _c = triangle(sim)
    with pytest.raises(ValueError):
        a.advertise(descriptor("geant", "router9"))


def test_self_peering_rejected(sim):
    a = MapSpeaker(sim, "esnet")
    other = MapSpeaker(sim, "esnet")
    with pytest.raises(ValueError):
        a.peer_with(other, 1000)


def test_multi_origin_convergence(sim):
    a, b, c = triangle(sim)
    a.advertise(descriptor("esnet", "e1"))
    b.advertise(descriptor("geant", "g1"))
    c.advertise(descriptor("amlight", "a1"))
    sim.run()
    assert converge([a, b, c])
    assert len(a.map) == 3
