"""Chaos scenarios end to end: recovery, failover, degradation,
determinism of the committed BENCH_chaos.json metrics."""

import json

import pytest

from repro.faults import SCENARIOS, ChaosConfig, run_chaos, run_scenarios, write_bench

#: Small-but-representative traffic for test speed.
FAST = dict(messages=150, payload_size=4000)


def fast_config(scenario, **overrides):
    return ChaosConfig(scenario=scenario, **FAST, **overrides)


class TestScenarios:
    @pytest.mark.parametrize("scenario", ["link-flap", "burst-loss", "element-restart"])
    def test_outage_scenarios_fully_recover(self, scenario):
        run = run_chaos(fast_config(scenario))
        r = run.report
        assert r.complete, f"{scenario}: {r.unrecovered} unrecovered"
        assert r.faults_fired == r.faults_injected
        assert r.time_to_recover_ns >= 0

    def test_link_flap_loses_then_recovers_via_naks(self):
        run = run_chaos(fast_config("link-flap"))
        r = run.report
        assert r.lost_down > 0  # the outage really dropped frames
        assert r.retransmissions > 0
        assert r.naks_served > 0

    def test_link_drift_recovers_under_trajectories(self):
        run = run_chaos(fast_config("link-drift"))
        r = run.report
        assert r.complete, f"link-drift: {r.unrecovered} unrecovered"
        # The trajectories actually moved the link and the GE model
        # actually drifted mid-window.
        assert r.link_rate_changes > 0
        assert r.link_delay_changes > 0
        assert r.lost_model > 0
        # The drift schedule is part of the plan and fired fully.
        assert r.faults_fired == r.faults_injected
        # The drivers are bounded: the run reached quiescence (we are
        # here) and the link ends at the trajectories' final values.
        assert run.pilot.wan_link.loss_model is None

    def test_burst_loss_uses_the_model(self):
        run = run_chaos(fast_config("burst-loss"))
        r = run.report
        assert r.lost_model > 0
        assert r.lost_down == 0
        assert run.pilot.wan_link.loss_model is None  # removed at window end

    def test_element_restart_drops_and_wipes(self):
        run = run_chaos(fast_config("element-restart"))
        tofino = run.pilot.tofino
        assert tofino.stats.crashes == 1
        assert tofino.stats.restarts == 1
        assert tofino.stats.dropped_failed > 0
        assert run.report.complete


class TestBufferFailover:
    def test_failover_buffer_serves_naks_zero_unrecovered(self):
        run = run_chaos(fast_config("buffer-failover"))
        r = run.report
        assert r.unrecovered == 0
        assert r.delivered == r.messages_sent
        # The kill was recorded and the Tofino re-stamped flows.
        assert r.directory_marks_down == 1
        assert r.buffer_failovers >= 1
        # The DTN 1 failover buffer actually served recoveries.
        assert r.failover_served > 0
        assert run.pilot.buffer.failed
        # Re-stamp is observable in the telemetry scrape.
        assert (
            run.metrics.counter("nearest_buffer_failovers", element="tofino2").value
            >= 1
        )
        assert run.metrics.counter("buffer_directory_marks_down").value == 1

    def test_no_failover_degrades_gracefully(self):
        run = run_chaos(fast_config("buffer-failover", failover=False))
        r = run.report
        sender = run.pilot.dtn1_sender
        # The sender noticed there is no live buffer and shed reliability.
        assert r.mode_degradations == 1
        assert sender.degraded
        assert sender.mode.config_id == 0  # identification-only
        assert r.degraded_final == 1  # bounded re-checks, then gave up
        # The receiving endpoint heard the announcement.
        announcements = run.pilot.dtn2_stack.mode_announcements
        assert len(announcements.get(run.pilot.experiment_id, [])) == 1
        # Bounded NAKs, no storm: every outstanding seq is capped by
        # max_naks, and NAK flushes coalesce ranges into single packets.
        cap = run.pilot.config.receiver.max_naks * 8
        assert 0 < r.naks_sent <= cap
        # Losses while degraded are genuinely unrecoverable — recorded,
        # not retried forever.
        assert r.unrecovered > 0
        assert run.pilot.sim.pending_events() == 0


class TestDeterminism:
    def test_same_seed_byte_identical_bench(self, tmp_path):
        cfg = fast_config("buffer-failover", seed=31)
        first = tmp_path / "first"
        second = tmp_path / "second"
        first.mkdir()
        second.mkdir()
        path1 = write_bench([run_chaos(cfg)], first)
        path2 = write_bench([run_chaos(fast_config("buffer-failover", seed=31))], second)
        assert path1.read_bytes() == path2.read_bytes()

    def test_different_seed_changes_metrics(self):
        a = run_chaos(fast_config("burst-loss", seed=1)).report
        b = run_chaos(fast_config("burst-loss", seed=2)).report
        assert a.metrics() != b.metrics()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_chaos(fast_config("meteor-strike"))


class TestBenchOutput:
    def test_run_scenarios_covers_all_plus_degraded(self, tmp_path):
        runs = run_scenarios(ChaosConfig(messages=80, payload_size=2000))
        names = [r.scenario for r in runs]
        assert names == list(SCENARIOS) + ["buffer-failover-degraded"]
        path = write_bench(runs, tmp_path)
        data = json.loads(path.read_text())
        assert path.name == "BENCH_chaos.json"
        assert data["schema_version"] == 1
        assert data["wall_time_s"] == 0.0  # sim-derived only, replayable
        assert set(data["metrics"]) == set(names)
        for metrics in data["metrics"].values():
            assert metrics["faults_fired"] == metrics["faults_injected"]

    def test_write_bench_creates_out_dir(self, tmp_path):
        run = run_chaos(ChaosConfig(scenario="link-flap", messages=40, payload_size=1000))
        path = write_bench([run], tmp_path / "nested" / "out")
        assert path.exists()

    def test_committed_bench_matches_regeneration(self):
        """The committed BENCH_chaos.json must be reproducible from the
        default config — guards against stale commits."""
        from pathlib import Path

        committed = Path(__file__).resolve().parents[2] / "BENCH_chaos.json"
        if not committed.exists():
            pytest.skip("no committed BENCH_chaos.json")
        data = json.loads(committed.read_text())
        cfg = ChaosConfig(
            messages=data["params"]["messages"],
            payload_size=data["params"]["payload_size"],
            interval_ns=data["params"]["interval_ns"],
            wan_delay_ns=data["params"]["wan_delay_ns"],
            seed=data["seed"],
        )
        scenario = "link-flap"
        fresh = run_chaos(
            ChaosConfig(
                scenario=scenario,
                messages=cfg.messages,
                payload_size=cfg.payload_size,
                interval_ns=cfg.interval_ns,
                wan_delay_ns=cfg.wan_delay_ns,
                seed=cfg.seed,
            )
        )
        assert data["metrics"][scenario] == fresh.report.metrics()
