"""Mid-flow shape-shifting: mode-map rewrites and sender-mode rewrites.

The path-migration machinery under test, bottom-up: the control-plane
:meth:`ModeTransitionProgram.replace_rules` rewrite (atomic, sequence
register carried over), the sender-side :meth:`MmtSender.set_mode`
rewrite (validated, degradation-aware), and the full
``mode-rewrite-churn`` chaos scenario with its golden counters and a
pinned wire digest for two seeds.
"""

import pytest

from repro.core import EndpointError
from repro.core.modes import ModeError
from repro.dataplane import PilotConfig, PilotTestbed
from repro.dataplane.programs import TransitionRule
from repro.faults import ChaosConfig, run_chaos, run_mode_rewrite_chaos
from repro.netsim import Simulator
from repro.trace import trace_digest


def _pilot(seed: int = 42, **overrides) -> PilotTestbed:
    return PilotTestbed(
        sim=Simulator(seed=seed), config=PilotConfig(**overrides)
    )


class TestReplaceRules:
    def test_uninstalled_program_refuses(self):
        from repro.core import pilot_registry
        from repro.dataplane.programs import ModeTransitionProgram

        program = ModeTransitionProgram(pilot_registry(), rules=[])
        with pytest.raises(RuntimeError):
            program.replace_rules([])

    def test_rewrite_is_atomic_on_bad_target(self):
        pilot = _pilot()
        program = pilot.u55c_transition
        entries_before = len(program._table.entries)
        rules_before = list(program.rules)
        bad = TransitionRule(from_config_id=1, to_mode="no-such-mode")
        with pytest.raises(ModeError):
            program.replace_rules([bad])
        assert len(program._table.entries) == entries_before
        assert program.rules == rules_before
        assert program.rewrites == 0

    def test_sequence_register_survives_the_rewrite(self):
        """Rewrite the U280's map to an identical rule set mid-stream:
        numbering continues where it left off, so a lossless run stays
        NAK-free — a register reset would make the receiver see a gap
        (or a replay) and start NAKing."""
        pilot = _pilot()
        interval = 2_000
        for i in range(20):
            pilot.sim.schedule(i * interval, pilot.send_message, 2000, 0)
        pilot.sim.run()
        program = pilot.u280_transition
        applied_before = program.transitions_applied
        assert applied_before == 20
        program.replace_rules(list(program.rules))
        for i in range(20):
            pilot.sim.schedule(i * interval, pilot.send_message, 2000, 0)
        report = pilot.run()
        assert program.rewrites == 1
        assert program.transitions_applied == 40
        assert report.delivered == 40
        assert report.naks_sent == 0
        assert report.unrecovered == 0

    def test_empty_rewrite_retires_the_map(self):
        pilot = _pilot()
        pilot.send_message(2000, 0)
        pilot.sim.run()
        program = pilot.u280_transition
        assert program.transitions_applied == 1
        program.replace_rules([])
        pilot.send_message(2000, 0)
        pilot.sim.run()
        assert program.transitions_applied == 1  # nothing matches now
        assert program.rules == []

    def test_rewrite_emits_trace_span(self):
        pilot = _pilot(trace=True)
        pilot.u55c_transition.replace_rules(list(pilot.u55c_transition.rules))
        kinds = [e.kind for e in pilot.tracer.events()]
        assert "mode.rewrite" in kinds


class TestSenderSetMode:
    def test_rewrite_counts_and_streams_on(self):
        pilot = _pilot(use_directory=True, reliable_from_dtn1=True,
                       failover_buffer=True)
        sender = pilot.dtn1_sender
        interval = 2_000
        for i in range(10):
            pilot.sim.schedule(i * interval, pilot.send_message, 2000, 0)
        pilot.sim.schedule(5 * interval + 1, sender.set_mode, "age-recover")
        report = pilot.run()
        assert sender.stats.mode_rewrites == 1
        assert report.delivered == 10
        assert report.unrecovered == 0

    def test_missing_feature_requirements_rejected_before_any_change(self):
        pilot = _pilot(use_directory=True, reliable_from_dtn1=True,
                       failover_buffer=True)
        sender = pilot.dtn1_sender
        mode_before = sender.mode
        # deliver-check needs TIMELINESS (deadline + notify address),
        # which the DTN 1 sender was not constructed with.
        with pytest.raises(EndpointError):
            sender.set_mode("deliver-check")
        assert sender.mode is mode_before
        assert sender.stats.mode_rewrites == 0

    def test_unknown_mode_rejected(self):
        pilot = _pilot(use_directory=True, reliable_from_dtn1=True,
                       failover_buffer=True)
        with pytest.raises(ModeError):
            pilot.dtn1_sender.set_mode("no-such-mode")


def _churn_report(seed: int):
    return run_mode_rewrite_chaos(ChaosConfig(
        scenario="mode-rewrite-churn", seed=seed
    )).report


class TestModeRewriteChurnScenario:
    def test_golden_counters_seed_42(self):
        r = _churn_report(42)
        assert r.unrecovered == 0
        assert r.content_mismatches == 0
        assert r.delivered == r.messages_sent == 500
        # The golden degradation ledger: every flow degrades once while
        # both buffers are marked down, and every flow re-upgrades.
        assert r.mode_degradations == 3
        assert r.mode_upgrades == 3
        assert r.degraded_final == 0
        # Two table rewrites (shift + restore) plus zero sender-side
        # set_mode calls in this scenario.
        assert r.mode_rewrites == 2

    def test_golden_counters_seed_7(self):
        r = _churn_report(7)
        assert r.unrecovered == 0
        assert r.content_mismatches == 0
        assert r.delivered == r.messages_sent == 500
        assert r.mode_degradations == 3
        assert r.mode_upgrades == 3
        assert r.degraded_final == 0
        assert r.mode_rewrites == 2

    def test_replays_byte_identically(self):
        assert _churn_report(42) == _churn_report(42)

    def test_dispatch_through_run_chaos(self):
        run = run_chaos(ChaosConfig(scenario="mode-rewrite-churn", seed=42))
        assert run.scenario == "mode-rewrite-churn"
        assert run.report == _churn_report(42)

    def test_short_stream_no_sequence_collision(self):
        """Regression: at short streams the ``stream // 20`` mark-up
        margin is smaller than the sensor→U280 relay drain, so a last
        in-flight identify relay used to arrive *after* mark-up, get
        sequenced from the U280 register (seq 0), and be dropped as a
        duplicate of the sender's own seq 0 — one message silently
        corrupted with ``unrecovered == 0``. The mark-up time now
        floors the margin at the config-derived drain bound."""
        r = run_mode_rewrite_chaos(
            ChaosConfig(scenario="mode-rewrite-churn", messages=120)
        ).report
        assert r.delivered == r.messages_sent == 120
        assert r.content_mismatches == 0
        assert r.duplicates == 0
        assert r.unrecovered == 0
        assert r.mode_degradations == r.mode_upgrades == 3
        assert r.degraded_final == 0


def _rewrite_wire_digest(seed: int) -> str:
    """A traced lossy pilot with a mid-stream U55C map rewrite: the
    digest over every retained wire event pins the whole causal record
    of the migration — any drift in rewrite timing, sequencing, loss
    draws, recovery interleaving, or delivery order changes it. (The
    loss makes the record seed-dependent: two pins, two seeds.)"""
    pilot = _pilot(seed=seed, trace=True, wan_loss_rate=0.08)
    interval = 2_000
    for i in range(30):
        pilot.sim.schedule(i * interval, pilot.send_message, 2000, 0)
    original = list(pilot.u55c_transition.rules)
    age_recover_id = pilot.registry.by_name("age-recover").config_id
    shifted = TransitionRule(from_config_id=age_recover_id, to_mode="age-recover")
    pilot.sim.schedule(
        15 * interval + 1, pilot.u55c_transition.replace_rules, [shifted]
    )
    pilot.sim.schedule(
        22 * interval + 1, pilot.u55c_transition.replace_rules, original
    )
    report = pilot.run()
    assert report.delivered == 30
    assert report.unrecovered == 0
    assert pilot.u55c_transition.rewrites == 2
    return trace_digest(pilot.tracer.events())


class TestRewriteWireDigest:
    GOLDEN = {
        7: "60bda46f84caff0c09037d9bcab063cedfc3a796e08e06002053922b079f02ae",
        42: "9961948dfd3bc1bef7df7fe3ca23b20f59bbaa4fba38ce08ae2af13b10b6af20",
    }

    @pytest.mark.parametrize("seed", sorted(GOLDEN))
    def test_wire_digest_pinned(self, seed):
        assert _rewrite_wire_digest(seed) == self.GOLDEN[seed]
