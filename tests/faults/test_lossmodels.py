"""Loss models: uniform, Gilbert–Elliott bursts, control-only loss."""

import random

import pytest

from repro.core import Feature, MmtHeader, MsgType
from repro.faults import ControlPacketLoss, GilbertElliottLoss, UniformLoss
from repro.netsim import Packet


def data_packet(msg_type=MsgType.DATA):
    header = MmtHeader(config_id=1, features=Feature.SEQUENCED,
                       msg_type=msg_type, experiment_id=7)
    return Packet(headers=[header], payload_size=100)


class TestUniform:
    def test_rate_zero_never_drops(self):
        model = UniformLoss(0.0)
        rng = random.Random(1)
        assert not any(model.should_drop(data_packet(), rng) for _ in range(100))
        assert model.dropped == 0

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            UniformLoss(1.5)

    def test_drop_fraction_tracks_rate(self):
        model = UniformLoss(0.3)
        rng = random.Random(7)
        drops = sum(model.should_drop(data_packet(), rng) for _ in range(5000))
        assert 0.25 < drops / 5000 < 0.35
        assert model.dropped == drops


class TestGilbertElliott:
    def test_losses_are_bursty_not_uniform(self):
        """With the same long-run loss fraction, GE drops cluster into
        runs; measure via consecutive-drop pairs vs a uniform model."""
        ge = GilbertElliottLoss(
            p_good_to_bad=0.02, p_bad_to_good=0.2, loss_good=0.0, loss_bad=0.8
        )
        rng = random.Random(123)
        outcomes = [ge.should_drop(data_packet(), rng) for _ in range(20_000)]
        rate = sum(outcomes) / len(outcomes)
        uniform = UniformLoss(rate)
        rng2 = random.Random(123)
        flat = [uniform.should_drop(data_packet(), rng2) for _ in range(20_000)]

        def pairs(seq):
            return sum(1 for a, b in zip(seq, seq[1:]) if a and b)

        assert ge.bursts > 100
        assert pairs(outcomes) > 3 * pairs(flat)

    def test_deterministic_given_same_rng_seed(self):
        def run():
            model = GilbertElliottLoss()
            rng = random.Random("55:link")
            return [model.should_drop(data_packet(), rng) for _ in range(2000)]

        assert run() == run()

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_to_bad=-0.1)
        with pytest.raises(ValueError):
            GilbertElliottLoss(loss_bad=1.01)

    def test_good_regime_can_be_lossless(self):
        model = GilbertElliottLoss(p_good_to_bad=0.0, loss_good=0.0)
        rng = random.Random(5)
        assert not any(model.should_drop(data_packet(), rng) for _ in range(500))


class TestControlPacketLoss:
    def test_drops_only_control_traffic(self):
        model = ControlPacketLoss(rate=1.0)
        rng = random.Random(9)
        assert not model.should_drop(data_packet(MsgType.DATA), rng)
        assert not model.should_drop(data_packet(MsgType.RETX_DATA), rng)
        assert model.should_drop(data_packet(MsgType.NAK), rng)
        assert model.should_drop(data_packet(MsgType.WINDOW), rng)
        assert model.seen == 2 and model.dropped == 2

    def test_non_mmt_packets_pass(self):
        model = ControlPacketLoss(rate=1.0)
        assert not model.should_drop(Packet(payload_size=64), random.Random(1))

    def test_custom_type_set(self):
        model = ControlPacketLoss(rate=1.0, msg_types={MsgType.NAK})
        rng = random.Random(2)
        assert model.should_drop(data_packet(MsgType.NAK), rng)
        assert not model.should_drop(data_packet(MsgType.WINDOW), rng)

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            ControlPacketLoss(rate=-0.5)


class TestLinkIntegration:
    def test_loss_model_drops_counted_separately(self, sim):
        """A model on the link counts into lost_model, not lost_random,
        and installing one does not perturb other RNG streams."""
        from repro.core import MmtStack, make_experiment_id
        from tests.conftest import TwoHostRig

        rig = TwoHostRig(sim)
        rig.link_b.loss_model = UniformLoss(0.5)
        stack_a = MmtStack(rig.a)
        stack_b = MmtStack(rig.b)
        got = []
        stack_b.bind_receiver(3, on_message=lambda p, h: got.append(h.seq))
        sender = stack_a.create_sender(
            experiment_id=make_experiment_id(3), mode="identify", dst_ip=rig.b.ip
        )
        for _ in range(200):
            sender.send(500)
        sim.run()
        stats = rig.link_b.stats
        assert stats.lost_model > 50
        assert stats.lost_random == 0
        assert len(got) == 200 - stats.lost_model
