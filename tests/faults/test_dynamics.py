"""Time-varying link dynamics: trajectories, reconfigure, drift.

Covers the dynamics layer end to end: :class:`Trajectory` curves as
pure functions of the engine clock, :meth:`Link.reconfigure` semantics
and its stats/trace side effects, the self-scheduling
:class:`LinkDynamics` driver landing exactly on the clock, scheduled
Gilbert–Elliott parameter drift preserving the replay contract, and
the new link series in the telemetry scrape.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, GilbertElliottLoss, LinkDynamics, Trajectory
from repro.netsim import units
from repro.netsim.queues import DropTailQueue
from repro.telemetry import MetricsRegistry, scrape_link
from tests.conftest import TwoHostRig


class RecordingTracer:
    """Just enough of the Tracer surface for a Link: records emits."""

    def __init__(self):
        self.events = []

    def emit(self, kind, element, *args, **attrs):
        self.events.append((kind, element, attrs))

    def packet_event(self, kind, element, packet, **attrs):
        self.events.append((kind, element, attrs))


class TestTrajectory:
    def test_step_holds_and_switches_at_waypoints(self):
        curve = Trajectory([(100, 5.0), (200, 9.0)])
        assert curve.value_at(0) == 5.0  # before the first waypoint: hold
        assert curve.value_at(99) == 5.0
        assert curve.value_at(100) == 5.0
        assert curve.value_at(199) == 5.0
        assert curve.value_at(200) == 9.0
        assert curve.value_at(10**9) == 9.0  # flat forever after

    def test_linear_interpolates_and_is_flat_past_the_end(self):
        curve = Trajectory([(0, 0.0), (100, 10.0)], interpolate="linear")
        assert curve.value_at(0) == 0.0
        assert curve.value_at(50) == 5.0
        assert curve.value_at(100) == 10.0
        assert curve.value_at(500) == 10.0

    def test_periodic_repeats_and_closes_the_loop(self):
        curve = Trajectory(
            [(0, 0.0), (100, 10.0)], interpolate="linear", period_ns=200
        )
        # Linear periodic curves interpolate from the last waypoint back
        # to the first value at the period boundary.
        assert curve.value_at(150) == 5.0
        for t in (0, 37, 100, 150, 199):
            assert curve.value_at(t) == curve.value_at(t + 200)
            assert curve.value_at(t) == curve.value_at(t + 7 * 200)

    def test_diurnal_low_at_origin_high_at_half_period(self):
        day = units.seconds(1)
        curve = Trajectory.diurnal(low=100, high=200, period_ns=day)
        assert curve.value_at(0) == 100.0
        assert curve.value_at(day // 2) == 200.0
        assert curve.value_at(day) == 100.0  # next "morning"

    def test_validation(self):
        with pytest.raises(ValueError):
            Trajectory([])
        with pytest.raises(ValueError):
            Trajectory([(0, 1.0)], interpolate="cubic")
        with pytest.raises(ValueError):
            Trajectory([(-1, 1.0)])
        with pytest.raises(ValueError):
            Trajectory([(0, 1.0), (0, 2.0)])  # not strictly increasing
        with pytest.raises(ValueError):
            Trajectory([(0, 1.0), (100, 2.0)], period_ns=100)  # period <= last
        with pytest.raises(ValueError):
            Trajectory([(10, 1.0)], period_ns=100)  # periodic must start at 0
        with pytest.raises(ValueError):
            Trajectory([(0, 1.0)]).value_at(-5)
        with pytest.raises(ValueError):
            Trajectory.diurnal(low=0, high=1, period_ns=10**9, steps=1)

    def test_change_times_step_is_boundaries_only(self):
        curve = Trajectory([(0, 1.0), (300, 2.0), (700, 3.0)])
        assert curve.change_times(0, 1000, sample_every_ns=50) == [0, 300, 700]
        # Window selection is inclusive on both ends.
        assert curve.change_times(300, 700, sample_every_ns=50) == [300, 700]
        assert curve.change_times(301, 699, sample_every_ns=50) == []

    def test_change_times_linear_samples_anchor_at_segment_start(self):
        curve = Trajectory([(0, 0.0), (100, 1.0)], interpolate="linear")
        # Samples are spaced from each boundary, so the boundary at 100
        # is hit exactly even though 30 does not divide 100.
        times = curve.change_times(0, 100, sample_every_ns=30)
        assert times == [0, 30, 60, 90, 100]
        # Past the last waypoint a non-periodic linear curve is flat:
        # nothing to sample out there.
        assert curve.change_times(0, 10**6, sample_every_ns=30) == [0, 30, 60, 90, 100]

    def test_change_times_periodic_repeats_every_cycle(self):
        curve = Trajectory([(0, 1.0), (60, 2.0)], period_ns=100)
        assert curve.change_times(0, 250, sample_every_ns=10**9) == [
            0, 60, 100, 160, 200,
        ]

    def test_change_times_validation(self):
        curve = Trajectory([(0, 1.0)])
        with pytest.raises(ValueError):
            curve.change_times(0, 100, sample_every_ns=0)
        with pytest.raises(ValueError):
            curve.change_times(100, 0, sample_every_ns=10)


class TestLinkReconfigure:
    def test_rate_change_bumps_stats_and_current_rate(self, sim):
        rig = TwoHostRig(sim)
        link = rig.link_b
        before = link.rate_bps
        assert link.stats.current_rate_bps == before
        assert link.reconfigure(rate_bps=before // 2)
        assert link.rate_bps == before // 2
        assert link.stats.rate_changes == 1
        assert link.stats.delay_changes == 0
        assert link.stats.current_rate_bps == before // 2

    def test_noop_reconfigure_counts_nothing(self, sim):
        rig = TwoHostRig(sim)
        link = rig.link_b
        assert not link.reconfigure(
            rate_bps=link.rate_bps,
            propagation_delay_ns=link.propagation_delay_ns,
            loss_rate=link.loss_rate,
        )
        assert link.stats.rate_changes == 0
        assert link.stats.delay_changes == 0

    def test_delay_and_loss_changes(self, sim):
        rig = TwoHostRig(sim)
        link = rig.link_b
        assert link.reconfigure(propagation_delay_ns=link.propagation_delay_ns * 2)
        assert link.stats.delay_changes == 1
        assert link.reconfigure(loss_rate=0.25)
        assert link.loss_rate == 0.25
        # Loss-rate changes are not a rate/delay stat.
        assert link.stats.rate_changes == 0

    def test_validation_matches_construction(self, sim):
        rig = TwoHostRig(sim)
        with pytest.raises(ValueError):
            rig.link_b.reconfigure(rate_bps=0)
        with pytest.raises(ValueError):
            rig.link_b.reconfigure(propagation_delay_ns=-1)
        with pytest.raises(ValueError):
            rig.link_b.reconfigure(loss_rate=1.0)

    def test_reconfig_emits_trace_span(self, sim):
        rig = TwoHostRig(sim)
        link = rig.link_b
        link.tracer = tracer = RecordingTracer()
        link.reconfigure(rate_bps=link.rate_bps // 2)
        assert [(k, e) for k, e, _ in tracer.events] == [("link.reconfig", link.name)]
        _, _, attrs = tracer.events[0]
        assert attrs == {
            "rate_bps": link.rate_bps, "delay_ns": link.propagation_delay_ns,
        }
        # A no-op application stays silent.
        link.reconfigure(rate_bps=link.rate_bps)
        assert len(tracer.events) == 1

    def test_scrape_exports_dynamics_series(self, sim):
        rig = TwoHostRig(sim)
        link = rig.link_b
        link.reconfigure(rate_bps=link.rate_bps // 2, propagation_delay_ns=1)
        registry = MetricsRegistry()
        scrape_link(link, registry)
        assert registry.counter(
            "link_rate_changes_total", link=link.name
        ).value == 1
        assert registry.counter(
            "link_delay_changes_total", link=link.name
        ).value == 1
        assert registry.gauge(
            "link_current_rate_bps", link=link.name
        ).value == link.rate_bps


class TestLinkDynamics:
    def test_needs_a_trajectory(self, sim):
        rig = TwoHostRig(sim)
        with pytest.raises(ValueError):
            LinkDynamics(rig.link_b)

    def test_applies_exactly_on_the_engine_clock(self, sim):
        rig = TwoHostRig(sim)
        link = rig.link_b
        r0 = link.rate_bps
        dynamics = LinkDynamics(
            link,
            rate_bps=Trajectory([(0, r0), (1000, r0 // 2), (2000, r0)]),
            start_ns=500,
        )
        dynamics.arm()
        sim.run(until_ns=1499)
        assert link.rate_bps == r0  # waypoint 1000 applies at 500+1000
        sim.run(until_ns=1500)
        assert link.rate_bps == r0 // 2
        sim.run()
        assert link.rate_bps == r0
        assert dynamics.applied == len(dynamics) == 3
        assert link.stats.rate_changes == 2  # the t=0 application is a no-op

    def test_bounded_horizon_terminates(self, sim):
        rig = TwoHostRig(sim)
        link = rig.link_b
        day = units.seconds(2)
        dynamics = LinkDynamics(
            link,
            rate_bps=Trajectory.diurnal(
                low=link.rate_bps // 2, high=link.rate_bps, period_ns=day
            ),
            end_ns=day,
            sample_every_ns=day // 48,
        )
        dynamics.arm()
        sim.run()  # to quiescence: must not hang on a periodic curve
        assert sim.now <= day
        assert dynamics.applied == len(dynamics)

    def test_double_arm_and_past_start_rejected(self, sim):
        rig = TwoHostRig(sim)
        dynamics = LinkDynamics(rig.link_b, rate_bps=Trajectory([(0, 1000)]))
        dynamics.arm()
        with pytest.raises(RuntimeError):
            dynamics.arm()
        sim.run()
        late = LinkDynamics(rig.link_b, rate_bps=Trajectory([(0, 1000)]), start_ns=0)
        if sim.now > 0:
            with pytest.raises(ValueError):
                late.arm()

    def test_plan_carries_dynamics(self, sim):
        rig = TwoHostRig(sim)
        link = rig.link_b
        r0 = link.rate_bps
        plan = FaultPlan().link_dynamics(
            LinkDynamics(link, rate_bps=Trajectory([(0, r0), (700, r0 // 4)]))
        )
        FaultInjector(sim, plan).arm()
        sim.run()
        assert link.rate_bps == r0 // 4
        assert link.stats.rate_changes == 1


class TestGilbertElliottDrift:
    def test_set_params_validates_and_counts(self):
        model = GilbertElliottLoss(0.01, 0.3, 0.0, 0.5)
        model.set_params(p_good_to_bad=0.05, loss_bad=0.7)
        assert model.p_good_to_bad == 0.05
        assert model.loss_bad == 0.7
        assert model.p_bad_to_good == 0.3  # untouched
        assert model.drifts == 1
        with pytest.raises(ValueError):
            model.set_params(loss_bad=1.5)
        assert model.drifts == 1  # failed drift did not count

    def test_set_params_preserves_regime_state(self):
        model = GilbertElliottLoss(0.01, 0.3, 0.0, 0.5)
        model.in_bad = True
        model.set_params(loss_bad=0.9)
        assert model.in_bad

    def test_plan_ge_drift_validates_eagerly(self, sim):
        model = GilbertElliottLoss(0.01, 0.3, 0.0, 0.5)
        with pytest.raises(ValueError):
            FaultPlan().ge_drift(model, [(100, {"loss_bad": 2.0})])
        with pytest.raises(ValueError):
            FaultPlan().ge_drift(model, [(100, {"no_such_param": 0.5})])

    def test_plan_ge_drift_fires_in_order(self, sim):
        model = GilbertElliottLoss(0.01, 0.3, 0.0, 0.5)
        plan = FaultPlan().ge_drift(
            model,
            [(100, {"loss_bad": 0.7}), (200, {"loss_bad": 0.2})],
        )
        injector = FaultInjector(sim, plan)
        injector.arm()
        sim.run(until_ns=150)
        assert model.loss_bad == 0.7
        sim.run()
        assert model.loss_bad == 0.2
        assert model.drifts == 2


class TestQueueResize:
    def test_resize_changes_capacity_and_counts(self):
        queue = DropTailQueue(capacity_bytes=1000)
        queue.resize(500)
        assert queue.capacity_bytes == 500
        assert queue.resizes == 1
        queue.resize(500)  # no-op
        assert queue.resizes == 1
        with pytest.raises(ValueError):
            queue.resize(0)
