"""FaultPlan / FaultInjector: scripted, replayable fault scheduling."""

import pytest

from repro.faults import FaultInjector, FaultPlan, UniformLoss
from repro.netsim import Simulator, units
from tests.conftest import TwoHostRig


class TestPlanBuilding:
    def test_builders_chain_and_accumulate(self, sim):
        rig = TwoHostRig(sim)
        plan = (
            FaultPlan()
            .link_down(rig.link_b, at_ns=100)
            .link_up(rig.link_b, at_ns=200)
            .set_loss_model(rig.link_b, UniformLoss(0.5), at_ns=300)
            .clear_loss_model(rig.link_b, at_ns=400)
        )
        assert len(plan) == 4
        assert plan.start_ns == 100
        assert plan.end_ns == 400

    def test_flap_expands_to_down_up_pairs(self, sim):
        rig = TwoHostRig(sim)
        plan = FaultPlan().link_flap(
            rig.link_b, first_down_ns=1000, down_ns=200, period_ns=500, count=3
        )
        kinds = [(a.kind, a.at_ns) for a in plan.actions]
        assert kinds == [
            ("link_down", 1000), ("link_up", 1200),
            ("link_down", 1500), ("link_up", 1700),
            ("link_down", 2000), ("link_up", 2200),
        ]

    def test_flap_validation(self, sim):
        rig = TwoHostRig(sim)
        with pytest.raises(ValueError):
            FaultPlan().link_flap(rig.link_b, 0, down_ns=500, period_ns=500, count=1)
        with pytest.raises(ValueError):
            FaultPlan().link_flap(rig.link_b, 0, down_ns=100, period_ns=500, count=0)

    def test_negative_time_rejected(self, sim):
        rig = TwoHostRig(sim)
        with pytest.raises(ValueError):
            FaultPlan().link_down(rig.link_b, at_ns=-1)


class TestInjector:
    def test_actions_fire_at_their_times(self, sim):
        rig = TwoHostRig(sim)
        plan = (
            FaultPlan()
            .link_down(rig.link_b, at_ns=units.microseconds(10))
            .link_up(rig.link_b, at_ns=units.microseconds(30))
        )
        injector = FaultInjector(sim, plan)
        assert injector.arm() == 2
        assert rig.link_b.up
        sim.run(until_ns=units.microseconds(20))
        assert not rig.link_b.up
        sim.run()
        assert rig.link_b.up
        assert [(r.kind, r.at_ns) for r in injector.fired] == [
            ("link_down", units.microseconds(10)),
            ("link_up", units.microseconds(30)),
        ]

    def test_double_arm_rejected(self, sim):
        rig = TwoHostRig(sim)
        injector = FaultInjector(sim, FaultPlan().link_down(rig.link_b, at_ns=10))
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()

    def test_past_action_rejected_atomically(self, sim):
        rig = TwoHostRig(sim)
        sim.schedule(100, lambda: None)
        sim.run()
        plan = (
            FaultPlan()
            .link_down(rig.link_b, at_ns=500)
            .link_up(rig.link_b, at_ns=50)  # already in the past
        )
        injector = FaultInjector(sim, plan)
        with pytest.raises(ValueError):
            injector.arm()
        assert sim.pending_events() == 0  # nothing half-scheduled

    def test_custom_action(self, sim):
        hits = []
        FaultInjector(
            sim, FaultPlan().at(1000, lambda: hits.append(sim.now), kind="probe")
        ).arm()
        sim.run()
        assert hits == [1000]
        assert FaultPlan().start_ns == 0  # empty plan is well-defined


class TestBufferAndElementActions:
    def test_buffer_fail_marks_directory_down(self, sim):
        from repro.core import BufferDirectory, RetransmitBuffer

        directory = BufferDirectory()
        directory.register("10.0.0.9", path_position=3)
        buf = RetransmitBuffer(10_000, address="10.0.0.9")
        plan = (
            FaultPlan()
            .buffer_fail(buf, at_ns=100, directory=directory)
            .buffer_restore(buf, at_ns=200, directory=directory)
        )
        FaultInjector(sim, plan).arm()
        sim.run(until_ns=150)
        assert buf.failed
        assert directory.alive_count() == 0
        sim.run()
        assert not buf.failed
        assert directory.alive_count() == 1
