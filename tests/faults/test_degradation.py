"""Resilience mechanics: sender mode degradation and element restart."""

from repro.core import BufferDirectory, MmtStack, make_experiment_id
from repro.netsim import units
from tests.conftest import TwoHostRig

EXP = 9
EXP_ID = make_experiment_id(EXP)


def build_degradable(sim, rig):
    """Sender at a with a local, directory-registered buffer; receiver at b."""
    stack_a = MmtStack(rig.a)
    stack_b = MmtStack(rig.b)
    stack_a.attach_buffer(1024 * 1024)
    directory = BufferDirectory()
    directory.register(rig.a.ip, path_position=0, experiments={EXP_ID})
    got = []
    stack_b.bind_receiver(EXP, on_message=lambda p, h: got.append(h))
    sender = stack_a.create_sender(
        experiment_id=EXP_ID,
        mode="age-recover",
        dst_ip=rig.b.ip,
        age_budget_ns=units.seconds(10),
        buffer_local=True,
        directory=directory,
        path_position=0,
        degraded_mode="identify",
    )
    return stack_a, stack_b, directory, sender, got


class TestSenderDegradation:
    def test_degrades_when_no_live_buffer_and_recovers(self, sim):
        stack_a, stack_b, directory, sender, got = build_degradable(sim, TwoHostRig(sim))
        for _ in range(5):
            sender.send(1000)
        sim.run()
        assert not sender.degraded
        assert all(h.config_id == sender.mode.config_id for h in got)

        directory.mark_down(stack_a.host.ip)
        for _ in range(5):
            sender.send(1000)
        # Bounded run: long enough to deliver, short of the first
        # buffer re-check (which would burn through the give-up budget
        # while the buffer is still down).
        sim.run(until_ns=sim.now + units.milliseconds(1))
        assert sender.degraded
        assert sender.stats.mode_degradations == 1
        # Degraded messages still flow — identification-only, no seq.
        assert len(got) == 10
        assert all(h.config_id == 0 for h in got[5:])
        # The receiving endpoint was told about the mode change.
        assert len(stack_b.mode_announcements.get(EXP_ID, [])) == 1

        # Buffer comes back: the periodic re-check upgrades the sender.
        directory.mark_up(stack_a.host.ip)
        sim.run(until_ns=sim.now + units.milliseconds(5))
        assert not sender.degraded
        assert sender.stats.mode_upgrades == 1
        sender.send(1000)
        sim.run()
        assert got[-1].config_id == sender.mode.config_id
        assert stack_b.mode_announcements[EXP_ID][-1].config_id == sender.mode.config_id

    def test_gives_up_rechecking_boundedly(self, sim):
        stack_a, stack_b, directory, sender, got = build_degradable(sim, TwoHostRig(sim))
        directory.mark_down(stack_a.host.ip)
        sender.send(1000)
        sim.run(until_ns=units.seconds(30))
        assert sender.degraded
        assert sender.stats.degraded_final == 1
        assert sender.stats.buffer_rechecks_failed == sender.config.max_buffer_rechecks
        # The re-check timer stopped: no eternal polling.
        sim.run()
        assert sim.pending_events() == 0

    def test_degradation_counters_scraped_into_telemetry(self, sim):
        from repro.telemetry import MetricsRegistry
        from repro.telemetry.collect import scrape_sender

        stack_a, stack_b, directory, sender, got = build_degradable(sim, TwoHostRig(sim))
        directory.mark_down(stack_a.host.ip)
        sender.send(1000)
        sim.run()
        registry = MetricsRegistry()
        scrape_sender(sender, registry, host="a")
        assert registry.counter("mmt_tx_mode_degradations", host="a").value == 1


class TestElementRestart:
    def build_pilot(self):
        from repro.dataplane import PilotConfig, PilotTestbed
        from repro.netsim import Simulator

        return PilotTestbed(
            sim=Simulator(seed=5),
            config=PilotConfig(wan_delay_ns=units.microseconds(50)),
        )

    def test_crash_drops_traffic_and_restart_recovers(self):
        pilot = self.build_pilot()
        pilot.send_stream(20, payload_size=2000, interval_ns=10_000)
        pilot.sim.schedule(50_000, pilot.tofino.crash)
        pilot.sim.schedule(150_000, pilot.tofino.restart)
        report = pilot.run()
        assert pilot.tofino.stats.crashes == 1
        assert pilot.tofino.stats.restarts == 1
        assert pilot.tofino.stats.dropped_failed > 0
        # End-of-run reconciliation recovered everything via the U280.
        assert report.complete

    def test_restart_clears_stateful_registers(self):
        pilot = self.build_pilot()
        pilot.send_stream(10, payload_size=2000, interval_ns=10_000)
        pilot.run()
        seq_register = pilot.u280.pipeline.register("mode_transition_seq")
        index = pilot.experiment_id % seq_register.size
        assert seq_register.read(index) == 10  # assigned 10 sequence numbers
        pilot.u280.crash()
        pilot.u280.restart()
        assert seq_register.read(index) == 0
        assert pilot.u280.buffer is not None
        assert len(pilot.u280.buffer) == 0  # HBM contents gone
        assert not pilot.u280.buffer.failed  # but alive again

    def test_crash_is_idempotent_and_restart_needs_crash(self):
        pilot = self.build_pilot()
        pilot.tofino.crash()
        pilot.tofino.crash()
        assert pilot.tofino.stats.crashes == 1
        pilot.tofino.restart()
        pilot.tofino.restart()
        assert pilot.tofino.stats.restarts == 1
