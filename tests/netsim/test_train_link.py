"""Coalesced packet trains: O(1) engine events per burst, serial-equal
timing, admission, and loss draws."""

from repro.netsim import (
    DropTailQueue,
    Link,
    Packet,
    Simulator,
    SinkNode,
    units,
)
from repro.netsim.link import WIRE_OVERHEAD_BYTES
from repro.trace import Tracer


def build_pair(sim, rate_bps=units.gbps(1), delay_ns=1000, queue=None, **link_kwargs):
    a = SinkNode(sim, "a")
    b = SinkNode(sim, "b")
    pa = a.add_port("p", queue=queue)
    pb = b.add_port("p")
    link = Link(
        sim, pa, pb, rate_bps=rate_bps, propagation_delay_ns=delay_ns, **link_kwargs
    )
    return a, b, pa, pb, link


def make_train(n, size=1000):
    return [Packet(payload_size=size, meta={"i": i}) for i in range(n)]


def test_train_arrives_whole_at_tail_time():
    sim = Simulator()
    _a, b, pa, _pb, _link = build_pair(sim, rate_bps=units.gbps(1), delay_ns=5000)
    assert pa.send_train(make_train(3)) == 3
    sim.run()
    gap = units.transmission_time_ns(1000 + WIRE_OVERHEAD_BYTES, units.gbps(1))
    # The burst is one wire occupancy: everything lands at the train
    # tail's serialization time plus propagation.
    times = [t for t, _ in b.received]
    assert times == [3 * gap + 5000] * 3
    order = [p.meta["i"] for _, p in b.received]
    assert order == [0, 1, 2]


def test_train_costs_constant_engine_events():
    def events_for(n):
        sim = Simulator()
        _a, b, pa, _pb, _link = build_pair(sim)
        pa.send_train(make_train(n))
        sim.run()
        assert b.rx_packets == n
        return sim.events_processed

    # One tx-done + one delivery, regardless of train length.
    assert events_for(1) == events_for(64) == 2


def test_serial_sends_cost_linear_events():
    sim = Simulator()
    _a, b, pa, _pb, _link = build_pair(sim)
    for packet in make_train(8):
        pa.send(packet)
    sim.run()
    assert b.rx_packets == 8
    assert sim.events_processed == 16  # 2 per packet


def test_train_tx_stats_match_serial():
    serial = Simulator()
    _a, _b, pa_s, _pb, _l = build_pair(serial)
    for packet in make_train(5):
        pa_s.send(packet)
    serial.run()

    batched = Simulator()
    _a2, _b2, pa_t, _pb2, _l2 = build_pair(batched)
    pa_t.send_train(make_train(5))
    batched.run()

    assert (pa_t.stats.tx_packets, pa_t.stats.tx_bytes) == (
        pa_s.stats.tx_packets,
        pa_s.stats.tx_bytes,
    )


def test_train_loss_draws_match_serial_order():
    def survivors(send_as_train):
        sim = Simulator(seed=99)
        _a, b, pa, _pb, link = build_pair(sim, delay_ns=0, loss_rate=0.3)
        packets = make_train(200, size=100)
        if send_as_train:
            pa.send_train(packets)
        else:
            for packet in packets:
                pa.send(packet)
        sim.run()
        return [p.meta["i"] for _, p in b.received], link.stats.lost_random

    serial_ids, serial_lost = survivors(send_as_train=False)
    train_ids, train_lost = survivors(send_as_train=True)
    assert train_ids == serial_ids
    assert train_lost == serial_lost
    assert 0 < serial_lost < 200


def test_train_droptail_admission_matches_serial():
    # Queue fits exactly 3 x 1000-byte packets; a serial burst of 5 on
    # an idle port admits 4 (the head starts serializing immediately).
    def admitted(send_as_train):
        sim = Simulator()
        queue = DropTailQueue(3000)
        _a, b, pa, _pb, _link = build_pair(sim, queue=queue)
        packets = make_train(5)
        if send_as_train:
            count = pa.send_train(packets)
        else:
            count = sum(1 for p in packets if pa.send(p))
        sim.run()
        return count, b.rx_packets, pa.stats.drops_queue

    assert admitted(send_as_train=True) == admitted(send_as_train=False) == (4, 4, 1)


def test_train_mtu_drops_dont_kill_the_rest():
    sim = Simulator()
    _a, b, pa, _pb, _link = build_pair(sim, mtu_bytes=1500)
    packets = [Packet(payload_size=100), Packet(payload_size=9000),
               Packet(payload_size=100)]
    assert pa.send_train(packets) == 2
    sim.run()
    assert b.rx_packets == 2
    assert pa.stats.drops_mtu == 1


def test_train_on_down_link_counts_lost_down():
    sim = Simulator()
    _a, b, pa, _pb, link = build_pair(sim)
    link.up = False
    pa.send_train(make_train(4))
    sim.run()
    assert b.rx_packets == 0
    assert link.stats.lost_down == 4


def test_train_on_busy_port_queues_behind_in_flight_packet():
    sim = Simulator()
    _a, b, pa, _pb, _link = build_pair(sim, delay_ns=0)
    pa.send(Packet(payload_size=1000, meta={"i": -1}))  # transmitter now busy
    assert pa.send_train(make_train(3)) == 3
    sim.run()
    assert b.rx_packets == 4
    assert [p.meta["i"] for _, p in b.received] == [-1, 0, 1, 2]


def test_tracer_forces_per_packet_fallback():
    sim = Simulator()
    _a, b, pa, _pb, _link = build_pair(sim)
    pa.tracer = Tracer(sim)
    pa.send_train(make_train(4))
    sim.run()
    assert b.rx_packets == 4
    # Per-packet path: 2 events per packet, not 2 per train.
    assert sim.events_processed == 8


def test_link_tracer_forces_per_packet_propagation():
    sim = Simulator()
    _a, b, pa, _pb, link = build_pair(sim)
    link.tracer = Tracer(sim)
    pa.send_train(make_train(4))
    sim.run()
    assert b.rx_packets == 4
    # Coalesced serialization (1 event) + one delivery event per packet.
    assert sim.events_processed == 5
