"""The parametric leaf-spine builder (the incast grid's substrate)."""

import pytest

from repro.baselines.udp import UdpStack
from repro.netsim import (
    DropTailQueue,
    LeafSpineSpec,
    RedQueue,
    Simulator,
    TopologyError,
    build_leaf_spine,
)


def build(spec=None, factory=None):
    return build_leaf_spine(Simulator(seed=7), spec, switch_queue_factory=factory)


class TestStructure:
    def test_default_fabric_shape(self):
        fabric = build()
        assert len(fabric.leaves) == 2
        assert len(fabric.spines) == 2
        assert len(fabric.all_hosts) == 8
        assert fabric.receiver.name == "h0_0"
        assert fabric.host(1, 3).name == "h1_3"

    def test_parametric_shape(self):
        fabric = build(LeafSpineSpec(leaves=3, spines=1, hosts_per_leaf=2))
        assert len(fabric.leaves) == 3
        assert len(fabric.spines) == 1
        assert len(fabric.all_hosts) == 6

    def test_every_host_gets_a_distinct_ip(self):
        fabric = build()
        ips = {host.ip for host in fabric.all_hosts}
        assert len(ips) == len(fabric.all_hosts)

    def test_spec_validation(self):
        with pytest.raises(TopologyError):
            LeafSpineSpec(leaves=0)
        with pytest.raises(TopologyError):
            LeafSpineSpec(hosts_per_leaf=0)


class TestSwitchQueues:
    def test_factory_covers_switch_ports_only(self):
        made = []

        def factory():
            queue = RedQueue(100_000, rng=None)
            made.append(queue)
            return queue

        fabric = build(factory=factory)
        # One per leaf->host downlink (8) + both ends of every
        # leaf<->spine link (2 * 2 * 2 = 8).
        assert len(made) == 16
        # The fan-in port queue is one of them; host egress is not.
        assert fabric.receiver_port_queue() in made
        for host in fabric.all_hosts:
            port = next(iter(host.ports.values()))
            assert port.queue not in made
            assert isinstance(port.queue, DropTailQueue)

    def test_no_factory_leaves_switch_ports_on_the_stock_fifo(self):
        fabric = build()
        assert isinstance(fabric.receiver_port_queue(), DropTailQueue)


class TestBottleneck:
    def test_symmetric_by_default(self):
        fabric = build()
        link = fabric.topology.link_between("h0_0", "leaf0")
        assert link.rate_bps == fabric.spec.edge_rate_bps

    def test_asym_narrows_only_the_receiver_edge(self):
        spec = LeafSpineSpec(bottleneck_rate_bps=2_500_000_000)
        fabric = build(spec)
        narrow = fabric.topology.link_between("h0_0", "leaf0")
        wide = fabric.topology.link_between("h0_1", "leaf0")
        remote = fabric.topology.link_between("h1_0", "leaf1")
        assert narrow.rate_bps == 2_500_000_000
        assert wide.rate_bps == spec.edge_rate_bps
        assert remote.rate_bps == spec.edge_rate_bps


class TestRouting:
    def test_cross_leaf_delivery(self):
        sim = Simulator(seed=7)
        fabric = build_leaf_spine(sim)
        receiver, sender = fabric.receiver, fabric.host(1, 0)
        got = []
        UdpStack(receiver).bind(9000, lambda packet, sock: got.append(packet))
        sock = UdpStack(sender).bind(9001, lambda packet, sock: None)
        sock.send_to(receiver.ip, 9000, 1200)
        sim.run(until_ns=1_000_000)
        assert len(got) == 1

    def test_same_leaf_delivery_skips_the_fabric(self):
        sim = Simulator(seed=7)
        fabric = build_leaf_spine(sim)
        path = fabric.topology.path(fabric.host(0, 1), fabric.receiver)
        names = [node.name for node in path]
        assert names == ["h0_1", "leaf0", "h0_0"]

    def test_cross_leaf_path_crosses_one_spine(self):
        fabric = build()
        path = fabric.topology.path(fabric.host(1, 0), fabric.receiver)
        names = [node.name for node in path]
        assert names[0] == "h1_0" and names[-1] == "h0_0"
        assert sum(1 for name in names if name.startswith("spine")) == 1
