"""Unit conversions: exactness and edge cases."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim import units


def test_second_constants():
    assert units.SECOND == 1_000_000_000
    assert units.MILLISECOND * 1000 == units.SECOND
    assert units.MICROSECOND * 1000 == units.MILLISECOND


def test_seconds_conversion():
    assert units.seconds(1.5) == 1_500_000_000
    assert units.milliseconds(2) == 2_000_000
    assert units.microseconds(3) == 3_000


def test_rate_helpers():
    assert units.gbps(100) == 100_000_000_000
    assert units.tbps(1.5) == 1_500_000_000_000


def test_transmission_time_exact():
    # 1500 bytes at 1 Gb/s is exactly 12 us.
    assert units.transmission_time_ns(1500, units.gbps(1)) == 12_000


def test_transmission_time_rounds_up():
    # 1 byte at 3 bits/ns-equivalent rates must never round to "early".
    assert units.transmission_time_ns(1, 3_000_000_000) == 3  # 8/3 -> 3
    assert units.transmission_time_ns(0, units.gbps(1)) == 0


def test_transmission_time_rejects_bad_input():
    with pytest.raises(ValueError):
        units.transmission_time_ns(100, 0)
    with pytest.raises(ValueError):
        units.transmission_time_ns(-1, 1000)


def test_throughput_inverse_of_transmission():
    rate = units.gbps(10)
    t = units.transmission_time_ns(9000, rate)
    measured = units.throughput_bps(9000, t)
    assert measured == pytest.approx(rate, rel=0.01)


def test_throughput_rejects_zero_duration():
    with pytest.raises(ValueError):
        units.throughput_bps(1, 0)


def test_bdp():
    # 100 Gb/s x 100 ms = 1.25 GB
    assert units.bandwidth_delay_product_bytes(
        units.gbps(100), 100 * units.MILLISECOND
    ) == 1_250_000_000


@given(size=st.integers(1, 10**9), rate=st.integers(1, 10**13))
def test_transmission_time_never_early(size, rate):
    t = units.transmission_time_ns(size, rate)
    # Exact ceiling in integer arithmetic: t*rate covers the bits, and
    # one ns less would not.
    bits_scaled = size * 8 * units.SECOND
    assert t * rate >= bits_scaled
    assert (t - 1) * rate < bits_scaled


@given(value=st.floats(0, 1e6, allow_nan=False))
def test_seconds_roundtrip_within_ns(value):
    assert abs(units.to_seconds(units.seconds(value)) - value) < 1e-9
