"""Links and ports: serialization, propagation, loss, MTU."""

import pytest

from repro.netsim import (
    DropTailQueue,
    EthernetHeader,
    Link,
    Packet,
    Simulator,
    SinkNode,
    units,
)
from repro.netsim.link import WIRE_OVERHEAD_BYTES


def build_pair(sim, rate_bps=units.gbps(1), delay_ns=1000, **link_kwargs):
    a = SinkNode(sim, "a")
    b = SinkNode(sim, "b")
    pa = a.add_port("p")
    pb = b.add_port("p")
    link = Link(sim, pa, pb, rate_bps=rate_bps, propagation_delay_ns=delay_ns, **link_kwargs)
    return a, b, pa, pb, link


def test_delivery_time_is_serialization_plus_propagation():
    sim = Simulator()
    _a, b, pa, _pb, _link = build_pair(sim, rate_bps=units.gbps(1), delay_ns=5000)
    p = Packet(payload_size=1500 - WIRE_OVERHEAD_BYTES)
    assert pa.send(p)
    sim.run()
    arrival = b.received[0][0]
    assert arrival == units.transmission_time_ns(1500, units.gbps(1)) + 5000


def test_back_to_back_packets_serialize_sequentially():
    sim = Simulator()
    _a, b, pa, _pb, _link = build_pair(sim, rate_bps=units.gbps(1), delay_ns=0)
    size = 1000
    for _ in range(3):
        pa.send(Packet(payload_size=size))
    sim.run()
    times = [t for t, _ in b.received]
    gap = units.transmission_time_ns(size + WIRE_OVERHEAD_BYTES, units.gbps(1))
    assert times == [gap, 2 * gap, 3 * gap]


def test_full_duplex_no_interference():
    sim = Simulator()
    a, b, pa, pb, _link = build_pair(sim, rate_bps=units.gbps(1), delay_ns=100)
    pa.send(Packet(payload_size=1000))
    pb.send(Packet(payload_size=1000))
    sim.run()
    assert a.rx_packets == 1
    assert b.rx_packets == 1
    # Same size, same rate: both deliveries are simultaneous.
    assert a.received[0][0] == b.received[0][0]


def test_oversized_frame_dropped_not_fragmented():
    sim = Simulator()
    _a, b, pa, _pb, link = build_pair(sim, mtu_bytes=1500)
    big = Packet(headers=[EthernetHeader()], payload_size=1501)  # one byte over
    assert big.size_bytes > link.max_frame_bytes
    assert not pa.send(big)
    sim.run()
    assert b.rx_packets == 0
    assert pa.stats.drops_mtu == 1


def test_random_loss_is_seeded_and_proportional():
    sim = Simulator(seed=99)
    _a, b, pa, _pb, link = build_pair(sim, delay_ns=0, loss_rate=0.3)
    for _ in range(1000):
        pa.send(Packet(payload_size=100))
    sim.run()
    lost = link.stats.lost_random
    assert 200 < lost < 400  # ~300 expected
    assert b.rx_packets == 1000 - lost


def test_loss_is_deterministic_per_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        _a, b, pa, _pb, _link = build_pair(sim, delay_ns=0, loss_rate=0.5)
        for _ in range(100):
            pa.send(Packet(payload_size=10))
        sim.run()
        return b.rx_packets

    assert run(7) == run(7)
    assert run(7) != run(8) or run(7) != run(9)  # overwhelmingly likely


def test_bit_error_rate_scales_with_size():
    sim = Simulator(seed=3)
    _a, b, pa, _pb, link = build_pair(sim, delay_ns=0, bit_error_rate=1e-5)
    pa.queue = DropTailQueue(10_000_000)  # hold the whole burst
    for _ in range(500):
        pa.send(Packet(payload_size=9000))
    sim.run()
    # P(corrupt) = 1-(1-1e-5)^72000 ~ 51% of 500.
    assert 180 < link.stats.lost_corruption < 330
    assert b.rx_packets == 500 - link.stats.lost_corruption


def test_link_down_blackholes():
    sim = Simulator()
    _a, b, pa, _pb, link = build_pair(sim)
    link.up = False
    pa.send(Packet(payload_size=100))
    sim.run()
    assert b.rx_packets == 0


def test_send_without_link_fails():
    sim = Simulator()
    node = SinkNode(sim, "lonely")
    port = node.add_port("p")
    assert not port.send(Packet(payload_size=10))
    assert port.stats.drops_no_link == 1


def test_queue_overflow_counted_on_port():
    sim = Simulator()
    _a, b, pa, _pb, _link = build_pair(sim, rate_bps=1_000_000)  # slow link
    pa.queue = DropTailQueue(2000)
    sent = sum(1 for _ in range(10) if pa.send(Packet(payload_size=900)))
    sim.run()
    assert pa.stats.drops_queue > 0
    assert b.rx_packets == sent


def test_egress_hook_can_rewrite_or_drop():
    sim = Simulator()
    _a, b, pa, _pb, _link = build_pair(sim)
    seen = []

    def hook(p):
        seen.append(p)
        return None if p.payload_size == 13 else p

    pa.egress_hooks.append(hook)
    pa.send(Packet(payload_size=13))
    pa.send(Packet(payload_size=99))
    sim.run()
    assert len(seen) == 2
    assert b.rx_packets == 1


def test_link_validation():
    sim = Simulator()
    a = SinkNode(sim, "a")
    b = SinkNode(sim, "b")
    with pytest.raises(ValueError):
        Link(sim, a.add_port("x"), b.add_port("x"), rate_bps=0, propagation_delay_ns=0)
    with pytest.raises(ValueError):
        Link(sim, a.add_port("y"), b.add_port("y"), rate_bps=1, propagation_delay_ns=-1)
    with pytest.raises(ValueError):
        Link(sim, a.add_port("z"), b.add_port("z"), rate_bps=1,
             propagation_delay_ns=0, loss_rate=1.5)
