"""Queue disciplines: admission, ordering, AQM behaviours."""

import random

import pytest

from repro.netsim import (
    DeadlineAwareQueue,
    DropTailQueue,
    Packet,
    PriorityQueue,
    RedQueue,
)
from repro.netsim.queues import drain


def packet(size=1000, **meta):
    return Packet(payload_size=size, meta=meta)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(10_000)
        first, second = packet(), packet()
        q.enqueue(first)
        q.enqueue(second)
        assert q.dequeue() is first
        assert q.dequeue() is second
        assert q.dequeue() is None

    def test_byte_limit_drops(self):
        q = DropTailQueue(2500)
        assert q.enqueue(packet(1000))
        assert q.enqueue(packet(1000))
        assert not q.enqueue(packet(1000))
        assert q.dropped == 1
        assert len(q) == 2

    def test_occupancy_tracks_bytes(self):
        q = DropTailQueue(2000)
        q.enqueue(packet(500))
        assert q.occupancy == pytest.approx(0.25)
        q.dequeue()
        assert q.occupancy == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestPriority:
    def test_high_band_served_first(self):
        q = PriorityQueue(100_000, bands=2, classifier=lambda p: p.meta.get("band", 1))
        low = packet(band=1)
        high = packet(band=0)
        q.enqueue(low)
        q.enqueue(high)
        assert q.dequeue() is high
        assert q.dequeue() is low

    def test_unclassified_goes_lowest(self):
        q = PriorityQueue(100_000, bands=3)
        p = packet()
        q.enqueue(p)
        assert q._queues[2][0] is p

    def test_band_clamping(self):
        q = PriorityQueue(100_000, bands=2, classifier=lambda p: 99)
        q.enqueue(packet())
        assert len(q) == 1

    def test_needs_a_band(self):
        with pytest.raises(ValueError):
            PriorityQueue(1000, bands=0)


class TestRed:
    def test_no_early_drop_when_quiet(self):
        q = RedQueue(100_000, rng=random.Random(1))
        for _ in range(10):
            assert q.enqueue(packet(100))
        assert q.early_drops == 0

    def test_early_drops_under_sustained_load(self):
        q = RedQueue(100_000, min_threshold=0.01, max_threshold=0.5,
                     max_drop_probability=1.0, ewma_weight=0.5, rng=random.Random(1))
        dropped = 0
        for _ in range(200):
            if not q.enqueue(packet(5000)):
                dropped += 1
            if len(q) > 3:
                q.dequeue()
        assert q.early_drops > 0
        assert dropped >= q.early_drops

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RedQueue(1000, min_threshold=0.9, max_threshold=0.5)


class TestDeadlineAware:
    def make(self, now, capacity=100_000, drop_late=True):
        return DeadlineAwareQueue(
            capacity,
            deadline_of=lambda p: p.meta.get("deadline"),
            now=now,
            drop_late=drop_late,
        )

    def test_edf_ordering(self):
        q = self.make(now=lambda: 0)
        late = packet(deadline=300)
        soon = packet(deadline=100)
        mid = packet(deadline=200)
        for p in (late, soon, mid):
            q.enqueue(p)
        assert [p.meta["deadline"] for p in drain(q)] == [100, 200, 300]

    def test_no_deadline_served_after_deadlines(self):
        q = self.make(now=lambda: 0)
        best_effort = packet()
        urgent = packet(deadline=10)
        q.enqueue(best_effort)
        q.enqueue(urgent)
        assert q.dequeue() is urgent
        assert q.dequeue() is best_effort

    def test_late_packet_shed_at_enqueue(self):
        q = self.make(now=lambda: 1000)
        assert not q.enqueue(packet(deadline=500))
        assert q.late_drops == 1

    def test_late_packet_shed_at_dequeue(self):
        clock = {"t": 0}
        q = self.make(now=lambda: clock["t"])
        q.enqueue(packet(deadline=100))
        q.enqueue(packet(deadline=10_000))
        clock["t"] = 5000  # first packet is now late
        out = q.dequeue()
        assert out.meta["deadline"] == 10_000
        assert q.late_drops == 1
        assert q.bytes_queued == 0

    def test_drop_late_disabled_keeps_late(self):
        q = self.make(now=lambda: 1000, drop_late=False)
        assert q.enqueue(packet(deadline=500))
        assert q.dequeue() is not None

    def test_urgent_arrival_pushes_out_best_effort(self):
        q = self.make(now=lambda: 0, capacity=2500)
        assert q.enqueue(packet(1000, deadline=5))
        assert q.enqueue(packet(1000))  # best effort
        # A full queue admits the urgent packet by evicting best effort.
        assert q.enqueue(packet(1000, deadline=1))
        assert q.pushouts == 1
        assert q.dropped == 1
        assert q.bytes_queued == 2000
        assert [p.meta.get("deadline") for p in drain(q)] == [1, 5]

    def test_urgent_arrival_pushes_out_laxest_deadline(self):
        q = self.make(now=lambda: 0, capacity=2500)
        assert q.enqueue(packet(1000, deadline=5))
        assert q.enqueue(packet(1000, deadline=900))
        assert q.enqueue(packet(1000, deadline=1))
        assert q.pushouts == 1
        assert [p.meta.get("deadline") for p in drain(q)] == [1, 5]

    def test_laxest_arrival_is_tail_dropped(self):
        q = self.make(now=lambda: 0, capacity=2500)
        assert q.enqueue(packet(1000, deadline=5))
        assert q.enqueue(packet(1000, deadline=10))
        # The arrival itself is the laxest packet: no push-out happens.
        assert not q.enqueue(packet(1000, deadline=999))
        assert q.pushouts == 0
        assert q.dropped == 1

    def test_best_effort_never_pushes_out(self):
        q = self.make(now=lambda: 0, capacity=2500)
        assert q.enqueue(packet(1000, deadline=5))
        assert q.enqueue(packet(1500, deadline=10))
        assert not q.enqueue(packet(1000))  # best effort cannot evict
        assert q.pushouts == 0
