"""Packet trace recorder."""

import json

import pytest

from repro.core import MmtStack, make_experiment_id
from repro.core.features import Feature, MsgType
from repro.core.header import MmtHeader
from repro.netsim import TraceRecorder, units
from repro.netsim.recorder import TraceEntry, _summarize_header


EXP = 7
EXP_ID = make_experiment_id(EXP)


def stream(rig, count=5, loss=0.0):
    sim = rig.sim
    rig.link_b.loss_rate = loss
    stack_a = MmtStack(rig.a)
    stack_b = MmtStack(rig.b)
    stack_b.bind_receiver(EXP)
    stack_a.attach_buffer(1_000_000)
    sender = stack_a.create_sender(
        experiment_id=EXP_ID, mode="age-recover", dst_ip=rig.b.ip,
        age_budget_ns=units.seconds(1), buffer_local=True,
    )
    for _ in range(count):
        sender.send(512)
    sender.finish()


def test_records_delivered_packets_with_headers(rig):
    recorder = TraceRecorder()
    recorder.attach(rig.link_b)
    stream(rig, count=3)
    rig.sim.run()
    assert len(recorder) >= 3
    entry = recorder.entries[0]
    names = [h["type"] for h in entry.headers]
    assert names == ["EthernetHeader", "Ipv4Header", "MmtHeader"]
    mmt = entry.headers[2]
    assert mmt["seq"] == 0
    assert entry.flow == f"mmt-{EXP_ID}"
    assert entry.direction.endswith("->b")


def test_filter_and_matching(rig):
    recorder = TraceRecorder(keep=lambda p: p.payload_size == 512)
    recorder.attach(rig.link_b)
    stream(rig, count=4)
    rig.sim.run()
    data = recorder.matching(type="MmtHeader")
    assert len(data) == 4
    assert recorder.dropped_by_filter > 0  # heartbeats filtered out


def test_sees_control_traffic_under_loss(rig):
    recorder = TraceRecorder()
    recorder.attach(rig.link_b)
    stream(rig, count=200, loss=0.05)
    rig.sim.run()
    naks = recorder.matching(type="MmtHeader", msg_type="MsgType.NAK")
    retx = recorder.matching(type="MmtHeader", msg_type="MsgType.RETX_DATA")
    assert naks, "NAKs must appear on the wire"
    assert retx, "retransmissions must appear on the wire"
    # NAKs travel receiver->sender; retransmissions the other way.
    assert all(n.direction != retx[0].direction for n in naks)


def test_export_jsonl(rig, tmp_path):
    recorder = TraceRecorder()
    recorder.attach(rig.link_b)
    stream(rig, count=2)
    rig.sim.run()
    out = tmp_path / "trace.jsonl"
    written = recorder.export_jsonl(str(out))
    lines = out.read_text().splitlines()
    assert len(lines) == written == len(recorder)
    parsed = json.loads(lines[0])
    assert parsed["link"]
    assert parsed["headers"][0]["type"] == "EthernetHeader"


def test_truncation_bounded(rig):
    recorder = TraceRecorder(max_entries=3)
    recorder.attach(rig.link_b)
    stream(rig, count=10)
    rig.sim.run()
    assert len(recorder) == 3
    assert recorder.truncated > 0


def test_detach_stops_recording(rig):
    recorder = TraceRecorder()
    recorder.attach(rig.link_b)
    recorder.detach_all()
    stream(rig, count=3)
    rig.sim.run()
    assert len(recorder) == 0


# -- JSON round-trip ---------------------------------------------------------


def test_load_jsonl_round_trip(rig, tmp_path):
    recorder = TraceRecorder()
    recorder.attach(rig.link_b)
    stream(rig, count=50, loss=0.05)  # loss => NAK/RETX control traffic too
    rig.sim.run()
    out = tmp_path / "trace.jsonl"
    written = recorder.export_jsonl(str(out))

    replay = TraceRecorder()
    assert replay.load_jsonl(str(out)) == written
    assert replay.entries == recorder.entries
    # Inspection helpers behave identically on the loaded trace.
    assert replay.matching(type="MmtHeader", msg_type="MsgType.NAK") == \
        recorder.matching(type="MmtHeader", msg_type="MsgType.NAK")


def test_load_jsonl_appends_and_skips_blank_lines(rig, tmp_path):
    recorder = TraceRecorder()
    recorder.attach(rig.link_b)
    stream(rig, count=2)
    rig.sim.run()
    out = tmp_path / "trace.jsonl"
    recorder.export_jsonl(str(out))
    out.write_text(out.read_text() + "\n\n")  # trailing blank lines

    replay = TraceRecorder()
    replay.load_jsonl(str(out))
    before = len(replay)
    replay.load_jsonl(str(out))  # load() appends, it does not replace
    assert len(replay) == 2 * before


@pytest.mark.parametrize(
    "line,complaint",
    [
        ("not json at all", "not a JSON trace entry"),
        ("[1, 2, 3]", "must be an object"),
        ('{"time_ns": 1}', "missing fields"),
        # A full entry plus a field from some future schema version.
        (
            json.dumps(
                dict(time_ns=1, link="l", direction="a->b", packet_id=1,
                     size_bytes=64, headers=[], flow="", surprise=True)
            ),
            "unknown fields",
        ),
    ],
)
def test_load_jsonl_rejects_malformed_lines(tmp_path, line, complaint):
    path = tmp_path / "bad.jsonl"
    path.write_text(line + "\n")
    with pytest.raises(ValueError, match=complaint):
        TraceRecorder().load_jsonl(str(path))


def test_entry_from_json_reports_line_number(tmp_path):
    good = TraceEntry(
        time_ns=5, link="lan", direction="a->b", packet_id=9,
        size_bytes=128, headers=[{"type": "MmtHeader"}], flow="f",
    )
    path = tmp_path / "mixed.jsonl"
    path.write_text(good.to_json() + "\n{broken\n")
    recorder = TraceRecorder()
    with pytest.raises(ValueError, match=r"mixed\.jsonl:2"):
        recorder.load_jsonl(str(path))
    assert len(recorder) == 1  # the good line before the failure was kept


def test_summarize_header_enum_and_flag_fields():
    header = MmtHeader(config_id=3, experiment_id=EXP_ID, msg_type=MsgType.NAK)
    summary = _summarize_header(header)
    assert summary["type"] == "MmtHeader"
    assert summary["msg_type"] == "MsgType.NAK"  # symbolic, not the bare int
    assert summary["features"] == "Feature.NONE"
    # Every value must survive JSON (this is what export writes).
    assert json.loads(json.dumps(summary)) == summary


def test_summarize_header_combined_flags_round_trip(tmp_path):
    """Combined IntFlag values have no ``.name`` on 3.10 — the repr
    fallback must kick in and the entry must still round-trip."""
    header = MmtHeader(config_id=1, experiment_id=EXP_ID)
    header.features = Feature.SEQUENCED | Feature.RETRANSMISSION
    summary = _summarize_header(header)
    assert "SEQUENCED" in summary["features"]
    assert "RETRANSMISSION" in summary["features"]

    entry = TraceEntry(
        time_ns=1, link="lan", direction="a->b", packet_id=1,
        size_bytes=64, headers=[summary], flow="mmt",
    )
    assert TraceEntry.from_json(entry.to_json()) == entry


def test_summarize_header_non_scalar_fields_stringified():
    header = MmtHeader(config_id=1, experiment_id=EXP_ID)
    header.features = Feature.SEQUENCED
    header.seq = 4
    summary = _summarize_header(header)
    # Ints/None pass through unchanged; nothing un-JSON-able remains.
    assert summary["seq"] == 4
    for value in summary.values():
        assert value is None or isinstance(value, (int, str, bool, float))
