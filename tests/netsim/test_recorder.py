"""Packet trace recorder."""

import json

from repro.core import MmtStack, make_experiment_id
from repro.netsim import TraceRecorder, units


EXP = 7
EXP_ID = make_experiment_id(EXP)


def stream(rig, count=5, loss=0.0):
    sim = rig.sim
    rig.link_b.loss_rate = loss
    stack_a = MmtStack(rig.a)
    stack_b = MmtStack(rig.b)
    stack_b.bind_receiver(EXP)
    stack_a.attach_buffer(1_000_000)
    sender = stack_a.create_sender(
        experiment_id=EXP_ID, mode="age-recover", dst_ip=rig.b.ip,
        age_budget_ns=units.seconds(1), buffer_local=True,
    )
    for _ in range(count):
        sender.send(512)
    sender.finish()


def test_records_delivered_packets_with_headers(rig):
    recorder = TraceRecorder()
    recorder.attach(rig.link_b)
    stream(rig, count=3)
    rig.sim.run()
    assert len(recorder) >= 3
    entry = recorder.entries[0]
    names = [h["type"] for h in entry.headers]
    assert names == ["EthernetHeader", "Ipv4Header", "MmtHeader"]
    mmt = entry.headers[2]
    assert mmt["seq"] == 0
    assert entry.flow == f"mmt-{EXP_ID}"
    assert entry.direction.endswith("->b")


def test_filter_and_matching(rig):
    recorder = TraceRecorder(keep=lambda p: p.payload_size == 512)
    recorder.attach(rig.link_b)
    stream(rig, count=4)
    rig.sim.run()
    data = recorder.matching(type="MmtHeader")
    assert len(data) == 4
    assert recorder.dropped_by_filter > 0  # heartbeats filtered out


def test_sees_control_traffic_under_loss(rig):
    recorder = TraceRecorder()
    recorder.attach(rig.link_b)
    stream(rig, count=200, loss=0.05)
    rig.sim.run()
    naks = recorder.matching(type="MmtHeader", msg_type="MsgType.NAK")
    retx = recorder.matching(type="MmtHeader", msg_type="MsgType.RETX_DATA")
    assert naks, "NAKs must appear on the wire"
    assert retx, "retransmissions must appear on the wire"
    # NAKs travel receiver->sender; retransmissions the other way.
    assert all(n.direction != retx[0].direction for n in naks)


def test_export_jsonl(rig, tmp_path):
    recorder = TraceRecorder()
    recorder.attach(rig.link_b)
    stream(rig, count=2)
    rig.sim.run()
    out = tmp_path / "trace.jsonl"
    written = recorder.export_jsonl(str(out))
    lines = out.read_text().splitlines()
    assert len(lines) == written == len(recorder)
    parsed = json.loads(lines[0])
    assert parsed["link"]
    assert parsed["headers"][0]["type"] == "EthernetHeader"


def test_truncation_bounded(rig):
    recorder = TraceRecorder(max_entries=3)
    recorder.attach(rig.link_b)
    stream(rig, count=10)
    rig.sim.run()
    assert len(recorder) == 3
    assert recorder.truncated > 0


def test_detach_stops_recording(rig):
    recorder = TraceRecorder()
    recorder.attach(rig.link_b)
    recorder.detach_all()
    stream(rig, count=3)
    rig.sim.run()
    assert len(recorder) == 0
