"""Packet and header-stack behaviour."""

import pytest

from repro.netsim import EthernetHeader, Ipv4Header, Packet, TcpHeader, UdpHeader


def make_packet(payload_size=100):
    return Packet(
        headers=[EthernetHeader(), Ipv4Header(), UdpHeader()],
        payload_size=payload_size,
    )


def test_size_sums_headers_and_payload():
    p = make_packet(100)
    # eth 14+4, ip 20, udp 8, payload 100
    assert p.size_bytes == 18 + 20 + 8 + 100


def test_payload_bytes_set_size():
    p = Packet(headers=[], payload=b"hello")
    assert p.payload_size == 5
    assert p.size_bytes == 5


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        Packet(payload_size=-1)


def test_find_and_require():
    p = make_packet()
    assert isinstance(p.find(Ipv4Header), Ipv4Header)
    assert p.find(TcpHeader) is None
    with pytest.raises(KeyError):
        p.require(TcpHeader)
    assert p.has(UdpHeader)


def test_push_pop_encapsulation():
    p = Packet(headers=[Ipv4Header()])
    p.push(EthernetHeader())
    assert isinstance(p.outermost(), EthernetHeader)
    popped = p.pop()
    assert isinstance(popped, EthernetHeader)
    assert isinstance(p.outermost(), Ipv4Header)


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        Packet().pop()


def test_packet_ids_unique():
    assert make_packet().packet_id != make_packet().packet_id


def test_copy_is_independent():
    p = make_packet()
    p.meta["flow"] = "x"
    clone = p.copy()
    assert clone.packet_id != p.packet_id
    clone.find(Ipv4Header).ttl = 1
    assert p.find(Ipv4Header).ttl == 64
    clone.meta["flow"] = "y"
    assert p.meta["flow"] == "x"


def test_copy_shares_payload_bytes():
    p = Packet(payload=b"data")
    assert p.copy().payload is p.payload


def test_tcp_header_sack_sizing():
    plain = TcpHeader()
    assert plain.size_bytes == 20
    sacked = TcpHeader(sack_blocks=((0, 10), (20, 30)))
    assert sacked.size_bytes == 20 + 2 + 16


def test_iteration_outermost_first():
    p = make_packet()
    names = [h.name for h in p]
    assert names == ["EthernetHeader", "Ipv4Header", "UdpHeader"]


def test_repr_mentions_headers():
    assert "Ipv4Header" in repr(make_packet())


# -- memoized size_bytes invalidation -----------------------------------------
# size_bytes is cached (it is the per-hop hot path); these pin every
# way the cache must be refreshed.


def test_size_memo_tracks_structural_mutation():
    p = make_packet(100)
    assert p.size_bytes == 18 + 20 + 8 + 100
    p.push(EthernetHeader())  # O(1) encapsulation
    assert p.size_bytes == 18 + 18 + 20 + 8 + 100
    p.pop()
    assert p.size_bytes == 18 + 20 + 8 + 100
    p.headers.remove(p.find(UdpHeader))  # in-place deque mutation
    assert p.size_bytes == 18 + 20 + 100
    p.headers.append(TcpHeader())
    assert p.size_bytes == 18 + 20 + 20 + 100
    p.headers.clear()
    assert p.size_bytes == 100


def test_size_memo_tracks_size_affecting_field_write():
    p = Packet(headers=[TcpHeader()], payload_size=10)
    assert p.size_bytes == 20 + 10
    # sack_blocks is a _SIZE_FIELDS entry: assignment must invalidate.
    p.find(TcpHeader).sack_blocks = ((0, 10),)
    assert p.size_bytes == 20 + 2 + 8 + 10


def test_size_memo_survives_value_only_rewrites():
    """Per-hop rewrites of fixed-size fields (TTL, MACs, ports) must
    neither change nor invalidate the cached size."""
    p = make_packet(100)
    before = p.size_bytes
    ip = p.find(Ipv4Header)
    ip.ttl -= 1
    ip.dscp = 46
    p.find(EthernetHeader).dst = "02:00:00:00:00:01"
    assert p.size_bytes == before


def test_size_memo_tracks_setitem_replacement():
    p = make_packet(0)
    p.headers[2] = TcpHeader()
    assert p.size_bytes == 18 + 20 + 20


def test_push_pop_keep_outermost_first_iteration():
    p = Packet(headers=[UdpHeader()])
    p.push(Ipv4Header())
    p.push(EthernetHeader())
    assert [h.name for h in p] == ["EthernetHeader", "Ipv4Header", "UdpHeader"]
    assert [h.name for h in p.headers] == [h.name for h in p]
    assert isinstance(p.pop(), EthernetHeader)
    assert [h.name for h in p] == ["Ipv4Header", "UdpHeader"]


def test_meta_is_lazy():
    p = Packet()
    assert p._meta is None  # no dict allocated until first access
    p.meta["flow"] = 1
    assert p._meta == {"flow": 1}
    assert p.copy().meta == {"flow": 1}
