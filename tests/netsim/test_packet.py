"""Packet and header-stack behaviour."""

import pytest

from repro.netsim import EthernetHeader, Ipv4Header, Packet, TcpHeader, UdpHeader


def make_packet(payload_size=100):
    return Packet(
        headers=[EthernetHeader(), Ipv4Header(), UdpHeader()],
        payload_size=payload_size,
    )


def test_size_sums_headers_and_payload():
    p = make_packet(100)
    # eth 14+4, ip 20, udp 8, payload 100
    assert p.size_bytes == 18 + 20 + 8 + 100


def test_payload_bytes_set_size():
    p = Packet(headers=[], payload=b"hello")
    assert p.payload_size == 5
    assert p.size_bytes == 5


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        Packet(payload_size=-1)


def test_find_and_require():
    p = make_packet()
    assert isinstance(p.find(Ipv4Header), Ipv4Header)
    assert p.find(TcpHeader) is None
    with pytest.raises(KeyError):
        p.require(TcpHeader)
    assert p.has(UdpHeader)


def test_push_pop_encapsulation():
    p = Packet(headers=[Ipv4Header()])
    p.push(EthernetHeader())
    assert isinstance(p.outermost(), EthernetHeader)
    popped = p.pop()
    assert isinstance(popped, EthernetHeader)
    assert isinstance(p.outermost(), Ipv4Header)


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        Packet().pop()


def test_packet_ids_unique():
    assert make_packet().packet_id != make_packet().packet_id


def test_copy_is_independent():
    p = make_packet()
    p.meta["flow"] = "x"
    clone = p.copy()
    assert clone.packet_id != p.packet_id
    clone.find(Ipv4Header).ttl = 1
    assert p.find(Ipv4Header).ttl == 64
    clone.meta["flow"] = "y"
    assert p.meta["flow"] == "x"


def test_copy_shares_payload_bytes():
    p = Packet(payload=b"data")
    assert p.copy().payload is p.payload


def test_tcp_header_sack_sizing():
    plain = TcpHeader()
    assert plain.size_bytes == 20
    sacked = TcpHeader(sack_blocks=((0, 10), (20, 30)))
    assert sacked.size_bytes == 20 + 2 + 16


def test_iteration_outermost_first():
    p = make_packet()
    names = [h.name for h in p]
    assert names == ["EthernetHeader", "Ipv4Header", "UdpHeader"]


def test_repr_mentions_headers():
    assert "Ipv4Header" in repr(make_packet())
