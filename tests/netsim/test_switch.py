"""L2 learning switch and L3 router behaviour."""

import pytest

from repro.netsim import (
    EthernetHeader,
    IpProto,
    Ipv4Header,
    Link,
    Packet,
    RoutingTable,
    Simulator,
    SinkNode,
    units,
)
from repro.netsim.switch import EthernetSwitch, IpRouter


def wire(sim, a, b, rate=units.gbps(10), delay=100):
    return Link(sim, a.add_port(f"to_{b.name}"), b.add_port(f"to_{a.name}"),
                rate_bps=rate, propagation_delay_ns=delay)


class TestRoutingTable:
    def test_longest_prefix_wins(self):
        table = RoutingTable()
        table.add("10.0.0.0/8", "coarse", "m1")
        table.add("10.1.0.0/16", "fine", "m2")
        assert table.lookup("10.1.2.3").port_name == "fine"
        assert table.lookup("10.2.2.3").port_name == "coarse"

    def test_no_match_returns_none(self):
        table = RoutingTable()
        table.add("10.0.0.0/8", "p", "m")
        assert table.lookup("192.168.1.1") is None

    def test_host_route(self):
        table = RoutingTable()
        table.add("10.0.0.0/8", "net", "m1")
        table.add("10.0.0.5/32", "host", "m2")
        assert table.lookup("10.0.0.5").port_name == "host"


class TestEthernetSwitch:
    def build(self):
        sim = Simulator()
        sw = EthernetSwitch(sim, "sw")
        hosts = [SinkNode(sim, f"h{i}") for i in range(3)]
        for h in hosts:
            wire(sim, sw, h)
        return sim, sw, hosts

    def frame(self, src, dst, size=100):
        return Packet(headers=[EthernetHeader(src=src, dst=dst)], payload_size=size)

    def test_unknown_destination_flooded(self):
        sim, sw, hosts = self.build()
        sw.receive(self.frame("aa:aa:aa:aa:aa:aa", "bb:bb:bb:bb:bb:bb"),
                   sw.ports["to_h0"])
        sim.run()
        assert hosts[0].rx_packets == 0  # not back out the ingress
        assert hosts[1].rx_packets == 1
        assert hosts[2].rx_packets == 1
        assert sw.flooded == 1

    def test_learned_destination_unicast(self):
        sim, sw, hosts = self.build()
        # h1's MAC learned from a frame it sent.
        sw.receive(self.frame("bb:bb", "ff:ff:ff:ff:ff:ff"), sw.ports["to_h1"])
        sim.run()
        sw.receive(self.frame("aa:aa", "bb:bb"), sw.ports["to_h0"])
        sim.run()
        assert hosts[1].rx_packets >= 1
        assert hosts[2].rx_packets == 1  # only the broadcast
        assert sw.forwarded == 1

    def test_same_port_frames_not_reflected(self):
        sim, sw, hosts = self.build()
        sw.receive(self.frame("aa:aa", "ff:ff:ff:ff:ff:ff"), sw.ports["to_h0"])
        sim.run()
        sw.receive(self.frame("bb:bb", "aa:aa"), sw.ports["to_h0"])
        sim.run()
        assert hosts[0].rx_packets == 0

    def test_non_ethernet_dropped(self):
        sim, sw, _hosts = self.build()
        sw.receive(Packet(payload_size=10), sw.ports["to_h0"])
        assert sw.dropped_no_l2 == 1


class TestIpRouter:
    def build(self):
        sim = Simulator()
        router = IpRouter(sim, "r", mac="02:00:00:00:00:99")
        a = SinkNode(sim, "a")
        b = SinkNode(sim, "b")
        wire(sim, router, a)
        wire(sim, router, b)
        router.add_route("10.1.0.0/16", "to_a", "02:aa")
        router.add_route("10.2.0.0/16", "to_b", "02:bb")
        return sim, router, a, b

    def packet(self, dst, ttl=64):
        return Packet(
            headers=[EthernetHeader(), Ipv4Header(dst=dst, ttl=ttl, proto=IpProto.UDP)],
            payload_size=50,
        )

    def test_forwards_by_prefix_and_rewrites_l2(self):
        sim, router, a, b = self.build()
        router.receive(self.packet("10.2.3.4"), router.ports["to_a"])
        sim.run()
        assert b.rx_packets == 1
        _t, delivered = b.received[0]
        eth = delivered.find(EthernetHeader)
        assert eth.src == "02:00:00:00:00:99"
        assert eth.dst == "02:bb"

    def test_ttl_decremented(self):
        sim, router, _a, b = self.build()
        router.receive(self.packet("10.2.3.4", ttl=10), router.ports["to_a"])
        sim.run()
        assert b.received[0][1].find(Ipv4Header).ttl == 9

    def test_ttl_expiry_drops(self):
        sim, router, _a, b = self.build()
        router.receive(self.packet("10.2.3.4", ttl=1), router.ports["to_a"])
        sim.run()
        assert b.rx_packets == 0
        assert router.dropped_ttl == 1

    def test_no_route_drops(self):
        sim, router, _a, _b = self.build()
        router.receive(self.packet("192.168.0.1"), router.ports["to_a"])
        assert router.dropped_no_route == 1

    def test_route_to_unknown_port_rejected(self):
        sim = Simulator()
        router = IpRouter(sim, "r")
        with pytest.raises(ValueError):
            router.add_route("10.0.0.0/8", "nope", "02:aa")
