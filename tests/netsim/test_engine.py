"""Engine semantics: ordering, cancellation, determinism, timers."""

import pytest

from repro.netsim import SimulationError, Simulator, Timer


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_fire_in_scheduling_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(5, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(42, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42]
    assert sim.now == 42


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, 1)
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.pending_events() == 0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until_ns=50)
    assert fired == ["early"]
    assert sim.now == 50  # clock advanced exactly to the bound
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_on_empty_queue():
    sim = Simulator()
    sim.run(until_ns=1000)
    assert sim.now == 1000


def test_max_events_limits_processing():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(i + 1, fired.append, i)
    processed = sim.run(max_events=3)
    assert processed == 3
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(5, lambda: order.append("nested"))

    sim.schedule(10, first)
    sim.run()
    assert order == ["first", "nested"]


def test_named_rng_streams_are_independent_and_stable():
    sim1 = Simulator(seed=9)
    sim2 = Simulator(seed=9)
    a1 = [sim1.rng("a").random() for _ in range(5)]
    # Interleaving another stream must not perturb stream "a".
    sim2.rng("b").random()
    a2 = [sim2.rng("a").random() for _ in range(5)]
    assert a1 == a2


def test_different_seeds_differ():
    assert Simulator(seed=1).rng("x").random() != Simulator(seed=2).rng("x").random()


def test_peek_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    event.cancel()
    assert sim.peek_time() == 9


def test_float_delays_round_to_integer_clock():
    """Float delays land on the integer-ns clock via round() — pinned
    here because schedule() fast-paths int delays past the rounding."""
    sim = Simulator()
    fired = []
    sim.schedule(1.6, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2]
    # Banker's rounding (Python round-half-to-even), same as before the
    # int fast path: 2.5 → 2, 3.5 → 4.
    sim2 = Simulator()
    times = []
    sim2.schedule(2.5, lambda: times.append(sim2.now))
    sim2.schedule(3.5, lambda: times.append(sim2.now))
    sim2.run()
    assert times == [2, 4]


def test_schedule_at_float_time_rounds():
    sim = Simulator()
    fired = []
    sim.schedule_at(7.5, lambda: fired.append(sim.now))  # half-to-even
    sim.run()
    assert fired == [8]


def test_pending_events_is_exact_under_cancellation():
    sim = Simulator()
    events = [sim.schedule(i + 1, lambda: None) for i in range(10)]
    assert sim.pending_events() == 10
    for event in events[:4]:
        event.cancel()
    assert sim.pending_events() == 6
    events[0].cancel()  # double-cancel must not double-count
    assert sim.pending_events() == 6
    sim.run()
    assert sim.pending_events() == 0
    assert sim.events_processed == 6


def test_mass_cancellation_compacts_queue():
    """Cancelled events may linger in the heap (lazy deletion) but can
    never come to outnumber live ones in a large queue — the mass
    timer-restart pattern must not leak."""
    sim = Simulator()
    keepers = 10
    restarts = 2000
    for i in range(keepers):
        sim.schedule(10_000 + i, lambda: None)
    for i in range(restarts):
        sim.schedule(100 + i, lambda: None).cancel()
    assert sim.pending_events() == keepers
    # Compaction bound: dead entries < half the queue (+ live).
    assert len(sim._queue) <= 2 * keepers + 1
    assert sim.run() == keepers


def test_cancellation_during_run_is_safe():
    """A callback cancelling en masse (triggering compaction, which
    replaces the heap list) must not lose events scheduled after it."""
    sim = Simulator()
    fired = []
    victims = [sim.schedule(500 + i, lambda: None) for i in range(200)]

    def purge_and_reschedule():
        for event in victims:
            event.cancel()
        sim.schedule(50, fired.append, "after-purge")

    sim.schedule(10, purge_and_reschedule)
    sim.schedule(2000, fired.append, "tail")
    sim.run()
    assert fired == ["after-purge", "tail"]
    assert sim.pending_events() == 0


def test_replay_is_deterministic():
    """Same seed + same schedule → identical event interleaving and
    identical RNG draws, twice over (the regression replay guard)."""

    def run_once():
        sim = Simulator(seed=31)
        trace = []
        rng = sim.rng("loss")

        def tick(tag, count):
            trace.append((sim.now, tag, round(rng.random(), 12)))
            if count:
                sim.schedule(1 + (count * 7) % 13, tick, tag, count - 1)

        sim.schedule(1, tick, "a", 50)
        sim.schedule(1, tick, "b", 50)
        sim.schedule(3, tick, "c", 50)
        sim.run()
        return trace, sim.events_processed, sim.now

    assert run_once() == run_once()


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        sim.run()
        assert fired == [100]
        assert not timer.running

    def test_stop_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(100)
        timer.stop()
        sim.run()
        assert fired == []

    def test_restart_supersedes_previous(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        timer.start(500)
        sim.run()
        assert fired == [500]

    def test_expires_at_reports_deadline(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.start(250)
        assert timer.expires_at == 250
        timer.stop()
        assert timer.expires_at is None

    def test_timer_can_rearm_itself(self):
        sim = Simulator()
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(10)

        timer = Timer(sim, tick)
        timer.start(10)
        sim.run()
        assert fired == [10, 20, 30]
