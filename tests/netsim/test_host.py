"""Host protocol stack: demux, addressing, routing."""

import pytest

from repro.netsim import EtherType, IpProto, Ipv4Header, Packet, UdpHeader, units


def test_ip_delivery_between_hosts(rig):
    got = []
    rig.b.register_l3_protocol(IpProto.UDP, got.append)
    assert rig.a.send_ip(rig.b.ip, IpProto.UDP, [UdpHeader(dst_port=9)], payload_size=100)
    rig.sim.run()
    assert len(got) == 1
    assert got[0].find(Ipv4Header).src == rig.a.ip


def test_wrong_destination_ip_ignored(rig):
    got = []
    rig.b.register_l3_protocol(IpProto.UDP, got.append)
    # Craft a packet addressed to a stranger but steered at b's MAC.
    rig.a.send_ip(rig.b.ip, IpProto.UDP, [], payload_size=1)
    rig.sim.run()
    before = rig.b.rx_unhandled
    pkt = Packet(
        headers=[
            # Correct MAC for b (via router rewrite is skipped; inject directly).
        ],
        payload_size=1,
    )
    # Direct injection through b's receive path:
    from repro.netsim import EthernetHeader

    stray = Packet(
        headers=[EthernetHeader(dst=rig.b.mac, ethertype=EtherType.IPV4),
                 Ipv4Header(src="1.2.3.4", dst="9.9.9.9", proto=IpProto.UDP)],
        payload_size=1,
    )
    rig.b.receive(stray, next(iter(rig.b.ports.values())))
    assert rig.b.rx_unhandled == before + 1
    assert len(got) == 1


def test_unregistered_protocol_counted(rig):
    rig.a.send_ip(rig.b.ip, IpProto.TCP, [], payload_size=1)
    rig.sim.run()
    assert rig.b.rx_unhandled == 1


def test_duplicate_protocol_registration_rejected(rig):
    rig.b.register_l3_protocol(IpProto.UDP, lambda p: None)
    with pytest.raises(ValueError):
        rig.b.register_l3_protocol(IpProto.UDP, lambda p: None)


def test_l2_protocol_dispatch(rig):
    got = []
    rig.b.register_l2_protocol(EtherType.MMT, got.append)
    # a and b are not L2 adjacent (router in between), so wire directly:
    from repro.netsim import Topology, Simulator

    sim = Simulator()
    topo = Topology(sim)
    x = topo.add_host("x")
    y = topo.add_host("y")
    topo.connect(x, y, units.gbps(1), 10)
    seen = []
    y.register_l2_protocol(EtherType.MMT, seen.append)
    assert x.send_l2("to_y", y.mac, EtherType.MMT, [], payload_size=42)
    sim.run()
    assert len(seen) == 1
    assert seen[0].payload_size == 42


def test_no_route_send_fails(rig):
    assert not rig.a.send_ip("203.0.113.1", IpProto.UDP, [], payload_size=1)
    assert rig.a.tx_no_route == 1


def test_multihomed_secondary_address(rig):
    rig.b.add_address("10.0.2.99")
    got = []
    rig.b.register_l3_protocol(IpProto.UDP, got.append)
    # Re-install routes so the new address is reachable.
    rig.topology.install_routes()
    assert rig.a.send_ip("10.0.2.99", IpProto.UDP, [], payload_size=5)
    rig.sim.run()
    assert len(got) == 1


def test_sent_at_meta_stamped(rig):
    got = []
    rig.b.register_l3_protocol(IpProto.UDP, got.append)
    rig.sim.schedule(500, lambda: rig.a.send_ip(rig.b.ip, IpProto.UDP, [], payload_size=1))
    rig.sim.run()
    assert got[0].meta["sent_at"] == 500
