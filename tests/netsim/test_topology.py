"""Topology builder: wiring, addressing, route installation."""

import pytest

from repro.netsim import IpProto, Topology, TopologyError, units
from repro.netsim.link import HOST_QUEUE_BYTES


def test_duplicate_names_rejected(sim):
    topo = Topology(sim)
    topo.add_host("x")
    with pytest.raises(TopologyError):
        topo.add_host("x")


def test_connect_unknown_node(sim):
    topo = Topology(sim)
    topo.add_host("a")
    with pytest.raises(TopologyError):
        topo.connect("a", "ghost", units.gbps(1), 10)


def test_mac_and_ip_allocation_unique(sim):
    topo = Topology(sim)
    macs = {topo.allocate_mac() for _ in range(100)}
    ips = {topo.allocate_ip() for _ in range(100)}
    assert len(macs) == 100
    assert len(ips) == 100


def test_port_names_derived_and_deduplicated(sim):
    topo = Topology(sim)
    a = topo.add_host("a")
    b = topo.add_host("b")
    topo.connect(a, b, units.gbps(1), 10)
    topo.connect(a, b, units.gbps(1), 10)  # parallel link
    assert "to_b" in a.ports and "to_b.2" in a.ports


def test_host_ports_get_deep_queues_switch_ports_shallow(sim):
    topo = Topology(sim)
    a = topo.add_host("a")
    r = topo.add_router("r")
    topo.connect(a, r, units.gbps(1), 10)
    assert a.ports["to_r"].queue.capacity_bytes == HOST_QUEUE_BYTES
    assert r.ports["to_a"].queue.capacity_bytes < HOST_QUEUE_BYTES


def test_path_prefers_lower_latency(sim):
    topo = Topology(sim)
    a = topo.add_host("a")
    b = topo.add_host("b")
    fast = topo.add_router("fast")
    slow = topo.add_router("slow")
    topo.connect(a, fast, units.gbps(1), 10)
    topo.connect(fast, b, units.gbps(1), 10)
    topo.connect(a, slow, units.gbps(1), units.milliseconds(10))
    topo.connect(slow, b, units.gbps(1), units.milliseconds(10))
    names = [n.name for n in topo.path(a, b)]
    assert names == ["a", "fast", "b"]


def test_install_routes_multi_hop_delivery(sim):
    topo = Topology(sim)
    a = topo.add_host("a")
    b = topo.add_host("b")
    r1 = topo.add_router("r1")
    r2 = topo.add_router("r2")
    topo.connect(a, r1, units.gbps(1), 10)
    topo.connect(r1, r2, units.gbps(1), 10)
    topo.connect(r2, b, units.gbps(1), 10)
    topo.install_routes()
    got = []
    b.register_l3_protocol(IpProto.UDP, got.append)
    assert a.send_ip(b.ip, IpProto.UDP, [], payload_size=1)
    sim.run()
    assert len(got) == 1


def test_routes_transparent_through_l2_switch(sim):
    topo = Topology(sim)
    a = topo.add_host("a")
    b = topo.add_host("b")
    r = topo.add_router("r")
    sw = topo.add_switch("sw")
    topo.connect(a, sw, units.gbps(1), 10)
    topo.connect(sw, r, units.gbps(1), 10)
    topo.connect(r, b, units.gbps(1), 10)
    topo.install_routes()
    got = []
    b.register_l3_protocol(IpProto.UDP, got.append)
    assert a.send_ip(b.ip, IpProto.UDP, [], payload_size=1)
    sim.run()
    assert len(got) == 1


def test_link_between(sim):
    topo = Topology(sim)
    a = topo.add_host("a")
    b = topo.add_host("b")
    link = topo.connect(a, b, units.gbps(1), 10)
    assert topo.link_between("a", "b") is link
    c = topo.add_host("c")
    with pytest.raises(TopologyError):
        topo.link_between(a, c)


def test_addressable_element_gets_routes(sim):
    """Elements with their own IP (smartNIC buffers) are route targets."""
    from repro.dataplane import AlveoNic

    topo = Topology(sim)
    a = topo.add_host("a")
    b = topo.add_host("b")
    nic = topo.add(AlveoNic.u280(sim, "nic", mac=topo.allocate_mac(), ip="10.5.0.9"))
    topo.connect(a, nic, units.gbps(1), 10)
    topo.connect(nic, b, units.gbps(1), 10)
    topo.install_routes()
    assert a.routes.lookup("10.5.0.9") is not None
    assert nic.routes.lookup(a.ip) is not None
    assert nic.routes.lookup(b.ip) is not None
