"""Flow tracking and accounting."""

import pytest

from repro.netsim import FlowTracker, Packet


def pkt(flow, size=100, sent_at=None):
    meta = {"flow": flow}
    if sent_at is not None:
        meta["sent_at"] = sent_at
    return Packet(payload_size=size, meta=meta)


def test_per_flow_separation():
    tracker = FlowTracker()
    tracker.record(pkt("x"), 10)
    tracker.record(pkt("y"), 20)
    tracker.record(pkt("x"), 30)
    assert len(tracker) == 2
    assert tracker.flow("x").packets == 2
    assert tracker.flow("y").packets == 1
    assert tracker.total_packets == 3


def test_latency_samples():
    tracker = FlowTracker()
    tracker.record(pkt("x", sent_at=100), 150)
    tracker.record(pkt("x", sent_at=200), 280)
    assert tracker.flow("x").latencies_ns == [50, 80]


def test_latency_collection_can_be_disabled():
    tracker = FlowTracker(keep_latencies=False)
    tracker.record(pkt("x", sent_at=0), 50)
    assert tracker.flow("x").latencies_ns == []


def test_throughput_over_active_window():
    tracker = FlowTracker()
    tracker.record(pkt("x", size=1000), 0)
    tracker.record(pkt("x", size=1000), 1_000_000)  # 1 ms apart
    record = tracker.flow("x")
    assert record.duration_ns == 1_000_000
    assert record.throughput_bps == pytest.approx(16_000_000)  # 2kB/ms


def test_single_packet_flow_has_zero_duration():
    tracker = FlowTracker()
    tracker.record(pkt("x"), 5)
    assert tracker.flow("x").duration_ns == 0
    assert tracker.flow("x").throughput_bps == 0.0


def test_default_flow_tag():
    tracker = FlowTracker()
    tracker.record(Packet(payload_size=1), 0)
    assert "default" in tracker.flows


def test_unknown_flow_raises():
    with pytest.raises(KeyError):
        FlowTracker().flow("missing")
