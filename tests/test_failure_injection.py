"""Failure injection across modules: outages, partitions, overload.

These tests intentionally break things mid-run and check the system
degrades the way the design says it should — recovery after healing,
bounded give-up when recovery is impossible, counters that tell the
operator what happened. Faults are driven through
:class:`repro.faults.FaultPlan`, the same scripted injection the chaos
harness uses, so the tests double as coverage for the injector.
"""


from repro.core import MmtStack, ReceiverConfig, make_experiment_id
from repro.dataplane import PilotConfig, PilotTestbed
from repro.faults import FaultInjector, FaultPlan
from repro.netsim import Simulator, units
from tests.conftest import TwoHostRig

EXP = 7
EXP_ID = make_experiment_id(EXP)


class TestLinkOutage:
    def build(self, sim):
        rig = TwoHostRig(sim, middle_delay_ns=units.milliseconds(2))
        stack_a = MmtStack(rig.a)
        stack_b = MmtStack(rig.b)
        got = set()
        receiver = stack_b.bind_receiver(
            EXP, on_message=lambda p, h: got.add(h.seq),
            config=ReceiverConfig(initial_rtt_ns=units.milliseconds(8)),
        )
        stack_a.attach_buffer(256 * 1024 * 1024)
        sender = stack_a.create_sender(
            experiment_id=EXP_ID, mode="age-recover", dst_ip=rig.b.ip,
            age_budget_ns=units.seconds(10), buffer_local=True,
        )
        return rig, sender, receiver, got

    def test_outage_mid_stream_fully_recovered_after_heal(self, sim):
        rig, sender, receiver, got = self.build(sim)
        for i in range(600):
            sim.schedule(i * 50_000, sender.send, 2000)  # 30 ms stream
        # A hard 8 ms outage in the middle of the stream.
        plan = (
            FaultPlan()
            .link_down(rig.link_b, at_ns=units.milliseconds(10))
            .link_up(rig.link_b, at_ns=units.milliseconds(18))
        )
        injector = FaultInjector(sim, plan)
        injector.arm()
        sim.schedule(units.milliseconds(31), sender.finish)
        sim.run()
        receiver.request_missing(EXP_ID, 600)
        sim.run()
        assert got == set(range(600))
        assert receiver.stats.retransmissions_received > 50  # the outage window
        assert receiver.stats.unrecovered == 0
        assert len(injector.fired) == 2
        # Every frame the dead link swallowed is accounted for.
        assert rig.link_b.stats.lost_down > 50

    def test_permanent_partition_gives_up_boundedly(self, sim):
        rig, sender, receiver, got = self.build(sim)
        for i in range(50):
            sender.send(1000)
        FaultInjector(
            sim, FaultPlan().link_down(rig.link_b, at_ns=units.microseconds(10))
        ).arm()
        sender.finish()
        sim.run(until_ns=units.seconds(600))
        # Whatever was in flight before the cut arrived; the rest was
        # eventually abandoned (bounded NAK retries), not retried forever.
        assert receiver.stats.naks_sent <= receiver.config.max_naks + 2
        assert sim.pending_events() == 0  # no timer leaks after give-up


class TestBufferUndersizing:
    def test_eviction_makes_old_losses_unrecoverable_but_counted(self, sim):
        """An undersized buffer cannot serve old NAKs: the receiver
        gives up on exactly those, and the buffer counts the misses."""
        rig = TwoHostRig(sim, middle_delay_ns=units.milliseconds(20), loss_rate=0.05)
        stack_a = MmtStack(rig.a)
        stack_b = MmtStack(rig.b)
        receiver = stack_b.bind_receiver(
            EXP, config=ReceiverConfig(initial_rtt_ns=units.milliseconds(45), max_naks=3),
        )
        buffer = stack_a.attach_buffer(20_000)  # holds ~6 messages only
        sender = stack_a.create_sender(
            experiment_id=EXP_ID, mode="age-recover", dst_ip=rig.b.ip,
            age_budget_ns=units.seconds(10), buffer_local=True,
        )
        for i in range(400):
            sim.schedule(i * 20_000, sender.send, 3000)
        sim.schedule(400 * 20_000, sender.finish)
        sim.run()
        assert buffer.stats.evicted > 300
        assert buffer.stats.misses > 0
        assert receiver.stats.unrecovered > 0
        # The stream still terminated cleanly.
        assert receiver.outstanding() == 0


class TestPilotUnderStress:
    def test_pilot_survives_outage_and_recovers(self):
        config = PilotConfig(wan_delay_ns=2 * units.MILLISECOND)
        pilot = PilotTestbed(sim=Simulator(seed=77), config=config)
        pilot.send_stream(800, payload_size=4000, interval_ns=20_000)  # 16 ms stream
        plan = (
            FaultPlan()
            .link_down(pilot.wan_link, at_ns=units.milliseconds(5))
            .link_up(pilot.wan_link, at_ns=units.milliseconds(9))
        )
        FaultInjector(pilot.sim, plan).arm()
        report = pilot.run()
        assert report.complete
        assert report.retransmissions > 100
        assert report.naks_served >= 1

    def test_pilot_heavy_loss_still_complete(self):
        config = PilotConfig(
            wan_delay_ns=1 * units.MILLISECOND, wan_loss_rate=0.15
        )
        pilot = PilotTestbed(sim=Simulator(seed=78), config=config)
        pilot.send_stream(300, payload_size=2000, interval_ns=10_000)
        report = pilot.run()
        assert report.complete
        assert report.naks_sent > 0
