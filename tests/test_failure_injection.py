"""Failure injection across modules: outages, partitions, overload.

These tests intentionally break things mid-run and check the system
degrades the way the design says it should — recovery after healing,
bounded give-up when recovery is impossible, counters that tell the
operator what happened. Faults are driven through
:class:`repro.faults.FaultPlan`, the same scripted injection the chaos
harness uses, so the tests double as coverage for the injector.
"""


from repro.core import MmtStack, ReceiverConfig, make_experiment_id
from repro.dataplane import PilotConfig, PilotTestbed
from repro.faults import FaultInjector, FaultPlan, FlowFilteredLoss
from repro.netsim import Simulator, units
from tests.conftest import TwoHostRig

EXP = 7
EXP_ID = make_experiment_id(EXP)


class TestLinkOutage:
    def build(self, sim):
        rig = TwoHostRig(sim, middle_delay_ns=units.milliseconds(2))
        stack_a = MmtStack(rig.a)
        stack_b = MmtStack(rig.b)
        got = set()
        receiver = stack_b.bind_receiver(
            EXP, on_message=lambda p, h: got.add(h.seq),
            config=ReceiverConfig(initial_rtt_ns=units.milliseconds(8)),
        )
        stack_a.attach_buffer(256 * 1024 * 1024)
        sender = stack_a.create_sender(
            experiment_id=EXP_ID, mode="age-recover", dst_ip=rig.b.ip,
            age_budget_ns=units.seconds(10), buffer_local=True,
        )
        return rig, sender, receiver, got

    def test_outage_mid_stream_fully_recovered_after_heal(self, sim):
        rig, sender, receiver, got = self.build(sim)
        for i in range(600):
            sim.schedule(i * 50_000, sender.send, 2000)  # 30 ms stream
        # A hard 8 ms outage in the middle of the stream.
        plan = (
            FaultPlan()
            .link_down(rig.link_b, at_ns=units.milliseconds(10))
            .link_up(rig.link_b, at_ns=units.milliseconds(18))
        )
        injector = FaultInjector(sim, plan)
        injector.arm()
        sim.schedule(units.milliseconds(31), sender.finish)
        sim.run()
        receiver.request_missing(EXP_ID, 600)
        sim.run()
        assert got == set(range(600))
        assert receiver.stats.retransmissions_received > 50  # the outage window
        assert receiver.stats.unrecovered == 0
        assert len(injector.fired) == 2
        # Every frame the dead link swallowed is accounted for.
        assert rig.link_b.stats.lost_down > 50

    def test_permanent_partition_gives_up_boundedly(self, sim):
        rig, sender, receiver, got = self.build(sim)
        for i in range(50):
            sender.send(1000)
        FaultInjector(
            sim, FaultPlan().link_down(rig.link_b, at_ns=units.microseconds(10))
        ).arm()
        sender.finish()
        sim.run(until_ns=units.seconds(600))
        # Whatever was in flight before the cut arrived; the rest was
        # eventually abandoned (bounded NAK retries), not retried forever.
        assert receiver.stats.naks_sent <= receiver.config.max_naks + 2
        assert sim.pending_events() == 0  # no timer leaks after give-up


class TestBufferUndersizing:
    def test_eviction_makes_old_losses_unrecoverable_but_counted(self, sim):
        """An undersized buffer cannot serve old NAKs: the receiver
        gives up on exactly those, and the buffer counts the misses."""
        rig = TwoHostRig(sim, middle_delay_ns=units.milliseconds(20), loss_rate=0.05)
        stack_a = MmtStack(rig.a)
        stack_b = MmtStack(rig.b)
        receiver = stack_b.bind_receiver(
            EXP, config=ReceiverConfig(initial_rtt_ns=units.milliseconds(45), max_naks=3),
        )
        buffer = stack_a.attach_buffer(20_000)  # holds ~6 messages only
        sender = stack_a.create_sender(
            experiment_id=EXP_ID, mode="age-recover", dst_ip=rig.b.ip,
            age_budget_ns=units.seconds(10), buffer_local=True,
        )
        for i in range(400):
            sim.schedule(i * 20_000, sender.send, 3000)
        sim.schedule(400 * 20_000, sender.finish)
        sim.run()
        assert buffer.stats.evicted > 300
        assert buffer.stats.misses > 0
        assert receiver.stats.unrecovered > 0
        # The stream still terminated cleanly.
        assert receiver.outstanding() == 0


class TestPilotUnderStress:
    def test_pilot_survives_outage_and_recovers(self):
        config = PilotConfig(wan_delay_ns=2 * units.MILLISECOND)
        pilot = PilotTestbed(sim=Simulator(seed=77), config=config)
        pilot.send_stream(800, payload_size=4000, interval_ns=20_000)  # 16 ms stream
        plan = (
            FaultPlan()
            .link_down(pilot.wan_link, at_ns=units.milliseconds(5))
            .link_up(pilot.wan_link, at_ns=units.milliseconds(9))
        )
        FaultInjector(pilot.sim, plan).arm()
        report = pilot.run()
        assert report.complete
        assert report.retransmissions > 100
        assert report.naks_served >= 1

    def test_pilot_heavy_loss_still_complete(self):
        config = PilotConfig(
            wan_delay_ns=1 * units.MILLISECOND, wan_loss_rate=0.15
        )
        pilot = PilotTestbed(sim=Simulator(seed=78), config=config)
        pilot.send_stream(300, payload_size=2000, interval_ns=10_000)
        report = pilot.run()
        assert report.complete
        assert report.naks_sent > 0


class TestCrossFlowIsolation:
    """Faults aimed at one flow of a concurrent mix stay contained.

    Three flows share the pilot path; a fault that targets (or merely
    coincides with) flow 1 must never change what the bystander flows
    *deliver* — same message counts, same bytes, same NAK/retransmission
    counters as an undisturbed run. Timing may shift (recovery traffic
    shares the links); content may not.
    """

    FLOWS = 3
    PER_FLOW = 200
    PAYLOAD = 4000
    INTERVAL_NS = 60_000  # per-flow send period; ~12 ms stream

    #: per_flow report keys that describe *content*, not timing.
    CONTENT_KEYS = (
        "sent",
        "relayed",
        "delivered",
        "bytes_delivered",
        "naks_sent",
        "retransmissions",
        "unrecovered",
    )

    def build(self, seed, **config_kwargs):
        config = PilotConfig(
            flows=self.FLOWS,
            wan_delay_ns=2 * units.MILLISECOND,
            **config_kwargs,
        )
        pilot = PilotTestbed(sim=Simulator(seed=seed), config=config)
        for fid in range(self.FLOWS):
            pilot.send_stream(
                self.PER_FLOW,
                payload_size=self.PAYLOAD,
                interval_ns=self.INTERVAL_NS,
                flow=fid,
            )
        return pilot

    def test_flow_targeted_loss_never_perturbs_bystanders(self):
        """Heavy loss filtered to flow 1's data: flow 1 recovers through
        NAKs, flows 0 and 2 deliver content-identically to a clean run
        — and never even engage their recovery machinery."""
        clean = self.build(seed=91).run()

        pilot = self.build(seed=91)
        model = FlowFilteredLoss(rate=0.25, flow_id=1)
        plan = (
            FaultPlan()
            .set_loss_model(pilot.wan_link, model, at_ns=units.milliseconds(2))
            .clear_loss_model(pilot.wan_link, at_ns=units.milliseconds(8))
        )
        FaultInjector(pilot.sim, plan).arm()
        report = pilot.run()

        assert report.complete
        assert model.dropped > 0
        hit = report.per_flow[1]
        assert hit["naks_sent"] > 0
        assert hit["retransmissions"] > 0
        assert hit["unrecovered"] == 0
        assert hit["delivered"] == self.PER_FLOW
        for bystander in (0, 2):
            faulted_row = report.per_flow[bystander]
            clean_row = clean.per_flow[bystander]
            for key in self.CONTENT_KEYS:
                assert faulted_row[key] == clean_row[key], (bystander, key)
            # Not merely unchanged: the bystanders saw no loss at all.
            assert faulted_row["naks_sent"] == 0
            assert faulted_row["retransmissions"] == 0

    def test_link_flap_under_three_flows_all_recover(self):
        """A hard WAN outage hits every concurrent flow; each one
        recovers its own stream completely and independently."""
        pilot = self.build(seed=92)
        plan = (
            FaultPlan()
            .link_down(pilot.wan_link, at_ns=units.milliseconds(5))
            .link_up(pilot.wan_link, at_ns=units.milliseconds(9))
        )
        injector = FaultInjector(pilot.sim, plan)
        injector.arm()
        report = pilot.run()
        assert report.complete
        assert len(injector.fired) == 2
        for fid in range(self.FLOWS):
            row = report.per_flow[fid]
            assert row["delivered"] == self.PER_FLOW, fid
            assert row["unrecovered"] == 0, fid
            # The outage window straddles all three flows' streams.
            assert row["retransmissions"] > 0, fid

    def test_buffer_failover_under_three_flows(self):
        """The shared U280 buffer dies mid-run with three flows' worth
        of retransmit state in it; directory failover re-stamps all
        flows to the DTN 1 buffer and every flow still completes."""
        pilot = self.build(
            seed=93,
            wan_loss_rate=0.02,
            use_directory=True,
            reliable_from_dtn1=True,
            failover_buffer=True,
        )
        plan = FaultPlan().buffer_fail(
            pilot.buffer, at_ns=units.milliseconds(6), directory=pilot.directory
        )
        FaultInjector(pilot.sim, plan).arm()
        report = pilot.run()
        assert report.complete
        assert pilot.tofino_nearest.failovers > 0
        for fid in range(self.FLOWS):
            row = report.per_flow[fid]
            assert row["delivered"] == self.PER_FLOW, fid
            assert row["unrecovered"] == 0, fid
