"""The ``repro`` console entry point."""

import json

import pytest

from repro.cli import build_parser, main


def test_catalog_prints_table1(capsys):
    assert main(["catalog"]) == 0
    out = capsys.readouterr().out
    for name in ("CMS L1 Trigger", "DUNE", "ECCE detector", "Mu2e", "Vera Rubin"):
        assert name in out
    assert "63.0 Tbps" in out
    assert "400.0 Gbps" in out


def test_header_lists_every_mode(capsys):
    assert main(["header"]) == 0
    out = capsys.readouterr().out
    for mode in ("identify", "age-recover", "deliver-check", "paced", "fanout"):
        assert mode in out
    assert " 8 " in out  # the bare core header size


def test_pilot_small_run(capsys):
    code = main([
        "pilot", "--messages", "50", "--wan-ms", "1",
        "--loss", "0.02", "--interval-us", "5",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "delivered" in out
    assert "complete" in out
    assert "True" in out


def test_compare_small_run(capsys):
    assert main([
        "compare", "--messages", "100", "--wan-ms", "2", "--loss", "0",
        "--interval-us", "64",
    ]) == 0
    out = capsys.readouterr().out
    assert "today (UDP+TCP)" in out
    assert "multi-modal (MMT)" in out


def test_supernova_run(capsys):
    assert main(["supernova"]) == 0
    out = capsys.readouterr().out
    assert "today" in out and "mmt" in out


def test_bench_reports_throughput(capsys):
    # Tiny workloads: this checks wiring, not performance.
    assert main(["bench", "--events", "2000", "--packets", "200"]) == 0
    out = capsys.readouterr().out
    assert "engine (events/s)" in out
    assert "packet path (packets/s)" in out
    assert "/s" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_command_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_pilot_telemetry_snapshot_and_render(capsys, tmp_path):
    snapshot = tmp_path / "pilot.jsonl"
    code = main([
        "pilot", "--messages", "40", "--wan-ms", "1", "--loss", "0.02",
        "--interval-us", "5", "--telemetry", str(snapshot),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert f"-> {snapshot}" in out
    assert snapshot.exists()

    assert main(["telemetry", str(snapshot)]) == 0
    rendered = capsys.readouterr().out
    assert "Histograms" in rendered and "Counters" in rendered
    assert "int_segment_latency_ns" in rendered
    assert "alveo-u280->tofino2" in rendered
    assert "queue_peak_bytes" in rendered
    assert "scenario=pilot" in rendered


def test_telemetry_all_flag_includes_zero_metrics(capsys, tmp_path):
    snapshot = tmp_path / "pilot.jsonl"
    main([
        "pilot", "--messages", "10", "--wan-ms", "1", "--interval-us", "5",
        "--telemetry", str(snapshot),
    ])
    capsys.readouterr()
    main(["telemetry", str(snapshot)])
    trimmed = capsys.readouterr().out
    main(["telemetry", str(snapshot), "--all"])
    full = capsys.readouterr().out
    assert len(full.splitlines()) > len(trimmed.splitlines())
    # A counter that never fires in a clean run only shows under --all.
    assert "mmt_rx_naks_sent" not in trimmed
    assert "mmt_rx_naks_sent" in full


def test_pilot_trace_writes_jsonl(capsys, tmp_path):
    trace_file = tmp_path / "pilot_trace.jsonl"
    code = main([
        "pilot", "--messages", "20", "--wan-ms", "1", "--interval-us", "5",
        "--trace", str(trace_file),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert f"-> {trace_file}" in out
    from repro.trace import load_trace

    meta, events = load_trace(str(trace_file))
    assert meta["scenario"] == "pilot"
    assert events
    assert any(e.kind == "packet.deliver" for e in events)


def test_trace_run_summary_and_digest(capsys):
    assert main(["trace", "--messages", "20", "--wan-ms", "1"]) == 0
    out = capsys.readouterr().out
    assert "spans emitted" in out
    assert "digest: sha256:" in out


def test_trace_timeline_root_cause(capsys):
    # Experiment 42, slice 0 -> experiment_id 42 << 8 = 10752.
    code = main([
        "trace", "--messages", "20", "--wan-ms", "1",
        "--timeline", "10752:0:3",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "packet experiment=10752 flow=0 seq=3" in out
    assert "mode transition" in out
    assert "delivered" in out


def test_trace_anomalies_listing(capsys):
    code = main([
        "trace", "--messages", "40", "--flows", "2", "--wan-ms", "1",
        "--loss", "0.05", "--seed", "7", "--anomalies",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Anomalous packets" in out or "no anomalous packets" in out


def test_trace_chrome_export_and_reload(capsys, tmp_path):
    chrome = tmp_path / "trace.json"
    out_file = tmp_path / "trace.jsonl"
    code = main([
        "trace", "--messages", "20", "--wan-ms", "1",
        "--out", str(out_file), "--chrome", str(chrome),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Perfetto" in out

    import json

    payload = json.loads(chrome.read_text())
    names = {r["args"]["name"] for r in payload["traceEvents"]
             if r["name"] == "thread_name"}
    assert {"alveo-u280", "tofino2", "alveo-u55c"} <= names

    # Round trip: the written file loads and filters by identity.
    code = main(["trace", "--input", str(out_file), "--timeline", "10752:0:1"])
    assert code == 0
    assert "packet experiment=10752 flow=0 seq=1" in capsys.readouterr().out


def test_trace_verify_int(capsys):
    code = main([
        "trace", "--messages", "20", "--wan-ms", "1", "--verify-int",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "INT consistency" in out
    assert "0 mismatches" in out


def test_trace_verify_int_rejects_input_file(capsys, tmp_path):
    bogus = tmp_path / "x.jsonl"
    bogus.write_text("{}\n")
    code = main(["trace", "--input", str(bogus), "--verify-int"])
    assert code == 2
    assert "--verify-int" in capsys.readouterr().err


def test_trace_bad_timeline_spec(capsys):
    code = main(["trace", "--messages", "4", "--wan-ms", "1",
                 "--timeline", "nope"])
    assert code == 2
    assert "EXPERIMENT:FLOW:SEQ" in capsys.readouterr().err


def test_trace_missing_input_file(capsys):
    code = main(["trace", "--input", "/nonexistent/trace.jsonl"])
    assert code == 1
    assert "error" in capsys.readouterr().err


def test_incast_small_grid(capsys, tmp_path):
    code = main([
        "incast", "--grid", "small", "--seed", "7",
        "--out-dir", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Incast head-to-head" in out
    assert "seed000007_mmt_n016_k020_l150_sym" in out
    assert "BENCH_fct_grid.json" in out
    written = json.loads((tmp_path / "BENCH_fct_grid.json").read_text())
    assert written["seed"] == 7
    assert len(written["metrics"]) == 6  # 3 transports x N in {4, 16}


def test_incast_jobs_do_not_change_the_artifact(capsys, tmp_path):
    main(["incast", "--grid", "small", "--seed", "7",
          "--out-dir", str(tmp_path / "j1")])
    main(["incast", "--grid", "small", "--seed", "7", "--jobs", "2",
          "--out-dir", str(tmp_path / "j2")])
    capsys.readouterr()
    first = (tmp_path / "j1" / "BENCH_fct_grid.json").read_bytes()
    second = (tmp_path / "j2" / "BENCH_fct_grid.json").read_bytes()
    assert first == second


# -- PR 10: observability flags ------------------------------------------------


def test_pilot_sampled_run_writes_series_and_chrome(capsys, tmp_path):
    series = tmp_path / "series.jsonl"
    chrome = tmp_path / "trace.json"
    code = main([
        "pilot", "--messages", "50", "--interval-us", "5",
        "--sample-every", "100",
        "--series", str(series), "--chrome", str(chrome),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "sampler:" in out
    lines = series.read_text().splitlines()
    meta = json.loads(lines[0])
    assert meta["kind"] == "meta" and meta["schema_version"] == 1
    assert meta["scenario"] == "pilot"
    assert all(json.loads(l)["kind"] == "series" for l in lines[1:])
    trace = json.loads(chrome.read_text())
    assert any(e.get("ph") == "C" for e in trace["traceEvents"])


def test_pilot_slo_violation_fails_run_and_writes_health(capsys, tmp_path):
    health = tmp_path / "health.json"
    code = main([
        "pilot", "--messages", "50", "--interval-us", "5",
        "--sample-every", "100",
        "--slo", "link_current_rate_bps max <= 1",
        "--health", str(health),
    ])
    assert code == 1
    assert "VIOLATION" in capsys.readouterr().out
    payload = json.loads(health.read_text())
    assert payload["ok"] is False
    assert payload["events"][0]["metric"] == "link_current_rate_bps"


def test_pilot_obs_flags_require_sample_every(capsys, tmp_path):
    for flag, value in (
        ("--series", str(tmp_path / "s.jsonl")),
        ("--chrome", str(tmp_path / "c.json")),
        ("--slo", "queue_bytes max <= 1"),
    ):
        code = main(["pilot", "--messages", "10", flag, value])
        assert code == 2
        assert "--sample-every" in capsys.readouterr().err


def test_pilot_farm_sampled_run(capsys, tmp_path):
    series = tmp_path / "farm.jsonl"
    code = main([
        "pilot", "--receivers", "4", "--messages", "64",
        "--interval-us", "5", "--sample-every", "500",
        "--series", str(series),
        "--slo", "fleet_node_fill_pct max <= 100",
    ])
    assert code == 0
    meta = json.loads(series.read_text().splitlines()[0])
    assert meta["scenario"] == "pilot-farm"
    metrics = {
        json.loads(l)["metric"] for l in series.read_text().splitlines()[1:]
    }
    assert "fleet_fill_skew" in metrics


def test_incast_jobs_print_heartbeats(capsys, tmp_path):
    main(["incast", "--grid", "small", "--seed", "7", "--jobs", "2",
          "--out-dir", str(tmp_path)])
    err = capsys.readouterr().err
    assert "[incast 1/6]" in err
    assert "[incast 6/6]" in err
