"""The ``repro`` console entry point."""

import pytest

from repro.cli import build_parser, main


def test_catalog_prints_table1(capsys):
    assert main(["catalog"]) == 0
    out = capsys.readouterr().out
    for name in ("CMS L1 Trigger", "DUNE", "ECCE detector", "Mu2e", "Vera Rubin"):
        assert name in out
    assert "63.0 Tbps" in out
    assert "400.0 Gbps" in out


def test_header_lists_every_mode(capsys):
    assert main(["header"]) == 0
    out = capsys.readouterr().out
    for mode in ("identify", "age-recover", "deliver-check", "paced", "fanout"):
        assert mode in out
    assert " 8 " in out  # the bare core header size


def test_pilot_small_run(capsys):
    code = main([
        "pilot", "--messages", "50", "--wan-ms", "1",
        "--loss", "0.02", "--interval-us", "5",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "delivered" in out
    assert "complete" in out
    assert "True" in out


def test_compare_small_run(capsys):
    assert main([
        "compare", "--messages", "100", "--wan-ms", "2", "--loss", "0",
        "--interval-us", "64",
    ]) == 0
    out = capsys.readouterr().out
    assert "today (UDP+TCP)" in out
    assert "multi-modal (MMT)" in out


def test_supernova_run(capsys):
    assert main(["supernova"]) == 0
    out = capsys.readouterr().out
    assert "today" in out and "mmt" in out


def test_bench_reports_throughput(capsys):
    # Tiny workloads: this checks wiring, not performance.
    assert main(["bench", "--events", "2000", "--packets", "200"]) == 0
    out = capsys.readouterr().out
    assert "engine (events/s)" in out
    assert "packet path (packets/s)" in out
    assert "/s" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_command_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_pilot_telemetry_snapshot_and_render(capsys, tmp_path):
    snapshot = tmp_path / "pilot.jsonl"
    code = main([
        "pilot", "--messages", "40", "--wan-ms", "1", "--loss", "0.02",
        "--interval-us", "5", "--telemetry", str(snapshot),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert f"-> {snapshot}" in out
    assert snapshot.exists()

    assert main(["telemetry", str(snapshot)]) == 0
    rendered = capsys.readouterr().out
    assert "Histograms" in rendered and "Counters" in rendered
    assert "int_segment_latency_ns" in rendered
    assert "alveo-u280->tofino2" in rendered
    assert "queue_peak_bytes" in rendered
    assert "scenario=pilot" in rendered


def test_telemetry_all_flag_includes_zero_metrics(capsys, tmp_path):
    snapshot = tmp_path / "pilot.jsonl"
    main([
        "pilot", "--messages", "10", "--wan-ms", "1", "--interval-us", "5",
        "--telemetry", str(snapshot),
    ])
    capsys.readouterr()
    main(["telemetry", str(snapshot)])
    trimmed = capsys.readouterr().out
    main(["telemetry", str(snapshot), "--all"])
    full = capsys.readouterr().out
    assert len(full.splitlines()) > len(trimmed.splitlines())
    # A counter that never fires in a clean run only shows under --all.
    assert "mmt_rx_naks_sent" not in trimmed
    assert "mmt_rx_naks_sent" in full
