"""Spec conformance: the ten DAQ transport requirements of §3.

One test per requirement, each exercising the library end to end. This
suite is the executable form of the paper's requirements table — if a
refactor breaks a requirement, the failing test names it.
"""


from repro.core import (
    Feature,
    MmtHeader,
    MmtStack,
    extended_registry,
    make_experiment_id,
)
from repro.daq import (
    DaqFrameHeader,
    Mu2ePacket,
    PayloadKind,
    WibFrame,
    frame_message,
    parse_message,
)
from repro.dataplane import PilotConfig, PilotTestbed
from repro.integration import SupernovaConfig, compare
from repro.netsim import Simulator, Topology, units
from repro.netsim.units import MILLISECOND, SECOND

EXP = 7
EXP_ID = make_experiment_id(EXP)


def two_hosts(sim, **link_kwargs):
    topo = Topology(sim)
    a = topo.add_host("a")
    b = topo.add_host("b")
    topo.connect(a, b, units.gbps(100), units.microseconds(10), **link_kwargs)
    topo.install_routes()
    return topo, a, b


def test_req1_operates_on_l2_and_l3(sim):
    """Req 1: works across network types — directly over Ethernet in
    the DAQ net, over IP elsewhere."""
    topo, a, b = two_hosts(sim)
    stack_a = MmtStack(a)
    stack_b = MmtStack(b)
    got = []
    stack_b.bind_receiver(EXP, on_message=lambda p, h: got.append(p))
    l2 = stack_a.create_sender(
        experiment_id=EXP_ID, mode="identify", dst_mac=b.mac,
        l2_port=next(iter(a.ports)),
    )
    l3 = stack_a.create_sender(experiment_id=EXP_ID, mode="identify", dst_ip=b.ip)
    l2.send(100)
    l3.send(200)
    sim.run()
    sizes = sorted(p.payload_size for p in got)
    assert sizes == [100, 200]


def test_req2_high_capacity_line_rate(sim):
    """Req 2: a paced MMT stream sustains ~line rate on 100 GbE."""
    topo, a, b = two_hosts(sim)
    registry = extended_registry()
    stack_a = MmtStack(a, registry)
    stack_b = MmtStack(b, registry)
    arrivals = []
    stack_b.bind_receiver(EXP, on_message=lambda p, h: arrivals.append(sim.now))
    stack_a.attach_buffer(256 * 1024 * 1024)
    sender = stack_a.create_sender(
        experiment_id=EXP_ID, mode="paced", dst_ip=b.ip,
        pace_rate_mbps=95_000, buffer_local=True,
    )
    for _ in range(2_000):
        sender.send(8192)
    sender.finish()
    sim.run()
    window = arrivals[-1] - arrivals[0]
    rate = (len(arrivals) - 1) * 8192 * 8 * SECOND / window
    assert rate > 90e9


def test_req3_timeliness_built_in(sim):
    """Req 3: deadlines are protocol fields, and misses are reported."""
    topo, a, b = two_hosts(sim)
    stack_a = MmtStack(a)
    stack_b = MmtStack(b)
    receiver = stack_b.bind_receiver(EXP)
    stack_a.attach_buffer(1_000_000)
    sender = stack_a.create_sender(
        experiment_id=EXP_ID, mode="deliver-check", dst_ip=b.ip,
        age_budget_ns=SECOND, deadline_offset_ns=1,  # unmeetable
        notify_addr=a.ip, buffer_local=True,
    )
    sender.send(100)
    sender.finish()
    sim.run()
    assert receiver.stats.deadline_misses == 1
    assert len(stack_a.deadline_misses) == 1


def test_req4_reliable(sim):
    """Req 4: every message is delivered despite loss."""
    topo, a, b = two_hosts(sim, loss_rate=0.05)
    stack_a = MmtStack(a)
    stack_b = MmtStack(b)
    receiver = stack_b.bind_receiver(EXP)
    stack_a.attach_buffer(64 * 1024 * 1024)
    sender = stack_a.create_sender(
        experiment_id=EXP_ID, mode="age-recover", dst_ip=b.ip,
        age_budget_ns=SECOND, buffer_local=True,
    )
    for _ in range(200):
        sender.send(1000)
    sender.finish()
    sim.run()
    receiver.request_missing(EXP_ID, 200)
    sim.run()
    assert receiver.complete(EXP_ID, 200)


def test_req5_encrypted_payload_mode():
    """Req 5: the ENCRYPTED marker mode exists; payload bytes cross the
    network untouched (encryption stays with third-party tools)."""
    registry = extended_registry()
    mode = registry.by_name("secure-identify")
    assert mode.has(Feature.ENCRYPTED)
    sim = Simulator(seed=1)
    topo, a, b = two_hosts(sim)
    stack_a = MmtStack(a, registry)
    stack_b = MmtStack(b, registry)
    got = []
    stack_b.bind_receiver(EXP, on_message=lambda p, h: got.append((p.payload, h)))
    sender = stack_a.create_sender(
        experiment_id=EXP_ID, mode="secure-identify", dst_ip=b.ip
    )
    ciphertext = bytes(range(32))
    sender.send(len(ciphertext), payload=ciphertext)
    sim.run()
    payload, header = got[0]
    assert payload == ciphertext
    assert header.has(Feature.ENCRYPTED)


def test_req6_uses_in_network_processing():
    """Req 6: the pilot's elements actually do the work — transitions,
    sequence numbering, buffering, age updates all happen in-network."""
    pilot = PilotTestbed(sim=Simulator(seed=9), config=PilotConfig())
    pilot.send_stream(50, payload_size=1000, interval_ns=1000)
    report = pilot.run()
    assert report.mode_transitions_u280 == 50
    assert report.mode_transitions_u55c == 50
    assert report.age_updates_tofino == 50
    assert pilot.u280.stats.mirrored_to_buffer == 50
    assert pilot.u280.pipeline.packets_processed >= 50


def test_req7_message_abstraction(sim):
    """Req 7: discrete datagrams — boundaries preserved, arrivals
    delivered immediately and independently (no bytestream)."""
    topo, a, b = two_hosts(sim)
    stack_a = MmtStack(a)
    stack_b = MmtStack(b)
    got = []
    stack_b.bind_receiver(EXP, on_message=lambda p, h: got.append(p.payload_size))
    sender = stack_a.create_sender(experiment_id=EXP_ID, mode="identify", dst_ip=b.ip)
    for size in (100, 5000, 1, 8192):
        sender.send(size)
    sim.run()
    assert got == [100, 5000, 1, 8192]  # exact boundaries, no merging


def test_req8_instrument_partitioning(sim):
    """Req 8: the header names which slice produced the data."""
    topo, a, b = two_hosts(sim)
    stack_a = MmtStack(a)
    stack_b = MmtStack(b)
    slices = []
    stack_b.bind_receiver(EXP, on_message=lambda p, h: slices.append(h.slice_id))
    for slice_id in (0, 3, 0, 7):
        sender = stack_a.create_sender(
            experiment_id=make_experiment_id(EXP, slice_id),
            mode="identify", dst_ip=b.ip, flow=f"s{slice_id}-{len(slices)}",
        )
        sender.send(64)
    sim.run()
    assert sorted(slices) == [0, 0, 3, 7]


def test_req9_reusable_across_experiments_and_detectors():
    """Req 9: one top-level DAQ header over detector-specific formats,
    and one protocol across every catalog experiment."""
    wib_payload = WibFrame(0, 0, 0, 1, tuple([100] * 256)).encode()
    mu2e_payload = Mu2ePacket(1, 2, 3, b"\x00" * 32).encode()
    for kind, payload in (
        (PayloadKind.WIB_FRAME, wib_payload),
        (PayloadKind.MU2E_PACKET, mu2e_payload),
    ):
        header = DaqFrameHeader(
            detector_id=1, slice_id=0, timestamp_ticks=1, run_number=1,
            payload_kind=kind, payload_bytes=len(payload),
        )
        parsed_header, parsed_payload = parse_message(frame_message(header, payload))
        assert parsed_header.payload_kind == kind
        assert parsed_payload == payload
    # And the MMT experiment-id space covers every Table 1 entry.
    from repro.daq import catalog

    ids = {make_experiment_id(s.experiment_number) for s in catalog()}
    assert len(ids) == len(catalog())


def test_req10_cross_instrument_integration():
    """Req 10: a DUNE trigger steers Vera Rubin well inside the
    neutrino-photon lead time."""
    config = SupernovaConfig(
        burst_start_ns=1 * SECOND, burst_duration_ns=500 * MILLISECOND,
        burst_rate_hz=5_000.0, trigger_threshold=30,
    )
    results = compare(config, seed=3)
    for result in results.values():
        assert result.alert_at_scope_ns is not None
        assert result.warning_latency_ns < 60 * SECOND
