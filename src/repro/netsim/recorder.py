"""Packet capture: tcpdump for the simulator.

A :class:`TraceRecorder` taps link deliveries and records one
:class:`TraceEntry` per observed packet — headers summarized to plain
dictionaries, filtered by an optional predicate. Traces can be
inspected in tests, printed, or exported as JSON lines for offline
analysis.

Tapping uses the link's destination-port ``deliver`` path, so the
recorder sees exactly what survived the link (post-loss), with
arrival timestamps.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, fields as dataclasses_fields, is_dataclass
from typing import Callable

from .link import Link, Port
from .packet import Packet


@dataclass
class TraceEntry:
    """One observed packet."""

    time_ns: int
    link: str
    direction: str  # "a->b" or "b->a"
    packet_id: int
    size_bytes: int
    headers: list[dict]
    flow: str

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> TraceEntry:
        """Inverse of :meth:`to_json`; raises ``ValueError`` on bad input."""
        try:
            fields = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"not a JSON trace entry: {line[:80]!r}") from exc
        if not isinstance(fields, dict):
            raise ValueError(f"trace entry must be an object, got {type(fields).__name__}")
        missing = {f.name for f in dataclasses_fields(cls)} - fields.keys()
        if missing:
            raise ValueError(f"trace entry missing fields: {sorted(missing)}")
        extra = fields.keys() - {f.name for f in dataclasses_fields(cls)}
        if extra:
            raise ValueError(f"trace entry has unknown fields: {sorted(extra)}")
        return cls(**fields)


def _summarize_header(header) -> dict:
    summary = {"type": type(header).__name__}
    if is_dataclass(header):
        # Field introspection, not vars(): header dataclasses use
        # __slots__ and have no instance __dict__.
        for field in dataclasses_fields(header):
            name = field.name
            if name.startswith("_"):
                continue
            value = getattr(header, name)
            if isinstance(value, enum.Enum):
                # Enums (incl. IntEnum/IntFlag) keep their symbolic name
                # — note IntEnum.__str__ is the bare number on 3.11+.
                label = value.name
                summary[name] = (
                    f"{type(value).__name__}.{label}" if label else repr(value)
                )
            elif isinstance(value, (int, str, bool, float)) or value is None:
                summary[name] = value
            else:
                summary[name] = str(value)
    return summary


class TraceRecorder:
    """Records packets crossing a set of links."""

    def __init__(
        self,
        keep: Callable[[Packet], bool] | None = None,
        max_entries: int = 100_000,
    ) -> None:
        self.entries: list[TraceEntry] = []
        self.dropped_by_filter = 0
        self.truncated = 0
        self._keep = keep
        self._max = max_entries
        self._taps: list[tuple[Port, Callable]] = []

    def attach(self, link: Link) -> None:
        """Start recording both directions of ``link``."""
        a, b = link.ends
        self._tap(link, a, f"{b.node.name}->{a.node.name}")
        self._tap(link, b, f"{a.node.name}->{b.node.name}")

    def _tap(self, link: Link, port: Port, direction: str) -> None:
        original = port.deliver

        def tapped(packet: Packet, _orig=original, _dir=direction) -> None:
            self._record(link, packet, _dir, port.sim.now)
            _orig(packet)

        port.deliver = tapped  # type: ignore[method-assign]
        self._taps.append((port, original))

    def detach_all(self) -> None:
        """Remove every tap (restores the original delivery paths)."""
        for port, original in self._taps:
            port.deliver = original  # type: ignore[method-assign]
        self._taps.clear()

    def _record(self, link: Link, packet: Packet, direction: str, now: int) -> None:
        if self._keep is not None and not self._keep(packet):
            self.dropped_by_filter += 1
            return
        if len(self.entries) >= self._max:
            self.truncated += 1
            return
        self.entries.append(
            TraceEntry(
                time_ns=now,
                link=link.name,
                direction=direction,
                packet_id=packet.packet_id,
                size_bytes=packet.size_bytes,
                headers=[_summarize_header(h) for h in packet.headers],
                flow=str(packet.meta.get("flow", "")),
            )
        )

    # -- inspection -----------------------------------------------------------

    def matching(self, **header_fields) -> list[TraceEntry]:
        """Entries whose any-header fields match all given values,
        e.g. ``recorder.matching(type="MmtHeader", msg_type="MsgType.NAK")``."""
        found = []
        for entry in self.entries:
            for header in entry.headers:
                if all(str(header.get(k)) == str(v) for k, v in header_fields.items()):
                    found.append(entry)
                    break
        return found

    def export_jsonl(self, path: str) -> int:
        """Write entries as JSON lines; returns the count written."""
        with open(path, "w", encoding="utf-8") as handle:
            for entry in self.entries:
                handle.write(entry.to_json())
                handle.write("\n")
        return len(self.entries)

    def load_jsonl(self, path: str) -> int:
        """Append entries from a file written by :meth:`export_jsonl`.

        The round-trip inverse of export: ``matching()`` and friends
        work identically on loaded traces (header values were already
        flattened to JSON-safe strings/ints at record time). Returns
        the number of entries loaded; blank lines are skipped and
        malformed lines raise ``ValueError`` with the line number.
        """
        loaded = 0
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    self.entries.append(TraceEntry.from_json(line))
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from exc
                loaded += 1
        return loaded

    def __len__(self) -> int:
        return len(self.entries)
