"""Pluggable link loss models.

The base :class:`Link` loss knobs (uniform ``loss_rate``, bit-error
corruption) model memoryless noise. Real WAN paths fail in *bursts* —
optical glitches, microwave fades, congested middleboxes — which is why
chaos engineering distinguishes burst regimes from uniform noise. A
:class:`LossModel` attached to a link decides per packet whether the
channel eats it, *before* the uniform/bit-error draws, using the link's
own seeded RNG stream so every run stays replayable.

:class:`GilbertElliottLoss` is the classic two-state burst model: a
Markov chain alternates between a GOOD regime (low loss) and a BAD
regime (high loss); transition probabilities are evaluated per packet.
"""

from __future__ import annotations

import random

from .packet import Packet


class LossModel:
    """Decides, per packet, whether the channel drops it.

    Stateful models keep their regime on the instance; randomness must
    come from the ``rng`` argument (the owning link's seeded stream) so
    runs are deterministic and replayable.
    """

    def should_drop(self, packet: Packet, rng: random.Random) -> bool:
        raise NotImplementedError


class UniformLoss(LossModel):
    """Memoryless loss — the pluggable twin of ``Link.loss_rate``."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.dropped = 0

    def should_drop(self, packet: Packet, rng: random.Random) -> bool:
        if self.rate > 0 and rng.random() < self.rate:
            self.dropped += 1
            return True
        return False


class GilbertElliottLoss(LossModel):
    """Two-state Markov burst loss (Gilbert–Elliott).

    ``p_good_to_bad`` / ``p_bad_to_good`` are the per-packet regime
    transition probabilities; ``loss_good`` / ``loss_bad`` the loss
    probability inside each regime. The expected burst length is
    ``1 / p_bad_to_good`` packets.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.25,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
    ) -> None:
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.in_bad = False
        self.bursts = 0
        self.dropped = 0
        #: Scheduled mid-run parameter rewrites (:meth:`set_params`).
        self.drifts = 0

    def set_params(
        self,
        p_good_to_bad: float | None = None,
        p_bad_to_good: float | None = None,
        loss_good: float | None = None,
        loss_bad: float | None = None,
    ) -> None:
        """Drift the chain's parameters in place (scheduled GE drift).

        The regime state (``in_bad``) and the owning link's RNG stream
        are untouched: the per-packet draw sequence — regime transition
        draw, then a loss draw only when the regime's loss is nonzero —
        keeps its shape, so drift schedules replay deterministically
        from the seed.
        """
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if value is None:
                continue
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
            setattr(self, name, value)
        self.drifts += 1

    def should_drop(self, packet: Packet, rng: random.Random) -> bool:
        # Regime transition first, then the loss draw for the regime the
        # packet actually experiences.
        if self.in_bad:
            if rng.random() < self.p_bad_to_good:
                self.in_bad = False
        elif rng.random() < self.p_good_to_bad:
            self.in_bad = True
            self.bursts += 1
        loss = self.loss_bad if self.in_bad else self.loss_good
        if loss > 0 and rng.random() < loss:
            self.dropped += 1
            return True
        return False
