"""Deterministic discrete-event network simulator.

This package is the substrate the paper's pilot runs on in this
reproduction: an integer-nanosecond event engine, byte-accurate packets
and headers, links with rate/delay/MTU/loss, queue disciplines (incl.
the deadline-aware AQM of §5.3), L2/L3 switching, end hosts with a
protocol demux, and a topology builder with automatic routing.
"""

from .engine import Event, SimulationError, Simulator, Timer
from .headers import (
    EthernetHeader,
    EtherType,
    Header,
    IpProto,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)
from .host import Host
from .link import Link, Port
from .loss import GilbertElliottLoss, LossModel, UniformLoss
from .node import Node, SinkNode
from .packet import Packet
from .recorder import TraceEntry, TraceRecorder
from .queues import (
    DeadlineAwareQueue,
    DropTailQueue,
    DrrScheduler,
    PriorityQueue,
    QueueDiscipline,
    RedQueue,
)
from .switch import EthernetSwitch, IpRouter, RoutingTable
from .topology import (
    LeafSpine,
    LeafSpineSpec,
    Topology,
    TopologyError,
    build_leaf_spine,
)
from .trace import FlowRecord, FlowTracker
from . import units

__all__ = [
    "DeadlineAwareQueue",
    "DropTailQueue",
    "DrrScheduler",
    "EthernetHeader",
    "EtherType",
    "Event",
    "FlowRecord",
    "FlowTracker",
    "Header",
    "Host",
    "IpProto",
    "IpRouter",
    "Ipv4Header",
    "GilbertElliottLoss",
    "Link",
    "LossModel",
    "UniformLoss",
    "Node",
    "Packet",
    "Port",
    "PriorityQueue",
    "QueueDiscipline",
    "RedQueue",
    "RoutingTable",
    "SimulationError",
    "Simulator",
    "SinkNode",
    "TcpHeader",
    "Timer",
    "TraceEntry",
    "TraceRecorder",
    "LeafSpine",
    "LeafSpineSpec",
    "Topology",
    "TopologyError",
    "build_leaf_spine",
    "UdpHeader",
    "units",
]
