"""Simulated packets: a stack of headers plus a (usually virtual) payload.

A :class:`Packet` is the unit that flows through links, queues, switches,
and dataplane pipelines. Headers are ordered outermost-first. Payload
bytes are represented by ``payload_size`` and only materialized as real
bytes when a component needs them (e.g. codec tests).

``meta`` carries simulation-only bookkeeping (flow id, creation time,
per-hop timestamps); it contributes zero bytes on the wire.

Performance notes (see README "Performance"): packets are allocated and
sized millions of times per run, so

- instances use ``__slots__`` and the ``meta`` dict is allocated lazily
  on first access (control packets often never touch it);
- the header stack is a :class:`collections.deque` subclass so
  :meth:`Packet.push`/:meth:`Packet.pop` (encapsulation at the
  outermost end) are O(1) while iteration stays outermost-first and
  in-place mutation (``packet.headers.append/remove``) keeps working;
- :attr:`Packet.size_bytes` memoizes the header-size sum. The cache is
  invalidated by any structural change to the stack (every mutating
  deque method notifies the owning packet) and by size-affecting header
  field writes (tracked via each header's ``_mut`` counter, see
  :class:`~repro.netsim.headers.Header`).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Iterable, Iterator, TypeVar

from .headers import Header

_packet_ids = itertools.count()

H = TypeVar("H", bound=Header)


class _HeaderStack(deque):
    """Outermost-first header deque that invalidates its packet's
    memoized size on every structural mutation."""

    __slots__ = ("_packet",)

    def __init__(self, packet: "Packet", headers: Iterable[Header] = ()) -> None:
        super().__init__(headers)
        self._packet = packet

    def _dirty(self) -> None:
        self._packet._hsize = -1

    def append(self, header: Header) -> None:
        super().append(header)
        self._packet._hsize = -1

    def appendleft(self, header: Header) -> None:
        super().appendleft(header)
        self._packet._hsize = -1

    def pop(self) -> Header:  # type: ignore[override]
        value = super().pop()
        self._packet._hsize = -1
        return value

    def popleft(self) -> Header:
        value = super().popleft()
        self._packet._hsize = -1
        return value

    def remove(self, header: Header) -> None:
        super().remove(header)
        self._packet._hsize = -1

    def insert(self, index: int, header: Header) -> None:
        super().insert(index, header)
        self._packet._hsize = -1

    def extend(self, headers: Iterable[Header]) -> None:
        super().extend(headers)
        self._packet._hsize = -1

    def extendleft(self, headers: Iterable[Header]) -> None:
        super().extendleft(headers)
        self._packet._hsize = -1

    def clear(self) -> None:
        super().clear()
        self._packet._hsize = -1

    def __setitem__(self, index, header) -> None:
        super().__setitem__(index, header)
        self._packet._hsize = -1

    def __delitem__(self, index) -> None:
        super().__delitem__(index)
        self._packet._hsize = -1

    def __iadd__(self, headers):
        result = super().__iadd__(headers)
        self._packet._hsize = -1
        return result


class Packet:
    """A packet with an outermost-first header stack and a counted payload."""

    __slots__ = ("_headers", "payload_size", "payload", "_meta", "packet_id",
                 "_hsize", "_htoken")

    def __init__(
        self,
        headers: Iterable[Header] | None = None,
        payload_size: int = 0,
        payload: bytes | None = None,
        meta: dict[str, Any] | None = None,
        packet_id: int | None = None,
    ) -> None:
        self._headers = _HeaderStack(self, headers or ())
        if payload is not None:
            payload_size = len(payload)
        if payload_size < 0:
            raise ValueError(f"payload_size must be >= 0, got {payload_size}")
        self.payload_size = payload_size
        self.payload = payload
        self._meta = meta
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        self._hsize = -1  # memoized header-size sum; -1 = stale
        self._htoken = -1

    @property
    def headers(self) -> _HeaderStack:
        """The header stack, outermost-first (deque: O(1) at both ends)."""
        return self._headers

    @property
    def meta(self) -> dict[str, Any]:
        """Simulation-only bookkeeping, allocated on first access."""
        meta = self._meta
        if meta is None:
            meta = self._meta = {}
        return meta

    @property
    def size_bytes(self) -> int:
        """Total on-wire size: all headers plus payload (memoized)."""
        token = 0
        for header in self._headers:
            token += getattr(header, "_mut", 0)
        if self._hsize < 0 or token != self._htoken:
            total = 0
            for header in self._headers:
                total += header.size_bytes
            self._hsize = total
            self._htoken = token
        return self._hsize + self.payload_size

    def find(self, header_type: type[H]) -> H | None:
        """Return the first (outermost) header of the given type, or None."""
        for header in self._headers:
            if isinstance(header, header_type):
                return header
        return None

    def require(self, header_type: type[H]) -> H:
        """Like :meth:`find` but raises ``KeyError`` when absent."""
        header = self.find(header_type)
        if header is None:
            raise KeyError(f"packet {self.packet_id} has no {header_type.__name__}")
        return header

    def has(self, header_type: type[Header]) -> bool:
        """True when a header of the given type is present."""
        return self.find(header_type) is not None

    def push(self, header: Header) -> None:
        """Add ``header`` as the new outermost header (encapsulation, O(1))."""
        self._headers.appendleft(header)

    def pop(self) -> Header:
        """Remove and return the outermost header (decapsulation, O(1))."""
        if not self._headers:
            raise IndexError(f"packet {self.packet_id} has no headers to pop")
        return self._headers.popleft()

    def outermost(self) -> Header | None:
        """The outermost header, or None for a bare payload."""
        return self._headers[0] if self._headers else None

    def copy(self) -> "Packet":
        """Deep-enough copy for in-network duplication.

        Headers are copied field-wise (so the duplicate can be rewritten
        independently); the payload reference is shared (it is immutable
        bytes); ``meta`` is shallow-copied; the copy gets a fresh id.
        """
        return Packet(
            headers=[h.copy() for h in self._headers],
            payload_size=self.payload_size,
            payload=self.payload,
            meta=dict(self._meta) if self._meta is not None else None,
        )

    def __iter__(self) -> Iterator[Header]:
        return iter(self._headers)

    def __repr__(self) -> str:
        names = "/".join(h.name for h in self._headers) or "raw"
        return f"Packet#{self.packet_id}[{names} +{self.payload_size}B]"
