"""Simulated packets: a stack of headers plus a (usually virtual) payload.

A :class:`Packet` is the unit that flows through links, queues, switches,
and dataplane pipelines. Headers are ordered outermost-first. Payload
bytes are represented by ``payload_size`` and only materialized as real
bytes when a component needs them (e.g. codec tests).

``meta`` carries simulation-only bookkeeping (flow id, creation time,
per-hop timestamps); it contributes zero bytes on the wire.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, TypeVar

from .headers import Header

_packet_ids = itertools.count()

H = TypeVar("H", bound=Header)


@dataclass
class Packet:
    """A packet with an outermost-first header stack and a counted payload."""

    headers: list[Header] = field(default_factory=list)
    payload_size: int = 0
    payload: bytes | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.payload is not None:
            self.payload_size = len(self.payload)
        if self.payload_size < 0:
            raise ValueError(f"payload_size must be >= 0, got {self.payload_size}")

    @property
    def size_bytes(self) -> int:
        """Total on-wire size: all headers plus payload."""
        return sum(h.size_bytes for h in self.headers) + self.payload_size

    def find(self, header_type: type[H]) -> H | None:
        """Return the first (outermost) header of the given type, or None."""
        for header in self.headers:
            if isinstance(header, header_type):
                return header
        return None

    def require(self, header_type: type[H]) -> H:
        """Like :meth:`find` but raises ``KeyError`` when absent."""
        header = self.find(header_type)
        if header is None:
            raise KeyError(f"packet {self.packet_id} has no {header_type.__name__}")
        return header

    def has(self, header_type: type[Header]) -> bool:
        """True when a header of the given type is present."""
        return self.find(header_type) is not None

    def push(self, header: Header) -> None:
        """Add ``header`` as the new outermost header (encapsulation)."""
        self.headers.insert(0, header)

    def pop(self) -> Header:
        """Remove and return the outermost header (decapsulation)."""
        if not self.headers:
            raise IndexError(f"packet {self.packet_id} has no headers to pop")
        return self.headers.pop(0)

    def outermost(self) -> Header | None:
        """The outermost header, or None for a bare payload."""
        return self.headers[0] if self.headers else None

    def copy(self) -> "Packet":
        """Deep-enough copy for in-network duplication.

        Headers are copied field-wise (so the duplicate can be rewritten
        independently); the payload reference is shared (it is immutable
        bytes); ``meta`` is shallow-copied; the copy gets a fresh id.
        """
        return Packet(
            headers=[h.copy() for h in self.headers],
            payload_size=self.payload_size,
            payload=self.payload,
            meta=dict(self.meta),
        )

    def __iter__(self) -> Iterator[Header]:
        return iter(self.headers)

    def __repr__(self) -> str:
        names = "/".join(h.name for h in self.headers) or "raw"
        return f"Packet#{self.packet_id}[{names} +{self.payload_size}B]"
