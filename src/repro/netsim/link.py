"""Ports and links.

A :class:`Port` is a node's attachment point: it owns an egress queue
and a transmitter that serializes one packet at a time at the link rate.
A :class:`Link` joins two ports with a full-duplex channel described by
rate, propagation delay, MTU, and a loss model (random loss probability
and/or bit-error rate). Oversized frames are dropped — DAQ networks set
MTUs so that fragmentation never happens (paper §2.1), so the simulator
treats fragmentation as a configuration error, not a feature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .engine import Simulator
from .loss import LossModel
from .packet import Packet
from .queues import DropTailQueue, QueueDiscipline
from .units import transmission_time_ns

if TYPE_CHECKING:
    from .node import Node

#: Default egress queue capacity (bytes); ~1 MB is a typical shallow
#: switch-port buffer at 100 GbE.
DEFAULT_QUEUE_BYTES = 1_000_000

#: Default egress queue for *hosts*: end systems buffer outgoing data
#: in RAM (socket buffers + qdisc) and backpressure the stack rather
#: than drop their own traffic, so host ports get deep queues.
HOST_QUEUE_BYTES = 256_000_000

#: Ethernet framing overhead not carried in Packet headers: preamble (8B)
#: and inter-packet gap (12B) occupy wire time but not buffer space.
WIRE_OVERHEAD_BYTES = 20


@dataclass
class PortStats:
    """Per-port counters."""

    tx_packets: int = 0
    tx_bytes: int = 0
    rx_packets: int = 0
    rx_bytes: int = 0
    drops_queue: int = 0
    drops_mtu: int = 0
    drops_no_link: int = 0


class Port:
    """A node attachment point with an egress queue and transmitter."""

    def __init__(
        self,
        node: "Node",
        name: str,
        queue: QueueDiscipline | None = None,
    ) -> None:
        self.node = node
        self.name = name
        # Note: `queue or ...` would discard an *empty* queue (len == 0
        # makes it falsy), so test identity explicitly.
        self.queue = queue if queue is not None else DropTailQueue(DEFAULT_QUEUE_BYTES)
        self.link: Link | None = None
        self.stats = PortStats()
        self._busy = False
        # Invoked with each packet just before it is queued for egress;
        # programmable NICs hook this to do header processing on egress.
        self.egress_hooks: list[Callable[[Packet], Packet | None]] = []
        #: Causal tracer (repro.trace.Tracer) or None; records queue
        #: residency and egress drops when installed.
        self.tracer = None

    @property
    def sim(self) -> Simulator:
        return self.node.sim

    @property
    def peer(self) -> "Port | None":
        """The port at the other end of the attached link, if any."""
        if self.link is None:
            return None
        return self.link.other_end(self)

    def send(self, packet: Packet) -> bool:
        """Queue ``packet`` for egress. Returns False if dropped."""
        if self.link is None:
            self.stats.drops_no_link += 1
            return False
        for hook in self.egress_hooks:
            result = hook(packet)
            if result is None:
                return False
            packet = result
        if packet.size_bytes > self.link.max_frame_bytes:
            self.stats.drops_mtu += 1
            if self.tracer is not None:
                self.tracer.packet_event(
                    "port.drop", self.node.name, packet,
                    port=self.name, reason="mtu",
                )
            return False
        if not self.queue.enqueue(packet):
            self.stats.drops_queue += 1
            if self.tracer is not None:
                self.tracer.packet_event(
                    "port.drop", self.node.name, packet,
                    port=self.name, reason="queue",
                )
            return False
        if self.tracer is not None:
            self.tracer.note_enqueue(packet)
        if not self._busy:
            self._transmit_next()
        return True

    def _transmit_next(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        if self.tracer is not None:
            self.tracer.queue_wait(packet, self.node.name, self.name)
        self._busy = True
        assert self.link is not None
        tx_time = transmission_time_ns(
            packet.size_bytes + WIRE_OVERHEAD_BYTES, self.link.rate_bps
        )
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.size_bytes
        self.sim.schedule(tx_time, self._tx_done, packet)

    def _tx_done(self, packet: Packet) -> None:
        assert self.link is not None
        self.link.propagate(packet, self)
        self._transmit_next()

    def deliver(self, packet: Packet) -> None:
        """Ingress entry point, called by the link after propagation."""
        self.stats.rx_packets += 1
        self.stats.rx_bytes += packet.size_bytes
        self.node.receive(packet, self)

    def __repr__(self) -> str:
        return f"Port({self.node.name}.{self.name})"


@dataclass
class LinkStats:
    """Per-link counters (both directions combined)."""

    delivered: int = 0
    lost_random: int = 0
    lost_corruption: int = 0
    #: Packets that arrived while the link was administratively/physically
    #: down — an outage eats them silently on the wire, but the operator
    #: must be able to see how much was lost to the outage.
    lost_down: int = 0
    #: Packets eaten by the attached :class:`~repro.netsim.loss.LossModel`
    #: (burst loss, targeted control-packet loss, ...).
    lost_model: int = 0


class Link:
    """Full-duplex point-to-point link between two ports.

    Loss model: each packet is independently lost with probability
    ``loss_rate``, and additionally corrupted with probability
    ``1 - (1 - ber) ** bits`` when a bit-error rate is set. Corrupted
    and lost packets simply vanish (the FCS would reject them).
    """

    def __init__(
        self,
        sim: Simulator,
        a: Port,
        b: Port,
        rate_bps: int,
        propagation_delay_ns: int,
        mtu_bytes: int = 9000,
        loss_rate: float = 0.0,
        bit_error_rate: float = 0.0,
        name: str = "",
        loss_model: LossModel | None = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if propagation_delay_ns < 0:
            raise ValueError(f"delay must be >= 0, got {propagation_delay_ns}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if not 0.0 <= bit_error_rate < 1.0:
            raise ValueError(f"bit_error_rate must be in [0, 1), got {bit_error_rate}")
        self.sim = sim
        self.ends = (a, b)
        self.rate_bps = rate_bps
        self.propagation_delay_ns = propagation_delay_ns
        self.mtu_bytes = mtu_bytes
        self.loss_rate = loss_rate
        self.bit_error_rate = bit_error_rate
        #: Pluggable loss model consulted before the uniform/BER draws;
        #: swappable at runtime (fault injection installs burst models
        #: mid-run). ``None`` keeps the draw sequence of plain links
        #: untouched, so existing seeded runs replay identically.
        self.loss_model = loss_model
        self.name = name or f"{a.node.name}<->{b.node.name}"
        self.up = True
        self.stats = LinkStats()
        #: Causal tracer (repro.trace.Tracer) or None; records wire loss.
        self.tracer = None
        self._rng = sim.rng(f"link:{self.name}")
        a.link = self
        b.link = self

    @property
    def max_frame_bytes(self) -> int:
        """Largest frame admitted: MTU plus L2 header+FCS (18 bytes)."""
        return self.mtu_bytes + 18

    def other_end(self, port: Port) -> Port:
        if port is self.ends[0]:
            return self.ends[1]
        if port is self.ends[1]:
            return self.ends[0]
        raise ValueError(f"{port!r} is not attached to {self.name}")

    def propagate(self, packet: Packet, from_port: Port) -> None:
        """Carry a fully-serialized packet to the far end (with loss)."""
        if not self.up:
            self.stats.lost_down += 1
            if self.tracer is not None:
                self.tracer.packet_event("link.drop", self.name, packet, reason="down")
            return
        if self.loss_model is not None and self.loss_model.should_drop(
            packet, self._rng
        ):
            self.stats.lost_model += 1
            if self.tracer is not None:
                self.tracer.packet_event("link.drop", self.name, packet, reason="model")
            return
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self.stats.lost_random += 1
            if self.tracer is not None:
                self.tracer.packet_event("link.drop", self.name, packet, reason="random")
            return
        if self.bit_error_rate > 0:
            bits = packet.size_bytes * 8
            p_corrupt = 1.0 - (1.0 - self.bit_error_rate) ** bits
            if self._rng.random() < p_corrupt:
                self.stats.lost_corruption += 1
                if self.tracer is not None:
                    self.tracer.packet_event(
                        "link.drop", self.name, packet, reason="corruption"
                    )
                return
        destination = self.other_end(from_port)
        self.stats.delivered += 1
        self.sim.schedule(self.propagation_delay_ns, destination.deliver, packet)

    def __repr__(self) -> str:
        return f"Link({self.name}, {self.rate_bps} bps, {self.propagation_delay_ns} ns)"
