"""Ports and links.

A :class:`Port` is a node's attachment point: it owns an egress queue
and a transmitter that serializes one packet at a time at the link rate.
A :class:`Link` joins two ports with a full-duplex channel described by
rate, propagation delay, MTU, and a loss model (random loss probability
and/or bit-error rate). Oversized frames are dropped — DAQ networks set
MTUs so that fragmentation never happens (paper §2.1), so the simulator
treats fragmentation as a configuration error, not a feature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .engine import Simulator
from .loss import LossModel
from .packet import Packet
from .queues import DropTailQueue, QueueDiscipline
from .units import transmission_time_ns

if TYPE_CHECKING:
    from .node import Node

#: Default egress queue capacity (bytes); ~1 MB is a typical shallow
#: switch-port buffer at 100 GbE.
DEFAULT_QUEUE_BYTES = 1_000_000

#: Default egress queue for *hosts*: end systems buffer outgoing data
#: in RAM (socket buffers + qdisc) and backpressure the stack rather
#: than drop their own traffic, so host ports get deep queues.
HOST_QUEUE_BYTES = 256_000_000

#: Ethernet framing overhead not carried in Packet headers: preamble (8B)
#: and inter-packet gap (12B) occupy wire time but not buffer space.
WIRE_OVERHEAD_BYTES = 20


@dataclass
class PortStats:
    """Per-port counters."""

    tx_packets: int = 0
    tx_bytes: int = 0
    rx_packets: int = 0
    rx_bytes: int = 0
    drops_queue: int = 0
    drops_mtu: int = 0
    drops_no_link: int = 0


class Port:
    """A node attachment point with an egress queue and transmitter."""

    def __init__(
        self,
        node: "Node",
        name: str,
        queue: QueueDiscipline | None = None,
    ) -> None:
        self.node = node
        self.name = name
        # Note: `queue or ...` would discard an *empty* queue (len == 0
        # makes it falsy), so test identity explicitly.
        self.queue = queue if queue is not None else DropTailQueue(DEFAULT_QUEUE_BYTES)
        self.link: Link | None = None
        self.stats = PortStats()
        self._busy = False
        # Invoked with each packet just before it is queued for egress;
        # programmable NICs hook this to do header processing on egress.
        self.egress_hooks: list[Callable[[Packet], Packet | None]] = []
        #: Causal tracer (repro.trace.Tracer) or None; records queue
        #: residency and egress drops when installed.
        self.tracer = None

    @property
    def sim(self) -> Simulator:
        return self.node.sim

    @property
    def peer(self) -> "Port | None":
        """The port at the other end of the attached link, if any."""
        if self.link is None:
            return None
        return self.link.other_end(self)

    def send(self, packet: Packet) -> bool:
        """Queue ``packet`` for egress. Returns False if dropped."""
        if self.link is None:
            self.stats.drops_no_link += 1
            return False
        for hook in self.egress_hooks:
            result = hook(packet)
            if result is None:
                return False
            packet = result
        if packet.size_bytes > self.link.max_frame_bytes:
            self.stats.drops_mtu += 1
            if self.tracer is not None:
                self.tracer.packet_event(
                    "port.drop", self.node.name, packet,
                    port=self.name, reason="mtu",
                )
            return False
        if not self.queue.enqueue(packet):
            self.stats.drops_queue += 1
            if self.tracer is not None:
                self.tracer.packet_event(
                    "port.drop", self.node.name, packet,
                    port=self.name, reason="queue",
                )
            return False
        if self.tracer is not None:
            self.tracer.note_enqueue(packet)
        if not self._busy:
            self._transmit_next()
        return True

    def send_train(self, packets: list[Packet]) -> int:
        """Queue a back-to-back *train* for egress; returns the number
        of packets accepted.

        A train is one burst: when the transmitter is idle the whole
        accepted burst is serialized with a **single** scheduled event
        (its duration the sum of the per-packet transmission times, so
        byte timing matches serial sends) and propagated to the far end
        with a single delivery event — O(1) engine events per train
        instead of O(n). Admission is unchanged from :meth:`send`:
        egress hooks, the MTU check, and drop-tail queueing run per
        packet, in order, so drop behavior is identical to sending the
        packets one by one.

        With a causal tracer installed the train falls back to
        per-packet :meth:`send` — traced runs want per-packet queue
        residency spans, and coalescing would erase them.
        """
        if self.link is None:
            self.stats.drops_no_link += len(packets)
            return 0
        if self.tracer is not None:
            accepted = 0
            for packet in packets:
                if self.send(packet):
                    accepted += 1
            return accepted
        accepted = 0
        max_frame = self.link.max_frame_bytes
        enqueue = self.queue.enqueue
        burst: list[Packet] = []
        for packet in packets:
            for hook in self.egress_hooks:
                result = hook(packet)
                if result is None:
                    packet = None
                    break
                packet = result
            if packet is None:
                continue
            if packet.size_bytes > max_frame:
                self.stats.drops_mtu += 1
                continue
            if not enqueue(packet):
                self.stats.drops_queue += 1
                continue
            accepted += 1
            if not self._busy:
                # A per-packet send() on an idle port starts serializing
                # the first packet immediately, freeing its queue slot
                # before the rest of the train is admitted. Mirror that
                # here so drop-tail admission matches the serial path
                # exactly.
                self._busy = True
                head = self.queue.dequeue()
                if head is not None:
                    burst.append(head)
        if burst:
            self._transmit_train(burst)
        return accepted

    def _transmit_train(self, burst: list[Packet]) -> None:
        """Drain the queue behind the burst head and serialize the whole
        burst with one scheduled event whose duration is the serial sum."""
        link = self.link
        assert link is not None
        while True:
            packet = self.queue.dequeue()
            if packet is None:
                break
            burst.append(packet)
        total_tx = 0
        stats = self.stats
        for packet in burst:
            total_tx += transmission_time_ns(
                packet.size_bytes + WIRE_OVERHEAD_BYTES, link.rate_bps
            )
            stats.tx_packets += 1
            stats.tx_bytes += packet.size_bytes
        self.sim.schedule(total_tx, self._train_tx_done, burst)

    def _train_tx_done(self, burst: list[Packet]) -> None:
        assert self.link is not None
        self.link.propagate_train(burst, self)
        self._transmit_next()

    def deliver_train(self, packets: list[Packet]) -> None:
        """Train ingress: one event delivers the whole surviving burst.

        Nodes that understand trains (``receive_train``) get the burst
        whole — the per-element fast-forward hook; every other node
        receives the packets one by one, in order.
        """
        stats = self.stats
        stats.rx_packets += len(packets)
        for packet in packets:
            stats.rx_bytes += packet.size_bytes
        receive_train = getattr(self.node, "receive_train", None)
        if receive_train is not None:
            receive_train(packets, self)
            return
        receive = self.node.receive
        for packet in packets:
            receive(packet, self)

    def _transmit_next(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        if self.tracer is not None:
            self.tracer.queue_wait(packet, self.node.name, self.name)
        self._busy = True
        assert self.link is not None
        tx_time = transmission_time_ns(
            packet.size_bytes + WIRE_OVERHEAD_BYTES, self.link.rate_bps
        )
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.size_bytes
        self.sim.schedule(tx_time, self._tx_done, packet)

    def _tx_done(self, packet: Packet) -> None:
        assert self.link is not None
        self.link.propagate(packet, self)
        self._transmit_next()

    def deliver(self, packet: Packet) -> None:
        """Ingress entry point, called by the link after propagation."""
        self.stats.rx_packets += 1
        self.stats.rx_bytes += packet.size_bytes
        self.node.receive(packet, self)

    def __repr__(self) -> str:
        return f"Port({self.node.name}.{self.name})"


@dataclass
class LinkStats:
    """Per-link counters (both directions combined)."""

    delivered: int = 0
    lost_random: int = 0
    lost_corruption: int = 0
    #: Packets that arrived while the link was administratively/physically
    #: down — an outage eats them silently on the wire, but the operator
    #: must be able to see how much was lost to the outage.
    lost_down: int = 0
    #: Packets eaten by the attached :class:`~repro.netsim.loss.LossModel`
    #: (burst loss, targeted control-packet loss, ...).
    lost_model: int = 0
    #: Mid-run :meth:`Link.reconfigure` steps that changed the rate /
    #: the propagation delay — trajectory drivers bump these so traces
    #: and INT can attribute latency shifts to link dynamics.
    rate_changes: int = 0
    delay_changes: int = 0
    #: The rate currently in force (mirrors ``Link.rate_bps`` so scrapes
    #: of a drifting link report where the trajectory has taken it).
    current_rate_bps: int = 0


class Link:
    """Full-duplex point-to-point link between two ports.

    Loss model: each packet is independently lost with probability
    ``loss_rate``, and additionally corrupted with probability
    ``1 - (1 - ber) ** bits`` when a bit-error rate is set. Corrupted
    and lost packets simply vanish (the FCS would reject them).
    """

    def __init__(
        self,
        sim: Simulator,
        a: Port,
        b: Port,
        rate_bps: int,
        propagation_delay_ns: int,
        mtu_bytes: int = 9000,
        loss_rate: float = 0.0,
        bit_error_rate: float = 0.0,
        name: str = "",
        loss_model: LossModel | None = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if propagation_delay_ns < 0:
            raise ValueError(f"delay must be >= 0, got {propagation_delay_ns}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if not 0.0 <= bit_error_rate < 1.0:
            raise ValueError(f"bit_error_rate must be in [0, 1), got {bit_error_rate}")
        self.sim = sim
        self.ends = (a, b)
        self.rate_bps = rate_bps
        self.propagation_delay_ns = propagation_delay_ns
        self.mtu_bytes = mtu_bytes
        self.loss_rate = loss_rate
        self.bit_error_rate = bit_error_rate
        #: Pluggable loss model consulted before the uniform/BER draws;
        #: swappable at runtime (fault injection installs burst models
        #: mid-run). ``None`` keeps the draw sequence of plain links
        #: untouched, so existing seeded runs replay identically.
        self.loss_model = loss_model
        self.name = name or f"{a.node.name}<->{b.node.name}"
        self.up = True
        self.stats = LinkStats()
        self.stats.current_rate_bps = rate_bps
        #: Causal tracer (repro.trace.Tracer) or None; records wire loss.
        self.tracer = None
        self._rng = sim.rng(f"link:{self.name}")
        a.link = self
        b.link = self

    @property
    def max_frame_bytes(self) -> int:
        """Largest frame admitted: MTU plus L2 header+FCS (18 bytes)."""
        return self.mtu_bytes + 18

    def reconfigure(
        self,
        rate_bps: int | None = None,
        propagation_delay_ns: int | None = None,
        loss_rate: float | None = None,
    ) -> bool:
        """Change the link's characteristics mid-run (trajectory step).

        Validation matches construction. Semantics are physical: a rate
        change takes effect at the *next* serialization (a packet already
        on the transmitter keeps its old tx time), and a delay change
        applies to packets entering the wire from now on (in-flight
        packets keep the delay they departed with). Both are functions of
        the engine clock only, so seeded runs replay byte-identically.

        Returns True when anything actually changed; changes bump the
        ``rate_changes``/``delay_changes`` stats and emit a
        ``link.reconfig`` trace span so latency shifts in a trace can be
        attributed to the trajectory step that caused them.
        """
        if rate_bps is not None and rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if propagation_delay_ns is not None and propagation_delay_ns < 0:
            raise ValueError(f"delay must be >= 0, got {propagation_delay_ns}")
        if loss_rate is not None and not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        changed = False
        if rate_bps is not None and int(rate_bps) != self.rate_bps:
            self.rate_bps = int(rate_bps)
            self.stats.rate_changes += 1
            changed = True
        if (
            propagation_delay_ns is not None
            and int(propagation_delay_ns) != self.propagation_delay_ns
        ):
            self.propagation_delay_ns = int(propagation_delay_ns)
            self.stats.delay_changes += 1
            changed = True
        if loss_rate is not None and loss_rate != self.loss_rate:
            self.loss_rate = loss_rate
            changed = True
        self.stats.current_rate_bps = self.rate_bps
        if changed and self.tracer is not None:
            self.tracer.emit(
                "link.reconfig", self.name,
                rate_bps=self.rate_bps,
                delay_ns=self.propagation_delay_ns,
            )
        return changed

    def other_end(self, port: Port) -> Port:
        if port is self.ends[0]:
            return self.ends[1]
        if port is self.ends[1]:
            return self.ends[0]
        raise ValueError(f"{port!r} is not attached to {self.name}")

    def propagate(self, packet: Packet, from_port: Port) -> None:
        """Carry a fully-serialized packet to the far end (with loss)."""
        if not self.up:
            self.stats.lost_down += 1
            if self.tracer is not None:
                self.tracer.packet_event("link.drop", self.name, packet, reason="down")
            return
        if self.loss_model is not None and self.loss_model.should_drop(
            packet, self._rng
        ):
            self.stats.lost_model += 1
            if self.tracer is not None:
                self.tracer.packet_event("link.drop", self.name, packet, reason="model")
            return
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self.stats.lost_random += 1
            if self.tracer is not None:
                self.tracer.packet_event("link.drop", self.name, packet, reason="random")
            return
        if self.bit_error_rate > 0:
            bits = packet.size_bytes * 8
            p_corrupt = 1.0 - (1.0 - self.bit_error_rate) ** bits
            if self._rng.random() < p_corrupt:
                self.stats.lost_corruption += 1
                if self.tracer is not None:
                    self.tracer.packet_event(
                        "link.drop", self.name, packet, reason="corruption"
                    )
                return
        destination = self.other_end(from_port)
        self.stats.delivered += 1
        self.sim.schedule(self.propagation_delay_ns, destination.deliver, packet)

    def propagate_train(self, packets: list[Packet], from_port: Port) -> None:
        """Carry a coalesced burst to the far end with one delivery event.

        Loss draws are made per packet, in train order, against the same
        RNG stream and in the same model → uniform → BER sequence as
        :meth:`propagate`, so a seeded run loses exactly the packets it
        would lose if the train were propagated one packet at a time.
        Survivors arrive together after ``propagation_delay_ns`` — the
        train tail's arrival time — via one scheduled event. With a
        tracer installed the burst falls back to per-packet
        :meth:`propagate` to keep per-packet drop events.
        """
        if self.tracer is not None:
            for packet in packets:
                self.propagate(packet, from_port)
            return
        if not self.up:
            self.stats.lost_down += len(packets)
            return
        stats = self.stats
        loss_model = self.loss_model
        loss_rate = self.loss_rate
        ber = self.bit_error_rate
        rng = self._rng
        if loss_model is None and loss_rate == 0 and ber == 0:
            survivors = packets
            stats.delivered += len(packets)
        else:
            survivors = []
            for packet in packets:
                if loss_model is not None and loss_model.should_drop(packet, rng):
                    stats.lost_model += 1
                    continue
                if loss_rate > 0 and rng.random() < loss_rate:
                    stats.lost_random += 1
                    continue
                if ber > 0:
                    bits = packet.size_bytes * 8
                    p_corrupt = 1.0 - (1.0 - ber) ** bits
                    if rng.random() < p_corrupt:
                        stats.lost_corruption += 1
                        continue
                survivors.append(packet)
                stats.delivered += 1
        if survivors:
            destination = self.other_end(from_port)
            self.sim.schedule(
                self.propagation_delay_ns, destination.deliver_train, survivors
            )

    def __repr__(self) -> str:
        return f"Link({self.name}, {self.rate_bps} bps, {self.propagation_delay_ns} ns)"
