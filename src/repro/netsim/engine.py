"""Discrete-event simulation engine.

A :class:`Simulator` owns a virtual clock (integer nanoseconds) and a
priority queue of scheduled callbacks. Components schedule work with
:meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` and the
returned :class:`Event` handle can be cancelled (timers).

Determinism: ties at the same timestamp fire in scheduling order, and
all randomness in the library flows through explicit ``random.Random``
instances (see :meth:`Simulator.rng`) seeded from the simulator seed,
so a run is fully reproducible from ``Simulator(seed=...)``.

Performance notes (see README "Performance"): the heap holds plain
``(time, seq, event)`` tuples — heap sift compares ints at C speed and
never falls back to rich comparison of event objects. :class:`Event`
uses ``__slots__`` and is only the cancellation handle. Cancelled
events stay in the heap (removing from a heap is O(n)) but are counted:
``pending_events`` is O(1) off a live counter, and when cancelled
entries outnumber live ones the queue is compacted in one O(n) pass
(``heapify``), so mass timer restarts (every retransmission window)
cannot grow the heap without bound. ``schedule`` takes a fast path for
int delays — the common case; in-tree callers schedule integer
nanoseconds — and only rounds floats.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


#: Compaction is skipped below this queue size; scanning a tiny list
#: costs less than tracking would save.
_COMPACT_MIN = 64


class Event:
    """A scheduled callback; returned by ``schedule`` so it can be cancelled."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim: "Simulator | None" = None

    def cancel(self) -> None:
        """Prevent the event from firing; cancelling twice is harmless."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancelled()


class Simulator:
    """Deterministic discrete-event simulator with an integer-ns clock."""

    def __init__(self, seed: int = 0) -> None:
        #: Heap of (time, seq, Event); plain tuples keep heap sift
        #: comparisons on ints (no dataclass rich-compare in the loop).
        self._queue: list[tuple[int, int, Event]] = []
        self._now = 0
        self._seq = 0
        self._running = False
        self._seed = seed
        self._rngs: dict[str, random.Random] = {}
        self.events_processed = 0
        #: Not-yet-cancelled events still queued (kept exact so
        #: pending_events() is O(1) instead of scanning the heap).
        self._live = 0
        #: Causal tracer (repro.trace.Tracer) or None. Duck-typed so the
        #: engine stays import-free of the trace package; hook sites are
        #: a single ``is not None`` test when tracing is off.
        self.tracer = None

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def seed(self) -> int:
        """Seed this simulator (and all derived RNG streams) was built from."""
        return self._seed

    def rng(self, name: str) -> random.Random:
        """Return a named, stable RNG stream derived from the simulator seed.

        Each distinct ``name`` gets an independent stream, so adding a new
        consumer of randomness does not perturb existing ones.
        """
        if name not in self._rngs:
            self._rngs[name] = random.Random(f"{self._seed}:{name}")
        return self._rngs[name]

    def schedule(self, delay_ns: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now.

        Delays are rounded to the integer-nanosecond clock (int delays —
        the common case — skip the rounding); fractional nanoseconds
        cannot be represented.
        """
        if type(delay_ns) is not int:
            delay_ns = round(delay_ns)
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay_ns})")
        return self.schedule_at(self._now + delay_ns, callback, *args)

    def schedule_at(self, time_ns: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time_ns``."""
        if type(time_ns) is not int:
            time_ns = round(time_ns)
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns} before now ({self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time_ns, seq, callback, args)
        event._sim = self
        heapq.heappush(self._queue, (time_ns, seq, event))
        self._live += 1
        return event

    def _note_cancelled(self) -> None:
        """Bookkeeping for Event.cancel(); compacts when dead entries
        outnumber live ones (lazy deletion would otherwise leak)."""
        self._live -= 1
        queue = self._queue
        if len(queue) >= _COMPACT_MIN and self._live < len(queue) // 2:
            self._queue = [entry for entry in queue if not entry[2].cancelled]
            heapq.heapify(self._queue)
            if self.tracer is not None:
                self.tracer.emit(
                    "engine.compact", "engine",
                    before=len(queue), after=len(self._queue),
                )

    def peek_time(self) -> int | None:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
        return queue[0][0] if queue else None

    def step(self) -> bool:
        """Run a single event. Returns False when no events remain."""
        queue = self._queue
        while queue:
            time_ns, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                continue
            event._sim = None
            self._live -= 1
            self._now = time_ns
            event.callback(*event.args)
            self.events_processed += 1
            return True
        return False

    def run(self, until_ns: int | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains, ``until_ns``, or ``max_events``.

        Returns the number of events processed by this call. When
        ``until_ns`` is given the clock is advanced to exactly ``until_ns``
        on return (even if the queue drained earlier), so back-to-back
        ``run(until_ns=...)`` calls observe a monotonic clock.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        processed = 0
        heappop = heapq.heappop
        try:
            while True:
                # Re-read each iteration: a callback cancelling events
                # can trigger compaction, which replaces the list.
                queue = self._queue
                if not queue:
                    break
                if max_events is not None and processed >= max_events:
                    break
                head = queue[0]
                event = head[2]
                if event.cancelled:
                    heappop(queue)
                    continue
                if until_ns is not None and head[0] > until_ns:
                    break
                heappop(queue)
                event._sim = None
                self._live -= 1
                self._now = head[0]
                event.callback(*event.args)
                self.events_processed += 1
                processed += 1
            if until_ns is not None and self._now < until_ns:
                self._now = until_ns
        finally:
            self._running = False
        return processed

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Wraps :class:`Event` with start/stop/restart semantics, which is the
    shape retransmission and deadline timers need.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Event | None = None

    @property
    def running(self) -> bool:
        """True while the timer is armed and has not fired."""
        return self._event is not None and not self._event.cancelled

    @property
    def expires_at(self) -> int | None:
        """Absolute expiry time, or None when not running."""
        return self._event.time if self.running and self._event else None

    def start(self, delay_ns: int) -> None:
        """Arm the timer; restarts it if already running."""
        self.stop()
        self._event = self._sim.schedule(delay_ns, self._fire)

    def stop(self) -> None:
        """Disarm the timer; harmless if it is not running."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
