"""Discrete-event simulation engine.

A :class:`Simulator` owns a virtual clock (integer nanoseconds) and a
priority queue of scheduled callbacks. Components schedule work with
:meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` and the
returned :class:`Event` handle can be cancelled (timers).

Determinism: ties at the same timestamp fire in scheduling order, and
all randomness in the library flows through explicit ``random.Random``
instances (see :meth:`Simulator.rng`) seeded from the simulator seed,
so a run is fully reproducible from ``Simulator(seed=...)``.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


@dataclass(order=True)
class Event:
    """A scheduled callback; returned by ``schedule`` so it can be cancelled."""

    time: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing; cancelling twice is harmless."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator with an integer-ns clock."""

    def __init__(self, seed: int = 0) -> None:
        self._queue: list[Event] = []
        self._now = 0
        self._seq = 0
        self._running = False
        self._seed = seed
        self._rngs: dict[str, random.Random] = {}
        self.events_processed = 0

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def seed(self) -> int:
        """Seed this simulator (and all derived RNG streams) was built from."""
        return self._seed

    def rng(self, name: str) -> random.Random:
        """Return a named, stable RNG stream derived from the simulator seed.

        Each distinct ``name`` gets an independent stream, so adding a new
        consumer of randomness does not perturb existing ones.
        """
        if name not in self._rngs:
            self._rngs[name] = random.Random(f"{self._seed}:{name}")
        return self._rngs[name]

    def schedule(self, delay_ns: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now.

        Delays are rounded to the integer-nanosecond clock; fractional
        nanoseconds cannot be represented.
        """
        delay_ns = round(delay_ns)
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay_ns})")
        return self.schedule_at(self._now + delay_ns, callback, *args)

    def schedule_at(self, time_ns: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time_ns``."""
        time_ns = round(time_ns)
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns} before now ({self._now})"
            )
        event = Event(time=time_ns, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def peek_time(self) -> int | None:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run a single event. Returns False when no events remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self.events_processed += 1
            return True
        return False

    def run(self, until_ns: int | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains, ``until_ns``, or ``max_events``.

        Returns the number of events processed by this call. When
        ``until_ns`` is given the clock is advanced to exactly ``until_ns``
        on return (even if the queue drained earlier), so back-to-back
        ``run(until_ns=...)`` calls observe a monotonic clock.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until_ns is not None and next_time > until_ns:
                    break
                if self.step():
                    processed += 1
            if until_ns is not None and self._now < until_ns:
                self._now = until_ns
        finally:
            self._running = False
        return processed

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Wraps :class:`Event` with start/stop/restart semantics, which is the
    shape retransmission and deadline timers need.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Event | None = None

    @property
    def running(self) -> bool:
        """True while the timer is armed and has not fired."""
        return self._event is not None and not self._event.cancelled

    @property
    def expires_at(self) -> int | None:
        """Absolute expiry time, or None when not running."""
        return self._event.time if self.running and self._event else None

    def start(self, delay_ns: int) -> None:
        """Arm the timer; restarts it if already running."""
        self.stop()
        self._event = self._sim.schedule(delay_ns, self._fire)

    def stop(self) -> None:
        """Disarm the timer; harmless if it is not running."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
