"""Time, rate, and size units used throughout the simulator.

The simulator runs on an **integer nanosecond** clock. Using integers
(rather than float seconds) keeps event ordering exact and runs fully
deterministic across platforms. All public APIs that accept a duration
take integer nanoseconds; the helpers here convert from human units.

Rates are expressed in bits per second (``int``), sizes in bytes.
"""

from __future__ import annotations

# Integer nanosecond multipliers.
NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000

# Common rate constants (bits per second).
KBPS = 1_000
MBPS = 1_000_000
GBPS = 1_000_000_000
TBPS = 1_000_000_000_000


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds (rounded to nearest)."""
    return round(value * SECOND)


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded to nearest)."""
    return round(value * MILLISECOND)


def microseconds(value: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded to nearest)."""
    return round(value * MICROSECOND)


def to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to float seconds (for reporting only)."""
    return ns / SECOND


def gbps(value: float) -> int:
    """Convert gigabits per second to integer bits per second."""
    return round(value * GBPS)


def tbps(value: float) -> int:
    """Convert terabits per second to integer bits per second."""
    return round(value * TBPS)


def transmission_time_ns(size_bytes: int, rate_bps: int) -> int:
    """Time to serialize ``size_bytes`` onto a link of ``rate_bps``.

    Uses ceiling division so a packet never finishes "early"; a zero or
    negative rate is a programming error.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    bits = size_bytes * 8
    return (bits * SECOND + rate_bps - 1) // rate_bps


def throughput_bps(size_bytes: int, duration_ns: int) -> float:
    """Average throughput in bits/s of ``size_bytes`` over ``duration_ns``."""
    if duration_ns <= 0:
        raise ValueError(f"duration must be positive, got {duration_ns}")
    return size_bytes * 8 * SECOND / duration_ns


def bandwidth_delay_product_bytes(rate_bps: int, rtt_ns: int) -> int:
    """Bandwidth-delay product in bytes for a path of ``rate_bps``/``rtt_ns``."""
    return (rate_bps * rtt_ns) // (8 * SECOND)
