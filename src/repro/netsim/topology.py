"""Topology builder.

Wires nodes with links, allocates MAC/IP addresses, and installs static
routes along shortest paths (computed with :mod:`networkx`). Pure L2
switches are transparent to routing: a route's next-hop MAC is the next
*L3* element past any chain of switches.

This is the substrate every experiment topology (Figs. 1-4 of the
paper) is assembled from; the reference topologies themselves live in
:mod:`repro.wan.reference` and :mod:`repro.dataplane.pilot`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

import networkx as nx

from .engine import Simulator
from .host import Host
from .link import HOST_QUEUE_BYTES, Link
from .loss import LossModel
from .node import Node
from .queues import QueueDiscipline
from .switch import EthernetSwitch, IpRouter


class TopologyError(ValueError):
    """Raised for inconsistent topology construction."""


class Topology:
    """A collection of nodes and links with automatic addressing/routing."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        self.graph = nx.Graph()
        self._mac_counter = itertools.count(1)
        self._ip_counter = itertools.count(1)

    # -- node construction --------------------------------------------------

    def add(self, node: Node) -> Node:
        """Register an externally-constructed node (e.g. a Tofino model)."""
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self.graph.add_node(node.name)
        return node

    def add_host(self, name: str, ip: str | None = None) -> Host:
        """Create and register a host; allocates an IP when none is given."""
        host = Host(self.sim, name, ip=ip or self.allocate_ip(), mac=self.allocate_mac())
        self.add(host)
        return host

    def add_switch(self, name: str) -> EthernetSwitch:
        """Create and register a transparent L2 learning switch."""
        switch = EthernetSwitch(self.sim, name)
        self.add(switch)
        return switch

    def add_router(self, name: str) -> IpRouter:
        """Create and register a static-route IPv4 router."""
        router = IpRouter(self.sim, name, mac=self.allocate_mac())
        self.add(router)
        return router

    def allocate_mac(self) -> str:
        """Return a fresh locally-administered MAC address."""
        n = next(self._mac_counter)
        return f"02:00:00:{(n >> 16) & 0xFF:02x}:{(n >> 8) & 0xFF:02x}:{n & 0xFF:02x}"

    def allocate_ip(self) -> str:
        """Return a fresh address from the 10.200/16 auto-assignment pool."""
        n = next(self._ip_counter)
        if n > 65_000:
            raise TopologyError("auto IP pool exhausted")
        return f"10.200.{(n >> 8) & 0xFF}.{n & 0xFF}"

    # -- links ----------------------------------------------------------------

    def connect(
        self,
        a: Node | str,
        b: Node | str,
        rate_bps: int,
        delay_ns: int,
        mtu_bytes: int = 9000,
        loss_rate: float = 0.0,
        bit_error_rate: float = 0.0,
        queue_factory: Callable[[], QueueDiscipline] | None = None,
        loss_model: "LossModel | None" = None,
        queue_factory_a: Callable[[], QueueDiscipline] | None = None,
        queue_factory_b: Callable[[], QueueDiscipline] | None = None,
    ) -> Link:
        """Create a full-duplex link between two registered nodes.

        ``queue_factory`` applies to both ends; ``queue_factory_a`` /
        ``queue_factory_b`` override it per end (``a``'s egress port /
        ``b``'s egress port) — used to put an AQM on a switch port while
        the attached host keeps its plain RAM-backed FIFO.
        """
        node_a = self._resolve(a)
        node_b = self._resolve(b)

        def default_queue(
            node: Node,
            specific: Callable[[], QueueDiscipline] | None,
        ) -> QueueDiscipline | None:
            if specific is not None:
                return specific()
            if queue_factory is not None:
                return queue_factory()
            if isinstance(node, Host):
                # Hosts buffer their own egress in RAM; see link module.
                from .queues import DropTailQueue

                return DropTailQueue(HOST_QUEUE_BYTES)
            return None

        port_a = node_a.add_port(
            self._port_name(node_a, node_b), queue=default_queue(node_a, queue_factory_a)
        )
        port_b = node_b.add_port(
            self._port_name(node_b, node_a), queue=default_queue(node_b, queue_factory_b)
        )
        link = Link(
            self.sim,
            port_a,
            port_b,
            rate_bps=rate_bps,
            propagation_delay_ns=delay_ns,
            mtu_bytes=mtu_bytes,
            loss_rate=loss_rate,
            bit_error_rate=bit_error_rate,
            loss_model=loss_model,
        )
        self.links.append(link)
        self.graph.add_edge(
            node_a.name,
            node_b.name,
            link=link,
            # Weight paths by latency so "shortest" means lowest-delay.
            weight=delay_ns + 1,
        )
        return link

    def _resolve(self, node: Node | str) -> Node:
        if isinstance(node, str):
            if node not in self.nodes:
                raise TopologyError(f"unknown node {node!r}")
            return self.nodes[node]
        if node.name not in self.nodes:
            raise TopologyError(f"node {node.name!r} was never registered")
        return node

    @staticmethod
    def _port_name(node: Node, peer: Node) -> str:
        base = f"to_{peer.name}"
        name = base
        suffix = 1
        while name in node.ports:
            suffix += 1
            name = f"{base}.{suffix}"
        return name

    # -- routing ----------------------------------------------------------------

    def path(self, src: Node | str, dst: Node | str) -> list[Node]:
        """Lowest-latency path between two nodes, as node objects."""
        src_name = src if isinstance(src, str) else src.name
        dst_name = dst if isinstance(dst, str) else dst.name
        names = nx.shortest_path(self.graph, src_name, dst_name, weight="weight")
        return [self.nodes[n] for n in names]

    def install_routes(self) -> None:
        """Install routes between every pair of addressable nodes.

        Addressable nodes are hosts and any L3 element carrying its own
        IP address (e.g. smartNICs that host retransmission buffers and
        answer NAKs). For each ordered pair ``(src, dst)``, a ``dst/32``
        route is installed at every L3 element on the lowest-latency
        path: the egress port points at the immediate next node, the
        next-hop MAC at the next *L3* node (L2 switches in between are
        transparent).
        """
        addressable = [
            n
            for n in self.nodes.values()
            if _is_l3(n) and getattr(n, "ip", None) is not None
        ]
        for src in addressable:
            for dst in addressable:
                if src is dst:
                    continue
                addresses = getattr(dst, "addresses", None) or {dst.ip}
                for dst_ip in sorted(addresses):
                    self._install_path_routes(src, dst, dst_ip)

    def _install_path_routes(self, src: Node, dst: Node, dst_ip: str) -> None:
        path = self.path(src, dst)
        for i, node in enumerate(path[:-1]):
            if not _is_l3(node):
                continue
            next_node = path[i + 1]
            next_l3 = next(
                (candidate for candidate in path[i + 1 :] if _is_l3(candidate)), None
            )
            if next_l3 is None:
                raise TopologyError(f"no L3 node after {node.name} toward {dst.name}")
            port_name = self._port_toward(node, next_node)
            node.add_route(f"{dst_ip}/32", port_name, _mac_of(next_l3))

    def _port_toward(self, node: Node, neighbor: Node) -> str:
        for name, port in node.ports.items():
            peer = port.peer
            if peer is not None and peer.node is neighbor:
                return name
        raise TopologyError(f"{node.name} has no port toward {neighbor.name}")

    def link_between(self, a: Node | str, b: Node | str) -> Link:
        """The (first) link directly joining two nodes."""
        node_a = self._resolve(a)
        node_b = self._resolve(b)
        data = self.graph.get_edge_data(node_a.name, node_b.name)
        if data is None:
            raise TopologyError(f"no link between {node_a.name} and {node_b.name}")
        return data["link"]


# ---------------------------------------------------------------------------
# Leaf-spine fabric (the incast / Fig. 2 head-to-head substrate)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LeafSpineSpec:
    """Parameters of a two-tier leaf-spine fabric.

    ``bottleneck_rate_bps`` models an asymmetric bottleneck: when set,
    the *first host of the first leaf* (the canonical incast receiver,
    :attr:`LeafSpine.receiver`) gets a slower edge link than everyone
    else, deepening the fan-in queue at its leaf port. ``None`` keeps
    the fabric symmetric.
    """

    leaves: int = 2
    spines: int = 2
    hosts_per_leaf: int = 4
    edge_rate_bps: int = 10_000_000_000
    fabric_rate_bps: int = 40_000_000_000
    edge_delay_ns: int = 1_000
    fabric_delay_ns: int = 5_000
    mtu_bytes: int = 9000
    bottleneck_rate_bps: int | None = None

    def __post_init__(self) -> None:
        if self.leaves < 1 or self.spines < 1 or self.hosts_per_leaf < 1:
            raise TopologyError("leaf-spine needs >= 1 leaf, spine, and host/leaf")


class LeafSpine:
    """A built leaf-spine fabric: topology plus structured node access."""

    def __init__(
        self,
        topology: Topology,
        leaves: list[IpRouter],
        spines: list[IpRouter],
        hosts: list[list[Host]],
        spec: LeafSpineSpec,
    ) -> None:
        self.topology = topology
        self.leaves = leaves
        self.spines = spines
        self.hosts = hosts
        self.spec = spec

    @property
    def receiver(self) -> Host:
        """The canonical incast sink: first host of the first leaf."""
        return self.hosts[0][0]

    @property
    def all_hosts(self) -> list[Host]:
        return [h for leaf_hosts in self.hosts for h in leaf_hosts]

    def host(self, leaf: int, index: int) -> Host:
        return self.hosts[leaf][index]

    def receiver_port_queue(self) -> QueueDiscipline | None:
        """The fan-in queue: leaf 0's egress port toward the receiver."""
        leaf = self.leaves[0]
        name = self.topology._port_toward(leaf, self.receiver)
        return leaf.ports[name].queue


def build_leaf_spine(
    sim: Simulator,
    spec: LeafSpineSpec | None = None,
    switch_queue_factory: Callable[[], QueueDiscipline] | None = None,
) -> LeafSpine:
    """Build a leaf-spine fabric with per-port switch queues.

    ``switch_queue_factory`` is called once per *switch-side* port end
    (leaf→host downlinks and every leaf↔spine port) — pass a seeded
    :class:`~repro.netsim.queues.RedQueue` factory for an ECN fabric.
    Host egress keeps the default RAM-backed FIFO. Routes are installed
    before returning.
    """
    spec = spec or LeafSpineSpec()
    topo = Topology(sim)
    leaves = [topo.add_router(f"leaf{i}") for i in range(spec.leaves)]
    spines = [topo.add_router(f"spine{i}") for i in range(spec.spines)]
    hosts: list[list[Host]] = []
    for li, leaf in enumerate(leaves):
        leaf_hosts: list[Host] = []
        for hi in range(spec.hosts_per_leaf):
            host = topo.add_host(f"h{li}_{hi}")
            rate = spec.edge_rate_bps
            if li == 0 and hi == 0 and spec.bottleneck_rate_bps is not None:
                rate = spec.bottleneck_rate_bps
            topo.connect(
                host,
                leaf,
                rate_bps=rate,
                delay_ns=spec.edge_delay_ns,
                mtu_bytes=spec.mtu_bytes,
                queue_factory_b=switch_queue_factory,
            )
            leaf_hosts.append(host)
        hosts.append(leaf_hosts)
    for leaf in leaves:
        for spine in spines:
            topo.connect(
                leaf,
                spine,
                rate_bps=spec.fabric_rate_bps,
                delay_ns=spec.fabric_delay_ns,
                mtu_bytes=spec.mtu_bytes,
                queue_factory_a=switch_queue_factory,
                queue_factory_b=switch_queue_factory,
            )
    topo.install_routes()
    return LeafSpine(topo, leaves, spines, hosts, spec)


def _is_l3(node: Node) -> bool:
    """True for nodes that participate in IP routing."""
    return hasattr(node, "add_route") and hasattr(node, "mac")


def _mac_of(node: Node) -> str:
    mac = getattr(node, "mac", None)
    if mac is None:
        raise TopologyError(f"{node.name} has no MAC address")
    return mac
