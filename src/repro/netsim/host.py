"""End hosts with a small protocol stack.

A :class:`Host` terminates L2/L3: it checks destination addresses,
strips headers, and dispatches to registered protocol handlers.
Transports (UDP sockets, the TCP baseline, MMT endpoints) register
themselves with :meth:`Host.register_l3_protocol` or — for transports
that run directly over Ethernet, as MMT can (Req 1) —
:meth:`Host.register_l2_protocol`.

Address resolution is static (no ARP): the topology builder installs
neighbor MAC entries. Routing is longest-prefix-match via
:class:`~repro.netsim.switch.RoutingTable`.
"""

from __future__ import annotations

from typing import Callable

from .engine import Simulator
from .headers import EthernetHeader, EtherType, Header, Ipv4Header
from .link import Port
from .node import Node
from .packet import Packet
from .switch import RoutingTable

PacketHandler = Callable[[Packet], None]


class Host(Node):
    """A multi-homed end host with static routes and protocol demux."""

    def __init__(self, sim: Simulator, name: str, ip: str, mac: str) -> None:
        super().__init__(sim, name)
        self.ip = ip
        self.mac = mac
        self.addresses: set[str] = {ip}
        self.routes = RoutingTable()
        self._l3_handlers: dict[int, PacketHandler] = {}
        self._l2_handlers: dict[int, PacketHandler] = {}
        self.rx_unhandled = 0
        self.tx_no_route = 0

    # -- configuration ----------------------------------------------------

    def add_address(self, ip: str) -> None:
        """Register an additional local IP (multi-homed hosts, e.g. DTNs)."""
        self.addresses.add(ip)

    def add_route(self, prefix: str, port_name: str, next_hop_mac: str) -> None:
        """Install a static route out of ``port_name`` via ``next_hop_mac``."""
        if port_name not in self.ports:
            raise ValueError(f"{self.name} has no port {port_name!r}")
        self.routes.add(prefix, port_name, next_hop_mac)

    def register_l3_protocol(self, proto: int, handler: PacketHandler) -> None:
        """Dispatch IPv4 packets with protocol number ``proto`` to ``handler``."""
        if proto in self._l3_handlers:
            raise ValueError(f"{self.name} already handles IP proto {proto}")
        self._l3_handlers[proto] = handler

    def register_l2_protocol(self, ethertype: int, handler: PacketHandler) -> None:
        """Dispatch Ethernet frames with ``ethertype`` to ``handler``."""
        if ethertype in self._l2_handlers:
            raise ValueError(f"{self.name} already handles ethertype {ethertype:#x}")
        self._l2_handlers[ethertype] = handler

    # -- transmit ----------------------------------------------------------

    def send_ip(
        self,
        dst_ip: str,
        proto: int,
        inner_headers: list[Header],
        payload_size: int = 0,
        payload: bytes | None = None,
        dscp: int = 0,
        meta: dict | None = None,
        src_ip: str | None = None,
        ecn: int = 0,
    ) -> bool:
        """Build and transmit an IPv4 packet toward ``dst_ip``.

        ``src_ip`` overrides the source address — used when relaying a
        request on another node's behalf (e.g. forwarding a NAK whose
        answer must go to the original requester); fine inside the
        paper's "limited domain", never on the open Internet (§5.3).
        ``ecn`` sets the IPv4 ECN codepoint (ECT(0)=2 for ECN-capable
        transports; AQMs may rewrite it to CE=3 in flight).
        Returns False when no route exists or the egress port dropped it.
        """
        route = self.routes.lookup(dst_ip)
        if route is None:
            self.tx_no_route += 1
            return False
        headers: list[Header] = [
            EthernetHeader(src=self.mac, dst=route.next_hop_mac, ethertype=EtherType.IPV4),
            Ipv4Header(src=src_ip or self.ip, dst=dst_ip, proto=proto, dscp=dscp, ecn=ecn),
        ]
        headers.extend(inner_headers)
        packet = Packet(
            headers=headers,
            payload_size=payload_size,
            payload=payload,
            meta=dict(meta or {}),
        )
        packet.meta.setdefault("sent_at", self.sim.now)
        return self.ports[route.port_name].send(packet)

    def send_l2(
        self,
        port_name: str,
        dst_mac: str,
        ethertype: int,
        inner_headers: list[Header],
        payload_size: int = 0,
        payload: bytes | None = None,
        meta: dict | None = None,
    ) -> bool:
        """Transmit a raw Ethernet frame (no IP) out of ``port_name``."""
        headers: list[Header] = [
            EthernetHeader(src=self.mac, dst=dst_mac, ethertype=ethertype)
        ]
        headers.extend(inner_headers)
        packet = Packet(
            headers=headers,
            payload_size=payload_size,
            payload=payload,
            meta=dict(meta or {}),
        )
        packet.meta.setdefault("sent_at", self.sim.now)
        return self.ports[port_name].send(packet)

    # -- receive -----------------------------------------------------------

    def receive(self, packet: Packet, port: Port) -> None:
        eth = packet.find(EthernetHeader)
        if eth is None:
            self.rx_unhandled += 1
            return
        if eth.dst not in (self.mac, EthernetSwitchBroadcast):
            self.rx_unhandled += 1
            return
        if eth.ethertype == EtherType.IPV4:
            self._receive_ip(packet)
            return
        handler = self._l2_handlers.get(eth.ethertype)
        if handler is None:
            self.rx_unhandled += 1
            return
        handler(packet)

    def _receive_ip(self, packet: Packet) -> None:
        ip = packet.find(Ipv4Header)
        if ip is None or ip.dst not in self.addresses:
            self.rx_unhandled += 1
            return
        handler = self._l3_handlers.get(ip.proto)
        if handler is None:
            self.rx_unhandled += 1
            return
        handler(packet)


#: The L2 broadcast address hosts also accept.
EthernetSwitchBroadcast = "ff:ff:ff:ff:ff:ff"
