"""Packet tracing and per-flow accounting.

A :class:`FlowTracker` is attached at a measurement point (usually the
receiving application) and fed every delivered packet; it accumulates
per-flow counters and one-way latency samples keyed by the packet's
``meta['flow']`` tag. Latency uses ``meta['sent_at']`` stamped by the
sending host.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .packet import Packet


@dataclass
class FlowRecord:
    """Counters and samples for a single flow."""

    flow: str
    packets: int = 0
    bytes: int = 0
    first_rx_ns: int | None = None
    last_rx_ns: int | None = None
    latencies_ns: list[int] = field(default_factory=list)

    @property
    def duration_ns(self) -> int:
        """Time between first and last delivery (0 for a single packet)."""
        if self.first_rx_ns is None or self.last_rx_ns is None:
            return 0
        return self.last_rx_ns - self.first_rx_ns

    @property
    def throughput_bps(self) -> float:
        """Average delivered rate over the flow's active window."""
        if self.duration_ns <= 0:
            return 0.0
        return self.bytes * 8 * 1_000_000_000 / self.duration_ns


class FlowTracker:
    """Accumulates :class:`FlowRecord` entries from delivered packets."""

    def __init__(self, keep_latencies: bool = True) -> None:
        self.flows: dict[str, FlowRecord] = {}
        self.keep_latencies = keep_latencies
        self.total_packets = 0
        self.total_bytes = 0

    def record(self, packet: Packet, now_ns: int) -> None:
        """Account one delivered packet at virtual time ``now_ns``."""
        flow = str(packet.meta.get("flow", "default"))
        record = self.flows.get(flow)
        if record is None:
            record = FlowRecord(flow=flow)
            self.flows[flow] = record
        record.packets += 1
        record.bytes += packet.size_bytes
        if record.first_rx_ns is None:
            record.first_rx_ns = now_ns
        record.last_rx_ns = now_ns
        sent_at = packet.meta.get("sent_at")
        if self.keep_latencies and sent_at is not None:
            record.latencies_ns.append(now_ns - sent_at)
        self.total_packets += 1
        self.total_bytes += packet.size_bytes

    def flow(self, name: str) -> FlowRecord:
        """Look up a flow record (raises ``KeyError`` when absent)."""
        return self.flows[name]

    def __len__(self) -> int:
        return len(self.flows)
