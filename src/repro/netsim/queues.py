"""Queue disciplines for egress ports.

All queues count in bytes (the resource links actually contend on) and
expose the same interface: ``enqueue`` (returns False on drop),
``dequeue`` (returns None when empty), ``__len__`` (packets), and byte
occupancy. Disciplines:

- :class:`DropTailQueue` — plain FIFO with a byte limit.
- :class:`PriorityQueue` — strict priority bands (used to prioritize
  age-sensitive DAQ data, paper §5.3).
- :class:`RedQueue` — Random Early Detection, for TCP cross-traffic.
- :class:`DeadlineAwareQueue` — the paper's deadline-as-AQM-input idea:
  packets carrying an MMT deadline are scheduled earliest-deadline-first
  and dropped when they can no longer make their deadline ("a signal for
  congestion and an input to active queue management", §5.3).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Iterable

from .headers import ECN_CE, ECN_ECT0, ECN_ECT1, Ipv4Header
from .packet import Packet


class QueueDiscipline:
    """Interface shared by all queue disciplines."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.bytes_queued = 0
        #: High-water mark of byte occupancy (telemetry scrapes this).
        self.peak_bytes = 0
        self.enqueued = 0
        self.dropped = 0
        #: Mid-run capacity changes (:meth:`resize`).
        self.resizes = 0

    def resize(self, capacity_bytes: int) -> None:
        """Change the byte capacity mid-run (buffer-carving trajectory).

        Shrinking below the current backlog drops nothing retroactively:
        queued packets drain normally and new arrivals are refused until
        occupancy falls under the new limit — the way switch buffer
        re-carving behaves.
        """
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if capacity_bytes != self.capacity_bytes:
            self.capacity_bytes = capacity_bytes
            self.resizes += 1

    def enqueue(self, packet: Packet) -> bool:
        raise NotImplementedError

    def dequeue(self) -> Packet | None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def occupancy(self) -> float:
        """Fraction of byte capacity currently used."""
        return self.bytes_queued / self.capacity_bytes

    def _admit(self, packet: Packet) -> bool:
        if self.bytes_queued + packet.size_bytes > self.capacity_bytes:
            self.dropped += 1
            return False
        self.bytes_queued += packet.size_bytes
        if self.bytes_queued > self.peak_bytes:
            self.peak_bytes = self.bytes_queued
        self.enqueued += 1
        return True

    def _release(self, packet: Packet) -> Packet:
        self.bytes_queued -= packet.size_bytes
        return packet


class DropTailQueue(QueueDiscipline):
    """FIFO with a byte limit; arrivals that overflow are dropped."""

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._fifo: deque[Packet] = deque()

    def enqueue(self, packet: Packet) -> bool:
        if not self._admit(packet):
            return False
        self._fifo.append(packet)
        return True

    def dequeue(self) -> Packet | None:
        if not self._fifo:
            return None
        return self._release(self._fifo.popleft())

    def __len__(self) -> int:
        return len(self._fifo)


class PriorityQueue(QueueDiscipline):
    """Strict-priority bands; band 0 is served first.

    ``classifier`` maps a packet to a band index; unclassified packets go
    to the lowest-priority band.
    """

    def __init__(
        self,
        capacity_bytes: int,
        bands: int = 2,
        classifier: Callable[[Packet], int] | None = None,
    ) -> None:
        super().__init__(capacity_bytes)
        if bands < 1:
            raise ValueError(f"need at least one band, got {bands}")
        self.bands = bands
        self._classifier = classifier or (lambda _packet: bands - 1)
        self._queues: list[deque[Packet]] = [deque() for _ in range(bands)]

    def enqueue(self, packet: Packet) -> bool:
        if not self._admit(packet):
            return False
        band = min(max(self._classifier(packet), 0), self.bands - 1)
        self._queues[band].append(packet)
        return True

    def dequeue(self) -> Packet | None:
        for queue in self._queues:
            if queue:
                return self._release(queue.popleft())
        return None

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)


class RedQueue(QueueDiscipline):
    """Random Early Detection (gentle RED on byte occupancy EWMA).

    With ``min_threshold == max_threshold == K`` this degenerates to the
    Fixed-K step AQM used for DCTCP-style ECN: the mark/drop probability
    is 0 at or below K and ``max_drop_probability`` above it (set
    ``max_drop_probability=1.0`` and ``ewma_weight=1.0`` for the
    instantaneous-occupancy step of the incast grid).

    When ``ecn=True``, packets whose IPv4 header carries an ECT
    codepoint (ECT(0) or ECT(1)) are CE-marked *instead of* dropped on
    an early-drop decision; non-ECT packets are dropped as before. The
    RNG draw is consumed identically in both cases, so an ECT and a
    non-ECT run over the same stream see the same decision sequence.
    """

    def __init__(
        self,
        capacity_bytes: int,
        min_threshold: float = 0.25,
        max_threshold: float = 0.75,
        max_drop_probability: float = 0.1,
        ewma_weight: float = 0.002,
        rng=None,
        ecn: bool = False,
    ) -> None:
        super().__init__(capacity_bytes)
        if not 0 <= min_threshold <= max_threshold <= 1:
            raise ValueError("need 0 <= min_threshold <= max_threshold <= 1")
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.max_drop_probability = max_drop_probability
        self.ewma_weight = ewma_weight
        self.ecn = ecn
        self._avg = 0.0
        self._rng = rng
        self._fifo: deque[Packet] = deque()
        self.early_drops = 0
        #: Packets CE-marked instead of dropped (ECN mode only).
        self.ce_marked = 0

    def mark_probability(self, average_occupancy: float) -> float:
        """Early mark/drop probability at a given average occupancy."""
        if average_occupancy <= self.min_threshold:
            return 0.0
        if average_occupancy >= self.max_threshold:
            return self.max_drop_probability
        span = self.max_threshold - self.min_threshold
        return (
            (average_occupancy - self.min_threshold) / span * self.max_drop_probability
        )

    def enqueue(self, packet: Packet) -> bool:
        self._avg += self.ewma_weight * (self.occupancy - self._avg)
        if self._avg > self.min_threshold and self._rng is not None:
            probability = self.mark_probability(self._avg)
            if self._rng.random() < probability:
                ip = packet.find(Ipv4Header) if self.ecn else None
                if ip is not None and ip.ecn in (ECN_ECT0, ECN_ECT1):
                    ip.ecn = ECN_CE
                    self.ce_marked += 1
                else:
                    self.dropped += 1
                    self.early_drops += 1
                    return False
        if not self._admit(packet):
            return False
        self._fifo.append(packet)
        return True

    def dequeue(self) -> Packet | None:
        if not self._fifo:
            return None
        return self._release(self._fifo.popleft())

    def __len__(self) -> int:
        return len(self._fifo)


class DeadlineAwareQueue(QueueDiscipline):
    """Earliest-deadline-first queue that sheds already-late packets.

    ``deadline_of`` maps a packet to its absolute delivery deadline in
    nanoseconds, or ``None`` when the packet carries no deadline (such
    packets are served after all deadline-bearing traffic, FIFO among
    themselves). ``now`` supplies current virtual time so that packets
    whose deadline has already passed can be dropped at enqueue — the
    paper's use of transport deadlines as an AQM input (§5.3).

    Admission uses *push-out*: when full, an arriving packet may evict
    queued traffic with a laxer (larger) deadline — best-effort first,
    then the largest-deadline entry — so urgent data is never tail-
    dropped behind bulk backlog.
    """

    def __init__(
        self,
        capacity_bytes: int,
        deadline_of: Callable[[Packet], int | None],
        now: Callable[[], int],
        drop_late: bool = True,
    ) -> None:
        super().__init__(capacity_bytes)
        self._deadline_of = deadline_of
        self._now = now
        self.drop_late = drop_late
        self._heap: list[tuple[int, int, Packet]] = []
        self._best_effort: deque[Packet] = deque()
        self._seq = 0
        self.late_drops = 0
        self.pushouts = 0

    def enqueue(self, packet: Packet) -> bool:
        deadline = self._deadline_of(packet)
        if deadline is not None and self.drop_late and deadline < self._now():
            self.dropped += 1
            self.late_drops += 1
            return False
        if (
            self.bytes_queued + packet.size_bytes > self.capacity_bytes
            and deadline is not None
        ):
            self._push_out(packet.size_bytes, deadline)
        if not self._admit(packet):
            return False
        if deadline is None:
            self._best_effort.append(packet)
        else:
            heapq.heappush(self._heap, (deadline, self._seq, packet))
            self._seq += 1
        return True

    def _push_out(self, needed_bytes: int, incoming_deadline: int) -> None:
        """Evict laxer traffic to make room for an urgent arrival."""
        while (
            self._best_effort
            and self.bytes_queued + needed_bytes > self.capacity_bytes
        ):
            victim = self._best_effort.pop()
            self._release(victim)
            self.pushouts += 1
            self.dropped += 1
        while self.bytes_queued + needed_bytes > self.capacity_bytes and self._heap:
            worst_index = max(range(len(self._heap)), key=lambda i: self._heap[i][0])
            worst_deadline = self._heap[worst_index][0]
            if worst_deadline <= incoming_deadline:
                return  # the arrival is the laxest packet here; drop it
            _d, _s, victim = self._heap.pop(worst_index)
            heapq.heapify(self._heap)
            self._release(victim)
            self.pushouts += 1
            self.dropped += 1

    def dequeue(self) -> Packet | None:
        while self._heap:
            deadline, _seq, packet = heapq.heappop(self._heap)
            if self.drop_late and deadline < self._now():
                # Too late to be useful downstream: shed it now and count
                # the loss so the operator can see deadline pressure.
                self._release(packet)
                self.late_drops += 1
                continue
            return self._release(packet)
        if self._best_effort:
            return self._release(self._best_effort.popleft())
        return None

    def __len__(self) -> int:
        return len(self._heap) + len(self._best_effort)


class DrrScheduler:
    """Deficit round robin over per-flow FIFOs (Shreedhar–Varghese).

    Unlike the :class:`QueueDiscipline` family this is a *scheduler*:
    it holds arbitrary work items keyed by a hashable flow id and
    answers "whose turn is it" in byte-fair order. Each flow earns
    ``quantum_bytes`` of service credit when its turn starts and spends
    it as items are dequeued; unspent credit carries to its next turn,
    so flows with large items are not starved and flows with small
    items cannot hog the rotation. A flow that drains loses its saved
    credit (standard DRR — idle flows must not bank service).

    Deterministic: rotation order is arrival order of flow activation,
    no randomness anywhere.
    """

    def __init__(self, quantum_bytes: int) -> None:
        if quantum_bytes <= 0:
            raise ValueError(f"quantum must be positive, got {quantum_bytes}")
        self.quantum_bytes = quantum_bytes
        self._queues: dict[object, deque[tuple[object, int]]] = {}
        self._deficit: dict[object, int] = {}
        self._active: deque[object] = deque()
        #: True while the front flow's current turn has been credited.
        self._turn_open = False
        self._pending = 0
        #: Items served per flow (fairness telemetry).
        self.services: dict[object, int] = {}
        #: Bytes served per flow.
        self.bytes_served: dict[object, int] = {}

    def enqueue(self, flow: object, item: object, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ValueError(f"item size must be positive, got {size_bytes}")
        queue = self._queues.get(flow)
        if queue is None:
            queue = self._queues[flow] = deque()
            self._deficit[flow] = 0
        if not queue:
            self._active.append(flow)
        queue.append((item, size_bytes))
        self._pending += 1

    def dequeue(self) -> tuple[object, object] | None:
        """Next ``(flow, item)`` in DRR order, or None when empty."""
        while self._active:
            flow = self._active[0]
            queue = self._queues[flow]
            if not self._turn_open:
                self._deficit[flow] += self.quantum_bytes
                self._turn_open = True
            item, size = queue[0]
            if size <= self._deficit[flow]:
                queue.popleft()
                self._deficit[flow] -= size
                self._pending -= 1
                self.services[flow] = self.services.get(flow, 0) + 1
                self.bytes_served[flow] = self.bytes_served.get(flow, 0) + size
                if not queue:
                    self._active.popleft()
                    self._deficit[flow] = 0
                    self._turn_open = False
                return flow, item
            # Credit exhausted for this turn: rotate to the next flow.
            # (On a single active flow this re-credits the same flow, so
            # any item is eventually served regardless of quantum.)
            self._active.rotate(-1)
            self._turn_open = False
        return None

    def __len__(self) -> int:
        return self._pending


def drain(queue: QueueDiscipline) -> Iterable[Packet]:
    """Yield every packet left in ``queue`` (test/inspection helper)."""
    while True:
        packet = queue.dequeue()
        if packet is None:
            return
        yield packet
