"""Protocol header models for simulated packets.

Headers carry the fields the simulation logic reads plus a byte-accurate
``size_bytes`` so link serialization times and overhead accounting are
faithful. Payload bytes are usually *not* materialized (only counted),
except where a test or codec needs real bytes.

The MMT (multi-modal transport) header lives in :mod:`repro.core.header`;
it subclasses :class:`Header` so it stacks like any other protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import IntEnum


class EtherType(IntEnum):
    """EtherType values used by the simulation."""

    IPV4 = 0x0800
    ARP = 0x0806
    # The paper's protocol can run directly over L2 (Req 1); we use the
    # IEEE experimental/local EtherType for it.
    MMT = 0x88B5


class IpProto(IntEnum):
    """IPv4 protocol numbers used by the simulation."""

    TCP = 6
    UDP = 17
    # Experimental protocol number for MMT-over-IP.
    MMT = 254


@dataclass
class Header:
    """Base class for protocol headers; subclasses define ``size_bytes``."""

    @property
    def size_bytes(self) -> int:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__

    def copy(self) -> "Header":
        """Shallow field-wise copy (headers hold only value types)."""
        return replace(self)


@dataclass
class EthernetHeader(Header):
    """Ethernet II header (14 bytes) plus the 4-byte FCS trailer."""

    src: str = "00:00:00:00:00:00"
    dst: str = "ff:ff:ff:ff:ff:ff"
    ethertype: int = EtherType.IPV4

    HEADER_BYTES = 14
    FCS_BYTES = 4

    @property
    def size_bytes(self) -> int:
        return self.HEADER_BYTES + self.FCS_BYTES


@dataclass
class Ipv4Header(Header):
    """IPv4 header without options (20 bytes)."""

    src: str = "0.0.0.0"
    dst: str = "0.0.0.0"
    proto: int = IpProto.UDP
    ttl: int = 64
    dscp: int = 0
    ecn: int = 0
    identification: int = 0

    @property
    def size_bytes(self) -> int:
        return 20


@dataclass
class UdpHeader(Header):
    """UDP header (8 bytes)."""

    src_port: int = 0
    dst_port: int = 0

    @property
    def size_bytes(self) -> int:
        return 8


@dataclass
class TcpHeader(Header):
    """TCP header (20 bytes, no options modelled beyond SACK blocks).

    ``seq`` numbers bytes (as in real TCP); flags are booleans. SACK
    blocks, when present, add 8 bytes each plus 2 bytes of option header,
    mirroring RFC 2018 sizing.
    """

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flag_syn: bool = False
    flag_ack: bool = False
    flag_fin: bool = False
    flag_rst: bool = False
    window: int = 65535
    sack_blocks: tuple[tuple[int, int], ...] = field(default_factory=tuple)

    @property
    def size_bytes(self) -> int:
        base = 20
        if self.sack_blocks:
            base += 2 + 8 * len(self.sack_blocks)
        return base
