"""Protocol header models for simulated packets.

Headers carry the fields the simulation logic reads plus a byte-accurate
``size_bytes`` so link serialization times and overhead accounting are
faithful. Payload bytes are usually *not* materialized (only counted),
except where a test or codec needs real bytes.

The MMT (multi-modal transport) header lives in :mod:`repro.core.header`;
it subclasses :class:`Header` so it stacks like any other protocol.

Performance notes (see README "Performance"): header dataclasses use
``slots=True`` (packets allocate several headers each, millions per
run), and :class:`Header` maintains a *size-mutation counter* ``_mut``
that bumps only when a field named in the class's ``_SIZE_FIELDS``
changes. :class:`~repro.netsim.packet.Packet` memoizes the sum of its
header sizes keyed on those counters, so per-hop field rewrites that
cannot change the wire size (MACs, TTL, seq, ...) never invalidate the
cached packet size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import IntEnum


class EtherType(IntEnum):
    """EtherType values used by the simulation."""

    IPV4 = 0x0800
    ARP = 0x0806
    # The paper's protocol can run directly over L2 (Req 1); we use the
    # IEEE experimental/local EtherType for it.
    MMT = 0x88B5


class IpProto(IntEnum):
    """IPv4 protocol numbers used by the simulation."""

    TCP = 6
    UDP = 17
    # Experimental protocol number for MMT-over-IP.
    MMT = 254


class Header:
    """Base class for protocol headers; subclasses define ``size_bytes``.

    Subclasses are ``@dataclass(slots=True)``. Fields listed in the
    class attribute ``_SIZE_FIELDS`` can change the header's wire size;
    assigning them bumps the mutation counter ``_mut`` so any memoized
    :attr:`Packet.size_bytes <repro.netsim.packet.Packet.size_bytes>`
    recomputes. In-place mutations that dodge ``__setattr__`` (e.g.
    appending to a list field) must call :meth:`_touch` instead.
    """

    __slots__ = ("_mut", "_vmut")

    #: Field names whose value affects ``size_bytes`` (class attribute).
    _SIZE_FIELDS: frozenset = frozenset()

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # Headers with a fixed wire size never need the mutation
        # counter; give them C-speed attribute assignment (their
        # dataclass __init__ otherwise funnels every field through the
        # Python-level __setattr__ below).
        if not cls._SIZE_FIELDS and "__setattr__" not in cls.__dict__:
            cls.__setattr__ = object.__setattr__

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        if name in self._SIZE_FIELDS:
            try:
                object.__setattr__(self, "_mut", self._mut + 1)
            except AttributeError:
                object.__setattr__(self, "_mut", 1)

    def _touch(self) -> None:
        """Record a size-affecting in-place mutation (list fields)."""
        try:
            object.__setattr__(self, "_mut", self._mut + 1)
        except AttributeError:
            object.__setattr__(self, "_mut", 1)

    @property
    def size_bytes(self) -> int:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__

    def copy(self) -> "Header":
        """Shallow field-wise copy (headers hold only value types)."""
        return replace(self)


@dataclass(slots=True)
class EthernetHeader(Header):
    """Ethernet II header (14 bytes) plus the 4-byte FCS trailer."""

    src: str = "00:00:00:00:00:00"
    dst: str = "ff:ff:ff:ff:ff:ff"
    ethertype: int = EtherType.IPV4

    HEADER_BYTES = 14
    FCS_BYTES = 4

    @property
    def size_bytes(self) -> int:
        return 18  # HEADER_BYTES + FCS_BYTES

    def copy(self) -> "EthernetHeader":
        return EthernetHeader(src=self.src, dst=self.dst, ethertype=self.ethertype)


# ECN codepoints for :attr:`Ipv4Header.ecn` (RFC 3168 §5).
ECN_NOT_ECT = 0
ECN_ECT1 = 1
ECN_ECT0 = 2
ECN_CE = 3


@dataclass(slots=True)
class Ipv4Header(Header):
    """IPv4 header without options (20 bytes)."""

    src: str = "0.0.0.0"
    dst: str = "0.0.0.0"
    proto: int = IpProto.UDP
    ttl: int = 64
    dscp: int = 0
    ecn: int = 0
    identification: int = 0

    @property
    def size_bytes(self) -> int:
        return 20

    def copy(self) -> "Ipv4Header":
        return Ipv4Header(
            src=self.src, dst=self.dst, proto=self.proto, ttl=self.ttl,
            dscp=self.dscp, ecn=self.ecn, identification=self.identification,
        )


@dataclass(slots=True)
class UdpHeader(Header):
    """UDP header (8 bytes)."""

    src_port: int = 0
    dst_port: int = 0

    @property
    def size_bytes(self) -> int:
        return 8

    def copy(self) -> "UdpHeader":
        return UdpHeader(src_port=self.src_port, dst_port=self.dst_port)


@dataclass(slots=True)
class TcpHeader(Header):
    """TCP header (20 bytes, no options modelled beyond SACK blocks).

    ``seq`` numbers bytes (as in real TCP); flags are booleans. SACK
    blocks, when present, add 8 bytes each plus 2 bytes of option header,
    mirroring RFC 2018 sizing.
    """

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flag_syn: bool = False
    flag_ack: bool = False
    flag_fin: bool = False
    flag_rst: bool = False
    flag_ece: bool = False
    flag_cwr: bool = False
    window: int = 65535
    sack_blocks: tuple[tuple[int, int], ...] = field(default_factory=tuple)

    _SIZE_FIELDS = frozenset({"sack_blocks"})

    @property
    def size_bytes(self) -> int:
        base = 20
        if self.sack_blocks:
            base += 2 + 8 * len(self.sack_blocks)
        return base
