"""Plain (non-programmable) switches and routers.

:class:`EthernetSwitch` is a learning L2 switch — the commodity COTS
equipment DAQ networks are built from (paper §2). :class:`IpRouter`
forwards on longest-prefix-match routes and rewrites L2 addresses; WAN
segments are built from these. Programmable elements (Tofino, Alveo)
live in :mod:`repro.dataplane` and extend these with pipelines.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

from .headers import EthernetHeader, Ipv4Header
from .link import Port
from .node import Node
from .packet import Packet


class EthernetSwitch(Node):
    """Learning L2 switch: floods unknown destinations, learns sources."""

    BROADCAST = "ff:ff:ff:ff:ff:ff"

    def __init__(self, sim, name: str) -> None:
        super().__init__(sim, name)
        self.mac_table: dict[str, Port] = {}
        self.flooded = 0
        self.forwarded = 0
        self.dropped_no_l2 = 0

    def receive(self, packet: Packet, port: Port) -> None:
        eth = packet.find(EthernetHeader)
        if eth is None:
            self.dropped_no_l2 += 1
            return
        self.mac_table[eth.src] = port
        if eth.dst != self.BROADCAST and eth.dst in self.mac_table:
            out_port = self.mac_table[eth.dst]
            if out_port is not port:
                self.forwarded += 1
                out_port.send(packet)
            return
        self.flooded += 1
        for other in self.ports.values():
            if other is not port and other.link is not None:
                other.send(packet.copy())


@dataclass
class Route:
    """A routing table entry: prefix → (egress port, next-hop MAC)."""

    network: ipaddress.IPv4Network
    port_name: str
    next_hop_mac: str


class RoutingTable:
    """Longest-prefix-match IPv4 routing table."""

    #: Bound on the per-table lookup memo (distinct destinations seen).
    _CACHE_MAX = 65536

    def __init__(self) -> None:
        self._routes: list[Route] = []
        # dst string → winning Route (or None); routes are static while
        # traffic flows, so per-packet ipaddress parsing is pure waste.
        # Any table change clears the memo.
        self._cache: dict[str, Route | None] = {}

    def add(self, prefix: str, port_name: str, next_hop_mac: str) -> None:
        """Install a route for ``prefix`` (e.g. ``"10.1.0.0/16"``).

        Re-adding a prefix replaces the previous entry, so repeated
        route installation (e.g. after attaching new sites) is
        idempotent rather than table-bloating.
        """
        network = ipaddress.ip_network(prefix, strict=False)
        self._routes = [r for r in self._routes if r.network != network]
        self._routes.append(Route(network, port_name, next_hop_mac))
        self._routes.sort(key=lambda r: r.network.prefixlen, reverse=True)
        self._cache.clear()

    def lookup(self, dst_ip: str) -> Route | None:
        """Return the most-specific matching route, or None."""
        try:
            return self._cache[dst_ip]
        except KeyError:
            pass
        address = ipaddress.ip_address(dst_ip)
        found = None
        for route in self._routes:
            if address in route.network:
                found = route
                break
        if len(self._cache) < self._CACHE_MAX:
            self._cache[dst_ip] = found
        return found

    def __len__(self) -> int:
        return len(self._routes)


class IpRouter(Node):
    """Static-route IPv4 router with TTL handling and L2 rewrite."""

    def __init__(self, sim, name: str, mac: str = "02:00:00:00:00:00") -> None:
        super().__init__(sim, name)
        self.mac = mac
        self.routes = RoutingTable()
        self.forwarded = 0
        self.dropped_no_route = 0
        self.dropped_ttl = 0

    def add_route(self, prefix: str, port_name: str, next_hop_mac: str) -> None:
        if port_name not in self.ports:
            raise ValueError(f"{self.name} has no port {port_name!r}")
        self.routes.add(prefix, port_name, next_hop_mac)

    def receive(self, packet: Packet, port: Port) -> None:
        ip = packet.find(Ipv4Header)
        if ip is None:
            self.dropped_no_route += 1
            return
        if ip.ttl <= 1:
            self.dropped_ttl += 1
            return
        route = self.routes.lookup(ip.dst)
        if route is None:
            self.dropped_no_route += 1
            return
        ip.ttl -= 1
        eth = packet.find(EthernetHeader)
        if eth is not None:
            eth.src = self.mac
            eth.dst = route.next_hop_mac
        self.forwarded += 1
        self.ports[route.port_name].send(packet)
