"""Base node types.

A :class:`Node` owns named :class:`~repro.netsim.link.Port` objects and
receives packets from them. Concrete nodes — hosts, switches, DTNs,
programmable dataplanes — subclass :meth:`Node.receive`.
"""

from __future__ import annotations

from typing import Callable

from .engine import Simulator
from .link import Port
from .packet import Packet
from .queues import QueueDiscipline


class Node:
    """A network element with named ports."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: dict[str, Port] = {}

    def add_port(self, name: str, queue: QueueDiscipline | None = None) -> Port:
        """Create and register a new port; names must be unique per node."""
        if name in self.ports:
            raise ValueError(f"{self.name} already has a port named {name!r}")
        port = Port(self, name, queue=queue)
        self.ports[name] = port
        return port

    def port(self, name: str) -> Port:
        """Look up a port by name."""
        return self.ports[name]

    def receive(self, packet: Packet, port: Port) -> None:
        """Handle an ingress packet; subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class SinkNode(Node):
    """Absorbs every packet; records them for inspection in tests."""

    def __init__(self, sim: Simulator, name: str, keep_packets: bool = True) -> None:
        super().__init__(sim, name)
        self.received: list[tuple[int, Packet]] = []
        self.rx_packets = 0
        self.rx_bytes = 0
        self.keep_packets = keep_packets
        self.on_receive: Callable[[Packet], None] | None = None

    def receive(self, packet: Packet, port: Port) -> None:
        self.rx_packets += 1
        self.rx_bytes += packet.size_bytes
        if self.keep_packets:
            self.received.append((self.sim.now, packet))
        if self.on_receive is not None:
            self.on_receive(packet)
