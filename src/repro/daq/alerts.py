"""Alert streams: Vera Rubin's distribution stream and multi-domain
supernova early warnings (DUNE → optical telescopes).

Two integration-critical flows from the paper:

- Rubin's alert stream "is expected to burst to 5.4 Gbps, and takes
  place alongside the nightly 30 TB capture" (§2.1) and must reach
  researchers "at the time-scale of milliseconds" (§4.1);
- "a supernova burst detected in DUNE would alert Vera Rubin on where
  to expect photons to arrive from — since neutrinos escape the
  collapsing star before photons are emitted" (§3, Req 10). The
  neutrino-to-photon lead time ranges from about a minute to days
  depending on the progenitor.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..netsim.units import MILLISECOND, SECOND, gbps
from .generators import PoissonEvents, SteadyReadout, TrafficProcess

#: Peak rate of the Rubin alert distribution stream (§2.1).
RUBIN_ALERT_BURST_BPS = gbps(5.4)

#: Neutrino→photon lead time bounds (§3): ~1 minute to several days.
SUPERNOVA_LEAD_TIME_MIN_NS = 60 * SECOND
SUPERNOVA_LEAD_TIME_MAX_NS = 3 * 24 * 3600 * SECOND


def rubin_alert_stream(exposure_cadence_s: float = 30.0) -> TrafficProcess:
    """Rubin's alert bursts: each exposure yields a burst of alert
    packets peaking near 5.4 Gb/s for a few milliseconds."""
    alert_bytes = 8192
    burst_messages = 80  # ~0.65 MB per exposure's alert batch
    return PoissonEvents(
        event_rate_hz=1.0 / exposure_cadence_s,
        messages_per_event=burst_messages,
        message_bytes=alert_bytes,
        burst_spacing_ns=(alert_bytes * 8 * SECOND) // RUBIN_ALERT_BURST_BPS,
        kind="alert",
    )


def rubin_nightly_capture(scale: float = 1.0) -> TrafficProcess:
    """The nightly 30 TB capture as a steady transfer (~10 h night)."""
    nightly_bytes = 30e12 * scale
    night_seconds = 10 * 3600
    rate = round(nightly_bytes * 8 / night_seconds)
    return SteadyReadout(rate_bps=max(rate, 1), message_bytes=8192)


@dataclass
class SupernovaAlert:
    """A pointing alert: where and when to look for the photons.

    Compact by design — this is the message that must cross domains in
    milliseconds while the triggering burst data is still being read
    out.
    """

    detection_time_ns: int
    right_ascension_mdeg: int  # millidegrees, keeps the codec integer
    declination_mdeg: int
    confidence_pct: int
    neutrino_count: int

    _FORMAT = ">QiiBxH"
    SIZE = struct.calcsize(_FORMAT)

    def encode(self) -> bytes:
        return struct.pack(
            self._FORMAT,
            self.detection_time_ns,
            self.right_ascension_mdeg,
            self.declination_mdeg,
            self.confidence_pct,
            self.neutrino_count,
        )

    @classmethod
    def decode(cls, data: bytes) -> "SupernovaAlert":
        if len(data) < cls.SIZE:
            raise ValueError(f"truncated supernova alert: {len(data)} bytes")
        t, ra, dec, conf, count = struct.unpack(cls._FORMAT, data[: cls.SIZE])
        return cls(t, ra, dec, conf, count)


@dataclass
class BurstDetector:
    """Online supernova-burst trigger over a neutrino-candidate stream.

    Fires when more than ``threshold`` candidates land inside a sliding
    ``window_ns`` — the standard DUNE SNB trigger shape. Deliberately
    simple: the point is the *latency path* from detection to a
    cross-instrument alert, not trigger physics.
    """

    window_ns: int = 1000 * MILLISECOND
    threshold: int = 20

    def __post_init__(self) -> None:
        self._times: list[int] = []
        self.triggered_at: int | None = None

    def observe(self, time_ns: int) -> bool:
        """Record a candidate; returns True the moment the trigger fires."""
        if self.triggered_at is not None:
            return False
        self._times.append(time_ns)
        cutoff = time_ns - self.window_ns
        while self._times and self._times[0] < cutoff:
            self._times.pop(0)
        if len(self._times) >= self.threshold:
            self.triggered_at = time_ns
            return True
        return False
