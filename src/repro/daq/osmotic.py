"""Osmotic computing: dispersed sensors instead of one big instrument.

§6 challenge 3: "Osmotic computing uses a large number of distributed
sensors [...] Sensors lack a DAQ network — instead they rely on cell
networks and backhaul. We believe that TCP is adequate for these
low-volume streams (over telecom networks), but finding suitable
transport modes would better integrate these sensors with other
research infrastructure."

This module models exactly that boundary:

- :class:`OsmoticSensor` — a small station on a lossy, narrow "cell"
  link, pushing fixed-size readings over **TCP** (adequate at these
  volumes, as the paper argues);
- :class:`OsmoticGateway` — terminates the sensor TCP sessions and
  re-originates *aggregated* readings as MMT messages toward the lab,
  joining the dispersed fleet to the integrated-infrastructure world;
- :func:`build_osmotic_field` — wires a whole fleet.

Measurement note: our TCP model carries counted (virtual) payload
bytes, so reading *timestamps* ride a per-sensor FIFO registry shared
between sensor and gateway inside the simulation — pure measurement
instrumentation standing in for bytes the real stream would carry.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field

from ..baselines.tcp import TcpConfig, TcpStack
from ..baselines.tuning import untuned
from ..core.endpoint import MmtSender, MmtStack
from ..core.header import make_experiment_id
from ..netsim.engine import Simulator, Timer
from ..netsim.topology import Topology
from ..netsim.units import MBPS, MILLISECOND, SECOND

#: One reading on the wire: sensor id, sequence, timestamp, value.
READING_BYTES = struct.calcsize(">HIQi")

GATEWAY_PORT = 7100
OSMOTIC_EXPERIMENT = 60


@dataclass
class SensorStats:
    """Per-sensor counters."""
    readings_sent: int = 0


class OsmoticSensor:
    """A dispersed station pushing readings over TCP."""

    def __init__(
        self,
        sim: Simulator,
        sensor_id: int,
        tcp: TcpStack,
        gateway_ip: str,
        interval_ns: int,
        registry: deque,
        tcp_config: TcpConfig | None = None,
    ) -> None:
        self.sim = sim
        self.sensor_id = sensor_id
        self.interval_ns = interval_ns
        self.stats = SensorStats()
        self._registry = registry
        self._conn = tcp.connect(gateway_ip, GATEWAY_PORT, config=tcp_config or untuned())
        self._timer = Timer(sim, self._tick)
        self._remaining = 0

    def start(self, readings: int) -> None:
        """Emit ``readings`` samples, one per interval."""
        self._remaining = readings
        self._timer.start(self.interval_ns)

    def _tick(self) -> None:
        if self._remaining <= 0:
            return
        self._remaining -= 1
        self._registry.append(self.sim.now)
        self._conn.send_message(READING_BYTES)
        self.stats.readings_sent += 1
        if self._remaining > 0:
            self._timer.start(self.interval_ns)


@dataclass
class GatewayStats:
    """Gateway-side counters and latency samples."""
    readings_received: int = 0
    batches_forwarded: int = 0
    #: Sensor-origination → gateway-arrival latency samples (ns).
    ingest_latencies_ns: list[int] = field(default_factory=list)


class OsmoticGateway:
    """Terminates sensor TCP sessions; re-originates aggregated MMT."""

    def __init__(
        self,
        sim: Simulator,
        tcp: TcpStack,
        mmt_sender: MmtSender,
        batch_size: int = 32,
        tcp_config: TcpConfig | None = None,
    ) -> None:
        self.sim = sim
        self.batch_size = batch_size
        self.stats = GatewayStats()
        self.sender = mmt_sender
        self._pending = 0
        self._oldest_ns: int | None = None
        #: (sensor ip, sensor port) → that sensor's timestamp FIFO.
        self._registries: dict[tuple[str, int], deque] = {}
        tcp.listen(GATEWAY_PORT, config=tcp_config or untuned(),
                   on_connection=self._accept)
        self._per_conn_delivered: dict[int, int] = {}

    def register_sensor(self, sensor_ip: str, sensor_port: int, registry: deque) -> None:
        self._registries[(sensor_ip, sensor_port)] = registry

    def _accept(self, conn) -> None:
        conn_id = id(conn)
        self._per_conn_delivered[conn_id] = 0

        def on_delivered(_nbytes: int, total: int, conn_id=conn_id, conn=conn) -> None:
            while self._per_conn_delivered[conn_id] + READING_BYTES <= total:
                self._per_conn_delivered[conn_id] += READING_BYTES
                self._ingest(conn)

        conn.on_delivered = on_delivered

    def _ingest(self, conn) -> None:
        self.stats.readings_received += 1
        origin = self._pop_origin(conn)
        if origin is not None:
            self.stats.ingest_latencies_ns.append(self.sim.now - origin)
            if self._oldest_ns is None:
                self._oldest_ns = origin
        self._pending += 1
        if self._pending >= self.batch_size:
            self.flush()

    def _pop_origin(self, conn) -> int | None:
        # The server-side connection names the sensor via its remote
        # address; TCP preserves order, so FIFO pop matches delivery.
        registry = self._registries.get((conn.remote_ip, conn.remote_port))
        if registry:
            return registry.popleft()
        return None

    def flush(self) -> None:
        """Forward the current batch as one MMT message."""
        if self._pending == 0:
            return
        payload_size = 24 + self._pending * READING_BYTES  # DAQ header + readings
        meta = {}
        if self._oldest_ns is not None:
            meta["sent_at"] = self._oldest_ns
        self.sender.send(payload_size, meta=meta)
        self.stats.batches_forwarded += 1
        self._pending = 0
        self._oldest_ns = None


@dataclass
class OsmoticField:
    """A built fleet: gateway, sensors, and the lab-side receiver."""

    sim: Simulator
    topology: Topology
    gateway: OsmoticGateway
    sensors: list[OsmoticSensor]
    lab_received: list[tuple[int, int]]  # (arrival, payload size)

    def start(self, readings_per_sensor: int) -> None:
        for sensor in self.sensors:
            sensor.start(readings_per_sensor)

    def run(self) -> None:
        self.sim.run()
        self.gateway.flush()
        self.sim.run()

    @property
    def total_sent(self) -> int:
        return sum(s.stats.readings_sent for s in self.sensors)


def build_osmotic_field(
    sim: Simulator,
    sensors: int = 20,
    cell_rate_bps: int = 10 * MBPS,
    cell_delay_ns: int = 30 * MILLISECOND,
    cell_loss: float = 0.01,
    reading_interval_ns: int = 100 * MILLISECOND,
    batch_size: int = 32,
) -> OsmoticField:
    """Wire a sensor fleet → gateway → lab and return the harness."""
    topo = Topology(sim)
    gateway_host = topo.add_host("gateway", ip="10.50.0.1")
    lab = topo.add_host("lab", ip="10.60.0.1")
    cell_tower = topo.add_router("cell-tower")
    topo.connect(cell_tower, gateway_host, 1000 * MBPS, MILLISECOND)
    topo.connect(gateway_host, lab, 10_000 * MBPS, 5 * MILLISECOND)

    gateway_tcp = TcpStack(gateway_host)
    gateway_mmt = MmtStack(gateway_host)
    lab_mmt = MmtStack(lab)
    lab_received: list[tuple[int, int]] = []
    lab_mmt.bind_receiver(
        OSMOTIC_EXPERIMENT,
        on_message=lambda p, h: lab_received.append((sim.now, p.payload_size)),
    )
    gateway_mmt.attach_buffer(64 * 1024 * 1024)
    mmt_sender = gateway_mmt.create_sender(
        experiment_id=make_experiment_id(OSMOTIC_EXPERIMENT),
        mode="age-recover",
        dst_ip=lab.ip,
        age_budget_ns=SECOND,
        buffer_local=True,
        flow="osmotic",
    )
    gateway = OsmoticGateway(sim, gateway_tcp, mmt_sender, batch_size=batch_size)

    # Wire every station before installing routes — the TCP handshakes
    # start the moment a sensor is constructed, so routes must exist.
    sensor_hosts = []
    for i in range(sensors):
        host = topo.add_host(f"sensor{i}")
        topo.connect(
            host, cell_tower, cell_rate_bps, cell_delay_ns, loss_rate=cell_loss,
            mtu_bytes=1500,
        )
        sensor_hosts.append(host)
    topo.install_routes()

    fleet: list[OsmoticSensor] = []
    for i, host in enumerate(sensor_hosts):
        registry: deque = deque()
        sensor_tcp = TcpStack(host)
        sensor = OsmoticSensor(
            sim, i, sensor_tcp, gateway_host.ip, reading_interval_ns, registry
        )
        gateway.register_sensor(host.ip, sensor._conn.local_port, registry)
        fleet.append(sensor)
    return OsmoticField(
        sim=sim, topology=topo, gateway=gateway, sensors=fleet, lab_received=lab_received
    )
