"""DAQ workload generators.

Two layers:

- **traffic processes** (:class:`TrafficProcess` subclasses) generate
  the *timing and sizing* of DAQ messages: steady full-stream readout,
  Poisson physics events (cosmics, radiologicals), accelerator beam
  spills, and supernova bursts. These reproduce the statistical shape
  of "elephant flows with a regular shape (size and arrival rate)"
  (§1) plus the rare trigger-correlated bursts DUNE cares about.
- **payload synthesis** (:class:`LArTpcWaveformSynth`) produces
  byte-real LArTPC frames — pedestal + Gaussian electronics noise +
  drifting-charge pulses packed as 14-bit ADC counts — standing in for
  the ICEBERG samples used by the pilot (§5.4).

A :class:`DaqStreamSource` pumps a process into any send callable
inside a simulation, scheduling messages one at a time (pull-based, so
multi-million-message runs do not preload the event queue).
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..netsim.engine import Simulator
from ..netsim.units import SECOND
from .formats import (
    DaqFrameHeader,
    PayloadKind,
    WIB_ADC_BITS,
    WIB_CHANNELS,
    WibFrame,
    frame_message,
)


@dataclass(frozen=True)
class DaqMessage:
    """One DAQ message: when it leaves the sensor, and how big it is."""

    time_ns: int
    size_bytes: int
    kind: str = "readout"


class TrafficProcess:
    """Base: yields :class:`DaqMessage` in non-decreasing time order."""

    def generate(self, duration_ns: int, rng: random.Random) -> Iterator[DaqMessage]:
        raise NotImplementedError

    def expected_rate_bps(self) -> float:
        """Long-run average offered load (bits/s), for capacity planning."""
        raise NotImplementedError


class SteadyReadout(TrafficProcess):
    """Continuous full-stream readout at a fixed rate (the elephant).

    Deterministic inter-message spacing: DAQ readout is clock-driven,
    not bursty — "a maximum number of events would be expected to be
    observed in a given time window" (§2).
    """

    def __init__(self, rate_bps: int, message_bytes: int) -> None:
        if rate_bps <= 0 or message_bytes <= 0:
            raise ValueError("rate and message size must be positive")
        self.rate_bps = rate_bps
        self.message_bytes = message_bytes
        self.interval_ns = max(1, (message_bytes * 8 * SECOND) // rate_bps)

    def generate(self, duration_ns: int, rng: random.Random) -> Iterator[DaqMessage]:
        t = 0
        while t < duration_ns:
            yield DaqMessage(time_ns=t, size_bytes=self.message_bytes)
            t += self.interval_ns

    def expected_rate_bps(self) -> float:
        return self.message_bytes * 8 * SECOND / self.interval_ns


class PoissonEvents(TrafficProcess):
    """Physics events arriving as a Poisson process.

    Each event (a cosmic-ray track, a radiological decay) triggers a
    short burst of ``messages_per_event`` back-to-back messages.
    """

    def __init__(
        self,
        event_rate_hz: float,
        messages_per_event: int,
        message_bytes: int,
        burst_spacing_ns: int = 1_000,
        kind: str = "event",
    ) -> None:
        if event_rate_hz <= 0:
            raise ValueError("event rate must be positive")
        self.event_rate_hz = event_rate_hz
        self.messages_per_event = messages_per_event
        self.message_bytes = message_bytes
        self.burst_spacing_ns = burst_spacing_ns
        self.kind = kind

    def generate(self, duration_ns: int, rng: random.Random) -> Iterator[DaqMessage]:
        t = 0.0
        mean_gap_ns = SECOND / self.event_rate_hz
        while True:
            t += rng.expovariate(1.0) * mean_gap_ns
            if t >= duration_ns:
                return
            base = int(t)
            for i in range(self.messages_per_event):
                yield DaqMessage(
                    time_ns=base + i * self.burst_spacing_ns,
                    size_bytes=self.message_bytes,
                    kind=self.kind,
                )

    def expected_rate_bps(self) -> float:
        return (
            self.event_rate_hz * self.messages_per_event * self.message_bytes * 8
        )


class BeamSpill(TrafficProcess):
    """Accelerator-driven readout: periodic spills of intense data.

    Models experiments like Mu2e/CMS where the accelerator delivers
    beam in a fixed supercycle; during the spill the detector reads out
    at ``spill_rate_bps``, between spills only ``idle_rate_bps``.
    """

    def __init__(
        self,
        period_ns: int,
        spill_duration_ns: int,
        spill_rate_bps: int,
        message_bytes: int,
        idle_rate_bps: int = 0,
    ) -> None:
        if spill_duration_ns > period_ns:
            raise ValueError("spill cannot be longer than its period")
        self.period_ns = period_ns
        self.spill_duration_ns = spill_duration_ns
        self.spill_rate_bps = spill_rate_bps
        self.idle_rate_bps = idle_rate_bps
        self.message_bytes = message_bytes

    def generate(self, duration_ns: int, rng: random.Random) -> Iterator[DaqMessage]:
        message_bits = self.message_bytes * 8
        spill_gap = max(1, (message_bits * SECOND) // self.spill_rate_bps)
        idle_gap = (
            max(1, (message_bits * SECOND) // self.idle_rate_bps)
            if self.idle_rate_bps
            else None
        )
        t = 0
        while t < duration_ns:
            phase = t % self.period_ns
            in_spill = phase < self.spill_duration_ns
            if in_spill:
                yield DaqMessage(time_ns=t, size_bytes=self.message_bytes, kind="spill")
                t += spill_gap
            elif idle_gap is not None:
                yield DaqMessage(time_ns=t, size_bytes=self.message_bytes, kind="idle")
                t += min(idle_gap, self.period_ns - phase)
            else:
                t += self.period_ns - phase

    def expected_rate_bps(self) -> float:
        duty = self.spill_duration_ns / self.period_ns
        return self.spill_rate_bps * duty + self.idle_rate_bps * (1 - duty)


class SupernovaBurst(TrafficProcess):
    """A supernova burst trigger: sustained full-rate readout window.

    When DUNE sees a neutrino burst it records the *entire* detector
    stream for an extended window — the integration driver of §3
    (Req 10): this data must move promptly because it also steers
    other instruments.
    """

    def __init__(
        self,
        start_ns: int,
        burst_duration_ns: int,
        burst_rate_bps: int,
        message_bytes: int,
    ) -> None:
        self.start_ns = start_ns
        self.burst_duration_ns = burst_duration_ns
        self.burst_rate_bps = burst_rate_bps
        self.message_bytes = message_bytes

    def generate(self, duration_ns: int, rng: random.Random) -> Iterator[DaqMessage]:
        gap = max(1, (self.message_bytes * 8 * SECOND) // self.burst_rate_bps)
        t = self.start_ns
        end = min(self.start_ns + self.burst_duration_ns, duration_ns)
        while t < end:
            yield DaqMessage(time_ns=t, size_bytes=self.message_bytes, kind="snb")
            t += gap

    def expected_rate_bps(self) -> float:
        # Long-run average over the generation window is scenario
        # dependent; report the in-burst rate.
        return float(self.burst_rate_bps)


class CompositeProcess(TrafficProcess):
    """Time-merge of several processes (e.g. steady readout + cosmics)."""

    def __init__(self, processes: list[TrafficProcess]) -> None:
        if not processes:
            raise ValueError("need at least one process")
        self.processes = processes

    def generate(self, duration_ns: int, rng: random.Random) -> Iterator[DaqMessage]:
        # Give each sub-process an independent but derived RNG so the
        # composite stays deterministic regardless of interleaving.
        streams = [
            p.generate(duration_ns, random.Random(rng.random()))
            for p in self.processes
        ]
        return heapq.merge(*streams, key=lambda m: m.time_ns)

    def expected_rate_bps(self) -> float:
        return sum(p.expected_rate_bps() for p in self.processes)


# ---------------------------------------------------------------------------
# Payload synthesis
# ---------------------------------------------------------------------------


class LArTpcWaveformSynth:
    """Synthesizes byte-real LArTPC WIB frames.

    Channels idle at a pedestal with Gaussian electronics noise; a
    physics "hit" adds a bipolar drift pulse across a few neighboring
    channels — the classic induction-wire signature. The output packs
    into 14-bit ADC counts exactly like :class:`WibFrame` expects.
    """

    def __init__(
        self,
        pedestal: int = 2300,
        noise_rms: float = 4.0,
        pulse_amplitude: int = 600,
        seed: int = 0,
    ) -> None:
        if not 0 < pedestal < (1 << WIB_ADC_BITS):
            raise ValueError("pedestal outside ADC range")
        self.pedestal = pedestal
        self.noise_rms = noise_rms
        self.pulse_amplitude = pulse_amplitude
        self._rng = np.random.default_rng(seed)

    def adc_samples(self, hits: int = 0) -> np.ndarray:
        """One time-slice of ADC counts across all WIB channels."""
        samples = self._rng.normal(self.pedestal, self.noise_rms, WIB_CHANNELS)
        for _ in range(hits):
            center = int(self._rng.integers(2, WIB_CHANNELS - 2))
            spread = self._rng.normal(0, 1.0, 5)
            kernel = self.pulse_amplitude * np.array([0.2, 0.6, 1.0, 0.6, 0.2])
            samples[center - 2 : center + 3] += kernel + spread
        return np.clip(np.rint(samples), 0, (1 << WIB_ADC_BITS) - 1).astype(np.int64)

    def frame(
        self, timestamp_ticks: int, crate: int = 0, slot: int = 0, fiber: int = 0, hits: int = 0
    ) -> WibFrame:
        counts = tuple(int(v) for v in self.adc_samples(hits=hits))
        return WibFrame(
            crate=crate, slot=slot, fiber=fiber, timestamp_ticks=timestamp_ticks, adc_counts=counts
        )

    def message(
        self,
        detector_id: int,
        slice_id: int,
        timestamp_ticks: int,
        run_number: int = 1,
        hits: int = 0,
    ) -> bytes:
        """A full DAQ message: top-level header + WIB frame payload."""
        payload = self.frame(timestamp_ticks, hits=hits).encode()
        header = DaqFrameHeader(
            detector_id=detector_id,
            slice_id=slice_id,
            timestamp_ticks=timestamp_ticks,
            run_number=run_number,
            payload_kind=PayloadKind.WIB_FRAME,
            payload_bytes=len(payload),
        )
        return frame_message(header, payload)


# ---------------------------------------------------------------------------
# Driving a simulation
# ---------------------------------------------------------------------------


SendFn = Callable[[int, bytes | None, str], None]


class DaqStreamSource:
    """Pumps a traffic process into a simulation, one message at a time.

    ``send(size_bytes, payload, kind)`` is invoked at each message's
    scheduled instant. Messages are scheduled lazily (pull-based), so
    arbitrarily long runs keep the event queue small.
    """

    def __init__(
        self,
        sim: Simulator,
        process: TrafficProcess,
        send: SendFn,
        duration_ns: int,
        payload_factory: Callable[[DaqMessage], bytes] | None = None,
        rng_name: str = "daq-source",
        on_complete: Callable[[], None] | None = None,
    ) -> None:
        self.sim = sim
        self.process = process
        self.send = send
        self.duration_ns = duration_ns
        self.payload_factory = payload_factory
        self.on_complete = on_complete
        self.messages_emitted = 0
        self.bytes_emitted = 0
        self._iterator: Iterator[DaqMessage] | None = None
        self._rng = sim.rng(rng_name)

    def start(self, at_ns: int = 0) -> None:
        """Begin emitting at absolute time ``at_ns``."""
        self._iterator = self.process.generate(self.duration_ns, self._rng)
        self._origin = at_ns
        self._advance()

    def _advance(self) -> None:
        assert self._iterator is not None
        try:
            message = next(self._iterator)
        except StopIteration:
            if self.on_complete is not None:
                self.on_complete()
            return
        self.sim.schedule_at(
            max(self.sim.now, self._origin + message.time_ns), self._emit, message
        )

    def _emit(self, message: DaqMessage) -> None:
        payload = self.payload_factory(message) if self.payload_factory else None
        self.send(message.size_bytes, payload, message.kind)
        self.messages_emitted += 1
        self.bytes_emitted += message.size_bytes
        self._advance()


def plan_capacity(process: TrafficProcess, headroom: float = 1.2) -> int:
    """Capacity-plan a link for a process (paper: DAQ demands "can be
    planned in advance", §4.2). Returns bits/s with headroom."""
    return math.ceil(process.expected_rate_bps() * headroom)
