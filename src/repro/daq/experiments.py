"""The experiment catalog of Table 1.

Each entry records an experiment's published DAQ rate and enough shape
information (message size, traffic pattern) to instantiate a workload
generator at full scale or at a laptop-friendly scale factor.

==============  =========  =====================================
Experiment      DAQ rate   character
==============  =========  =====================================
CMS L1 Trigger  63 Tbps    accelerator-driven, 40 MHz bunch clock
DUNE            120 Tbps   steady LArTPC readout + rare bursts
ECCE detector   100 Tbps   collider detector (EIC)
Mu2e            160 Gbps   spill-structured, raw over Ethernet
Vera Rubin      400 Gbps   exposure cadence + alert bursts
==============  =========  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.units import MILLISECOND, SECOND, gbps, tbps
from .generators import (
    BeamSpill,
    CompositeProcess,
    PoissonEvents,
    SteadyReadout,
    TrafficProcess,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One row of Table 1, plus generator shape parameters."""

    name: str
    experiment_number: int
    daq_rate_bps: int
    #: Typical DAQ message size on the wire (jumbo-frame fitted, §2.1).
    message_bytes: int
    #: "steady", "spill", or "cadence" — which generator shape fits.
    pattern: str
    description: str

    def workload(self, scale: float = 1.0) -> TrafficProcess:
        """Build a traffic process offering ``scale`` × the DAQ rate.

        ``scale < 1`` produces a rate-accurate *shape* at tractable
        volume — the standard simulation substitution for multi-Tbps
        hardware (documented in DESIGN.md).
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        rate = max(1, round(self.daq_rate_bps * scale))
        if self.pattern == "spill":
            # Mu2e-like: ~43% duty cycle spills on a 1.4 s supercycle.
            return BeamSpill(
                period_ns=1_400 * MILLISECOND,
                spill_duration_ns=600 * MILLISECOND,
                spill_rate_bps=round(rate / 0.43),
                message_bytes=self.message_bytes,
            )
        if self.pattern == "cadence":
            # Rubin-like: steady exposure readout plus alert bursts.
            steady = SteadyReadout(rate_bps=round(rate * 0.98), message_bytes=self.message_bytes)
            alerts = PoissonEvents(
                event_rate_hz=1.0 / 30.0,  # a 30 s exposure cadence
                messages_per_event=50,
                message_bytes=self.message_bytes,
                kind="alert",
            )
            return CompositeProcess([steady, alerts])
        return SteadyReadout(rate_bps=rate, message_bytes=self.message_bytes)


CMS_L1 = ExperimentSpec(
    name="CMS L1 Trigger",
    experiment_number=1,
    daq_rate_bps=tbps(63),
    message_bytes=8192,
    pattern="steady",
    description="High-energy physics; 40 MHz collision-synchronous trigger stream.",
)

DUNE = ExperimentSpec(
    name="DUNE",
    experiment_number=2,
    daq_rate_bps=tbps(120),
    message_bytes=8192,
    pattern="steady",
    description="LArTPC far detector; beam, solar, cosmic, and supernova sources.",
)

ECCE = ExperimentSpec(
    name="ECCE detector",
    experiment_number=3,
    daq_rate_bps=tbps(100),
    message_bytes=8192,
    pattern="steady",
    description="Electron-Ion Collider detector.",
)

MU2E = ExperimentSpec(
    name="Mu2e",
    experiment_number=4,
    daq_rate_bps=gbps(160),
    message_bytes=4096,
    pattern="spill",
    description="Muon-to-electron conversion; spill-structured, raw Ethernet DAQ.",
)

VERA_RUBIN = ExperimentSpec(
    name="Vera Rubin",
    experiment_number=5,
    daq_rate_bps=gbps(400),
    message_bytes=8192,
    pattern="cadence",
    description="Survey telescope; 30 TB/night captures plus 5.4 Gb/s alert bursts.",
)


def catalog() -> list[ExperimentSpec]:
    """All Table 1 experiments, in the paper's row order."""
    return [CMS_L1, DUNE, ECCE, MU2E, VERA_RUBIN]


def by_name(name: str) -> ExperimentSpec:
    """Look up a catalog entry by its (case-insensitive) name."""
    for spec in catalog():
        if spec.name.lower() == name.lower():
            return spec
    raise KeyError(f"unknown experiment {name!r}")


#: Offered-load window a rate measurement needs to converge within 1%
#: for the largest catalog message size.
MIN_MEASUREMENT_WINDOW_NS = SECOND // 100
