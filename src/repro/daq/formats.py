"""DAQ data formats: a shared top-level header plus per-detector frames.

Req 9 of the paper: "Large instruments can also require reusability
across their components — for example, DUNE's four detectors each have
specific headers but they all share a top-level DAQ header." This
module models exactly that: :class:`DaqFrameHeader` is the shared
top-level header, and detector-specific frame layouts (a DUNE WIB-like
frame, a Mu2e-like packet) nest under it.

These are *payload* formats: the network never parses them (MMT does
header-only processing); endpoints and analysis code do.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum


class FormatError(ValueError):
    """Raised on malformed DAQ frames."""


class PayloadKind(IntEnum):
    """What the bytes after the top-level DAQ header contain."""

    RAW_ADC = 0
    WIB_FRAME = 1
    MU2E_PACKET = 2
    ALERT = 3
    TRIGGER_PRIMITIVE = 4


@dataclass
class DaqFrameHeader:
    """The shared top-level DAQ header (24 bytes).

    Fields every experiment needs: which detector and slice produced
    the data, when (a 64-bit sampling-clock timestamp), a run number,
    and the nested payload kind.
    """

    detector_id: int
    slice_id: int
    timestamp_ticks: int
    run_number: int
    payload_kind: PayloadKind
    payload_bytes: int

    _FORMAT = ">HHQIBxH4x"
    SIZE = struct.calcsize(_FORMAT)

    def encode(self) -> bytes:
        if not 0 <= self.payload_bytes <= 0xFFFF:
            raise FormatError(f"payload_bytes out of range: {self.payload_bytes}")
        return struct.pack(
            self._FORMAT,
            self.detector_id,
            self.slice_id,
            self.timestamp_ticks,
            self.run_number,
            int(self.payload_kind),
            self.payload_bytes,
        )

    @classmethod
    def decode(cls, data: bytes) -> "DaqFrameHeader":
        if len(data) < cls.SIZE:
            raise FormatError(f"truncated DAQ header: {len(data)} bytes")
        detector, slice_id, ts, run, kind, payload_bytes = struct.unpack(
            cls._FORMAT, data[: cls.SIZE]
        )
        return cls(detector, slice_id, ts, run, PayloadKind(kind), payload_bytes)


#: DUNE's WIB (Warm Interface Board) streams fixed-size frames clocked
#: at ~2 MHz; a frame carries 256 channels of 14-bit ADC samples. The
#: real WIB2 frame is 468 bytes of channel data plus framing; we keep
#: the same order of magnitude with an explicit layout.
WIB_CHANNELS = 256
WIB_ADC_BITS = 14
WIB_SAMPLES_PER_FRAME = 1
WIB_DATA_BYTES = (WIB_CHANNELS * WIB_ADC_BITS * WIB_SAMPLES_PER_FRAME + 7) // 8  # 448


@dataclass
class WibFrame:
    """A DUNE WIB-like frame: crate/slot/fiber addressing + packed ADCs."""

    crate: int
    slot: int
    fiber: int
    timestamp_ticks: int
    adc_counts: tuple[int, ...]  # WIB_CHANNELS values, each < 2**14

    _HEADER_FORMAT = ">BBBxQ4x"
    HEADER_SIZE = struct.calcsize(_HEADER_FORMAT)
    SIZE = HEADER_SIZE + WIB_DATA_BYTES

    def encode(self) -> bytes:
        if len(self.adc_counts) != WIB_CHANNELS:
            raise FormatError(
                f"WIB frame needs {WIB_CHANNELS} channels, got {len(self.adc_counts)}"
            )
        out = bytearray(
            struct.pack(
                self._HEADER_FORMAT, self.crate, self.slot, self.fiber, self.timestamp_ticks
            )
        )
        # Pack 14-bit ADC counts into a continuous bitstream, MSB first.
        accumulator = 0
        bits = 0
        for count in self.adc_counts:
            if not 0 <= count < (1 << WIB_ADC_BITS):
                raise FormatError(f"ADC count out of range: {count}")
            accumulator = (accumulator << WIB_ADC_BITS) | count
            bits += WIB_ADC_BITS
            while bits >= 8:
                bits -= 8
                out.append((accumulator >> bits) & 0xFF)
        if bits:
            out.append((accumulator << (8 - bits)) & 0xFF)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "WibFrame":
        if len(data) < cls.SIZE:
            raise FormatError(f"truncated WIB frame: {len(data)} bytes")
        crate, slot, fiber, timestamp = struct.unpack(
            cls._HEADER_FORMAT, data[: cls.HEADER_SIZE]
        )
        counts = []
        accumulator = 0
        bits = 0
        offset = cls.HEADER_SIZE
        while len(counts) < WIB_CHANNELS:
            accumulator = (accumulator << 8) | data[offset]
            offset += 1
            bits += 8
            if bits >= WIB_ADC_BITS:
                bits -= WIB_ADC_BITS
                counts.append((accumulator >> bits) & ((1 << WIB_ADC_BITS) - 1))
                accumulator &= (1 << bits) - 1
        return cls(crate, slot, fiber, timestamp, tuple(counts))


@dataclass
class Mu2ePacket:
    """A Mu2e-like data packet: a 16-byte header and an opaque body.

    Mu2e carries DAQ data directly over Ethernet frames (§4); its DTC
    packets are small fixed-header units with ROC payloads.
    """

    roc_id: int
    packet_type: int
    timestamp_ticks: int
    body: bytes

    _HEADER_FORMAT = ">BBHQ I"
    HEADER_SIZE = struct.calcsize(_HEADER_FORMAT)

    def encode(self) -> bytes:
        return (
            struct.pack(
                self._HEADER_FORMAT,
                self.roc_id,
                self.packet_type,
                len(self.body),
                self.timestamp_ticks,
                0,
            )
            + self.body
        )

    @classmethod
    def decode(cls, data: bytes) -> "Mu2ePacket":
        if len(data) < cls.HEADER_SIZE:
            raise FormatError(f"truncated Mu2e packet: {len(data)} bytes")
        roc, ptype, body_len, timestamp, _reserved = struct.unpack(
            cls._HEADER_FORMAT, data[: cls.HEADER_SIZE]
        )
        body = data[cls.HEADER_SIZE : cls.HEADER_SIZE + body_len]
        if len(body) != body_len:
            raise FormatError("Mu2e packet body shorter than declared")
        return cls(roc, ptype, timestamp, body)


def frame_message(header: DaqFrameHeader, payload: bytes) -> bytes:
    """Assemble a full DAQ message: top-level header + detector payload."""
    header.payload_bytes = len(payload)
    return header.encode() + payload


def parse_message(data: bytes) -> tuple[DaqFrameHeader, bytes]:
    """Split a DAQ message into (top-level header, detector payload)."""
    header = DaqFrameHeader.decode(data)
    payload = data[DaqFrameHeader.SIZE : DaqFrameHeader.SIZE + header.payload_bytes]
    if len(payload) != header.payload_bytes:
        raise FormatError("DAQ message shorter than header declares")
    return header, payload
