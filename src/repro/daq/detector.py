"""Detector and instrument-partitioning models.

An :class:`Instrument` describes a physical detector's readout: how
many channels, sampled how fast, at what ADC depth — which fixes its
raw DAQ rate ("The DAQ rate is based on the precision of the
instrument's sensors, the frequency and precision of the
analogue-to-digital conversion", §2). Instruments can be partitioned
into :class:`InstrumentSlice` s for simultaneous independent
experiments (Req 8); each slice maps to a distinct MMT slice id.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class DetectorError(ValueError):
    """Raised for inconsistent instrument definitions."""


@dataclass(frozen=True)
class ReadoutSpec:
    """Electronics parameters that fix an instrument's raw data rate."""

    channels: int
    sample_rate_hz: int
    adc_bits: int
    #: Framing/metadata overhead as a fraction of raw ADC volume.
    framing_overhead: float = 0.05

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.sample_rate_hz <= 0 or self.adc_bits <= 0:
            raise DetectorError("channels, sample rate, and ADC bits must be positive")
        if self.framing_overhead < 0:
            raise DetectorError("framing overhead cannot be negative")

    @property
    def raw_rate_bps(self) -> int:
        """Raw digitization rate in bits per second (before framing)."""
        return self.channels * self.sample_rate_hz * self.adc_bits

    @property
    def wire_rate_bps(self) -> int:
        """Rate including framing overhead — what the DAQ network carries."""
        return round(self.raw_rate_bps * (1.0 + self.framing_overhead))


@dataclass
class InstrumentSlice:
    """A partition of an instrument assigned to one experiment run."""

    slice_id: int
    name: str
    channel_lo: int
    channel_hi: int  # exclusive

    @property
    def channels(self) -> int:
        return self.channel_hi - self.channel_lo


@dataclass
class Instrument:
    """A physical instrument with a readout spec and optional slicing."""

    name: str
    detector_id: int
    readout: ReadoutSpec
    slices: list[InstrumentSlice] = field(default_factory=list)

    def partition(self, names: list[str]) -> list[InstrumentSlice]:
        """Split the channel range evenly into named slices (Req 8)."""
        if not names:
            raise DetectorError("need at least one slice name")
        if self.slices:
            raise DetectorError(f"{self.name} is already partitioned")
        channels = self.readout.channels
        if channels < len(names):
            raise DetectorError("more slices than channels")
        per_slice = channels // len(names)
        slices = []
        for i, slice_name in enumerate(names):
            lo = i * per_slice
            hi = channels if i == len(names) - 1 else lo + per_slice
            slices.append(InstrumentSlice(slice_id=i, name=slice_name, channel_lo=lo, channel_hi=hi))
        self.slices = slices
        return slices

    def slice_rate_bps(self, slice_id: int) -> int:
        """The wire rate attributable to one slice."""
        if not self.slices:
            raise DetectorError(f"{self.name} is not partitioned")
        target = next((s for s in self.slices if s.slice_id == slice_id), None)
        if target is None:
            raise DetectorError(f"no slice {slice_id} in {self.name}")
        fraction = target.channels / self.readout.channels
        return round(self.readout.wire_rate_bps * fraction)

    @property
    def wire_rate_bps(self) -> int:
        return self.readout.wire_rate_bps


def dune_far_detector_module() -> Instrument:
    """One DUNE far-detector module, LArTPC readout.

    ~384k channels at 2 MHz, 14-bit ADCs → ~10.7 Tbps raw; four modules
    plus photon systems take the experiment to the ~120 Tbps of
    Table 1.
    """
    return Instrument(
        name="DUNE-FD1",
        detector_id=1,
        readout=ReadoutSpec(channels=384_000, sample_rate_hz=2_000_000, adc_bits=14),
    )


def iceberg_prototype() -> Instrument:
    """The ICEBERG LArTPC test stand used as pilot data source (§5.4).

    ICEBERG reads ~1280 wires with DUNE cold electronics at 2 MHz.
    """
    return Instrument(
        name="ICEBERG",
        detector_id=7,
        readout=ReadoutSpec(channels=1_280, sample_rate_hz=2_000_000, adc_bits=14),
    )
