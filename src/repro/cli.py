"""Command-line interface: run the paper's experiments from a shell.

Installed as the ``repro`` console script::

    repro catalog                         # Table 1
    repro pilot --loss 0.01 --wan-ms 10   # the Fig. 4 pilot study
    repro pilot --telemetry out.jsonl     # ... with a telemetry snapshot
    repro compare --loss 0.001            # Fig. 2 vs Fig. 3 head-to-head
    repro supernova                       # DUNE -> Rubin early warning
    repro header                          # per-mode wire-format costs
    repro telemetry out.jsonl             # render a snapshot as tables
    repro bench                           # perf microbenchmarks (events/s, packets/s)
    repro chaos --scenario link-flap      # pilot under fault injection
    repro soak --ci                       # ~60 s simulated endurance smoke
    repro soak                            # the full one-hour endurance soak
    repro incast --grid small             # Fig. 2 incast FCT head-to-head
    repro pilot --trace trace.jsonl       # ... with the causal flight recorder on
    repro trace --timeline 10752:0:7      # one packet's root-cause timeline
    repro trace --chrome trace.json       # Perfetto-loadable export

Every subcommand prints the same tables the benchmark suite produces,
so quick shell exploration and recorded experiments stay consistent.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from .analysis import ResultTable, format_duration, format_rate, percentile
from .core import MmtHeader, TransitionContext, extended_registry, transition
from .daq import catalog
from .dataplane import PilotConfig, PilotTestbed
from .integration import SupernovaConfig, compare as supernova_compare, jain_fairness
from .netsim import Simulator
from .netsim.units import MILLISECOND
from .telemetry import (
    TelemetryError,
    quantile_from_buckets,
    read_snapshots,
    write_snapshot,
)
from .wan import MultimodalScenario, ScenarioConfig, TodayScenario


def _cmd_catalog(_args: argparse.Namespace) -> int:
    table = ResultTable(
        "Table 1 — DAQ rates of large instruments",
        ["Experiment", "DAQ rate", "Pattern", "Description"],
    )
    for spec in catalog():
        table.add_row(
            spec.name, format_rate(spec.daq_rate_bps), spec.pattern, spec.description
        )
    table.show()
    return 0


def _pilot_sample_every_ns(args: argparse.Namespace) -> int | None:
    """Validate the observability flag combination; ns period or None.

    Raises ``ValueError`` when a dependent flag is given without
    ``--sample-every`` (there would be no sampler to feed it).
    """
    sample_every_ns = (
        round(args.sample_every * 1000) if args.sample_every else None
    )
    if sample_every_ns is None:
        for flag in ("slo", "series", "chrome"):
            if getattr(args, flag):
                raise ValueError(f"--{flag} requires --sample-every")
    return sample_every_ns


def _build_watchdog(args: argparse.Namespace, sampler, tracer):
    """A watchdog over the run's sampler, or None without ``--slo``."""
    if not args.slo:
        return None
    from .obs import Watchdog

    return Watchdog(args.slo, sampler=sampler, tracer=tracer)


def _finish_obs(
    args: argparse.Namespace, sampler, tracer, watchdog, scenario: str
) -> bool:
    """Write series/Chrome/health artifacts; True when every SLO held."""
    if sampler is None:
        return True
    from .obs import counter_tracks, write_series

    print(
        f"\nsampler: {len(sampler)} series, {sampler.ticks} ticks, "
        f"{sampler.sample_emits} samples"
    )
    if args.series is not None:
        count = write_series(
            sampler, args.series, meta={"scenario": scenario, "seed": args.seed}
        )
        print(f"series: {count} series -> {args.series}")
    if args.chrome is not None:
        from .trace import write_chrome_trace

        events = tracer.events() if tracer is not None else []
        records = write_chrome_trace(
            events,
            args.chrome,
            process_name=f"repro {scenario}",
            counters=counter_tracks(sampler),
        )
        print(f"chrome trace: {records} records -> {args.chrome}")
    if watchdog is None:
        return True
    watchdog.check()
    health = watchdog.report()
    print(
        f"slo: {health.rules} rules, {health.evaluations} evaluations, "
        f"{health.violations} violations"
    )
    for event in health.events:
        print(
            f"  VIOLATION {event.rule}: observed {event.observed} "
            f"at t={event.at_ns}ns ({event.series_name})"
        )
    if args.health is not None:
        Path(args.health).write_text(
            json.dumps(health.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"health: -> {args.health}")
    return health.ok


def _cmd_pilot(args: argparse.Namespace) -> int:
    try:
        sample_every_ns = _pilot_sample_every_ns(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.receivers > 1:
        return _pilot_farm(args)
    config = PilotConfig(
        wan_delay_ns=round(args.wan_ms * MILLISECOND),
        wan_loss_rate=args.loss,
        age_budget_ns=round(args.age_budget_ms * MILLISECOND),
        deadline_offset_ns=round(args.deadline_ms * MILLISECOND),
        telemetry=args.telemetry is not None,
        flows=args.flows,
        # --chrome merges spans with counter tracks, so it needs spans.
        trace=args.trace is not None or args.chrome is not None,
        sample_every_ns=sample_every_ns,
    )
    pilot = PilotTestbed(sim=Simulator(seed=args.seed), config=config)
    try:
        watchdog = _build_watchdog(args, pilot.sampler, pilot.tracer)
    except ValueError as exc:
        print(f"error: bad --slo rule: {exc}", file=sys.stderr)
        return 2
    interval_ns = round(args.interval_us * 1000)
    if args.flows > 1:
        # Split the message budget across the concurrent flows so total
        # offered load matches the single-flow invocation.
        base, extra = divmod(args.messages, args.flows)
        for fid in range(args.flows):
            count = base + (1 if fid < extra else 0)
            pilot.send_stream(
                count, payload_size=args.size, interval_ns=interval_ns, flow=fid
            )
    else:
        pilot.send_stream(args.messages, payload_size=args.size, interval_ns=interval_ns)
    report = pilot.run()
    table = ResultTable(
        "Pilot study (Fig. 4)",
        ["Metric", "Value"],
    )
    latencies = report.delivery_latencies_ns
    rows = [
        ("messages sent", report.messages_sent),
        ("delivered", report.delivered),
        ("complete", report.complete),
        ("NAKs sent / served", f"{report.naks_sent} / {report.naks_served}"),
        ("retransmissions", report.retransmissions),
        ("unrecovered", report.unrecovered),
        ("aged packets", report.aged_packets),
        ("deadline ok / miss", f"{report.deadline_ok} / {report.deadline_misses}"),
        ("p50 latency", format_duration(percentile(latencies, 0.5)) if latencies else "-"),
        ("p99 latency", format_duration(percentile(latencies, 0.99)) if latencies else "-"),
    ]
    for name, value in rows:
        table.add_row(name, value)
    table.show()
    if args.flows > 1:
        flow_table = ResultTable(
            f"Per-flow breakdown ({args.flows} concurrent flows)",
            ["Flow", "Sent", "Delivered", "NAKs", "Retx", "Unrecovered", "Last delivery"],
        )
        for fid, row in sorted(report.per_flow.items()):
            flow_table.add_row(
                fid,
                row["sent"],
                row["delivered"],
                row["naks_sent"],
                row["retransmissions"],
                row["unrecovered"],
                format_duration(row["last_delivery_ns"]),
            )
        flow_table.show()
        normalized = [
            row["delivered"] / row["sent"] if row["sent"] else 0.0
            for row in report.per_flow.values()
        ]
        print(f"\nJain fairness index: {jain_fairness(normalized):.4f}")
    if args.telemetry is not None:
        registry = pilot.collect_telemetry()
        try:
            written = write_snapshot(
                registry,
                args.telemetry,
                meta={
                    "scenario": "pilot",
                    "seed": args.seed,
                    "sim_now_ns": pilot.sim.now,
                    "messages": args.messages,
                    "wan_ms": args.wan_ms,
                    "loss": args.loss,
                },
            )
        except OSError as exc:
            print(f"error: cannot write snapshot: {exc}", file=sys.stderr)
            return 1
        print(f"\ntelemetry: {written - 1} metrics -> {args.telemetry}")
    if args.trace is not None:
        from .trace import write_trace

        try:
            records = write_trace(
                pilot.tracer,
                args.trace,
                meta={"scenario": "pilot", "seed": args.seed, "flows": args.flows},
            )
        except OSError as exc:
            print(f"error: cannot write trace: {exc}", file=sys.stderr)
            return 1
        print(f"trace: {records - 1} events -> {args.trace}")
    healthy = _finish_obs(args, pilot.sampler, pilot.tracer, watchdog, "pilot")
    return 0 if report.complete and healthy else 1


def _pilot_farm(args: argparse.Namespace) -> int:
    """``repro pilot --receivers N``: same stream, farm termination.

    With ``--receivers 1`` (the default) this function is never reached
    and the pilot path is bit-for-bit the historical single-DTN build;
    N > 1 swaps DTN 2 for an N-node receiver farm behind the balancer.
    """
    from .fleet import FarmConfig, ReceiverFarm

    config = FarmConfig(
        nodes=args.receivers,
        flows=args.flows,
        wan_delay_ns=round(args.wan_ms * MILLISECOND),
        wan_loss_rate=args.loss,
        age_budget_ns=round(args.age_budget_ms * MILLISECOND),
        telemetry=args.telemetry is not None,
        trace=args.trace is not None or args.chrome is not None,
        sample_every_ns=(
            round(args.sample_every * 1000) if args.sample_every else None
        ),
    )
    farm = ReceiverFarm(sim=Simulator(seed=args.seed), config=config)
    try:
        watchdog = _build_watchdog(args, farm.sampler, farm.tracer)
    except ValueError as exc:
        print(f"error: bad --slo rule: {exc}", file=sys.stderr)
        return 2
    interval_ns = round(args.interval_us * 1000)
    base, extra = divmod(args.messages, args.flows)
    for fid in range(args.flows):
        count = base + (1 if fid < extra else 0)
        farm.send_stream(count, payload_size=args.size, interval_ns=interval_ns, flow=fid)
    report = farm.run()
    table = ResultTable(
        f"Pilot study, receiver farm (N={args.receivers})",
        ["Metric", "Value"],
    )
    rows = [
        ("messages sent", report.messages_sent),
        ("delivered", report.delivered),
        ("complete", report.complete),
        ("NAKs sent / served", f"{report.naks_sent} / {report.naks_served}"),
        ("retransmissions", report.retransmissions),
        ("unrecovered", report.unrecovered),
        ("balancer epoch / updates", f"{report.epoch} / {report.table_updates}"),
        ("windows redirected", report.redirected_windows),
    ]
    for name, value in rows:
        table.add_row(name, value)
    table.show()
    node_table = ResultTable(
        "Per-node breakdown",
        ["Node", "Delivered", "Bytes", "Windows", "Steered", "Fill%", "Alive"],
    )
    for index, row in sorted(report.per_node.items()):
        node_table.add_row(
            index, row["delivered"], row["bytes_delivered"],
            row["windows_assigned"], row["packets_steered"],
            row["fill_pct"], "yes" if row["alive"] else "no",
        )
    node_table.show()
    shares = [row["bytes_delivered"] for row in report.per_node.values()]
    print(f"\nnode-level Jain fairness: {jain_fairness(shares):.4f}")
    if args.telemetry is not None:
        registry = farm.collect_telemetry()
        try:
            written = write_snapshot(
                registry,
                args.telemetry,
                meta={
                    "scenario": "pilot-farm",
                    "seed": args.seed,
                    "sim_now_ns": farm.sim.now,
                    "receivers": args.receivers,
                    "messages": args.messages,
                },
            )
        except OSError as exc:
            print(f"error: cannot write snapshot: {exc}", file=sys.stderr)
            return 1
        print(f"telemetry: {written - 1} metrics -> {args.telemetry}")
    if args.trace is not None:
        from .trace import write_trace

        try:
            records = write_trace(
                farm.tracer,
                args.trace,
                meta={"scenario": "pilot-farm", "seed": args.seed,
                      "receivers": args.receivers},
            )
        except OSError as exc:
            print(f"error: cannot write trace: {exc}", file=sys.stderr)
            return 1
        print(f"trace: {records - 1} events -> {args.trace}")
    healthy = _finish_obs(args, farm.sampler, farm.tracer, watchdog, "pilot-farm")
    return 0 if report.complete and healthy else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Fleet-scale run: hundreds of flows over tens of receiver nodes.

    Prints the farm's judgment axes — per-node shares, node/flow Jain
    fairness, table-update latency, redirect recovery — and exits 0
    only when every flow completed.
    """
    from .fleet import FarmConfig, FleetConfig, FleetOrchestrator

    farm_cfg = FarmConfig(
        wan_delay_ns=round(args.wan_ms * MILLISECOND),
        wan_loss_rate=args.loss,
        window=args.window,
        retx_policy=args.retx_policy,
        telemetry=args.telemetry is not None,
    )
    config = FleetConfig(
        nodes=args.nodes,
        flows=args.flows,
        seed=args.seed,
        duration_ns=round(args.duration_ms * MILLISECOND),
        message_bytes=args.size,
        farm=farm_cfg,
        crash_node=args.crash_node,
        crash_at_ns=round(args.crash_at_ms * MILLISECOND),
    )
    orchestrator = FleetOrchestrator(config)
    report = orchestrator.run()
    fct = sorted(report.fct_ns.values())
    table = ResultTable(
        f"Receiver fleet ({args.nodes} nodes, {args.flows} flows)",
        ["Metric", "Value"],
    )
    rows = [
        ("messages sent", report.farm.messages_sent),
        ("delivered", report.farm.delivered),
        ("complete", report.complete),
        ("unrecovered", report.farm.unrecovered),
        ("aggregate goodput", format_rate(round(report.aggregate_goodput_bps))),
        ("node fairness (Jain)", f"{report.node_fairness:.4f}"),
        ("flow fairness (Jain)", f"{report.flow_fairness:.4f}"),
        ("completion spread", format_duration(report.completion_spread_ns)),
        ("p50 FCT", format_duration(percentile(fct, 0.5)) if fct else "-"),
        ("p99 FCT", format_duration(percentile(fct, 0.99)) if fct else "-"),
        ("balancer epoch / updates",
         f"{report.farm.epoch} / {report.farm.table_updates}"),
        ("table-update latency", format_duration(report.farm.max_update_latency_ns)),
        ("windows redirected", report.farm.redirected_windows),
        ("redirect recovery", format_duration(report.recovery_ns)),
    ]
    for name, value in rows:
        table.add_row(name, value)
    table.show()
    node_table = ResultTable(
        "Per-node shares",
        ["Node", "Delivered", "Bytes", "Windows", "Steered", "Alive"],
    )
    for index, row in sorted(report.per_node.items()):
        node_table.add_row(
            index, row["delivered"], row["bytes_delivered"],
            row["windows_assigned"], row["packets_steered"],
            "yes" if row["alive"] else "no",
        )
    node_table.show()
    if args.telemetry is not None:
        registry = orchestrator.farm.collect_telemetry()
        try:
            written = write_snapshot(
                registry,
                args.telemetry,
                meta={
                    "scenario": "fleet",
                    "seed": args.seed,
                    "sim_now_ns": orchestrator.sim.now,
                    "nodes": args.nodes,
                    "flows": args.flows,
                },
            )
        except OSError as exc:
            print(f"error: cannot write snapshot: {exc}", file=sys.stderr)
            return 1
        print(f"\ntelemetry: {written - 1} metrics -> {args.telemetry}")
    return 0 if report.complete else 1


def _cmd_telemetry(args: argparse.Namespace) -> int:
    try:
        snapshots = read_snapshots(args.snapshot)
    except (OSError, TelemetryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for index, snap in enumerate(snapshots):
        suffix = f" [{index + 1}/{len(snapshots)}]" if len(snapshots) > 1 else ""
        meta = {k: v for k, v in snap.meta.items() if k != "kind"}
        print(f"snapshot {args.snapshot}{suffix}: " + ", ".join(
            f"{k}={v}" for k, v in sorted(meta.items())
        ))

        histograms = snap.of_kind("histogram")
        if histograms:
            table = ResultTable(
                "Histograms (quantiles are bucket upper bounds)",
                ["Metric", "Labels", "Count", "p50", "p99", "Max"],
            )
            for metric in histograms:
                if not args.all and metric["count"] == 0:
                    continue
                fmt = format_duration if metric["name"].endswith("_ns") else str
                quantiles = [
                    quantile_from_buckets(
                        metric["buckets"], metric["overflow"], metric["count"], q,
                        observed_max=metric.get("max"),
                    )
                    for q in (0.5, 0.99)
                ]
                table.add_row(
                    metric["name"],
                    _format_labels(metric["labels"]),
                    metric["count"],
                    *(fmt(q) if q is not None else "-" for q in quantiles),
                    fmt(metric["max"]) if metric["max"] is not None else "-",
                )
            table.show()

        gauges = snap.of_kind("gauge")
        if gauges:
            table = ResultTable("Gauges", ["Metric", "Labels", "Value", "Peak"])
            for metric in gauges:
                if not args.all and metric["value"] == 0 and metric["peak"] == 0:
                    continue
                table.add_row(
                    metric["name"],
                    _format_labels(metric["labels"]),
                    metric["value"],
                    metric["peak"],
                )
            table.show()

        counters = snap.of_kind("counter")
        if counters:
            table = ResultTable("Counters", ["Metric", "Labels", "Value"])
            for metric in counters:
                if not args.all and metric["value"] == 0:
                    continue
                table.add_row(
                    metric["name"], _format_labels(metric["labels"]), metric["value"]
                )
            table.show()
    return 0


def _format_labels(labels: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def _cmd_compare(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        message_count=args.messages,
        message_interval_ns=round(args.interval_us * 1000),
        wan_delay_ns=round(args.wan_ms * MILLISECOND),
        wan_loss_rate=args.loss,
    )
    today = TodayScenario(config=config).run()
    mmt = MultimodalScenario(config=config).run()
    table = ResultTable(
        "Fig. 2 (today) vs Fig. 3 (multi-modal)",
        ["Pipeline", "Delivered", "Storage p50", "Storage p99", "Notes"],
    )
    table.add_row(
        "today (UDP+TCP)",
        f"{today.storage_delivered}/{today.sent}",
        format_duration(percentile(today.storage_latencies_ns, 0.5)),
        format_duration(percentile(today.storage_latencies_ns, 0.99)),
        f"TCP retx {today.extras['tcp_wan_retransmits']}",
    )
    table.add_row(
        "multi-modal (MMT)",
        f"{mmt.storage_delivered}/{mmt.sent}",
        format_duration(percentile(mmt.storage_latencies_ns, 0.5)),
        format_duration(percentile(mmt.storage_latencies_ns, 0.99)),
        f"NAKs {mmt.extras['naks']}, unrecovered {mmt.extras['unrecovered']}",
    )
    table.show()
    return 0


def _cmd_supernova(args: argparse.Namespace) -> int:
    results = supernova_compare(SupernovaConfig(), seed=args.seed)
    table = ResultTable(
        "Supernova early warning (DUNE -> Vera Rubin)",
        ["Dataflow", "Warning latency"],
    )
    for mode, result in results.items():
        latency = result.warning_latency_ns
        table.add_row(mode, format_duration(latency) if latency is not None else "no alert")
    table.show()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf microbenchmarks and print throughput rates.

    The workloads are the exact ones the benchmark suite times (see
    :mod:`repro.analysis.perf`), so rates printed here are directly
    comparable to the committed ``BENCH_engine_throughput.json`` /
    ``BENCH_packet_path.json`` trajectory — shown alongside when the
    files exist in the current directory.
    """
    from pathlib import Path
    from time import perf_counter

    from .analysis.perf import engine_event_churn
    from .analysis.shard import (
        merge_counts,
        packet_path_shard,
        packet_train_shard,
        run_sharded,
        split_evenly,
    )
    from .telemetry import load_bench_result

    def committed_rate(bench: str, test: str, key: str) -> str:
        path = Path(f"BENCH_{bench}.json")
        if not path.exists():
            return "-"
        try:
            result = load_bench_result(path)
            return f"{result.metrics[test][key]:,.0f}/s"
        except (KeyError, TypeError, ValueError):
            return "-"

    jobs = max(1, args.jobs)
    train = max(1, args.train)

    start = perf_counter()
    engine = engine_event_churn(events=args.events)
    engine_wall = perf_counter() - start

    # Shard the packet workloads: near-equal chunks, seed offset by
    # shard index, counts merged by summation. The merged counts are a
    # pure function of the split, so they match for every --jobs N.
    chunks = split_evenly(args.packets, jobs)
    start = perf_counter()
    packet = merge_counts(run_sharded(
        packet_path_shard,
        [(chunk, 4, args.seed + i) for i, chunk in enumerate(chunks)],
        jobs=jobs,
    ))
    packet_wall = perf_counter() - start

    train_chunks = [n * train for n in split_evenly(args.packets // train, jobs)]
    start = perf_counter()
    batched = merge_counts(run_sharded(
        packet_train_shard,
        [(chunk, 4, train, args.seed + i) for i, chunk in enumerate(train_chunks)],
        jobs=jobs,
    ))
    batched_wall = perf_counter() - start

    label = f" [{jobs} jobs]" if jobs > 1 else ""
    table = ResultTable(
        f"Perf microbenchmarks (deterministic workloads){label}",
        ["Benchmark", "Ops", "Wall", "Rate", "Committed"],
    )
    table.add_row(
        "engine (events/s)",
        engine["events_processed"],
        format_duration(round(engine_wall * 1e9)),
        f"{engine['events_processed'] / engine_wall:,.0f}/s",
        committed_rate("engine_throughput", "test_engine_throughput", "events_per_second"),
    )
    table.add_row(
        "packet path (packets/s)",
        packet["packets"],
        format_duration(round(packet_wall * 1e9)),
        f"{packet['packets'] / packet_wall:,.0f}/s",
        committed_rate("packet_path", "test_packet_path_throughput", "packets_per_second"),
    )
    table.add_row(
        f"packet trains x{train} (packets/s)",
        batched["packets"],
        format_duration(round(batched_wall * 1e9)),
        f"{batched['packets'] / batched_wall:,.0f}/s",
        committed_rate("packet_path", "test_packet_train_throughput", "packets_per_second"),
    )
    table.show()
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the pilot under a named fault scenario (or all of them).

    Emits ``BENCH_chaos.json`` — every metric is simulation-derived, so
    the file is byte-identical across runs with the same seed. Exit
    code 0 means every run either recovered completely or degraded
    gracefully (recorded mode degradation, no NAK storm).
    """
    from .faults import ChaosConfig, run_chaos, run_scenarios, write_bench

    cfg = ChaosConfig(
        scenario=args.scenario if args.scenario != "all" else "link-flap",
        messages=args.messages,
        payload_size=args.size,
        interval_ns=round(args.interval_us * 1000),
        seed=args.seed,
        failover=not args.no_failover,
    )
    if args.scenario == "all":
        runs = run_scenarios(cfg, jobs=max(1, args.jobs))
    else:
        runs = [run_chaos(cfg)]
    table = ResultTable(
        "Chaos scenarios (Fig. 4 pilot under fault injection)",
        ["Scenario", "Delivered", "Unrecovered", "NAKs sent/served",
         "Time to recover", "Degradations", "Failovers"],
    )
    for run in runs:
        r = run.report
        table.add_row(
            run.scenario,
            f"{r.delivered}/{r.messages_sent}",
            r.unrecovered,
            f"{r.naks_sent} / {r.naks_served}",
            format_duration(r.time_to_recover_ns),
            r.mode_degradations + r.element_degradations,
            r.buffer_failovers,
        )
    table.show()
    path = write_bench(runs, args.out_dir)
    print(f"\nwrote {path}")
    ok = all(
        run.report.complete
        or run.report.mode_degradations + run.report.element_degradations > 0
        for run in runs
    )
    return 0 if ok else 1


def _cmd_soak(args: argparse.Namespace) -> int:
    """Run the long-soak endurance harness and write ``BENCH_soak.json``.

    Hours-equivalent simulated time under churn with bounded-memory
    assertions at every epoch boundary. Strict by default: any violated
    size budget, growth slope, or unrecovered loss exits 1 (CI runs
    ``repro soak --ci``, the ~60 s preset). Every reported value is
    simulation-derived, so the bench file is byte-identical per seed.
    """
    from .soak import SoakBudgetError, SoakConfig, run_soak, write_bench

    if args.ci:
        cfg = SoakConfig.ci(seed=args.seed)
    else:
        cfg = SoakConfig(seed=args.seed)
    if args.duration_s is not None:
        cfg.duration_ns = round(args.duration_s * 1_000_000_000)
    try:
        report = run_soak(cfg, strict=not args.no_strict)
    except SoakBudgetError as exc:
        print(f"SOAK BUDGET VIOLATION: {exc}", file=sys.stderr)
        return 1
    table = ResultTable(
        f"Endurance soak ({format_duration(report.duration_ns)} simulated)",
        ["Metric", "Value"],
    )
    rows = [
        ("messages sent (steady + poisson)",
         f"{report.messages_sent} ({report.steady_sent} + {report.poisson_sent})"),
        ("delivered", report.delivered),
        ("unrecovered", report.unrecovered),
        ("NAKs sent / served", f"{report.naks_sent} / {report.naks_served}"),
        ("losses (link down / loss model)",
         f"{report.lost_down} / {report.lost_model}"),
        ("faults fired", f"{report.faults_fired}/{report.faults_injected}"),
        ("mode degrade / upgrade / stuck",
         f"{report.mode_degradations} / {report.mode_upgrades} / "
         f"{report.degraded_final}"),
        ("mode-map rewrites", report.mode_rewrites),
        ("link rate / delay changes",
         f"{report.link_rate_changes} / {report.link_delay_changes}"),
        ("GE parameter drifts", report.ge_drifts),
        ("peak retx residency",
         f"{report.peak_retx_bytes} B ({report.peak_retx_occupancy_pct}% of cap)"),
        ("peak guard / trace / series",
         f"{report.peak_guard_entries} / {report.peak_trace_events} / "
         f"{report.peak_registry_series}"),
        ("growth (retx B / guard / trace / series)",
         f"{report.growth_retx_bytes} / {report.growth_guard_entries} / "
         f"{report.growth_trace_events} / {report.growth_registry_series}"),
        ("fleet delivered",
         f"{report.fleet_delivered}/{report.fleet_messages} "
         f"({report.fleet_flaps} node flaps)"),
        ("fleet unrecovered", report.fleet_unrecovered),
        ("budget violations", report.budget_violations),
        ("complete", report.complete),
    ]
    for name, value in rows:
        table.add_row(name, value)
    table.show()
    path = write_bench(report, cfg, args.out_dir)
    print(f"\nwrote {path}")
    return 0 if report.complete else 1


def _cmd_incast(args: argparse.Namespace) -> int:
    """Run the Fig. 2 incast head-to-head grid and write
    ``BENCH_fct_grid.json``.

    Every cell is a pure function of its seeded config, so the merged
    artifact is byte-identical across reruns and for every ``--jobs N``.
    Exit code 0 requires MMT's p99 FCT to be no worse than TCP's in
    every highest-fan-in cell that both transports completed.
    """
    from .integration.incast import (
        case_label,
        grid_configs,
        run_grid,
        small_grid,
        write_bench,
    )

    seeds = tuple(args.seed) if args.seed else (7, 42)
    if args.grid == "small":
        configs = small_grid(seeds=seeds)
    else:
        configs = grid_configs(seeds=seeds)
    from .analysis.shard import heartbeat

    labeled = run_grid(
        configs, jobs=max(1, args.jobs), progress=heartbeat(prefix="incast")
    )
    by_label = dict(labeled)

    table = ResultTable(
        "Incast head-to-head (ECN leaf-spine fan-in, FCT per transport)",
        ["Cell", "Done", "p50 FCT", "p99 FCT", "CE marks", "Drops"],
    )
    for config in configs:
        row = by_label[case_label(config)]
        table.add_row(
            case_label(config),
            f"{row['completed']}/{row['flows']}",
            format_duration(row["fct_p50_ns"]) if row["fct_p50_ns"] else "-",
            format_duration(row["fct_p99_ns"]) if row["fct_p99_ns"] else "-",
            row["ce_marked"],
            row["dropped"],
        )
    table.show()
    path = write_bench(labeled, configs, args.out_dir)
    print(f"\nwrote {path}")

    # The paper's claim, as a gate: once queues dominate (offered load
    # at or above the bottleneck), MMT's tail at the deepest fan-in is
    # no worse than TCP's. Underloaded cells stay in the artifact but
    # out of the gate — with no standing queue there is nothing for
    # ECN pacing to win.
    max_n = max(config.senders for config in configs)
    ok = True
    for config in configs:
        if config.transport != "mmt" or config.senders != max_n:
            continue
        if config.load < 1.0:
            continue
        tcp_label = case_label(dataclasses.replace(config, transport="tcp"))
        mmt_row, tcp_row = by_label[case_label(config)], by_label.get(tcp_label)
        if tcp_row is None:
            continue
        mmt_p99, tcp_p99 = mmt_row["fct_p99_ns"], tcp_row["fct_p99_ns"]
        if mmt_p99 is None or (tcp_p99 is not None and mmt_p99 > tcp_p99):
            print(
                f"FCT GATE FAILED at {case_label(config)}: "
                f"mmt p99={mmt_p99} vs tcp p99={tcp_p99}",
                file=sys.stderr,
            )
            ok = False
    return 0 if ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Causal tracing: run a traced pilot (or load a trace file) and
    dump, filter, export, or root-cause it.

    With ``--input`` the events come from a previously written trace
    file; otherwise an embedded pilot run produces them (and
    ``--verify-int`` can cross-check them against INT postcards, which
    needs the live run). Exit code 1 when ``--verify-int`` finds any
    divergence.
    """
    from .trace import (
        TraceError,
        attach_recording_sink,
        format_timeline,
        load_trace,
        select_timeline,
        summarize_anomalies,
        trace_digest,
        verify_int_consistency,
        write_chrome_trace,
        write_trace,
    )

    sink = None
    if args.input is not None:
        if args.verify_int:
            print(
                "error: --verify-int needs a live run (INT postcards are not"
                " in the trace file); drop --input",
                file=sys.stderr,
            )
            return 2
        try:
            meta, events = load_trace(args.input)
        except (OSError, TraceError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        origin = args.input
    else:
        config = PilotConfig(
            wan_delay_ns=round(args.wan_ms * MILLISECOND),
            wan_loss_rate=args.loss,
            telemetry=args.verify_int,
            flows=args.flows,
            trace=True,
            trace_capacity=args.capacity,
        )
        pilot = PilotTestbed(sim=Simulator(seed=args.seed), config=config)
        if args.verify_int:
            sink = attach_recording_sink(pilot)
        interval_ns = round(args.interval_us * 1000)
        base, extra = divmod(args.messages, args.flows)
        for fid in range(args.flows):
            count = base + (1 if fid < extra else 0)
            pilot.send_stream(count, payload_size=args.size,
                              interval_ns=interval_ns, flow=fid)
        report = pilot.run()
        tracer = pilot.tracer
        events = tracer.events()
        print(
            f"pilot: {report.delivered}/{report.messages_sent} delivered, "
            f"{tracer.events_emitted} spans emitted, "
            f"{tracer.events_retained} retained "
            f"({tracer.events_pinned} pinned, {tracer.events_evicted} evicted)"
        )
        if args.out is not None:
            try:
                records = write_trace(
                    tracer, args.out,
                    meta={"scenario": "pilot", "seed": args.seed, "flows": args.flows},
                )
            except OSError as exc:
                print(f"error: cannot write trace: {exc}", file=sys.stderr)
                return 1
            print(f"trace: {records - 1} events -> {args.out}")
        origin = "embedded pilot run"

    if args.flow is not None:
        events = [e for e in events if (e.flow_id or 0) == args.flow]
    if args.seq is not None:
        events = [e for e in events if e.seq == args.seq]

    if args.chrome is not None:
        try:
            written = write_chrome_trace(events, args.chrome)
        except OSError as exc:
            print(f"error: cannot write chrome trace: {exc}", file=sys.stderr)
            return 1
        print(f"chrome trace: {written} records -> {args.chrome} "
              "(load in Perfetto / chrome://tracing)")

    if args.timeline is not None:
        try:
            exp, flow, seq = (int(part, 0) for part in args.timeline.split(":"))
        except ValueError:
            print(
                f"error: --timeline wants EXPERIMENT:FLOW:SEQ, got {args.timeline!r}",
                file=sys.stderr,
            )
            return 2
        print(format_timeline(select_timeline(events, exp, flow, seq), exp, flow, seq))
    elif args.anomalies:
        anomalies = summarize_anomalies(events)
        if not anomalies:
            print("no anomalous packets")
        else:
            table = ResultTable(
                f"Anomalous packets ({origin})",
                ["Experiment", "Flow", "Seq", "Anomalies"],
            )
            for (exp, flow, seq), kinds in anomalies:
                table.add_row(exp, flow, seq, " -> ".join(kinds))
            table.show()
    elif args.dump:
        for event in events[: args.limit]:
            ident = event.identity
            tag = f"{ident[0]}/{ident[1]}/{ident[2]}" if ident else "-"
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted((event.attrs or {}).items())
            )
            print(f"{event.ts_ns:>12} ns  {event.element:<18} "
                  f"{event.kind:<16} {tag:<18} {attrs}")
        if len(events) > args.limit:
            print(f"... {len(events) - args.limit} more (raise --limit)")

    print(f"digest: sha256:{trace_digest(events)} over {len(events)} events")

    if args.verify_int:
        assert sink is not None
        result = verify_int_consistency(events, sink)
        print(
            f"INT consistency: {result.postcards_checked} postcards over "
            f"{result.packets_checked} packets, {len(result.mismatches)} mismatches"
        )
        for mismatch in result.mismatches[:20]:
            print(f"  MISMATCH: {mismatch}")
        if not result.ok:
            return 1
    return 0


def _cmd_header(_args: argparse.Namespace) -> int:
    registry = extended_registry()
    table = ResultTable(
        "MMT wire format per mode (§5.2)",
        ["Mode", "Config id", "Header bytes", "Active features"],
    )
    ctx = TransitionContext(
        now_ns=0, seq=0, buffer_addr="10.0.0.1", deadline_ns=1,
        notify_addr="10.0.0.2", age_budget_ns=1, pace_rate_mbps=1,
        source_addr="10.0.0.3", dup_group=0, dup_copies=1,
    )
    for mode in registry:
        header = MmtHeader(config_id=0, experiment_id=0)
        transition(header, mode, ctx)
        features = [f.name.lower() for f in type(header.features) if f and header.features & f]
        table.add_row(mode.name, mode.config_id, header.size_bytes, ", ".join(features) or "-")
    table.show()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """``repro report``: bench regression diff + health rendering.

    Exit status is machine-readable: 0 = everything within tolerance
    and every SLO held, 1 = unusable inputs (missing files, broken
    provenance) or a violated health report, 3 = at least one timing
    regression or deterministic-metric drift.
    """
    from .obs import (
        EXIT_ERROR,
        EXIT_OK,
        EXIT_REGRESSION,
        HealthReport,
        ReportError,
        diff_bench_files,
        render_diff,
    )

    status = EXIT_OK
    payload: dict = {"benches": [], "health": None}

    health = None
    if args.health is not None:
        try:
            health = HealthReport.from_dict(
                json.loads(Path(args.health).read_text(encoding="utf-8"))
            )
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read health report: {exc}", file=sys.stderr)
            return EXIT_ERROR
        print(
            f"health: {health.rules} rules, {health.evaluations} "
            f"evaluations, {health.violations} violations"
        )
        for event in health.events:
            print(
                f"  VIOLATION {event.rule}: observed {event.observed} "
                f"at t={event.at_ns}ns ({event.series_name})"
            )
        payload["health"] = health.to_dict()
        if not health.ok:
            status = EXIT_ERROR

    fresh_dir, baseline_dir = Path(args.fresh), Path(args.baseline)
    names = list(args.bench)
    if not names:
        fresh_names = {p.name for p in fresh_dir.glob("BENCH_*.json")}
        base_names = {p.name for p in baseline_dir.glob("BENCH_*.json")}
        names = sorted(
            name[len("BENCH_") : -len(".json")]
            for name in fresh_names & base_names
        )
    if not names and health is None:
        print(
            "error: nothing to report (no shared BENCH_*.json files and "
            "no --health)",
            file=sys.stderr,
        )
        return EXIT_ERROR

    for name in names:
        try:
            diff = diff_bench_files(
                fresh_dir / f"BENCH_{name}.json",
                baseline_dir / f"BENCH_{name}.json",
                tolerance=args.tolerance,
            )
        except ReportError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        print(render_diff(diff, show_ok=args.all))
        payload["benches"].append(diff.to_dict())
        if not diff.ok:
            status = EXIT_REGRESSION

    payload["status"] = status
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"report: -> {args.json}")
    return status


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-modal DAQ transport — paper experiments from the shell.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("catalog", help="print the Table 1 experiment catalog")

    pilot = sub.add_parser("pilot", help="run the Fig. 4 pilot study")
    pilot.add_argument("--messages", type=int, default=1000)
    pilot.add_argument("--size", type=int, default=8000)
    pilot.add_argument("--interval-us", type=float, default=2.0)
    pilot.add_argument("--wan-ms", type=float, default=10.0)
    pilot.add_argument("--loss", type=float, default=0.0)
    pilot.add_argument("--age-budget-ms", type=float, default=50.0)
    pilot.add_argument("--deadline-ms", type=float, default=5.0)
    pilot.add_argument("--seed", type=int, default=42)
    pilot.add_argument(
        "--flows",
        type=int,
        default=1,
        help="concurrent flows sharing the pilot path (default 1; "
        "the message budget is split across them)",
    )
    pilot.add_argument(
        "--receivers",
        type=int,
        default=1,
        help="receiver DTNs terminating the stream (default 1 = the "
        "historical single-DTN pilot; N > 1 fans out over a farm "
        "behind the EJ-FAT-style balancer)",
    )
    pilot.add_argument(
        "--telemetry",
        metavar="FILE",
        default=None,
        help="enable telemetry and write a JSONL snapshot to FILE",
    )
    pilot.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="enable causal tracing and write a JSONL trace to FILE",
    )
    pilot.add_argument(
        "--sample-every",
        type=float,
        metavar="US",
        default=None,
        help="enable the on-clock observability sampler with this "
        "period in microseconds (off by default: zero overhead)",
    )
    pilot.add_argument(
        "--series",
        metavar="FILE",
        default=None,
        help="write the sampled time series as JSONL to FILE "
        "(requires --sample-every)",
    )
    pilot.add_argument(
        "--chrome",
        metavar="FILE",
        default=None,
        help="write a Chrome/Perfetto trace merging causal spans with "
        "sampled counter tracks to FILE (requires --sample-every; "
        "implies tracing)",
    )
    pilot.add_argument(
        "--slo",
        action="append",
        metavar="RULE",
        default=[],
        help="declarative SLO rule, e.g. 'queue_bytes p99 <= 262144' "
        "(repeatable; requires --sample-every; violations pin the "
        "flight recorder and fail the run)",
    )
    pilot.add_argument(
        "--health",
        metavar="FILE",
        default=None,
        help="write the SLO health report as JSON to FILE",
    )

    fleet = sub.add_parser(
        "fleet", help="fleet-scale run: N receiver nodes, M concurrent flows"
    )
    fleet.add_argument("--nodes", type=int, default=4,
                       help="receiver DTNs behind the balancer")
    fleet.add_argument("--flows", type=int, default=16,
                       help="concurrent DAQ flows (even steady, odd bursty)")
    fleet.add_argument("--duration-ms", type=float, default=2.0,
                       help="generator window per flow")
    fleet.add_argument("--size", type=int, default=4000)
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument("--wan-ms", type=float, default=1.0,
                       help="balancer -> node one-way delay")
    fleet.add_argument("--loss", type=float, default=0.0,
                       help="random loss on the balancer -> node legs")
    fleet.add_argument("--window", type=int, default=16,
                       help="event-window size (seqs per sticky tick)")
    fleet.add_argument("--retx-policy", choices=("rebind", "follow"),
                       default="rebind",
                       help="what retransmissions do when their window's "
                       "node died between sync ticks")
    fleet.add_argument("--crash-node", type=int, default=None,
                       help="crash this node index mid-run")
    fleet.add_argument("--crash-at-ms", type=float, default=1.05,
                       help="when to crash it (default sits off the sync-tick "
                       "grid, so the detection gap is visible)")
    fleet.add_argument(
        "--telemetry", metavar="FILE", default=None,
        help="enable telemetry and write a JSONL snapshot to FILE",
    )

    trace = sub.add_parser(
        "trace", help="causal tracing: run, dump, export, root-cause"
    )
    trace.add_argument(
        "--input", metavar="FILE", default=None,
        help="load an existing trace file instead of running the pilot",
    )
    trace.add_argument("--out", metavar="FILE", default=None,
                       help="write the run's JSONL trace to FILE")
    trace.add_argument("--chrome", metavar="FILE", default=None,
                       help="write a Chrome/Perfetto trace-event file")
    trace.add_argument(
        "--timeline", metavar="EXP:FLOW:SEQ", default=None,
        help="print the causal timeline of one packet identity",
    )
    trace.add_argument("--anomalies", action="store_true",
                       help="list anomalous packets and what happened to them")
    trace.add_argument("--dump", action="store_true",
                       help="print retained events (see --limit)")
    trace.add_argument("--limit", type=int, default=40,
                       help="max events printed by --dump (default 40)")
    trace.add_argument("--flow", type=int, default=None,
                       help="filter events to one flow id")
    trace.add_argument("--seq", type=int, default=None,
                       help="filter events to one sequence number")
    trace.add_argument(
        "--verify-int", action="store_true",
        help="cross-check trace spans against INT postcards (tolerance 0)",
    )
    trace.add_argument("--capacity", type=int, default=None,
                       help="flight-recorder ring capacity (default: unbounded)")
    trace.add_argument("--messages", type=int, default=200)
    trace.add_argument("--size", type=int, default=8000)
    trace.add_argument("--interval-us", type=float, default=2.0)
    trace.add_argument("--wan-ms", type=float, default=10.0)
    trace.add_argument("--loss", type=float, default=0.0)
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--flows", type=int, default=1)

    comparison = sub.add_parser("compare", help="Fig. 2 vs Fig. 3 head-to-head")
    comparison.add_argument("--messages", type=int, default=1000)
    comparison.add_argument("--interval-us", type=float, default=128.0)
    comparison.add_argument("--wan-ms", type=float, default=25.0)
    comparison.add_argument("--loss", type=float, default=0.001)

    supernova = sub.add_parser("supernova", help="DUNE -> Rubin early warning")
    supernova.add_argument("--seed", type=int, default=11)

    sub.add_parser("header", help="wire-format cost per mode")

    bench = sub.add_parser("bench", help="run the perf microbenchmarks")
    bench.add_argument("--events", type=int, default=200_000,
                       help="events for the engine workload")
    bench.add_argument("--packets", type=int, default=20_000,
                       help="packets for the packet-path workloads")
    bench.add_argument("--train", type=int, default=32,
                       help="headers per train for the batched workload")
    bench.add_argument("--seed", type=int, default=7,
                       help="value-jitter seed threaded through the "
                       "packet workloads (operation counts don't move)")
    bench.add_argument("--jobs", type=int, default=1,
                       help="shard the packet workloads across N worker "
                       "processes (deterministic counts, merged in "
                       "shard order)")

    chaos = sub.add_parser("chaos", help="run the pilot under fault injection")
    chaos.add_argument(
        "--scenario",
        choices=("link-flap", "burst-loss", "element-restart", "buffer-failover",
                 "fleet-node-crash", "link-drift", "mode-rewrite-churn", "all"),
        default="link-flap",
    )
    chaos.add_argument("--messages", type=int, default=500)
    chaos.add_argument("--size", type=int, default=8000)
    chaos.add_argument("--interval-us", type=float, default=2.0)
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument(
        "--no-failover",
        action="store_true",
        help="buffer-failover: leave no live buffer after the kill "
        "(exercises graceful mode degradation instead of failover)",
    )
    chaos.add_argument(
        "--out-dir", default=".", help="directory for BENCH_chaos.json"
    )
    chaos.add_argument(
        "--jobs", type=int, default=1,
        help="with --scenario all: shard the scenario matrix across N "
        "worker processes (BENCH_chaos.json is identical for every N)",
    )

    soak = sub.add_parser(
        "soak", help="long-soak endurance run with bounded-memory assertions"
    )
    soak.add_argument(
        "--ci", action="store_true",
        help="the CI smoke preset: ~60 s simulated with denser traffic "
        "(default is the full one-hour soak)",
    )
    soak.add_argument(
        "--duration-s", type=float, default=None,
        help="override the simulated duration in seconds",
    )
    soak.add_argument("--seed", type=int, default=42)
    soak.add_argument(
        "--no-strict", action="store_true",
        help="record budget violations in the report instead of failing fast",
    )
    soak.add_argument(
        "--out-dir", default=".", help="directory for BENCH_soak.json"
    )

    incast = sub.add_parser(
        "incast", help="ECN leaf-spine incast FCT head-to-head (Fig. 2)"
    )
    incast.add_argument(
        "--grid", choices=("small", "full"), default="small",
        help="small = CI smoke (one K, N in {4, 16}); full = the whole "
        "{K, L, N, sym/asym} matrix",
    )
    incast.add_argument(
        "--seed", type=int, action="append", default=None,
        help="grid seed; repeatable (default: 7 and 42)",
    )
    incast.add_argument(
        "--jobs", type=int, default=1,
        help="shard grid cells across N worker processes "
        "(BENCH_fct_grid.json is identical for every N)",
    )
    incast.add_argument(
        "--out-dir", default=".", help="directory for BENCH_fct_grid.json"
    )

    telemetry = sub.add_parser("telemetry", help="render a telemetry snapshot")
    telemetry.add_argument("snapshot", help="JSONL snapshot file (repro pilot --telemetry)")
    telemetry.add_argument(
        "--all", action="store_true", help="include zero-valued metrics"
    )

    report = sub.add_parser(
        "report",
        help="diff fresh BENCH_*.json results against committed "
        "baselines and render run health",
    )
    report.add_argument(
        "--fresh", default=".", metavar="DIR",
        help="directory holding the freshly produced BENCH_*.json files",
    )
    report.add_argument(
        "--baseline", default=".", metavar="DIR",
        help="directory holding the committed baselines (default: repo root)",
    )
    report.add_argument(
        "--bench", action="append", default=[], metavar="NAME",
        help="bench name to diff, e.g. packet_path (repeatable; default: "
        "every name present in both directories)",
    )
    report.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed ratio band for timing metrics (default 0.2 = ±20%%; "
        "deterministic counters always compare exactly)",
    )
    report.add_argument(
        "--health", metavar="FILE", default=None,
        help="render an SLO health report JSON (repro pilot --health)",
    )
    report.add_argument(
        "--all", action="store_true", help="show within-tolerance rows too"
    )
    report.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the machine-readable diff (status + rows) to FILE",
    )
    return parser


_COMMANDS = {
    "catalog": _cmd_catalog,
    "pilot": _cmd_pilot,
    "compare": _cmd_compare,
    "supernova": _cmd_supernova,
    "header": _cmd_header,
    "telemetry": _cmd_telemetry,
    "bench": _cmd_bench,
    "chaos": _cmd_chaos,
    "incast": _cmd_incast,
    "soak": _cmd_soak,
    "fleet": _cmd_fleet,
    "trace": _cmd_trace,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    """Console entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
