"""Control plane for multi-modal transport (§6, challenge 1).

Resource discovery and work distribution: elements advertise their
capabilities into a :class:`ResourceMap`; :class:`MapSpeaker` s share
maps across operator domains (the paper's piggy-back-on-BGP idea);
:func:`plan_flow` distributes a flow's required features over the
discovered resources and :func:`install_plan` realizes the result as
dataplane programs.
"""

from .bgp import MapSpeaker, MapUpdate, converge
from .placement import (
    FlowIntent,
    NodePlan,
    PlacementError,
    PlacementPlan,
    install_plan,
    plan_flow,
)
from .resourcemap import Capability, ResourceDescriptor, ResourceMap

__all__ = [
    "Capability",
    "FlowIntent",
    "MapSpeaker",
    "MapUpdate",
    "NodePlan",
    "PlacementError",
    "PlacementPlan",
    "ResourceDescriptor",
    "ResourceMap",
    "converge",
    "install_plan",
    "plan_flow",
]
