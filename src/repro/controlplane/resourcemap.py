"""The map of in-network programmable resources (§6, challenge 1).

"We initially envisage having a map of in-network programmable
resources that DAQ workloads can use. This map is shared between
network operators [...] to describe their programmable infrastructure
and its capabilities."

A :class:`ResourceDescriptor` is one element's self-description:
where it sits (domain + node name), what it can do (capability set),
and how much of it there is (buffer bytes, table space, duplication
fan-out). Descriptors merge into a :class:`ResourceMap`, versioned per
origin so re-advertisements supersede and withdrawals remove.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum


class Capability(str, Enum):
    """What a programmable element offers to DAQ transport."""

    MODE_TRANSITION = "mode-transition"
    RETRANSMIT_BUFFER = "retransmit-buffer"
    AGE_UPDATE = "age-update"
    DEADLINE_ENFORCE = "deadline-enforce"
    DUPLICATION = "duplication"
    BACKPRESSURE = "backpressure"
    #: Beyond header processing: DPDK/FPGA payload transforms (§6 ch. 2).
    PAYLOAD_PROCESSING = "payload-processing"


@dataclass(frozen=True)
class ResourceDescriptor:
    """One element's advertised capabilities."""

    node: str
    domain: str
    address: str
    capabilities: frozenset[Capability]
    buffer_bytes: int = 0
    table_entries: int = 0
    max_duplication_fanout: int = 0
    #: Monotone per-origin version; higher supersedes lower.
    version: int = 1

    def __post_init__(self) -> None:
        if not self.node or not self.domain:
            raise ValueError("node and domain are required")
        if Capability.RETRANSMIT_BUFFER in self.capabilities and self.buffer_bytes <= 0:
            raise ValueError(f"{self.node}: buffer capability without capacity")
        if self.version <= 0:
            raise ValueError("version must be positive")

    def supports(self, capability: Capability) -> bool:
        return capability in self.capabilities

    def bumped(self, **changes) -> "ResourceDescriptor":
        """A superseding copy with ``version + 1`` and ``changes``."""
        return replace(self, version=self.version + 1, **changes)


@dataclass
class ResourceMap:
    """A converged view: node name → newest descriptor."""

    entries: dict[str, ResourceDescriptor] = field(default_factory=dict)

    def upsert(self, descriptor: ResourceDescriptor) -> bool:
        """Insert/refresh; returns True when the map changed."""
        current = self.entries.get(descriptor.node)
        if current is not None and current.version >= descriptor.version:
            return False
        self.entries[descriptor.node] = descriptor
        return True

    def withdraw(self, node: str, version: int) -> bool:
        """Remove a node's entry if ``version`` is newer than stored."""
        current = self.entries.get(node)
        if current is None or current.version > version:
            return False
        del self.entries[node]
        return True

    def with_capability(self, capability: Capability) -> list[ResourceDescriptor]:
        """All entries offering ``capability``, largest-first by capacity."""
        found = [d for d in self.entries.values() if d.supports(capability)]
        found.sort(key=lambda d: (-d.buffer_bytes, d.node))
        return found

    def in_domain(self, domain: str) -> list[ResourceDescriptor]:
        return sorted(
            (d for d in self.entries.values() if d.domain == domain),
            key=lambda d: d.node,
        )

    def get(self, node: str) -> ResourceDescriptor | None:
        return self.entries.get(node)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, node: str) -> bool:
        return node in self.entries

    def merge(self, other: "ResourceMap") -> int:
        """Absorb another map; returns how many entries changed."""
        changed = 0
        for descriptor in other.entries.values():
            if self.upsert(descriptor):
                changed += 1
        return changed
