"""Inter-domain distribution of the resource map.

"This map is shared between network operators — perhaps by
piggy-backing on BGP messages — to describe their programmable
infrastructure and its capabilities." (§6)

:class:`MapSpeaker` models the BGP-attribute flavour of that idea:
each operator domain runs a speaker; peers exchange UPDATE messages
carrying resource descriptors (instead of NLRI) with a domain-path
attribute for loop prevention. Propagation is simulated with
configurable per-session delays on the shared event engine, so
convergence time is measurable. WITHDRAW messages remove entries.

This is a control-plane model, not a BGP implementation: no TCP
sessions, no best-path selection — resource descriptors are facts, not
routes, so "newest version wins" replaces path ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..netsim.engine import Simulator
from .resourcemap import ResourceDescriptor, ResourceMap


@dataclass(frozen=True)
class MapUpdate:
    """One UPDATE message: a descriptor (or withdrawal) plus the path."""

    descriptor: ResourceDescriptor | None
    withdraw_node: str | None
    withdraw_version: int
    domain_path: tuple[str, ...]

    def __post_init__(self) -> None:
        if (self.descriptor is None) == (self.withdraw_node is None):
            raise ValueError("update must carry a descriptor xor a withdrawal")


@dataclass
class _Peering:
    speaker: "MapSpeaker"
    delay_ns: int


class MapSpeaker:
    """One domain's resource-map speaker."""

    def __init__(self, sim: Simulator, domain: str) -> None:
        self.sim = sim
        self.domain = domain
        self.map = ResourceMap()
        self._peers: dict[str, _Peering] = {}
        self.updates_sent = 0
        self.updates_received = 0
        self.loops_suppressed = 0
        self.on_change: Callable[[ResourceDescriptor | None], None] | None = None
        #: Highest version seen per withdrawn node (so a late, stale
        #: advertisement cannot resurrect a withdrawn entry).
        self._withdrawn: dict[str, int] = {}

    # -- peering --------------------------------------------------------------

    def peer_with(self, other: "MapSpeaker", delay_ns: int) -> None:
        """Create a bidirectional peering with symmetric delay."""
        if other.domain == self.domain:
            raise ValueError("cannot peer a domain with itself")
        self._peers[other.domain] = _Peering(other, delay_ns)
        other._peers[self.domain] = _Peering(self, delay_ns)

    # -- origination -------------------------------------------------------------

    def advertise(self, descriptor: ResourceDescriptor) -> None:
        """Originate (or refresh) a local resource."""
        if descriptor.domain != self.domain:
            raise ValueError(
                f"{self.domain} cannot originate {descriptor.node} "
                f"(belongs to {descriptor.domain})"
            )
        if self.map.upsert(descriptor):
            self._withdrawn.pop(descriptor.node, None)
            self._flood(
                MapUpdate(descriptor, None, 0, (self.domain,)), exclude=None
            )
            if self.on_change is not None:
                self.on_change(descriptor)

    def withdraw(self, node: str) -> None:
        """Withdraw a locally-originated resource."""
        current = self.map.get(node)
        version = (current.version if current else 0) + 1
        if current is not None:
            self.map.withdraw(node, version)
        self._withdrawn[node] = version
        self._flood(
            MapUpdate(None, node, version, (self.domain,)), exclude=None
        )
        if self.on_change is not None:
            self.on_change(None)

    # -- propagation ----------------------------------------------------------------

    def _flood(self, update: MapUpdate, exclude: str | None) -> None:
        for domain, peering in self._peers.items():
            if domain == exclude:
                continue
            if domain in update.domain_path:
                self.loops_suppressed += 1
                continue
            self.updates_sent += 1
            forwarded = MapUpdate(
                update.descriptor,
                update.withdraw_node,
                update.withdraw_version,
                update.domain_path + (domain,),
            )
            self.sim.schedule(peering.delay_ns, peering.speaker._receive, forwarded, self.domain)

    def _receive(self, update: MapUpdate, from_domain: str) -> None:
        self.updates_received += 1
        if self.domain in update.domain_path[:-1]:
            self.loops_suppressed += 1
            return
        changed = False
        if update.descriptor is not None:
            blocked_at = self._withdrawn.get(update.descriptor.node, 0)
            if update.descriptor.version > blocked_at:
                changed = self.map.upsert(update.descriptor)
        else:
            assert update.withdraw_node is not None
            self._withdrawn[update.withdraw_node] = max(
                self._withdrawn.get(update.withdraw_node, 0), update.withdraw_version
            )
            changed = self.map.withdraw(update.withdraw_node, update.withdraw_version)
        if changed:
            self._flood(update, exclude=from_domain)
            if self.on_change is not None:
                self.on_change(update.descriptor)


def converge(speakers: list[MapSpeaker]) -> bool:
    """True when every speaker holds the identical map (test helper)."""
    if not speakers:
        return True
    reference = speakers[0].map.entries
    return all(s.map.entries == reference for s in speakers[1:])
