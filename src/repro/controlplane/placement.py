"""Work distribution over discovered resources (§6, challenge 1).

"It is an open problem how to discover programmable resources in the
network, distribute work to them, and coordinate their activity."

Given a converged :class:`~repro.controlplane.resourcemap.ResourceMap`,
a flow's path, and a :class:`FlowIntent` (what the experiment needs:
reliability, age budget, deadline, duplication), :func:`plan_flow`
decides *which element does what*:

- the **first** transition-capable element activates the entry mode
  (sequencing + recovery + age tracking);
- **every** buffer-capable element on the path hosts a retransmission
  buffer; elements between buffers refresh ``buffer_addr`` to the most
  recent one passed, and buffers chain NAK fallbacks upstream — the
  "more recent retransmission buffer" behaviour of §1;
- the **last** transition-capable element stamps the delivery deadline
  (like the pilot's U55C);
- the **last** duplication-capable element fans the stream out.

:func:`install_plan` then turns the plan into concrete dataplane
programs on the actual element objects. Modes that the intent needs
but the registry lacks are synthesized into free config-id slots —
the extensibility §4.2 calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.features import AckScheme, Feature
from ..core.modes import Mode, ModeRegistry
from ..dataplane.element import ProgrammableElement
from ..dataplane.programs import (
    AgeUpdateProgram,
    BufferTapProgram,
    DuplicationProgram,
    ModeTransitionProgram,
    NearestBufferProgram,
    TransitionRule,
)
from .resourcemap import Capability, ResourceMap


class PlacementError(RuntimeError):
    """Raised when an intent cannot be satisfied by the mapped resources."""


@dataclass(frozen=True)
class FlowIntent:
    """What a DAQ flow needs from the network."""

    experiment_id: int
    reliable: bool = True
    age_budget_ns: int | None = None
    deadline_offset_ns: int | None = None
    notify_addr: str | None = None
    duplicate_to: tuple[str, ...] = ()
    dup_group: int = 1

    def entry_features(self) -> Feature:
        features = Feature.NONE
        if self.reliable:
            features |= Feature.SEQUENCED | Feature.RETRANSMISSION
        if self.age_budget_ns is not None:
            features |= Feature.AGE_TRACKING
        if self.duplicate_to:
            features |= Feature.SEQUENCED | Feature.DUPLICATION
        return features

    def exit_features(self) -> Feature:
        features = self.entry_features()
        if self.deadline_offset_ns is not None:
            features |= Feature.TIMELINESS
        return features


@dataclass
class NodePlan:
    """Everything one element is asked to do for the flow."""

    node: str
    address: str
    transition: TransitionRule | None = None
    host_buffer_bytes: int = 0
    nak_fallback_addr: str | None = None
    nearest_buffer_addr: str | None = None
    age_update: bool = False
    duplication: dict[int, list[str]] | None = None

    @property
    def is_noop(self) -> bool:
        return (
            self.transition is None
            and not self.host_buffer_bytes
            and self.nearest_buffer_addr is None
            and not self.age_update
            and self.duplication is None
        )


@dataclass
class PlacementPlan:
    """The full work distribution for one flow."""

    intent: FlowIntent
    entry_mode: Mode
    exit_mode: Mode
    nodes: list[NodePlan] = field(default_factory=list)

    def plan_for(self, node: str) -> NodePlan:
        for plan in self.nodes:
            if plan.node == node:
                return plan
        raise KeyError(f"no plan for node {node!r}")

    @property
    def buffers(self) -> list[NodePlan]:
        return [n for n in self.nodes if n.host_buffer_bytes]


def _find_or_create_mode(
    registry: ModeRegistry, features: Feature, name_hint: str
) -> Mode:
    """An existing mode with exactly these features, or a synthesized one."""
    for mode in registry:
        if mode.features == features:
            return mode
    for config_id in range(8, 256):
        if config_id not in registry:
            ack = (
                AckScheme.NAK_ONLY
                if features & Feature.RETRANSMISSION
                else AckScheme.NONE
            )
            return registry.register(
                Mode(
                    config_id=config_id,
                    name=f"{name_hint}-{config_id}",
                    features=features,
                    ack_scheme=ack,
                    description=f"Synthesized by placement for {name_hint}.",
                )
            )
    raise PlacementError("no free config-id slots for a synthesized mode")


def plan_flow(
    resource_map: ResourceMap,
    path: list[str],
    intent: FlowIntent,
    registry: ModeRegistry,
    buffer_bytes: int = 256 * 1024 * 1024,
) -> PlacementPlan:
    """Distribute the intent's work over the path's mapped resources."""
    on_path = [resource_map.get(node) for node in path]
    elements = [d for d in on_path if d is not None]
    if not elements:
        raise PlacementError("no programmable resources on the path")

    transition_capable = [d for d in elements if d.supports(Capability.MODE_TRANSITION)]
    entry_features = intent.entry_features()
    exit_features = intent.exit_features()
    if entry_features and not transition_capable:
        raise PlacementError("intent needs mode transitions but no element offers them")

    buffer_capable = [d for d in elements if d.supports(Capability.RETRANSMIT_BUFFER)]
    if intent.reliable and not buffer_capable:
        raise PlacementError("intent needs reliability but no element offers a buffer")
    if intent.duplicate_to and not any(
        d.supports(Capability.DUPLICATION) for d in elements
    ):
        raise PlacementError("intent needs duplication but no element offers it")
    if intent.deadline_offset_ns is not None and intent.notify_addr is None:
        raise PlacementError("a deadline needs a notify address")

    entry_mode = _find_or_create_mode(registry, entry_features, "entry")
    exit_mode = _find_or_create_mode(registry, exit_features, "exit")

    first_transition = transition_capable[0] if transition_capable else None
    last_transition = transition_capable[-1] if transition_capable else None
    duplication_site = next(
        (d for d in reversed(elements) if d.supports(Capability.DUPLICATION)), None
    ) if intent.duplicate_to else None

    plans: list[NodePlan] = []
    first_buffer = buffer_capable[0] if buffer_capable else None
    last_buffer_seen: str | None = None
    previous_buffer: str | None = None
    for descriptor in elements:
        plan = NodePlan(node=descriptor.node, address=descriptor.address)
        if intent.reliable and descriptor.supports(Capability.RETRANSMIT_BUFFER):
            wanted = min(buffer_bytes, descriptor.buffer_bytes)
            plan.host_buffer_bytes = wanted
            plan.nak_fallback_addr = previous_buffer
            previous_buffer = descriptor.address
            last_buffer_seen = descriptor.address
        if descriptor is first_transition and entry_features:
            plan.transition = TransitionRule(
                from_config_id=0,
                to_mode=entry_mode.name,
                buffer_addr=(first_buffer.address if first_buffer else None),
                age_budget_ns=intent.age_budget_ns,
                dup_group=intent.dup_group if intent.duplicate_to else None,
                dup_copies=1 if intent.duplicate_to else None,
            )
        if (
            descriptor is last_transition
            and exit_mode is not entry_mode
            and intent.deadline_offset_ns is not None
        ):
            plan.transition = TransitionRule(
                from_config_id=(
                    0 if descriptor is first_transition else entry_mode.config_id
                ),
                to_mode=exit_mode.name,
                buffer_addr=(first_buffer.address if first_buffer else None)
                if descriptor is first_transition
                else None,
                age_budget_ns=intent.age_budget_ns
                if descriptor is first_transition
                else None,
                deadline_offset_ns=intent.deadline_offset_ns,
                notify_addr=intent.notify_addr,
                dup_group=intent.dup_group
                if intent.duplicate_to and descriptor is first_transition
                else None,
                dup_copies=1
                if intent.duplicate_to and descriptor is first_transition
                else None,
            )
        if (
            intent.reliable
            and not plan.host_buffer_bytes
            and last_buffer_seen is not None
            and descriptor.supports(Capability.MODE_TRANSITION)
        ):
            plan.nearest_buffer_addr = last_buffer_seen
        if intent.age_budget_ns is not None and descriptor.supports(Capability.AGE_UPDATE):
            plan.age_update = True
        if duplication_site is descriptor:
            plan.duplication = {intent.dup_group: list(intent.duplicate_to)}
        plans.append(plan)

    return PlacementPlan(
        intent=intent, entry_mode=entry_mode, exit_mode=exit_mode, nodes=plans
    )


def install_plan(
    plan: PlacementPlan,
    elements: dict[str, ProgrammableElement],
    registry: ModeRegistry,
) -> None:
    """Realize a plan: configure programs on the actual elements."""
    for node_plan in plan.nodes:
        element = elements.get(node_plan.node)
        if element is None:
            raise PlacementError(f"element {node_plan.node!r} not provided")
        # Pipeline order matters: transitions first (they assign the
        # sequence numbers), then the buffer tap that mirrors by seq.
        if node_plan.transition is not None:
            ModeTransitionProgram(registry, [node_plan.transition]).install(element)
        if node_plan.host_buffer_bytes:
            element.attach_buffer(node_plan.host_buffer_bytes)
            element.nak_fallback_addr = node_plan.nak_fallback_addr
            BufferTapProgram(buffer_addr=element.ip).install(element)
        if node_plan.nearest_buffer_addr is not None:
            NearestBufferProgram(node_plan.nearest_buffer_addr).install(element)
        if node_plan.age_update:
            AgeUpdateProgram().install(element)
        if node_plan.duplication is not None:
            DuplicationProgram(node_plan.duplication).install(element)
