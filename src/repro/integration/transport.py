"""Carrying orchestrator triggers over MMT.

The :class:`~repro.integration.orchestrator.Orchestrator` is
transport-agnostic; this adapter runs its routes over real simulated
MMT streams between facility hosts, so trigger timelines include
genuine network latency (and benefit from MMT features on the way —
alerts can ride a deadline-bearing mode).

Wire format: ``record_id u32 | topic_len u16 | topic | payload``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..core.endpoint import MmtSender, MmtStack
from ..core.header import make_experiment_id
from .orchestrator import Orchestrator, TriggerRecord

#: Experiment number reserved for inter-facility trigger traffic.
TRIGGER_EXPERIMENT = 250


class TriggerCodecError(ValueError):
    """Raised on malformed trigger frames."""


def encode_trigger(record_id: int, topic: str, payload: bytes) -> bytes:
    """Pack a trigger frame: record id, topic, opaque payload."""
    topic_raw = topic.encode("utf-8")
    if len(topic_raw) > 0xFFFF:
        raise TriggerCodecError("topic too long")
    return struct.pack(">IH", record_id, len(topic_raw)) + topic_raw + payload


def decode_trigger(data: bytes) -> tuple[int, str, bytes]:
    """Unpack a trigger frame; raises TriggerCodecError when malformed."""
    if len(data) < 6:
        raise TriggerCodecError("truncated trigger frame")
    record_id, topic_len = struct.unpack_from(">IH", data, 0)
    if len(data) < 6 + topic_len:
        raise TriggerCodecError("truncated topic")
    topic = data[6 : 6 + topic_len].decode("utf-8")
    return record_id, topic, data[6 + topic_len :]


@dataclass
class _Session:
    sender: MmtSender
    subscriber: str


class MmtTriggerTransport:
    """Install MMT-backed routes on an orchestrator."""

    def __init__(self, orchestrator: Orchestrator) -> None:
        self.orchestrator = orchestrator
        self._records: dict[int, TriggerRecord] = {}
        self._next_id = 1
        self._sessions: dict[tuple[str, str], _Session] = {}
        self.frames_sent = 0
        self.frames_delivered = 0

    def connect(
        self,
        origin: str,
        origin_stack: MmtStack,
        subscriber: str,
        subscriber_stack: MmtStack,
        subscriber_ip: str,
        mode: str = "identify",
        **sender_kwargs,
    ) -> None:
        """Create the origin→subscriber session and install the route."""
        key = (origin, subscriber)
        if key in self._sessions:
            raise ValueError(f"session {origin}->{subscriber} already connected")
        sender = origin_stack.create_sender(
            experiment_id=make_experiment_id(TRIGGER_EXPERIMENT, len(self._sessions) % 256),
            mode=mode,
            dst_ip=subscriber_ip,
            flow=f"trigger:{origin}->{subscriber}",
            **sender_kwargs,
        )
        self._sessions[key] = _Session(sender=sender, subscriber=subscriber)
        if TRIGGER_EXPERIMENT not in subscriber_stack.receivers:
            subscriber_stack.bind_receiver(
                TRIGGER_EXPERIMENT,
                on_message=lambda packet, _header, name=subscriber: self._arrived(
                    name, packet
                ),
            )
        self.orchestrator.set_route(origin, subscriber, self._make_route(key))

    def _make_route(self, key: tuple[str, str]):
        def route(subscriber: str, payload: bytes, record: TriggerRecord) -> None:
            session = self._sessions[key]
            record_id = self._next_id
            self._next_id += 1
            self._records[record_id] = record
            frame = encode_trigger(record_id, record.topic, payload)
            session.sender.send(len(frame), payload=frame)
            self.frames_sent += 1

        return route

    def _arrived(self, subscriber: str, packet) -> None:
        if packet.payload is None:
            return
        record_id, _topic, payload = decode_trigger(packet.payload)
        record = self._records.get(record_id)
        if record is None:
            return
        self.frames_delivered += 1
        self.orchestrator.confirm_delivery(record, subscriber, payload)
