"""Concurrent multi-flow pilot runs over one shared topology.

Real research infrastructure never carries one elephant at a time: the
shared DTN and its in-network buffers serve ICEBERG full-stream
readout *and* synthetic-DUNE event bursts simultaneously (§5.4 ran the
pilot per-stream; this module is the concurrent generalization the
paper's Req 5 — "flow-aware processing" — calls for). The
:class:`MultiFlowOrchestrator` launches N tagged senders over a single
:class:`~repro.dataplane.pilot.PilotTestbed`, alternating DAQ workload
shapes per flow:

- even flows: :class:`~repro.daq.generators.SteadyReadout` — the
  clock-driven ICEBERG-style elephant;
- odd flows: :class:`~repro.daq.generators.PoissonEvents` — bursty
  synthetic-DUNE physics events.

The shared DTN 1 relay serves its uplink with deficit round robin (see
:class:`~repro.netsim.queues.DrrScheduler`), and the run is judged on
exactly the axes a shared facility cares about: aggregate goodput,
per-flow completion-time spread, and the Jain fairness index over
per-flow *normalized* goodput (delivered/offered, so a small flow that
gets everything through counts as perfectly served, not starved).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..daq.generators import DaqStreamSource, PoissonEvents, SteadyReadout, TrafficProcess
from ..dataplane.pilot import PilotConfig, PilotReport, PilotTestbed
from ..netsim.engine import Simulator
from ..netsim.units import MILLISECOND, SECOND, gbps


def jain_fairness(values: list[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` — 1.0 is perfectly
    fair, 1/n is one flow taking everything. Empty/all-zero input is
    degenerate (nobody was served *unequally*): returns 1.0."""
    xs = [float(v) for v in values]
    if not xs or all(x == 0.0 for x in xs):
        return 1.0
    return (sum(xs) ** 2) / (len(xs) * sum(x * x for x in xs))


@dataclass
class MultiFlowConfig:
    """Parameters for one concurrent multi-flow run."""

    flows: int = 4
    seed: int = 7
    #: Generator window: every flow emits messages in ``[0, duration)``.
    duration_ns: int = 2 * MILLISECOND
    message_bytes: int = 4000
    #: Per-flow offered rate of the steady (ICEBERG-style) flows.
    steady_rate_bps: int = gbps(5)
    #: Event rate of the bursty (synthetic-DUNE) flows.
    event_rate_hz: float = 100_000.0
    messages_per_event: int = 3
    #: Pilot overrides; ``flows`` here always wins. ``None`` builds the
    #: default pilot (local WAN delay, lossless) with ``flows`` flows.
    pilot: PilotConfig | None = None

    def build_pilot_config(self) -> PilotConfig:
        if self.flows < 1:
            raise ValueError(f"flows must be >= 1, got {self.flows}")
        cfg = self.pilot or PilotConfig()
        cfg.flows = self.flows
        return cfg


@dataclass
class MultiFlowReport:
    """What a concurrent run measured, per flow and in aggregate."""

    flows: int
    duration_ns: int
    pilot: PilotReport
    #: flow_id → bytes the generator actually offered.
    offered_bytes: dict[int, int]
    #: flow_id → the pilot's per-flow accounting row.
    per_flow: dict[int, dict[str, int]]
    #: Bits/s of delivered payload over the span to the last delivery.
    aggregate_goodput_bps: float
    #: Jain index over per-flow normalized goodput (delivered/offered).
    fairness: float
    #: max − min of per-flow last-delivery times.
    completion_spread_ns: int

    @property
    def complete(self) -> bool:
        """Every flow delivered everything it relayed, nothing given up."""
        return all(
            row["unrecovered"] == 0 and row["delivered"] >= row["relayed"]
            for row in self.per_flow.values()
        )


class MultiFlowOrchestrator:
    """Drives N concurrent DAQ flows through one shared pilot build."""

    def __init__(self, config: MultiFlowConfig | None = None) -> None:
        self.config = config or MultiFlowConfig()
        cfg = self.config
        self.sim = Simulator(seed=cfg.seed)
        self.testbed = PilotTestbed(sim=self.sim, config=cfg.build_pilot_config())
        self.sources: list[DaqStreamSource] = [
            DaqStreamSource(
                self.sim,
                self.process_for(fid),
                self._send_fn(fid),
                cfg.duration_ns,
                rng_name=f"mmt-flow-{fid}",
            )
            for fid in range(cfg.flows)
        ]

    def process_for(self, flow_id: int) -> TrafficProcess:
        """The workload shape assigned to a flow (see module docstring)."""
        cfg = self.config
        if flow_id % 2 == 0:
            return SteadyReadout(cfg.steady_rate_bps, cfg.message_bytes)
        return PoissonEvents(
            cfg.event_rate_hz,
            messages_per_event=cfg.messages_per_event,
            message_bytes=cfg.message_bytes,
        )

    def _send_fn(self, flow_id: int):
        def send(size_bytes: int, payload: bytes | None, kind: str) -> None:
            self.testbed.send_message(size_bytes, flow=flow_id, payload=payload)

        return send

    def run(self) -> MultiFlowReport:
        cfg = self.config
        for source in self.sources:
            source.start(0)
        pilot_report = self.testbed.run()
        per_flow = pilot_report.per_flow or self.testbed.flow_report()
        offered = {fid: self.sources[fid].bytes_emitted for fid in range(cfg.flows)}

        normalized = [
            per_flow[fid]["bytes_delivered"] / offered[fid] if offered[fid] else 0.0
            for fid in range(cfg.flows)
        ]
        last_deliveries = [
            per_flow[fid]["last_delivery_ns"]
            for fid in range(cfg.flows)
            if per_flow[fid]["delivered"]
        ]
        total_bytes = sum(row["bytes_delivered"] for row in per_flow.values())
        span_ns = max(last_deliveries) if last_deliveries else 0
        goodput = total_bytes * 8 * SECOND / span_ns if span_ns else 0.0
        spread = max(last_deliveries) - min(last_deliveries) if last_deliveries else 0

        return MultiFlowReport(
            flows=cfg.flows,
            duration_ns=cfg.duration_ns,
            pilot=pilot_report,
            offered_bytes=offered,
            per_flow=per_flow,
            aggregate_goodput_bps=goodput,
            fairness=jain_fairness(normalized),
            completion_spread_ns=spread,
        )
