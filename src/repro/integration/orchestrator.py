"""Cross-facility coordination: instruments, triggers, subscriptions.

"Integration would also support low-latency coordination through
multi-terabit infrastructure" (§3, Req 10). The orchestrator is the
control-plane piece: instruments register capabilities, subscribe to
trigger topics, and the orchestrator records the full timeline of each
trigger from detection to every subscriber's reaction — the quantity
the supernova scenario measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..netsim.engine import Simulator


@dataclass
class TriggerRecord:
    """Timeline of one trigger's propagation."""

    topic: str
    origin: str
    emitted_ns: int
    deliveries: dict[str, int] = field(default_factory=dict)  # subscriber → time

    def latency_ns(self, subscriber: str) -> int | None:
        delivered = self.deliveries.get(subscriber)
        if delivered is None:
            return None
        return delivered - self.emitted_ns


@dataclass
class InstrumentRegistration:
    """An instrument known to the orchestrator."""

    name: str
    facility: str
    capabilities: frozenset[str]
    #: Invoked with (topic, payload, record) when a trigger reaches it.
    on_trigger: Callable[[str, bytes, TriggerRecord], None] | None = None


class Orchestrator:
    """A facility-spanning trigger router with full timelines.

    Delivery transport is pluggable: ``route`` callbacks do the actual
    sending (over MMT, TCP, or direct simulation calls) and call
    :meth:`confirm_delivery` when the subscriber has the trigger —
    keeping this module transport-agnostic.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.instruments: dict[str, InstrumentRegistration] = {}
        self._subscriptions: dict[str, list[str]] = {}
        self._routes: dict[tuple[str, str], Callable[[str, bytes, TriggerRecord], None]] = {}
        self.records: list[TriggerRecord] = []

    def register(
        self,
        name: str,
        facility: str,
        capabilities: set[str] | frozenset[str] = frozenset(),
        on_trigger: Callable[[str, bytes, TriggerRecord], None] | None = None,
    ) -> InstrumentRegistration:
        if name in self.instruments:
            raise ValueError(f"instrument {name!r} already registered")
        registration = InstrumentRegistration(
            name=name,
            facility=facility,
            capabilities=frozenset(capabilities),
            on_trigger=on_trigger,
        )
        self.instruments[name] = registration
        return registration

    def subscribe(self, topic: str, instrument: str) -> None:
        if instrument not in self.instruments:
            raise ValueError(f"unknown instrument {instrument!r}")
        self._subscriptions.setdefault(topic, [])
        if instrument not in self._subscriptions[topic]:
            self._subscriptions[topic].append(instrument)

    def set_route(
        self,
        origin: str,
        subscriber: str,
        deliver: Callable[[str, bytes, TriggerRecord], None],
    ) -> None:
        """Install the transport used for origin→subscriber triggers."""
        self._routes[(origin, subscriber)] = deliver

    def emit(self, topic: str, origin: str, payload: bytes) -> TriggerRecord:
        """Fire a trigger; each subscriber's route carries it onward."""
        record = TriggerRecord(topic=topic, origin=origin, emitted_ns=self.sim.now)
        self.records.append(record)
        for subscriber in self._subscriptions.get(topic, []):
            if subscriber == origin:
                continue
            route = self._routes.get((origin, subscriber))
            if route is None:
                raise ValueError(f"no route {origin!r} → {subscriber!r}")
            route(subscriber, payload, record)
        return record

    def confirm_delivery(self, record: TriggerRecord, subscriber: str, payload: bytes) -> None:
        """Mark a trigger delivered and invoke the subscriber callback."""
        record.deliveries.setdefault(subscriber, self.sim.now)
        registration = self.instruments.get(subscriber)
        if registration is not None and registration.on_trigger is not None:
            registration.on_trigger(record.topic, payload, record)
