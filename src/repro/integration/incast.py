"""Incast head-to-head harness: MMT vs TCP vs UDP on an ECN leaf-spine.

The paper's Fig. 2 claim — multi-modal transport beats TCP-tuned-DTN
and raw UDP on flow completion time once *queues*, not loss, dominate —
needs a workload where the bottleneck is a fan-in switch port, not a
lossy WAN. This module builds exactly that:

- an N→1 incast over :func:`repro.netsim.topology.build_leaf_spine`,
  receiver pinned to the first host of the first leaf;
- Fixed-K RED/ECN (``minth == maxth == K``, mark-don't-drop for ECT)
  on every switch port, one seeded RNG stream per port;
- three interchangeable transport drivers under identical load:

  =========  =====================================================
  transport  congestion reaction
  =========  =====================================================
  ``mmt``    ECN-paced mode (config 7): receiver echoes CE marks as
             backpressure advising ``rate × β``; the driver raises
             the pace multiplicatively between marks (AIMD).
  ``tcp``    RFC 3168 ECE/CWR echo into the congestion controller
             (DTN-tuned min RTO; CUBIC by default).
  ``udp``    none — open-loop pacing; what the AQM drops stays lost.
  =========  =====================================================

Everything is a pure function of :class:`IncastConfig` (picklable), so
cells fan across cores via :mod:`repro.analysis.shard` and the merged
grid is byte-identical for every job count.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..analysis.fct import FctCollector, FctSummary
from ..baselines.tcp import TcpConfig, TcpStack
from ..baselines.udp import UdpStack, remote_address
from ..core.endpoint import MmtStack, ReceiverConfig, SenderConfig
from ..core.features import AckScheme, Feature
from ..core.header import make_experiment_id
from ..core.modes import Mode, ModeRegistry, extended_registry
from ..netsim.engine import Simulator, Timer
from ..netsim.queues import RedQueue
from ..netsim.topology import LeafSpine, LeafSpineSpec, build_leaf_spine
from ..netsim.units import MICROSECOND, MILLISECOND, SECOND


class IncastError(ValueError):
    """Raised for invalid incast configurations."""


#: Wire mode id of the ECN-paced MMT mode (registered per-harness, not
#: in the shared registries: existing registry-shape tests stay put).
ECN_PACED_CONFIG_ID = 7


def incast_registry() -> ModeRegistry:
    """The extended registry plus the ECN-paced congestion mode."""
    registry = extended_registry()
    registry.register(
        Mode(
            config_id=ECN_PACED_CONFIG_ID,
            name="ecn-paced",
            features=(
                Feature.SEQUENCED
                | Feature.RETRANSMISSION
                | Feature.PACING
                | Feature.BACKPRESSURE
                | Feature.CONGESTION_CONTROL
            ),
            ack_scheme=AckScheme.NAK_ONLY,
            description=(
                "Reliable paced transfer whose packets are ECN-capable: "
                "CE marks come back as backpressure (multiplicative "
                "decrease), recovery ticks raise the pace again (AIMD)."
            ),
        )
    )
    return registry


@dataclass(frozen=True)
class IncastConfig:
    """One incast cell: grid coordinates plus fixed workload shape."""

    transport: str = "mmt"  # "mmt" | "tcp" | "udp"
    senders: int = 8
    #: Offered load as a fraction of the receiver-downlink capacity.
    load: float = 1.5
    #: Fixed-K mark threshold as a fraction of the switch buffer.
    mark_threshold: float = 0.2
    #: Symmetric fabric, or a 4x-slower receiver downlink (deeper fan-in).
    symmetric: bool = True
    seed: int = 7
    #: ECN on: AQM marks ECT packets and transports react. ECN off: the
    #: same AQM drops instead (same RNG draws — the honest twin).
    ecn: bool = True
    message_bytes: int = 8000
    switch_buffer_bytes: int = 512_000
    edge_rate_bps: int = 10_000_000_000
    fabric_rate_bps: int = 40_000_000_000
    #: Aggregate offered bytes = load x bottleneck rate x this window.
    work_window_ns: int = 2 * MILLISECOND
    horizon_ns: int = 200 * MILLISECOND

    def __post_init__(self) -> None:
        if self.transport not in ("mmt", "tcp", "udp"):
            raise IncastError(f"unknown transport {self.transport!r}")
        if self.senders < 1:
            raise IncastError("need at least one sender")
        if self.load <= 0:
            raise IncastError("load must be positive")
        if not 0 < self.mark_threshold <= 1:
            raise IncastError("mark_threshold must be in (0, 1]")

    # -- derived workload shape (pure functions of the config) ---------------

    @property
    def bottleneck_rate_bps(self) -> int:
        return self.edge_rate_bps if self.symmetric else self.edge_rate_bps // 4

    @property
    def flow_bytes(self) -> int:
        """Per-sender transfer size (whole messages, at least one)."""
        total = self.load * self.bottleneck_rate_bps * self.work_window_ns / (8 * SECOND)
        per_flow = int(total) // self.senders
        messages = max(1, per_flow // self.message_bytes)
        return messages * self.message_bytes

    @property
    def flow_messages(self) -> int:
        return self.flow_bytes // self.message_bytes

    @property
    def pace_rate_mbps(self) -> int:
        """Per-sender initial pace (mmt/udp): aggregate = load x bottleneck."""
        aggregate_mbps = self.load * self.bottleneck_rate_bps / 1_000_000
        return max(1, int(aggregate_mbps / self.senders))


@dataclass
class IncastReport:
    """Outcome of one incast cell."""

    config: IncastConfig
    summary: FctSummary
    #: Fan-in AQM counters at the receiver's leaf port.
    ce_marked: int
    early_drops: int
    dropped: int
    peak_queue_bytes: int
    #: Transport-specific counters (retransmits, echoes, ...).
    extra: dict

    def as_metrics(self) -> dict:
        """Flat row for BENCH publication: grid coordinates + FCTs."""
        row = {
            "transport": self.config.transport,
            "senders": self.config.senders,
            "load": self.config.load,
            "mark_threshold": self.config.mark_threshold,
            "symmetric": int(self.config.symmetric),
            "ecn": int(self.config.ecn),
            "seed": self.config.seed,
            "flow_bytes": self.config.flow_bytes,
            "ce_marked": self.ce_marked,
            "early_drops": self.early_drops,
            "dropped": self.dropped,
            "peak_queue_bytes": self.peak_queue_bytes,
        }
        row.update(self.summary.as_metrics())
        row.update(self.extra)
        return row


def _build_fabric(sim: Simulator, config: IncastConfig) -> LeafSpine:
    # Senders are split across the two leaves (ceil half remote, so the
    # fabric actually carries fan-in traffic), receiver is h0_0.
    remote = (config.senders + 1) // 2
    local = config.senders - remote
    hosts_per_leaf = max(local + 1, remote)
    spec = LeafSpineSpec(
        leaves=2,
        spines=2,
        hosts_per_leaf=hosts_per_leaf,
        edge_rate_bps=config.edge_rate_bps,
        fabric_rate_bps=config.fabric_rate_bps,
        bottleneck_rate_bps=None if config.symmetric else config.bottleneck_rate_bps,
    )
    ports = iter(range(1_000_000))

    def switch_queue() -> RedQueue:
        index = next(ports)
        return RedQueue(
            config.switch_buffer_bytes,
            min_threshold=config.mark_threshold,
            max_threshold=config.mark_threshold,
            max_drop_probability=1.0,
            ewma_weight=1.0,
            rng=sim.rng(f"red:{index}"),
            ecn=config.ecn,
        )

    return build_leaf_spine(sim, spec, switch_queue_factory=switch_queue)


def _sender_hosts(fabric: LeafSpine, config: IncastConfig) -> list:
    remote = (config.senders + 1) // 2
    local = config.senders - remote
    hosts = [fabric.host(1, i) for i in range(remote)]
    hosts += [fabric.host(0, i + 1) for i in range(local)]
    return hosts


def _start_times(sim: Simulator, config: IncastConfig) -> list[int]:
    """Seeded per-flow start jitter (all flows begin within 50 us)."""
    rng = sim.rng("incast:jitter")
    return [rng.randrange(0, 50 * MICROSECOND) for _ in range(config.senders)]


def run_incast(
    config: IncastConfig,
    instrument: Callable[[LeafSpine], None] | None = None,
) -> IncastReport:
    """Run one incast cell to its horizon and extract FCTs.

    ``instrument`` (when given) runs after the fabric is built and
    before any traffic — golden-trace tests tap ports through it.
    """
    sim = Simulator(seed=config.seed)
    fabric = _build_fabric(sim, config)
    if instrument is not None:
        instrument(fabric)
    fct = FctCollector()
    starts = _start_times(sim, config)
    if config.transport == "tcp":
        collect = _drive_tcp(sim, fabric, config, fct, starts)
    elif config.transport == "udp":
        collect = _drive_udp(sim, fabric, config, fct, starts)
    else:
        collect = _drive_mmt(sim, fabric, config, fct, starts)
    sim.run(until_ns=config.horizon_ns)
    extra = collect()
    queue = fabric.receiver_port_queue()
    return IncastReport(
        config=config,
        summary=fct.summarize(),
        ce_marked=getattr(queue, "ce_marked", 0),
        early_drops=getattr(queue, "early_drops", 0),
        dropped=getattr(queue, "dropped", 0),
        peak_queue_bytes=getattr(queue, "peak_bytes", 0),
        extra=extra,
    )


# -- transport drivers --------------------------------------------------------


def _drive_tcp(sim, fabric, config, fct, starts) -> Callable[[], dict]:
    receiver = fabric.receiver
    tcp_config = TcpConfig(
        mss=config.message_bytes,
        ecn=config.ecn,
        # DTN-tuned timers: a 200 ms default min RTO would park every
        # incast loss for longer than the whole experiment.
        min_rto_ns=5 * MILLISECOND,
        initial_rto_ns=20 * MILLISECOND,
    )
    sink = TcpStack(receiver)
    sink.listen(5001, config=tcp_config)
    stacks = []
    connections = []

    def launch(index: int, stack: TcpStack) -> None:
        flow = f"flow{index:03d}"
        fct.start(flow, sim.now)
        connection = stack.connect(receiver.ip, 5001, config=tcp_config,
                                   local_port=33000 + index)
        connection.on_established = lambda c=connection: c.send(config.flow_bytes)
        connection.on_all_acked = lambda f=flow: fct.finish(f, sim.now)
        connections.append(connection)

    for index, host in enumerate(_sender_hosts(fabric, config)):
        stack = TcpStack(host)
        stacks.append(stack)
        sim.schedule(starts[index], launch, index, stack)

    def collect() -> dict:
        return {
            "retransmits": sum(c.stats.retransmits for c in connections),
            "timeouts": sum(c.stats.timeouts for c in connections),
            "ecn_reductions": sum(c.stats.ecn_reductions for c in connections),
            "ce_marks_received": sum(
                c.stats.ce_marks_received for c in sink._connections.values()
            ),
        }

    return collect


def _drive_udp(sim, fabric, config, fct, starts) -> Callable[[], dict]:
    receiver = fabric.receiver
    expected = config.flow_bytes
    got: dict[str, int] = {}
    flow_of: dict[str, str] = {}

    def on_datagram(packet, _socket) -> None:
        src, _port = remote_address(packet)
        got[src] = got.get(src, 0) + packet.payload_size
        if got[src] >= expected and src in flow_of:
            fct.finish(flow_of.pop(src), sim.now)

    sink = UdpStack(receiver)
    sink.bind(5002, on_datagram)
    senders = []
    gap_ns = max(1, (config.message_bytes * 8 * SECOND) // (config.pace_rate_mbps * 1_000_000))

    def pump(socket, left: int) -> None:
        socket.send_to(receiver.ip, 5002, config.message_bytes)
        if left > 1:
            sim.schedule(gap_ns, pump, socket, left - 1)

    for index, host in enumerate(_sender_hosts(fabric, config)):
        flow = f"flow{index:03d}"
        flow_of[host.ip] = flow
        socket = UdpStack(host).bind(5002)
        senders.append(socket)

        def launch(s=socket, f=flow) -> None:
            fct.start(f, sim.now)
            pump(s, config.flow_messages)

        sim.schedule(starts[index], launch)

    def collect() -> dict:
        return {
            "datagrams_sent": sum(s.tx_datagrams for s in senders),
            "bytes_received": sum(got.values()),
        }

    return collect


def _drive_mmt(sim, fabric, config, fct, starts) -> Callable[[], dict]:
    receiver = fabric.receiver
    registry = incast_registry()
    mode = "ecn-paced" if config.ecn else "backpressured"
    sink = MmtStack(receiver, registry=registry)
    receivers = []
    sender_stacks = []
    senders = []
    expected = config.flow_messages
    #: AIMD increase: every tick, pace recovers toward (never past) the
    #: configured rate; CE-driven backpressure pushes it down again.
    recover_tick_ns = 250 * MICROSECOND

    for index in range(config.senders):
        experiment = 100 + index
        wire_id = make_experiment_id(experiment)
        flow = f"flow{index:03d}"

        def on_message(packet, header, e=experiment, w=wire_id, f=flow) -> None:
            if sink.receivers[e].complete(w, expected):
                fct.finish(f, sim.now)

        receivers.append(
            sink.bind_receiver(
                experiment,
                on_message=on_message,
                config=ReceiverConfig(
                    reorder_wait_ns=200 * MICROSECOND,
                    # Gentle multiplicative decrease: the hold-off below
                    # already bounds the reaction to once per window.
                    ecn_beta=0.8,
                ),
            )
        )

    for index, host in enumerate(_sender_hosts(fabric, config)):
        experiment = 100 + index
        flow = f"flow{index:03d}"
        stack = MmtStack(host, registry=registry)
        stack.attach_buffer(64 * 1024 * 1024)
        sender = stack.create_sender(
            experiment_id=make_experiment_id(experiment),
            mode=mode,
            dst_ip=receiver.ip,
            pace_rate_mbps=config.pace_rate_mbps,
            buffer_local=True,
            config=SenderConfig(
                min_pace_rate_mbps=1,
                backpressure_holdoff_ns=400 * MICROSECOND,
            ),
        )
        sender_stacks.append(stack)
        senders.append(sender)

        def launch(s=sender, f=flow) -> None:
            fct.start(f, sim.now)
            for _ in range(expected):
                s.send(config.message_bytes)
            s.finish()

        sim.schedule(starts[index], launch)

    ceiling = config.pace_rate_mbps

    def recover() -> None:
        for sender in senders:
            if sender.pace_rate_mbps is not None and sender.pace_rate_mbps < ceiling:
                sender.pace_rate_mbps = min(
                    ceiling,
                    max(sender.pace_rate_mbps + 1,
                        int(sender.pace_rate_mbps
                            * sender.config.pace_recovery_factor)),
                )
        timer.start(recover_tick_ns)

    timer = Timer(sim, recover)
    timer.start(recover_tick_ns)
    # The recovery tick must not hold the simulation open forever once
    # the horizon drains; stop it when every flow completed.
    sim.schedule(config.horizon_ns - 1, timer.stop)

    def collect() -> dict:
        return {
            "messages_sent": sum(s.stats.messages_sent for s in senders),
            "backpressure_signals": sum(
                s.stats.backpressure_signals for s in senders
            ),
            "ce_marks_seen": sum(r.stats.ce_marks_seen for r in receivers),
            "ce_echoes_sent": sum(r.stats.ce_echoes_sent for r in receivers),
            "retransmissions": sum(
                r.stats.retransmissions_received for r in receivers
            ),
            "unrecovered": sum(r.stats.unrecovered for r in receivers),
        }

    return collect


# -- grids -------------------------------------------------------------------


def grid_configs(
    transports: tuple[str, ...] = ("mmt", "tcp", "udp"),
    mark_thresholds: tuple[float, ...] = (0.1, 0.4),
    loads: tuple[float, ...] = (0.8, 1.5),
    senders: tuple[int, ...] = (4, 16),
    symmetric: tuple[bool, ...] = (True, False),
    seeds: tuple[int, ...] = (7, 42),
    **overrides,
) -> list[IncastConfig]:
    """The {K, L, N, sym/asym} x transport x seed grid, in stable order."""
    configs = []
    for seed in seeds:
        for transport in transports:
            for k in mark_thresholds:
                for load in loads:
                    for n in senders:
                        for sym in symmetric:
                            configs.append(
                                IncastConfig(
                                    transport=transport,
                                    senders=n,
                                    load=load,
                                    mark_threshold=k,
                                    symmetric=sym,
                                    seed=seed,
                                    **overrides,
                                )
                            )
    return configs


def small_grid(seeds: tuple[int, ...] = (7, 42), **overrides) -> list[IncastConfig]:
    """The CI smoke grid: one K, N in {4, 16}, symmetric, all transports."""
    return grid_configs(
        mark_thresholds=(0.2,),
        loads=(1.5,),
        senders=(4, 16),
        symmetric=(True,),
        seeds=seeds,
        **overrides,
    )


def case_label(config: IncastConfig) -> str:
    """Stable, sortable campaign label for one cell."""
    return (
        f"seed{config.seed:06d}_{config.transport}"
        f"_n{config.senders:03d}"
        f"_k{int(config.mark_threshold * 100):03d}"
        f"_l{int(config.load * 100):03d}"
        f"_{'sym' if config.symmetric else 'asym'}"
    )


def run_grid(
    configs: list[IncastConfig], jobs: int = 1, progress=None
) -> list[tuple[str, dict]]:
    """Run every grid cell, fanned across ``jobs`` cores.

    Each cell is a pure function of its :class:`IncastConfig`, so the
    labeled metrics are identical for every job count; the merge sorts
    by label, so the artifact is too. ``progress`` is forwarded to
    :func:`repro.analysis.shard.run_sharded` (campaign heartbeats); it
    observes results without touching them, so it cannot change the
    artifact.
    """
    from ..analysis.shard import incast_case_metrics, run_sharded

    return run_sharded(incast_case_metrics, configs, jobs=jobs, progress=progress)


def write_bench(
    labeled: list[tuple[str, dict]],
    configs: list[IncastConfig],
    directory: str | Path = ".",
) -> Path:
    """Write ``BENCH_fct_grid.json`` from finished grid cells.

    Deliberately *no* wall time: every value is simulation-derived, so
    the file is byte-identical per seed set, across reruns and across
    every ``--jobs N`` (the shard-determinism contract). The top-level
    ``seed`` is the first grid seed; every row carries its own.
    """
    from ..analysis.shard import merge_campaign

    seeds = sorted({c.seed for c in configs})
    base = configs[0]
    bench = merge_campaign(
        "fct_grid",
        labeled,
        params={
            "seeds": seeds,
            "transports": sorted({c.transport for c in configs}),
            "mark_thresholds": sorted({c.mark_threshold for c in configs}),
            "loads": sorted({c.load for c in configs}),
            "senders": sorted({c.senders for c in configs}),
            "message_bytes": base.message_bytes,
            "switch_buffer_bytes": base.switch_buffer_bytes,
            "edge_rate_bps": base.edge_rate_bps,
            "fabric_rate_bps": base.fabric_rate_bps,
            "work_window_ns": base.work_window_ns,
            "horizon_ns": base.horizon_ns,
        },
        seed=seeds[0],
    )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return bench.write(directory)


__all__ = [
    "ECN_PACED_CONFIG_ID",
    "IncastConfig",
    "IncastError",
    "IncastReport",
    "case_label",
    "grid_configs",
    "incast_registry",
    "run_grid",
    "run_incast",
    "small_grid",
    "write_bench",
]
