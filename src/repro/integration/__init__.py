"""Integrated-research-infrastructure scenarios (Req 10)."""

from .incast import (
    IncastConfig,
    IncastError,
    IncastReport,
    grid_configs,
    run_grid,
    run_incast,
    small_grid,
)
from .multiflow import (
    MultiFlowConfig,
    MultiFlowOrchestrator,
    MultiFlowReport,
    jain_fairness,
)
from .orchestrator import InstrumentRegistration, Orchestrator, TriggerRecord
from .transport import MmtTriggerTransport, TRIGGER_EXPERIMENT, decode_trigger, encode_trigger
from .supernova import (
    ALERT_TOPIC,
    CANDIDATE_BYTES,
    SupernovaConfig,
    SupernovaResult,
    SupernovaScenario,
    compare,
)

__all__ = [
    "ALERT_TOPIC",
    "CANDIDATE_BYTES",
    "IncastConfig",
    "IncastError",
    "IncastReport",
    "InstrumentRegistration",
    "MmtTriggerTransport",
    "MultiFlowConfig",
    "MultiFlowOrchestrator",
    "MultiFlowReport",
    "TRIGGER_EXPERIMENT",
    "Orchestrator",
    "SupernovaConfig",
    "SupernovaResult",
    "SupernovaScenario",
    "TriggerRecord",
    "compare",
    "decode_trigger",
    "encode_trigger",
    "grid_configs",
    "jain_fairness",
    "run_grid",
    "run_incast",
    "small_grid",
]
