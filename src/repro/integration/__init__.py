"""Integrated-research-infrastructure scenarios (Req 10)."""

from .multiflow import (
    MultiFlowConfig,
    MultiFlowOrchestrator,
    MultiFlowReport,
    jain_fairness,
)
from .orchestrator import InstrumentRegistration, Orchestrator, TriggerRecord
from .transport import MmtTriggerTransport, TRIGGER_EXPERIMENT, decode_trigger, encode_trigger
from .supernova import (
    ALERT_TOPIC,
    CANDIDATE_BYTES,
    SupernovaConfig,
    SupernovaResult,
    SupernovaScenario,
    compare,
)

__all__ = [
    "ALERT_TOPIC",
    "CANDIDATE_BYTES",
    "InstrumentRegistration",
    "MmtTriggerTransport",
    "MultiFlowConfig",
    "MultiFlowOrchestrator",
    "MultiFlowReport",
    "TRIGGER_EXPERIMENT",
    "Orchestrator",
    "SupernovaConfig",
    "SupernovaResult",
    "SupernovaScenario",
    "TriggerRecord",
    "compare",
    "decode_trigger",
    "encode_trigger",
    "jain_fairness",
]
