"""The multi-domain supernova early-warning scenario (§1, §3 Req 10).

"A supernova burst detected in DUNE would alert Vera Rubin on where to
expect photons to arrive from — since neutrinos escape the collapsing
star before photons are emitted." The time budget is the
neutrino-to-photon lead time: about a minute at minimum.

Two dataflows are compared:

- **today** (store-and-forward): neutrino-candidate records ride the
  normal pipeline — UDP to the site DTN, tuned TCP across the WAN to
  the HPC facility — and only *there* does burst detection run; the
  alert then crosses another WAN to the telescope over TCP.
- **multi-modal**: candidate summaries (trigger primitives) stream in
  MMT; the WAN element *duplicates* them toward an alert broker near
  the telescope, burst detection runs on the fresh copy, and the
  pointing alert is one short hop away — no storage detour, no
  termination overhead.

Both runs use identical physics (same seeded candidate process, same
burst instant), so the measured difference is pure transport/dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.tcp import TcpStack
from ..baselines.tuning import tuned_100g
from ..core.endpoint import MmtStack
from ..core.header import make_experiment_id
from ..core.modes import extended_registry
from ..daq.alerts import BurstDetector, SupernovaAlert
from ..dataplane.alveo import AlveoNic
from ..dataplane.programs import (
    AgeUpdateProgram,
    BufferTapProgram,
    DuplicationProgram,
    ModeTransitionProgram,
    TransitionRule,
)
from ..dataplane.tofino import TofinoSwitch
from ..netsim.engine import Simulator
from ..netsim.topology import Topology
from ..netsim.units import MICROSECOND, MILLISECOND, SECOND, gbps

DUNE_EXPERIMENT = 2
CANDIDATE_BYTES = 256  # a trigger primitive: channel, time, charge
ALERT_TOPIC = "snb-pointing"


@dataclass
class SupernovaConfig:
    """Scenario knobs."""

    #: Background (radiological) candidate rate before the burst.
    background_rate_hz: float = 100.0
    #: Candidate rate during the burst window.
    burst_rate_hz: float = 20_000.0
    burst_start_ns: int = 2 * SECOND
    burst_duration_ns: int = 1 * SECOND
    #: Trigger: ``threshold`` candidates within ``window_ns``.
    trigger_window_ns: int = 200 * MILLISECOND
    trigger_threshold: int = 50
    #: One-way delays: detector site → HPC, HPC → telescope,
    #: detector-side WAN element → telescope broker.
    wan_to_hpc_ns: int = 20 * MILLISECOND
    hpc_to_scope_ns: int = 60 * MILLISECOND
    element_to_scope_ns: int = 50 * MILLISECOND
    link_rate_bps: int = gbps(100)


@dataclass
class SupernovaResult:
    """Outcome of one run."""

    mode: str
    burst_start_ns: int
    trigger_fired_ns: int | None
    alert_at_scope_ns: int | None

    @property
    def warning_latency_ns(self) -> int | None:
        """Burst start → pointing alert in the telescope's hands."""
        if self.alert_at_scope_ns is None:
            return None
        return self.alert_at_scope_ns - self.burst_start_ns


class SupernovaScenario:
    """Builds and runs one flavour ("today" or "mmt") of the scenario."""

    def __init__(self, mode: str, config: SupernovaConfig | None = None, seed: int = 11):
        if mode not in ("today", "mmt"):
            raise ValueError(f"mode must be 'today' or 'mmt', got {mode!r}")
        self.mode = mode
        self.cfg = config or SupernovaConfig()
        self.sim = Simulator(seed=seed)
        self.detector_trigger = BurstDetector(
            window_ns=self.cfg.trigger_window_ns, threshold=self.cfg.trigger_threshold
        )
        self.alert_at_scope_ns: int | None = None
        self._candidates_sent = 0
        self._build()

    # -- topology ---------------------------------------------------------------

    def _build(self) -> None:
        cfg = self.cfg
        topo = Topology(self.sim)
        self.topology = topo
        self.dune = topo.add_host("dune-dtn", ip="10.1.0.2")
        self.wan_r = topo.add_router("esnet-r")
        self.hpc = topo.add_host("hpc-dtn", ip="10.2.0.2")
        self.scope = topo.add_host("rubin-control", ip="10.3.0.2")

        rate = cfg.link_rate_bps
        short = 1 * MICROSECOND
        if self.mode == "today":
            topo.connect(self.dune, self.wan_r, rate, short)
            topo.connect(self.wan_r, self.hpc, rate, cfg.wan_to_hpc_ns)
            topo.connect(self.hpc, self.scope, rate, cfg.hpc_to_scope_ns)
            topo.install_routes()
            self._build_today()
        else:
            self.element = topo.add(
                TofinoSwitch(self.sim, "site-tofino", mac=topo.allocate_mac(), ip="10.1.0.30")
            )
            self.nic = topo.add(
                AlveoNic.u280(self.sim, "site-nic", mac=topo.allocate_mac(), ip="10.1.0.20")
            )
            topo.connect(self.dune, self.nic, rate, short)
            topo.connect(self.nic, self.element, rate, short)
            topo.connect(self.element, self.hpc, rate, cfg.wan_to_hpc_ns)
            topo.connect(self.element, self.scope, rate, cfg.element_to_scope_ns)
            topo.install_routes()
            self._build_mmt()

    def _build_today(self) -> None:
        """Candidates: TCP DUNE→HPC; detection at HPC; alert: TCP HPC→scope."""
        profile = tuned_100g()
        self.dune_tcp = TcpStack(self.dune)
        self.hpc_tcp = TcpStack(self.hpc)
        self.scope_tcp = TcpStack(self.scope)
        self._delivered_candidates = 0

        self.hpc_tcp.listen(6000, config=profile, on_connection=self._hpc_conn)
        self.candidate_conn = self.dune_tcp.connect(self.hpc.ip, 6000, config=profile)
        self.scope_tcp.listen(6001, config=profile, on_connection=self._scope_conn)
        self.alert_conn = self.hpc_tcp.connect(self.scope.ip, 6001, config=profile)
        self._alert_sent = False

    def _hpc_conn(self, conn) -> None:
        conn.on_delivered = self._candidates_at_hpc

    def _scope_conn(self, conn) -> None:
        conn.on_delivered = self._alert_at_scope_tcp

    def _candidates_at_hpc(self, _nbytes: int, total: int) -> None:
        while (self._delivered_candidates + 1) * CANDIDATE_BYTES <= total:
            self._delivered_candidates += 1
            if self.detector_trigger.observe(self.sim.now) and not self._alert_sent:
                self._alert_sent = True
                self.alert_conn.send_message(SupernovaAlert.SIZE)

    def _alert_at_scope_tcp(self, _nbytes: int, total: int) -> None:
        if total >= SupernovaAlert.SIZE and self.alert_at_scope_ns is None:
            self.alert_at_scope_ns = self.sim.now

    def _build_mmt(self) -> None:
        """Candidates duplicated in-network to the telescope-side broker."""
        registry = extended_registry()
        self.registry = registry
        self.experiment_id = make_experiment_id(DUNE_EXPERIMENT)
        self.nic.attach_buffer(64 * 1024 * 1024)
        ModeTransitionProgram(
            registry,
            [
                TransitionRule(
                    from_config_id=0,
                    to_mode="fanout",
                    buffer_addr=self.nic.ip,
                    age_budget_ns=500 * MILLISECOND,
                    dup_group=1,
                    dup_copies=1,
                )
            ],
        ).install(self.nic)
        BufferTapProgram(buffer_addr=self.nic.ip).install(self.nic)
        AgeUpdateProgram().install(self.nic)
        AgeUpdateProgram().install(self.element)
        DuplicationProgram({1: [self.scope.ip]}).install(self.element)

        self.dune_stack = MmtStack(self.dune, registry)
        self.hpc_stack = MmtStack(self.hpc, registry)
        self.scope_stack = MmtStack(self.scope, registry)

        self.candidate_sender = self.dune_stack.create_sender(
            experiment_id=self.experiment_id,
            mode="identify",
            dst_ip=self.hpc.ip,
            flow="snb-candidates",
        )
        self.hpc_stack.bind_receiver(DUNE_EXPERIMENT, on_message=lambda p, h: None)
        self.scope_stack.bind_receiver(DUNE_EXPERIMENT, on_message=self._candidate_at_broker)
        self._alert_sent = False

    def _candidate_at_broker(self, packet, header) -> None:
        """The telescope-side broker sees the duplicated fresh stream."""
        if packet.payload_size < CANDIDATE_BYTES:
            return
        if self.detector_trigger.observe(self.sim.now) and not self._alert_sent:
            self._alert_sent = True
            # Detection happened next to the telescope: the pointing
            # alert is computed and handed over locally.
            self.alert_at_scope_ns = self.sim.now

    # -- physics driver -----------------------------------------------------------

    def _schedule_candidates(self) -> None:
        cfg = self.cfg
        rng = self.sim.rng("snb-candidates")
        t = 0.0
        end = cfg.burst_start_ns + cfg.burst_duration_ns + SECOND
        while t < end:
            in_burst = cfg.burst_start_ns <= t < cfg.burst_start_ns + cfg.burst_duration_ns
            rate = cfg.burst_rate_hz if in_burst else cfg.background_rate_hz
            t += rng.expovariate(1.0) * (SECOND / rate)
            if t >= end:
                break
            self.sim.schedule_at(int(t), self._emit_candidate)

    def _emit_candidate(self) -> None:
        self._candidates_sent += 1
        if self.mode == "today":
            self.candidate_conn.send_message(CANDIDATE_BYTES)
        else:
            self.candidate_sender.send(CANDIDATE_BYTES)

    def run(self) -> SupernovaResult:
        self._schedule_candidates()
        self.sim.run(until_ns=self.cfg.burst_start_ns + self.cfg.burst_duration_ns + 2 * SECOND)
        return SupernovaResult(
            mode=self.mode,
            burst_start_ns=self.cfg.burst_start_ns,
            trigger_fired_ns=self.detector_trigger.triggered_at,
            alert_at_scope_ns=self.alert_at_scope_ns,
        )


def compare(config: SupernovaConfig | None = None, seed: int = 11) -> dict[str, SupernovaResult]:
    """Run both flavours with identical physics; return results by mode."""
    return {
        "today": SupernovaScenario("today", config, seed=seed).run(),
        "mmt": SupernovaScenario("mmt", config, seed=seed).run(),
    }
