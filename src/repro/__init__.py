"""repro — reproduction of "Shape-shifting Elephants: Multi-modal
Transport for Integrated Research Infrastructure" (HotNets '24).

Subpackages:

- :mod:`repro.netsim` — deterministic discrete-event network simulator.
- :mod:`repro.core` — the multi-modal transport protocol (MMT).
- :mod:`repro.dataplane` — P4-constrained programmable elements
  (Tofino2 switch and Alveo smartNIC models) and the MMT programs.
- :mod:`repro.daq` — DAQ workload substrate: detector models, frame
  formats, physics-driven generators, the Table 1 experiment catalog.
- :mod:`repro.baselines` — today's transports: tuned TCP and UDP.
- :mod:`repro.wan` — WAN segments, circuits, Science DMZ, DTNs.
- :mod:`repro.analysis` — metrics and report tables.
- :mod:`repro.integration` — integrated research infrastructure
  scenarios (multi-domain alerts, instrument-to-instrument triggers).
"""

__version__ = "1.0.0"
