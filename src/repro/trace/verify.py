"""INT ↔ trace cross-checking: two observers, one truth.

The telemetry subsystem observes the pilot from *inside the packets*
(INT postcards pushed per hop); the tracer observes it from *inside the
elements* (``element.egress`` spans emitted per hop). Both stamp the
same engine clock at the same instant, so for every postcard a sink
absorbs there must exist an egress span with the same element, trace
identity, timestamp, queue occupancy, and config — with **zero**
tolerance. Any divergence means an instrumentation gap (a hook missing
or misplaced), which is exactly what this module exists to catch.

:class:`RecordingIntSink` is an :class:`~repro.telemetry.inband.IntSink`
that additionally remembers, per absorbed packet, the packet's trace
identity and its postcards. :func:`verify_int_consistency` then replays
that record against the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.header import MmtHeader
from ..netsim.packet import Packet
from ..telemetry.inband import IntHeader, IntPostcard, IntSink
from ..telemetry.registry import MetricsRegistry
from .tracer import TraceEvent

_SEQ_MASK = 0xFFFFFFFF


class RecordingIntSink(IntSink):
    """An INT sink that also logs (identity, postcards) per packet.

    The metrics side behaves exactly like the plain sink; the recording
    is an append-only log consumed by :func:`verify_int_consistency`.
    """

    def __init__(self, registry: MetricsRegistry, hop_names=None, now=None) -> None:
        super().__init__(registry, hop_names=hop_names, now=now)
        #: One entry per absorbed packet:
        #: ``((experiment, flow, seq), [postcards])``.
        self.absorbed: list[tuple[tuple[int, int, int] | None, list[IntPostcard]]] = []

    def absorb(self, packet: Packet) -> IntHeader | None:
        mmt = packet.find(MmtHeader)
        header = super().absorb(packet)
        if header is None:
            return None
        identity = None
        if mmt is not None and mmt.experiment_id is not None and mmt.seq is not None:
            identity = (mmt.experiment_id, mmt.flow_id or 0, mmt.seq)
        self.absorbed.append((identity, list(header.hops)))
        return header


@dataclass
class IntConsistencyReport:
    """Outcome of one INT ↔ trace cross-check."""

    packets_checked: int = 0
    postcards_checked: int = 0
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def verify_int_consistency(
    events: list[TraceEvent], sink: RecordingIntSink
) -> IntConsistencyReport:
    """Check every absorbed postcard against the trace's egress spans.

    For each postcard of each packet the sink absorbed, an
    ``element.egress`` event must exist with the same element name,
    the packet's trace identity, ``ts_ns == timestamp_ns``, and equal
    ``queue_pct``/``config`` attributes (tolerance 0). Runs with loss
    verify cleanly too: a lost packet's postcards never reach the sink,
    and retransmitted packets re-marked in the network carry fresh
    postcards that match their own egress spans.
    """
    report = IntConsistencyReport()
    # Index egress spans by (element, identity) — a packet revisiting a
    # hop (retransmission) yields several candidates; match on ts.
    egress: dict[tuple[str, tuple[int, int, int]], list[TraceEvent]] = {}
    for event in events:
        if event.kind != "element.egress":
            continue
        identity = event.identity
        if identity is None:
            continue
        egress.setdefault((event.element, identity), []).append(event)

    for identity, postcards in sink.absorbed:
        report.packets_checked += 1
        if identity is None:
            report.mismatches.append("absorbed packet without MMT identity")
            continue
        exp, flow, seq = identity
        for postcard in postcards:
            report.postcards_checked += 1
            element = sink.hop_name(postcard.hop_id)
            tag = f"{element} exp={exp} flow={flow} seq={seq}"
            if postcard.flow_id != flow:
                report.mismatches.append(
                    f"{tag}: postcard flow {postcard.flow_id} != trace flow {flow}"
                )
                continue
            if postcard.seq & _SEQ_MASK != seq & _SEQ_MASK:
                report.mismatches.append(
                    f"{tag}: postcard seq {postcard.seq} != trace seq {seq}"
                )
                continue
            candidates = egress.get((element, identity), [])
            match = next(
                (e for e in candidates if e.ts_ns == postcard.timestamp_ns), None
            )
            if match is None:
                report.mismatches.append(
                    f"{tag}: no element.egress span at t={postcard.timestamp_ns}"
                    f" ({len(candidates)} candidate(s) at other times)"
                )
                continue
            attrs = match.attrs or {}
            if attrs.get("queue_pct") != postcard.queue_depth_pct:
                report.mismatches.append(
                    f"{tag}: queue_pct {attrs.get('queue_pct')} !="
                    f" postcard {postcard.queue_depth_pct}"
                )
            if attrs.get("config") != postcard.config_id:
                report.mismatches.append(
                    f"{tag}: config {attrs.get('config')} != postcard {postcard.config_id}"
                )
    return report


def attach_recording_sink(pilot) -> RecordingIntSink:
    """Swap a pilot's INT sink for a recording one (before ``run``).

    The recording sink feeds its *own* fresh registry, so the pilot's
    ``metrics`` registry is not double-fed; read INT metrics from
    ``sink.registry`` instead.
    """
    if pilot.int_domain is None:
        raise RuntimeError("pilot has no INT domain; build with telemetry=True")
    sink = RecordingIntSink(
        MetricsRegistry(), hop_names=pilot.int_domain.hop_names
    )
    pilot.dtn2_stack.int_sink = sink
    return sink
