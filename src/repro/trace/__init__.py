"""repro.trace — span-based causal tracing over the engine clock.

The observability counterpart to :mod:`repro.telemetry`: where
telemetry aggregates (counters, histograms, INT postcards), the tracer
records *individual causally-linked events* so any packet's full story —
including the NAK/retransmission chain that recovered it — can be
reconstructed after the fact. See DESIGN.md §10.
"""

from .export import (
    TRACE_SCHEMA_VERSION,
    TraceError,
    load_trace,
    trace_digest,
    write_chrome_trace,
    write_trace,
)
from .timeline import format_timeline, select_timeline, summarize_anomalies
from .tracer import ANOMALY_KINDS, TraceEvent, Tracer
from .verify import (
    IntConsistencyReport,
    RecordingIntSink,
    attach_recording_sink,
    verify_int_consistency,
)

__all__ = [
    "ANOMALY_KINDS",
    "TRACE_SCHEMA_VERSION",
    "IntConsistencyReport",
    "RecordingIntSink",
    "TraceError",
    "TraceEvent",
    "Tracer",
    "attach_recording_sink",
    "format_timeline",
    "load_trace",
    "select_timeline",
    "summarize_anomalies",
    "trace_digest",
    "verify_int_consistency",
    "write_chrome_trace",
    "write_trace",
]
