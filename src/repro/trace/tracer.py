"""The causal tracer: typed spans over the deterministic engine clock.

A :class:`Tracer` records :class:`TraceEvent` spans from cheap hook
points all over the stack — packet ingress/egress per element, queue
residency, mode transitions, age/``aged`` stamping, NAK emission →
forwarding → retransmission chains, buffer failover re-stamps, fault
actions. Every event carries a *trace identity* ``(experiment, flow,
seq)``, so the full life of one packet — and every recovery event that
descended from it — reconstructs by identity alone: child spans (NAKs,
retransmissions) inherit the identity of the data packet they recover.

Hook sites follow the :class:`~repro.telemetry.registry.MetricsRegistry`
zero-overhead-when-disabled discipline, but one step cheaper: a
component holds ``self.tracer = None`` by default and every hook is a
single attribute load plus ``is not None`` test — the disabled path
adds no calls at all (pinned by the packet-path perf budget).

Flight recorder: with ``capacity=N`` the tracer keeps a bounded ring of
the most recent spans *plus* every span belonging to an anomalous
packet (one that aged, was lost on a link, was retransmitted, missed a
deadline, or was given up on). The moment an identity turns anomalous
its spans already in the ring are pinned out of eviction's reach, and
every later span for it bypasses the ring entirely — so a post-mortem
always has the complete story for the packets that went wrong, at a
memory cost bounded by N plus the (rare) anomalies. ``capacity=None``
retains everything.

Timestamps come from the simulator clock at emit time, so traces from
identical seeded runs are byte-identical when exported (pinned by a
golden digest, like the PR 4 wire-trace pins).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..core.header import MmtHeader

if TYPE_CHECKING:
    from ..netsim.engine import Simulator
    from ..netsim.packet import Packet

#: Event kinds that mark their packet identity as *anomalous*: every
#: span of that identity — past and future — is retained by the flight
#: recorder regardless of ring capacity. The classes of the issue
#: ("aged, lost, retransmitted, degraded") map to: age stamping in the
#: network / aged arrival, wire loss, the whole NAK→retransmit chain,
#: unmet recovery (buffer miss / give-up), and deadline misses.
ANOMALY_KINDS = frozenset(
    {
        "age.aged",
        "packet.aged",
        "link.drop",
        "port.drop",
        "element.drop",
        "nak.send",
        "nak.forward",
        "nak.giveup",
        "retx.send",
        "retx.recv",
        "buffer.miss",
        "deadline.miss",
    }
)


class TraceEvent:
    """One recorded span/event.

    ``experiment_id``/``flow_id``/``seq`` are the trace identity; any of
    them may be ``None`` for events outside a packet's sequenced life
    (mode-0 traffic before sequence assignment, fault actions, engine
    housekeeping). ``attrs`` holds small JSON-safe extras (ints/strs).
    """

    __slots__ = ("id", "ts_ns", "kind", "element", "experiment_id", "flow_id", "seq", "attrs")

    def __init__(
        self,
        id: int,
        ts_ns: int,
        kind: str,
        element: str,
        experiment_id: int | None = None,
        flow_id: int | None = None,
        seq: int | None = None,
        attrs: dict | None = None,
    ) -> None:
        self.id = id
        self.ts_ns = ts_ns
        self.kind = kind
        self.element = element
        self.experiment_id = experiment_id
        self.flow_id = flow_id
        self.seq = seq
        self.attrs = attrs

    @property
    def identity(self) -> tuple[int, int, int] | None:
        """``(experiment, flow, seq)`` when fully identified, else None."""
        if self.experiment_id is None or self.seq is None:
            return None
        return (self.experiment_id, self.flow_id or 0, self.seq)

    def to_dict(self) -> dict:
        record = {
            "id": self.id,
            "ts": self.ts_ns,
            "ev": self.kind,
            "element": self.element,
            "exp": self.experiment_id,
            "flow": self.flow_id,
            "seq": self.seq,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "TraceEvent":
        return cls(
            id=record["id"],
            ts_ns=record["ts"],
            kind=record["ev"],
            element=record["element"],
            experiment_id=record.get("exp"),
            flow_id=record.get("flow"),
            seq=record.get("seq"),
            attrs=record.get("attrs") or None,
        )

    def __repr__(self) -> str:
        ident = self.identity
        tag = f" {ident[0]}/{ident[1]}/{ident[2]}" if ident else ""
        return f"TraceEvent#{self.id}[{self.ts_ns}ns {self.element} {self.kind}{tag}]"


class Tracer:
    """Records spans; a flight recorder when ``capacity`` is bounded.

    The tracer is never installed when tracing is off — components keep
    ``tracer = None`` and hook sites test that, so there is no "disabled
    tracer" object (and no per-packet no-op calls) to pay for.
    """

    def __init__(self, sim: "Simulator", capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.events_emitted = 0
        self.events_evicted = 0
        self._next_id = 0
        self._ring: deque[TraceEvent] = deque()
        #: Spans pinned out of the ring because their identity is
        #: anomalous; kept unsorted, merged by id on read.
        self._pinned: list[TraceEvent] = []
        self._anomalous: set[tuple[int, int, int]] = set()
        #: Elements whose spans are pinned wholesale (SLO watchdogs pin
        #: the component that breached an objective; its spans have no
        #: packet identity to pin by).
        self._pinned_elements: set[str] = set()
        #: packet_id → enqueue time for queue-residency spans.
        self._enqueued_at: dict[int, int] = {}

    # -- recording -----------------------------------------------------------

    def emit(
        self,
        kind: str,
        element: str,
        experiment_id: int | None = None,
        flow_id: int | None = None,
        seq: int | None = None,
        **attrs,
    ) -> TraceEvent:
        """Record one event, timestamped off the engine clock."""
        event = TraceEvent(
            id=self._next_id,
            ts_ns=self.sim.now,
            kind=kind,
            element=element,
            experiment_id=experiment_id,
            flow_id=flow_id,
            seq=seq,
            attrs=attrs or None,
        )
        self._next_id += 1
        self.events_emitted += 1
        identity = event.identity
        if identity is not None and identity in self._anomalous:
            self._pinned.append(event)
            return event
        if identity is not None and kind in ANOMALY_KINDS:
            self._mark_anomalous(identity)
            self._pinned.append(event)
            return event
        if element in self._pinned_elements:
            self._pinned.append(event)
            return event
        self._ring.append(event)
        if self.capacity is not None and len(self._ring) > self.capacity:
            self._ring.popleft()
            self.events_evicted += 1
        return event

    def packet_event(self, kind: str, element: str, packet: "Packet", **attrs) -> None:
        """Record an event for an in-flight packet (identity from its
        MMT header; non-MMT packets are not traced)."""
        mmt = packet.find(MmtHeader)
        if mmt is None:
            return
        self.emit(
            kind,
            element,
            mmt.experiment_id,
            mmt.flow_id or 0,
            mmt.seq,
            msg=mmt.msg_type.name,
            **attrs,
        )

    def note_enqueue(self, packet: "Packet") -> None:
        """Ports call this when a packet joins an egress queue."""
        self._enqueued_at[packet.packet_id] = self.sim.now

    def queue_wait(self, packet: "Packet", element: str, port: str) -> None:
        """Ports call this when a packet starts serializing; emits a
        ``queue.wait`` residency span when the packet actually waited
        (zero-wait transits stay implicit — they carry no information
        and would dominate the ring)."""
        enqueued = self._enqueued_at.pop(packet.packet_id, None)
        if enqueued is None:
            return
        wait = self.sim.now - enqueued
        if wait <= 0:
            return
        self.packet_event("queue.wait", element, packet, port=port, wait_ns=wait)

    def _mark_anomalous(self, identity: tuple[int, int, int]) -> None:
        """Pin an identity: pull its spans out of the ring for keeps."""
        self._anomalous.add(identity)
        if not self._ring:
            return
        keep: deque[TraceEvent] = deque()
        for event in self._ring:
            if event.identity == identity:
                self._pinned.append(event)
            else:
                keep.append(event)
        self._ring = keep

    def pin_element(self, element: str) -> None:
        """Pin every retained and future span of one element.

        The SLO watchdog's anomaly identity is the violating metric's
        labels, not a packet — pinning by element keeps the breached
        component's whole timeline out of ring eviction, mirroring what
        ``_mark_anomalous`` does for a packet identity.
        """
        if element in self._pinned_elements:
            return
        self._pinned_elements.add(element)
        if not self._ring:
            return
        keep: deque[TraceEvent] = deque()
        for event in self._ring:
            if event.element == element:
                self._pinned.append(event)
            else:
                keep.append(event)
        self._ring = keep

    # -- reading -------------------------------------------------------------

    def events(self) -> list[TraceEvent]:
        """All retained events (ring + pinned) in emission order."""
        return sorted([*self._ring, *self._pinned], key=lambda e: e.id)

    @property
    def events_retained(self) -> int:
        return len(self._ring) + len(self._pinned)

    @property
    def events_pinned(self) -> int:
        return len(self._pinned)

    def anomalous_identities(self) -> set[tuple[int, int, int]]:
        """Identities the flight recorder pinned (copy)."""
        return set(self._anomalous)

    def pinned_elements(self) -> set[str]:
        """Elements pinned wholesale via :meth:`pin_element` (copy)."""
        return set(self._pinned_elements)

    def timeline(
        self, experiment_id: int, flow_id: int, seq: int
    ) -> list[TraceEvent]:
        """Every retained span of one packet identity, causally ordered
        (time, then emission order breaks ties at equal timestamps —
        emission order *is* causal order inside one engine event)."""
        identity = (experiment_id, flow_id or 0, seq)
        return sorted(
            (e for e in self.events() if e.identity == identity),
            key=lambda e: (e.ts_ns, e.id),
        )
