"""Root-cause timelines: one packet's life, causally ordered.

Given a trace (live tracer or loaded file) and an identity
``(experiment, flow, seq)``, :func:`select_timeline` pulls every span of
that packet — including the NAK/retransmission child events that share
its identity — and :func:`format_timeline` renders it as the terminal
report ``repro trace --timeline`` prints: absolute time, delta from the
previous event, element, event kind, and the attributes that explain it.
"""

from __future__ import annotations

from .tracer import ANOMALY_KINDS, TraceEvent

#: Human-facing one-liners per event kind (fallback: the kind itself).
_KIND_LABELS = {
    "packet.send": "sent by endpoint",
    "element.ingress": "entered element",
    "element.egress": "left element",
    "element.drop": "dropped in pipeline",
    "mode.transition": "mode transition",
    "age.aged": "aged in network",
    "packet.aged": "delivered aged",
    "packet.deliver": "delivered",
    "packet.dup": "duplicate discarded",
    "deadline.miss": "deadline missed",
    "link.drop": "lost on link",
    "queue.wait": "queued",
    "buffer.store": "stored in buffer",
    "buffer.evict": "evicted from buffer",
    "buffer.hit": "buffer hit",
    "buffer.miss": "buffer miss",
    "buffer.restamp": "buffer re-stamped",
    "nak.send": "NAK sent",
    "nak.forward": "NAK forwarded",
    "nak.giveup": "recovery abandoned",
    "retx.send": "retransmitted",
    "retx.recv": "retransmission arrived",
}


def select_timeline(
    events: list[TraceEvent], experiment_id: int, flow_id: int, seq: int
) -> list[TraceEvent]:
    """Every span of one identity, in causal order (time, then emission
    order — emission order is causal within one engine event)."""
    identity = (experiment_id, flow_id or 0, seq)
    return sorted(
        (e for e in events if e.identity == identity),
        key=lambda e: (e.ts_ns, e.id),
    )


def _format_attrs(event: TraceEvent) -> str:
    if not event.attrs:
        return ""
    parts = [f"{key}={value}" for key, value in sorted(event.attrs.items())]
    return "  [" + " ".join(parts) + "]"


def format_timeline(
    timeline: list[TraceEvent], experiment_id: int, flow_id: int, seq: int
) -> str:
    """Render a selected timeline as a terminal root-cause report."""
    title = f"packet experiment={experiment_id} flow={flow_id} seq={seq}"
    if not timeline:
        return f"{title}: no trace events (identity unknown or evicted)"
    lines = [f"{title} — {len(timeline)} events over "
             f"{timeline[-1].ts_ns - timeline[0].ts_ns} ns"]
    previous = timeline[0].ts_ns
    for event in timeline:
        delta = event.ts_ns - previous
        previous = event.ts_ns
        label = _KIND_LABELS.get(event.kind, event.kind)
        flag = "!" if event.kind in ANOMALY_KINDS else " "
        lines.append(
            f" {flag} {event.ts_ns:>12} ns  (+{delta:>9})  "
            f"{event.element:<18} {label}{_format_attrs(event)}"
        )
    return "\n".join(lines)


def summarize_anomalies(events: list[TraceEvent]) -> list[tuple[tuple[int, int, int], list[str]]]:
    """Per anomalous identity, the ordered kinds of its anomaly events —
    the index ``repro trace --anomalies`` prints."""
    by_identity: dict[tuple[int, int, int], list[str]] = {}
    for event in sorted(events, key=lambda e: (e.ts_ns, e.id)):
        identity = event.identity
        if identity is None or event.kind not in ANOMALY_KINDS:
            continue
        by_identity.setdefault(identity, []).append(event.kind)
    return sorted(by_identity.items())
