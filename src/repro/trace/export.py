"""Trace export: schema-versioned JSONL and Chrome trace-event JSON.

The JSONL format mirrors the telemetry snapshot files: one ``meta``
record (schema version, run context, retention counters) followed by
one record per retained event, written in emission order with sorted
keys — so identical seeded runs export byte-identical files, and a
sha256 over the file body is a valid determinism pin
(:func:`trace_digest`).

The Chrome export produces the trace-event format that Perfetto and
``chrome://tracing`` load directly: one lane (thread) per element, an
instant event per span, and real duration slices for queue residency.
"""

from __future__ import annotations

import hashlib
import json

from .tracer import TraceEvent, Tracer

TRACE_SCHEMA_VERSION = 1


class TraceError(Exception):
    """Raised for malformed or mismatched trace files."""


def _event_lines(events: list[TraceEvent]) -> list[str]:
    lines = []
    for event in events:
        record = event.to_dict()
        record["kind"] = "event"
        lines.append(json.dumps(record, sort_keys=True))
    return lines


def write_trace(tracer: Tracer, path: str, meta: dict | None = None) -> int:
    """Write the tracer's retained events to ``path``. Returns records
    written (meta line included)."""
    header = {
        "kind": "meta",
        "schema_version": TRACE_SCHEMA_VERSION,
        "events_emitted": tracer.events_emitted,
        "events_evicted": tracer.events_evicted,
        "events_pinned": tracer.events_pinned,
        "capacity": tracer.capacity,
    }
    header.update(meta or {})
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(_event_lines(tracer.events()))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return len(lines)


def load_trace(path: str) -> tuple[dict, list[TraceEvent]]:
    """Parse a trace file back into ``(meta, events)``."""
    meta: dict = {}
    events: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{line_number}: bad JSON: {exc}") from None
            kind = record.get("kind")
            if kind == "meta":
                if meta:
                    raise TraceError(f"{path}:{line_number}: repeated meta record")
                version = record.get("schema_version")
                if version != TRACE_SCHEMA_VERSION:
                    raise TraceError(
                        f"{path}: schema_version {version!r}, "
                        f"expected {TRACE_SCHEMA_VERSION}"
                    )
                meta = record
            elif kind == "event":
                try:
                    events.append(TraceEvent.from_dict(record))
                except KeyError as exc:
                    raise TraceError(
                        f"{path}:{line_number}: event missing field {exc}"
                    ) from None
            else:
                raise TraceError(f"{path}:{line_number}: unknown kind {kind!r}")
    if not meta:
        raise TraceError(f"{path}: no meta record")
    return meta, events


def trace_digest(events: list[TraceEvent]) -> str:
    """sha256 over the canonical event serialization — the determinism
    pin for seeded runs (meta counters are excluded so a capacity change
    that retains the same events hashes the same)."""
    return hashlib.sha256("\n".join(_event_lines(events)).encode()).hexdigest()


def write_chrome_trace(
    events: list[TraceEvent],
    path: str,
    process_name: str = "repro pilot",
    counters=None,
) -> int:
    """Write events in Chrome trace-event format (Perfetto-loadable).

    One thread lane per element (tids assigned deterministically from
    the sorted element names); spans become instant events except
    ``queue.wait``, which renders as a real duration slice covering the
    residency window. Timestamps convert ns → µs (the format's unit).

    ``counters`` (optional) is an iterable of
    ``(track_name, [(t_ns, value), ...])`` pairs — sampled gauge series
    become ``ph: "C"`` counter tracks in the same process, so spans and
    queue-depth curves share one timebase (``repro.obs.counter_tracks``
    produces this shape from a sampler). Returns the number of trace
    records written.
    """
    elements = sorted({event.element for event in events})
    tids = {name: tid for tid, name in enumerate(elements, start=1)}
    out: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for name in elements:
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tids[name],
                "args": {"name": name},
            }
        )
    for event in events:
        args = {
            "id": event.id,
            "exp": event.experiment_id,
            "flow": event.flow_id,
            "seq": event.seq,
        }
        if event.attrs:
            args.update(event.attrs)
        record = {
            "name": event.kind,
            "cat": event.kind.split(".", 1)[0],
            "pid": 1,
            "tid": tids[event.element],
            "ts": event.ts_ns / 1000,
            "args": args,
        }
        wait_ns = (event.attrs or {}).get("wait_ns")
        if event.kind == "queue.wait" and isinstance(wait_ns, int):
            record["ph"] = "X"
            record["ts"] = (event.ts_ns - wait_ns) / 1000
            record["dur"] = wait_ns / 1000
        else:
            record["ph"] = "i"
            record["s"] = "t"
        out.append(record)
    for track_name, points in counters or ():
        for t_ns, value in points:
            out.append(
                {
                    "name": track_name,
                    "ph": "C",
                    "pid": 1,
                    "ts": t_ns / 1000,
                    "args": {"value": value},
                }
            )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": out}, handle, sort_keys=True)
        handle.write("\n")
    return len(out)
