"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Any component can instrument against a :class:`MetricsRegistry` — the
measurement substrate the performance work builds on. Design rules:

- **integers only** — metric values, gauge readings, and histogram
  bucket boundaries are all ints, so nothing here could not live in a
  P4 register (the same no-floats discipline the dataplane enforces);
- **fixed buckets** — histograms take their bucket boundaries at
  construction and never rebalance, exactly like hardware counters and
  Prometheus classic histograms, so snapshots from different runs are
  directly comparable;
- **zero overhead when disabled** — a registry built with
  ``enabled=False`` hands out shared no-op instruments whose methods do
  nothing, so instrumented hot paths cost one attribute call.

Instruments are identified by ``(name, labels)``; asking twice for the
same identity returns the same object, so callers can cache instruments
at setup time and skip the registry lookup on the hot path.
"""

from __future__ import annotations

from typing import Iterator

LabelKey = tuple[tuple[str, str], ...]


class TelemetryError(RuntimeError):
    """Raised for misuse of the telemetry subsystem."""


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


#: Default histogram boundaries for nanosecond latencies: roughly
#: logarithmic from 1 us to 10 s (integer ns, upper bounds inclusive).
DEFAULT_LATENCY_BUCKETS_NS: tuple[int, ...] = (
    1_000, 2_000, 5_000,
    10_000, 20_000, 50_000,
    100_000, 200_000, 500_000,
    1_000_000, 2_000_000, 5_000_000,
    10_000_000, 20_000_000, 50_000_000,
    100_000_000, 200_000_000, 500_000_000,
    1_000_000_000, 10_000_000_000,
)

#: Default boundaries for percentage-valued samples (queue occupancy).
DEFAULT_PCT_BUCKETS: tuple[int, ...] = (0, 1, 2, 5, 10, 25, 50, 75, 90, 100)


class Metric:
    """Base class: identity plus the snapshot interface."""

    kind = "metric"

    def __init__(self, name: str, labels: LabelKey, help: str = "") -> None:
        self.name = name
        self._labels = labels
        self.help = help

    @property
    def labels(self) -> dict[str, str]:
        return dict(self._labels)

    def to_dict(self) -> dict:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing integer."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey, help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, delta: int = 1) -> None:
        if delta < 0:
            raise TelemetryError(f"counter {self.name!r} cannot decrease ({delta})")
        self._value += delta

    def set_total(self, total: int) -> None:
        """Set the absolute count (scrape path); must not go backwards."""
        if total < self._value:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease ({self._value} -> {total})"
            )
        self._value = total

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.labels,
            "value": self._value,
        }


class Gauge(Metric):
    """An integer that can go up and down; tracks its high-water mark."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey, help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0
        self._peak = 0

    @property
    def value(self) -> int:
        return self._value

    @property
    def peak(self) -> int:
        """Highest value ever set (high-water mark)."""
        return self._peak

    def set(self, value: int) -> None:
        self._value = value
        if value > self._peak:
            self._peak = value

    def inc(self, delta: int = 1) -> None:
        self.set(self._value + delta)

    def dec(self, delta: int = 1) -> None:
        self.set(self._value - delta)

    def set_max(self, value: int) -> None:
        """Keep the largest value seen (high-water-mark updates)."""
        if value > self._value:
            self.set(value)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.labels,
            "value": self._value,
            "peak": self._peak,
        }


class Histogram(Metric):
    """Fixed-bucket integer histogram.

    ``buckets`` are inclusive upper bounds in ascending order; samples
    above the last bound land in an overflow bucket. Quantiles are
    answered from bucket counts (the bound of the bucket where the
    cumulative count crosses the rank), so they are conservative upper
    bounds — the resolution the buckets give, no more.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        buckets: tuple[int, ...] = DEFAULT_LATENCY_BUCKETS_NS,
        help: str = "",
    ) -> None:
        super().__init__(name, labels, help)
        if not buckets:
            raise TelemetryError(f"histogram {self.name!r} needs at least one bucket")
        if list(buckets) != sorted(set(buckets)):
            raise TelemetryError(
                f"histogram {self.name!r} buckets must be strictly ascending"
            )
        for bound in buckets:
            if isinstance(bound, float):
                raise TelemetryError(
                    f"histogram {self.name!r}: float bucket bound {bound}"
                )
        self.buckets = tuple(buckets)
        self.counts = [0] * len(buckets)
        self.overflow = 0
        self.count = 0
        self.sum = 0
        self.min: int | None = None
        self.max: int | None = None

    def observe(self, value: int) -> None:
        value = int(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = self._bucket_index(value)
        if index is None:
            self.overflow += 1
        else:
            self.counts[index] += 1

    def observe_many(self, values) -> None:
        for value in values:
            self.observe(value)

    def _bucket_index(self, value: int) -> int | None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                return i
        return None

    def quantile(self, q: float) -> int | None:
        """Upper bound of the bucket holding the q-quantile sample."""
        return quantile_from_buckets(
            list(zip(self.buckets, self.counts)), self.overflow, self.count, q,
            observed_max=self.max,
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.labels,
            "buckets": [[bound, count] for bound, count in zip(self.buckets, self.counts)],
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


def quantile_from_buckets(
    buckets: list[tuple[int, int]] | list[list[int]],
    overflow: int,
    count: int,
    q: float,
    observed_max: int | None = None,
) -> int | None:
    """Quantile from ``[(upper_bound, count), ...]`` plus an overflow count.

    Works on live histograms and on snapshot dicts alike. Returns None
    for an empty histogram; overflow-resident quantiles report the
    observed max when known (else the last bound).
    """
    if count <= 0:
        return None
    if not 0.0 <= q <= 1.0:
        raise TelemetryError(f"quantile must be in [0, 1], got {q}")
    rank = max(1, round(q * count))
    cumulative = 0
    last_bound = None
    for bound, bucket_count in buckets:
        last_bound = bound
        cumulative += bucket_count
        if cumulative >= rank:
            return bound
    if observed_max is not None:
        return observed_max
    return last_bound


# ---------------------------------------------------------------------------
# No-op instruments (disabled registries)
# ---------------------------------------------------------------------------


class _NullCounter(Counter):
    def inc(self, delta: int = 1) -> None:
        pass

    def set_total(self, total: int) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: int) -> None:
        pass

    def set_max(self, value: int) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: int) -> None:
        pass


_NULL_COUNTER = _NullCounter("null", ())
_NULL_GAUGE = _NullGauge("null", ())
_NULL_HISTOGRAM = _NullHistogram("null", (), buckets=(1,))


class MetricsRegistry:
    """Instrument factory and snapshot source.

    One registry per run (or per component under test). ``enabled=False``
    turns every instrument into a shared no-op, which is how production
    paths keep telemetry at zero cost when it is switched off.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[tuple[str, str, LabelKey], Metric] = {}

    # -- instrument factories ------------------------------------------------

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[int, ...] = DEFAULT_LATENCY_BUCKETS_NS,
        help: str = "",
        **labels,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        key = (Histogram.kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, _label_key(labels), buckets=buckets, help=help)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TelemetryError(f"{name!r} already registered as {metric.kind}")
        return metric

    def _get(self, cls, name: str, help: str, labels: dict) -> Metric:
        key = (cls.kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, _label_key(labels), help=help)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TelemetryError(f"{name!r} already registered as {metric.kind}")
        return metric

    # -- inspection ------------------------------------------------------------

    def collect(self) -> Iterator[Metric]:
        """All registered instruments, in registration order."""
        return iter(self._metrics.values())

    def get(self, kind: str, name: str, **labels) -> Metric | None:
        """Look up an existing instrument without creating it."""
        return self._metrics.get((kind, name, _label_key(labels)))

    def snapshot(self) -> list[dict]:
        """JSON-able dicts for every instrument (sorted for stability)."""
        return sorted(
            (metric.to_dict() for metric in self._metrics.values()),
            key=lambda d: (d["name"], sorted(d["labels"].items()), d["kind"]),
        )

    def __len__(self) -> int:
        return len(self._metrics)


#: A process-wide disabled registry, for components that want a default.
NULL_REGISTRY = MetricsRegistry(enabled=False)
