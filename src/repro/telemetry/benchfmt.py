"""The shared benchmark-result schema: ``BENCH_<name>.json``.

Every bench module writes one file in this format at the repo root —
the perf trajectory later PRs cite and compare against. One schema for
all benches means a reviewer (or a script) can diff two commits' files
field by field:

.. code-block:: json

    {
      "schema_version": 1,
      "name": "fig4_pilot",
      "params": {"messages": 800},
      "metrics": {"test_fig4_pilot_study": {"wall_time_s": 1.9}},
      "seed": 31,
      "wall_time_s": 1.9
    }

``metrics`` is free-form but flat-ish by convention: test or case name
→ {metric → number}. ``wall_time_s`` at the top level is the summed
wall time of the module's benchmarked calls.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

SCHEMA_VERSION = 1


@dataclass
class BenchResult:
    """Accumulates one bench module's structured results."""

    name: str
    params: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    seed: int | None = None
    wall_time_s: float = 0.0

    def record(self, case: str, **values) -> None:
        """Merge metric values for a named case (test or scenario)."""
        self.metrics.setdefault(case, {}).update(values)

    def add_wall_time(self, case: str, seconds: float) -> None:
        self.record(case, wall_time_s=round(seconds, 6))
        self.wall_time_s = round(self.wall_time_s + seconds, 6)

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "params": self.params,
            "metrics": self.metrics,
            "seed": self.seed,
            "wall_time_s": self.wall_time_s,
        }

    def write(self, directory: str | Path) -> Path:
        """Write ``BENCH_<name>.json`` under ``directory``; returns the path."""
        path = Path(directory) / f"BENCH_{self.name}.json"
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


def load_bench_result(path: str | Path) -> BenchResult:
    """Read a ``BENCH_*.json`` file back into a :class:`BenchResult`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return BenchResult(
        name=data["name"],
        params=data.get("params", {}),
        metrics=data.get("metrics", {}),
        seed=data.get("seed"),
        wall_time_s=data.get("wall_time_s", 0.0),
    )
